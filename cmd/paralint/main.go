// Command paralint runs paratime's repo-specific static-analysis suite
// (internal/lint): mapiter, keycover, nondeterm and sortedout — the
// mechanized determinism and fingerprint-coverage contracts.
//
// It runs in two modes:
//
//   - Standalone: `paralint [packages]` loads the named packages (default
//     ./...) itself and prints diagnostics, exiting 1 if any. This mode
//     runs all four analyzers, including the cross-file keycover check.
//
//   - Vet tool: `go vet -vettool=$(pwd)/paralint ./...` — paralint
//     implements the cmd/go unitchecker protocol (-V=full, -flags, and
//     single *.cfg package units), so it slots into go vet's build-cached
//     per-package pipeline. Diagnostics exit 2, matching x/tools
//     unitchecker.
//
// Test files are never analyzed: the contracts govern result-producing
// code, and test-output stability is pinned by goldens instead.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"paratime/internal/lint"
)

func main() {
	args := os.Args[1:]
	// cmd/go probes the tool identity for its build cache.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("paralint version 1\n")
		return
	}
	// cmd/go asks which flags the tool supports; paralint needs none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}

func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, _, err := lint.Run(pkgs, lint.Suite(), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "paralint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// unitConfig mirrors the JSON unit description cmd/go hands to vet
// tools (x/tools unitchecker.Config).
type unitConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "paralint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// Always satisfy the fact-file contract, even though paralint has no
	// cross-package facts: cmd/go caches the output file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("paralint\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The contracts govern shipped code: skip test units entirely
	// ("pkg.test", "pkg [pkg.test]", external _test packages).
	if strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "]") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0
	}
	pkg, err := typecheckUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// keycover needs whole-module syntax on the spec side; in the
	// per-package vet pipeline it still covers every unit whose own
	// syntax declares a checked shape, which is all of them.
	diags, _, err := lint.Run([]*lint.Package{pkg}, lint.Suite(), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func typecheckUnit(cfg *unitConfig) (*lint.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := cfg.ImportMap[path]; ok {
			path = to
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("paralint: no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tc := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Package{
		PkgPath: cfg.ImportPath,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
