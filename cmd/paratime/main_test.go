package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paratime/internal/spec"
)

var update = flag.Bool("update", false, "rewrite golden files")

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run with -update to regenerate):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestRunGolden: `paratime run` output on the checked-in scenario file
// is pinned byte-for-byte — the WCET numbers are part of the contract.
func TestRunGolden(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), []string{"run", filepath.Join("testdata", "quickstart.json")})
	})
	checkGolden(t, "quickstart.golden", out)
}

// TestRunGoldenJSON pins the -json report form.
func TestRunGoldenJSON(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), []string{"run", "-json", filepath.Join("testdata", "quickstart.json")})
	})
	checkGolden(t, "quickstart.json.golden", out)
}

// TestExploreGolden pins the text report of `paratime run` on a
// scenario with an explore block: exact worst, tightness and the
// replayable witness line are byte-for-byte part of the contract.
func TestExploreGolden(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), []string{"run", filepath.Join("testdata", "explore.json")})
	})
	checkGolden(t, "explore.golden", out)
}

// TestExploreGoldenJSON pins the -json form with explore enabled.
func TestExploreGoldenJSON(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), []string{"run", "-json", filepath.Join("testdata", "explore.json")})
	})
	checkGolden(t, "explore.json.golden", out)
}

// TestExportRunPipeline: every exported scenario decodes and runs — the
// in-process version of the CI `export all | run -` smoke job (on a
// fast subset; CI runs the full set).
func TestExportRunPipeline(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), []string{"export", "e8"})
	})
	scs, err := spec.DecodeAll([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 4 {
		t.Fatalf("e8 exported %d scenarios, want 4", len(scs))
	}
	tmp := filepath.Join(t.TempDir(), "e8.json")
	if err := os.WriteFile(tmp, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	res := capture(t, func() error {
		return run(context.Background(), []string{"run", tmp})
	})
	for _, sc := range scs {
		if !strings.Contains(res, sc.Name) {
			t.Errorf("run output lacks scenario %q", sc.Name)
		}
	}
}

// TestSweepGolden pins the text stream of `paratime sweep` on the
// checked-in sweep file: one aligned line per point, in point order.
func TestSweepGolden(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), []string{"sweep", filepath.Join("testdata", "sweep.json")})
	})
	checkGolden(t, "sweep.golden", out)
}

// TestSweepGoldenJSON pins the NDJSON stream — and with it the ordered
// mode's determinism contract (the golden must match at any
// -parallelism).
func TestSweepGoldenJSON(t *testing.T) {
	for _, p := range []string{"1", "8"} {
		out := capture(t, func() error {
			return run(context.Background(), []string{"sweep", "-json", "-parallelism", p, filepath.Join("testdata", "sweep.json")})
		})
		checkGolden(t, "sweep.ndjson.golden", out)
	}
}

// TestSweepCacheDirByteIdentical: a warm re-run through -cache-dir (all
// points answered from the manifest) emits exactly the cold run's
// bytes — the in-process version of the CI sweep smoke job.
func TestSweepCacheDirByteIdentical(t *testing.T) {
	dir := t.TempDir()
	sweepArgs := func(out string) []string {
		return []string{"sweep", "-json", "-cache-dir", dir, "-out", out, filepath.Join("testdata", "sweep.json")}
	}
	cold := filepath.Join(t.TempDir(), "cold.ndjson")
	warm := filepath.Join(t.TempDir(), "warm.ndjson")
	if err := run(context.Background(), sweepArgs(cold)); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), sweepArgs(warm)); err != nil {
		t.Fatal(err)
	}
	c, err := os.ReadFile(cold)
	if err != nil {
		t.Fatal(err)
	}
	w, err := os.ReadFile(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c, w) {
		t.Errorf("warm sweep differs from cold:\n%s\nvs\n%s", w, c)
	}
}

// TestSweepRejectsBadFile: strict decoding surfaces the file name.
func TestSweepRejectsBadFile(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"sweep":1,"bogus":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"sweep", bad})
	if err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("err = %v, want decode failure naming the file", err)
	}
}

// TestExpUnknownID: the exp verb still rejects unknown ids up front.
func TestExpUnknownID(t *testing.T) {
	if err := run(context.Background(), []string{"exp", "e99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
