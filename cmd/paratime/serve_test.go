package main

import (
	"context"
	"path/filepath"
	"testing"

	"paratime/internal/cachestore"
)

// TestBuildServeCache: without -cache-dir the result cache is a bounded
// memory LRU; with it, a two-tier memory-over-disk cache rooted at the
// directory (created on demand).
func TestBuildServeCache(t *testing.T) {
	c, err := buildServeCache("")
	if err != nil {
		t.Fatal(err)
	}
	mem, ok := c.(*cachestore.Memory)
	if !ok {
		t.Fatalf("memory-only cache is %T", c)
	}
	if mem.Cap() != defaultResultCacheEntries {
		t.Errorf("cap %d, want %d", mem.Cap(), defaultResultCacheEntries)
	}

	dir := filepath.Join(t.TempDir(), "cache", "nested")
	c2, err := buildServeCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	tt, ok := c2.(*cachestore.TwoTier)
	if !ok {
		t.Fatalf("persistent cache is %T", c2)
	}
	disk, ok := tt.Back().(*cachestore.Disk)
	if !ok {
		t.Fatalf("back tier is %T", tt.Back())
	}
	if disk.Dir() != dir {
		t.Errorf("disk dir %q, want %q", disk.Dir(), dir)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeBadFlags: unknown flags fail fast instead of starting a
// listener.
func TestServeBadFlags(t *testing.T) {
	if err := runServe(context.Background(), []string{"-bogus"}); err == nil {
		t.Fatal("bogus flag accepted")
	}
	if err := runServe(context.Background(), []string{"-addr", "not-an-address", "-queue", "1"}); err == nil {
		t.Fatal("unusable listen address accepted")
	}
}
