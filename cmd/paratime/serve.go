package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"

	"paratime/internal/cachestore"
	"paratime/internal/engine"
	"paratime/internal/server"
)

// Default sizing for the serve verb's caches and queue.
const (
	defaultResultCacheEntries = 1024
	defaultResultCacheBytes   = 64 << 20 // response-stream payload bound
	defaultMemoEntries        = 256
	defaultQueueDepth         = 64
	// defaultAdmitFraction bounds any single memory-tier payload to this
	// fraction of the tier's byte budget: one giant explore witness (or
	// sweep report) must not flush a quarter of the hot set to be
	// admitted. Oversized payloads still land in the disk tier.
	defaultAdmitFraction = 0.25
)

// buildServeCache assembles the result cache for the serve verb: an
// in-memory LRU, fronted onto a persistent disk tier when cacheDir is
// set (so a restarted server answers known scenarios without
// re-analyzing anything).
func buildServeCache(cacheDir string) (cachestore.CacheBackend, error) {
	// Bounded by entries and bytes: cached NDJSON streams vary wildly in
	// size (explore witnesses), so the entry bound alone cannot cap the
	// memory footprint. The admission fraction keeps one huge response
	// from evicting a large slice of the hot set.
	mem := cachestore.NewMemorySizedAdmit(defaultResultCacheEntries, defaultResultCacheBytes, defaultAdmitFraction)
	if cacheDir == "" {
		return mem, nil
	}
	disk, err := cachestore.NewDisk(cacheDir)
	if err != nil {
		return nil, err
	}
	return cachestore.NewTwoTier(mem, disk), nil
}

// runServe implements `paratime serve`: it stands up the analysis
// service and blocks until ctx is cancelled (Ctrl-C), then drains
// in-flight requests and closes the cache tiers.
func runServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	cacheDir := fs.String("cache-dir", "", "persistent result-cache directory (empty: memory only)")
	maxInflight := fs.Int("max-inflight", 0, "max concurrent analyses (0: GOMAXPROCS)")
	queue := fs.Int("queue", defaultQueueDepth, "admission queue depth (overflow answers 429)")
	timeout := fs.Duration("timeout", 0, "per-request analysis timeout (0: none)")
	parallelism := fs.Int("parallelism", 0, "intra-analysis workers per request (0: PARATIME_PARALLELISM or GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cache, err := buildServeCache(*cacheDir)
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		// The engine's prepare memo is LRU-bounded: a long-lived server
		// must not grow without bound across distinct scenarios.
		Engine:      engine.NewWithCache(0, cachestore.NewMemory(defaultMemoEntries)),
		Cache:       cache,
		MaxInflight: *maxInflight,
		QueueDepth:  *queue,
		Timeout:     *timeout,
		Parallelism: *parallelism,
	})
	return srv.ListenAndServe(ctx, *addr, func(a net.Addr) {
		fmt.Fprintf(os.Stderr, "paratime: serving on http://%s (POST /v1/analyze)\n", a)
	})
}
