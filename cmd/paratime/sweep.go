package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"paratime/internal/cachestore"
	"paratime/internal/engine"
	"paratime/internal/spec"
	"paratime/internal/sweep"
)

// Default sizing for the sweep verb's caches.
const (
	// defaultSweepMemoEntries LRU-caps the engine's Prepare memo: a
	// million-point sweep must not hold a prepared artefact per distinct
	// system forever.
	defaultSweepMemoEntries = 512
	// defaultSweepManifestEntries / Bytes bound the in-memory manifest
	// tier fronting the persistent one.
	defaultSweepManifestEntries = 4096
	defaultSweepManifestBytes   = 64 << 20
)

// buildSweepManifest assembles the incremental-re-analysis manifest: a
// bounded memory LRU fronting a persistent disk tier under cacheDir.
// Without a cache directory there is no manifest at all — every point
// of one run is a distinct scenario, so a purely in-process manifest
// could never hit.
func buildSweepManifest(cacheDir string) (cachestore.CacheBackend, error) {
	if cacheDir == "" {
		return nil, nil
	}
	disk, err := cachestore.NewDisk(cacheDir)
	if err != nil {
		return nil, err
	}
	mem := cachestore.NewMemorySizedAdmit(defaultSweepManifestEntries, defaultSweepManifestBytes, defaultAdmitFraction)
	return cachestore.NewTwoTier(mem, disk), nil
}

// runSweep implements `paratime sweep`: decode one sweep document,
// stream one result line per point (text, or NDJSON with -json) to
// stdout or -out, and print the run summary — point and error counts,
// manifest hits, Prepare-memo reuse ratio, scenarios/sec — to stderr.
//
//paralint:canonical NDJSON lines come from sweep.Line structs with fixed json tags; the stream is the command's pinned wire format
func runSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit one NDJSON line per point instead of text")
	parallelism := fs.Int("parallelism", 0, "concurrently priced points (0: PARATIME_PARALLELISM or GOMAXPROCS; results are identical at any value)")
	cacheDir := fs.String("cache-dir", "", "persistent manifest directory for incremental re-runs (empty: recompute everything)")
	out := fs.String("out", "", "write the result stream to this file instead of stdout")
	unordered := fs.Bool("unordered", false, "emit lines as points complete instead of in point order (throughput mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("sweep wants exactly one sweep file (or '-' for stdin)")
	}
	path := fs.Arg(0)
	var (
		data []byte
		err  error
	)
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	doc, err := spec.DecodeSweep(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	manifest, err := buildSweepManifest(*cacheDir)
	if err != nil {
		return err
	}
	if manifest != nil {
		defer manifest.Close()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)

	emit := func(l sweep.Line) error {
		if *asJSON {
			b, err := json.Marshal(l)
			if err != nil {
				return err
			}
			b = append(b, '\n')
			_, err = bw.Write(b)
			return err
		}
		_, err := bw.WriteString(sweepTextLine(l))
		return err
	}
	sum, err := sweep.Run(ctx, doc, sweep.Options{
		Engine:      engine.NewWithCache(0, cachestore.NewMemory(defaultSweepMemoEntries)),
		Parallelism: *parallelism,
		Unordered:   *unordered,
		Manifest:    manifest,
	}, emit)
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, sum.String())
	if sum.Errors > 0 {
		return fmt.Errorf("sweep: %d of %d point(s) failed", sum.Errors, sum.Points)
	}
	return nil
}

// sweepTextLine renders one point as a single aligned text line:
// the coordinate ID, then task=WCET pairs (or the point's error).
func sweepTextLine(l sweep.Line) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-48s", l.ID)
	if l.Error != "" {
		fmt.Fprintf(&sb, "  ERROR %s", l.Error)
	} else {
		for _, t := range l.Report.Tasks {
			fmt.Fprintf(&sb, "  %s=%d", t.Name, t.WCET)
		}
	}
	sb.WriteByte('\n')
	return sb.String()
}
