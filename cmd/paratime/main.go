// Command paratime is the toolkit's CLI: assemble programs, inspect
// CFGs, compute WCETs, simulate, and run the survey-reproduction
// experiments.
//
// Usage:
//
//	paratime asm  <file.s>          assemble and disassemble
//	paratime cfg  <file.s>          dump the CFG, loops and bounds
//	paratime wcet <file.s>          static WCET analysis (default system)
//	paratime sim  <file.s>          cycle-accurate solo simulation
//	paratime suite                  analyze + simulate the benchmark suite
//	paratime exp  <id>|all          run experiment(s), e.g. e4 (see list)
//	paratime list                   list experiments
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"paratime"
	"paratime/internal/cfg"
	"paratime/internal/engine"
	"paratime/internal/experiments"
	"paratime/internal/flow"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paratime:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "asm":
		return withProg(args, func(p *paratime.Program) error {
			fmt.Print(p.Disassemble())
			return nil
		})
	case "cfg":
		return withProg(args, func(p *paratime.Program) error {
			g, err := cfg.Build(p)
			if err != nil {
				return err
			}
			if _, _, err := flow.BoundAll(g, nil); err != nil {
				fmt.Fprintln(os.Stderr, "note:", err)
			}
			fmt.Print(g.Dump())
			return nil
		})
	case "wcet":
		return withProg(args, func(p *paratime.Program) error {
			a, err := paratime.Analyze(paratime.Task{Name: p.Name, Prog: p}, paratime.DefaultSystem())
			if err != nil {
				return err
			}
			fmt.Printf("WCET      %d cycles\n", a.WCET)
			fmt.Printf("classes   %s\n", a.ClassSummary())
			fmt.Printf("ILP       %d vars, %d constraints, %d nodes\n",
				a.IPET.Vars, a.IPET.Cons, a.IPET.Nodes)
			return nil
		})
	case "sim":
		return withProg(args, func(p *paratime.Program) error {
			sys := paratime.DefaultSystem()
			s := paratime.BuildSim(sys, paratime.DefaultMemConfig(), nil, false,
				paratime.Task{Name: p.Name, Prog: p})
			res, err := paratime.Simulate(s, 1_000_000_000)
			if err != nil {
				return err
			}
			st := res.Stats[0]
			fmt.Printf("cycles    %d\nretired   %d\nL1I h/m   %d/%d\nL1D h/m   %d/%d\nL2 h/m    %d/%d\n",
				st.Cycles, st.Retired, st.L1IHits, st.L1IMisses,
				st.L1DHits, st.L1DMisses, st.L2Hits, st.L2Misses)
			return nil
		})
	case "suite":
		// Analyses fan out across the batch engine's worker pool and the
		// validation simulations across a matching pool; results print in
		// task order, byte-identical to the sequential loop.
		sys := paratime.DefaultSystem()
		tasks := paratime.Suite()
		as, err := paratime.AnalyzeAll(tasks, sys)
		if err != nil {
			return err
		}
		sims := make([]*paratime.SimResult, len(tasks))
		err = engine.ForEach(0, len(tasks), func(i int) error {
			s := paratime.BuildSim(sys, paratime.DefaultMemConfig(), nil, false, tasks[i])
			res, err := paratime.Simulate(s, 1_000_000_000)
			if err != nil {
				return err
			}
			sims[i] = res
			return nil
		})
		if err != nil {
			return err
		}
		for i, task := range tasks {
			fmt.Printf("%-12s WCET %8d   sim %8d   %s\n",
				task.Name, as[i].WCET, sims[i].Cycles(0), as[i].ClassSummary())
		}
		return nil
	case "exp":
		if len(args) < 2 {
			return fmt.Errorf("exp wants an experiment id or 'all'")
		}
		ids := args[1:]
		if args[1] == "all" {
			ids = experiments.IDs
		}
		runners := make([]experiments.Runner, len(ids))
		for i, id := range ids {
			runner, ok := experiments.All[strings.ToLower(id)]
			if !ok {
				return fmt.Errorf("unknown experiment %q (try 'paratime list')", id)
			}
			runners[i] = runner
		}
		// Experiments are independent; run them concurrently and print in
		// id order (up to the first failure, as the sequential loop did).
		results := make([]*experiments.Result, len(ids))
		runErr := engine.ForEach(0, len(ids), func(i int) error {
			res, err := runners[i]()
			if err != nil {
				return fmt.Errorf("%s: %w", ids[i], err)
			}
			results[i] = res
			return nil
		})
		for _, res := range results {
			if res == nil {
				return runErr
			}
			res.Table.Fprint(os.Stdout)
			keys := make([]string, 0, len(res.Metrics))
			for k := range res.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("   %s = %g\n", k, res.Metrics[k])
			}
			fmt.Println()
		}
		return nil
	case "list":
		for _, id := range experiments.IDs {
			fmt.Println(id)
		}
		return nil
	default:
		return usage()
	}
}

func withProg(args []string, f func(*paratime.Program) error) error {
	if len(args) < 2 {
		return fmt.Errorf("%s wants an assembly file", args[0])
	}
	src, err := os.ReadFile(args[1])
	if err != nil {
		return err
	}
	p, err := paratime.Assemble(args[1], string(src))
	if err != nil {
		return err
	}
	return f(p)
}

func usage() error {
	return fmt.Errorf("usage: paratime asm|cfg|wcet|sim <file.s> | suite | exp <id>|all | list")
}
