// Command paratime is the toolkit's CLI: assemble programs, inspect
// CFGs, compute WCETs, simulate, run declarative analysis scenarios,
// and run the survey-reproduction experiments.
//
// Usage:
//
//	paratime asm  <file.s>          assemble and disassemble
//	paratime cfg  <file.s>          dump the CFG, loops and bounds
//	paratime wcet <file.s>          static WCET analysis (default system)
//	paratime sim  <file.s>          cycle-accurate solo simulation
//	paratime suite                  analyze + simulate the benchmark suite
//	paratime run  [-json] [-parallelism n] <file...|->  run scenario file(s)
//	                                (see export); -parallelism sets the
//	                                intra-analysis worker count (results
//	                                are identical at any value)
//	paratime export <exp-id>|all    dump experiment(s) as scenario JSON
//	paratime exp  <id>|all          run experiment(s), e.g. e4 (see list)
//	paratime tightness [-update] [file]  check (or rewrite) the precision
//	                                baseline, default TIGHTNESS.json
//	paratime sweep [flags] <sweep.json|->  stream a scenario product-space
//	                                ("sweep": 1): one result line per
//	                                point, artefact reuse across points,
//	                                incremental re-runs via -cache-dir
//	paratime serve [flags]          HTTP analysis service (POST /v1/analyze)
//	paratime list                   list experiments
//
// Scenario files carry schema version 1 ("spec": 1); `paratime export
// all | paratime run -` replays every exportable experiment regime
// through the Scenario API. An interrupt (Ctrl-C) stops dispatching
// further batch work promptly; items already in flight finish first.
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"paratime"
	"paratime/internal/cfg"
	"paratime/internal/engine"
	"paratime/internal/experiments"
	"paratime/internal/flow"
	"paratime/internal/parallel"
	"paratime/internal/spec"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paratime:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "asm":
		return withProg(args, func(p *paratime.Program) error {
			fmt.Print(p.Disassemble())
			return nil
		})
	case "cfg":
		return withProg(args, func(p *paratime.Program) error {
			g, err := cfg.Build(p)
			if err != nil {
				return err
			}
			if _, _, err := flow.BoundAll(g, nil); err != nil {
				fmt.Fprintln(os.Stderr, "note:", err)
			}
			fmt.Print(g.Dump())
			return nil
		})
	case "wcet":
		return withProg(args, func(p *paratime.Program) error {
			a, err := paratime.Analyze(paratime.Task{Name: p.Name, Prog: p}, paratime.DefaultSystem())
			if err != nil {
				return err
			}
			fmt.Printf("WCET      %d cycles\n", a.WCET)
			fmt.Printf("classes   %s\n", a.ClassSummary())
			fmt.Printf("ILP       %d vars, %d constraints, %d nodes\n",
				a.IPET.Vars, a.IPET.Cons, a.IPET.Nodes)
			return nil
		})
	case "sim":
		return withProg(args, func(p *paratime.Program) error {
			sys := paratime.DefaultSystem()
			s := paratime.BuildSim(sys, paratime.DefaultMemConfig(), nil, false,
				paratime.Task{Name: p.Name, Prog: p})
			res, err := paratime.Simulate(s, 1_000_000_000)
			if err != nil {
				return err
			}
			st := res.Stats[0]
			fmt.Printf("cycles    %d\nretired   %d\nL1I h/m   %d/%d\nL1D h/m   %d/%d\nL2 h/m    %d/%d\n",
				st.Cycles, st.Retired, st.L1IHits, st.L1IMisses,
				st.L1DHits, st.L1DMisses, st.L2Hits, st.L2Misses)
			return nil
		})
	case "suite":
		// Analyses fan out across the batch engine's worker pool and the
		// validation simulations across a matching pool; results print in
		// task order, byte-identical to the sequential loop.
		sys := paratime.DefaultSystem()
		tasks := paratime.Suite()
		eng := paratime.DefaultEngine()
		as, err := eng.AnalyzeAll(ctx, engine.Requests(tasks, sys))
		if err != nil {
			return err
		}
		sims := make([]*paratime.SimResult, len(tasks))
		err = engine.ForEach(ctx, 0, len(tasks), func(i int) error {
			s := paratime.BuildSim(sys, paratime.DefaultMemConfig(), nil, false, tasks[i])
			res, err := paratime.Simulate(s, 1_000_000_000)
			if err != nil {
				return err
			}
			sims[i] = res
			return nil
		})
		if err != nil {
			return err
		}
		for i, task := range tasks {
			fmt.Printf("%-12s WCET %8d   sim %8d   %s\n",
				task.Name, as[i].WCET, sims[i].Cycles(0), as[i].ClassSummary())
		}
		return nil
	case "run":
		return runScenarios(ctx, args[1:])
	case "export":
		if len(args) < 2 {
			return fmt.Errorf("export wants an experiment id or 'all' (exportable: %s)",
				strings.Join(experiments.ExportableIDs(), " "))
		}
		var (
			scs []*spec.Scenario
			err error
		)
		if args[1] == "all" {
			scs, err = experiments.ExportAll()
		} else {
			scs, err = experiments.Export(strings.ToLower(args[1]))
		}
		if err != nil {
			return err
		}
		out, err := spec.EncodeAll(scs)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(out)
		return err
	case "exp":
		return runExperiments(ctx, args[1:])
	case "tightness":
		return runTightness(args[1:])
	case "sweep":
		return runSweep(ctx, args[1:])
	case "serve":
		return runServe(ctx, args[1:])
	case "list":
		for _, id := range experiments.IDs {
			fmt.Println(id)
		}
		return nil
	default:
		return usage()
	}
}

// runScenarios decodes scenario file(s) (or stdin with "-") and runs
// every scenario in them through the Scenario API.
func runScenarios(ctx context.Context, args []string) error {
	asJSON := false
flags:
	for len(args) > 0 {
		switch {
		case args[0] == "-json":
			asJSON = true
			args = args[1:]
		case args[0] == "-parallelism" && len(args) > 1:
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 0 {
				return fmt.Errorf("run: -parallelism wants a non-negative integer, got %q", args[1])
			}
			parallel.SetDefault(n)
			args = args[2:]
		default:
			break flags
		}
	}
	if len(args) < 1 {
		return fmt.Errorf("run wants scenario file(s) (or '-' for stdin)")
	}
	var scs []*spec.Scenario
	for _, path := range args {
		var (
			data []byte
			err  error
		)
		if path == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(path)
		}
		if err != nil {
			return err
		}
		decoded, err := spec.DecodeAll(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		scs = append(scs, decoded...)
	}
	for i, sc := range scs {
		rep, err := paratime.Run(ctx, sc)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.String(), err)
		}
		if asJSON {
			out, err := rep.Encode()
			if err != nil {
				return err
			}
			if _, err := os.Stdout.Write(out); err != nil {
				return err
			}
			continue
		}
		rep.Fprint(os.Stdout)
		if i < len(scs)-1 {
			fmt.Println()
		}
	}
	return nil
}

// runExperiments runs the requested experiments concurrently and prints
// one status block per id: the result table, or FAILED with the error,
// or skipped (not dispatched after an earlier failure) — so a mid-batch
// failure can no longer silently swallow which ids never ran.
func runExperiments(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("exp wants an experiment id or 'all'")
	}
	ids := args
	if args[0] == "all" {
		ids = experiments.IDs
	}
	runners := make([]experiments.Runner, len(ids))
	for i, id := range ids {
		runner, ok := experiments.All[strings.ToLower(id)]
		if !ok {
			return fmt.Errorf("unknown experiment %q (try 'paratime list')", id)
		}
		runners[i] = runner
	}
	results := make([]*experiments.Result, len(ids))
	errs := make([]error, len(ids))
	runErr := engine.ForEach(ctx, 0, len(ids), func(i int) error {
		res, err := runners[i]()
		if err != nil {
			errs[i] = err
			return fmt.Errorf("%s: %w", ids[i], err)
		}
		results[i] = res
		return nil
	})
	nFailed, nSkipped := 0, 0
	for i, res := range results {
		switch {
		case res != nil:
			res.Table.Fprint(os.Stdout)
			keys := make([]string, 0, len(res.Metrics))
			for k := range res.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("   %s = %g\n", k, res.Metrics[k])
			}
			fmt.Println()
		case errs[i] != nil:
			nFailed++
			fmt.Printf("%s: FAILED: %v\n\n", ids[i], errs[i])
		default:
			nSkipped++
			fmt.Printf("%s: skipped (not dispatched after earlier failure or cancellation)\n\n", ids[i])
		}
	}
	if runErr != nil {
		return fmt.Errorf("%d experiment(s) failed, %d skipped: %w", nFailed, nSkipped, runErr)
	}
	return nil
}

// runTightness recomputes the exploration precision baseline and either
// gates against the committed TIGHTNESS.json (CI mode) or rewrites it
// (-update). The gate fails on loosened bounds, exact-worst drift, or a
// soundness break (exact > bound).
func runTightness(args []string) error {
	update := false
	if len(args) > 0 && args[0] == "-update" {
		update = true
		args = args[1:]
	}
	path := "TIGHTNESS.json"
	if len(args) > 0 {
		path = args[0]
	}
	current, err := experiments.TightnessAll()
	if err != nil {
		return err
	}
	if update {
		out, err := experiments.EncodeTightness(current)
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("tightness: wrote %d entr%s to %s\n", len(current), plural(len(current), "y", "ies"), path)
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%w (record a baseline with `paratime tightness -update`)", err)
	}
	baseline, err := experiments.DecodeTightness(data)
	if err != nil {
		return err
	}
	if err := experiments.CheckTightness(current, baseline); err != nil {
		return err
	}
	fmt.Printf("tightness: OK, %d entr%s match %s\n", len(current), plural(len(current), "y", "ies"), path)
	return nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func withProg(args []string, f func(*paratime.Program) error) error {
	if len(args) < 2 {
		return fmt.Errorf("%s wants an assembly file", args[0])
	}
	src, err := os.ReadFile(args[1])
	if err != nil {
		return err
	}
	p, err := paratime.Assemble(args[1], string(src))
	if err != nil {
		return err
	}
	return f(p)
}

func usage() error {
	return fmt.Errorf("usage: paratime asm|cfg|wcet|sim <file.s> | suite | run [-json] [-parallelism n] <scenario.json...|-> | export <id>|all | exp <id>|all | tightness [-update] [file] | sweep [-json] [-parallelism n] [-cache-dir d] [-out f] [-unordered] <sweep.json|-> | serve [-addr a] [-cache-dir d] [-max-inflight n] [-queue n] [-timeout d] [-parallelism n] | list")
}
