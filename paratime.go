// Package paratime is a self-contained toolkit for the static worst-case
// execution time (WCET) analysis of tasks on parallel architectures —
// multicores with shared caches and buses, and multithreaded cores — as
// surveyed by Rochange, "An Overview of Approaches Towards the Timing
// Analysability of Parallel Architectures" (PPES 2011).
//
// The toolkit implements the full static analysis stack of the survey's
// §2 (CFG reconstruction, loop-bound derivation, Must/May/Persistence
// cache abstract interpretation, context-parameterized pipeline costing,
// IPET over an exact rational ILP solver) and every family of approaches
// from §3–§5: joint shared-cache analyses (Yan & Zhang; Li et al. with
// lifetime refinement; Hardy et al. bypass), statically-controlled
// sharing (cache partitioning, locking, TDMA bus schedules), and task
// isolation (round-robin and multi-bandwidth arbiters, CarCore-style HRT
// priority, the PRET thread-interleaved pipeline with its memory wheel).
// A deterministic cycle-accurate multicore simulator validates every
// bound.
//
// Batches of independent analyses run concurrently through the engine
// (NewEngine, Engine.AnalyzeAll): requests fan out across a bounded
// worker pool and the expensive analysis prefix is memoized by content,
// with results bit-identical to the sequential path.
//
// The primary entry point is the Scenario API: a Scenario declaratively
// captures an entire analysis request — tasks, system configuration,
// sharing regime, optional simulation validation — with lossless JSON
// encoding and strict validation, and Run executes it under a
// context.Context:
//
//	sc := &paratime.Scenario{
//	        Spec: paratime.SpecVersion,
//	        Name: "quickstart",
//	        Tasks: []paratime.ScenarioTask{{Name: "demo", Source: `
//	        li   r1, 10
//	loop:   addi r1, r1, -1
//	        bne  r1, r0, loop
//	        halt`}},
//	        System: paratime.DefaultScenarioSystem(),
//	        Mode:   paratime.ScenarioMode{Kind: paratime.ModeSolo},
//	}
//	rep, err := paratime.Run(context.Background(), sc)
//	fmt.Println(rep.Tasks[0].WCET)
package paratime

import (
	"context"
	"fmt"
	"sync"

	"paratime/internal/arbiter"
	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/engine"
	"paratime/internal/flow"
	"paratime/internal/interfere"
	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/pipeline"
	"paratime/internal/sim"
	"paratime/internal/spec"
	"paratime/internal/workload"
)

// Core analysis types.
type (
	// Task is one unit of WCET analysis: a program plus flow annotations.
	Task = core.Task
	// SystemConfig describes the analyzed core and memory hierarchy.
	SystemConfig = core.SystemConfig
	// MemSystem is the memory-hierarchy part of a SystemConfig.
	MemSystem = core.MemSystem
	// Analysis holds every artefact of one task's analysis.
	Analysis = core.Analysis
	// CacheConfig describes one cache level.
	CacheConfig = cache.Config
	// Program is a linked executable image for the toolkit's ISA.
	Program = isa.Program
	// Facts carries loop-bound annotations and extra path constraints.
	Facts = flow.Facts
	// Arbiter is a shared-bus arbitration policy (bound + simulation).
	Arbiter = arbiter.Arbiter
	// MemConfig parameterizes the analyzable memory controller.
	MemConfig = memctrl.Config
	// SimSystem is a multicore simulation configuration.
	SimSystem = sim.System
	// SimResult reports per-core simulation statistics.
	SimResult = sim.Result
)

// Scenario API v1: declarative, serializable analysis requests with one
// context-aware entry point. See internal/spec for the schema.
type (
	// Scenario declaratively captures one complete analysis request.
	Scenario = spec.Scenario
	// ScenarioTask describes one task of a Scenario.
	ScenarioTask = spec.TaskSpec
	// ScenarioSystem describes a Scenario's core and memory hierarchy.
	ScenarioSystem = spec.SystemSpec
	// ScenarioMode selects a Scenario's resource-sharing regime.
	ScenarioMode = spec.ModeSpec
	// ScenarioSim requests cycle-accurate validation alongside analysis.
	ScenarioSim = spec.SimSpec
	// ScenarioPartition selects an L2 partitioning scheme (mode partition).
	ScenarioPartition = spec.PartitionSpec
	// ScenarioLock selects a cache-locking policy (mode lock).
	ScenarioLock = spec.LockSpec
	// ScenarioBus describes a shared-bus arbitration regime (mode bus).
	ScenarioBus = spec.BusSpec
	// ScenarioSlot is one TDMA slot-table entry.
	ScenarioSlot = spec.SlotSpec
	// ScenarioSMT parameterizes the partitioned-queue SMT core (mode smt).
	ScenarioSMT = spec.SMTSpec
	// ScenarioPRET parameterizes the PRET interleaved core (mode pret).
	ScenarioPRET = spec.PretSpec
	// ScenarioExplore requests bounded exhaustive exploration: exact
	// worst case over all declared inputs and initial cache states.
	ScenarioExplore = spec.ExploreSpec
	// ScenarioInput declares one explored input register and its domain.
	ScenarioInput = spec.InputSpec
	// Report is the structured, JSON-encodable result of Run.
	Report = spec.Report
	// TaskReport is one task's outcome within a Report.
	TaskReport = spec.TaskReport
	// ExploreReport summarizes a Report's exhaustive exploration.
	ExploreReport = spec.ExploreReport
	// WitnessReport is a replayable exact-worst witness in a TaskReport.
	WitnessReport = spec.WitnessReport
)

// SpecVersion is the Scenario schema version this build speaks.
const SpecVersion = spec.Version

// Scenario mode kinds (resource-sharing regimes, survey §3–§5).
const (
	ModeSolo      = spec.KindSolo
	ModeJoint     = spec.KindJoint
	ModePartition = spec.KindPartition
	ModeLock      = spec.KindLock
	ModeBus       = spec.KindBus
	ModeSMT       = spec.KindSMT
	ModePRET      = spec.KindPRET
)

// Run executes one scenario on the shared default engine: validation,
// analysis dispatch, optional simulation cross-check, structured report.
// Cancelling ctx makes Run return promptly with ctx.Err().
func Run(ctx context.Context, sc *Scenario) (*Report, error) {
	return spec.Run(ctx, sc, defaultEngine())
}

// DecodeScenario parses and validates one scenario from JSON.
func DecodeScenario(data []byte) (*Scenario, error) { return spec.Decode(data) }

// DecodeScenarios parses a single scenario object or a JSON array of
// scenarios (the `paratime export` format).
func DecodeScenarios(data []byte) ([]*Scenario, error) { return spec.DecodeAll(data) }

// DefaultScenarioSystem returns the canonical default system in Scenario
// form.
func DefaultScenarioSystem() ScenarioSystem { return spec.DefaultSystemSpec() }

// ScenarioSystemOf externalizes a SystemConfig (e.g. one assembled with
// NewSystem) into Scenario form, paired with the default memory device.
func ScenarioSystemOf(sys SystemConfig) ScenarioSystem {
	return spec.SystemToSpec(sys, memctrl.DefaultConfig())
}

// ScenarioTaskOf externalizes a prebuilt task (program plus loop-bound
// annotations) into Scenario form.
func ScenarioTaskOf(t Task) (ScenarioTask, error) { return spec.TaskToSpec(t) }

// Assemble parses assembler text into a Program (see isa.Assemble for the
// syntax).
func Assemble(name, src string) (*Program, error) { return isa.Assemble(name, src) }

// MustAssemble is Assemble, panicking on error.
func MustAssemble(name, src string) *Program { return isa.MustAssemble(name, src) }

// NewFacts returns an empty annotation set.
func NewFacts() *Facts { return flow.NewFacts() }

// DefaultSystem returns the canonical small embedded configuration:
// private L1s, a unified L2, and an analyzable closed-page memory
// controller bound.
func DefaultSystem() SystemConfig { return core.DefaultSystem() }

// SystemOption customizes one aspect of a system configuration built by
// NewSystem.
type SystemOption func(*SystemConfig)

// NewSystem assembles a system configuration from the canonical default
// plus options, replacing hand-mutated SystemConfig structs:
//
//	sys := paratime.NewSystem(
//	        paratime.WithL1I(paratime.CacheConfig{Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}),
//	        paratime.WithSharedL2(paratime.CacheConfig{Sets: 64, Ways: 1, LineBytes: 32, HitLatency: 4}),
//	)
func NewSystem(opts ...SystemOption) SystemConfig {
	sys := core.DefaultSystem()
	for _, opt := range opts {
		opt(&sys)
	}
	return sys
}

// WithPipeline overrides the pipeline timing parameterization.
func WithPipeline(pc pipeline.Config) SystemOption {
	return func(s *SystemConfig) { s.Pipeline = pc }
}

// WithL1I overrides the instruction-cache geometry; the canonical name
// "L1I" is applied.
func WithL1I(c CacheConfig) SystemOption {
	return func(s *SystemConfig) { c.Name = "L1I"; s.Mem.L1I = c }
}

// WithL1D overrides the data-cache geometry; the canonical name "L1D" is
// applied.
func WithL1D(c CacheConfig) SystemOption {
	return func(s *SystemConfig) { c.Name = "L1D"; s.Mem.L1D = c }
}

// WithSharedL2 overrides the unified second level; the canonical name
// "L2" is applied.
func WithSharedL2(c CacheConfig) SystemOption {
	return func(s *SystemConfig) { c.Name = "L2"; s.Mem.L2 = &c }
}

// WithoutL2 removes the second level: L1 misses go straight to memory.
func WithoutL2() SystemOption {
	return func(s *SystemConfig) { s.Mem.L2 = nil }
}

// WithArbitrationDelay sets a fixed worst-case bus-arbitration delay per
// transaction (an arbiter bound such as N·L−1).
func WithArbitrationDelay(d int) SystemOption {
	return func(s *SystemConfig) { s.Mem.BusDelay = d }
}

// WithMemController derives the worst-case memory latency from an
// analyzable memory-controller configuration.
func WithMemController(mem MemConfig) SystemOption {
	return func(s *SystemConfig) { s.Mem.MemLatency = mem.Bound() }
}

// WithMemLatency sets the worst-case main-memory access bound directly.
func WithMemLatency(n int) SystemOption {
	return func(s *SystemConfig) { s.Mem.MemLatency = n }
}

// Analyze runs the complete static WCET analysis of one task.
func Analyze(task Task, sys SystemConfig) (*Analysis, error) { return core.Analyze(task, sys) }

// Prepare runs the analysis up to cache classification, for callers that
// apply interference or locking adjustments before pricing.
func Prepare(task Task, sys SystemConfig) (*Analysis, error) { return core.Prepare(task, sys) }

// Batch analysis.

// Engine is a concurrent batch analyzer: it fans independent analysis
// requests across a bounded worker pool and memoizes the expensive
// prepare prefix (CFG, flow bounds, cache classification) by content, so
// sweeps over bus arbiters or repeated experiment configurations reuse
// prepared artefacts. Results are bit-identical to the sequential path.
type Engine = engine.Engine

// AnalysisRequest is one (Task, SystemConfig) unit of batch analysis.
type AnalysisRequest = engine.Request

// NewEngine returns a batch analyzer running at most workers concurrent
// analyses; workers <= 0 selects GOMAXPROCS.
func NewEngine(workers int) *Engine { return engine.New(workers) }

// defaultEngine backs the package-level batch entry points, so repeated
// facade calls share one memo cache.
var defaultEngine = sync.OnceValue(func() *Engine { return engine.New(0) })

// DefaultEngine returns the shared engine behind AnalyzeAll and
// AnalyzeJoint, for callers that want its memo statistics or to bound
// memory with Reset between unrelated sweeps (the memo otherwise grows
// with the number of distinct analyzed configurations).
func DefaultEngine() *Engine { return defaultEngine() }

// AnalyzeAll analyzes every task under one system configuration on the
// shared default engine, returning analyses in task order.
//
// Deprecated: build a Scenario with Mode{Kind: ModeSolo} and call Run,
// or use Engine.AnalyzeAll for context-aware batch analysis. Kept as a
// thin wrapper for source compatibility.
func AnalyzeAll(tasks []Task, sys SystemConfig) ([]*Analysis, error) {
	return defaultEngine().AnalyzeAll(context.Background(), engine.Requests(tasks, sys))
}

// Arbiters.

// NewRoundRobinBus returns a round-robin bus for n cores with the given
// transaction latency; its per-core delay bound is N·L−1.
func NewRoundRobinBus(n, lat int) Arbiter { return arbiter.NewRoundRobin(n, lat) }

// NewTDMABus returns a slot-table bus (Rosén et al.).
func NewTDMABus(slots []arbiter.Slot, lat int) *arbiter.TDMA { return arbiter.NewTDMA(slots, lat) }

// NewMultiBandwidthBus returns an MBBA-style weighted bus.
func NewMultiBandwidthBus(weights []int, lat int) *arbiter.TDMA {
	return arbiter.NewMultiBandwidth(weights, lat)
}

// TransactionLatency returns the bus occupancy covering one full memory
// round trip for the given system (L2 lookup plus worst-case memory).
//
// Deprecated: a Scenario with Mode{Kind: ModeBus} derives this latency
// itself when the bus spec leaves Latency zero. Kept as a thin wrapper
// for source compatibility.
func TransactionLatency(sys SystemConfig, mem MemConfig) int {
	l := mem.Bound()
	if sys.Mem.L2 != nil {
		l += sys.Mem.L2.HitLatency
	}
	return l
}

// WithBusDelay returns a copy of the system configuration carrying the
// arbitration bound as the per-transaction BusDelay.
//
// Deprecated: use NewSystem with WithArbitrationDelay, or a Scenario
// with Mode{Kind: ModeBus}, which derives per-core bounds from the
// arbiter. Kept as a thin wrapper for source compatibility.
func WithBusDelay(sys SystemConfig, d int) SystemConfig {
	sys.Mem.BusDelay = d
	return sys
}

// Simulation.

// BuildSim assembles a multicore simulation where every core runs one
// task under the same core/memory configuration.
func BuildSim(sys SystemConfig, mem MemConfig, bus Arbiter, sharedL2 bool, tasks ...Task) SimSystem {
	return sim.FromConfig(sys, mem, bus, sharedL2, tasks...)
}

// Simulate runs a simulation to completion.
func Simulate(s SimSystem, maxCycles int64) (*SimResult, error) { return sim.Run(s, maxCycles) }

// Joint shared-cache analysis (survey §4.1).

// ConflictModel selects the shared-L2 interference semantics.
type ConflictModel = interfere.ConflictModel

// Conflict models.
const (
	// DirectMapped is Yan & Zhang's set-kill model.
	DirectMapped = interfere.DirectMapped
	// AgeShift is Li et al.'s distinct-foreign-line aging model.
	AgeShift = interfere.AgeShift
)

// AnalyzeJoint computes solo and conflict-aware WCETs for co-scheduled
// tasks sharing the system's L2. The per-task preparation runs on the
// shared default engine's worker pool.
//
// Deprecated: build a Scenario with Mode{Kind: ModeJoint} and call Run.
// Kept as a thin wrapper for source compatibility.
func AnalyzeJoint(tasks []Task, sys SystemConfig, model ConflictModel) (*interfere.JointResult, error) {
	return defaultEngine().AnalyzeJoint(context.Background(), tasks, sys, model)
}

// Workload.

// Suite returns the built-in benchmark tasks at disjoint address ranges.
func Suite() []Task { return workload.Suite() }

// Bench returns one named benchmark from the suite.
func Bench(name string) (Task, error) {
	for _, t := range workload.Suite() {
		if t.Name == name {
			return t, nil
		}
	}
	return Task{}, fmt.Errorf("paratime: no benchmark %q", name)
}

// DefaultMemConfig returns the standard analyzable memory device.
func DefaultMemConfig() MemConfig { return memctrl.DefaultConfig() }

// DefaultPipeline returns the standard pipeline parameterization.
func DefaultPipeline() pipeline.Config { return pipeline.DefaultConfig() }
