// Package paratime is a self-contained toolkit for the static worst-case
// execution time (WCET) analysis of tasks on parallel architectures —
// multicores with shared caches and buses, and multithreaded cores — as
// surveyed by Rochange, "An Overview of Approaches Towards the Timing
// Analysability of Parallel Architectures" (PPES 2011).
//
// The toolkit implements the full static analysis stack of the survey's
// §2 (CFG reconstruction, loop-bound derivation, Must/May/Persistence
// cache abstract interpretation, context-parameterized pipeline costing,
// IPET over an exact rational ILP solver) and every family of approaches
// from §3–§5: joint shared-cache analyses (Yan & Zhang; Li et al. with
// lifetime refinement; Hardy et al. bypass), statically-controlled
// sharing (cache partitioning, locking, TDMA bus schedules), and task
// isolation (round-robin and multi-bandwidth arbiters, CarCore-style HRT
// priority, the PRET thread-interleaved pipeline with its memory wheel).
// A deterministic cycle-accurate multicore simulator validates every
// bound.
//
// Batches of independent analyses run concurrently through the engine
// (NewEngine, AnalyzeAll): requests fan out across a bounded worker
// pool and the expensive analysis prefix is memoized by content, with
// results bit-identical to the sequential path.
//
// Quick start:
//
//	prog := paratime.MustAssemble("demo", `
//	        li   r1, 10
//	loop:   addi r1, r1, -1
//	        bne  r1, r0, loop
//	        halt`)
//	a, err := paratime.Analyze(paratime.Task{Name: "demo", Prog: prog},
//	        paratime.DefaultSystem())
//	fmt.Println(a.WCET)
package paratime

import (
	"fmt"
	"sync"

	"paratime/internal/arbiter"
	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/engine"
	"paratime/internal/flow"
	"paratime/internal/interfere"
	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/pipeline"
	"paratime/internal/sim"
	"paratime/internal/workload"
)

// Core analysis types.
type (
	// Task is one unit of WCET analysis: a program plus flow annotations.
	Task = core.Task
	// SystemConfig describes the analyzed core and memory hierarchy.
	SystemConfig = core.SystemConfig
	// MemSystem is the memory-hierarchy part of a SystemConfig.
	MemSystem = core.MemSystem
	// Analysis holds every artefact of one task's analysis.
	Analysis = core.Analysis
	// CacheConfig describes one cache level.
	CacheConfig = cache.Config
	// Program is a linked executable image for the toolkit's ISA.
	Program = isa.Program
	// Facts carries loop-bound annotations and extra path constraints.
	Facts = flow.Facts
	// Arbiter is a shared-bus arbitration policy (bound + simulation).
	Arbiter = arbiter.Arbiter
	// MemConfig parameterizes the analyzable memory controller.
	MemConfig = memctrl.Config
	// SimSystem is a multicore simulation configuration.
	SimSystem = sim.System
	// SimResult reports per-core simulation statistics.
	SimResult = sim.Result
)

// Assemble parses assembler text into a Program (see isa.Assemble for the
// syntax).
func Assemble(name, src string) (*Program, error) { return isa.Assemble(name, src) }

// MustAssemble is Assemble, panicking on error.
func MustAssemble(name, src string) *Program { return isa.MustAssemble(name, src) }

// NewFacts returns an empty annotation set.
func NewFacts() *Facts { return flow.NewFacts() }

// DefaultSystem returns a small embedded configuration with private L1s,
// a unified L2, and an analyzable closed-page memory controller bound.
func DefaultSystem() SystemConfig {
	sys := core.DefaultSystem()
	sys.Mem.MemLatency = memctrl.DefaultConfig().Bound()
	return sys
}

// Analyze runs the complete static WCET analysis of one task.
func Analyze(task Task, sys SystemConfig) (*Analysis, error) { return core.Analyze(task, sys) }

// Prepare runs the analysis up to cache classification, for callers that
// apply interference or locking adjustments before pricing.
func Prepare(task Task, sys SystemConfig) (*Analysis, error) { return core.Prepare(task, sys) }

// Batch analysis.

// Engine is a concurrent batch analyzer: it fans independent analysis
// requests across a bounded worker pool and memoizes the expensive
// prepare prefix (CFG, flow bounds, cache classification) by content, so
// sweeps over bus arbiters or repeated experiment configurations reuse
// prepared artefacts. Results are bit-identical to the sequential path.
type Engine = engine.Engine

// AnalysisRequest is one (Task, SystemConfig) unit of batch analysis.
type AnalysisRequest = engine.Request

// NewEngine returns a batch analyzer running at most workers concurrent
// analyses; workers <= 0 selects GOMAXPROCS.
func NewEngine(workers int) *Engine { return engine.New(workers) }

// defaultEngine backs the package-level batch entry points, so repeated
// facade calls share one memo cache.
var defaultEngine = sync.OnceValue(func() *Engine { return engine.New(0) })

// DefaultEngine returns the shared engine behind AnalyzeAll and
// AnalyzeJoint, for callers that want its memo statistics or to bound
// memory with Reset between unrelated sweeps (the memo otherwise grows
// with the number of distinct analyzed configurations).
func DefaultEngine() *Engine { return defaultEngine() }

// AnalyzeAll analyzes every task under one system configuration on the
// shared default engine, returning analyses in task order.
func AnalyzeAll(tasks []Task, sys SystemConfig) ([]*Analysis, error) {
	return defaultEngine().AnalyzeAll(engine.Requests(tasks, sys))
}

// Arbiters.

// NewRoundRobinBus returns a round-robin bus for n cores with the given
// transaction latency; its per-core delay bound is N·L−1.
func NewRoundRobinBus(n, lat int) Arbiter { return arbiter.NewRoundRobin(n, lat) }

// NewTDMABus returns a slot-table bus (Rosén et al.).
func NewTDMABus(slots []arbiter.Slot, lat int) *arbiter.TDMA { return arbiter.NewTDMA(slots, lat) }

// NewMultiBandwidthBus returns an MBBA-style weighted bus.
func NewMultiBandwidthBus(weights []int, lat int) *arbiter.TDMA {
	return arbiter.NewMultiBandwidth(weights, lat)
}

// TransactionLatency returns the bus occupancy covering one full memory
// round trip for the given system (L2 lookup plus worst-case memory).
func TransactionLatency(sys SystemConfig, mem MemConfig) int {
	l := mem.Bound()
	if sys.Mem.L2 != nil {
		l += sys.Mem.L2.HitLatency
	}
	return l
}

// WithBusDelay returns a copy of the system configuration carrying the
// arbitration bound as the per-transaction BusDelay.
func WithBusDelay(sys SystemConfig, d int) SystemConfig {
	sys.Mem.BusDelay = d
	return sys
}

// Simulation.

// BuildSim assembles a multicore simulation where every core runs one
// task under the same core/memory configuration.
func BuildSim(sys SystemConfig, mem MemConfig, bus Arbiter, sharedL2 bool, tasks ...Task) SimSystem {
	s := sim.System{L2: sys.Mem.L2, SharedL2: sharedL2, Bus: bus, Mem: mem}
	for _, t := range tasks {
		s.Cores = append(s.Cores, sim.CoreConfig{
			Name: t.Name,
			Prog: t.Prog,
			Pipe: sys.Pipeline,
			L1I:  sys.Mem.L1I,
			L1D:  sys.Mem.L1D,
		})
	}
	return s
}

// Simulate runs a simulation to completion.
func Simulate(s SimSystem, maxCycles int64) (*SimResult, error) { return sim.Run(s, maxCycles) }

// Joint shared-cache analysis (survey §4.1).

// ConflictModel selects the shared-L2 interference semantics.
type ConflictModel = interfere.ConflictModel

// Conflict models.
const (
	// DirectMapped is Yan & Zhang's set-kill model.
	DirectMapped = interfere.DirectMapped
	// AgeShift is Li et al.'s distinct-foreign-line aging model.
	AgeShift = interfere.AgeShift
)

// AnalyzeJoint computes solo and conflict-aware WCETs for co-scheduled
// tasks sharing the system's L2. The per-task preparation runs on the
// shared default engine's worker pool.
func AnalyzeJoint(tasks []Task, sys SystemConfig, model ConflictModel) (*interfere.JointResult, error) {
	return defaultEngine().AnalyzeJoint(tasks, sys, model)
}

// Workload.

// Suite returns the built-in benchmark tasks at disjoint address ranges.
func Suite() []Task { return workload.Suite() }

// Bench returns one named benchmark from the suite.
func Bench(name string) (Task, error) {
	for _, t := range workload.Suite() {
		if t.Name == name {
			return t, nil
		}
	}
	return Task{}, fmt.Errorf("paratime: no benchmark %q", name)
}

// DefaultMemConfig returns the standard analyzable memory device.
func DefaultMemConfig() MemConfig { return memctrl.DefaultConfig() }

// DefaultPipeline returns the standard pipeline parameterization.
func DefaultPipeline() pipeline.Config { return pipeline.DefaultConfig() }
