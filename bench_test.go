package paratime

// The benchmark harness: one benchmark per experiment in DESIGN.md's
// index. Each benchmark regenerates its experiment's table (printed with
// -v via b.Log) and reports the experiment's headline metrics, so
// `go test -bench=. -benchmem` reproduces every comparative claim of the
// survey in one run. `go run ./cmd/paratime exp all` prints the same
// tables standalone.

import (
	"testing"

	"paratime/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner := experiments.All[id]
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := runner()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table.String())
	for k, v := range last.Metrics {
		b.ReportMetric(v, k)
	}
}

func BenchmarkExp01SoloWCET(b *testing.B)         { benchExperiment(b, "e1") }
func BenchmarkExp02UnsafeSolo(b *testing.B)       { benchExperiment(b, "e2") }
func BenchmarkExp03Measurement(b *testing.B)      { benchExperiment(b, "e3") }
func BenchmarkExp04YanZhang(b *testing.B)         { benchExperiment(b, "e4") }
func BenchmarkExp05JointScaling(b *testing.B)     { benchExperiment(b, "e5") }
func BenchmarkExp06Lifetime(b *testing.B)         { benchExperiment(b, "e6") }
func BenchmarkExp07Bypass(b *testing.B)           { benchExperiment(b, "e7") }
func BenchmarkExp08PartitionLocking(b *testing.B) { benchExperiment(b, "e8") }
func BenchmarkExp09Bankization(b *testing.B)      { benchExperiment(b, "e9") }
func BenchmarkExp10YieldCFG(b *testing.B)         { benchExperiment(b, "e10") }
func BenchmarkExp11TDMA(b *testing.B)             { benchExperiment(b, "e11") }
func BenchmarkExp12RoundRobin(b *testing.B)       { benchExperiment(b, "e12") }
func BenchmarkExp13MBBA(b *testing.B)             { benchExperiment(b, "e13") }
func BenchmarkExp14CarCore(b *testing.B)          { benchExperiment(b, "e14") }
func BenchmarkExp15PRET(b *testing.B)             { benchExperiment(b, "e15") }
func BenchmarkExp16SMTQueues(b *testing.B)        { benchExperiment(b, "e16") }
func BenchmarkExp17AnomalyFreedom(b *testing.B)   { benchExperiment(b, "e17") }
func BenchmarkExp18IPETCross(b *testing.B)        { benchExperiment(b, "e18") }
