// Scenario tour: author one analysis request as JSON, decode it with
// strict validation, run it, and print both the text and JSON report —
// the full life cycle of the declarative Scenario API. The same file
// format drives `paratime run <file.json>` and `paratime export`.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"paratime"
)

const scenarioJSON = `{
  "spec": 1,
  "name": "tour",
  "tasks": [
    {
      "name": "victim",
      "source": "        li   r3, 0x8000\n        li   r5, 0x8080\nwalk:   ld   r2, 0(r3)\n        add  r4, r4, r2\n        addi r3, r3, 4\n        bne  r3, r5, walk\n        halt\n.data 0x8000\n        .word 1"
    },
    {
      "name": "sibling",
      "source": "        li   r1, 25\nspin:   addi r1, r1, -1\n        bne  r1, r0, spin\n        halt"
    }
  ],
  "system": {
    "l1i": {"sets": 16, "ways": 2, "lineBytes": 16, "hitLatency": 1},
    "l1d": {"sets": 4,  "ways": 1, "lineBytes": 16, "hitLatency": 1},
    "l2":  {"sets": 32, "ways": 4, "lineBytes": 32, "hitLatency": 4}
  },
  "mode": {"kind": "bus", "bus": {"policy": "roundrobin"}},
  "sim": {"maxCycles": 1000000}
}`

func main() {
	sc, err := paratime.DecodeScenario([]byte(scenarioJSON))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sc) // human-readable summary
	rep, err := paratime.Run(context.Background(), sc)
	if err != nil {
		log.Fatal(err)
	}
	rep.Fprint(os.Stdout)
	fmt.Println()
	out, err := rep.Encode()
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(out)

	// Strict validation rejects impossible configurations up front: a
	// joint analysis needs a shared L2.
	bad := *sc
	bad.Mode = paratime.ScenarioMode{Kind: paratime.ModeJoint}
	bad.System.L2 = nil
	if _, err := paratime.Run(context.Background(), &bad); err != nil {
		fmt.Println("\nrejected as expected:", err)
	}
}
