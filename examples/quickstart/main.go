// Quickstart: assemble a small task, compute its static WCET, and check
// the bound against the cycle-accurate simulator.
package main

import (
	"fmt"
	"log"

	"paratime"
)

func main() {
	prog := paratime.MustAssemble("quickstart", `
        ; sum of squares of 1..20
        li   r1, 20
        li   r2, 0
loop:   mul  r3, r1, r1
        add  r2, r2, r3
        addi r1, r1, -1
        bne  r1, r0, loop
        halt`)

	sys := paratime.DefaultSystem()
	a, err := paratime.Analyze(paratime.Task{Name: "quickstart", Prog: prog}, sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static WCET:     %d cycles\n", a.WCET)
	fmt.Printf("classifications: %s\n", a.ClassSummary())

	s := paratime.BuildSim(sys, paratime.DefaultMemConfig(), nil, false,
		paratime.Task{Name: "quickstart", Prog: prog})
	res, err := paratime.Simulate(s, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated:       %d cycles (bound holds: %v)\n",
		res.Cycles(0), a.WCET >= res.Cycles(0))
}
