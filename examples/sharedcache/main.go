// Shared-cache study: the survey's §4 on one screen. Four tasks share an
// L2; compare the solo (unsafe assumption), joint (Yan & Zhang and Li et
// al.), and partitioned (isolation) WCETs for the same workload — each
// regime expressed as one declarative Scenario run through the unified
// entry point.
package main

import (
	"context"
	"fmt"
	"log"

	"paratime"
	"paratime/internal/workload"
)

func main() {
	ctx := context.Background()
	// Tiny L1I + small shared L2: loop bodies live in the L2, where
	// co-runners can reach them — the configuration §4 worries about.
	sys := paratime.NewSystem(
		paratime.WithL1I(paratime.CacheConfig{Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}),
		paratime.WithSharedL2(paratime.CacheConfig{Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 4}),
	)
	tasks := []paratime.Task{
		bigLoop(),
		workload.CRC(12, workload.Slot(1)),
		workload.FIR(12, 4, workload.Slot(2)),
		workload.CountBits(6, workload.Slot(3)),
	}
	specTasks := make([]paratime.ScenarioTask, len(tasks))
	for i, task := range tasks {
		st, err := paratime.ScenarioTaskOf(task)
		if err != nil {
			log.Fatal(err)
		}
		specTasks[i] = st
	}
	scenario := func(name string, mode paratime.ScenarioMode) *paratime.Report {
		rep, err := paratime.Run(ctx, &paratime.Scenario{
			Spec: paratime.SpecVersion, Name: name, Tasks: specTasks,
			System: paratime.ScenarioSystemOf(sys), Mode: mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	dm := scenario("joint-yz", paratime.ScenarioMode{Kind: paratime.ModeJoint, Model: "directmapped"})
	li := scenario("joint-li", paratime.ScenarioMode{Kind: paratime.ModeJoint, Model: "ageshift"})
	part := scenario("partitioned", paratime.ScenarioMode{Kind: paratime.ModePartition,
		Partition: &paratime.ScenarioPartition{Scheme: "core", Cores: 2, Assign: []int{0, 0, 1, 1}}})

	fmt.Printf("%-12s %10s %14s %14s %14s\n",
		"task", "solo", "joint(YZ)", "joint(Li)", "partitioned")
	for i, tr := range dm.Tasks {
		fmt.Printf("%-12s %10d %14d %14d %14d\n",
			tr.Name, tr.SoloWCET, tr.WCET, li.Tasks[i].WCET, part.Tasks[i].WCET)
	}
	fmt.Println("\nsolo is unsafe under sharing; joint bounds are safe but inflate;")
	fmt.Println("partitioning gives safe per-task bounds independent of co-runners.")
}

// bigLoop is a task whose loop body overflows the tiny L1I and lives in
// the shared L2 — the kind of task the joint analyses visibly punish.
func bigLoop() paratime.Task {
	src := "        li r1, 40\nloop:"
	for i := 0; i < 64; i++ {
		src += "        add r2, r2, r3\n"
	}
	src += "        addi r1, r1, -1\n        bne r1, r0, loop\n        halt\n"
	return paratime.Task{Name: "bigloop", Prog: paratime.MustAssemble("bigloop", src)}
}
