// Shared-cache study: the survey's §4 on one screen. Four tasks share an
// L2; compare the solo (unsafe assumption), joint (Yan & Zhang and Li et
// al.), and partitioned (isolation) WCETs for the same workload.
package main

import (
	"fmt"
	"log"

	"paratime"
	"paratime/internal/partition"
	"paratime/internal/workload"
)

func main() {
	sys := paratime.DefaultSystem()
	// Tiny L1I + small shared L2: loop bodies live in the L2, where
	// co-runners can reach them — the configuration §4 worries about.
	sys.Mem.L1I = paratime.CacheConfig{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	l2 := paratime.CacheConfig{Name: "L2", Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	tasks := []paratime.Task{
		bigLoop(),
		workload.CRC(12, workload.Slot(1)),
		workload.FIR(12, 4, workload.Slot(2)),
		workload.CountBits(6, workload.Slot(3)),
	}

	dm, err := paratime.AnalyzeJoint(tasks, sys, paratime.DirectMapped)
	if err != nil {
		log.Fatal(err)
	}
	li, err := paratime.AnalyzeJoint(tasks, sys, paratime.AgeShift)
	if err != nil {
		log.Fatal(err)
	}
	part, err := partition.WCETs(tasks, sys, partition.CoreBased, []int{0, 0, 1, 1}, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %10s %14s %14s %14s\n",
		"task", "solo", "joint(YZ)", "joint(Li)", "partitioned")
	for i, name := range dm.Names {
		fmt.Printf("%-12s %10d %14d %14d %14d\n",
			name, dm.SoloWCET[i], dm.JointWCET[i], li.JointWCET[i], part[i])
	}
	fmt.Println("\nsolo is unsafe under sharing; joint bounds are safe but inflate;")
	fmt.Println("partitioning gives safe per-task bounds independent of co-runners.")
}

// bigLoop is a task whose loop body overflows the tiny L1I and lives in
// the shared L2 — the kind of task the joint analyses visibly punish.
func bigLoop() paratime.Task {
	src := "        li r1, 40\nloop:"
	for i := 0; i < 64; i++ {
		src += "        add r2, r2, r3\n"
	}
	src += "        addi r1, r1, -1\n        bne r1, r0, loop\n        halt\n"
	return paratime.Task{Name: "bigloop", Prog: paratime.MustAssemble("bigloop", src)}
}
