// SMT isolation study: CarCore-style HRT priority and the PRET
// thread-interleaved pipeline (§5.3): the protected thread's timing is
// invariant under every co-runner mix.
package main

import (
	"fmt"
	"log"

	"paratime"
	"paratime/internal/smt"
	"paratime/internal/workload"
)

func main() {
	// CarCore: HRT timing == solo timing, whatever the NHRTs do.
	sys := paratime.DefaultSystem()
	hrt := workload.CRC(12, workload.Slot(0))
	s := paratime.BuildSim(sys, paratime.DefaultMemConfig(), nil, false, hrt)
	solo, err := paratime.Simulate(s, 100_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CarCore (one HRT + non-critical threads):")
	for n := 0; n <= 3; n++ {
		var nhrts []*paratime.Program
		for i := 0; i < n; i++ {
			nhrts = append(nhrts, workload.Fib(50+10*i, workload.Slot(4+i)).Prog)
		}
		res, err := smt.SimulateCarCore(solo.Cycles(0), solo.Stats[0].Retired, nhrts, 10_000_000)
		if err != nil {
			log.Fatal(err)
		}
		var retired uint64
		for _, r := range res.NHRTRetired {
			retired += r
		}
		fmt.Printf("  %d NHRTs: HRT %d cycles (invariant), NHRTs retired %d insts\n",
			n, res.HRTCycles, retired)
	}

	// PRET: per-thread timing invariant by construction.
	pc := smt.DefaultPret()
	victim := workload.CRC(8, workload.Slot(0))
	bound, err := pc.AnalyzeWCET(victim.Prog, victim.Facts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPRET thread-interleaved pipeline:")
	for n := 0; n <= 5; n++ {
		progs := []*paratime.Program{victim.Prog}
		for i := 0; i < n; i++ {
			progs = append(progs, workload.CountBits(4+i, workload.Slot(6+i)).Prog)
		}
		times, err := pc.SimulatePret(progs, 100_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d co-runners: victim %d cycles (static bound %d)\n", n, times[0], bound)
	}
}
