// Arbiter comparison: the survey's §5 bandwidth-sharing schemes — round
// robin (D = N·L−1), TDMA, and MBBA-style weighted arbitration — with
// their analytical bounds validated against simulated worst waits.
package main

import (
	"fmt"
	"log"

	"paratime"
	"paratime/internal/arbiter"
	"paratime/internal/workload"
)

func main() {
	sys := paratime.DefaultSystem()
	mem := paratime.DefaultMemConfig()
	lat := paratime.TransactionLatency(sys, mem)
	tasks := []paratime.Task{
		workload.MemCopy(48, workload.Slot(0)),
		workload.CRC(12, workload.Slot(1)),
		workload.FIR(12, 4, workload.Slot(2)),
		workload.CountBits(6, workload.Slot(3)),
	}
	buses := []paratime.Arbiter{
		paratime.NewRoundRobinBus(len(tasks), lat),
		paratime.NewTDMABus([]arbiter.Slot{
			{Owner: 0, Len: lat}, {Owner: 1, Len: lat},
			{Owner: 2, Len: lat}, {Owner: 3, Len: lat}}, lat),
		paratime.NewMultiBandwidthBus([]int{4, 2, 1, 1}, lat),
	}
	for _, bus := range buses {
		s := paratime.BuildSim(sys, mem, bus, false, tasks...)
		res, err := paratime.Simulate(s, 1_000_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", bus.Name())
		for i, task := range tasks {
			a, err := paratime.Analyze(task, paratime.WithBusDelay(sys, bus.Bound(i)))
			if err != nil {
				log.Fatal(err)
			}
			ok := "bound holds"
			if res.Stats[i].BusWaitMax > int64(bus.Bound(i)) || a.WCET < res.Cycles(i) {
				ok = "VIOLATED"
			}
			fmt.Printf("  core %d %-10s bound %4d  sim max wait %4d  WCET %8d  sim %8d  %s\n",
				i, task.Name, bus.Bound(i), res.Stats[i].BusWaitMax,
				a.WCET, res.Cycles(i), ok)
		}
		fmt.Println()
	}
}
