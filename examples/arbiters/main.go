// Arbiter comparison: the survey's §5 bandwidth-sharing schemes — round
// robin (D = N·L−1), TDMA, and MBBA-style weighted arbitration — each
// expressed as one bus-mode Scenario whose analytical per-core bounds
// are validated against simulated worst waits in the same run.
package main

import (
	"context"
	"fmt"
	"log"

	"paratime"
	"paratime/internal/workload"
)

func main() {
	ctx := context.Background()
	tasks := []paratime.Task{
		workload.MemCopy(48, workload.Slot(0)),
		workload.CRC(12, workload.Slot(1)),
		workload.FIR(12, 4, workload.Slot(2)),
		workload.CountBits(6, workload.Slot(3)),
	}
	specTasks := make([]paratime.ScenarioTask, len(tasks))
	for i, task := range tasks {
		st, err := paratime.ScenarioTaskOf(task)
		if err != nil {
			log.Fatal(err)
		}
		specTasks[i] = st
	}
	// Slot length 0 in each bus spec derives the full memory round trip
	// (L2 hit + worst-case memory) automatically; the TDMA table uses an
	// explicit latency so its slot lengths are self-describing.
	lat := 30
	buses := []paratime.ScenarioBus{
		{Policy: "roundrobin"},
		{Policy: "tdma", Latency: lat, Slots: []paratime.ScenarioSlot{
			{Owner: 0, Len: lat}, {Owner: 1, Len: lat}, {Owner: 2, Len: lat}, {Owner: 3, Len: lat}}},
		{Policy: "mbba", Weights: []int{4, 2, 1, 1}},
	}
	for _, bus := range buses {
		bus := bus
		rep, err := paratime.Run(ctx, &paratime.Scenario{
			Spec: paratime.SpecVersion, Name: "arbiters-" + bus.Policy, Tasks: specTasks,
			System: paratime.DefaultScenarioSystem(),
			Mode:   paratime.ScenarioMode{Kind: paratime.ModeBus, Bus: &bus},
			Sim:    &paratime.ScenarioSim{MaxCycles: 1_000_000_000},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bus.Policy)
		for i, tr := range rep.Tasks {
			sr := rep.Sim[i]
			ok := "bound holds"
			if sr.BusWaitMax > int64(tr.BusBound) || !sr.Sound {
				ok = "VIOLATED"
			}
			fmt.Printf("  core %d %-10s bound %4d  sim max wait %4d  WCET %8d  sim %8d  %s\n",
				i, tr.Name, tr.BusBound, sr.BusWaitMax, tr.WCET, sr.Cycles, ok)
		}
		fmt.Println()
	}
}
