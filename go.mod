module paratime

go 1.24
