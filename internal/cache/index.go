package cache

import (
	"cmp"
	"slices"
)

// Index interns the distinct cache lines a reference stream may touch
// into dense slots, grouped by set: the slots of set s are the
// contiguous range [setStart[s], setStart[s+1]), ascending by line
// within the set. An abstract cache state over an Index is a flat age
// vector indexed by slot, which makes Join/Access/Equal branch-light
// linear loops and Clone a single copy.
//
// An Index is immutable after construction and may be shared by any
// number of states, results and their clones.
type Index struct {
	cfg      Config
	lines    []LineID // slot -> line
	setStart []int32  // len cfg.Sets+1
	slots    map[LineID]int32
}

// NewIndex interns the given lines (duplicates welcome) for one cache
// geometry. The geometry must be Validate-clean.
func NewIndex(cfg Config, lines []LineID) *Index {
	ls := slices.Clone(lines)
	// Group by set, ascending line within a set.
	slices.SortFunc(ls, func(a, b LineID) int {
		if sa, sb := cfg.SetOf(a), cfg.SetOf(b); sa != sb {
			return sa - sb
		}
		return cmp.Compare(a, b)
	})
	ls = slices.Compact(ls)
	ix := &Index{
		cfg:      cfg,
		lines:    ls,
		setStart: make([]int32, cfg.Sets+1),
		slots:    make(map[LineID]int32, len(ls)),
	}
	for i, l := range ls {
		ix.slots[l] = int32(i)
	}
	// setStart[s] = first slot of set s (slots are grouped by set).
	s := 0
	for i, l := range ls {
		for ; s < cfg.SetOf(l); s++ {
			ix.setStart[s+1] = int32(i)
		}
	}
	for ; s < cfg.Sets; s++ {
		ix.setStart[s+1] = int32(len(ls))
	}
	return ix
}

// StreamIndex interns every line the streams' references may touch
// (exact and imprecise candidates; Unknown references touch no
// particular line and contribute nothing).
func StreamIndex(cfg Config, sts ...*Stream) *Index {
	var lines []LineID
	for _, st := range sts {
		//paralint:unordered NewIndex sorts and dedups the collected lines; collection order is invisible
		for _, refs := range st.Refs {
			for _, r := range refs {
				switch {
				case r.Exact:
					lines = append(lines, cfg.LineOf(r.Addr))
				case r.Unknown:
				default:
					for _, a := range r.Addrs {
						lines = append(lines, cfg.LineOf(a))
					}
				}
			}
		}
	}
	return NewIndex(cfg, lines)
}

// Config returns the cache geometry the index interns for.
func (ix *Index) Config() Config { return ix.cfg }

// NumSlots returns the number of interned lines.
func (ix *Index) NumSlots() int { return len(ix.lines) }

// SlotOf returns the dense slot of a line, if interned.
func (ix *Index) SlotOf(l LineID) (int32, bool) {
	s, ok := ix.slots[l]
	return s, ok
}

// LineAt returns the line interned at a slot.
func (ix *Index) LineAt(slot int32) LineID { return ix.lines[slot] }

// setRange returns the slot range of one set.
func (ix *Index) setRange(s int) (lo, hi int32) {
	return ix.setStart[s], ix.setStart[s+1]
}

// setOfSlot returns the set index of a slot.
func (ix *Index) setOfSlot(slot int32) int { return ix.cfg.SetOf(ix.lines[slot]) }
