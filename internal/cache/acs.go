package cache

import (
	"bytes"
	"fmt"
	"strings"
)

// ACSKind discriminates the abstract cache state flavour.
type ACSKind uint8

// Abstract state flavours.
const (
	Must ACSKind = iota // ages are upper bounds; presence ⇒ guaranteed cached
	May                 // ages are lower bounds; absence ⇒ guaranteed not cached
)

// ACS is an abstract cache state over an interned line Index: a flat age
// vector with one byte per interned line, where the value is the
// abstract age in [0, Ways) and Ways is the "absent" sentinel. For Must
// states a present line is guaranteed resident with age at most the
// stored value; for May states a present line may be resident with age
// at least the stored value, and an absent line is guaranteed not
// cached — unless the state is poisoned.
//
// Poisoned applies to May states only: after an access whose target set
// is unknown, any line anywhere may be cached, so absence proves nothing
// and ALWAYS_MISS classification is disabled.
//
// The dense layout makes Join/Access/Equal branch-light linear loops
// over contiguous memory and Clone/CopyFrom a single copy, which is what
// lets the fixpoint iterate without allocating.
type ACS struct {
	idx      *Index
	kind     ACSKind
	age      []uint8 // per slot; == absent() means not in the state
	Poisoned bool

	// scratch backs AccessUncertain's access-vs-skip join; it is lazily
	// allocated, reused across calls, and never copied or compared.
	scratch []uint8
}

// NewACS returns the initial state over an index: for Must the empty
// cache contains nothing guaranteed; for May an *empty* state means
// "nothing can be cached", which is correct at task start (cold or
// unknown-but-invisible cache: WCET analysis of an isolated task assumes
// no useful content, and a truly unknown initial state is modelled by
// poisoning).
func NewACS(idx *Index, kind ACSKind) *ACS {
	a := &ACS{idx: idx, kind: kind, age: make([]uint8, idx.NumSlots())}
	a.Reset()
	return a
}

// absent is the sentinel age marking a line as not in the state.
func (a *ACS) absent() uint8 { return uint8(a.idx.cfg.Ways) }

// Reset restores the initial (empty, unpoisoned) state.
func (a *ACS) Reset() {
	ab := a.absent()
	for i := range a.age {
		a.age[i] = ab
	}
	a.Poisoned = false
}

// Clone deep-copies the state.
func (a *ACS) Clone() *ACS {
	return &ACS{
		idx:      a.idx,
		kind:     a.kind,
		age:      bytes.Clone(a.age),
		Poisoned: a.Poisoned,
	}
}

// CopyFrom overwrites the state with b's content (same index and kind).
func (a *ACS) CopyFrom(b *ACS) {
	copy(a.age, b.age)
	a.Poisoned = b.Poisoned
}

// Equal compares two states (same kind and index assumed).
func (a *ACS) Equal(b *ACS) bool {
	return a.Poisoned == b.Poisoned && bytes.Equal(a.age, b.age)
}

// slotOf returns the interned slot of a line, panicking on lines outside
// the index (a programming error: states only ever see stream lines).
func (a *ACS) slotOf(l LineID) int32 {
	slot, ok := a.idx.SlotOf(l)
	if !ok {
		panic(fmt.Sprintf("cache: line %d not interned in index", l))
	}
	return slot
}

// Contains reports whether the line is in the state (meaning depends on
// kind). Lines outside the index are never in the state.
func (a *ACS) Contains(l LineID) bool {
	slot, ok := a.idx.SlotOf(l)
	return ok && a.age[slot] < a.absent()
}

// Age returns the line's abstract age, or Ways if absent.
func (a *ACS) Age(l LineID) int {
	if slot, ok := a.idx.SlotOf(l); ok {
		return int(a.age[slot])
	}
	return a.idx.cfg.Ways
}

// Join combines two states flowing into the same program point:
// Must join keeps lines present in both at their maximum age;
// May join keeps lines present in either at their minimum age.
func (a *ACS) Join(b *ACS) *ACS {
	out := a.Clone()
	out.JoinInPlace(b)
	return out
}

// JoinInPlace folds b into a. With absent == Ways and present ages
// strictly below it, the Must join is an element-wise max (either side
// absent ⇒ max is the sentinel ⇒ absent) and the May join an
// element-wise min (either side present ⇒ min is a real age).
func (a *ACS) JoinInPlace(b *ACS) {
	av, bv := a.age, b.age
	if a.kind == Must {
		for i, x := range bv {
			if x > av[i] {
				av[i] = x
			}
		}
	} else {
		for i, x := range bv {
			if x < av[i] {
				av[i] = x
			}
		}
	}
	a.Poisoned = a.Poisoned || b.Poisoned
}

// Access applies the LRU transfer function for a precise access to line l.
//
// Must: the accessed line moves to age 0; lines strictly younger than l's
// previous upper-bound age get one older (they are pushed down); lines
// reaching Ways are evicted from the state.
//
// May: the accessed line moves to age 0; lines whose lower-bound age is
// strictly below l's previous lower-bound age get one older.
func (a *ACS) Access(l LineID) { a.accessSlot(a.slotOf(l)) }

func (a *ACS) accessSlot(slot int32) {
	lo, hi := a.idx.setRange(a.idx.setOfSlot(slot))
	v := a.age[lo:hi]
	old := a.age[slot]
	// Every aged line had age < old <= Ways, so age+1 <= Ways: reaching
	// Ways IS eviction under the sentinel encoding — no clamp needed.
	for i, x := range v {
		if x < old && int32(i)+lo != slot {
			v[i] = x + 1
		}
	}
	a.age[slot] = 0
}

// AccessUncertain applies an access that may or may not happen (used for
// L2 analysis under an Uncertain cache-access classification, Hardy &
// Puaut style): the result is the join of accessing and not accessing.
func (a *ACS) AccessUncertain(l LineID) { a.accessUncertainSlot(a.slotOf(l)) }

func (a *ACS) accessUncertainSlot(slot int32) {
	lo, hi := a.idx.setRange(a.idx.setOfSlot(slot))
	if a.scratch == nil {
		a.scratch = make([]uint8, len(a.age))
	}
	// Only the accessed line's set changes, so save it, apply the access,
	// and join the two versions of just that range.
	sv := a.scratch[lo:hi]
	copy(sv, a.age[lo:hi])
	a.accessSlot(slot)
	v := a.age[lo:hi]
	if a.kind == Must {
		for i, x := range sv {
			if x > v[i] {
				v[i] = x
			}
		}
	} else {
		for i, x := range sv {
			if x < v[i] {
				v[i] = x
			}
		}
	}
}

// AccessImprecise applies an access known to touch exactly one of the
// given lines. Must: in every possibly-touched set, every line may be
// pushed one down (and nothing is guaranteed inserted). May: each
// candidate line may now be resident at age 0; other ages keep their
// lower bounds.
func (a *ACS) AccessImprecise(lines []LineID) {
	switch a.kind {
	case Must:
		aged := make(map[int]struct{}, 8)
		for _, l := range lines {
			s := a.idx.cfg.SetOf(l)
			if _, done := aged[s]; done {
				continue
			}
			aged[s] = struct{}{}
			a.ageSetRange(s, 1)
		}
	case May:
		for _, l := range lines {
			a.age[a.slotOf(l)] = 0
		}
	}
}

// AccessUnknown applies an access to a completely unknown address.
// Must: every line everywhere may be pushed one down. May: poisoned.
func (a *ACS) AccessUnknown() {
	switch a.kind {
	case Must:
		ab := a.absent()
		for i, x := range a.age {
			if x < ab {
				a.age[i] = x + 1
			}
		}
	case May:
		a.Poisoned = true
	}
}

// AgeAll ages every line in every set by n (used to model interference
// from co-running tasks in shared-cache joint analysis: each conflicting
// line another task may load pushes ours down by one).
func (a *ACS) AgeAll(n int) {
	if n <= 0 {
		return
	}
	ab := a.absent()
	for i, x := range a.age {
		if x < ab {
			a.age[i] = uint8(min(int(x)+n, int(ab)))
		}
	}
}

// AgeSet ages every line of one set by n.
func (a *ACS) AgeSet(s, n int) {
	if n <= 0 {
		return
	}
	a.ageSetRange(s, n)
}

func (a *ACS) ageSetRange(s, n int) {
	lo, hi := a.idx.setRange(s)
	v := a.age[lo:hi]
	ab := a.absent()
	for i, x := range v {
		if x < ab {
			v[i] = uint8(min(int(x)+n, int(ab)))
		}
	}
}

// EvictSet removes every line of one set (direct-mapped conflict
// modelling: a conflicting task may have replaced the set's content).
func (a *ACS) EvictSet(s int) {
	lo, hi := a.idx.setRange(s)
	v := a.age[lo:hi]
	ab := a.absent()
	for i := range v {
		v[i] = ab
	}
}

// String renders the state compactly for debugging: sets in ascending
// order, lines ascending within each set — deterministic by construction
// (the index groups slots by set and sorts them by line).
func (a *ACS) String() string {
	var sb strings.Builder
	kind := "must"
	if a.kind == May {
		kind = "may"
	}
	fmt.Fprintf(&sb, "%s{", kind)
	ab := a.absent()
	for s := 0; s < a.idx.cfg.Sets; s++ {
		lo, hi := a.idx.setRange(s)
		header := false
		for slot := lo; slot < hi; slot++ {
			if a.age[slot] >= ab {
				continue
			}
			if !header {
				fmt.Fprintf(&sb, " s%d:", s)
				header = true
			}
			fmt.Fprintf(&sb, "%d@%d ", a.idx.LineAt(slot), a.age[slot])
		}
	}
	if a.Poisoned {
		sb.WriteString(" POISONED")
	}
	sb.WriteString("}")
	return sb.String()
}
