package cache

import (
	"fmt"
	"sort"
	"strings"
)

// ACSKind discriminates the abstract cache state flavour.
type ACSKind uint8

// Abstract state flavours.
const (
	Must ACSKind = iota // ages are upper bounds; presence ⇒ guaranteed cached
	May                 // ages are lower bounds; absence ⇒ guaranteed not cached
)

// ACS is an abstract cache state: per set, a map from line to abstract
// age in [0, Ways). For Must states a mapped line is guaranteed resident
// with age at most the mapped value; for May states a mapped line may be
// resident with age at least the mapped value, and an unmapped line is
// guaranteed absent — unless the state is poisoned.
//
// Poisoned applies to May states only: after an access whose target set
// is unknown, any line anywhere may be cached, so absence proves nothing
// and ALWAYS_MISS classification is disabled.
type ACS struct {
	cfg      Config
	kind     ACSKind
	sets     []map[LineID]int
	Poisoned bool
}

// NewACS returns the initial state: for Must the empty cache contains
// nothing guaranteed; for May an *empty* map means "nothing can be
// cached", which is correct at task start (cold or unknown-but-invisible
// cache: WCET analysis of an isolated task assumes no useful content, and
// a truly unknown initial state is modelled by poisoning).
func NewACS(cfg Config, kind ACSKind) *ACS {
	s := &ACS{cfg: cfg, kind: kind, sets: make([]map[LineID]int, cfg.Sets)}
	for i := range s.sets {
		s.sets[i] = map[LineID]int{}
	}
	return s
}

// Clone deep-copies the state.
func (a *ACS) Clone() *ACS {
	out := &ACS{cfg: a.cfg, kind: a.kind, sets: make([]map[LineID]int, len(a.sets)), Poisoned: a.Poisoned}
	for i, m := range a.sets {
		c := make(map[LineID]int, len(m))
		for l, age := range m {
			c[l] = age
		}
		out.sets[i] = c
	}
	return out
}

// Equal compares two states (same kind and geometry assumed).
func (a *ACS) Equal(b *ACS) bool {
	if a.Poisoned != b.Poisoned {
		return false
	}
	for i := range a.sets {
		if len(a.sets[i]) != len(b.sets[i]) {
			return false
		}
		for l, age := range a.sets[i] {
			if bage, ok := b.sets[i][l]; !ok || bage != age {
				return false
			}
		}
	}
	return true
}

// Contains reports whether the line is mapped (meaning depends on kind).
func (a *ACS) Contains(l LineID) bool {
	_, ok := a.sets[a.cfg.SetOf(l)][l]
	return ok
}

// Age returns the mapped age, or Ways if absent.
func (a *ACS) Age(l LineID) int {
	if age, ok := a.sets[a.cfg.SetOf(l)][l]; ok {
		return age
	}
	return a.cfg.Ways
}

// Join combines two states flowing into the same program point:
// Must join keeps lines present in both at their maximum age;
// May join keeps lines present in either at their minimum age.
func (a *ACS) Join(b *ACS) *ACS {
	out := NewACS(a.cfg, a.kind)
	out.Poisoned = a.Poisoned || b.Poisoned
	switch a.kind {
	case Must:
		for i := range a.sets {
			for l, age := range a.sets[i] {
				if bage, ok := b.sets[i][l]; ok {
					out.sets[i][l] = maxInt(age, bage)
				}
			}
		}
	case May:
		for i := range a.sets {
			for l, age := range a.sets[i] {
				out.sets[i][l] = age
			}
			for l, bage := range b.sets[i] {
				if age, ok := out.sets[i][l]; !ok || bage < age {
					out.sets[i][l] = bage
				}
			}
		}
	}
	return out
}

// Access applies the LRU transfer function for a precise access to line l.
//
// Must: the accessed line moves to age 0; lines strictly younger than l's
// previous upper-bound age get one older (they are pushed down); lines
// reaching Ways are evicted from the state.
//
// May: the accessed line moves to age 0; lines whose lower-bound age is
// strictly below l's previous lower-bound age get one older.
func (a *ACS) Access(l LineID) {
	s := a.cfg.SetOf(l)
	m := a.sets[s]
	old, ok := m[l]
	if !ok {
		old = a.cfg.Ways // treated as "older than everything"
	}
	for x, age := range m {
		if x != l && age < old {
			if age+1 >= a.cfg.Ways && a.kind == Must {
				delete(m, x)
			} else if age+1 >= a.cfg.Ways && a.kind == May {
				delete(m, x)
			} else {
				m[x] = age + 1
			}
		}
	}
	m[l] = 0
}

// AccessUncertain applies an access that may or may not happen (used for
// L2 analysis under an Uncertain cache-access classification, Hardy &
// Puaut style): the result is the join of accessing and not accessing.
func (a *ACS) AccessUncertain(l LineID) {
	upd := a.Clone()
	upd.Access(l)
	*a = *a.Join(upd)
}

// AccessImprecise applies an access known to touch exactly one of the
// given lines. Must: in every possibly-touched set, every line may be
// pushed one down (and nothing is guaranteed inserted). May: each
// candidate line may now be resident at age 0; other ages keep their
// lower bounds.
func (a *ACS) AccessImprecise(lines []LineID) {
	switch a.kind {
	case Must:
		touched := map[int]bool{}
		for _, l := range lines {
			touched[a.cfg.SetOf(l)] = true
		}
		for s := range touched {
			m := a.sets[s]
			for x, age := range m {
				if age+1 >= a.cfg.Ways {
					delete(m, x)
				} else {
					m[x] = age + 1
				}
			}
		}
	case May:
		for _, l := range lines {
			m := a.sets[a.cfg.SetOf(l)]
			if age, ok := m[l]; !ok || age > 0 {
				m[l] = 0
			}
		}
	}
}

// AccessUnknown applies an access to a completely unknown address.
// Must: every line everywhere may be pushed one down. May: poisoned.
func (a *ACS) AccessUnknown() {
	switch a.kind {
	case Must:
		for s := range a.sets {
			m := a.sets[s]
			for x, age := range m {
				if age+1 >= a.cfg.Ways {
					delete(m, x)
				} else {
					m[x] = age + 1
				}
			}
		}
	case May:
		a.Poisoned = true
	}
}

// AgeAll ages every line in every set by n (used to model interference
// from co-running tasks in shared-cache joint analysis: each conflicting
// line another task may load pushes ours down by one).
func (a *ACS) AgeAll(n int) {
	if n <= 0 {
		return
	}
	for s := range a.sets {
		m := a.sets[s]
		for x, age := range m {
			if age+n >= a.cfg.Ways {
				delete(m, x)
			} else {
				m[x] = age + n
			}
		}
	}
}

// AgeSet ages every line of one set by n.
func (a *ACS) AgeSet(s, n int) {
	if n <= 0 {
		return
	}
	m := a.sets[s]
	for x, age := range m {
		if age+n >= a.cfg.Ways {
			delete(m, x)
		} else {
			m[x] = age + n
		}
	}
}

// EvictSet removes every line of one set (direct-mapped conflict
// modelling: a conflicting task may have replaced the set's content).
func (a *ACS) EvictSet(s int) {
	a.sets[s] = map[LineID]int{}
}

// String renders the state compactly for debugging.
func (a *ACS) String() string {
	var sb strings.Builder
	kind := "must"
	if a.kind == May {
		kind = "may"
	}
	fmt.Fprintf(&sb, "%s{", kind)
	for s, m := range a.sets {
		if len(m) == 0 {
			continue
		}
		lines := make([]LineID, 0, len(m))
		for l := range m {
			lines = append(lines, l)
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		fmt.Fprintf(&sb, " s%d:", s)
		for _, l := range lines {
			fmt.Fprintf(&sb, "%d@%d ", l, m[l])
		}
	}
	if a.Poisoned {
		sb.WriteString(" POISONED")
	}
	sb.WriteString("}")
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
