package cache

import (
	"fmt"

	"paratime/internal/cfg"
)

// CAC is the cache access classification of a reference with respect to
// the next cache level (Hardy & Puaut, RTSS 2008): whether the reference
// reaches that level Always, Never, or Uncertainly.
type CAC uint8

// Cache access classifications.
const (
	Always CAC = iota
	Uncertain
	Never
)

func (c CAC) String() string {
	switch c {
	case Always:
		return "A"
	case Uncertain:
		return "U"
	default:
		return "N"
	}
}

// CACFromL1 derives the next-level access classification from an L1
// classification: ALWAYS_HIT never reaches L2, ALWAYS_MISS always does,
// PERSISTENT and NOT_CLASSIFIED reach it uncertainly.
func CACFromL1(c Class) CAC {
	switch c {
	case AlwaysHit:
		return Never
	case AlwaysMiss:
		return Always
	default:
		return Uncertain
	}
}

// TwoLevelResult is the joint analysis of a private L1 feeding an L2.
type TwoLevelResult struct {
	L1  *Result
	L2  *Result
	CAC map[RefID]CAC // per reference: does it reach L2?
}

// AnalyzeTwoLevel analyzes a two-level non-inclusive hierarchy over one
// reference stream: the L1 is analyzed first, then the L2 under the
// induced cache access classification.
func AnalyzeTwoLevel(g *cfg.Graph, st *Stream, l1, l2 Config) (*TwoLevelResult, error) {
	r1, err := Analyze(g, st, l1)
	if err != nil {
		return nil, err
	}
	cac := map[RefID]CAC{}
	//paralint:unordered per-key transform; each reference writes its own CAC entry
	for id, rc := range r1.Classes {
		cac[id] = CACFromL1(rc.Class)
	}
	r2, err := AnalyzeWithCAC(g, st, l2, cac)
	if err != nil {
		return nil, err
	}
	return &TwoLevelResult{L1: r1, L2: r2, CAC: cac}, nil
}

// AnalyzeWithCAC analyzes one cache level where each reference carries a
// cache access classification: Never references do not touch the level,
// Uncertain references update it with the join of accessing and not
// accessing (Hardy & Puaut), and persistence counts only references that
// may reach the level. With a nil cac every reference Always reaches the
// level, which is exactly the single-level Analyze. This is the building
// block for unified L2 analysis over merged instruction+data streams and
// for the shared-cache interference analyses.
//
// The stream's touched lines are interned into a dense per-config Index
// once, the stream is compiled to slot-level ops, and Must and May
// in-states are computed by the worklist fixpoint over flat age vectors.
func AnalyzeWithCAC(g *cfg.Graph, st *Stream, cacheCfg Config, cac map[RefID]CAC) (*Result, error) {
	if err := cacheCfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Cfg:     cacheCfg,
		Classes: map[RefID]RefClass{},
		MustIn:  map[cfg.BlockID]*ACS{},
		MayIn:   map[cfg.BlockID]*ACS{},
		idx:     StreamIndex(cacheCfg, st),
		g:       g,
		stream:  st,
		cac:     cac,
	}
	ops := compileOps(g, st, cac, res.idx)
	res.runFixpoint(g, ops, Must, res.MustIn)
	res.runFixpoint(g, ops, May, res.MayIn)
	res.computePersistence(g, ops)
	res.classify(g, st)
	return res, nil
}

// Summary renders classification counts for both levels.
func (t *TwoLevelResult) Summary() string {
	c1 := t.L1.CountClasses()
	c2 := t.L2.CountClasses()
	return fmt.Sprintf("L1[AH=%d AM=%d PS=%d NC=%d] L2[AH=%d AM=%d PS=%d NC=%d]",
		c1[AlwaysHit], c1[AlwaysMiss], c1[Persistent], c1[NotClassified],
		c2[AlwaysHit], c2[AlwaysMiss], c2[Persistent], c2[NotClassified])
}
