package cache

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"paratime/internal/cfg"
)

// forcePar overrides the parallel-path thresholds for one test so the
// sharded/levelized drivers run on arbitrarily small inputs.
func forcePar(t *testing.T, minSlots, minBlocks int) {
	t.Helper()
	oldSlots, oldBlocks := parMinSlots, parMinBlocks
	parMinSlots, parMinBlocks = minSlots, minBlocks
	t.Cleanup(func() { parMinSlots, parMinBlocks = oldSlots, oldBlocks })
}

// randomParGraph is randomLoopNest followed by a diamond, so the SCC
// condensation has both loop components and a level of width >= 2 (the
// levelized driver degrades to the sequential worklist on pure chains).
func randomParGraph(t *testing.T, rng *rand.Rand) *cfg.Graph {
	inner := 1 + rng.Intn(4)
	outer := 1 + rng.Intn(3)
	src := "        li r1, " + itoa(outer) + "\n"
	src += "outer:  li r2, " + itoa(inner) + "\n"
	src += "inner:  add r3, r3, r2\n"
	src += "        addi r2, r2, -1\n"
	src += "        bne r2, r0, inner\n"
	src += "        addi r1, r1, -1\n"
	src += "        bne r1, r0, outer\n"
	src += "        bne r3, r0, alt\n"
	src += "        addi r4, r4, 1\n"
	src += "        j merge\n"
	src += "alt:    addi r4, r4, 2\n"
	src += "merge:  add r5, r4, r3\n"
	src += "        halt\n"
	return buildGraph(t, src)
}

// randParStream synthesizes a stream mixing exact, imprecise and
// unknown references over the graph's non-exit blocks, spanning enough
// addresses to populate several cache sets.
func randParStream(rng *rand.Rand, g *cfg.Graph, geom Config) *Stream {
	st := &Stream{Refs: map[cfg.BlockID][]Ref{}}
	span := uint32(geom.Sets*geom.LineBytes) * 4
	for _, b := range g.Blocks {
		if b.IsExit() {
			continue
		}
		refs := make([]Ref, 0, 4)
		for r := rng.Intn(5); r > 0; r-- {
			switch rng.Intn(8) {
			case 0:
				refs = append(refs, Ref{Unknown: true})
			case 1, 2:
				lo := rng.Uint32() % span
				addrs := make([]uint32, 2+rng.Intn(4))
				for i := range addrs {
					addrs[i] = (lo + uint32(i*geom.LineBytes)) % span
				}
				refs = append(refs, Ref{Addrs: addrs})
			default:
				refs = append(refs, Ref{Exact: true, Addr: rng.Uint32() % span})
			}
		}
		st.Refs[b.ID] = refs
	}
	return st
}

func randParCase(t *testing.T, rng *rand.Rand, withCAC bool) (*cfg.Graph, *Stream, Config, map[RefID]CAC) {
	g := randomParGraph(t, rng)
	geom := Config{
		Name:        "p",
		Sets:        2 << rng.Intn(3), // sharding needs >= 2 sets
		Ways:        1 + rng.Intn(3),
		LineBytes:   8 << rng.Intn(2),
		HitLatency:  1,
		MissPenalty: 10,
	}
	st := randParStream(rng, g, geom)
	var cac map[RefID]CAC
	if withCAC {
		cac = map[RefID]CAC{}
		for id, refs := range st.Refs {
			for seq := range refs {
				cac[RefID{Block: id, Seq: seq}] = CAC(rng.Intn(3))
			}
		}
	}
	return g, st, geom, cac
}

func requireSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	for _, kind := range []struct {
		name   string
		wn, gn map[cfg.BlockID]*ACS
	}{{"Must", want.MustIn, got.MustIn}, {"May", want.MayIn, got.MayIn}} {
		if len(kind.wn) != len(kind.gn) {
			t.Fatalf("%s: %s reaches %d blocks, want %d", label, kind.name, len(kind.gn), len(kind.wn))
		}
		for id, w := range kind.wn {
			g := kind.gn[id]
			if g == nil || !w.Equal(g) {
				t.Fatalf("%s: %s in-state of block %d differs", label, kind.name, id)
			}
		}
	}
	if !reflect.DeepEqual(want.Classes, got.Classes) {
		t.Fatalf("%s: classifications differ:\nwant %v\ngot  %v", label, want.Classes, got.Classes)
	}
}

// TestAnalyzeParMatchesSequential: both parallel strategies must equal
// the sequential analysis bit for bit — in-states and classifications —
// on random branchy loop nests with mixed-precision streams and random
// CACs, at several worker counts and under GOMAXPROCS 1 and 8.
func TestAnalyzeParMatchesSequential(t *testing.T) {
	strategies := []struct {
		name                string
		minSlots, minBlocks int
	}{
		{"sharded", 1, 1 << 30},
		{"levelized", 1 << 30, 1},
	}
	for _, sg := range strategies {
		t.Run(sg.name, func(t *testing.T) {
			forcePar(t, sg.minSlots, sg.minBlocks)
			for _, procs := range []int{1, 8} {
				old := runtime.GOMAXPROCS(procs)
				rng := rand.New(rand.NewSource(2024))
				for trial := 0; trial < 30; trial++ {
					g, st, geom, cac := randParCase(t, rng, trial%2 == 1)
					want, err := AnalyzeWithCAC(g, st, geom, cac)
					if err != nil {
						t.Fatalf("trial %d: sequential: %v", trial, err)
					}
					for _, workers := range []int{2, 3, 8} {
						got, err := AnalyzeWithCACPar(g, st, geom, cac, workers)
						if err != nil {
							t.Fatalf("trial %d workers %d: %v", trial, workers, err)
						}
						requireSameResult(t, sg.name, want, got)
					}
				}
				runtime.GOMAXPROCS(old)
			}
		})
	}
}

// TestShardPlanCoversSets: plans partition the slot range contiguously.
func TestShardPlanCoversSets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		g, st, geom, _ := randParCase(t, rng, false)
		_ = g
		idx := StreamIndex(geom, st)
		for _, workers := range []int{2, 3, 8, 100} {
			// runFixpoints only uses plans with >= 2 shards; smaller
			// plans mean the geometry has nothing to split.
			plan := shardPlan(idx, workers)
			if len(plan) < 2 {
				continue
			}
			wantSet, wantSlot := 0, int32(0)
			for _, sh := range plan {
				if sh.s0 != wantSet || sh.lo != wantSlot {
					t.Fatalf("shard %+v not contiguous after set %d slot %d", sh, wantSet, wantSlot)
				}
				if sh.hi <= sh.lo {
					t.Fatalf("empty shard %+v", sh)
				}
				wantSet, wantSlot = sh.s1, sh.hi
			}
			// Trailing sets with no interned slots may stay unassigned;
			// every slot must be covered exactly once.
			if wantSlot != int32(idx.NumSlots()) {
				t.Fatalf("plan covers slots [0,%d), want %d", wantSlot, idx.NumSlots())
			}
			for s := wantSet; s < geom.Sets; s++ {
				if lo, hi := idx.setRange(s); lo != hi {
					t.Fatalf("unassigned set %d is non-empty (slots [%d,%d))", s, lo, hi)
				}
			}
		}
	}
}

// FuzzParallelCacheOracle drives both parallel strategies against the
// sequential analysis on fuzzer-chosen programs and geometries.
func FuzzParallelCacheOracle(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(42), uint8(7))
	f.Add(int64(-3), uint8(0xFF))
	f.Fuzz(func(t *testing.T, seed int64, geomBits uint8) {
		rng := rand.New(rand.NewSource(seed))
		g := randomParGraph(t, rng)
		geom := Config{
			Name:        "f",
			Sets:        2 << (geomBits & 3),
			Ways:        1 + int(geomBits>>2&3),
			LineBytes:   8 << (geomBits >> 4 & 1),
			HitLatency:  1,
			MissPenalty: 10,
		}
		st := randParStream(rng, g, geom)
		var cac map[RefID]CAC
		if geomBits&0x20 != 0 {
			cac = map[RefID]CAC{}
			for id, refs := range st.Refs {
				for seq := range refs {
					cac[RefID{Block: id, Seq: seq}] = CAC(rng.Intn(3))
				}
			}
		}
		want, err := AnalyzeWithCAC(g, st, geom, cac)
		if err != nil {
			t.Skip()
		}
		oldSlots, oldBlocks := parMinSlots, parMinBlocks
		defer func() { parMinSlots, parMinBlocks = oldSlots, oldBlocks }()
		for _, th := range [][2]int{{1, 1 << 30}, {1 << 30, 1}} {
			parMinSlots, parMinBlocks = th[0], th[1]
			got, err := AnalyzeWithCACPar(g, st, geom, cac, 4)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			requireSameResult(t, "fuzz", want, got)
		}
	})
}
