package cache

import (
	"math/rand"
	"testing"

	"paratime/internal/cfg"
	"paratime/internal/flow"
	"paratime/internal/isa"
)

func cfg4x2x16(hit, miss int) Config {
	return Config{Name: "t", Sets: 4, Ways: 2, LineBytes: 16, HitLatency: hit, MissPenalty: miss}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Sets: 3, Ways: 1, LineBytes: 16},
		{Sets: 4, Ways: 0, LineBytes: 16},
		{Sets: 4, Ways: 1, LineBytes: 12},
		{Sets: 0, Ways: 1, LineBytes: 16},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("accepted invalid config %+v", c)
		}
	}
	if err := cfg4x2x16(1, 10).Validate(); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
}

func TestConfigMapping(t *testing.T) {
	c := cfg4x2x16(1, 10)
	if c.LineOf(0x100) != 0x10 || c.LineOf(0x10f) != 0x10 || c.LineOf(0x110) != 0x11 {
		t.Error("LineOf wrong")
	}
	if c.SetOf(0x10) != 0 || c.SetOf(0x11) != 1 || c.SetOf(0x17) != 3 {
		t.Error("SetOf wrong")
	}
	if c.CapacityBytes() != 128 {
		t.Error("capacity wrong")
	}
}

func TestLRUBasics(t *testing.T) {
	c := NewLRU(Config{Name: "l", Sets: 1, Ways: 2, LineBytes: 16})
	if c.Access(0x00) { // A miss
		t.Error("cold access hit")
	}
	if !c.Access(0x04) { // same line hit
		t.Error("same-line access missed")
	}
	c.Access(0x10) // B miss; cache = [B, A]
	c.Access(0x00) // A hit;  cache = [A, B]
	c.Access(0x20) // C miss; evicts B (LRU)
	if c.Contains(0x10) {
		t.Error("B should have been evicted")
	}
	if !c.Contains(0x00) || !c.Contains(0x20) {
		t.Error("A and C should be resident")
	}
	if c.Hits != 2 || c.Misses != 3 {
		t.Errorf("hits/misses = %d/%d, want 2/3", c.Hits, c.Misses)
	}
}

func TestLRULocking(t *testing.T) {
	c := NewLRU(Config{Name: "l", Sets: 1, Ways: 2, LineBytes: 16})
	c.Lock(c.Config().LineOf(0x00)) // prefetches and locks A
	if !c.Contains(0x00) {
		t.Fatal("lock did not prefetch")
	}
	c.Access(0x10) // B
	c.Access(0x20) // C evicts B (A locked even though LRU)
	if !c.Contains(0x00) {
		t.Error("locked line evicted")
	}
	if c.Contains(0x10) {
		t.Error("unlocked line survived over locked")
	}
	// Fully locked set: accesses bypass.
	c2 := NewLRU(Config{Name: "l2", Sets: 1, Ways: 1, LineBytes: 16})
	c2.Lock(c2.Config().LineOf(0x00))
	c2.Access(0x10)
	if c2.Contains(0x10) || !c2.Contains(0x00) {
		t.Error("fully locked set should bypass fills")
	}
	c2.Unlock(c2.Config().LineOf(0x00))
	c2.Access(0x10)
	if !c2.Contains(0x10) {
		t.Error("after unlock, fills should evict")
	}
}

// TestACSSoundnessRandom drives concrete LRU and abstract Must/May states
// over random access sequences and checks the abstraction invariants
// after every access:
//
//	line ∈ must  ⇒ line cached and concrete age ≤ must age
//	line cached  ⇒ line ∈ may and concrete age ≥ may age
func TestACSSoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		geom := Config{Name: "r", Sets: 1 << rng.Intn(3), Ways: 1 + rng.Intn(3), LineBytes: 16}
		conc := NewLRU(geom)
		universe := 2 + rng.Intn(10)
		idx := NewIndex(geom, universeLines(universe))
		must := NewACS(idx, Must)
		may := NewACS(idx, May)
		for step := 0; step < 200; step++ {
			l := LineID(rng.Intn(universe))
			conc.AccessLine(l)
			must.Access(l)
			may.Access(l)
			checkACSInvariants(t, geom, conc, must, may)
			if t.Failed() {
				t.Fatalf("trial %d step %d geom %+v", trial, step, geom)
			}
		}
	}
}

// universeLines returns lines 0..n-1, the address universe of the random
// soundness drivers.
func universeLines(n int) []LineID {
	out := make([]LineID, n)
	for i := range out {
		out[i] = LineID(i)
	}
	return out
}

// concreteAge returns the LRU stack position of l, or -1.
func concreteAge(c *LRU, geom Config, l LineID) int {
	for i, x := range c.sets[geom.SetOf(l)] {
		if x == l {
			return i
		}
	}
	return -1
}

func checkACSInvariants(t *testing.T, geom Config, conc *LRU, must, may *ACS) {
	t.Helper()
	idx := must.idx
	for slot := int32(0); slot < int32(idx.NumSlots()); slot++ {
		l := idx.LineAt(slot)
		if must.Contains(l) {
			ca := concreteAge(conc, geom, l)
			if ca < 0 {
				t.Errorf("line %d in must but not cached", l)
			} else if ca > must.Age(l) {
				t.Errorf("line %d concrete age %d > must age %d", l, ca, must.Age(l))
			}
		}
	}
	for s := 0; s < geom.Sets; s++ {
		for _, l := range conc.sets[s] {
			if !may.Contains(l) {
				if !may.Poisoned {
					t.Errorf("cached line %d not in may", l)
				}
				continue
			}
			if ca := concreteAge(conc, geom, l); ca < may.Age(l) {
				t.Errorf("line %d concrete age %d < may age %d", l, ca, may.Age(l))
			}
		}
	}
}

// TestACSJoinSoundness: join of two abstract states must be sound for
// both concrete states it merges.
func TestACSJoinSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		geom := Config{Name: "j", Sets: 2, Ways: 2, LineBytes: 16}
		concA, concB := NewLRU(geom), NewLRU(geom)
		idx := NewIndex(geom, universeLines(6))
		mustA, mustB := NewACS(idx, Must), NewACS(idx, Must)
		mayA, mayB := NewACS(idx, May), NewACS(idx, May)
		for i := 0; i < 30; i++ {
			la, lb := LineID(rng.Intn(6)), LineID(rng.Intn(6))
			concA.AccessLine(la)
			mustA.Access(la)
			mayA.Access(la)
			concB.AccessLine(lb)
			mustB.Access(lb)
			mayB.Access(lb)
		}
		mustJ := mustA.Join(mustB)
		mayJ := mayA.Join(mayB)
		for _, conc := range []*LRU{concA, concB} {
			checkACSInvariants(t, geom, conc, mustJ, mayJ)
		}
		if t.Failed() {
			t.Fatalf("trial %d", trial)
		}
	}
}

func TestACSAccessUnknownPoisonsMay(t *testing.T) {
	geom := cfg4x2x16(1, 10)
	idx := NewIndex(geom, []LineID{5})
	may := NewACS(idx, May)
	may.Access(5)
	may.AccessUnknown()
	if !may.Poisoned {
		t.Error("unknown access must poison may state")
	}
	must := NewACS(idx, Must)
	must.Access(5)
	age0 := must.Age(5)
	must.AccessUnknown()
	if must.Age(5) != age0+1 {
		t.Errorf("unknown access should age must lines: %d -> %d", age0, must.Age(5))
	}
}

func TestACSHelpers(t *testing.T) {
	geom := Config{Name: "h", Sets: 2, Ways: 2, LineBytes: 16}
	idx := NewIndex(geom, universeLines(3))
	a := NewACS(idx, Must)
	a.Access(0) // set 0
	a.Access(2) // set 0 (2 % 2 == 0)
	a.Access(1) // set 1
	a.AgeSet(0, 1)
	if a.Contains(2) && a.Age(2) != 1 {
		t.Errorf("age of line 2 = %d, want 1", a.Age(2))
	}
	if a.Contains(0) {
		t.Error("line 0 (age 1) should have aged out of 2 ways")
	}
	if a.Age(1) != 0 {
		t.Error("AgeSet(0) must not touch set 1")
	}
	a.EvictSet(1)
	if a.Contains(1) {
		t.Error("EvictSet left line behind")
	}
	b := NewACS(idx, Must)
	b.Access(0)
	b.Access(1)
	b.AgeAll(1)
	if b.Age(0) != 1 || b.Age(1) != 1 {
		t.Error("AgeAll wrong")
	}
}

// --- trace-based soundness of classification -------------------------------

// traceCheck runs the program, feeding fetches (and optionally data
// accesses) through concrete LRU caches, and validates every
// classification claim of the analysis results. Programs must be
// call-free so instruction indexes map uniquely to blocks.
type traceCheck struct {
	t       *testing.T
	g       *cfg.Graph
	blockOf []*cfg.Block // by instruction index
	dataSeq []int        // by instruction index: seq in data stream, or -1

	hits, misses map[RefID]int
	entries      map[*cfg.Loop]int

	iLRU, dLRU *LRU
	prevBlock  *cfg.Block
}

func newTraceCheck(t *testing.T, g *cfg.Graph, iGeom, dGeom *Config) *traceCheck {
	tc := &traceCheck{
		t:       t,
		g:       g,
		blockOf: make([]*cfg.Block, len(g.Prog.Insts)),
		dataSeq: make([]int, len(g.Prog.Insts)),
		hits:    map[RefID]int{},
		misses:  map[RefID]int{},
		entries: map[*cfg.Loop]int{},
	}
	for i := range tc.dataSeq {
		tc.dataSeq[i] = -1
	}
	for _, b := range g.Blocks {
		if b.IsExit() {
			continue
		}
		seq := 0
		for i := b.Start; i < b.End; i++ {
			if tc.blockOf[i] != nil {
				t.Fatalf("program has calls; trace checking needs unique block per inst")
			}
			tc.blockOf[i] = b
			if g.Prog.Insts[i].IsMem() {
				tc.dataSeq[i] = seq
				seq++
			}
		}
	}
	if iGeom != nil {
		tc.iLRU = NewLRU(*iGeom)
	}
	if dGeom != nil {
		tc.dLRU = NewLRU(*dGeom)
	}
	return tc
}

func (tc *traceCheck) run() {
	st := isa.NewState(tc.g.Prog)
	st.Trace = func(e isa.TraceEvent) {
		switch e.Kind {
		case isa.TraceFetch:
			idx := tc.g.Prog.Index(e.Addr)
			b := tc.blockOf[idx]
			// Loop entries: first instruction of a header reached from
			// outside the loop.
			if idx == b.Start {
				for l := b.Loop(); l != nil; l = l.Parent {
					if l.Header == b && (tc.prevBlock == nil || !l.Contains(tc.prevBlock)) {
						tc.entries[l]++
					}
				}
				tc.prevBlock = b
			}
			if tc.iLRU != nil {
				id := RefID{Block: b.ID, Seq: idx - b.Start}
				if tc.iLRU.Access(e.Addr) {
					tc.hits[id]++
				} else {
					tc.misses[id]++
				}
			}
		case isa.TraceLoad, isa.TraceStore:
			if tc.dLRU == nil {
				return
			}
			idx := tc.g.Prog.Index(st.PC)
			b := tc.blockOf[idx]
			id := RefID{Block: b.ID, Seq: tc.dataSeq[idx]}
			if tc.dLRU.Access(e.Addr) {
				tc.hits[id]++
			} else {
				tc.misses[id]++
			}
		}
	}
	if _, err := st.Run(10_000_000); err != nil {
		tc.t.Fatal(err)
	}
}

// validate checks every classification claim against observed behaviour.
func (tc *traceCheck) validate(res *Result, label string) {
	tc.t.Helper()
	for id, rc := range res.Classes {
		switch rc.Class {
		case AlwaysHit:
			if tc.misses[id] > 0 {
				tc.t.Errorf("%s: ref %+v classified AH but missed %d times", label, id, tc.misses[id])
			}
		case AlwaysMiss:
			if tc.hits[id] > 0 {
				tc.t.Errorf("%s: ref %+v classified AM but hit %d times", label, id, tc.hits[id])
			}
		case Persistent:
			if rc.Scope == nil {
				tc.t.Errorf("%s: ref %+v PS without scope", label, id)
				continue
			}
			if tc.misses[id] > tc.entries[rc.Scope] {
				tc.t.Errorf("%s: ref %+v PS misses %d > scope entries %d",
					label, id, tc.misses[id], tc.entries[rc.Scope])
			}
		}
	}
}

func buildGraph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	g, err := cfg.Build(isa.MustAssemble(t.Name(), src))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestICacheLoopClassification(t *testing.T) {
	// Pad so the loop starts on a fresh cache line (16B = 4 insts/line):
	// its first iteration misses, later iterations hit -> PERSISTENT.
	g := buildGraph(t, `
        li   r1, 20
        nop
        nop
        nop
loop:   add  r2, r2, r1
        add  r3, r3, r2
        add  r4, r4, r3
        addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	geom := Config{Name: "I", Sets: 8, Ways: 2, LineBytes: 16}
	res := MustAnalyze(g, FetchStream(g), geom)
	counts := res.CountClasses()
	// The loop body fits the cache: the first ref of each loop line is PS
	// (one miss on the first iteration), the rest are AH.
	if counts[Persistent] < 2 {
		t.Errorf("expected >=2 persistent refs in loop, got %v", counts)
	}
	if counts[AlwaysHit] == 0 {
		t.Errorf("expected AH refs within loop lines, got %v", counts)
	}
	if counts[NotClassified] > 0 {
		t.Errorf("nothing should be NC in a fitting loop: %v", counts)
	}
	tc := newTraceCheck(t, g, &geom, nil)
	tc.run()
	tc.validate(res, "icache-loop")
}

func TestICacheTinyCacheThrashing(t *testing.T) {
	// One-set, one-way cache: blocks conflict; nothing inside the loop may
	// be classified AH unless it shares a line with its predecessor.
	g := buildGraph(t, `
        li   r1, 9
loop:   add  r2, r2, r1
        add  r3, r3, r2
        add  r4, r4, r3
        add  r5, r5, r4
        addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	geom := Config{Name: "I", Sets: 1, Ways: 1, LineBytes: 8} // 2 insts per line
	res := MustAnalyze(g, FetchStream(g), geom)
	tc := newTraceCheck(t, g, &geom, nil)
	tc.run()
	tc.validate(res, "icache-thrash")
}

func TestDCacheArrayWalk(t *testing.T) {
	g := buildGraph(t, `
        li   r1, 0x8000
        li   r3, 0x8080
loop:   ld   r2, 0(r1)
        add  r4, r4, r2
        addi r1, r1, 4
        bne  r1, r3, loop
        halt`)
	cp := flow.PropagateConstants(g)
	_, ind := flow.DeriveBounds(g, cp)
	addrs := flow.AnalyzeAddrs(g, cp, ind)
	geom := Config{Name: "D", Sets: 4, Ways: 2, LineBytes: 16}
	ds := DataStream(g, addrs)
	res := MustAnalyze(g, ds, geom)
	tc := newTraceCheck(t, g, nil, &geom)
	tc.run()
	tc.validate(res, "dcache-walk")
	// The walk covers 128 bytes = 8 lines > capacity in relevant sets;
	// the ref is imprecise, so it must be NC.
	nc := res.CountClasses()[NotClassified]
	if nc != 1 {
		t.Errorf("array-walk load should be the single NC ref, got %v", res.CountClasses())
	}
}

func TestDCacheScalarReuse(t *testing.T) {
	g := buildGraph(t, `
        li   r1, 0x8000
        li   r5, 10
loop:   ld   r2, 0(r1)
        addi r2, r2, 1
        st   r2, 0(r1)
        addi r5, r5, -1
        bne  r5, r0, loop
        halt`)
	cp := flow.PropagateConstants(g)
	_, ind := flow.DeriveBounds(g, cp)
	addrs := flow.AnalyzeAddrs(g, cp, ind)
	geom := Config{Name: "D", Sets: 4, Ways: 2, LineBytes: 16}
	res := MustAnalyze(g, DataStream(g, addrs), geom)
	tc := newTraceCheck(t, g, nil, &geom)
	tc.run()
	tc.validate(res, "dcache-scalar")
	// The store always hits (the load just fetched the line).
	counts := res.CountClasses()
	if counts[AlwaysHit] == 0 {
		t.Errorf("expected AH store, got %v", counts)
	}
}

func TestDirectMappedConflictAM(t *testing.T) {
	// Two addresses mapping to the same set of a direct-mapped cache,
	// alternately accessed in a loop: both always miss.
	g := buildGraph(t, `
        li   r1, 0x8000
        li   r2, 0x8040    ; same set (64B apart, 4 sets x 16B lines)
        li   r5, 6
loop:   ld   r3, 0(r1)
        ld   r4, 0(r2)
        addi r5, r5, -1
        bne  r5, r0, loop
        halt`)
	cp := flow.PropagateConstants(g)
	_, ind := flow.DeriveBounds(g, cp)
	addrs := flow.AnalyzeAddrs(g, cp, ind)
	geom := Config{Name: "D", Sets: 4, Ways: 1, LineBytes: 16}
	res := MustAnalyze(g, DataStream(g, addrs), geom)
	tc := newTraceCheck(t, g, nil, &geom)
	tc.run()
	tc.validate(res, "dm-conflict")
	if am := res.CountClasses()[AlwaysMiss]; am != 2 {
		t.Errorf("conflicting loads should both be AM, got %v", res.CountClasses())
	}
}

func TestTwoLevelCACAndClasses(t *testing.T) {
	g := buildGraph(t, `
        li   r1, 30
loop:   add  r2, r2, r1
        add  r3, r3, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	l1 := Config{Name: "L1", Sets: 2, Ways: 1, LineBytes: 8}
	l2 := Config{Name: "L2", Sets: 16, Ways: 4, LineBytes: 16}
	res, err := AnalyzeTwoLevel(g, FetchStream(g), l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	// Every ref has a CAC; AH L1 refs must be Never.
	for id, rc := range res.L1.Classes {
		cac := res.CAC[id]
		if rc.Class == AlwaysHit && cac != Never {
			t.Errorf("ref %+v L1 AH but CAC %v", id, cac)
		}
		if rc.Class == AlwaysMiss && cac != Always {
			t.Errorf("ref %+v L1 AM but CAC %v", id, cac)
		}
	}
	// The loop fits L2 easily: refs that reach L2 are PS or AH there.
	for id, rc := range res.L2.Classes {
		if res.CAC[id] == Never {
			continue
		}
		if rc.Class == NotClassified {
			t.Errorf("L2 ref %+v NC in fitting loop: %s", id, res.Summary())
		}
	}
}

func TestTwoLevelL2MissBoundedByL1(t *testing.T) {
	// Simulate the two-level hierarchy on a trace and verify AH-at-L2
	// claims: an L1 miss for a ref classified AH at L2 must hit in L2.
	g := buildGraph(t, `
        li   r1, 12
loop:   add  r2, r2, r1
        add  r3, r3, r2
        add  r4, r4, r3
        addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	l1 := Config{Name: "L1", Sets: 1, Ways: 1, LineBytes: 8}
	l2 := Config{Name: "L2", Sets: 8, Ways: 4, LineBytes: 16}
	res, err := AnalyzeTwoLevel(g, FetchStream(g), l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := NewLRU(l1), NewLRU(l2)
	blockOf := make([]*cfg.Block, len(g.Prog.Insts))
	for _, b := range g.Blocks {
		if !b.IsExit() {
			for i := b.Start; i < b.End; i++ {
				blockOf[i] = b
			}
		}
	}
	bad := 0
	st := isa.NewState(g.Prog)
	st.Trace = func(e isa.TraceEvent) {
		if e.Kind != isa.TraceFetch {
			return
		}
		idx := g.Prog.Index(e.Addr)
		b := blockOf[idx]
		id := RefID{Block: b.ID, Seq: idx - b.Start}
		if !c1.Access(e.Addr) {
			hit2 := c2.Access(e.Addr)
			if res.L2.Classes[id].Class == AlwaysHit && res.CAC[id] != Never && !hit2 {
				bad++
			}
		}
	}
	if _, err := st.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if bad > 0 {
		t.Errorf("%d L2-AH claims violated on trace", bad)
	}
}

// TestClassificationSoundnessRandomLoops fuzzes loop nests with varying
// cache geometry and validates all claims on the trace.
func TestClassificationSoundnessRandomLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		// Random two-level loop nest with some straight-line padding.
		inner := 1 + rng.Intn(6)
		outer := 1 + rng.Intn(5)
		pad := rng.Intn(5)
		src := "        li r1, " + itoa(outer) + "\n"
		src += "outer:  li r2, " + itoa(inner) + "\n"
		for i := 0; i < pad; i++ {
			src += "        add r4, r4, r2\n"
		}
		src += "inner:  add r3, r3, r2\n"
		src += "        addi r2, r2, -1\n"
		src += "        bne r2, r0, inner\n"
		src += "        addi r1, r1, -1\n"
		src += "        bne r1, r0, outer\n"
		src += "        halt\n"
		g, err := cfg.Build(isa.MustAssemble("fuzz", src))
		if err != nil {
			t.Fatal(err)
		}
		geom := Config{
			Name:      "I",
			Sets:      1 << rng.Intn(4),
			Ways:      1 + rng.Intn(3),
			LineBytes: 8 << rng.Intn(2),
		}
		res := MustAnalyze(g, FetchStream(g), geom)
		tc := newTraceCheck(t, g, &geom, nil)
		tc.run()
		tc.validate(res, "fuzz")
		if t.Failed() {
			t.Fatalf("trial %d geom %+v\n%s", trial, geom, src)
		}
	}
}

// TestTouchedSetsMatchesTouchedLines pins the legacy map-shaped wrapper
// to the dense per-set slices it adapts.
func TestTouchedSetsMatchesTouchedLines(t *testing.T) {
	g := buildGraph(t, `
        li   r1, 20
loop:   add  r2, r2, r1
        add  r3, r3, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	geom := Config{Name: "T", Sets: 4, Ways: 2, LineBytes: 8}
	res := MustAnalyze(g, FetchStream(g), geom)
	lines, ok1 := res.TouchedLines()
	sets, ok2 := res.TouchedSets()
	if !ok1 || !ok2 {
		t.Fatal("fetch stream has no unknown refs; both forms must be precise")
	}
	total := 0
	for s, ls := range lines {
		if len(ls) == 0 {
			if _, present := sets[s]; present {
				t.Errorf("set %d: empty in dense form but present in map form", s)
			}
			continue
		}
		total += len(ls)
		if len(sets[s]) != len(ls) {
			t.Errorf("set %d: %d lines dense vs %d map", s, len(ls), len(sets[s]))
		}
		for _, ln := range ls {
			if !sets[s][ln] {
				t.Errorf("set %d: line %d missing from map form", s, ln)
			}
		}
	}
	if total == 0 {
		t.Error("expected touched lines in a straight fetch stream")
	}
}

// TestDataClassificationSoundnessRandom fuzzes data reference streams —
// random mixes of scalar reuse and array walks with varying strides —
// and validates every classification claim against the concrete LRU on
// the executed trace.
func TestDataClassificationSoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		iters := 2 + rng.Intn(8)
		stride := 4 << rng.Intn(3)
		span := stride * (1 + rng.Intn(12))
		base := 0x8000 + 0x100*rng.Intn(4)
		scalar := 0x9000 + 16*rng.Intn(4)
		src := "        li   r1, " + itoa(base) + "\n"
		src += "        li   r3, " + itoa(base+span) + "\n"
		src += "        li   r6, " + itoa(scalar) + "\n"
		src += "        li   r5, " + itoa(iters) + "\n"
		src += "outer:  li   r1, " + itoa(base) + "\n"
		src += "inner:  ld   r2, 0(r1)\n"
		src += "        ld   r4, 0(r6)\n"
		src += "        st   r4, 0(r6)\n"
		src += "        addi r1, r1, " + itoa(stride) + "\n"
		src += "        bne  r1, r3, inner\n"
		src += "        addi r5, r5, -1\n"
		src += "        bne  r5, r0, outer\n"
		src += "        halt\n"
		g := buildGraph(t, src)
		cp := flow.PropagateConstants(g)
		_, ind := flow.DeriveBounds(g, cp)
		addrs := flow.AnalyzeAddrs(g, cp, ind)
		geom := Config{
			Name:      "D",
			Sets:      1 << rng.Intn(4),
			Ways:      1 + rng.Intn(3),
			LineBytes: 8 << rng.Intn(2),
		}
		res := MustAnalyze(g, DataStream(g, addrs), geom)
		tc := newTraceCheck(t, g, nil, &geom)
		tc.run()
		tc.validate(res, "data-fuzz")
		if t.Failed() {
			t.Fatalf("trial %d geom %+v\n%s", trial, geom, src)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
