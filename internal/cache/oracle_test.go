package cache

// This file pins the dense ACS domain and the worklist fixpoint to the
// semantics of the original map-based implementation: oracleACS is a
// line-for-line port of the old `sets []map[LineID]int` representation
// and oracleFixpoint of the old whole-graph round-robin iteration.
// Property tests drive both representations through random operation
// sequences and demand exact agreement after every step.

import (
	"math/rand"
	"testing"

	"paratime/internal/cfg"
)

// oracleACS is the retired map-per-set abstract cache state.
type oracleACS struct {
	cfg      Config
	kind     ACSKind
	sets     []map[LineID]int
	Poisoned bool
}

func newOracle(cfg Config, kind ACSKind) *oracleACS {
	s := &oracleACS{cfg: cfg, kind: kind, sets: make([]map[LineID]int, cfg.Sets)}
	for i := range s.sets {
		s.sets[i] = map[LineID]int{}
	}
	return s
}

func (a *oracleACS) clone() *oracleACS {
	out := &oracleACS{cfg: a.cfg, kind: a.kind, sets: make([]map[LineID]int, len(a.sets)), Poisoned: a.Poisoned}
	for i, m := range a.sets {
		c := make(map[LineID]int, len(m))
		for l, age := range m {
			c[l] = age
		}
		out.sets[i] = c
	}
	return out
}

func (a *oracleACS) equal(b *oracleACS) bool {
	if a.Poisoned != b.Poisoned {
		return false
	}
	for i := range a.sets {
		if len(a.sets[i]) != len(b.sets[i]) {
			return false
		}
		for l, age := range a.sets[i] {
			if bage, ok := b.sets[i][l]; !ok || bage != age {
				return false
			}
		}
	}
	return true
}

func (a *oracleACS) join(b *oracleACS) *oracleACS {
	out := newOracle(a.cfg, a.kind)
	out.Poisoned = a.Poisoned || b.Poisoned
	switch a.kind {
	case Must:
		for i := range a.sets {
			for l, age := range a.sets[i] {
				if bage, ok := b.sets[i][l]; ok {
					out.sets[i][l] = max(age, bage)
				}
			}
		}
	case May:
		for i := range a.sets {
			for l, age := range a.sets[i] {
				out.sets[i][l] = age
			}
			for l, bage := range b.sets[i] {
				if age, ok := out.sets[i][l]; !ok || bage < age {
					out.sets[i][l] = bage
				}
			}
		}
	}
	return out
}

func (a *oracleACS) access(l LineID) {
	s := a.cfg.SetOf(l)
	m := a.sets[s]
	old, ok := m[l]
	if !ok {
		old = a.cfg.Ways
	}
	for x, age := range m {
		if x != l && age < old {
			if age+1 >= a.cfg.Ways {
				delete(m, x)
			} else {
				m[x] = age + 1
			}
		}
	}
	m[l] = 0
}

func (a *oracleACS) accessUncertain(l LineID) {
	upd := a.clone()
	upd.access(l)
	*a = *a.join(upd)
}

func (a *oracleACS) accessImprecise(lines []LineID) {
	switch a.kind {
	case Must:
		touched := map[int]bool{}
		for _, l := range lines {
			touched[a.cfg.SetOf(l)] = true
		}
		for s := range touched {
			a.ageSet(s, 1)
		}
	case May:
		for _, l := range lines {
			m := a.sets[a.cfg.SetOf(l)]
			if age, ok := m[l]; !ok || age > 0 {
				m[l] = 0
			}
		}
	}
}

func (a *oracleACS) accessUnknown() {
	switch a.kind {
	case Must:
		for s := range a.sets {
			a.ageSet(s, 1)
		}
	case May:
		a.Poisoned = true
	}
}

func (a *oracleACS) ageAll(n int) {
	for s := range a.sets {
		a.ageSet(s, n)
	}
}

func (a *oracleACS) ageSet(s, n int) {
	if n <= 0 {
		return
	}
	m := a.sets[s]
	for x, age := range m {
		if age+n >= a.cfg.Ways {
			delete(m, x)
		} else {
			m[x] = age + n
		}
	}
}

func (a *oracleACS) evictSet(s int) {
	a.sets[s] = map[LineID]int{}
}

// agree fails the test unless the dense state matches the oracle exactly
// on every interned line (and on poisoning).
func agree(t *testing.T, step string, o *oracleACS, a *ACS) {
	t.Helper()
	if o.Poisoned != a.Poisoned {
		t.Fatalf("%s: poisoned oracle=%v dense=%v", step, o.Poisoned, a.Poisoned)
	}
	idx := a.idx
	total := 0
	for slot := int32(0); slot < int32(idx.NumSlots()); slot++ {
		l := idx.LineAt(slot)
		oAge, oIn := o.sets[o.cfg.SetOf(l)][l]
		if !oIn {
			oAge = o.cfg.Ways
		} else {
			total++
		}
		if got := a.Age(l); got != oAge {
			t.Fatalf("%s: line %d oracle age %d (in=%v) dense age %d\noracle vs dense:\n%v\n%v",
				step, l, oAge, oIn, got, o.sets, a)
		}
	}
	for s := range o.sets {
		for l := range o.sets[s] {
			if _, ok := idx.SlotOf(l); !ok {
				t.Fatalf("%s: oracle contains uninterned line %d", step, l)
			}
		}
	}
	_ = total
}

// acsOpSeq drives one (oracle, dense) pair of each kind through a random
// operation sequence, checking agreement after every operation.
func acsOpSeq(t *testing.T, rng *rand.Rand, geom Config, universe int, steps int) {
	idx := NewIndex(geom, universeLines(universe))
	for _, kind := range []ACSKind{Must, May} {
		o := newOracle(geom, kind)
		a := NewACS(idx, kind)
		o2 := newOracle(geom, kind)
		a2 := NewACS(idx, kind)
		for step := 0; step < steps; step++ {
			l := LineID(rng.Intn(universe))
			switch op := rng.Intn(10); op {
			case 0, 1, 2, 3:
				o.access(l)
				a.Access(l)
			case 4:
				o.accessUncertain(l)
				a.AccessUncertain(l)
			case 5:
				k := 1 + rng.Intn(min(universe, 5))
				lines := make([]LineID, 0, k)
				for len(lines) < k {
					lines = append(lines, LineID(rng.Intn(universe)))
				}
				lines = geom.LinesOf(addrsOf(geom, lines))
				o.accessImprecise(lines)
				a.AccessImprecise(lines)
			case 6:
				if kind == Must || rng.Intn(4) == 0 { // poisoning is absorbing; keep May informative
					o.accessUnknown()
					a.AccessUnknown()
				}
			case 7:
				n := rng.Intn(3)
				o.ageAll(n)
				a.AgeAll(n)
			case 8:
				s, n := rng.Intn(geom.Sets), rng.Intn(3)
				o.ageSet(s, n)
				a.AgeSet(s, n)
				if rng.Intn(2) == 0 {
					s = rng.Intn(geom.Sets)
					o.evictSet(s)
					a.EvictSet(s)
				}
			case 9:
				// Advance the second pair and join it in.
				o2.access(l)
				a2.Access(l)
				o = o.join(o2)
				a = a.Join(a2)
			}
			agree(t, "op", o, a)
		}
		// Clone independence: mutating the clone leaves the original alone.
		oc, ac := o.clone(), a.Clone()
		oc.access(LineID(rng.Intn(universe)))
		agree(t, "post-clone original", o, a)
		_ = oc
		if !a.Equal(a.Clone()) {
			t.Fatal("state not Equal to its own clone")
		}
		_ = ac
	}
}

// addrsOf converts lines back to representative byte addresses.
func addrsOf(geom Config, lines []LineID) []uint32 {
	out := make([]uint32, len(lines))
	for i, l := range lines {
		out[i] = uint32(l) * uint32(geom.LineBytes)
	}
	return out
}

// TestACSOracleAgreement is the differential property test: the dense
// domain must agree with the map-based oracle on random op sequences
// over varied geometries.
func TestACSOracleAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		geom := Config{
			Name:      "o",
			Sets:      1 << rng.Intn(4),
			Ways:      1 + rng.Intn(4),
			LineBytes: 8 << rng.Intn(2),
		}
		acsOpSeq(t, rng, geom, 2+rng.Intn(12), 120)
	}
}

// FuzzACSOracle feeds arbitrary byte strings as operation programs to
// both representations.
func FuzzACSOracle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{9, 9, 9, 4, 4, 4, 6, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		geom := Config{
			Name:      "f",
			Sets:      1 << (data[0] % 4),
			Ways:      1 + int(data[0]>>4)%4,
			LineBytes: 16,
		}
		universe := 2 + int(data[1]%12)
		idx := NewIndex(geom, universeLines(universe))
		for _, kind := range []ACSKind{Must, May} {
			o := newOracle(geom, kind)
			a := NewACS(idx, kind)
			for i := 2; i+1 < len(data); i += 2 {
				l := LineID(int(data[i+1]) % universe)
				switch data[i] % 6 {
				case 0, 1:
					o.access(l)
					a.Access(l)
				case 2:
					o.accessUncertain(l)
					a.AccessUncertain(l)
				case 3:
					lines := geom.LinesOf(addrsOf(geom, []LineID{l, LineID(int(data[i+1]/2) % universe)}))
					o.accessImprecise(lines)
					a.AccessImprecise(lines)
				case 4:
					o.ageSet(int(data[i+1])%geom.Sets, 1)
					a.AgeSet(int(data[i+1])%geom.Sets, 1)
				case 5:
					o.accessUnknown()
					a.AccessUnknown()
				}
				agree(t, "fuzz-op", o, a)
			}
		}
	})
}

// oracleFixpoint is the retired whole-graph round-robin fixpoint,
// operating on oracle states over the raw stream (single-level: every
// reference reaches the cache).
func oracleFixpoint(g *cfg.Graph, st *Stream, cacheCfg Config, kind ACSKind) map[cfg.BlockID]*oracleACS {
	inStates := map[cfg.BlockID]*oracleACS{}
	out := map[cfg.BlockID]*oracleACS{}
	blocks := g.RPO()
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			var in *oracleACS
			if b == g.Entry {
				in = newOracle(cacheCfg, kind)
			} else {
				for _, e := range b.Preds {
					p, ok := out[e.From.ID]
					if !ok {
						continue
					}
					if in == nil {
						in = p.clone()
					} else {
						in = in.join(p)
					}
				}
				if in == nil {
					continue
				}
			}
			o := in.clone()
			for _, r := range st.Refs[b.ID] {
				switch {
				case r.Exact:
					o.access(cacheCfg.LineOf(r.Addr))
				case r.Unknown:
					o.accessUnknown()
				default:
					o.accessImprecise(cacheCfg.LinesOf(r.Addrs))
				}
			}
			prevIn, okIn := inStates[b.ID]
			prevOut, okOut := out[b.ID]
			if !okIn || !prevIn.equal(in) || !okOut || !prevOut.equal(o) {
				inStates[b.ID] = in
				out[b.ID] = o
				changed = true
			}
		}
	}
	return inStates
}

// TestWorklistMatchesRoundRobin: the worklist fixpoint must compute
// exactly the in-states of the old round-robin iteration, block by
// block, on random loop-nest programs and random geometries.
func TestWorklistMatchesRoundRobin(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		g := randomLoopNest(t, rng)
		geom := Config{
			Name:      "w",
			Sets:      1 << rng.Intn(4),
			Ways:      1 + rng.Intn(3),
			LineBytes: 8 << rng.Intn(2),
		}
		st := FetchStream(g)
		res := MustAnalyze(g, st, geom)
		for _, kind := range []ACSKind{Must, May} {
			want := oracleFixpoint(g, st, geom, kind)
			got := res.MustIn
			if kind == May {
				got = res.MayIn
			}
			if len(want) != len(got) {
				t.Fatalf("trial %d kind %d: %d oracle states vs %d worklist states",
					trial, kind, len(want), len(got))
			}
			for id, o := range want {
				a, ok := got[id]
				if !ok {
					t.Fatalf("trial %d kind %d: block %d missing from worklist states", trial, kind, id)
				}
				agree(t, "fixpoint in-state", o, a)
			}
		}
	}
}

// randomLoopNest assembles a random two-level loop nest (same generator
// family as TestClassificationSoundnessRandomLoops).
func randomLoopNest(t *testing.T, rng *rand.Rand) *cfg.Graph {
	t.Helper()
	inner := 1 + rng.Intn(6)
	outer := 1 + rng.Intn(5)
	pad := rng.Intn(5)
	src := "        li r1, " + itoa(outer) + "\n"
	src += "outer:  li r2, " + itoa(inner) + "\n"
	for i := 0; i < pad; i++ {
		src += "        add r4, r4, r2\n"
	}
	src += "inner:  add r3, r3, r2\n"
	src += "        addi r2, r2, -1\n"
	src += "        bne r2, r0, inner\n"
	src += "        addi r1, r1, -1\n"
	src += "        bne r1, r0, outer\n"
	src += "        halt\n"
	return buildGraph(t, src)
}
