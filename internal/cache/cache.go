// Package cache implements the cache machinery of static WCET analysis:
// a concrete set-associative LRU cache model (used by the cycle-accurate
// simulator and as the ground truth in tests) and the classic abstract
// interpretation analyses — Must, May and loop-scoped Persistence — that
// classify every memory reference as ALWAYS_HIT, ALWAYS_MISS, PERSISTENT
// or NOT_CLASSIFIED, as described in §2.1 of Rochange's survey (after
// Ferdinand & Wilhelm, and Hardy & Puaut for multi-level hierarchies).
package cache

import (
	"fmt"
	"slices"
)

// LineID identifies a memory line: byte address divided by the line size.
type LineID uint32

// Config describes one cache level.
type Config struct {
	Name      string
	Sets      int // number of sets (power of two)
	Ways      int // associativity
	LineBytes int // line size in bytes (power of two)

	// HitLatency is the access time in cycles on a hit; MissPenalty is the
	// additional time to fill from the next level (used by the timing
	// composition, not by the classification analysis itself).
	HitLatency  int
	MissPenalty int
}

// Validate checks structural sanity.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: sets %d not a positive power of two", c.Name, c.Sets)
	}
	if c.LineBytes < 4 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two >= 4", c.Name, c.LineBytes)
	}
	if c.Ways <= 0 || c.Ways > 255 {
		// The upper bound keeps abstract ages (plus the "absent" sentinel
		// at Ways) representable in one byte of the dense ACS encoding.
		return fmt.Errorf("cache %s: ways %d", c.Name, c.Ways)
	}
	return nil
}

// LineOf maps a byte address to its line.
func (c Config) LineOf(addr uint32) LineID { return LineID(addr / uint32(c.LineBytes)) }

// SetOf maps a line to its set index.
func (c Config) SetOf(l LineID) int { return int(uint32(l) % uint32(c.Sets)) }

// CapacityBytes returns the total capacity.
func (c Config) CapacityBytes() int { return c.Sets * c.Ways * c.LineBytes }

// LinesOf returns the distinct lines touched by a set of byte addresses,
// in ascending order.
func (c Config) LinesOf(addrs []uint32) []LineID {
	out := make([]LineID, len(addrs))
	for i, a := range addrs {
		out[i] = c.LineOf(a)
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// RefLines returns the distinct lines a reference may touch under this
// geometry, ascending. Unknown references touch no enumerable line: the
// bool is false and callers must treat the reference pessimistically.
func (c Config) RefLines(r Ref) ([]LineID, bool) {
	switch {
	case r.Exact:
		return []LineID{c.LineOf(r.Addr)}, true
	case r.Unknown:
		return nil, false
	default:
		return c.LinesOf(r.Addrs), true
	}
}

// LRU is a concrete set-associative cache with true LRU replacement.
// It supports line locking (locked lines are never evicted) and is the
// reference model the abstract analyses are validated against.
type LRU struct {
	cfg    Config
	sets   [][]LineID // each set: MRU first
	locked map[LineID]bool

	Hits, Misses uint64
}

// NewLRU returns an empty cache.
func NewLRU(cfg Config) *LRU {
	return &LRU{cfg: cfg, sets: make([][]LineID, cfg.Sets), locked: map[LineID]bool{}}
}

// Config returns the cache geometry.
func (c *LRU) Config() Config { return c.cfg }

// Access touches the line containing addr and reports whether it hit.
// On a miss the line is filled, evicting the least recently used unlocked
// line if the set is full.
func (c *LRU) Access(addr uint32) bool {
	return c.AccessLine(c.cfg.LineOf(addr))
}

// AccessLine is Access by line.
func (c *LRU) AccessLine(l LineID) bool {
	s := c.cfg.SetOf(l)
	set := c.sets[s]
	for i, x := range set {
		if x == l {
			// Move to MRU.
			copy(set[1:i+1], set[:i])
			set[0] = l
			c.Hits++
			return true
		}
	}
	c.Misses++
	c.insert(s, l)
	return false
}

func (c *LRU) insert(s int, l LineID) {
	set := c.sets[s]
	if len(set) < c.cfg.Ways {
		c.sets[s] = append([]LineID{l}, set...)
		return
	}
	// Evict the least recently used unlocked line.
	victim := -1
	for i := len(set) - 1; i >= 0; i-- {
		if !c.locked[set[i]] {
			victim = i
			break
		}
	}
	if victim < 0 {
		// Fully locked set: the access bypasses the cache.
		return
	}
	out := make([]LineID, 0, len(set))
	out = append(out, l)
	for i, x := range set {
		if i != victim {
			out = append(out, x)
		}
	}
	c.sets[s] = out
}

// Contains reports whether the line holding addr is cached.
func (c *LRU) Contains(addr uint32) bool {
	l := c.cfg.LineOf(addr)
	for _, x := range c.sets[c.cfg.SetOf(l)] {
		if x == l {
			return true
		}
	}
	return false
}

// Lock pins a line: it may still miss on first access but is never
// evicted once resident. Locking an absent line also prefetches it.
func (c *LRU) Lock(l LineID) {
	c.locked[l] = true
	s := c.cfg.SetOf(l)
	for _, x := range c.sets[s] {
		if x == l {
			return
		}
	}
	c.insert(s, l)
}

// Unlock releases a locked line (it stays resident until evicted).
func (c *LRU) Unlock(l LineID) { delete(c.locked, l) }

// Flush empties the cache, keeping locks (locked lines are refetched on
// next access).
func (c *LRU) Flush() {
	for i := range c.sets {
		c.sets[i] = nil
	}
}

// Dump renders occupancy for debugging.
func (c *LRU) Dump() string {
	out := ""
	for i, set := range c.sets {
		if len(set) == 0 {
			continue
		}
		out += fmt.Sprintf("set %d:", i)
		for _, l := range set {
			out += fmt.Sprintf(" %d", l)
		}
		out += "\n"
	}
	return out
}
