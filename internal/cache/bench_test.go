package cache_test

import (
	"testing"

	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/workload"
)

// benchAnalysis prepares the largest suite task (matmult) under the
// default system: its merged L2 stream and CAC map are the heaviest
// abstract-interpretation workload the experiments exercise.
func benchAnalysis(b *testing.B) *core.Analysis {
	b.Helper()
	a, err := core.Prepare(workload.MatMult(8, workload.Slot(0)), core.DefaultSystem())
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkMustMayFixpoint measures one full single-level analysis (Must
// and May fixpoints, persistence, classification) over the instruction
// stream — the inner loop of every solo and joint experiment.
func BenchmarkMustMayFixpoint(b *testing.B) {
	a := benchAnalysis(b)
	l1 := a.Sys.Mem.L1I
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Analyze(a.G, a.IStream, l1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoin measures one abstract-state join on well-filled Must
// states, the single most frequent operation of the fixpoint.
func BenchmarkJoin(b *testing.B) {
	geom := cache.Config{Name: "J", Sets: 32, Ways: 4, LineBytes: 32}
	lines := make([]cache.LineID, 96)
	for i := range lines {
		lines[i] = cache.LineID(i)
	}
	idx := cache.NewIndex(geom, lines)
	sa := cache.NewACS(idx, cache.Must)
	sb := cache.NewACS(idx, cache.Must)
	for l := cache.LineID(0); l < 96; l++ {
		sa.Access(l)
		if l%3 != 0 {
			sb.Access(l)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sa.Join(sb)
	}
}

// BenchmarkAnalyzeL2Merged measures the filtered L2 analysis over the
// merged instruction+data stream under the L1-derived CAC — the shape
// every shared-cache, bypass, and locking experiment re-runs.
func BenchmarkAnalyzeL2Merged(b *testing.B) {
	a := benchAnalysis(b)
	l2 := *a.Sys.Mem.L2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.AnalyzeWithCAC(a.G, a.Merged, l2, a.CAC); err != nil {
			b.Fatal(err)
		}
	}
}
