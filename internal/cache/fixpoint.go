package cache

import (
	"slices"

	"paratime/internal/cfg"
)

// refOp is one reference of a stream compiled against an Index: address
// resolution (line → slot, candidate sets) and the reference's CAC are
// done once, so the fixpoint's transfer functions run over small
// integers with no map lookups and no allocation.
type refOp struct {
	slot    int32 // exact references: interned slot; -1 otherwise
	cac     CAC
	unknown bool
	slots   []int32 // imprecise: interned candidate slots, ascending
	sets    []int32 // imprecise: distinct sets touched, ascending
}

// compileOps lowers a stream to per-block op lists indexed by block ID
// (block IDs equal RPO positions, so ops[i] belongs to g.Blocks[i]).
// cac may be nil for single-level analyses (every reference Always
// reaches the level).
func compileOps(g *cfg.Graph, st *Stream, cac map[RefID]CAC, idx *Index) [][]refOp {
	ops := make([][]refOp, len(g.Blocks))
	for _, b := range g.Blocks {
		if b.IsExit() {
			continue
		}
		refs := st.Refs[b.ID]
		if len(refs) == 0 {
			continue
		}
		row := make([]refOp, len(refs))
		for seq, r := range refs {
			op := refOp{slot: -1}
			if cac != nil {
				op.cac = cac[RefID{Block: b.ID, Seq: seq}]
			}
			switch {
			case r.Exact:
				slot, ok := idx.SlotOf(idx.cfg.LineOf(r.Addr))
				if !ok {
					panic("cache: exact reference line not interned")
				}
				op.slot = slot
			case r.Unknown:
				op.unknown = true
			default:
				lines := idx.cfg.LinesOf(r.Addrs)
				op.slots = make([]int32, len(lines))
				op.sets = make([]int32, len(lines))
				for i, l := range lines {
					slot, ok := idx.SlotOf(l)
					if !ok {
						panic("cache: imprecise reference line not interned")
					}
					op.slots[i] = slot
					op.sets[i] = int32(idx.cfg.SetOf(l))
				}
				slices.Sort(op.slots)
				slices.Sort(op.sets)
				op.sets = slices.Compact(op.sets)
			}
			row[seq] = op
		}
		ops[int(b.ID)] = row
	}
	return ops
}

// applyOp is the compiled transfer function: the dense-state equivalent
// of applyRef (and, with an Always CAC, of the single-level transfer).
func (a *ACS) applyOp(op refOp) {
	switch {
	case op.cac == Never:
		// no effect at this level
	case op.unknown:
		a.AccessUnknown()
	case op.slot >= 0:
		if op.cac == Uncertain {
			a.accessUncertainSlot(op.slot)
		} else {
			a.accessSlot(op.slot)
		}
	default:
		// Imprecise: accessing and not accessing join to the same state
		// under both CACs, so Uncertain needs no extra join here.
		if a.kind == Must {
			for _, s := range op.sets {
				a.ageSetRange(int(s), 1)
			}
		} else {
			for _, slot := range op.slots {
				a.age[slot] = 0
			}
		}
	}
}

// runFixpoint computes the Must or May in-states of every reachable
// block and publishes them into the block-ID-keyed map.
func (res *Result) runFixpoint(g *cfg.Graph, ops [][]refOp, kind ACSKind, inStates map[cfg.BlockID]*ACS) {
	in := fixpointWorklist(g, res.idx, ops, kind)
	for i, b := range g.Blocks {
		if in[i] != nil {
			inStates[b.ID] = in[i]
		}
	}
}

// fixpointWorklist computes the Must or May in-states of every reachable
// block with a cfg.Worklist in RPO priority order: a block's in-state is
// the join of its predecessors' out-states, and only the successors of
// blocks whose out-state actually changed are re-examined. All states
// live in preallocated dense vectors and the two scratch states are
// reused across iterations, so steady-state iteration allocates nothing.
// The returned slice is indexed by block position; unreachable blocks
// stay nil. The transfer functions are monotone and the join is an
// element-wise max/min on a finite lattice, so the result is the unique
// least fixpoint — independent of visit order, which is what lets the
// sharded and levelized parallel drivers reuse this worklist per
// shard/component and still match the sequential run bit for bit.
func fixpointWorklist(g *cfg.Graph, idx *Index, ops [][]refOp, kind ACSKind) []*ACS {
	blocks := g.Blocks // already RPO-ordered, with ID == position
	n := len(blocks)
	in := make([]*ACS, n)
	out := make([]*ACS, n)
	scratchIn := NewACS(idx, kind)
	scratchOut := NewACS(idx, kind)
	wl := cfg.NewWorklist(n)
	for i := range blocks {
		wl.Push(i)
	}
	for {
		i, ok := wl.Pop()
		if !ok {
			break
		}
		b := blocks[i]
		if b == g.Entry {
			scratchIn.Reset()
		} else {
			first := true
			for _, e := range b.Preds {
				p := out[int(e.From.ID)]
				if p == nil {
					continue // unvisited predecessor (back edge, first pass)
				}
				if first {
					scratchIn.CopyFrom(p)
					first = false
				} else {
					scratchIn.JoinInPlace(p)
				}
			}
			if first {
				continue // re-enqueued once a predecessor produces a state
			}
		}
		if in[i] != nil && out[i] != nil && scratchIn.Equal(in[i]) {
			continue
		}
		if in[i] == nil {
			in[i] = scratchIn.Clone()
		} else {
			in[i].CopyFrom(scratchIn)
		}
		scratchOut.CopyFrom(scratchIn)
		for _, op := range ops[i] {
			scratchOut.applyOp(op)
		}
		if out[i] == nil {
			out[i] = scratchOut.Clone()
		} else if scratchOut.Equal(out[i]) {
			continue
		} else {
			out[i].CopyFrom(scratchOut)
		}
		for _, e := range b.Succs {
			wl.Push(int(e.To.ID))
		}
	}
	return in
}
