package cache

import (
	"paratime/internal/cfg"
	"paratime/internal/parallel"
)

// Parallel-driver thresholds. Below them the fork/join overhead beats
// the win and the sequential worklist runs unchanged. They are package
// variables so the differential tests can force the parallel paths onto
// arbitrarily small inputs.
var (
	// parMinSlots gates the per-set sharded fixpoint on interned-index
	// size (sharding pays off when the age vectors are wide).
	parMinSlots = 256
	// parMinBlocks gates the levelized fixpoint on graph size (the
	// fallback when the geometry leaves nothing to shard, e.g. one set).
	parMinBlocks = 96
)

// AnalyzePar is Analyze with intra-analysis parallelism: workers > 1
// runs the Must/May fixpoints sharded by cache set (or levelized over
// the CFG's SCC condensation when the geometry leaves fewer than two
// shards). Output is bit-identical to Analyze at any worker count: set
// contents never interact across sets, so sharding is an exact
// projection of the dense state, and both transfer and join are
// monotone element-wise operators whose least fixpoint is unique.
func AnalyzePar(g *cfg.Graph, st *Stream, cacheCfg Config, workers int) (*Result, error) {
	return AnalyzeWithCACPar(g, st, cacheCfg, nil, workers)
}

// AnalyzeWithCACPar is AnalyzeWithCAC with intra-analysis parallelism
// (see AnalyzePar); workers <= 1 is exactly the sequential analysis.
func AnalyzeWithCACPar(g *cfg.Graph, st *Stream, cacheCfg Config, cac map[RefID]CAC, workers int) (*Result, error) {
	if err := cacheCfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Cfg:     cacheCfg,
		Classes: map[RefID]RefClass{},
		MustIn:  map[cfg.BlockID]*ACS{},
		MayIn:   map[cfg.BlockID]*ACS{},
		idx:     StreamIndex(cacheCfg, st),
		g:       g,
		stream:  st,
		cac:     cac,
	}
	ops := compileOps(g, st, cac, res.idx)
	res.runFixpoints(g, ops, workers)
	res.computePersistence(g, ops)
	res.classify(g, st)
	return res, nil
}

// runFixpoints computes Must and May in-states, picking the cheapest
// schedule that the input shape supports: per-set shards when the
// interned index is wide enough, the levelized fixpoint when the graph
// is large but everything maps to too few sets, sequential otherwise.
// Every strategy converges to the same unique least fixpoint.
func (res *Result) runFixpoints(g *cfg.Graph, ops [][]refOp, workers int) {
	if workers > 1 && res.idx.NumSlots() >= parMinSlots {
		if plan := shardPlan(res.idx, workers); len(plan) >= 2 {
			res.runFixpointSharded(g, ops, plan, workers)
			return
		}
	}
	if workers > 1 && len(g.Blocks) >= parMinBlocks {
		if lv := cfg.Levelize(g); lv.MaxWidth() >= 2 {
			res.publish(fixpointLevels(g, res.idx, ops, Must, lv, workers), Must)
			res.publish(fixpointLevels(g, res.idx, ops, May, lv, workers), May)
			return
		}
	}
	res.runFixpoint(g, ops, Must, res.MustIn)
	res.runFixpoint(g, ops, May, res.MayIn)
}

// publish moves a dense in-state vector into the block-ID-keyed result
// map.
func (res *Result) publish(in []*ACS, kind ACSKind) {
	m := res.MustIn
	if kind == May {
		m = res.MayIn
	}
	for i, b := range res.g.Blocks {
		if in[i] != nil {
			m[b.ID] = in[i]
		}
	}
}

// shard is one contiguous set range [s0, s1) of an Index, covering the
// contiguous slot range [lo, hi) (the index groups slots by set).
type shard struct {
	s0, s1 int
	lo, hi int32
}

// shardPlan partitions the index's sets into at most workers contiguous
// shards balanced by slot count (sets vary in how many distinct lines
// they intern). Empty shards are dropped; fewer than two shards means
// the geometry has nothing to split.
func shardPlan(ix *Index, workers int) []shard {
	sets := ix.cfg.Sets
	n := ix.NumSlots()
	if workers > sets {
		workers = sets
	}
	if workers < 2 || n == 0 {
		return nil
	}
	plan := make([]shard, 0, workers)
	s0 := 0
	done := 0
	for p := 0; p < workers && s0 < sets; p++ {
		// Balance the remaining slots over the remaining shards.
		target := (n - done + (workers - p - 1)) / (workers - p)
		s1 := s0
		size := 0
		for s1 < sets && (size < target || size == 0) {
			size += int(ix.setStart[s1+1] - ix.setStart[s1])
			s1++
		}
		if p == workers-1 {
			s1 = sets
			size = n - done
		}
		if size > 0 {
			plan = append(plan, shard{s0: s0, s1: s1, lo: ix.setStart[s0], hi: ix.setStart[s1]})
		}
		done += size
		s0 = s1
	}
	return plan
}

// subIndex builds the shard's view of the index: the contiguous slot
// slice of sets [s0, s1) with set starts remapped so global set numbers
// keep working (sets outside the shard become empty ranges). The lines
// slice is shared with the parent; the view needs no slot map because
// shard ops are pre-remapped to local slots.
func (ix *Index) subIndex(sh shard) *Index {
	st := make([]int32, len(ix.setStart))
	for s := range st {
		switch {
		case s <= sh.s0:
			st[s] = 0
		case s >= sh.s1:
			st[s] = sh.hi - sh.lo
		default:
			st[s] = ix.setStart[s] - sh.lo
		}
	}
	return &Index{cfg: ix.cfg, lines: ix.lines[sh.lo:sh.hi], setStart: st}
}

// shardOps projects the compiled op lists onto one shard: exact and
// imprecise references keep only slots inside the shard (remapped to
// local slot numbers), unknown-address references are replicated into
// every shard (Must ages every slot; May poisons globally — the flag's
// dynamics are identical in each shard), and references that cannot
// touch the shard (or never reach the level) are dropped. The
// projection commutes with every transfer function, which is the whole
// sharding argument: running the worklist on projected ops equals
// projecting the full fixpoint.
func shardOps(ops [][]refOp, sh shard) [][]refOp {
	out := make([][]refOp, len(ops))
	for bi, row := range ops {
		if len(row) == 0 {
			continue
		}
		var sub []refOp
		for _, op := range row {
			switch {
			case op.cac == Never:
				// no effect at any level: drop
			case op.unknown:
				sub = append(sub, op)
			case op.slot >= 0:
				if op.slot >= sh.lo && op.slot < sh.hi {
					op.slot -= sh.lo
					sub = append(sub, op)
				}
			default:
				var slots, sets []int32
				for _, s := range op.slots {
					if s >= sh.lo && s < sh.hi {
						slots = append(slots, s-sh.lo)
					}
				}
				for _, s := range op.sets {
					if int(s) >= sh.s0 && int(s) < sh.s1 {
						sets = append(sets, s)
					}
				}
				if len(slots) > 0 {
					op.slots, op.sets = slots, sets
					sub = append(sub, op)
				}
			}
		}
		out[bi] = sub
	}
	return out
}

// runFixpointSharded computes Must and May in-states with one worklist
// fixpoint per (kind, shard) pair, all pairs fanned across the worker
// pool, then merges the shard states back into full-width vectors in
// set order. Reachability is graph-driven and identical in every shard,
// and the May Poisoned flag evolves identically per shard (unknown ops
// are replicated), so the merge is a plain slice stitch.
func (res *Result) runFixpointSharded(g *cfg.Graph, ops [][]refOp, plan []shard, workers int) {
	type task struct {
		sh   shard
		kind ACSKind
		sub  *Index
		ops  [][]refOp
		in   []*ACS
	}
	tasks := make([]task, 0, 2*len(plan))
	for _, kind := range []ACSKind{Must, May} {
		for _, sh := range plan {
			tasks = append(tasks, task{sh: sh, kind: kind, sub: res.idx.subIndex(sh), ops: shardOps(ops, sh)})
		}
	}
	parallel.For(workers, len(tasks), func(i int) {
		t := &tasks[i]
		t.in = fixpointWorklist(g, t.sub, t.ops, t.kind)
	})
	// Stitch: shard k of a kind holds each reachable block's age slice
	// for slots [lo, hi); shards agree on reachability and Poisoned.
	half := len(plan)
	for k, kind := range []ACSKind{Must, May} {
		group := tasks[k*half : (k+1)*half]
		m := res.MustIn
		if kind == May {
			m = res.MayIn
		}
		for bi, b := range g.Blocks {
			if group[0].in[bi] == nil {
				continue
			}
			full := &ACS{idx: res.idx, kind: kind, age: make([]uint8, res.idx.NumSlots())}
			for si := range group {
				part := group[si].in[bi]
				copy(full.age[group[si].sh.lo:group[si].sh.hi], part.age)
				full.Poisoned = full.Poisoned || part.Poisoned
			}
			m[b.ID] = full
		}
	}
}

// fixpointLevels computes one kind's in-states by sweeping the SCC
// condensation level by level: all components of a level are mutually
// independent and run concurrently (each touches only its own blocks'
// states and reads only frozen earlier-level out-states — a pull-model
// schedule with a barrier between levels), trivial components apply the
// transfer exactly once, and loop components converge a private
// worklist restricted to the component. Solving the equation system in
// condensation order yields the same unique least fixpoint as the
// global worklist.
func fixpointLevels(g *cfg.Graph, idx *Index, ops [][]refOp, kind ACSKind, lv *cfg.Levels, workers int) []*ACS {
	blocks := g.Blocks
	n := len(blocks)
	in := make([]*ACS, n)
	out := make([]*ACS, n)

	// pullIn recomputes a block's in-state from its predecessors' stored
	// out-states (copy-first, matching the sequential join), reporting
	// false when no predecessor has produced a state yet.
	pullIn := func(dst *ACS, b *cfg.Block) bool {
		if b == g.Entry {
			dst.Reset()
			return true
		}
		first := true
		for _, e := range b.Preds {
			p := out[int(e.From.ID)]
			if p == nil {
				continue
			}
			if first {
				dst.CopyFrom(p)
				first = false
			} else {
				dst.JoinInPlace(p)
			}
		}
		return !first
	}

	runComp := func(c *cfg.Comp) {
		scratchIn := NewACS(idx, kind)
		if c.Trivial {
			i := c.Blocks[0]
			if !pullIn(scratchIn, blocks[i]) {
				return
			}
			in[i] = scratchIn
			o := scratchIn.Clone()
			for _, op := range ops[i] {
				o.applyOp(op)
			}
			out[i] = o
			return
		}
		// Loop component: converge a worklist restricted to its blocks.
		scratchOut := NewACS(idx, kind)
		wl := cfg.NewWorklist(n)
		for _, i := range c.Blocks {
			wl.Push(i)
		}
		for {
			i, ok := wl.Pop()
			if !ok {
				break
			}
			b := blocks[i]
			if !pullIn(scratchIn, b) {
				continue
			}
			if in[i] != nil && out[i] != nil && scratchIn.Equal(in[i]) {
				continue
			}
			if in[i] == nil {
				in[i] = scratchIn.Clone()
			} else {
				in[i].CopyFrom(scratchIn)
			}
			scratchOut.CopyFrom(scratchIn)
			for _, op := range ops[i] {
				scratchOut.applyOp(op)
			}
			if out[i] == nil {
				out[i] = scratchOut.Clone()
			} else if scratchOut.Equal(out[i]) {
				continue
			} else {
				out[i].CopyFrom(scratchOut)
			}
			ci := lv.CompOf[i]
			for _, e := range b.Succs {
				if to := int(e.To.ID); lv.CompOf[to] == ci {
					wl.Push(to)
				}
			}
		}
	}

	for _, level := range lv.Levels {
		parallel.For(workers, len(level), func(k int) {
			runComp(&lv.Comps[level[k]])
		})
	}
	return in
}
