package cache

import (
	"fmt"
	"maps"
	"slices"

	"paratime/internal/cfg"
	"paratime/internal/flow"
)

// RefKind discriminates instruction fetches from data accesses.
type RefKind uint8

// Reference kinds.
const (
	Fetch RefKind = iota
	Load
	Store
)

// RefID identifies one reference: a block and its ordinal in that block's
// reference stream.
type RefID struct {
	Block cfg.BlockID
	Seq   int
}

// Ref is one memory reference of a block's stream. Exactly one of three
// precision levels applies: Exact (single address), imprecise (list of
// candidate addresses), or Unknown.
type Ref struct {
	Kind    RefKind
	InstIdx int // instruction index within the block, for diagnostics

	Exact   bool
	Addr    uint32   // when Exact
	Addrs   []uint32 // when imprecise (non-nil, !Exact, !Unknown)
	Unknown bool
}

// maxImpreciseAddrs caps enumeration of candidate addresses; larger
// ranges degrade to Unknown.
const maxImpreciseAddrs = 8192

// Stream holds the per-block reference sequences of a graph for one
// cache (instruction or data).
type Stream struct {
	Refs map[cfg.BlockID][]Ref
}

// FetchStream builds the instruction-fetch reference stream: every
// instruction fetch is an exact reference to its own address.
func FetchStream(g *cfg.Graph) *Stream {
	st := &Stream{Refs: map[cfg.BlockID][]Ref{}}
	for _, b := range g.Blocks {
		if b.IsExit() {
			continue
		}
		refs := make([]Ref, 0, b.Len())
		for i := 0; i < b.Len(); i++ {
			refs = append(refs, Ref{Kind: Fetch, InstIdx: i, Exact: true, Addr: b.Addr(i)})
		}
		st.Refs[b.ID] = refs
	}
	return st
}

// DataStream builds the data reference stream from the address analysis:
// one reference per LD/ST instruction.
func DataStream(g *cfg.Graph, addrs map[flow.RefKey]flow.AddrRange) *Stream {
	st := &Stream{Refs: map[cfg.BlockID][]Ref{}}
	for _, b := range g.Blocks {
		if b.IsExit() {
			continue
		}
		var refs []Ref
		for i, in := range b.Insts() {
			if !in.IsMem() {
				continue
			}
			kind := Load
			if in.Op.String() == "st" {
				kind = Store
			}
			r := Ref{Kind: kind, InstIdx: i, Unknown: true}
			if ar, ok := addrs[flow.RefKey{Block: b.ID, Idx: i}]; ok && ar.Known {
				if ar.Exact() {
					r = Ref{Kind: kind, InstIdx: i, Exact: true, Addr: ar.Lo}
				} else if as := ar.Addrs(); len(as) > 0 && len(as) <= maxImpreciseAddrs {
					r = Ref{Kind: kind, InstIdx: i, Addrs: as}
				}
			}
			refs = append(refs, r)
		}
		st.Refs[b.ID] = refs
	}
	return st
}

// Class is the access classification of static cache analysis.
type Class uint8

// Classifications, as named in the survey (§2.1).
const (
	AlwaysHit     Class = iota // AH: in the must state
	AlwaysMiss                 // AM: not in the may state
	Persistent                 // PS: misses at most once per scope entry
	NotClassified              // NC
)

func (c Class) String() string {
	switch c {
	case AlwaysHit:
		return "ALWAYS_HIT"
	case AlwaysMiss:
		return "ALWAYS_MISS"
	case Persistent:
		return "PERSISTENT"
	default:
		return "NOT_CLASSIFIED"
	}
}

// RefClass is the classification of one reference; Scope is the loop the
// persistence is relative to (outermost persistent scope).
type RefClass struct {
	Class Class
	Scope *cfg.Loop
}

// loopPersist is one loop's persistence profile: per set, the number of
// distinct lines the loop's level-reaching references map to it. A
// poisoned loop (an Unknown reference inside it) proves nothing.
type loopPersist struct {
	counts   []int32
	poisoned bool
}

// Result is the outcome of one cache-level analysis.
type Result struct {
	Cfg     Config
	Classes map[RefID]RefClass
	MustIn  map[cfg.BlockID]*ACS
	MayIn   map[cfg.BlockID]*ACS

	// idx interns the stream's touched lines; every ACS of this result is
	// a dense age vector over it. Immutable, shared with all clones.
	idx *Index

	// persist holds each loop's per-set distinct-line counts, behind the
	// persistence classification.
	persist map[*cfg.Loop]loopPersist

	// retained inputs, so interference analyses can reclassify.
	g      *cfg.Graph
	stream *Stream
	cac    map[RefID]CAC // nil for single-level analyses
	shift  []int         // interference age shift per set (see Reclassify)
}

// CountClasses tallies classifications (reporting helper).
func (r *Result) CountClasses() map[Class]int {
	out := map[Class]int{}
	//paralint:unordered commutative tally; each reference increments one counter
	for _, rc := range r.Classes {
		out[rc.Class]++
	}
	return out
}

// Index returns the interned-line index the result's states are built
// over.
func (r *Result) Index() *Index { return r.idx }

// Analyze runs Must, May and Persistence analyses for one cache level
// over the given reference stream and classifies every reference.
func Analyze(g *cfg.Graph, st *Stream, cacheCfg Config) (*Result, error) {
	return AnalyzeWithCAC(g, st, cacheCfg, nil)
}

// MustAnalyze panics on configuration errors (test/fixture helper).
func MustAnalyze(g *cfg.Graph, st *Stream, cacheCfg Config) *Result {
	r, err := Analyze(g, st, cacheCfg)
	if err != nil {
		panic(err)
	}
	return r
}

// computePersistence counts, for every loop scope and cache set, the
// distinct lines referenced within the scope (restricted to references
// that may reach this level). A set whose conflict count fits the
// associativity keeps any loaded line resident for the rest of the
// scope (LRU guarantee), making its references persistent.
func (res *Result) computePersistence(g *cfg.Graph, ops [][]refOp) {
	res.persist = make(map[*cfg.Loop]loopPersist, len(g.Loops))
	marks := make([]bool, res.idx.NumSlots())
	for _, l := range g.Loops {
		clear(marks)
		poisoned := false
		//paralint:unordered idempotent set-union over the loop body's slots and the poison flag
		for _, b := range l.Blocks {
			for _, op := range ops[int(b.ID)] {
				switch {
				case op.cac == Never:
				case op.unknown:
					poisoned = true
				case op.slot >= 0:
					marks[op.slot] = true
				default:
					for _, slot := range op.slots {
						marks[slot] = true
					}
				}
			}
		}
		lp := loopPersist{counts: make([]int32, res.Cfg.Sets), poisoned: poisoned}
		if !poisoned {
			for slot, m := range marks {
				if m {
					lp.counts[res.idx.setOfSlot(int32(slot))]++
				}
			}
		}
		res.persist[l] = lp
	}
}

func (res *Result) classify(g *cfg.Graph, st *Stream) {
	for _, b := range g.Blocks {
		if b.IsExit() {
			continue
		}
		must := stateOrNew(res.MustIn, b.ID, res.idx, Must).Clone()
		may := stateOrNew(res.MayIn, b.ID, res.idx, May).Clone()
		for seq, r := range st.Refs[b.ID] {
			id := RefID{Block: b.ID, Seq: seq}
			if res.cac != nil && res.cac[id] == Never {
				// Never reaches this level; by convention AH (costs nothing).
				res.Classes[id] = RefClass{Class: AlwaysHit}
			} else {
				res.Classes[id] = res.classifyRef(b, r, must, may)
			}
			res.applyRef(must, id, r)
			res.applyRef(may, id, r)
		}
	}
}

// applyRef updates an abstract state for one reference, honouring the
// level's CAC when present.
func (res *Result) applyRef(a *ACS, id RefID, r Ref) {
	cac := Always
	if res.cac != nil {
		cac = res.cac[id]
	}
	switch {
	case cac == Never:
		// no effect at this level
	case r.Unknown:
		a.AccessUnknown()
	case !r.Exact:
		// Imprecise: accessing and not accessing join to the same state
		// under both remaining CACs.
		a.AccessImprecise(res.Cfg.LinesOf(r.Addrs))
	case cac == Uncertain:
		a.AccessUncertain(res.Cfg.LineOf(r.Addr))
	default:
		a.Access(res.Cfg.LineOf(r.Addr))
	}
}

func (res *Result) classifyRef(b *cfg.Block, r Ref, must, may *ACS) RefClass {
	if r.Exact {
		ln := res.Cfg.LineOf(r.Addr)
		shift := res.shiftFor(res.Cfg.SetOf(ln))
		if must.Contains(ln) && must.Age(ln)+shift < res.Cfg.Ways {
			return RefClass{Class: AlwaysHit}
		}
		if !may.Poisoned && !may.Contains(ln) {
			// Not cached on first encounter; but if persistent, later
			// encounters hit, which PERSISTENT captures more tightly than
			// ALWAYS_MISS only when inside a loop. Outside a loop a single
			// guaranteed miss is exactly ALWAYS_MISS.
			if scope := res.persistentScope(b, ln); scope != nil {
				return RefClass{Class: Persistent, Scope: scope}
			}
			return RefClass{Class: AlwaysMiss}
		}
		if scope := res.persistentScope(b, ln); scope != nil {
			return RefClass{Class: Persistent, Scope: scope}
		}
		return RefClass{Class: NotClassified}
	}
	// Imprecise and unknown references are never guaranteed hits.
	return RefClass{Class: NotClassified}
}

// shiftFor returns the interference age shift of one set (0 without
// Reclassify).
func (res *Result) shiftFor(s int) int {
	if res.shift == nil {
		return 0
	}
	return res.shift[s]
}

// persistentScope returns the outermost enclosing loop in which the
// line's set is persistent (conflict count plus interference shift within
// associativity), or nil.
func (res *Result) persistentScope(b *cfg.Block, ln LineID) *cfg.Loop {
	s := res.Cfg.SetOf(ln)
	var best *cfg.Loop
	for l := b.Loop(); l != nil; l = l.Parent {
		lp := res.persist[l]
		n := int(lp.counts[s])
		if !lp.poisoned && n > 0 && n <= res.Cfg.Ways && n+res.shiftFor(s) <= res.Cfg.Ways {
			best = l
		} else {
			break // an outer scope includes this one's conflicts
		}
	}
	return best
}

// Reclassify recomputes all classifications under an inter-task
// interference model: shift[s] is the number of distinct foreign cache
// lines that co-running tasks may bring into set s (Li et al., RTSS 2009
// age-shift semantics; with shift >= ways the set behaves as fully
// corrupted, the direct-mapped special case of Yan & Zhang).
//
// Foreign address ranges must be disjoint from the task's own (the
// toolkit places co-scheduled tasks at disjoint bases), so ALWAYS_MISS
// claims survive: co-runners can evict our lines but never insert them.
// ALWAYS_HIT claims now require age + shift < ways, and persistence
// requires conflictCount + shift <= ways.
func (res *Result) Reclassify(shift map[int]int) {
	dense := make([]int, res.Cfg.Sets)
	//paralint:unordered scatter into a dense vector; each set index is written once
	for s, n := range shift {
		if s >= 0 && s < len(dense) {
			dense[s] = n
		}
	}
	res.ReclassifyShift(dense)
}

// ReclassifyShift is Reclassify with a dense per-set shift vector
// (len == Sets); it is the representation the interference analyses
// build directly. The slice is retained.
func (res *Result) ReclassifyShift(shift []int) {
	res.shift = shift
	res.Classes = make(map[RefID]RefClass, len(res.Classes))
	res.classify(res.g, res.stream)
}

// Clone returns a copy that can be independently Reclassified without
// disturbing the receiver: the classification map and interference shift
// are copied, while the fixpoint states, line index, persistence tables,
// graph and stream — immutable after Analyze — stay shared. When cac is
// non-nil it replaces the retained access-classification map, so a
// caller that clones its CAC map alongside (the batch engine's memoized
// multi-level analyses do) keeps the pair consistent.
func (res *Result) Clone(cac map[RefID]CAC) *Result {
	c := *res
	c.Classes = maps.Clone(res.Classes)
	c.shift = slices.Clone(res.shift)
	if cac != nil {
		c.cac = cac
	}
	return &c
}

// Stream returns the reference stream the result was computed over.
func (res *Result) Stream() *Stream { return res.stream }

// CACOf returns the reference's cache access classification for this
// level (Always for single-level analyses).
func (res *Result) CACOf(id RefID) CAC {
	if res.cac == nil {
		return Always
	}
	return res.cac[id]
}

// TouchedLines returns, per set index, the distinct lines this task may
// bring into this cache level (refs with CAC ≠ Never), ascending within
// each set. Unknown refs poison the result: the bool return is false and
// callers must assume every set fully conflicted.
func (res *Result) TouchedLines() ([][]LineID, bool) {
	marks := make([]bool, res.idx.NumSlots())
	for _, b := range res.g.Blocks {
		if b.IsExit() {
			continue
		}
		for seq, r := range res.stream.Refs[b.ID] {
			if res.CACOf(RefID{Block: b.ID, Seq: seq}) == Never {
				continue
			}
			lines, ok := res.Cfg.RefLines(r)
			if !ok {
				return nil, false
			}
			for _, ln := range lines {
				if slot, ok := res.idx.SlotOf(ln); ok {
					marks[slot] = true
				}
			}
		}
	}
	out := make([][]LineID, res.Cfg.Sets)
	for s := 0; s < res.Cfg.Sets; s++ {
		lo, hi := res.idx.setRange(s)
		for slot := lo; slot < hi; slot++ {
			if marks[slot] {
				out[s] = append(out[s], res.idx.LineAt(slot))
			}
		}
	}
	return out, true
}

// TouchedSets is TouchedLines in map form (kept for API stability).
func (res *Result) TouchedSets() (map[int]map[LineID]bool, bool) {
	perSet, ok := res.TouchedLines()
	if !ok {
		return nil, false
	}
	out := map[int]map[LineID]bool{}
	for s, lines := range perSet {
		if len(lines) == 0 {
			continue
		}
		m := make(map[LineID]bool, len(lines))
		for _, ln := range lines {
			m[ln] = true
		}
		out[s] = m
	}
	return out, true
}

// stateOrNew fetches a block's in-state, defaulting to the initial state
// (blocks unreachable in the stream maps, e.g. with empty streams).
func stateOrNew(m map[cfg.BlockID]*ACS, id cfg.BlockID, idx *Index, k ACSKind) *ACS {
	if s, ok := m[id]; ok {
		return s
	}
	return NewACS(idx, k)
}

// Describe renders one classification for diagnostics.
func (rc RefClass) String() string {
	if rc.Class == Persistent && rc.Scope != nil {
		return fmt.Sprintf("PERSISTENT@B%d", rc.Scope.Header.ID)
	}
	return rc.Class.String()
}
