package cache

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"paratime/internal/cfg"
	"paratime/internal/isa"
)

// benchParGraph builds a large analysis shape: nSegs sequential
// diamonds inside a counted outer loop, so the graph has hundreds of
// blocks and the fixpoint iterates the whole body several times.
func benchParGraph(b *testing.B, nSegs int) *cfg.Graph {
	b.Helper()
	src := "        li r1, 4\n"
	src += "outer:  add r3, r3, r1\n"
	for i := 0; i < nSegs; i++ {
		s := strconv.Itoa(i)
		src += "        bne r3, r0, alt" + s + "\n"
		src += "        addi r4, r4, 1\n"
		src += "        j merge" + s + "\n"
		src += "alt" + s + ":  addi r4, r4, 2\n"
		src += "merge" + s + ": add r5, r4, r3\n"
	}
	src += "        addi r1, r1, -1\n"
	src += "        bne r1, r0, outer\n"
	src += "        halt\n"
	g, err := cfg.Build(isa.MustAssemble("benchpar", src))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchParStream fills every non-exit block with mostly-exact refs over
// a wide geometry, interning enough lines that the age vectors — and
// with them the per-set sharded work — dominate the fixpoint cost.
func benchParStream(b *testing.B, g *cfg.Graph, geom Config, refsPerBlock int) *Stream {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	st := &Stream{Refs: map[cfg.BlockID][]Ref{}}
	span := uint32(geom.Sets*geom.LineBytes) * 4
	for _, blk := range g.Blocks {
		if blk.IsExit() {
			continue
		}
		refs := make([]Ref, 0, refsPerBlock)
		for r := 0; r < refsPerBlock; r++ {
			if r%7 == 6 {
				lo := rng.Uint32() % span
				refs = append(refs, Ref{Addrs: []uint32{lo, (lo + uint32(geom.LineBytes)) % span}})
				continue
			}
			refs = append(refs, Ref{Exact: true, Addr: rng.Uint32() % span})
		}
		st.Refs[blk.ID] = refs
	}
	return st
}

// BenchmarkAnalyzeParSharded: the per-set sharded Must/May fixpoint on
// a ~500-block graph with a wide interned index, against its sequential
// twin (workers=1 takes the sequential path unchanged). BENCH_parallel
// records the 1/2/4/8-worker scaling.
func BenchmarkAnalyzeParSharded(b *testing.B) {
	g := benchParGraph(b, 100)
	geom := Config{Name: "B", Sets: 128, Ways: 4, LineBytes: 16, HitLatency: 1, MissPenalty: 10}
	st := benchParStream(b, g, geom, 8)
	if n := StreamIndex(geom, st).NumSlots(); n < parMinSlots {
		b.Fatalf("stream interns %d slots, below the sharding threshold %d", n, parMinSlots)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzePar(g, st, geom, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeParShardedSeq is the sequential twin of
// BenchmarkAnalyzeParSharded: the plain Analyze entry point on the
// identical workload, for benchstat comparison.
func BenchmarkAnalyzeParShardedSeq(b *testing.B) {
	g := benchParGraph(b, 100)
	geom := Config{Name: "B", Sets: 128, Ways: 4, LineBytes: 16, HitLatency: 1, MissPenalty: 10}
	st := benchParStream(b, g, geom, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(g, st, geom); err != nil {
			b.Fatal(err)
		}
	}
}
