package cache

import "testing"

// TestACSStringGolden pins the debug rendering: sets ascending, lines
// ascending within a set, one trailing space per entry, POISONED flag
// last. The dense representation makes this deterministic by
// construction (slots are grouped by set and sorted by line); the golden
// strings also match the retired map-based renderer, which sorted
// explicitly.
func TestACSStringGolden(t *testing.T) {
	geom := Config{Name: "g", Sets: 4, Ways: 2, LineBytes: 16}
	idx := NewIndex(geom, []LineID{0, 4, 1, 9, 7})

	must := NewACS(idx, Must)
	if got, want := must.String(), "must{}"; got != want {
		t.Errorf("empty must: got %q want %q", got, want)
	}

	must.Access(4) // set 0
	must.Access(0) // set 0, pushes 4 to age 1
	must.Access(9) // set 1
	must.Access(7) // set 3
	if got, want := must.String(), "must{ s0:0@0 4@1  s1:9@0  s3:7@0 }"; got != want {
		t.Errorf("filled must: got %q want %q", got, want)
	}

	may := NewACS(idx, May)
	may.Access(1) // set 1
	may.AccessUnknown()
	if got, want := may.String(), "may{ s1:1@0  POISONED}"; got != want {
		t.Errorf("poisoned may: got %q want %q", got, want)
	}

	// Rendering is stable across repeated calls and across clones.
	for i := 0; i < 10; i++ {
		if must.Clone().String() != must.String() {
			t.Fatal("String not deterministic")
		}
	}
}
