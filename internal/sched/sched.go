// Package sched implements the multicore scheduling analysis the
// survey's joint-analysis refinements depend on (§4.1, Li et al.):
// non-preemptive static-priority partitioned scheduling, worst-case
// response-time iteration, and task lifetime windows used to prove that
// two tasks can never execute concurrently.
package sched

import (
	"fmt"
	"math"
)

// TaskSpec is one task instance of a static workload: mapped to a core,
// with a priority (lower number = higher priority), execution-time bounds
// and precedence dependencies (indices into the task slice).
type TaskSpec struct {
	Name     string
	Core     int
	Priority int
	BCET     int64
	WCET     int64
	Deps     []int
}

// Window is a task's lifetime: the earliest it can start executing and
// the latest it can finish, across all schedules consistent with the
// specs. Two tasks whose windows do not intersect can never overlap.
type Window struct {
	EarliestStart int64
	LatestFinish  int64
}

// Overlaps reports whether two windows intersect.
func (w Window) Overlaps(o Window) bool {
	return w.EarliestStart < o.LatestFinish && o.EarliestStart < w.LatestFinish
}

// maxLifetimeIter bounds the fixpoint (it converges fast in practice).
const maxLifetimeIter = 64

// Lifetimes computes a window per task by fixpoint iteration:
//
//	earliest start = max over deps of (their earliest start + BCET)
//	latest start   = max(dep latest finishes) + blocking + interference
//	latest finish  = latest start + WCET
//
// where interference counts the WCET of same-core tasks that may overlap
// the task's activation window and have higher priority, and blocking is
// the largest WCET of a lower-priority same-core task (non-preemptive).
// The overlap relation is refined from the windows themselves, so the
// iteration starts from the pessimistic "everything overlaps" state and
// shrinks monotonically.
func Lifetimes(tasks []TaskSpec) ([]Window, error) {
	n := len(tasks)
	for i, t := range tasks {
		if t.WCET < t.BCET {
			return nil, fmt.Errorf("task %s: WCET %d < BCET %d", t.Name, t.WCET, t.BCET)
		}
		for _, d := range t.Deps {
			if d < 0 || d >= n || d == i {
				return nil, fmt.Errorf("task %s: bad dependency %d", t.Name, d)
			}
		}
	}
	if cyclic(tasks) {
		return nil, fmt.Errorf("sched: dependency cycle")
	}
	win := make([]Window, n)
	for i := range win {
		win[i] = Window{EarliestStart: 0, LatestFinish: math.MaxInt64 / 4}
	}
	for iter := 0; iter < maxLifetimeIter; iter++ {
		changed := false
		for i, t := range tasks {
			var es int64
			var lsDeps int64
			for _, d := range t.Deps {
				if f := win[d].EarliestStart + tasks[d].BCET; f > es {
					es = f
				}
				if win[d].LatestFinish > lsDeps {
					lsDeps = win[d].LatestFinish
				}
			}
			// Same-core interference among possibly-overlapping tasks.
			var interf, blocking int64
			for j, o := range tasks {
				if j == i || o.Core != t.Core {
					continue
				}
				if !win[i].Overlaps(win[j]) {
					continue
				}
				if o.Priority < t.Priority {
					interf += o.WCET
				} else if o.WCET > blocking {
					blocking = o.WCET // non-preemptive blocking: one job
				}
			}
			lf := lsDeps + blocking + interf + t.WCET
			w := Window{EarliestStart: es, LatestFinish: lf}
			if w != win[i] {
				win[i] = w
				changed = true
			}
		}
		if !changed {
			return win, nil
		}
	}
	return win, nil
}

func cyclic(tasks []TaskSpec) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(tasks))
	var visit func(int) bool
	visit = func(i int) bool {
		color[i] = grey
		for _, d := range tasks[i].Deps {
			switch color[d] {
			case grey:
				return true
			case white:
				if visit(d) {
					return true
				}
			}
		}
		color[i] = black
		return false
	}
	for i := range tasks {
		if color[i] == white && visit(i) {
			return true
		}
	}
	return false
}

// MayOverlap returns the symmetric overlap matrix for tasks on different
// cores (same-core tasks never overlap under partitioned non-preemptive
// scheduling). It is the conflict filter of Li et al.'s shared-cache
// analysis: only tasks that may overlap can corrupt each other's L2
// content.
func MayOverlap(tasks []TaskSpec, win []Window) [][]bool {
	n := len(tasks)
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if tasks[i].Core == tasks[j].Core {
				continue // serialized on the same core
			}
			if dependsOn(tasks, i, j) || dependsOn(tasks, j, i) {
				continue // precedence-ordered
			}
			m[i][j] = win[i].Overlaps(win[j])
		}
	}
	return m
}

// dependsOn reports whether task a transitively depends on task b.
func dependsOn(tasks []TaskSpec, a, b int) bool {
	seen := map[int]bool{}
	var walk func(int) bool
	walk = func(i int) bool {
		if i == b {
			return true
		}
		if seen[i] {
			return false
		}
		seen[i] = true
		for _, d := range tasks[i].Deps {
			if walk(d) {
				return true
			}
		}
		return false
	}
	return walk(a)
}
