package sched

import "testing"

func TestLifetimesChain(t *testing.T) {
	// t0 -> t1 -> t2 on one core: windows must be ordered and disjoint in
	// the earliest-start sense.
	tasks := []TaskSpec{
		{Name: "t0", Core: 0, Priority: 0, BCET: 10, WCET: 20},
		{Name: "t1", Core: 0, Priority: 1, BCET: 10, WCET: 20, Deps: []int{0}},
		{Name: "t2", Core: 0, Priority: 2, BCET: 10, WCET: 20, Deps: []int{1}},
	}
	win, err := Lifetimes(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if win[0].EarliestStart != 0 || win[1].EarliestStart != 10 || win[2].EarliestStart != 20 {
		t.Errorf("earliest starts = %v", win)
	}
	for i := 0; i < 2; i++ {
		if win[i].LatestFinish > win[i+1].LatestFinish {
			t.Errorf("chain finishes out of order: %v", win)
		}
	}
}

func TestLifetimesPrecedenceSeparatesCrossCore(t *testing.T) {
	// a on core 0, b on core 1 with b depending on a: they can never
	// overlap regardless of windows.
	tasks := []TaskSpec{
		{Name: "a", Core: 0, Priority: 0, BCET: 5, WCET: 50},
		{Name: "b", Core: 1, Priority: 0, BCET: 5, WCET: 50, Deps: []int{0}},
		{Name: "c", Core: 1, Priority: 1, BCET: 5, WCET: 50},
	}
	win, err := Lifetimes(tasks)
	if err != nil {
		t.Fatal(err)
	}
	m := MayOverlap(tasks, win)
	if m[0][1] || m[1][0] {
		t.Error("precedence-ordered tasks marked overlapping")
	}
	// a and c have no ordering: they may overlap (different cores).
	if !m[0][2] || !m[2][0] {
		t.Error("independent cross-core tasks should overlap")
	}
	// Same-core tasks never overlap.
	if m[1][2] || m[2][1] {
		t.Error("same-core tasks cannot overlap")
	}
}

func TestLifetimesInterferenceWidensWindows(t *testing.T) {
	solo := []TaskSpec{{Name: "x", Core: 0, Priority: 1, BCET: 5, WCET: 10}}
	winSolo, err := Lifetimes(solo)
	if err != nil {
		t.Fatal(err)
	}
	crowded := []TaskSpec{
		{Name: "x", Core: 0, Priority: 1, BCET: 5, WCET: 10},
		{Name: "hp", Core: 0, Priority: 0, BCET: 5, WCET: 30},
	}
	winCrowded, err := Lifetimes(crowded)
	if err != nil {
		t.Fatal(err)
	}
	if winCrowded[0].LatestFinish <= winSolo[0].LatestFinish {
		t.Errorf("higher-priority interference should widen the window: %v vs %v",
			winCrowded[0], winSolo[0])
	}
}

func TestLifetimesRejectsCycle(t *testing.T) {
	tasks := []TaskSpec{
		{Name: "a", WCET: 1, Deps: []int{1}},
		{Name: "b", WCET: 1, Deps: []int{0}},
	}
	if _, err := Lifetimes(tasks); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestLifetimesRejectsBadBounds(t *testing.T) {
	if _, err := Lifetimes([]TaskSpec{{Name: "a", BCET: 5, WCET: 1}}); err == nil {
		t.Fatal("WCET < BCET accepted")
	}
	if _, err := Lifetimes([]TaskSpec{{Name: "a", WCET: 1, Deps: []int{7}}}); err == nil {
		t.Fatal("dangling dependency accepted")
	}
}

func TestWindowOverlaps(t *testing.T) {
	a := Window{0, 10}
	b := Window{10, 20}
	c := Window{5, 15}
	if a.Overlaps(b) {
		t.Error("touching windows do not overlap")
	}
	if !a.Overlaps(c) || !c.Overlaps(b) {
		t.Error("intersecting windows must overlap")
	}
}

func TestDependsOnTransitive(t *testing.T) {
	tasks := []TaskSpec{
		{Name: "a", WCET: 1},
		{Name: "b", WCET: 1, Deps: []int{0}},
		{Name: "c", WCET: 1, Deps: []int{1}},
	}
	if !dependsOn(tasks, 2, 0) {
		t.Error("transitive dependency missed")
	}
	if dependsOn(tasks, 0, 2) {
		t.Error("reverse dependency invented")
	}
}
