package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"paratime/internal/cachestore"
	"paratime/internal/engine"
	"paratime/internal/spec"
)

// testSweep is a 1-task × 2-busDelay × 2-memLatency product space: four
// points sharing one core.PrepareKey (bus delay and memory latency are
// outside the key), the differential-reuse sweet spot.
func testSweep() *spec.SweepDoc {
	return &spec.SweepDoc{
		Sweep: spec.SweepVersion,
		Name:  "test",
		Base: spec.Scenario{
			Spec:   spec.Version,
			Name:   "base",
			System: spec.DefaultSystemSpec(),
			Mode:   spec.ModeSpec{Kind: spec.KindSolo},
		},
		Axes: spec.SweepAxes{
			TaskSets:   []string{"crc16"},
			BusDelay:   []int{0, 10},
			MemLatency: []int{50, 80},
		},
	}
}

// ndjson runs the sweep and returns the emitted NDJSON byte stream plus
// the summary.
func ndjson(t *testing.T, doc *spec.SweepDoc, opt Options) ([]byte, *Summary) {
	t.Helper()
	var buf bytes.Buffer
	sum, err := Run(context.Background(), doc, opt, func(l Line) error {
		b, err := json.Marshal(l)
		if err != nil {
			return err
		}
		buf.Write(append(b, '\n'))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sum
}

// TestOrderedByteIdentical: the ordered stream is a pure function of the
// document — byte-identical at any parallelism, inline or pipelined.
func TestOrderedByteIdentical(t *testing.T) {
	ref, refSum := ndjson(t, testSweep(), Options{Parallelism: 1})
	if refSum.Points != 4 || refSum.Errors != 0 {
		t.Fatalf("summary %+v, want 4 clean points", refSum)
	}
	for _, p := range []int{2, 8} {
		got, sum := ndjson(t, testSweep(), Options{Parallelism: p})
		if !bytes.Equal(ref, got) {
			t.Errorf("parallelism %d: stream differs from sequential:\n%s\nvs\n%s", p, got, ref)
		}
		if sum.Points != refSum.Points || sum.Errors != 0 {
			t.Errorf("parallelism %d summary %+v", p, sum)
		}
	}
}

// TestOrderedAcrossGOMAXPROCS: the differential determinism check — the
// ordered stream at GOMAXPROCS=1 is byte-identical to GOMAXPROCS=8,
// with the engine and driver both resolving their own worker counts.
func TestOrderedAcrossGOMAXPROCS(t *testing.T) {
	stream := func(procs int) []byte {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		got, _ := ndjson(t, testSweep(), Options{})
		return got
	}
	s1, s8 := stream(1), stream(8)
	if !bytes.Equal(s1, s8) {
		t.Errorf("stream differs across GOMAXPROCS:\n%s\nvs\n%s", s1, s8)
	}
}

// TestUnorderedSameLines: throughput mode emits the same line set, just
// possibly reordered.
func TestUnorderedSameLines(t *testing.T) {
	ref, _ := ndjson(t, testSweep(), Options{Parallelism: 1})
	got, sum := ndjson(t, testSweep(), Options{Parallelism: 8, Unordered: true})
	want := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(string(ref)), "\n") {
		want[l] = true
	}
	lines := strings.Split(strings.TrimSpace(string(got)), "\n")
	if len(lines) != len(want) || sum.Points != len(want) {
		t.Fatalf("unordered emitted %d lines, want %d", len(lines), len(want))
	}
	for _, l := range lines {
		if !want[l] {
			t.Errorf("unordered line not in sequential set: %s", l)
		}
	}
}

// TestPrepareReuseRatio: a sweep varying only parameters outside
// core.PrepareKey prepares the task once — misses = 1 task, hits =
// (points-1) × tasks, so reuse is (points-1)/points.
func TestPrepareReuseRatio(t *testing.T) {
	_, sum := ndjson(t, testSweep(), Options{Parallelism: 1})
	if sum.PrepareMisses != 1 || sum.PrepareHits != 3 {
		t.Fatalf("prepare hits/misses = %d/%d, want 3/1", sum.PrepareHits, sum.PrepareMisses)
	}
	if sum.PrepareReuse != 0.75 {
		t.Fatalf("PrepareReuse = %v, want 0.75", sum.PrepareReuse)
	}
}

// TestManifestIncremental: with a persistent manifest, a re-run answers
// every point from it; after a one-axis edit only the dirty points are
// recomputed. Streams stay byte-identical either way.
func TestManifestIncremental(t *testing.T) {
	disk, err := cachestore.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	opt := func() Options { return Options{Parallelism: 4, Manifest: disk} }

	cold, sum := ndjson(t, testSweep(), opt())
	if sum.ManifestHits != 0 || sum.ManifestMisses != 4 {
		t.Fatalf("cold run hits/misses = %d/%d, want 0/4", sum.ManifestHits, sum.ManifestMisses)
	}
	warm, sum := ndjson(t, testSweep(), opt())
	if sum.ManifestHits != 4 || sum.ManifestMisses != 0 {
		t.Fatalf("warm run hits/misses = %d/%d, want 4/0", sum.ManifestHits, sum.ManifestMisses)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("manifest-served stream differs from computed:\n%s\nvs\n%s", warm, cold)
	}

	// Edit one busDelay value: exactly the two points using it recompute.
	edited := testSweep()
	edited.Axes.BusDelay[1] = 20
	_, sum = ndjson(t, edited, opt())
	if sum.ManifestHits != 2 || sum.ManifestMisses != 2 {
		t.Fatalf("incremental run hits/misses = %d/%d, want 2/2", sum.ManifestHits, sum.ManifestMisses)
	}
	// The incremental run prepared nothing new beyond the shared artefact
	// for the recomputed points (still one PrepareKey).
	_, sum = ndjson(t, edited, opt())
	if sum.ManifestHits != 4 {
		t.Fatalf("re-run after incremental still misses: %+v", sum)
	}
}

// TestManifestUndecodablePayloadRecomputes: a corrupt manifest payload
// is treated as a miss, not an error.
func TestManifestUndecodablePayloadRecomputes(t *testing.T) {
	mem := cachestore.NewMemory(0)
	doc := testSweep()
	// Poison every point's manifest slot.
	for i := 0; i < doc.Points(); i++ {
		pt, err := doc.Point(i)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := pt.Scenario.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		mem.Put(manifestKey(fp), []byte("not json"))
	}
	ref, _ := ndjson(t, doc, Options{Parallelism: 1})
	got, sum := ndjson(t, doc, Options{Parallelism: 1, Manifest: mem})
	if !bytes.Equal(ref, got) {
		t.Fatal("poisoned manifest changed the stream")
	}
	if sum.ManifestHits != 0 || sum.ManifestMisses != 4 {
		t.Fatalf("hits/misses = %d/%d, want 0/4", sum.ManifestHits, sum.ManifestMisses)
	}
}

// TestPointErrorsAreLines: a point whose analysis fails produces an
// error line; the sweep continues and the summary counts it.
func TestPointErrorsAreLines(t *testing.T) {
	doc := testSweep()
	doc.Axes.TaskSets = nil
	// An unbounded loop passes Validate (bounds are an analysis-time
	// concern) but fails every point's analysis.
	doc.Base.Tasks = []spec.TaskSpec{{
		Name:   "spin",
		Source: "loop:   addi r1, r1, 1\n        bne r1, r0, loop\n        halt",
	}}
	var lines []Line
	sum, err := Run(context.Background(), doc, Options{Parallelism: 2}, func(l Line) error {
		lines = append(lines, l)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != sum.Points || sum.Points != 4 {
		t.Fatalf("summary %+v, want 4 error points", sum)
	}
	for _, l := range lines {
		if l.Error == "" || l.Report != nil {
			t.Errorf("point %d: error line malformed: %+v", l.Index, l)
		}
	}
}

// TestEmitErrorAborts: an emit failure stops the run promptly and is the
// returned error.
func TestEmitErrorAborts(t *testing.T) {
	boom := errors.New("sink full")
	n := 0
	_, err := Run(context.Background(), testSweep(), Options{Parallelism: 4}, func(Line) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want emit error", err)
	}
}

// TestCancelledContext: cancellation surfaces as the run error.
func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, testSweep(), Options{Parallelism: 2}, func(Line) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestInvalidDocRejected: Run validates before pricing anything.
func TestInvalidDocRejected(t *testing.T) {
	doc := testSweep()
	doc.Sweep = 99
	called := false
	_, err := Run(context.Background(), doc, Options{}, func(Line) error { called = true; return nil })
	if err == nil || called {
		t.Fatalf("invalid doc: err=%v called=%v", err, called)
	}
}

// TestSharedEngineAcrossRuns: reuse deltas are per-run even on a shared
// engine — the second run's misses are 0, not cumulative.
func TestSharedEngineAcrossRuns(t *testing.T) {
	eng := engine.New(0)
	_, sum1 := ndjson(t, testSweep(), Options{Engine: eng, Parallelism: 1})
	if sum1.PrepareMisses != 1 {
		t.Fatalf("first run misses = %d, want 1", sum1.PrepareMisses)
	}
	_, sum2 := ndjson(t, testSweep(), Options{Engine: eng, Parallelism: 1})
	if sum2.PrepareMisses != 0 || sum2.PrepareHits != 4 {
		t.Fatalf("second run hits/misses = %d/%d, want 4/0", sum2.PrepareHits, sum2.PrepareMisses)
	}
	if sum2.PrepareReuse != 1 {
		t.Fatalf("second run reuse = %v, want 1", sum2.PrepareReuse)
	}
}

// TestSummaryString: the one-line rendering carries the headline
// numbers.
func TestSummaryString(t *testing.T) {
	_, sum := ndjson(t, testSweep(), Options{Parallelism: 1})
	s := sum.String()
	for _, want := range []string{"points=4", "errors=0", "prepareReuse=0.750"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

// TestLargeSweepBoundedPending exercises the pipelined path with a
// sweep much larger than the token window and verifies ordered output
// (a reordering bug shows as an index gap).
func TestLargeSweepBoundedPending(t *testing.T) {
	doc := testSweep()
	delays := make([]int, 32)
	for i := range delays {
		delays[i] = i
	}
	doc.Axes.BusDelay = delays
	doc.Axes.MemLatency = []int{50}
	next := 0
	sum, err := Run(context.Background(), doc, Options{Parallelism: 8}, func(l Line) error {
		if l.Index != next {
			return fmt.Errorf("line %d out of order (want %d)", l.Index, next)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Points != 32 || next != 32 {
		t.Fatalf("saw %d of %d points", next, sum.Points)
	}
}
