package sweep

import (
	"context"
	"testing"

	"paratime/internal/cachestore"
	"paratime/internal/engine"
	"paratime/internal/spec"
)

// benchSweep is a 24-point system-parameter sweep over one task set:
// every point shares one core.PrepareKey, so artefact reuse carries the
// whole run after the first point.
func benchSweep() *spec.SweepDoc {
	return &spec.SweepDoc{
		Sweep: spec.SweepVersion,
		Name:  "bench",
		Base: spec.Scenario{
			Spec:   spec.Version,
			Name:   "bench",
			System: spec.DefaultSystemSpec(),
			Mode:   spec.ModeSpec{Kind: spec.KindSolo},
		},
		Axes: spec.SweepAxes{
			TaskSets:   []string{"crc16"},
			BusDelay:   []int{0, 5, 10, 15, 20, 25},
			MemLatency: []int{50, 60, 70, 80},
		},
	}
}

func runBench(b *testing.B, doc *spec.SweepDoc, opt Options) *Summary {
	b.Helper()
	sum, err := Run(context.Background(), doc, opt, func(Line) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
	if sum.Errors > 0 {
		b.Fatalf("%d point errors", sum.Errors)
	}
	return sum
}

// BenchmarkSweepNoReuse is the pre-sweep-harness baseline: every point
// priced through its own engine, so nothing is shared — the Prepare
// prefix is recomputed 24 times. The gap to BenchmarkSweepCold is the
// differential artefact reuse win.
func BenchmarkSweepNoReuse(b *testing.B) {
	doc := benchSweep()
	n := doc.Points()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for p := 0; p < n; p++ {
			pt, err := doc.Point(p)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := spec.Run(context.Background(), pt.Scenario, engine.New(0)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepCold prices the sweep with a fresh engine and no
// manifest every iteration: the no-reuse-across-iterations baseline
// (within one iteration the Prepare memo still carries 23 of 24
// points — that is the tentpole's differential reuse).
func BenchmarkSweepCold(b *testing.B) {
	doc := benchSweep()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum := runBench(b, doc, Options{Engine: engine.New(0)})
		if sum.PrepareMisses != 1 {
			b.Fatalf("cold run misses = %d, want 1", sum.PrepareMisses)
		}
	}
}

// BenchmarkSweepWarm shares one engine across iterations: after the
// first iteration every Prepare is a hit, isolating per-point pricing
// cost.
func BenchmarkSweepWarm(b *testing.B) {
	doc := benchSweep()
	eng := engine.New(0)
	runBench(b, doc, Options{Engine: eng}) // prime the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := runBench(b, doc, Options{Engine: eng})
		if sum.PrepareMisses != 0 {
			b.Fatalf("warm run misses = %d", sum.PrepareMisses)
		}
	}
}

// BenchmarkSweepIncremental re-runs against a primed manifest: every
// point answers from the fingerprint store without touching the
// engine — the incremental re-analysis fast path.
func BenchmarkSweepIncremental(b *testing.B) {
	doc := benchSweep()
	disk, err := cachestore.NewDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer disk.Close()
	runBench(b, doc, Options{Engine: engine.New(0), Manifest: disk}) // prime the manifest
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := runBench(b, doc, Options{Engine: engine.New(0), Manifest: disk})
		if sum.ManifestHits != sum.Points {
			b.Fatalf("incremental run hits = %d of %d", sum.ManifestHits, sum.Points)
		}
	}
}
