// Package sweep is the sharded streaming driver for scenario
// product-spaces: it prices every point of a "sweep":1 document
// (spec.SweepDoc) across a bounded worker pool and hands each result to
// an emit callback as one line, without ever materializing the whole
// sweep in memory — points are generated lazily, results stream out as
// they complete, and a token window bounds how far computation may run
// ahead of emission.
//
// Two properties make sweeps cheap at production scale:
//
//   - Differential artefact reuse. All points run through one batch
//     engine, so points sharing a (task, system-prefix) identity — the
//     same core.PrepareKey — reuse one memoized Prepare/Skeleton/
//     Compiled artefact via the engine's clone-sharing contract. A
//     sweep that varies only parameters outside the key (bus delays,
//     memory latencies) prepares each task once, no matter how many
//     points price it. The summary reports the measured reuse ratio.
//
//   - Incremental re-analysis. When a manifest backend is configured,
//     each point's report is persisted under its scenario content
//     fingerprint; a re-run — after editing one axis value or one
//     task — answers every fingerprint-clean point from the manifest
//     and recomputes only the dirty subset. Analysis is deterministic,
//     so a manifest hit is byte-identical to recomputation.
//
// Ordered mode emits lines in point order, making the output stream a
// pure function of the document (byte-identical at any worker count);
// throughput mode emits lines as they complete.
package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"paratime/internal/cachestore"
	"paratime/internal/engine"
	"paratime/internal/parallel"
	"paratime/internal/spec"
)

// manifestVersion versions the persisted per-point report format;
// bumping it invalidates (by key) manifest entries recorded by older
// builds.
const manifestVersion = 1

// manifestKey derives the manifest key of one point from its scenario
// content fingerprint. Point identity (index, coordinate ID) is
// deliberately absent: the persisted result depends only on what is
// analyzed, so reordering or extending axes never dirties untouched
// points.
func manifestKey(fingerprint string) string {
	return fmt.Sprintf("sweepres%d|%s", manifestVersion, fingerprint)
}

// Options parameterizes one sweep run.
type Options struct {
	// Engine prices the points; nil builds a private engine. Sharing one
	// engine across points is what makes artefact reuse work, so the
	// driver always runs every point through this single engine.
	Engine *engine.Engine
	// Parallelism bounds concurrently priced points; <= 0 selects the
	// process default (parallel.Default). Results are identical at any
	// value.
	Parallelism int
	// Unordered emits lines as points complete instead of in point
	// order. Throughput mode: slow points no longer stall emission, at
	// the cost of output-order determinism (line contents are still
	// deterministic).
	Unordered bool
	// Manifest persists each point's report under its scenario
	// fingerprint for incremental re-runs; nil disables reuse.
	Manifest cachestore.CacheBackend
}

// Line is one streamed per-point result. Its content is a pure function
// of the point's scenario: cache provenance and timing live in the
// Summary, never in the line, so cached and recomputed runs emit
// identical bytes.
type Line struct {
	// Index is the point's rank in enumeration order.
	Index int `json:"index"`
	// ID is the point's deterministic coordinate identity.
	ID string `json:"id"`
	// Coords maps each active axis to this point's value label.
	Coords map[string]string `json:"coords,omitempty"`
	// Fingerprint is the scenario's content address (the manifest key
	// modulo version prefix).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Report is the analysis result; nil when the point failed.
	Report *spec.Report `json:"report,omitempty"`
	// Error is the point's failure, when it has one. Point failures do
	// not abort the sweep: every point gets exactly one line.
	Error string `json:"error,omitempty"`

	// fromManifest marks a line answered from the manifest (summary
	// accounting only — deliberately not serialized).
	fromManifest bool
}

// Summary aggregates one sweep run.
type Summary struct {
	Points int `json:"points"`
	Errors int `json:"errors"`
	// ManifestHits/ManifestMisses count points answered from /
	// recomputed into the manifest (misses stay 0 when no manifest is
	// configured).
	ManifestHits   int `json:"manifestHits"`
	ManifestMisses int `json:"manifestMisses"`
	// PrepareHits/PrepareMisses are the engine memo's deltas across this
	// sweep; PrepareReuse = hits/(hits+misses) (the engine's reuse
	// ratio restricted to this run).
	PrepareHits   uint64  `json:"prepareHits"`
	PrepareMisses uint64  `json:"prepareMisses"`
	PrepareReuse  float64 `json:"prepareReuse"`
	// Elapsed is the wall-clock run time; PointsPerSec the end-to-end
	// throughput including manifest hits.
	Elapsed      time.Duration `json:"elapsed"`
	PointsPerSec float64       `json:"pointsPerSec"`
}

// String renders the summary as the one-line form the CLI prints.
func (s *Summary) String() string {
	return fmt.Sprintf(
		"sweep: points=%d errors=%d manifestHits=%d manifestMisses=%d prepareHits=%d prepareMisses=%d prepareReuse=%.3f pointsPerSec=%.1f elapsed=%s",
		s.Points, s.Errors, s.ManifestHits, s.ManifestMisses,
		s.PrepareHits, s.PrepareMisses, s.PrepareReuse, s.PointsPerSec, s.Elapsed.Round(time.Millisecond))
}

// Run prices every point of the sweep document, calling emit once per
// point — in point order unless opt.Unordered — and returns the run
// summary. A point that fails to materialize or analyze produces a line
// with its error and the sweep continues; Run itself fails only on a
// cancelled context, an emit error, or an invalid document. Memory is
// O(parallelism): at most a small window of results is in flight or
// buffered for reordering at any moment.
func Run(ctx context.Context, doc *spec.SweepDoc, opt Options, emit func(Line) error) (*Summary, error) {
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	eng := opt.Engine
	if eng == nil {
		eng = engine.New(0)
	}
	workers := parallel.Resolve(opt.Parallelism)
	n := doc.Points()
	if workers > n {
		workers = n
	}
	hits0, misses0 := eng.Stats()
	start := time.Now()

	sum := &Summary{Points: n}
	account := func(l Line) {
		if l.Error != "" {
			sum.Errors++
		} else if opt.Manifest != nil {
			if l.fromManifest {
				sum.ManifestHits++
			} else {
				sum.ManifestMisses++
			}
		}
	}
	finish := func() {
		hits1, misses1 := eng.Stats()
		sum.PrepareHits = hits1 - hits0
		sum.PrepareMisses = misses1 - misses0
		if total := sum.PrepareHits + sum.PrepareMisses; total > 0 {
			sum.PrepareReuse = float64(sum.PrepareHits) / float64(total)
		}
		sum.Elapsed = time.Since(start)
		if secs := sum.Elapsed.Seconds(); secs > 0 {
			sum.PointsPerSec = float64(n) / secs
		}
	}

	if workers <= 1 {
		// Inline fast path: price and emit in one loop.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			l := price(ctx, doc, i, eng, opt.Manifest)
			account(l)
			if err := emit(l); err != nil {
				return nil, err
			}
		}
		finish()
		return sum, nil
	}

	// Pipelined path: a dispatcher feeds point indices in order, workers
	// price them, and this goroutine collects and emits. The token
	// window keeps computation from running more than O(workers) points
	// ahead of emission, which is what bounds the reorder buffer (and
	// with it, sweep memory) regardless of sweep size.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	window := 4 * workers
	tokens := make(chan struct{}, window)
	jobs := make(chan int)
	results := make(chan Line, workers)

	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case tokens <- struct{}{}:
			case <-runCtx.Done():
				return
			}
			select {
			case jobs <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results <- price(runCtx, doc, i, eng, opt.Manifest)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			cancel() // stop dispatch; workers drain, results closes
		}
	}
	handle := func(l Line) {
		if firstErr != nil {
			<-tokens
			return
		}
		account(l)
		if err := emit(l); err != nil {
			fail(err)
		}
		<-tokens
	}
	if opt.Unordered {
		for l := range results {
			handle(l)
		}
	} else {
		pending := make(map[int]Line, window)
		next := 0
		for l := range results {
			pending[l.Index] = l
			for {
				buf, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				handle(buf)
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	finish()
	return sum, nil
}

// price materializes and analyzes one point: manifest lookup by
// scenario fingerprint first, full analysis through the shared engine
// on a miss, manifest fill afterwards. All failure modes land in the
// line's Error field; a cancelled context yields a line too (the
// collector discards everything once the run is failing).
//
//paralint:canonical manifest payloads are canonical Report encodings keyed by scenario fingerprint; byte-compared on reuse
func price(ctx context.Context, doc *spec.SweepDoc, idx int, eng *engine.Engine, manifest cachestore.CacheBackend) Line {
	pt, err := doc.Point(idx)
	if err != nil {
		return Line{Index: idx, Error: err.Error()}
	}
	line := Line{Index: idx, ID: pt.ID, Coords: pt.Coords}
	fp, err := pt.Scenario.Fingerprint()
	if err != nil {
		line.Error = err.Error()
		return line
	}
	line.Fingerprint = fp
	if manifest != nil {
		if v, ok := manifest.Get(manifestKey(fp)); ok {
			if payload, ok := v.([]byte); ok {
				var rep spec.Report
				// A payload that no longer decodes is treated as a miss
				// and recomputed; determinism makes that always safe.
				if json.Unmarshal(payload, &rep) == nil {
					line.Report = &rep
					line.fromManifest = true
					return line
				}
			}
		}
	}
	rep, err := spec.Run(ctx, pt.Scenario, eng)
	if err != nil {
		line.Error = err.Error()
		return line
	}
	line.Report = rep
	if manifest != nil {
		if payload, err := json.Marshal(rep); err == nil {
			manifest.Put(manifestKey(fp), payload)
		}
	}
	return line
}
