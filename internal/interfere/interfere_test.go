package interfere

import (
	"fmt"
	"testing"

	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/isa"
	"paratime/internal/sched"
)

// mkTask builds a loop task at the given text/data base so co-scheduled
// tasks occupy disjoint address ranges.
func mkTask(t *testing.T, name string, base uint32, dataBase uint32, iters int) core.Task {
	t.Helper()
	src := fmt.Sprintf(`
        li   r1, %d
        li   r3, 0x%x
loop:   ld   r2, 0(r3)
        add  r4, r4, r2
        st   r4, 4(r3)
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
.data 0x%x
        .word 3 0
`, iters, dataBase, dataBase)
	p := isa.MustAssemble(name, src)
	p.Rebase(base)
	return core.Task{Name: name, Prog: p}
}

func sharedSys() core.SystemConfig {
	sys := core.DefaultSystem()
	l2 := cache.Config{Name: "L2", Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	return sys
}

func prepare(t *testing.T, tasks ...core.Task) []*core.Analysis {
	t.Helper()
	var out []*core.Analysis
	for _, task := range tasks {
		a, err := core.Prepare(task, sharedSys())
		if err != nil {
			t.Fatal(err)
		}
		if err := a.ComputeWCET(); err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

func TestJointNeverTightensSolo(t *testing.T) {
	as := prepare(t,
		mkTask(t, "a", 0x1000, 0x8000, 40),
		mkTask(t, "b", 0x2000, 0x9000, 40),
		mkTask(t, "c", 0x3000, 0xa000, 40),
	)
	for _, model := range []ConflictModel{DirectMapped, AgeShift} {
		res, err := AnalyzeJoint(prepare(t,
			mkTask(t, "a", 0x1000, 0x8000, 40),
			mkTask(t, "b", 0x2000, 0x9000, 40),
			mkTask(t, "c", 0x3000, 0xa000, 40)), model)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Names {
			if res.JointWCET[i] < res.SoloWCET[i] {
				t.Errorf("model %d task %s: joint %d < solo %d",
					model, res.Names[i], res.JointWCET[i], res.SoloWCET[i])
			}
		}
	}
	_ = as
}

func TestAgeShiftNoWorseThanDirectMapped(t *testing.T) {
	mk := func() []*core.Analysis {
		return prepare(t,
			mkTask(t, "a", 0x1000, 0x8000, 40),
			mkTask(t, "b", 0x2000, 0x9000, 40),
		)
	}
	dm, err := AnalyzeJoint(mk(), DirectMapped)
	if err != nil {
		t.Fatal(err)
	}
	as, err := AnalyzeJoint(mk(), AgeShift)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dm.Names {
		if as.JointWCET[i] > dm.JointWCET[i] {
			t.Errorf("task %s: age-shift %d worse than direct-mapped kill %d",
				dm.Names[i], as.JointWCET[i], dm.JointWCET[i])
		}
	}
}

func TestOverlappingAddressSpacesRejected(t *testing.T) {
	as := prepare(t,
		mkTask(t, "a", 0x1000, 0x8000, 10),
		mkTask(t, "b", 0x1000, 0x8000, 10), // same bases!
	)
	if err := Apply(as[0], as, AgeShift); err == nil {
		t.Fatal("aliased tasks accepted")
	}
}

func TestLifetimeRefinementTightens(t *testing.T) {
	// Three tasks where precedence forces b after a (cross-core), so the
	// refined analysis must drop a<->b conflicts.
	analyses := prepare(t,
		mkTask(t, "a", 0x1000, 0x8000, 40),
		mkTask(t, "b", 0x2000, 0x9000, 40),
		mkTask(t, "c", 0x3000, 0xa000, 40),
	)
	specs := []sched.TaskSpec{
		{Name: "a", Core: 0, Priority: 0},
		{Name: "b", Core: 1, Priority: 0, Deps: []int{0}},
		{Name: "c", Core: 2, Priority: 0},
	}
	res, err := AnalyzeWithLifetimes(analyses, specs, AgeShift)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Names {
		if res.RefinedWCET[i] > res.JointWCET[i] {
			t.Errorf("task %s: refinement worsened WCET %d > %d",
				res.Names[i], res.RefinedWCET[i], res.JointWCET[i])
		}
		if res.RefinedWCET[i] < res.SoloWCET[i] {
			t.Errorf("task %s: refined %d below solo %d",
				res.Names[i], res.RefinedWCET[i], res.SoloWCET[i])
		}
	}
	if res.Iterations < 1 {
		t.Error("no iterations recorded")
	}
}

func TestBypassReducesConflicts(t *testing.T) {
	// Task a has single-usage lines (straight-line loads outside loops);
	// bypassing them must shrink the conflicts seen by task b.
	aSrc := `
        li   r3, 0x8000
        ld   r2, 0(r3)
        ld   r4, 64(r3)
        ld   r5, 128(r3)
        ld   r6, 192(r3)
        halt
.data 0x8000
        .word 1`
	aProg := isa.MustAssemble("a", aSrc)
	bTask := mkTask(t, "b", 0x2000, 0x9000, 40)
	as := prepare(t, core.Task{Name: "a", Prog: aProg}, bTask)
	aA, aB := as[0], as[1]
	n, err := ApplyBypass(aA)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no single-usage refs bypassed")
	}
	// b against a-with-bypass must be no worse than b against a-without.
	asFresh := prepare(t, core.Task{Name: "a", Prog: aProg}, bTask)
	if err := Apply(asFresh[1], asFresh, AgeShift); err != nil {
		t.Fatal(err)
	}
	withoutBypass := asFresh[1].WCET
	if err := Apply(aB, []*core.Analysis{aA, aB}, AgeShift); err != nil {
		t.Fatal(err)
	}
	withBypass := aB.WCET
	if withBypass > withoutBypass {
		t.Errorf("bypass increased victim WCET: %d > %d", withBypass, withoutBypass)
	}
}

func TestSingleUsageExcludesLoops(t *testing.T) {
	task := mkTask(t, "loopy", 0x1000, 0x8000, 10)
	a := prepare(t, task)[0]
	single := SingleUsageLines(a)
	cfgL2 := a.L2.Cfg
	// The loop's load line must not be single-usage.
	for ln := range single {
		if cfgL2.SetOf(ln) == cfgL2.SetOf(cfgL2.LineOf(0x8000)) && ln == cfgL2.LineOf(0x8000) {
			t.Error("in-loop line marked single-usage")
		}
	}
}

func TestYieldJointAnalysis(t *testing.T) {
	threads := []YieldThread{
		{Name: "rx", Segments: []Segment{{Compute: 10, Stall: 20}, {Compute: 5, Stall: 20}}},
		{Name: "proc", Segments: []Segment{{Compute: 15, Stall: 10}, {Compute: 15, Stall: 10}}},
	}
	res, err := AnalyzeYield(threads)
	if err != nil {
		t.Fatal(err)
	}
	if res.WCET <= 0 || res.WCET > res.SumSerial {
		t.Errorf("WCET %d outside (0, serial %d]", res.WCET, res.SumSerial)
	}
	// Overlap must actually help versus full serialization.
	if res.WCET == res.SumSerial {
		t.Errorf("interleaving hid no stalls: %d", res.WCET)
	}
	if res.States <= 0 {
		t.Error("no states counted")
	}
}

func TestYieldStateGrowth(t *testing.T) {
	mk := func(n, segs int) []YieldThread {
		var out []YieldThread
		for i := 0; i < n; i++ {
			th := YieldThread{Name: fmt.Sprintf("t%d", i)}
			for s := 0; s < segs; s++ {
				th.Segments = append(th.Segments, Segment{Compute: int64(3 + i), Stall: int64(7 + s)})
			}
			out = append(out, th)
		}
		return out
	}
	r2, err := AnalyzeYield(mk(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := AnalyzeYield(mk(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if r3.States <= r2.States {
		t.Errorf("state count should grow with threads: %d vs %d", r2.States, r3.States)
	}
}
