package interfere

import (
	"fmt"
)

// Segment is a yield-free region of a fine-grained-multithreading thread
// (Crowley & Baer's network-processor model, §5.1): Compute cycles of
// pipeline work ending in a long-latency operation that stalls the thread
// for Stall cycles and yields the core.
type Segment struct {
	Compute int64
	Stall   int64
}

// YieldThread is one thread of the pipelined packet-handling application:
// a straight sequence of segments (loops must be unrolled or summarized
// into segment costs by a per-thread WCET analysis first, exactly as
// Crowley & Baer feed per-path costs into their global ILP).
type YieldThread struct {
	Name     string
	Segments []Segment
}

// YieldResult is the joint analysis outcome.
type YieldResult struct {
	// WCET is the exact worst-case makespan over all switch-on-yield
	// interleavings.
	WCET int64
	// States is the number of distinct global states explored — the
	// survey's scalability complaint made measurable.
	States int
	// SumSerial is the trivial no-overlap bound (all segments serialized,
	// stalls unhidden): the joint analysis must never exceed it.
	SumSerial int64
}

// maxYieldStates caps the exploration; exceeding it returns an error,
// which is itself the survey's point about this family of analyses.
const maxYieldStates = 2_000_000

// AnalyzeYield computes the worst-case makespan of a switch-on-yield
// fine-grained multithreaded core running the given threads, by explicit
// exploration of the global state space (positions × stall lags ×
// active-thread choice). Control passes round-robin to the next ready
// thread on every yield; when every thread is stalled, time advances to
// the earliest wake-up.
//
// The state space is the product of all thread positions and stall
// remainders — it grows multiplicatively with thread count and length,
// reproducing the survey's conclusion that the approach "is not scalable
// and cannot handle complex applications".
func AnalyzeYield(threads []YieldThread) (*YieldResult, error) {
	n := len(threads)
	if n == 0 {
		return nil, fmt.Errorf("interfere: no threads")
	}
	var sumSerial int64
	for _, th := range threads {
		for _, s := range th.Segments {
			sumSerial += s.Compute + s.Stall
		}
	}
	type stateKey string
	memo := map[stateKey]int64{}
	states := 0

	pos := make([]int, n)
	ready := make([]int64, n) // time until thread is runnable (lag)

	var explore func(now int64, active int) (int64, error)
	key := func(active int, now int64) stateKey {
		// Lags are relative; normalize so the memo hits across time shifts.
		b := make([]byte, 0, n*6+2)
		for i := 0; i < n; i++ {
			b = append(b, byte(pos[i]), byte(pos[i]>>8))
			lag := ready[i] - now
			if lag < 0 {
				lag = 0
			}
			b = append(b, byte(lag), byte(lag>>8), byte(lag>>16))
		}
		b = append(b, byte(active))
		return stateKey(b)
	}
	explore = func(now int64, active int) (int64, error) {
		// Finished?
		done := true
		for i := 0; i < n; i++ {
			if pos[i] < len(threads[i].Segments) {
				done = false
			}
		}
		if done {
			return now, nil
		}
		k := key(active, now)
		if v, ok := memo[k]; ok {
			return now + v, nil
		}
		states++
		if states > maxYieldStates {
			return 0, fmt.Errorf("interfere: yield analysis exceeded %d states", maxYieldStates)
		}
		// On a yield, the hardware may hand control to ANY ready thread —
		// the joint analysis must consider every interleaving (§3.1), so
		// the recursion maximizes over all choices. This branching is
		// exactly what makes the state space a product of the threads.
		best := int64(-1)
		ran := false
		for off := 0; off < n; off++ {
			t := (active + off) % n
			if pos[t] >= len(threads[t].Segments) || ready[t] > now {
				continue
			}
			seg := threads[t].Segments[pos[t]]
			pos[t]++
			oldReady := ready[t]
			end := now + seg.Compute
			ready[t] = end + seg.Stall
			v, err := explore(end, (t+1)%n)
			pos[t]--
			ready[t] = oldReady
			if err != nil {
				return 0, err
			}
			if v > best {
				best = v
			}
			ran = true
		}
		if !ran {
			// All blocked: advance to earliest wake-up.
			next := int64(-1)
			for i := 0; i < n; i++ {
				if pos[i] < len(threads[i].Segments) {
					if next < 0 || ready[i] < next {
						next = ready[i]
					}
				}
			}
			v, err := explore(next, active)
			if err != nil {
				return 0, err
			}
			best = v
		}
		memo[k] = best - now
		return best, nil
	}
	w, err := explore(0, 0)
	if err != nil {
		return nil, err
	}
	return &YieldResult{WCET: w, States: states, SumSerial: sumSerial}, nil
}
