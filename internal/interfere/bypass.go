package interfere

import (
	"paratime/internal/cache"
	"paratime/internal/core"
)

// SingleUsageLines returns the L2 lines of a task that are touched by
// exactly one static reference outside any loop — Hardy et al.'s
// single-usage program blocks (§4.1, RTSS 2009). Caching such a line in
// the shared L2 can never produce a hit (it is accessed once per run), so
// bypassing it costs nothing and removes its conflicts from co-runners.
func SingleUsageLines(a *core.Analysis) map[cache.LineID]bool {
	if a.L2 == nil {
		return nil
	}
	cfgL2 := a.L2.Cfg
	refsPerLine := map[cache.LineID]int{}
	inLoop := map[cache.LineID]bool{}
	for _, b := range a.G.Blocks {
		if b.IsExit() {
			continue
		}
		for seq, r := range a.Merged.Refs[b.ID] {
			id := cache.RefID{Block: b.ID, Seq: seq}
			if a.CAC[id] == cache.Never {
				continue
			}
			lines, ok := cfgL2.RefLines(r)
			if !ok {
				return nil // cannot prove single usage for anything
			}
			for _, ln := range lines {
				refsPerLine[ln]++
				if b.Loop() != nil {
					inLoop[ln] = true
				}
			}
		}
	}
	out := map[cache.LineID]bool{}
	//paralint:unordered per-key filter; each line decides its own membership
	for ln, n := range refsPerLine {
		if n == 1 && !inLoop[ln] {
			out[ln] = true
		}
	}
	return out
}

// ApplyBypass marks every reference to a single-usage line as bypassing
// the L2 and recomputes the task's L2 analysis. It returns the number of
// references bypassed. Run it on every task BEFORE a joint analysis:
// bypassed lines stop polluting the shared cache, shrinking everyone
// else's conflict sets (the mechanism behind Hardy et al.'s WCET gains).
func ApplyBypass(a *core.Analysis) (int, error) {
	if a.L2 == nil {
		return 0, nil
	}
	single := SingleUsageLines(a)
	if len(single) == 0 {
		return 0, nil
	}
	cfgL2 := a.L2.Cfg
	n := 0
	for _, b := range a.G.Blocks {
		if b.IsExit() {
			continue
		}
		for seq, r := range a.Merged.Refs[b.ID] {
			id := cache.RefID{Block: b.ID, Seq: seq}
			if a.CAC[id] == cache.Never || a.Bypass[id] {
				continue
			}
			bypass := false
			if lines, ok := cfgL2.RefLines(r); ok {
				bypass = true
				for _, ln := range lines {
					if !single[ln] {
						bypass = false
						break
					}
				}
			}
			if bypass {
				a.Bypass[id] = true
				a.CAC[id] = cache.Never
				n++
			}
		}
	}
	if n > 0 {
		if err := a.RecomputeL2(); err != nil {
			return n, err
		}
	}
	return n, nil
}
