// Package interfere implements the survey's joint shared-cache analyses
// (§4.1): the direct-mapped conflict demotion of Yan & Zhang, the
// set-associative age-shift analysis of Li et al. with its iterative
// task-lifetime refinement, and the single-usage L2 bypass of Hardy et
// al. — plus the global-CFG yield analysis of Crowley & Baer for
// fine-grained multithreading (§5.1).
//
// All analyses operate on prepared core.Analysis values sharing one L2
// configuration: they derive per-set foreign conflict counts from the
// co-runners' reference streams, re-classify each task's L2 result, and
// recompute WCETs.
package interfere

import (
	"fmt"

	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/sched"
)

// ConflictModel selects how foreign lines demote a task's classifications.
type ConflictModel uint8

// Conflict models.
const (
	// DirectMapped kills every conflicting set (Yan & Zhang, RTAS 2008):
	// appropriate for direct-mapped L2s, where one foreign line suffices
	// to evict ours.
	DirectMapped ConflictModel = iota
	// AgeShift ages each set by the number of distinct foreign lines
	// mapped to it (Li et al., RTSS 2009), preserving hits whose lines
	// are young enough to survive.
	AgeShift
)

// foreignConflicts accumulates, per L2 set, the number of distinct lines
// co-runners may bring into the shared L2 (a dense vector indexed by
// set). The bool is false when any co-runner has an unknown reference
// (assume full conflict everywhere).
func foreignConflicts(task *core.Analysis, coRunners []*core.Analysis) ([]int, bool) {
	if task.L2 == nil {
		return nil, false
	}
	perSet := make([]map[cache.LineID]bool, task.L2.Cfg.Sets)
	for _, o := range coRunners {
		if o == task {
			continue
		}
		if o.L2 == nil {
			return nil, false
		}
		touched, ok := o.L2.TouchedLines()
		if !ok {
			return nil, false
		}
		for s, lines := range touched {
			if len(lines) == 0 {
				continue
			}
			if perSet[s] == nil {
				perSet[s] = make(map[cache.LineID]bool, len(lines))
			}
			for _, l := range lines {
				perSet[s][l] = true
			}
		}
	}
	out := make([]int, len(perSet))
	for s, lines := range perSet {
		out[s] = len(lines)
	}
	return out, true
}

// Apply re-classifies the task's shared-L2 result against the co-runners
// under the chosen conflict model and recomputes its WCET. Co-runner
// address ranges must be disjoint from the task's (callers place
// programs at distinct bases); overlapping ranges are rejected because
// constructive interference would otherwise be claimed unsoundly.
func Apply(task *core.Analysis, coRunners []*core.Analysis, model ConflictModel) error {
	if task.L2 == nil {
		return fmt.Errorf("interfere: task %s has no shared L2", task.Task.Name)
	}
	for _, o := range coRunners {
		if o != task && rangesOverlap(task, o) {
			return fmt.Errorf("interfere: tasks %s and %s overlap in the address space",
				task.Task.Name, o.Task.Name)
		}
	}
	conflicts, ok := foreignConflicts(task, coRunners)
	ways := task.L2.Cfg.Ways
	shift := make([]int, task.L2.Cfg.Sets)
	if !ok {
		// Unknown foreign behaviour: every set fully conflicted.
		for s := range shift {
			shift[s] = ways
		}
	} else {
		for s, n := range conflicts {
			if n == 0 {
				continue
			}
			switch model {
			case DirectMapped:
				shift[s] = ways // kill the set
			case AgeShift:
				shift[s] = min(n, ways)
			}
		}
	}
	task.L2.ReclassifyShift(shift)
	return task.ComputeWCET()
}

func rangesOverlap(a, b *core.Analysis) bool {
	// Text segments.
	if a.Task.Prog.Base < b.Task.Prog.End() && b.Task.Prog.Base < a.Task.Prog.End() {
		return true
	}
	// Data images (word granularity, cheap scan).
	//paralint:unordered existence check; any iteration order reaches the same verdict
	for addr := range a.Task.Prog.Data {
		if _, clash := b.Task.Prog.Data[addr]; clash {
			return true
		}
	}
	return false
}

// JointResult summarizes one joint analysis.
type JointResult struct {
	Names []string
	// SoloWCET is each task's WCET assuming the L2 is private.
	SoloWCET []int64
	// JointWCET is each task's WCET accounting for co-runner conflicts.
	JointWCET []int64
}

// AnalyzeJoint runs the full joint analysis for a set of co-scheduled
// tasks: each task is first analyzed in isolation, then re-classified
// against all others. This is the all-overlap baseline of §4.1.
func AnalyzeJoint(analyses []*core.Analysis, model ConflictModel) (*JointResult, error) {
	res := &JointResult{}
	for _, a := range analyses {
		if a.IPET == nil {
			if err := a.ComputeWCET(); err != nil {
				return nil, err
			}
		}
		res.Names = append(res.Names, a.Task.Name)
		res.SoloWCET = append(res.SoloWCET, a.WCET)
	}
	for _, a := range analyses {
		if err := Apply(a, analyses, model); err != nil {
			return nil, err
		}
		res.JointWCET = append(res.JointWCET, a.WCET)
	}
	return res, nil
}

// LifetimeResult extends JointResult with the lifetime-refined bounds.
type LifetimeResult struct {
	JointResult
	// RefinedWCET accounts only for co-runners whose lifetime windows may
	// overlap (Li et al.'s iterative refinement).
	RefinedWCET []int64
	Windows     []sched.Window
	Iterations  int
}

// maxRefineIter bounds the WCET/lifetime alternation.
const maxRefineIter = 8

// AnalyzeWithLifetimes runs Li et al.'s iterative framework: starting
// from the all-overlap joint bounds, alternate (a) lifetime-window
// computation from current BCET/WCET values and (b) re-classification
// against only the co-runners that may overlap, until the WCETs are
// stable.
//
// specs[i] describes task i's mapping, priority and dependencies; its
// BCET/WCET fields are filled by the analysis.
func AnalyzeWithLifetimes(analyses []*core.Analysis, specs []sched.TaskSpec, model ConflictModel) (*LifetimeResult, error) {
	if len(analyses) != len(specs) {
		return nil, fmt.Errorf("interfere: %d analyses vs %d specs", len(analyses), len(specs))
	}
	joint, err := AnalyzeJoint(analyses, model)
	if err != nil {
		return nil, err
	}
	res := &LifetimeResult{JointResult: *joint}
	cur := append([]int64(nil), joint.JointWCET...)
	// BCETs: a cheap safe lower bound is zero; tasks with dependencies
	// still separate through the precedence structure. Use the solo WCET
	// as an optimistic-but-common BCET surrogate only when asked; here we
	// stay safe with zero.
	for iter := 1; iter <= maxRefineIter; iter++ {
		res.Iterations = iter
		for i := range specs {
			specs[i].BCET = 0
			specs[i].WCET = cur[i]
		}
		win, err := sched.Lifetimes(specs)
		if err != nil {
			return nil, err
		}
		res.Windows = win
		overlap := sched.MayOverlap(specs, win)
		next := make([]int64, len(analyses))
		for i, a := range analyses {
			var co []*core.Analysis
			for j, b := range analyses {
				if i != j && overlap[i][j] {
					co = append(co, b)
				}
			}
			if err := Apply(a, append(co, a), model); err != nil {
				return nil, err
			}
			next[i] = a.WCET
		}
		stable := true
		for i := range cur {
			if next[i] != cur[i] {
				stable = false
			}
		}
		cur = next
		if stable {
			break
		}
	}
	res.RefinedWCET = cur
	return res, nil
}
