package partition

import (
	"fmt"
	"testing"

	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/isa"
)

func l2cfg() cache.Config {
	return cache.Config{Name: "L2", Sets: 32, Ways: 4, LineBytes: 32, HitLatency: 4}
}

func sysWith(l2 cache.Config) core.SystemConfig {
	sys := core.DefaultSystem()
	c := l2
	sys.Mem.L2 = &c
	return sys
}

func loopTask(name string, base, dataBase uint32, iters int) core.Task {
	src := fmt.Sprintf(`
        li   r1, %d
        li   r3, 0x%x
loop:   ld   r2, 0(r3)
        add  r4, r4, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
.data 0x%x
        .word 5`, iters, dataBase, dataBase)
	p := isa.MustAssemble(name, src)
	p.Rebase(base)
	return core.Task{Name: name, Prog: p}
}

func TestSetPartitionGeometry(t *testing.T) {
	p, err := SetPartition(l2cfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sets != 8 || p.Ways != 4 {
		t.Errorf("partition = %d sets × %d ways, want 8×4", p.Sets, p.Ways)
	}
	if _, err := SetPartition(l2cfg(), 0); err == nil {
		t.Error("0 owners accepted")
	}
	if _, err := SetPartition(l2cfg(), 64); err == nil {
		t.Error("oversubscription accepted")
	}
	// Non-power-of-two owner counts floor to a power of two.
	p3, err := SetPartition(l2cfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Sets != 8 {
		t.Errorf("3 owners -> %d sets, want floor-pow2(32/3)=8", p3.Sets)
	}
}

func TestColumnizeBankize(t *testing.T) {
	col, err := Columnize(l2cfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if col.Ways != 2 || col.Sets != 32 {
		t.Errorf("columnize = %+v", col)
	}
	bank, err := Bankize(l2cfg(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bank.Sets != 16 || bank.Ways != 4 {
		t.Errorf("bankize = %+v", bank)
	}
	if _, err := Columnize(l2cfg(), 5); err == nil {
		t.Error("too many ways accepted")
	}
	if _, err := Bankize(l2cfg(), 5, 4); err == nil {
		t.Error("too many banks accepted")
	}
}

func TestCoreBasedBeatsTaskBased(t *testing.T) {
	// 4 tasks on 2 cores: core-based partitions are twice as large, so
	// per-task WCETs must be no worse (Suhendra & Mitra's finding (i)).
	tasks := []core.Task{
		loopTask("t0", 0x1000, 0x8000, 30),
		loopTask("t1", 0x2000, 0x9000, 30),
		loopTask("t2", 0x3000, 0xa000, 30),
		loopTask("t3", 0x4000, 0xb000, 30),
	}
	sys := sysWith(l2cfg())
	taskW, err := WCETs(tasks, sys, TaskBased, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	coreW, err := WCETs(tasks, sys, CoreBased, []int{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if coreW[i] > taskW[i] {
			t.Errorf("task %d: core-based %d worse than task-based %d", i, coreW[i], taskW[i])
		}
	}
}

func TestPartitionIsolationFromCoRunners(t *testing.T) {
	// A partitioned task's WCET must be identical no matter what the
	// other partitions run: the computation takes no co-runner input.
	task := loopTask("iso", 0x1000, 0x8000, 25)
	sys := sysWith(l2cfg())
	w1, err := WCETs([]core.Task{task}, sys, TaskBased, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// "Different co-runners" = re-running with the same single task; the
	// per-task partition geometry is what matters.
	w2, err := WCETs([]core.Task{task}, sys, TaskBased, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w1[0] != w2[0] {
		t.Errorf("partitioned WCET not reproducible: %d vs %d", w1[0], w2[0])
	}
}

// phasedTask walks two disjoint 1 KiB arrays in two sequential loop
// phases. Each array overflows the 512 B L1D, so every load goes to the
// L2 and the phase's working set (32 L2 lines) decides the cost — the
// workload shape where dynamic locking beats static locking.
func phasedTask(name string, base uint32) core.Task {
	src := `
        li   r3, 0x8000
        li   r5, 0x8400
p1:     ld   r2, 0(r3)
        add  r4, r4, r2
        addi r3, r3, 4
        bne  r3, r5, p1
        li   r3, 0x9000
        li   r5, 0x9400
p2:     ld   r2, 0(r3)
        add  r4, r4, r2
        addi r3, r3, 4
        bne  r3, r5, p2
        halt
.data 0x8000
        .word 1
.data 0x9000
        .word 2`
	p := isa.MustAssemble(name, src)
	p.Rebase(base)
	return core.Task{Name: name, Prog: p}
}

func TestDynamicLockingBeatsStaticOnPhases(t *testing.T) {
	// Budget = one phase's working set (32 L2 lines of 32 B for 1 KiB)
	// plus a few fetch lines. Static must choose one phase and sacrifice
	// the other; dynamic re-locks at each region boundary, paying the
	// reload penalty but winning it back over the 256 accesses per phase.
	task := phasedTask("phased", 0x1000)
	sys := sysWith(l2cfg())
	st, err := StaticLock(task, sys, 40)
	if err != nil {
		t.Fatal(err)
	}
	dy, err := DynamicLock(task, sys, 40)
	if err != nil {
		t.Fatal(err)
	}
	if dy.WCET >= st.WCET {
		t.Errorf("dynamic locking %d should beat static %d on phased workload", dy.WCET, st.WCET)
	}
	if len(st.Locked) == 0 || len(dy.Locked) < 2 {
		t.Errorf("lock selections: static %v dynamic %v", st.Locked, dy.Locked)
	}
}

func TestLockingBudgetMonotonicity(t *testing.T) {
	task := phasedTask("phased2", 0x1000)
	sys := sysWith(l2cfg())
	prev := int64(1 << 62)
	for _, budget := range []int{1, 2, 8} {
		res, err := StaticLock(task, sys, budget)
		if err != nil {
			t.Fatal(err)
		}
		if res.WCET > prev {
			t.Errorf("budget %d worsened WCET: %d > %d", budget, res.WCET, prev)
		}
		prev = res.WCET
	}
}

func TestBankizationVsColumnization(t *testing.T) {
	// Equal fractions (half the cache each way): bankization keeps full
	// associativity and the loop working set persists; columnization
	// halves the ways. For this working set bankization must be at least
	// as tight (Paolieri et al.'s finding).
	task := loopTask("pt", 0x1000, 0x8000, 30)
	col, err := Columnize(l2cfg(), 2) // half the ways
	if err != nil {
		t.Fatal(err)
	}
	bank, err := Bankize(l2cfg(), 2, 4) // half the banks: same capacity fraction
	if err != nil {
		t.Fatal(err)
	}
	aCol, err := core.Analyze(task, sysWith(col))
	if err != nil {
		t.Fatal(err)
	}
	aBank, err := core.Analyze(task, sysWith(bank))
	if err != nil {
		t.Fatal(err)
	}
	if aBank.WCET > aCol.WCET {
		t.Errorf("bankization %d worse than columnization %d", aBank.WCET, aCol.WCET)
	}
}
