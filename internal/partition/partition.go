// Package partition implements the statically-controlled storage-sharing
// schemes of the survey's §4.2: shared-cache set partitioning (task-based
// and core-based, after Suhendra & Mitra), way partitioning
// ("columnization") and bank partitioning ("bankization") after Paolieri
// et al., and static/dynamic cache locking with greedy profit selection.
//
// All schemes turn the shared L2 into per-task private resources, making
// each task's WCET computable without knowledge of co-runner *content* —
// the property that places them between joint analysis and full isolation
// in the survey's taxonomy.
package partition

import (
	"cmp"
	"fmt"
	"slices"

	"paratime/internal/cache"
	"paratime/internal/cfg"
	"paratime/internal/core"
	"paratime/internal/ipet"
)

// Scheme selects who owns a partition.
type Scheme uint8

// Partitioning schemes.
const (
	// TaskBased gives every task its own slice of the shared cache.
	TaskBased Scheme = iota
	// CoreBased gives every core a slice shared by its (serialized)
	// tasks; with more tasks than cores each task sees a bigger slice,
	// which is why Suhendra & Mitra find it superior.
	CoreBased
)

func (s Scheme) String() string {
	if s == TaskBased {
		return "task-based"
	}
	return "core-based"
}

// floorPow2 returns the largest power of two <= n (and >= 1).
func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// SetPartition returns the private L2 view of one partition owner when
// the cache's sets are split evenly among n owners.
func SetPartition(l2 cache.Config, n int) (cache.Config, error) {
	if n <= 0 {
		return cache.Config{}, fmt.Errorf("partition: %d owners", n)
	}
	if l2.Sets/n < 1 {
		return cache.Config{}, fmt.Errorf("partition: %d sets cannot serve %d owners", l2.Sets, n)
	}
	sets := floorPow2(l2.Sets / n)
	out := l2
	out.Sets = sets
	out.Name = fmt.Sprintf("%s/part%d", l2.Name, n)
	return out, nil
}

// Columnize returns the private view under way partitioning: same sets,
// a share of the ways (Paolieri et al.'s columnization).
func Columnize(l2 cache.Config, ways int) (cache.Config, error) {
	if ways < 1 || ways > l2.Ways {
		return cache.Config{}, fmt.Errorf("partition: %d of %d ways", ways, l2.Ways)
	}
	out := l2
	out.Ways = ways
	out.Name = fmt.Sprintf("%s/col%d", l2.Name, ways)
	return out, nil
}

// Bankize returns the private view under bank partitioning: a share of
// the banks (modelled as set groups), full associativity retained
// (Paolieri et al.'s bankization).
func Bankize(l2 cache.Config, banks, totalBanks int) (cache.Config, error) {
	if totalBanks <= 0 || banks < 1 || banks > totalBanks {
		return cache.Config{}, fmt.Errorf("partition: %d of %d banks", banks, totalBanks)
	}
	sets := floorPow2(l2.Sets * banks / totalBanks)
	if sets < 1 {
		return cache.Config{}, fmt.Errorf("partition: bank share too small")
	}
	out := l2
	out.Sets = sets
	out.Name = fmt.Sprintf("%s/bank%dof%d", l2.Name, banks, totalBanks)
	return out, nil
}

// WCETs analyzes every task against its private partition view and
// returns the per-task WCETs. assignCore maps task index to core
// (CoreBased only).
func WCETs(tasks []core.Task, sys core.SystemConfig, scheme Scheme, assignCore []int, nCores int) ([]int64, error) {
	if sys.Mem.L2 == nil {
		return nil, fmt.Errorf("partition: no shared L2 in system config")
	}
	owners := len(tasks)
	if scheme == CoreBased {
		owners = nCores
	}
	private, err := SetPartition(*sys.Mem.L2, owners)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(tasks))
	for i, task := range tasks {
		s := sys
		p := private
		s.Mem.L2 = &p
		a, err := core.Analyze(task, s)
		if err != nil {
			return nil, err
		}
		out[i] = a.WCET
	}
	_ = assignCore // the even split makes the core mapping immaterial here
	return out, nil
}

// --- cache locking ----------------------------------------------------------

// LockResult reports one locking configuration.
type LockResult struct {
	WCET   int64
	Locked []cache.LineID
}

// lineProfit estimates how many L2-reaching accesses each L2 line gets,
// weighting each reference by its block's worst-case execution count from
// a prior solo IPET solve.
func lineProfit(a *core.Analysis, within *cfg.Loop) map[cache.LineID]int64 {
	profit := map[cache.LineID]int64{}
	cfgL2 := a.L2.Cfg
	for _, b := range a.G.Blocks {
		if b.IsExit() {
			continue
		}
		if within != nil && !within.Contains(b) {
			continue
		}
		freq := a.IPET.BlockCounts[b.ID]
		if freq == 0 {
			freq = 1 // block off the worst path still deserves weight
		}
		for seq, r := range a.Merged.Refs[b.ID] {
			id := cache.RefID{Block: b.ID, Seq: seq}
			if a.CAC[id] == cache.Never {
				continue
			}
			lines, _ := cfgL2.RefLines(r) // unknown refs profit nothing
			for _, ln := range lines {
				profit[ln] += freq
			}
		}
	}
	return profit
}

// topLines picks the highest-profit lines that fit the capacity,
// respecting per-set associativity.
func topLines(profit map[cache.LineID]int64, geom cache.Config, budgetLines int) []cache.LineID {
	lines := make([]cache.LineID, 0, len(profit))
	for ln := range profit {
		lines = append(lines, ln)
	}
	slices.SortFunc(lines, func(a, b cache.LineID) int {
		if pa, pb := profit[a], profit[b]; pa != pb {
			if pa > pb {
				return -1
			}
			return 1
		}
		return cmp.Compare(a, b)
	})
	perSet := map[int]int{}
	var out []cache.LineID
	for _, ln := range lines {
		if len(out) >= budgetLines {
			break
		}
		s := geom.SetOf(ln)
		if perSet[s] >= geom.Ways {
			continue
		}
		perSet[s]++
		out = append(out, ln)
	}
	return out
}

// applyLockClasses overrides the L2 classification: references entirely
// within the locked set are AlwaysHit; everything else always misses
// (the locked cache never reloads).
func applyLockClasses(a *core.Analysis, locked map[cache.LineID]bool, within *cfg.Loop) {
	cfgL2 := a.L2.Cfg
	if a.L2Override == nil {
		a.L2Override = map[cache.RefID]cache.Class{}
	}
	for _, b := range a.G.Blocks {
		if b.IsExit() {
			continue
		}
		if within != nil && !within.Contains(b) {
			continue
		}
		for seq, r := range a.Merged.Refs[b.ID] {
			id := cache.RefID{Block: b.ID, Seq: seq}
			if a.CAC[id] == cache.Never {
				continue
			}
			hit := false
			if lines, ok := cfgL2.RefLines(r); ok {
				hit = true
				for _, ln := range lines {
					if !locked[ln] {
						hit = false
						break
					}
				}
			}
			if hit {
				a.L2Override[id] = cache.AlwaysHit
			} else {
				a.L2Override[id] = cache.AlwaysMiss
			}
		}
	}
}

// StaticLock locks one set of lines for the whole run (greedy selection
// by access-frequency profit) into the task's L2 partition and returns
// the resulting WCET. budgetLines is the partition capacity in lines.
func StaticLock(task core.Task, sys core.SystemConfig, budgetLines int) (*LockResult, error) {
	a, err := core.Analyze(task, sys) // solo pass for frequencies
	if err != nil {
		return nil, err
	}
	profit := lineProfit(a, nil)
	locked := topLines(profit, a.L2.Cfg, budgetLines)
	lockedSet := map[cache.LineID]bool{}
	for _, ln := range locked {
		lockedSet[ln] = true
	}
	applyLockClasses(a, lockedSet, nil)
	if err := a.ComputeWCET(); err != nil {
		return nil, err
	}
	return &LockResult{WCET: a.WCET, Locked: locked}, nil
}

// DynamicLock re-locks the cache at every outermost-loop boundary: each
// region locks its own most profitable lines, paying a reload penalty of
// one memory access per locked line once per region entry. References
// outside any region always miss. Suhendra & Mitra's finding — dynamic
// beats static when phases use disjoint working sets — reproduces
// whenever the per-region working sets fit but their union does not.
func DynamicLock(task core.Task, sys core.SystemConfig, budgetLines int) (*LockResult, error) {
	a, err := core.Analyze(task, sys)
	if err != nil {
		return nil, err
	}
	a.L2Override = map[cache.RefID]cache.Class{}
	// Default: everything misses; regions refine below.
	applyLockClasses(a, map[cache.LineID]bool{}, nil)
	var allLocked []cache.LineID
	reload := int64(sys.Mem.BusDelay + sys.Mem.MemLatency)
	for _, l := range a.G.Loops {
		if l.Parent != nil {
			continue // outermost regions only
		}
		profit := lineProfit(a, l)
		locked := topLines(profit, a.L2.Cfg, budgetLines)
		lockedSet := map[cache.LineID]bool{}
		for _, ln := range locked {
			lockedSet[ln] = true
		}
		applyLockClasses(a, lockedSet, l)
		allLocked = append(allLocked, locked...)
		a.ExtraEvents = append(a.ExtraEvents, ipet.Event{
			Name:    fmt.Sprintf("reload_b%d", l.Header.ID),
			Block:   l.Header.ID,
			Penalty: reload * int64(len(locked)),
			Scope:   l,
		})
	}
	if err := a.ComputeWCET(); err != nil {
		return nil, err
	}
	return &LockResult{WCET: a.WCET, Locked: allLocked}, nil
}
