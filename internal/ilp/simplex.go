package ilp

import (
	"fmt"
	"math/big"
)

// maxPivots bounds simplex iterations as a defensive backstop; Bland's
// rule guarantees termination, so hitting the bound indicates a bug.
const maxPivots = 1_000_000

// tableau is a dense exact-rational simplex tableau.
//
// Layout: rows[r][c] for c < ncols are coefficients, rows[r][ncols] is the
// right-hand side. cost holds reduced costs; cost[ncols] is the current
// objective value. basis[r] is the variable index basic in row r.
type tableau struct {
	rows  [][]*big.Rat
	cost  []*big.Rat
	basis []int
	ncols int
	nart  int // number of artificial columns (at the end)
}

// lpResult carries the LP outcome in shifted coordinates.
type lpResult struct {
	status Status
	y      []*big.Rat // structural variable values (shifted by lower bounds)
}

// solveLP solves the LP relaxation of the model (ignoring integrality).
// The returned values are in original coordinates.
func (m *Model) solveLP() (*Solution, error) {
	n := m.NumVars()
	// Shift variables by lower bounds: y = x - l, y >= 0.
	// Build rows: structural constraints plus upper-bound rows.
	type row struct {
		coef  []*big.Rat
		sense Sense
		rhs   *big.Rat
	}
	var rows []row
	t := new(big.Rat)
	for _, c := range m.cons {
		coef := make([]*big.Rat, n)
		rhs := new(big.Rat).Set(c.rhs)
		for v, a := range c.terms {
			coef[v] = new(big.Rat).Set(a)
			rhs.Sub(rhs, t.Mul(a, m.lower[v]))
		}
		rows = append(rows, row{coef: coef, sense: c.sense, rhs: rhs})
	}
	for v := 0; v < n; v++ {
		if m.upper[v] == nil {
			continue
		}
		span := new(big.Rat).Sub(m.upper[v], m.lower[v])
		if span.Sign() < 0 {
			return &Solution{Status: Infeasible, Nodes: 1}, nil
		}
		coef := make([]*big.Rat, n)
		coef[v] = big.NewRat(1, 1)
		rows = append(rows, row{coef: coef, sense: LE, rhs: span})
	}
	// Normalize RHS >= 0.
	for i := range rows {
		if rows[i].rhs.Sign() < 0 {
			rows[i].rhs.Neg(rows[i].rhs)
			for v, a := range rows[i].coef {
				if a != nil {
					rows[i].coef[v] = a.Neg(a)
				}
			}
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
	}
	// Column layout: [0,n) structural, then slacks/surplus, then artificials.
	nSlack := 0
	for _, r := range rows {
		if r.sense != EQ {
			nSlack++
		}
	}
	nArt := 0
	for _, r := range rows {
		if r.sense != LE {
			nArt++
		}
	}
	ncols := n + nSlack + nArt
	tb := &tableau{ncols: ncols, nart: nArt}
	slackAt, artAt := n, n+nSlack
	for _, r := range rows {
		tr := make([]*big.Rat, ncols+1)
		for c := range tr {
			tr[c] = new(big.Rat)
		}
		for v, a := range r.coef {
			if a != nil {
				tr[v].Set(a)
			}
		}
		tr[ncols].Set(r.rhs)
		basic := -1
		switch r.sense {
		case LE:
			tr[slackAt].SetInt64(1)
			basic = slackAt
			slackAt++
		case GE:
			tr[slackAt].SetInt64(-1)
			slackAt++
			tr[artAt].SetInt64(1)
			basic = artAt
			artAt++
		case EQ:
			tr[artAt].SetInt64(1)
			basic = artAt
			artAt++
		}
		tb.rows = append(tb.rows, tr)
		tb.basis = append(tb.basis, basic)
	}

	if nArt > 0 {
		// Phase 1: maximize -(sum of artificials).
		phase1 := make([]*big.Rat, ncols+1)
		for c := range phase1 {
			phase1[c] = new(big.Rat)
		}
		for c := n + nSlack; c < ncols; c++ {
			phase1[c].SetInt64(-1)
		}
		tb.cost = phase1
		tb.priceOut()
		if st := tb.run(); st != Optimal {
			return nil, fmt.Errorf("phase-1 simplex returned %v", st)
		}
		if tb.cost[ncols].Sign() != 0 {
			return &Solution{Status: Infeasible, Nodes: 1}, nil
		}
		if err := tb.evictArtificials(n + nSlack); err != nil {
			return nil, err
		}
	}
	// Phase 2: real objective. Note tb.ncols may have shrunk when
	// artificial columns were evicted.
	cost := make([]*big.Rat, tb.ncols+1)
	for c := range cost {
		cost[c] = new(big.Rat)
	}
	for v, a := range m.objective {
		cost[v].Set(a)
	}
	tb.cost = cost
	tb.priceOut()
	if st := tb.run(); st != Optimal {
		return &Solution{Status: st, Nodes: 1}, nil
	}
	// Extract solution.
	x := make([]*big.Rat, n)
	for v := 0; v < n; v++ {
		x[v] = new(big.Rat).Set(m.lower[v])
	}
	for r, b := range tb.basis {
		if b < n {
			x[b].Add(m.lower[b], tb.rows[r][tb.ncols])
		}
	}
	return &Solution{Status: Optimal, Value: m.objective.Eval(x), X: x, Nodes: 1}, nil
}

// priceOut rewrites the cost row in terms of nonbasic variables by
// eliminating the basic columns.
func (tb *tableau) priceOut() {
	t := new(big.Rat)
	for r, b := range tb.basis {
		cb := tb.cost[b]
		if cb.Sign() == 0 {
			continue
		}
		f := new(big.Rat).Set(cb)
		for c := 0; c <= tb.ncols; c++ {
			if tb.rows[r][c].Sign() != 0 {
				tb.cost[c].Sub(tb.cost[c], t.Mul(f, tb.rows[r][c]))
			}
		}
		// cost[ncols] accumulated -f*rhs; objective value convention:
		// cost[ncols] tracks -z, negate when reading. See value().
	}
}

// run performs primal simplex pivots with Bland's rule until optimality
// or unboundedness. The cost row must already be priced out.
func (tb *tableau) run() Status {
	for pivots := 0; pivots < maxPivots; pivots++ {
		// Entering: smallest index with positive reduced cost.
		enter := -1
		for c := 0; c < tb.ncols; c++ {
			if tb.cost[c].Sign() > 0 {
				enter = c
				break
			}
		}
		if enter < 0 {
			// Optimal. Normalize stored objective value to +z.
			tb.cost[tb.ncols].Neg(tb.cost[tb.ncols])
			return Optimal
		}
		// Leaving: min ratio rhs/a over a > 0; ties by smallest basis var.
		leave := -1
		var best *big.Rat
		ratio := new(big.Rat)
		for r := 0; r < len(tb.rows); r++ {
			a := tb.rows[r][enter]
			if a.Sign() <= 0 {
				continue
			}
			ratio.Quo(tb.rows[r][tb.ncols], a)
			switch {
			case leave < 0 || ratio.Cmp(best) < 0:
				leave = r
				best = new(big.Rat).Set(ratio)
			case ratio.Cmp(best) == 0 && tb.basis[r] < tb.basis[leave]:
				leave = r
			}
		}
		if leave < 0 {
			return Unbounded
		}
		tb.pivot(leave, enter)
	}
	panic("ilp: simplex exceeded pivot budget (cycling bug)")
}

// pivot makes column c basic in row r.
func (tb *tableau) pivot(r, c int) {
	prow := tb.rows[r]
	inv := new(big.Rat).Inv(prow[c])
	for j := 0; j <= tb.ncols; j++ {
		prow[j].Mul(prow[j], inv)
	}
	t := new(big.Rat)
	for i := 0; i < len(tb.rows); i++ {
		if i == r || tb.rows[i][c].Sign() == 0 {
			continue
		}
		f := new(big.Rat).Set(tb.rows[i][c])
		for j := 0; j <= tb.ncols; j++ {
			if prow[j].Sign() != 0 {
				tb.rows[i][j].Sub(tb.rows[i][j], t.Mul(f, prow[j]))
			}
		}
	}
	if tb.cost[c].Sign() != 0 {
		f := new(big.Rat).Set(tb.cost[c])
		for j := 0; j <= tb.ncols; j++ {
			if prow[j].Sign() != 0 {
				tb.cost[j].Sub(tb.cost[j], t.Mul(f, prow[j]))
			}
		}
	}
	tb.basis[r] = c
}

// evictArtificials pivots artificial variables out of the basis after a
// successful phase 1, dropping redundant rows.
func (tb *tableau) evictArtificials(firstArt int) error {
	var keepRows [][]*big.Rat
	var keepBasis []int
	for r := 0; r < len(tb.rows); r++ {
		if tb.basis[r] < firstArt {
			keepRows = append(keepRows, tb.rows[r])
			keepBasis = append(keepBasis, tb.basis[r])
			continue
		}
		// Artificial basic at value 0 (phase 1 succeeded): pivot on any
		// non-artificial column with nonzero coefficient, else the row is
		// redundant and dropped.
		pivoted := false
		for c := 0; c < firstArt; c++ {
			if tb.rows[r][c].Sign() != 0 {
				tb.pivot(r, c)
				pivoted = true
				break
			}
		}
		if pivoted {
			keepRows = append(keepRows, tb.rows[r])
			keepBasis = append(keepBasis, tb.basis[r])
		}
	}
	tb.rows = keepRows
	tb.basis = keepBasis
	// Truncate artificial columns.
	tb.ncols = firstArt
	for r := range tb.rows {
		tb.rows[r] = append(tb.rows[r][:firstArt], tb.rows[r][len(tb.rows[r])-1])
	}
	return nil
}
