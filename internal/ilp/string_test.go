package ilp

import "testing"

// TestModelStringGolden pins the exact rendering of Model.String. Lin
// terms are stored sorted by variable index, so the output is
// deterministic by construction (the historical map-backed Lin rendered
// reproducibly only because it sorted on every call).
func TestModelStringGolden(t *testing.T) {
	m := NewModel()
	x := m.AddIntVar("x_b0")
	y := m.AddIntVar("e_0")
	z := m.AddVar("") // lazily named
	m.SetBounds(y, rat(0, 1), rat(7, 1))
	m.SetBounds(z, rat(-1, 2), nil)
	// Insert terms out of index order: rendering must still be sorted.
	m.AddConstraintInt("in_b0", NewLin().AddInt(y, -1).AddInt(x, 1), EQ, 1)
	m.AddConstraint("cap", NewLin().AddInt(z, 3).AddInt(x, 2), LE, rat(9, 2))
	m.SetObjective(NewLin().AddInt(z, 5).AddInt(x, 4))

	const want = `max 4*x_b0 + 5*v2
s.t.
  in_b0: 1*x_b0 + -1*e_0 = 1
  cap: 2*x_b0 + 3*v2 <= 9/2
  x_b0 in [0, +inf] int
  e_0 in [0, 7] int
  v2 in [-1/2, +inf]
`
	if got := m.String(); got != want {
		t.Errorf("Model.String mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	// Repeated rendering must be identical (determinism).
	if m.String() != m.String() {
		t.Error("Model.String is not deterministic")
	}
}
