package ilp

import (
	"math/big"
	"math/rand"
	"testing"
)

// The differential suite: the sparse int64 fast path must agree with the
// retired dense big.Rat oracle on the ENTIRE solution — status, objective,
// every variable value and the branch-and-bound node count — because both
// implement the same pivoting and branching rules. Anything less than
// full-vector agreement would let the two paths drift to different (even
// if equally optimal) vertices, which would make batch outputs depend on
// which path ran.

// assertSolutionsEqual compares two solutions field by field.
func assertSolutionsEqual(t *testing.T, fast, oracle *Solution, m *Model) {
	t.Helper()
	if fast.Status != oracle.Status {
		t.Fatalf("status: fast %v, oracle %v\n%s", fast.Status, oracle.Status, m)
	}
	if fast.Status != Optimal {
		return
	}
	if fast.Value.Cmp(oracle.Value) != 0 {
		t.Fatalf("value: fast %s, oracle %s\n%s", fast.Value.RatString(), oracle.Value.RatString(), m)
	}
	for v := range fast.X {
		if fast.X[v].Cmp(oracle.X[v]) != 0 {
			t.Fatalf("x[%d]: fast %s, oracle %s\n%s", v, fast.X[v].RatString(), oracle.X[v].RatString(), m)
		}
	}
	if fast.Nodes != oracle.Nodes {
		t.Fatalf("nodes: fast %d, oracle %d\n%s", fast.Nodes, oracle.Nodes, m)
	}
}

// randomIPETModel builds a random IPET-shaped model: a chain of diamonds
// (flow conservation, EQ rows) with occasional bound rows and random
// integer costs — the exact constraint structure WCET computation emits.
func randomIPETModel(rng *rand.Rand) *Model {
	m := NewModel()
	k := 1 + rng.Intn(6)
	prev := m.AddIntVar("")
	m.AddConstraintInt("", NewLin().AddInt(prev, 1), EQ, 1)
	obj := NewLin()
	for i := 0; i < k; i++ {
		a, b := m.AddIntVar(""), m.AddIntVar("")
		out := m.AddIntVar("")
		m.AddConstraintInt("", NewLin().AddInt(prev, 1).AddInt(a, -1).AddInt(b, -1), EQ, 0)
		m.AddConstraintInt("", NewLin().AddInt(out, 1).AddInt(a, -1).AddInt(b, -1), EQ, 0)
		obj.AddInt(a, int64(rng.Intn(40)))
		obj.AddInt(b, int64(rng.Intn(40)))
		// Occasional loop-bound-style row: a repeats up to B times per entry.
		if rng.Intn(2) == 0 {
			bound := int64(1 + rng.Intn(7))
			m.AddConstraintInt("", NewLin().AddInt(a, 1).AddInt(prev, -bound), LE, 0)
		}
		prev = out
	}
	m.SetObjective(obj)
	return m
}

func TestFastMatchesOracleIPETShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		m := randomIPETModel(rng)
		fast, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, m)
		}
		if fast.FellBack {
			t.Fatalf("trial %d: small IPET model fell back to the oracle\n%s", trial, m)
		}
		oracle, err := m.SolveOracle()
		if err != nil {
			t.Fatalf("trial %d oracle: %v\n%s", trial, err, m)
		}
		assertSolutionsEqual(t, fast, oracle, m)
		if fast.Pivots != oracle.Pivots {
			t.Fatalf("trial %d: pivots fast %d, oracle %d\n%s", trial, fast.Pivots, oracle.Pivots, m)
		}
	}
}

// TestFastMatchesOracleGeneral stresses the comparison on general random
// models: mixed senses, rational right-hand sides, negative lower bounds,
// finite upper bounds, mixed integer/continuous variables.
func TestFastMatchesOracleGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(3)
		m := NewModel()
		vars := make([]Var, n)
		obj := NewLin()
		for i := range vars {
			if rng.Intn(3) == 0 {
				vars[i] = m.AddVar("")
			} else {
				vars[i] = m.AddIntVar("")
			}
			lo := big.NewRat(int64(rng.Intn(7)-3), 1)
			var up *big.Rat
			if rng.Intn(2) == 0 {
				up = new(big.Rat).Add(lo, big.NewRat(int64(rng.Intn(9)), 1))
			}
			m.SetBounds(vars[i], lo, up)
			obj.AddInt(vars[i], int64(rng.Intn(13)-4))
		}
		m.SetObjective(obj)
		for c := 0; c < 1+rng.Intn(3); c++ {
			l := NewLin()
			for i := range vars {
				l.Add(vars[i], big.NewRat(int64(rng.Intn(9)-3), int64(1+rng.Intn(2))))
			}
			m.AddConstraint("", l, Sense(rng.Intn(3)), big.NewRat(int64(rng.Intn(17)-4), int64(1+rng.Intn(2))))
		}
		fast, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, m)
		}
		oracle, err := m.SolveOracle()
		if err != nil {
			t.Fatalf("trial %d oracle: %v\n%s", trial, err, m)
		}
		if fast.FellBack {
			// Overflow fallback IS the oracle; agreement is trivial, but
			// record that the dispatcher said so honestly.
			continue
		}
		// Unbounded detection can legitimately differ in which status is
		// reported first only if the algorithms diverged — they must not.
		assertSolutionsEqual(t, fast, oracle, m)
	}
}

// TestLPFastMatchesOracle pins the pure LP path as well.
func TestLPFastMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 60; trial++ {
		m := randomIPETModel(rng)
		fast, err := m.SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := m.SolveLPOracle()
		if err != nil {
			t.Fatal(err)
		}
		assertSolutionsEqual(t, fast, oracle, m)
	}
}

// TestSolverStats asserts the solver statistics are populated: pivots on
// a nontrivial solve, and no fallback for in-range arithmetic.
func TestSolverStats(t *testing.T) {
	m := randomIPETModel(rand.New(rand.NewSource(53)))
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Pivots <= 0 {
		t.Errorf("Pivots = %d, want > 0", sol.Pivots)
	}
	if sol.FellBack {
		t.Error("FellBack = true on a small integer model")
	}
	if sol.Nodes <= 0 {
		t.Errorf("Nodes = %d, want > 0", sol.Nodes)
	}
}

// TestOverflowFallsBackToOracle forces int64 overflow (objective value
// beyond MaxInt64) and checks the solve silently completes on the oracle
// with the exact answer and FellBack set.
func TestOverflowFallsBackToOracle(t *testing.T) {
	m := NewModel()
	x, y := m.AddIntVar("x"), m.AddIntVar("y")
	huge := int64(1) << 62
	m.AddConstraintInt("cap", NewLin().AddInt(x, 1).AddInt(y, 1), LE, 3)
	m.SetObjective(NewLin().AddInt(x, huge).AddInt(y, huge))
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.FellBack {
		t.Fatal("expected overflow fallback")
	}
	want := new(big.Rat).SetInt64(3)
	want.Mul(want, new(big.Rat).SetInt64(huge))
	if sol.Status != Optimal || sol.Value.Cmp(want) != 0 {
		t.Fatalf("status %v value %s, want optimal %s", sol.Status, sol.Value.RatString(), want.RatString())
	}
}

// TestWarmReuseBitIdentical: a SolveWithReuse hit must return exactly
// the cold solution (phase 1 is objective-independent), with fewer
// pivots charged.
func TestWarmReuseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	m := randomIPETModel(rng)
	var reuse Reuse
	key := []int64{7}
	cold, err := m.SolveWithReuse(&reuse, key)
	if err != nil {
		t.Fatal(err)
	}
	if h, ms := reuse.Stats(); h != 0 || ms != 1 {
		t.Fatalf("after cold solve: hits=%d misses=%d", h, ms)
	}
	// New objective, same rows: warm path must hit and agree with a
	// fresh cold solve of the same model.
	obj := NewLin()
	for v := 0; v < m.NumVars(); v++ {
		obj.AddInt(Var(v), int64(v%5+1))
	}
	m.SetObjective(obj)
	warm, err := m.SolveWithReuse(&reuse, key)
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := reuse.Stats(); h != 1 {
		t.Fatalf("warm solve missed the snapshot (hits=%d)", h)
	}
	coldRef, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	assertSolutionsEqual(t, warm, coldRef, m)
	if warm.Pivots > coldRef.Pivots {
		t.Errorf("warm solve pivoted more than cold: %d > %d", warm.Pivots, coldRef.Pivots)
	}
	if cold.Pivots <= warm.Pivots {
		t.Errorf("warm solve did not skip phase-1 pivots: cold %d, warm %d", cold.Pivots, warm.Pivots)
	}
	// A different key must not hit.
	if _, err := m.SolveWithReuse(&reuse, []int64{8}); err != nil {
		t.Fatal(err)
	}
	if h, _ := reuse.Stats(); h != 1 {
		t.Fatalf("mismatched key hit the snapshot (hits=%d)", h)
	}
}

// FuzzILPOracle decodes arbitrary bytes into a small bounded ILP and
// cross-checks the fast path against the oracle.
func FuzzILPOracle(f *testing.F) {
	f.Add([]byte{2, 1, 3, 0, 200, 1, 2, 0, 5, 1, 1})
	f.Add([]byte{3, 2, 0, 0, 0, 9, 9, 9, 1, 2, 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		pos := 0
		next := func() int {
			b := data[pos%len(data)]
			pos++
			return int(b)
		}
		m := NewModel()
		n := 1 + next()%3
		vars := make([]Var, n)
		obj := NewLin()
		for i := range vars {
			vars[i] = m.AddIntVar("")
			m.SetBounds(vars[i], big.NewRat(0, 1), big.NewRat(int64(next()%6), 1))
			obj.AddInt(vars[i], int64(next()%15-5))
		}
		m.SetObjective(obj)
		nc := 1 + next()%3
		for c := 0; c < nc; c++ {
			l := NewLin()
			for i := range vars {
				l.AddInt(vars[i], int64(next()%9-3))
			}
			m.AddConstraintInt("", l, Sense(next()%3), int64(next()%13-3))
		}
		fast, err := m.Solve()
		if err != nil {
			t.Fatalf("fast: %v\n%s", err, m)
		}
		oracle, err := m.SolveOracle()
		if err != nil {
			t.Fatalf("oracle: %v\n%s", err, m)
		}
		assertSolutionsEqual(t, fast, oracle, m)
	})
}
