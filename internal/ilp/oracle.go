package ilp

import (
	"fmt"
	"math/big"
)

// This file is the retired dense exact-rational solver: the original
// two-phase big.Rat simplex plus branch and bound, kept as (a) the
// fallback when the fast int64 path overflows and (b) the oracle the
// fast path is differentially tested against. It implements exactly the
// same pivoting and branching rules as the fast path, so the two agree
// on the full solution vector, not just the objective.

// rtab is a dense exact-rational simplex tableau.
//
// Layout: rows[r][c] for c < ncols are coefficients, rows[r][ncols] is the
// right-hand side. cost holds reduced costs; cost[ncols] is the current
// objective value (stored as -z until optimality). basis[r] is the
// variable index basic in row r.
type rtab struct {
	rows  [][]*big.Rat
	cost  []*big.Rat
	basis []int
	ncols int
}

// oracleNode is one branch-and-bound subproblem: the shared immutable
// model plus private bounds.
type oracleNode struct {
	m      *Model
	lower  []*big.Rat
	upper  []*big.Rat // nil = +inf
	pivots *int
}

func (m *Model) oracleRoot(pivots *int) *oracleNode {
	n := m.NumVars()
	nd := &oracleNode{m: m, lower: make([]*big.Rat, n), upper: make([]*big.Rat, n), pivots: pivots}
	for v := 0; v < n; v++ {
		nd.lower[v] = m.lower[v].Rat()
		if !m.upinf[v] {
			nd.upper[v] = m.upper[v].Rat()
		}
	}
	return nd
}

func (nd *oracleNode) clone() *oracleNode {
	c := &oracleNode{m: nd.m, lower: make([]*big.Rat, len(nd.lower)), upper: make([]*big.Rat, len(nd.upper)), pivots: nd.pivots}
	for v := range nd.lower {
		c.lower[v] = new(big.Rat).Set(nd.lower[v])
		if nd.upper[v] != nil {
			c.upper[v] = new(big.Rat).Set(nd.upper[v])
		}
	}
	return c
}

// solveLP solves the LP relaxation of the node (ignoring integrality).
// The returned values are in original coordinates.
func (nd *oracleNode) solveLP() (*Solution, error) {
	m := nd.m
	n := m.NumVars()
	// Shift variables by lower bounds: y = x - l, y >= 0.
	// Build rows: structural constraints plus upper-bound rows.
	type row struct {
		coef  []*big.Rat
		sense Sense
		rhs   *big.Rat
	}
	var rows []row
	t := new(big.Rat)
	for _, c := range m.cons {
		coef := make([]*big.Rat, n)
		rhs := c.rhs.Rat()
		for i, v := range c.terms.vars {
			a := c.terms.coef[i].Rat()
			coef[v] = a
			rhs.Sub(rhs, t.Mul(a, nd.lower[v]))
		}
		rows = append(rows, row{coef: coef, sense: c.sense, rhs: rhs})
	}
	for v := 0; v < n; v++ {
		if nd.upper[v] == nil {
			continue
		}
		span := new(big.Rat).Sub(nd.upper[v], nd.lower[v])
		if span.Sign() < 0 {
			return &Solution{Status: Infeasible, Nodes: 1}, nil
		}
		coef := make([]*big.Rat, n)
		coef[v] = big.NewRat(1, 1)
		rows = append(rows, row{coef: coef, sense: LE, rhs: span})
	}
	// Normalize RHS >= 0.
	for i := range rows {
		if rows[i].rhs.Sign() < 0 {
			rows[i].rhs.Neg(rows[i].rhs)
			for v, a := range rows[i].coef {
				if a != nil {
					rows[i].coef[v] = a.Neg(a)
				}
			}
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
	}
	// Column layout: [0,n) structural, then slacks/surplus, then artificials.
	nSlack := 0
	for _, r := range rows {
		if r.sense != EQ {
			nSlack++
		}
	}
	nArt := 0
	for _, r := range rows {
		if r.sense != LE {
			nArt++
		}
	}
	ncols := n + nSlack + nArt
	tb := &rtab{ncols: ncols}
	slackAt, artAt := n, n+nSlack
	for _, r := range rows {
		tr := make([]*big.Rat, ncols+1)
		for c := range tr {
			tr[c] = new(big.Rat)
		}
		for v, a := range r.coef {
			if a != nil {
				tr[v].Set(a)
			}
		}
		tr[ncols].Set(r.rhs)
		basic := -1
		switch r.sense {
		case LE:
			tr[slackAt].SetInt64(1)
			basic = slackAt
			slackAt++
		case GE:
			tr[slackAt].SetInt64(-1)
			slackAt++
			tr[artAt].SetInt64(1)
			basic = artAt
			artAt++
		case EQ:
			tr[artAt].SetInt64(1)
			basic = artAt
			artAt++
		}
		tb.rows = append(tb.rows, tr)
		tb.basis = append(tb.basis, basic)
	}

	if nArt > 0 {
		// Phase 1: maximize -(sum of artificials).
		phase1 := make([]*big.Rat, ncols+1)
		for c := range phase1 {
			phase1[c] = new(big.Rat)
		}
		for c := n + nSlack; c < ncols; c++ {
			phase1[c].SetInt64(-1)
		}
		tb.cost = phase1
		tb.priceOut()
		if st := tb.run(nd.pivots); st != Optimal {
			return nil, fmt.Errorf("phase-1 simplex returned %v", st)
		}
		if tb.cost[ncols].Sign() != 0 {
			return &Solution{Status: Infeasible, Nodes: 1}, nil
		}
		tb.evictArtificials(n + nSlack)
	}
	// Phase 2: real objective. Note tb.ncols may have shrunk when
	// artificial columns were evicted.
	cost := make([]*big.Rat, tb.ncols+1)
	for c := range cost {
		cost[c] = new(big.Rat)
	}
	for i, v := range m.objective.vars {
		cost[v].Set(m.objective.coef[i].Rat())
	}
	tb.cost = cost
	tb.priceOut()
	if st := tb.run(nd.pivots); st != Optimal {
		return &Solution{Status: st, Nodes: 1}, nil
	}
	// Extract solution.
	x := make([]*big.Rat, n)
	for v := 0; v < n; v++ {
		x[v] = new(big.Rat).Set(nd.lower[v])
	}
	for r, b := range tb.basis {
		if b < n {
			x[b].Add(nd.lower[b], tb.rows[r][tb.ncols])
		}
	}
	return &Solution{Status: Optimal, Value: m.objective.Eval(x), X: x, Nodes: 1}, nil
}

// priceOut rewrites the cost row in terms of nonbasic variables by
// eliminating the basic columns.
func (tb *rtab) priceOut() {
	t := new(big.Rat)
	for r, b := range tb.basis {
		cb := tb.cost[b]
		if cb.Sign() == 0 {
			continue
		}
		f := new(big.Rat).Set(cb)
		for c := 0; c <= tb.ncols; c++ {
			if tb.rows[r][c].Sign() != 0 {
				tb.cost[c].Sub(tb.cost[c], t.Mul(f, tb.rows[r][c]))
			}
		}
		// cost[ncols] accumulated -f*rhs; objective value convention:
		// cost[ncols] tracks -z, negated to +z at optimality in run.
	}
}

// run performs primal simplex pivots with Bland's rule until optimality
// or unboundedness. The cost row must already be priced out.
func (tb *rtab) run(pivots *int) Status {
	for piv := 0; piv < maxPivots; piv++ {
		// Entering: smallest index with positive reduced cost.
		enter := -1
		for c := 0; c < tb.ncols; c++ {
			if tb.cost[c].Sign() > 0 {
				enter = c
				break
			}
		}
		if enter < 0 {
			// Optimal. Normalize stored objective value to +z.
			tb.cost[tb.ncols].Neg(tb.cost[tb.ncols])
			return Optimal
		}
		// Leaving: min ratio rhs/a over a > 0; ties by smallest basis var.
		leave := -1
		var best *big.Rat
		ratio := new(big.Rat)
		for r := 0; r < len(tb.rows); r++ {
			a := tb.rows[r][enter]
			if a.Sign() <= 0 {
				continue
			}
			ratio.Quo(tb.rows[r][tb.ncols], a)
			switch {
			case leave < 0 || ratio.Cmp(best) < 0:
				leave = r
				best = new(big.Rat).Set(ratio)
			case ratio.Cmp(best) == 0 && tb.basis[r] < tb.basis[leave]:
				leave = r
			}
		}
		if leave < 0 {
			return Unbounded
		}
		tb.pivot(leave, enter)
		*pivots++
	}
	panic("ilp: simplex exceeded pivot budget (cycling bug)")
}

// pivot makes column c basic in row r.
func (tb *rtab) pivot(r, c int) {
	prow := tb.rows[r]
	inv := new(big.Rat).Inv(prow[c])
	for j := 0; j <= tb.ncols; j++ {
		prow[j].Mul(prow[j], inv)
	}
	t := new(big.Rat)
	for i := 0; i < len(tb.rows); i++ {
		if i == r || tb.rows[i][c].Sign() == 0 {
			continue
		}
		f := new(big.Rat).Set(tb.rows[i][c])
		for j := 0; j <= tb.ncols; j++ {
			if prow[j].Sign() != 0 {
				tb.rows[i][j].Sub(tb.rows[i][j], t.Mul(f, prow[j]))
			}
		}
	}
	if tb.cost[c].Sign() != 0 {
		f := new(big.Rat).Set(tb.cost[c])
		for j := 0; j <= tb.ncols; j++ {
			if prow[j].Sign() != 0 {
				tb.cost[j].Sub(tb.cost[j], t.Mul(f, prow[j]))
			}
		}
	}
	tb.basis[r] = c
}

// evictArtificials pivots artificial variables out of the basis after a
// successful phase 1, dropping redundant rows.
func (tb *rtab) evictArtificials(firstArt int) {
	var keepRows [][]*big.Rat
	var keepBasis []int
	for r := 0; r < len(tb.rows); r++ {
		if tb.basis[r] < firstArt {
			keepRows = append(keepRows, tb.rows[r])
			keepBasis = append(keepBasis, tb.basis[r])
			continue
		}
		// Artificial basic at value 0 (phase 1 succeeded): pivot on any
		// non-artificial column with nonzero coefficient, else the row is
		// redundant and dropped.
		pivoted := false
		for c := 0; c < firstArt; c++ {
			if tb.rows[r][c].Sign() != 0 {
				tb.pivot(r, c)
				pivoted = true
				break
			}
		}
		if pivoted {
			keepRows = append(keepRows, tb.rows[r])
			keepBasis = append(keepBasis, tb.basis[r])
		}
	}
	tb.rows = keepRows
	tb.basis = keepBasis
	// Truncate artificial columns.
	tb.ncols = firstArt
	for r := range tb.rows {
		tb.rows[r] = append(tb.rows[r][:firstArt], tb.rows[r][len(tb.rows[r])-1])
	}
}

// oracleSolveLP solves the LP relaxation with exact big.Rat arithmetic.
func (m *Model) oracleSolveLP() (*Solution, error) {
	pivots := 0
	sol, err := m.oracleRoot(&pivots).solveLP()
	if sol != nil {
		sol.Pivots = pivots
	}
	return sol, err
}

// oracleSolve maximizes the objective with exact big.Rat arithmetic,
// enforcing integrality by depth-first branch and bound.
func (m *Model) oracleSolve() (*Solution, error) {
	pivots := 0
	rootNode := m.oracleRoot(&pivots)
	root, err := rootNode.solveLP()
	if err != nil {
		return nil, err
	}
	if root.Status != Optimal {
		root.Pivots = pivots
		return root, nil
	}
	var best *Solution
	nodes := 0
	half := big.NewRat(1, 2)

	var descend func(node *oracleNode, lp *Solution) error
	descend = func(node *oracleNode, lp *Solution) error {
		nodes++
		if nodes > maxNodes {
			return fmt.Errorf("ilp: branch-and-bound exceeded %d nodes", maxNodes)
		}
		if best != nil && lp.Value.Cmp(best.Value) <= 0 {
			return nil // cannot beat the incumbent
		}
		// Find the most fractional integer variable.
		branch := -1
		var branchDist *big.Rat
		frac := new(big.Rat)
		for v := range m.integer {
			if !m.integer[v] || lp.X[v].IsInt() {
				continue
			}
			// Distance from nearest half-integer measures fractionality:
			// |frac(x) - 1/2| smallest = most fractional.
			f := fracPart(lp.X[v])
			frac.Sub(f, half)
			frac.Abs(frac)
			if branch < 0 || frac.Cmp(branchDist) < 0 {
				branch = v
				branchDist = new(big.Rat).Set(frac)
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			if best == nil || lp.Value.Cmp(best.Value) > 0 {
				best = lp
			}
			return nil
		}
		fl := floorRat(lp.X[branch])
		// Down branch: x <= floor.
		down := node.clone()
		upBound := new(big.Rat).Set(fl)
		if down.upper[branch] == nil || down.upper[branch].Cmp(upBound) > 0 {
			down.upper[branch] = upBound
		}
		if down.lower[branch].Cmp(down.upper[branch]) <= 0 {
			if lp2, err := down.solveLP(); err != nil {
				return err
			} else if lp2.Status == Optimal {
				if err := descend(down, lp2); err != nil {
					return err
				}
			}
		}
		// Up branch: x >= floor+1.
		up := node.clone()
		loBound := new(big.Rat).Add(fl, big.NewRat(1, 1))
		if up.lower[branch].Cmp(loBound) < 0 {
			up.lower[branch] = loBound
		}
		if up.upper[branch] == nil || up.lower[branch].Cmp(up.upper[branch]) <= 0 {
			if lp2, err := up.solveLP(); err != nil {
				return err
			} else if lp2.Status == Optimal {
				if err := descend(up, lp2); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := descend(rootNode, root); err != nil {
		return nil, err
	}
	if best == nil {
		return &Solution{Status: Infeasible, Nodes: nodes, Pivots: pivots}, nil
	}
	best.Nodes = nodes
	best.Pivots = pivots
	return best, nil
}

// fracPart returns x - floor(x) in [0, 1).
func fracPart(x *big.Rat) *big.Rat {
	return new(big.Rat).Sub(x, floorRat(x))
}

// floorRat returns floor(x) as a rational.
func floorRat(x *big.Rat) *big.Rat {
	q := new(big.Int).Quo(x.Num(), x.Denom())
	if x.Sign() < 0 && !x.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	return new(big.Rat).SetInt(q)
}
