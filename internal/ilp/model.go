// Package ilp provides an exact integer linear programming solver for
// the IPET models at the heart of static WCET analysis: a two-phase
// primal simplex for the LP relaxation and depth-first branch and bound
// for integrality, offline and self-contained — no external solver.
//
// The hot path runs on a sparse tableau over overflow-checked int64
// rationals (IPET models are all-integer, so machine words suffice in
// practice); any arithmetic overflow aborts the fast solve and the model
// is re-solved by the retired dense math/big oracle, which remains the
// exact reference the fast path is differentially tested against. Both
// paths implement the same pivoting rules (Bland's entering rule, min
// ratio with smallest-basis tie break, identical branching order), so
// they produce identical solutions, not merely identical objectives.
package ilp

import (
	"fmt"
	"math/big"
	"slices"
	"strings"
)

// Var is a variable handle within one Model.
type Var int

// Sense is a constraint comparison direction.
type Sense uint8

// Constraint senses.
const (
	LE Sense = iota // Σ aᵢxᵢ ≤ b
	GE              // Σ aᵢxᵢ ≥ b
	EQ              // Σ aᵢxᵢ = b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Lin is a sparse linear expression Σ coef·var, kept sorted by variable
// index, so iteration — and therefore rendering — is deterministic by
// construction. Coefficients are exact int64 rationals; values outside
// that range panic (IPET models never produce them).
type Lin struct {
	vars []Var
	coef []rat64
}

// NewLin returns an empty linear expression.
func NewLin() *Lin { return &Lin{} }

// Len returns the number of (nonzero) terms.
func (l *Lin) Len() int { return len(l.vars) }

// addRat accumulates c·v, keeping terms sorted and dropping zeros.
func (l *Lin) addRat(v Var, c rat64) *Lin {
	if c.n == 0 {
		return l
	}
	i, ok := slices.BinarySearch(l.vars, v)
	if ok {
		s, okAdd := l.coef[i].add(c)
		if !okAdd {
			panic("ilp: Lin coefficient overflows int64")
		}
		if s.n == 0 {
			l.vars = slices.Delete(l.vars, i, i+1)
			l.coef = slices.Delete(l.coef, i, i+1)
		} else {
			l.coef[i] = s
		}
		return l
	}
	l.vars = slices.Insert(l.vars, i, v)
	l.coef = slices.Insert(l.coef, i, c)
	return l
}

// Add accumulates coef·v into the expression and returns it for chaining.
// The coefficient must fit an int64 rational.
func (l *Lin) Add(v Var, coef *big.Rat) *Lin {
	c, ok := rat64FromBig(coef)
	if !ok {
		panic(fmt.Sprintf("ilp: coefficient %s does not fit int64", coef.RatString()))
	}
	return l.addRat(v, c)
}

// AddInt accumulates an integer coefficient.
func (l *Lin) AddInt(v Var, coef int64) *Lin { return l.addRat(v, rat64{coef, 1}) }

// Coef returns the coefficient of v, or nil if absent.
func (l *Lin) Coef(v Var) *big.Rat {
	if i, ok := slices.BinarySearch(l.vars, v); ok {
		return l.coef[i].Rat()
	}
	return nil
}

// Clone returns a deep copy.
func (l *Lin) Clone() *Lin {
	return &Lin{vars: slices.Clone(l.vars), coef: slices.Clone(l.coef)}
}

// Eval evaluates the expression at the given point.
func (l *Lin) Eval(x []*big.Rat) *big.Rat {
	sum := new(big.Rat)
	t := new(big.Rat)
	for i, v := range l.vars {
		sum.Add(sum, t.Mul(l.coef[i].Rat(), x[v]))
	}
	return sum
}

type constraint struct {
	name  string
	terms *Lin
	sense Sense
	rhs   rat64
}

// Model is an ILP/LP model. Variables have a finite lower bound
// (default 0) and an optional upper bound; integrality is per-variable.
// The objective is always maximized (negate coefficients to minimize).
// All inputs must fit int64 rationals.
type Model struct {
	names     []string // "" = lazily derived "v%d"
	integer   []bool
	lower     []rat64
	upper     []rat64 // valid only where upinf is false
	upinf     []bool  // true = +inf
	objective *Lin
	cons      []constraint
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{objective: NewLin()} }

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.names) }

// NumCons returns the number of constraints.
func (m *Model) NumCons() int { return len(m.cons) }

// AddVar adds a continuous variable with bounds [0, +inf). An empty name
// is allowed: Name derives "v%d" lazily, keeping hot model construction
// free of string formatting.
func (m *Model) AddVar(name string) Var {
	m.names = append(m.names, name)
	m.integer = append(m.integer, false)
	m.lower = append(m.lower, r64Zero)
	m.upper = append(m.upper, r64Zero)
	m.upinf = append(m.upinf, true)
	return Var(len(m.names) - 1)
}

// AddIntVar adds an integer variable with bounds [0, +inf).
func (m *Model) AddIntVar(name string) Var {
	v := m.AddVar(name)
	m.integer[v] = true
	return v
}

// SetBounds sets the variable bounds; upper may be nil for +inf. The
// lower bound must be finite.
func (m *Model) SetBounds(v Var, lower, upper *big.Rat) {
	lo := r64Zero
	if lower != nil {
		var ok bool
		if lo, ok = rat64FromBig(lower); !ok {
			panic(fmt.Sprintf("ilp: lower bound %s does not fit int64", lower.RatString()))
		}
	}
	m.lower[v] = lo
	if upper == nil {
		m.upper[v] = r64Zero
		m.upinf[v] = true
		return
	}
	up, ok := rat64FromBig(upper)
	if !ok {
		panic(fmt.Sprintf("ilp: upper bound %s does not fit int64", upper.RatString()))
	}
	m.upper[v] = up
	m.upinf[v] = false
}

// Name returns the variable's name ("v%d" when none was given).
func (m *Model) Name(v Var) string {
	if m.names[v] != "" {
		return m.names[v]
	}
	return fmt.Sprintf("v%d", int(v))
}

// AddConstraint appends a constraint. The terms are copied.
func (m *Model) AddConstraint(name string, terms *Lin, sense Sense, rhs *big.Rat) {
	r, ok := rat64FromBig(rhs)
	if !ok {
		panic(fmt.Sprintf("ilp: rhs %s does not fit int64", rhs.RatString()))
	}
	m.cons = append(m.cons, constraint{name: name, terms: terms.Clone(), sense: sense, rhs: r})
}

// AddConstraintInt is AddConstraint with an integer right-hand side.
func (m *Model) AddConstraintInt(name string, terms *Lin, sense Sense, rhs int64) {
	m.cons = append(m.cons, constraint{name: name, terms: terms.Clone(), sense: sense, rhs: rat64{rhs, 1}})
}

// SetObjective replaces the (maximized) objective.
func (m *Model) SetObjective(terms *Lin) { m.objective = terms.Clone() }

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := &Model{
		names:     slices.Clone(m.names),
		integer:   slices.Clone(m.integer),
		lower:     slices.Clone(m.lower),
		upper:     slices.Clone(m.upper),
		upinf:     slices.Clone(m.upinf),
		objective: m.objective.Clone(),
		cons:      make([]constraint, len(m.cons)),
	}
	for i, con := range m.cons {
		c.cons[i] = constraint{name: con.name, terms: con.terms.Clone(), sense: con.sense, rhs: con.rhs}
	}
	return c
}

// Fork returns a shallow extension point for the model: the receiver's
// variables and constraints are shared (copy-on-append — every slice is
// capacity-clipped, so appending to the fork never mutates the parent),
// and new variables, constraints and a new objective can be added
// cheaply. Fork is how an immutable compiled skeleton (flow structure
// built once per CFG) is specialized into per-scenario instances; it is
// safe to Fork one parent from many goroutines concurrently, provided
// the parent is no longer mutated directly.
func (m *Model) Fork() *Model {
	return &Model{
		names:     slices.Clip(m.names),
		integer:   slices.Clip(m.integer),
		lower:     slices.Clip(m.lower),
		upper:     slices.Clip(m.upper),
		upinf:     slices.Clip(m.upinf),
		objective: m.objective, // replaced via SetObjective before solving
		cons:      slices.Clip(m.cons),
	}
}

// String renders the model in LP-like text form for debugging. Output is
// deterministic: Lin terms are sorted by variable index by construction.
func (m *Model) String() string {
	var sb strings.Builder
	sb.WriteString("max ")
	sb.WriteString(m.linString(m.objective))
	sb.WriteString("\ns.t.\n")
	for _, c := range m.cons {
		fmt.Fprintf(&sb, "  %s: %s %s %s\n", c.name, m.linString(c.terms), c.sense, c.rhs.Rat().RatString())
	}
	for i := range m.names {
		up := "+inf"
		if !m.upinf[i] {
			up = m.upper[i].Rat().RatString()
		}
		kind := ""
		if m.integer[i] {
			kind = " int"
		}
		fmt.Fprintf(&sb, "  %s in [%s, %s]%s\n", m.Name(Var(i)), m.lower[i].Rat().RatString(), up, kind)
	}
	return sb.String()
}

func (m *Model) linString(l *Lin) string {
	if l.Len() == 0 {
		return "0"
	}
	parts := make([]string, l.Len())
	for i, v := range l.vars {
		parts[i] = fmt.Sprintf("%s*%s", l.coef[i].Rat().RatString(), m.Name(v))
	}
	return strings.Join(parts, " + ")
}

// Status reports the outcome of a solve.
type Status uint8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "?"
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	Value  *big.Rat   // objective value (valid when Optimal)
	X      []*big.Rat // variable values (valid when Optimal)

	// Nodes is the number of branch-and-bound nodes explored (1 for a
	// pure LP).
	Nodes int
	// Pivots counts simplex pivots across all LP solves (phase-1 pivots
	// skipped by a warm-started re-solve are not re-counted).
	Pivots int
	// FellBack reports that int64 arithmetic overflowed and the solution
	// was produced by the exact big.Rat oracle instead.
	FellBack bool
}

// ValueFloat returns the objective as a float64 for reporting.
func (s *Solution) ValueFloat() float64 {
	f, _ := s.Value.Float64()
	return f
}

// IntValue returns variable v rounded to the nearest integer; it panics if
// the value is not integral (callers use it only for integer variables of
// an Optimal solution).
func (s *Solution) IntValue(v Var) int64 {
	if !s.X[v].IsInt() {
		panic(fmt.Sprintf("variable %d is not integral: %s", v, s.X[v].RatString()))
	}
	return s.X[v].Num().Int64()
}
