// Package ilp provides an exact integer linear programming solver built on
// math/big rational arithmetic: a two-phase primal simplex for the LP
// relaxation and depth-first branch and bound for integrality.
//
// It exists because the Implicit Path Enumeration Technique (IPET) at the
// heart of static WCET analysis formulates the longest-path problem as an
// ILP, and the paratime toolkit is offline and self-contained — no external
// solver. Exact rationals sidestep the numerical-tolerance pitfalls of
// floating-point simplex at the modest model sizes IPET produces
// (hundreds of variables and constraints).
package ilp

import (
	"fmt"
	"math/big"
	"slices"
	"strings"
)

// Var is a variable handle within one Model.
type Var int

// Sense is a constraint comparison direction.
type Sense uint8

// Constraint senses.
const (
	LE Sense = iota // Σ aᵢxᵢ ≤ b
	GE              // Σ aᵢxᵢ ≥ b
	EQ              // Σ aᵢxᵢ = b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Lin is a sparse linear expression Σ coef·var.
type Lin map[Var]*big.Rat

// NewLin returns an empty linear expression.
func NewLin() Lin { return Lin{} }

// Add accumulates coef·v into the expression and returns it for chaining.
func (l Lin) Add(v Var, coef *big.Rat) Lin {
	if c, ok := l[v]; ok {
		c.Add(c, coef)
		if c.Sign() == 0 {
			delete(l, v)
		}
		return l
	}
	if coef.Sign() != 0 {
		l[v] = new(big.Rat).Set(coef)
	}
	return l
}

// AddInt accumulates an integer coefficient.
func (l Lin) AddInt(v Var, coef int64) Lin { return l.Add(v, big.NewRat(coef, 1)) }

// Clone returns a deep copy.
func (l Lin) Clone() Lin {
	out := make(Lin, len(l))
	for v, c := range l {
		out[v] = new(big.Rat).Set(c)
	}
	return out
}

// Eval evaluates the expression at the given point.
func (l Lin) Eval(x []*big.Rat) *big.Rat {
	sum := new(big.Rat)
	t := new(big.Rat)
	for v, c := range l {
		sum.Add(sum, t.Mul(c, x[v]))
	}
	return new(big.Rat).Set(sum)
}

type constraint struct {
	name  string
	terms Lin
	sense Sense
	rhs   *big.Rat
}

// Model is an ILP/LP model. Variables have a finite lower bound
// (default 0) and an optional upper bound; integrality is per-variable.
// The objective is always maximized (negate coefficients to minimize).
type Model struct {
	names     []string
	integer   []bool
	lower     []*big.Rat
	upper     []*big.Rat // nil = +inf
	objective Lin
	cons      []constraint
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{objective: NewLin()} }

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.names) }

// NumCons returns the number of constraints.
func (m *Model) NumCons() int { return len(m.cons) }

// AddVar adds a continuous variable with bounds [0, +inf).
func (m *Model) AddVar(name string) Var {
	m.names = append(m.names, name)
	m.integer = append(m.integer, false)
	m.lower = append(m.lower, new(big.Rat))
	m.upper = append(m.upper, nil)
	return Var(len(m.names) - 1)
}

// AddIntVar adds an integer variable with bounds [0, +inf).
func (m *Model) AddIntVar(name string) Var {
	v := m.AddVar(name)
	m.integer[v] = true
	return v
}

// SetBounds sets the variable bounds; upper may be nil for +inf. The lower
// bound must be finite and ≤ upper.
func (m *Model) SetBounds(v Var, lower, upper *big.Rat) {
	if lower == nil {
		lower = new(big.Rat)
	}
	m.lower[v] = new(big.Rat).Set(lower)
	if upper == nil {
		m.upper[v] = nil
	} else {
		m.upper[v] = new(big.Rat).Set(upper)
	}
}

// Name returns the variable's name.
func (m *Model) Name(v Var) string { return m.names[v] }

// AddConstraint appends a constraint. The terms are copied.
func (m *Model) AddConstraint(name string, terms Lin, sense Sense, rhs *big.Rat) {
	m.cons = append(m.cons, constraint{
		name:  name,
		terms: terms.Clone(),
		sense: sense,
		rhs:   new(big.Rat).Set(rhs),
	})
}

// AddConstraintInt is AddConstraint with an integer right-hand side.
func (m *Model) AddConstraintInt(name string, terms Lin, sense Sense, rhs int64) {
	m.AddConstraint(name, terms, sense, big.NewRat(rhs, 1))
}

// SetObjective replaces the (maximized) objective.
func (m *Model) SetObjective(terms Lin) { m.objective = terms.Clone() }

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := &Model{
		names:     append([]string(nil), m.names...),
		integer:   append([]bool(nil), m.integer...),
		objective: m.objective.Clone(),
	}
	c.lower = make([]*big.Rat, len(m.lower))
	c.upper = make([]*big.Rat, len(m.upper))
	for i := range m.lower {
		c.lower[i] = new(big.Rat).Set(m.lower[i])
		if m.upper[i] != nil {
			c.upper[i] = new(big.Rat).Set(m.upper[i])
		}
	}
	c.cons = make([]constraint, len(m.cons))
	for i, con := range m.cons {
		c.cons[i] = constraint{name: con.name, terms: con.terms.Clone(), sense: con.sense, rhs: new(big.Rat).Set(con.rhs)}
	}
	return c
}

// String renders the model in LP-like text form for debugging.
func (m *Model) String() string {
	var sb strings.Builder
	sb.WriteString("max ")
	sb.WriteString(m.linString(m.objective))
	sb.WriteString("\ns.t.\n")
	for _, c := range m.cons {
		fmt.Fprintf(&sb, "  %s: %s %s %s\n", c.name, m.linString(c.terms), c.sense, c.rhs.RatString())
	}
	for i := range m.names {
		up := "+inf"
		if m.upper[i] != nil {
			up = m.upper[i].RatString()
		}
		kind := ""
		if m.integer[i] {
			kind = " int"
		}
		fmt.Fprintf(&sb, "  %s in [%s, %s]%s\n", m.names[i], m.lower[i].RatString(), up, kind)
	}
	return sb.String()
}

func (m *Model) linString(l Lin) string {
	vars := make([]Var, 0, len(l))
	for v := range l {
		vars = append(vars, v)
	}
	slices.Sort(vars)
	var parts []string
	for _, v := range vars {
		parts = append(parts, fmt.Sprintf("%s*%s", l[v].RatString(), m.names[v]))
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}

// Status reports the outcome of a solve.
type Status uint8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "?"
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	Value  *big.Rat   // objective value (valid when Optimal)
	X      []*big.Rat // variable values (valid when Optimal)

	// Nodes is the number of branch-and-bound nodes explored (1 for a
	// pure LP).
	Nodes int
}

// ValueFloat returns the objective as a float64 for reporting.
func (s *Solution) ValueFloat() float64 {
	f, _ := s.Value.Float64()
	return f
}

// IntValue returns variable v rounded to the nearest integer; it panics if
// the value is not integral (callers use it only for integer variables of
// an Optimal solution).
func (s *Solution) IntValue(v Var) int64 {
	if !s.X[v].IsInt() {
		panic(fmt.Sprintf("variable %d is not integral: %s", v, s.X[v].RatString()))
	}
	return s.X[v].Num().Int64()
}
