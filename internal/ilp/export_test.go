package ilp

// Test-only exports: the differential suites pin the fast int64 path
// against the retired big.Rat oracle.

// SolveOracle solves with the exact big.Rat oracle unconditionally.
func (m *Model) SolveOracle() (*Solution, error) { return m.oracleSolve() }

// SolveLPOracle solves the LP relaxation with the oracle.
func (m *Model) SolveLPOracle() (*Solution, error) { return m.oracleSolveLP() }
