package ilp

import (
	"math"
	"math/big"
	"math/bits"
)

// rat64 is an exact rational with int64 numerator and denominator. The
// denominator is always positive and gcd(|n|, d) == 1. It is the scalar
// of the fast solver path: IPET models are all-integer, so coefficients,
// bounds and tableau entries fit comfortably in machine words; every
// operation is overflow-checked and the solver falls back to the exact
// big.Rat oracle when a computation would leave the representable range.
type rat64 struct {
	n int64
	d int64
}

var (
	r64Zero = rat64{0, 1}
	r64One  = rat64{1, 1}
)

// gcd64 returns the positive gcd of |a| and |b|; gcd64(0, 0) == 1 so it
// can be used unconditionally as a divisor. Magnitudes are taken in
// uint64 so MinInt64 (whose int64 negation is a no-op) cannot produce a
// negative result; the one unrepresentable case — a gcd of exactly 2^63,
// possible only when both inputs are MinInt64 or zero — clamps to 1,
// which merely skips a reduction and never changes a value.
func gcd64(a, b int64) int64 {
	ua, ub := abs64(a), abs64(b)
	for ub != 0 {
		ua, ub = ub, ua%ub
	}
	if ua == 0 || ua > math.MaxInt64 {
		return 1
	}
	return int64(ua)
}

// addOvf returns a+b, reporting overflow.
func addOvf(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// mulOvf returns a*b, reporting overflow.
func mulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// mkRat64 builds a reduced rat64 from n/d. MinInt64 components are
// rejected as overflow: their negation is a no-op in two's complement,
// which would silently break the d > 0 invariant (and sign/floor with
// it) instead of triggering the big.Rat fallback.
func mkRat64(n, d int64) (rat64, bool) {
	if d == 0 || n == math.MinInt64 || d == math.MinInt64 {
		return rat64{}, false
	}
	if d < 0 {
		n, d = -n, -d
	}
	g := gcd64(n, d)
	return rat64{n / g, d / g}, true
}

func (r rat64) sign() int {
	switch {
	case r.n > 0:
		return 1
	case r.n < 0:
		return -1
	default:
		return 0
	}
}

func (r rat64) isInt() bool { return r.d == 1 }

// floor returns ⌊r⌋.
func (r rat64) floor() int64 {
	q := r.n / r.d
	if r.n < 0 && r.n%r.d != 0 {
		q--
	}
	return q
}

// cmpProd compares a*b with c*d exactly in 128-bit arithmetic.
func cmpProd(a, b, c, d int64) int {
	sl := sign128(a) * sign128(b)
	sr := sign128(c) * sign128(d)
	if sl != sr {
		if sl < sr {
			return -1
		}
		return 1
	}
	lh, ll := bits.Mul64(abs64(a), abs64(b))
	rh, rl := bits.Mul64(abs64(c), abs64(d))
	cmp := 0
	if lh != rh {
		if lh < rh {
			cmp = -1
		} else {
			cmp = 1
		}
	} else if ll != rl {
		if ll < rl {
			cmp = -1
		} else {
			cmp = 1
		}
	}
	if sl < 0 {
		cmp = -cmp
	}
	return cmp
}

func sign128(a int64) int {
	switch {
	case a > 0:
		return 1
	case a < 0:
		return -1
	default:
		return 0
	}
}

func abs64(a int64) uint64 {
	if a < 0 {
		return uint64(-uint64(a))
	}
	return uint64(a)
}

// cmp compares r with o exactly (no overflow possible).
func (r rat64) cmp(o rat64) int { return cmpProd(r.n, o.d, o.n, r.d) }

// add returns r+o, reporting overflow.
func (r rat64) add(o rat64) (rat64, bool) {
	// n1/d1 + n2/d2 = (n1*(d2/g) + n2*(d1/g)) / (d1*(d2/g)) with g=gcd(d1,d2).
	g := gcd64(r.d, o.d)
	od := o.d / g
	a, ok1 := mulOvf(r.n, od)
	b, ok2 := mulOvf(o.n, r.d/g)
	if !ok1 || !ok2 {
		return rat64{}, false
	}
	n, ok := addOvf(a, b)
	if !ok {
		return rat64{}, false
	}
	d, ok := mulOvf(r.d, od)
	if !ok {
		return rat64{}, false
	}
	return mkRat64(n, d)
}

// sub returns r-o, reporting overflow.
func (r rat64) sub(o rat64) (rat64, bool) {
	if o.n == math.MinInt64 {
		return rat64{}, false
	}
	return r.add(rat64{-o.n, o.d})
}

// mul returns r*o, reporting overflow. Cross-reduction keeps the
// intermediate products as small as possible.
func (r rat64) mul(o rat64) (rat64, bool) {
	g1 := gcd64(r.n, o.d)
	g2 := gcd64(o.n, r.d)
	n, ok1 := mulOvf(r.n/g1, o.n/g2)
	d, ok2 := mulOvf(r.d/g2, o.d/g1)
	if !ok1 || !ok2 {
		return rat64{}, false
	}
	return mkRat64(n, d)
}

// Rat returns the value as a big.Rat (always exact).
func (r rat64) Rat() *big.Rat { return big.NewRat(r.n, r.d) }

// rat64FromBig converts a big.Rat, reporting whether it fits.
func rat64FromBig(x *big.Rat) (rat64, bool) {
	if !x.Num().IsInt64() || !x.Denom().IsInt64() {
		return rat64{}, false
	}
	return mkRat64(x.Num().Int64(), x.Denom().Int64())
}
