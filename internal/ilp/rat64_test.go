package ilp

import (
	"math"
	"math/big"
	"testing"
)

func TestGcd64Positive(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{12, 18, 6},
		{-12, 18, 6},
		{0, 0, 1},
		{0, 7, 7},
		{math.MinInt64, 6, 2},
		{math.MinInt64, 0, 1}, // gcd 2^63 unrepresentable: clamps to 1
		{math.MinInt64, math.MinInt64, 1},
		{1, math.MinInt64, 1},
	}
	for _, c := range cases {
		if got := gcd64(c.a, c.b); got != c.want {
			t.Errorf("gcd64(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := gcd64(c.a, c.b); got <= 0 {
			t.Errorf("gcd64(%d, %d) = %d, not positive", c.a, c.b, got)
		}
	}
}

// TestRat64MinInt64IsOverflow: operations whose exact result has a
// MinInt64 numerator (or that receive MinInt64 components) must report
// overflow — two's-complement negation of MinInt64 is a no-op, so
// letting it through would break the d > 0 / reduced invariants and
// corrupt sign and floor, silently skipping the big.Rat fallback.
func TestRat64MinInt64IsOverflow(t *testing.T) {
	// Exact sum is MinInt64/6 — representable range-wise, but rejected.
	a := rat64{-3074457345618258602, 2}
	b := rat64{-1, 3}
	if got, ok := a.add(b); ok {
		if got.d <= 0 || got.sign() >= 0 {
			t.Fatalf("add produced corrupt rat64 %+v", got)
		}
	}
	if _, ok := mkRat64(math.MinInt64, 6); ok {
		t.Error("mkRat64 accepted a MinInt64 numerator")
	}
	if _, ok := mkRat64(1, math.MinInt64); ok {
		t.Error("mkRat64 accepted a MinInt64 denominator")
	}
}

// TestSolveNearMinInt64FallsBack: a model that drives the fast path
// into the MinInt64 corner must return the exact oracle answer with
// FellBack set, not a corrupted fast result.
func TestSolveNearMinInt64FallsBack(t *testing.T) {
	m := NewModel()
	x := m.AddIntVar("x")
	m.SetBounds(x, big.NewRat(0, 1), big.NewRat(3, 1))
	// Objective coefficient -(2^62+...) — sums toward MinInt64.
	m.SetObjective(NewLin().AddInt(x, -3074457345618258602))
	m.AddConstraintInt("lo", NewLin().AddInt(x, 1), GE, 3)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := m.SolveOracle()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != oracle.Status || sol.Value.Cmp(oracle.Value) != 0 {
		t.Fatalf("solve %v %s, oracle %v %s", sol.Status, sol.Value.RatString(),
			oracle.Status, oracle.Value.RatString())
	}
}
