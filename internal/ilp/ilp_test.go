package ilp

import (
	"math/big"
	"math/rand"
	"testing"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

// mustOptimal solves and asserts optimality.
func mustOptimal(t *testing.T, m *Model) *Solution {
	t.Helper()
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal\n%s", sol.Status, m)
	}
	return sol
}

func TestLPSimple2D(t *testing.T) {
	// max 3x + 2y s.t. x+y <= 4, x+3y <= 6 -> x=4, y=0, obj=12.
	m := NewModel()
	x, y := m.AddVar("x"), m.AddVar("y")
	m.AddConstraintInt("c1", NewLin().AddInt(x, 1).AddInt(y, 1), LE, 4)
	m.AddConstraintInt("c2", NewLin().AddInt(x, 1).AddInt(y, 3), LE, 6)
	m.SetObjective(NewLin().AddInt(x, 3).AddInt(y, 2))
	sol := mustOptimal(t, m)
	if sol.Value.Cmp(rat(12, 1)) != 0 {
		t.Errorf("obj = %s, want 12", sol.Value.RatString())
	}
	if sol.X[x].Cmp(rat(4, 1)) != 0 || sol.X[y].Sign() != 0 {
		t.Errorf("x,y = %s,%s want 4,0", sol.X[x].RatString(), sol.X[y].RatString())
	}
}

func TestLPFractionalOptimum(t *testing.T) {
	// max x + y s.t. 2x+y <= 3, x+2y <= 3 -> x=y=1 obj=2 (integral corner);
	// change to 2x+y<=2, x+2y<=2 -> x=y=2/3, obj=4/3.
	m := NewModel()
	x, y := m.AddVar("x"), m.AddVar("y")
	m.AddConstraintInt("c1", NewLin().AddInt(x, 2).AddInt(y, 1), LE, 2)
	m.AddConstraintInt("c2", NewLin().AddInt(x, 1).AddInt(y, 2), LE, 2)
	m.SetObjective(NewLin().AddInt(x, 1).AddInt(y, 1))
	sol, err := m.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value.Cmp(rat(4, 3)) != 0 {
		t.Errorf("obj = %s, want 4/3", sol.Value.RatString())
	}
}

func TestLPEqualityAndGE(t *testing.T) {
	// max x s.t. x + y = 10, x >= 2, y >= 3  -> x = 7.
	m := NewModel()
	x, y := m.AddVar("x"), m.AddVar("y")
	m.AddConstraintInt("sum", NewLin().AddInt(x, 1).AddInt(y, 1), EQ, 10)
	m.AddConstraintInt("xmin", NewLin().AddInt(x, 1), GE, 2)
	m.AddConstraintInt("ymin", NewLin().AddInt(y, 1), GE, 3)
	m.SetObjective(NewLin().AddInt(x, 1))
	sol := mustOptimal(t, m)
	if sol.Value.Cmp(rat(7, 1)) != 0 {
		t.Errorf("obj = %s, want 7", sol.Value.RatString())
	}
}

func TestLPInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x")
	m.AddConstraintInt("lo", NewLin().AddInt(x, 1), GE, 5)
	m.AddConstraintInt("hi", NewLin().AddInt(x, 1), LE, 3)
	m.SetObjective(NewLin().AddInt(x, 1))
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestLPUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x")
	m.AddConstraintInt("lo", NewLin().AddInt(x, 1), GE, 1)
	m.SetObjective(NewLin().AddInt(x, 1))
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestLPNegativeLowerBound(t *testing.T) {
	// max -x with x in [-5, 10] -> x = -5, obj = 5.
	m := NewModel()
	x := m.AddVar("x")
	m.SetBounds(x, rat(-5, 1), rat(10, 1))
	m.SetObjective(NewLin().AddInt(x, -1))
	sol := mustOptimal(t, m)
	if sol.Value.Cmp(rat(5, 1)) != 0 || sol.X[x].Cmp(rat(-5, 1)) != 0 {
		t.Errorf("obj=%s x=%s, want 5, -5", sol.Value.RatString(), sol.X[x].RatString())
	}
}

func TestLPDegenerate(t *testing.T) {
	// Degenerate vertex: redundant constraints through the optimum.
	m := NewModel()
	x, y := m.AddVar("x"), m.AddVar("y")
	m.AddConstraintInt("c1", NewLin().AddInt(x, 1).AddInt(y, 1), LE, 1)
	m.AddConstraintInt("c2", NewLin().AddInt(x, 1), LE, 1)
	m.AddConstraintInt("c3", NewLin().AddInt(x, 2).AddInt(y, 2), LE, 2)
	m.SetObjective(NewLin().AddInt(x, 1).AddInt(y, 1))
	sol := mustOptimal(t, m)
	if sol.Value.Cmp(rat(1, 1)) != 0 {
		t.Errorf("obj = %s, want 1", sol.Value.RatString())
	}
}

func TestILPKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a+4b+2c <= 6, binary -> a=0 b=1 c=1: 20.
	m := NewModel()
	vars := []Var{m.AddIntVar("a"), m.AddIntVar("b"), m.AddIntVar("c")}
	for _, v := range vars {
		m.SetBounds(v, rat(0, 1), rat(1, 1))
	}
	m.AddConstraintInt("cap", NewLin().AddInt(vars[0], 3).AddInt(vars[1], 4).AddInt(vars[2], 2), LE, 6)
	m.SetObjective(NewLin().AddInt(vars[0], 10).AddInt(vars[1], 13).AddInt(vars[2], 7))
	sol := mustOptimal(t, m)
	if sol.Value.Cmp(rat(20, 1)) != 0 {
		t.Errorf("obj = %s, want 20", sol.Value.RatString())
	}
	if sol.IntValue(vars[1]) != 1 || sol.IntValue(vars[2]) != 1 || sol.IntValue(vars[0]) != 0 {
		t.Errorf("selection = %v,%v,%v want 0,1,1",
			sol.X[vars[0]], sol.X[vars[1]], sol.X[vars[2]])
	}
}

func TestILPRoundingMatters(t *testing.T) {
	// LP optimum fractional; ILP optimum differs from naive rounding.
	// max y s.t. -x + y <= 1/2, x + y <= 7/2, x,y int -> best y = 2 (x=1 or 2... check):
	// y <= min(1/2 + x, 7/2 - x); best integer x=1: y <= 3/2 -> y=1? x=2: y<=3/2? 7/2-2=3/2.
	// Hmm: x=1: y <= 1.5 -> 1; x=2: y <= 1.5 -> 1. LP: x=3/2, y=2. So ILP y=1.
	m := NewModel()
	x, y := m.AddIntVar("x"), m.AddIntVar("y")
	m.AddConstraint("c1", NewLin().AddInt(x, -1).AddInt(y, 1), LE, rat(1, 2))
	m.AddConstraint("c2", NewLin().AddInt(x, 1).AddInt(y, 1), LE, rat(7, 2))
	m.SetObjective(NewLin().AddInt(y, 1))
	sol := mustOptimal(t, m)
	if sol.Value.Cmp(rat(1, 1)) != 0 {
		t.Errorf("obj = %s, want 1 (LP relaxation would give 2)", sol.Value.RatString())
	}
	if sol.Nodes <= 1 {
		t.Errorf("expected branching, got %d nodes", sol.Nodes)
	}
}

func TestILPEqualityInteger(t *testing.T) {
	// max 2x + 3y s.t. x + y = 5, x <= 3, int -> x=2? obj max: prefer y:
	// y=5,x=0 -> 15.
	m := NewModel()
	x, y := m.AddIntVar("x"), m.AddIntVar("y")
	m.AddConstraintInt("sum", NewLin().AddInt(x, 1).AddInt(y, 1), EQ, 5)
	m.AddConstraintInt("xcap", NewLin().AddInt(x, 1), LE, 3)
	m.SetObjective(NewLin().AddInt(x, 2).AddInt(y, 3))
	sol := mustOptimal(t, m)
	if sol.Value.Cmp(rat(15, 1)) != 0 {
		t.Errorf("obj = %s, want 15", sol.Value.RatString())
	}
}

func TestILPInfeasibleIntegrality(t *testing.T) {
	// 2x = 3 has no integer solution.
	m := NewModel()
	x := m.AddIntVar("x")
	m.AddConstraintInt("c", NewLin().AddInt(x, 2), EQ, 3)
	m.SetObjective(NewLin().AddInt(x, 1))
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestLinAddMergesAndCancels(t *testing.T) {
	l := NewLin().AddInt(0, 2).AddInt(0, 3)
	if c := l.Coef(0); c == nil || c.Cmp(rat(5, 1)) != 0 {
		t.Errorf("merge failed: %v", c)
	}
	l.AddInt(0, -5)
	if c := l.Coef(0); c != nil {
		t.Error("zero coefficient not removed")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewModel()
	x := m.AddIntVar("x")
	m.SetBounds(x, rat(0, 1), rat(9, 1))
	m.AddConstraintInt("c", NewLin().AddInt(x, 1), LE, 5)
	m.SetObjective(NewLin().AddInt(x, 1))
	c := m.Clone()
	c.SetBounds(x, rat(0, 1), rat(2, 1))
	c.AddConstraintInt("c2", NewLin().AddInt(x, 1), LE, 1)
	sol := mustOptimal(t, m)
	if sol.Value.Cmp(rat(5, 1)) != 0 {
		t.Errorf("clone mutation leaked into original: obj = %s, want 5", sol.Value.RatString())
	}
}

func TestFloorRat(t *testing.T) {
	cases := []struct {
		x    *big.Rat
		want *big.Rat
	}{
		{rat(7, 2), rat(3, 1)},
		{rat(-7, 2), rat(-4, 1)},
		{rat(4, 1), rat(4, 1)},
		{rat(-4, 1), rat(-4, 1)},
		{rat(0, 1), rat(0, 1)},
	}
	for _, c := range cases {
		if got := floorRat(c.x); got.Cmp(c.want) != 0 {
			t.Errorf("floor(%s) = %s, want %s", c.x.RatString(), got.RatString(), c.want.RatString())
		}
	}
}

// TestILPRandomVsBruteForce cross-checks small random bounded ILPs against
// exhaustive enumeration.
func TestILPRandomVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(2) // 2..3 vars, each in [0,4]
		ub := int64(4)
		m := NewModel()
		vars := make([]Var, n)
		obj := NewLin()
		for i := range vars {
			vars[i] = m.AddIntVar("v")
			m.SetBounds(vars[i], rat(0, 1), rat(ub, 1))
			obj.AddInt(vars[i], int64(rng.Intn(11)-3))
		}
		m.SetObjective(obj)
		nCons := 1 + rng.Intn(3)
		type consRec struct {
			coef []int64
			s    Sense
			rhs  int64
		}
		var recs []consRec
		for c := 0; c < nCons; c++ {
			coef := make([]int64, n)
			l := NewLin()
			for i := range coef {
				coef[i] = int64(rng.Intn(7) - 2)
				l.AddInt(vars[i], coef[i])
			}
			s := Sense(rng.Intn(3))
			rhs := int64(rng.Intn(13) - 2)
			recs = append(recs, consRec{coef, s, rhs})
			m.AddConstraintInt("c", l, s, rhs)
		}
		// Brute force.
		bestVal := int64(0)
		found := false
		var enum func(i int, x []int64)
		enum = func(i int, x []int64) {
			if i == n {
				for _, r := range recs {
					lhs := int64(0)
					for k := range x {
						lhs += r.coef[k] * x[k]
					}
					switch r.s {
					case LE:
						if lhs > r.rhs {
							return
						}
					case GE:
						if lhs < r.rhs {
							return
						}
					case EQ:
						if lhs != r.rhs {
							return
						}
					}
				}
				val := int64(0)
				for k := range x {
					if c := obj.Coef(vars[k]); c != nil {
						val += c.Num().Int64() * x[k]
					}
				}
				if !found || val > bestVal {
					bestVal, found = val, true
				}
				return
			}
			for v := int64(0); v <= ub; v++ {
				x[i] = v
				enum(i+1, x)
			}
		}
		enum(0, make([]int64, n))

		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, m)
		}
		if !found {
			if sol.Status != Infeasible {
				t.Errorf("trial %d: solver %v, brute force infeasible\n%s", trial, sol.Status, m)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Errorf("trial %d: solver %v, brute force optimal %d\n%s", trial, sol.Status, bestVal, m)
			continue
		}
		if sol.Value.Cmp(rat(bestVal, 1)) != 0 {
			t.Errorf("trial %d: solver %s, brute force %d\n%s", trial, sol.Value.RatString(), bestVal, m)
		}
	}
}

func BenchmarkILPMediumIPETShape(b *testing.B) {
	// A chain of diamonds, shaped like an IPET model: flow conservation
	// plus bounds.
	build := func() *Model {
		m := NewModel()
		const k = 20
		prev := m.AddIntVar("e0")
		m.AddConstraintInt("entry", NewLin().AddInt(prev, 1), EQ, 1)
		obj := NewLin()
		for i := 0; i < k; i++ {
			a, b2 := m.AddIntVar("a"), m.AddIntVar("b")
			out := m.AddIntVar("o")
			m.AddConstraintInt("split", NewLin().AddInt(prev, 1).AddInt(a, -1).AddInt(b2, -1), EQ, 0)
			m.AddConstraintInt("join", NewLin().AddInt(out, 1).AddInt(a, -1).AddInt(b2, -1), EQ, 0)
			obj.AddInt(a, int64(3+i%5)).AddInt(b2, int64(7+i%3))
			prev = out
		}
		m.SetObjective(obj)
		return m
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := build()
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
