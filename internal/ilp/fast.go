package ilp

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"slices"
	"sync"
)

// errOverflow aborts the fast int64 solve; the dispatcher retries the
// model on the exact big.Rat oracle.
var errOverflow = errors.New("ilp: int64 arithmetic overflow")

// maxPivots bounds simplex iterations as a defensive backstop; Bland's
// rule guarantees termination, so hitting the bound indicates a bug.
const maxPivots = 1_000_000

// srow is one sparse tableau row: sorted column indices with nonzero
// exact int64-rational values, plus the right-hand side. Columns are
// laid out structural-first, then slacks, then artificials — the same
// layout as the retired dense oracle, so pivot choices coincide.
type srow struct {
	col []int32
	val []rat64
	rhs rat64
}

// at returns the value in column c (zero when absent).
func (r *srow) at(c int32) rat64 {
	if i, ok := slices.BinarySearch(r.col, c); ok {
		return r.val[i]
	}
	return r64Zero
}

func (r *srow) clone() srow {
	return srow{col: slices.Clone(r.col), val: slices.Clone(r.val), rhs: r.rhs}
}

// Reuse caches the feasible post-phase-1 tableau of one structural
// family of models, so re-solves that change only the objective (the
// IPET sweep case: same flow structure, new block costs and penalties)
// skip phase 1 entirely. Because phase 1 never looks at the objective,
// a warm-started solve is bit-identical to a cold one — same pivots,
// same vertex — which is what keeps batch outputs byte-stable.
//
// The caller passes an exact key identifying everything that shapes the
// constraint rows and bounds (for IPET: the persistence-event rows; the
// skeleton's structure is fixed). A Reuse value is safe for concurrent
// use.
type Reuse struct {
	mu    sync.Mutex
	key   []int64
	valid bool
	rows  []srow
	basis []int
	ncols int

	hits, misses uint64
}

// Stats reports warm-start hits and misses (for tests and tuning).
func (r *Reuse) Stats() (hits, misses uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses
}

// take returns a private deep copy of the snapshot if the key matches.
func (r *Reuse) take(key []int64) ([]srow, []int, int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.valid || !slices.Equal(r.key, key) {
		r.misses++
		return nil, nil, 0, false
	}
	r.hits++
	rows := make([]srow, len(r.rows))
	for i := range r.rows {
		rows[i] = r.rows[i].clone()
	}
	return rows, slices.Clone(r.basis), r.ncols, true
}

// put stores a snapshot for the key, replacing any previous one.
func (r *Reuse) put(key []int64, rows []srow, basis []int, ncols int) {
	cp := make([]srow, len(rows))
	for i := range rows {
		cp[i] = rows[i].clone()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.key = slices.Clone(key)
	r.rows = cp
	r.basis = slices.Clone(basis)
	r.ncols = ncols
	r.valid = true
}

// ftab is the sparse fast tableau.
type ftab struct {
	rows  []srow
	cost  srow
	basis []int
	ncols int

	pivots *int // accumulated across phases and B&B nodes

	// merge scratch, reused across subMul calls.
	scol []int32
	sval []rat64
}

// subMul computes dst -= f·src (f nonzero), merging the sorted sparse
// rows. Returns errOverflow when any product or sum leaves int64.
func (t *ftab) subMul(dst, src *srow, f rat64) error {
	cols := t.scol[:0]
	vals := t.sval[:0]
	i, j := 0, 0
	for i < len(dst.col) || j < len(src.col) {
		var c int32
		var v rat64
		switch {
		case j >= len(src.col) || (i < len(dst.col) && dst.col[i] < src.col[j]):
			c, v = dst.col[i], dst.val[i]
			i++
		case i >= len(dst.col) || src.col[j] < dst.col[i]:
			fv, ok := f.mul(src.val[j])
			if !ok || fv.n == math.MinInt64 {
				return errOverflow
			}
			c, v = src.col[j], rat64{-fv.n, fv.d}
			j++
		default:
			fv, ok := f.mul(src.val[j])
			if !ok {
				return errOverflow
			}
			nv, ok := dst.val[i].sub(fv)
			if !ok {
				return errOverflow
			}
			c, v = dst.col[i], nv
			i++
			j++
		}
		if v.n != 0 {
			cols = append(cols, c)
			vals = append(vals, v)
		}
	}
	fr, ok := f.mul(src.rhs)
	if !ok {
		return errOverflow
	}
	if dst.rhs, ok = dst.rhs.sub(fr); !ok {
		return errOverflow
	}
	dst.col = append(dst.col[:0], cols...)
	dst.val = append(dst.val[:0], vals...)
	t.scol, t.sval = cols, vals
	return nil
}

// pivot makes column c basic in row r.
func (t *ftab) pivot(r int, c int32) error {
	prow := &t.rows[r]
	p := prow.at(c)
	inv, ok := mkRat64(p.d, p.n)
	if !ok {
		return errOverflow
	}
	for k := range prow.val {
		if prow.val[k], ok = prow.val[k].mul(inv); !ok {
			return errOverflow
		}
	}
	if prow.rhs, ok = prow.rhs.mul(inv); !ok {
		return errOverflow
	}
	for i := range t.rows {
		if i == r {
			continue
		}
		if a := t.rows[i].at(c); a.n != 0 {
			if err := t.subMul(&t.rows[i], prow, a); err != nil {
				return err
			}
		}
	}
	if a := t.cost.at(c); a.n != 0 {
		if err := t.subMul(&t.cost, prow, a); err != nil {
			return err
		}
	}
	t.basis[r] = int(c)
	return nil
}

// priceOut rewrites the cost row in terms of nonbasic variables by
// eliminating the basic columns.
func (t *ftab) priceOut() error {
	for r, b := range t.basis {
		f := t.cost.at(int32(b))
		if f.n == 0 {
			continue
		}
		if err := t.subMul(&t.cost, &t.rows[r], f); err != nil {
			return err
		}
	}
	return nil
}

// run performs primal simplex pivots with Bland's rule until optimality
// or unboundedness. The cost row must already be priced out.
func (t *ftab) run() (Status, error) {
	for piv := 0; piv < maxPivots; piv++ {
		// Entering: smallest index with positive reduced cost (the cost
		// row is sorted by column, so the first positive entry wins).
		enter := int32(-1)
		for k, c := range t.cost.col {
			if int(c) < t.ncols && t.cost.val[k].n > 0 {
				enter = c
				break
			}
		}
		if enter < 0 {
			// Optimal. Normalize stored objective value to +z.
			if t.cost.rhs.n == math.MinInt64 {
				return 0, errOverflow
			}
			t.cost.rhs.n = -t.cost.rhs.n
			return Optimal, nil
		}
		// Leaving: min ratio rhs/a over a > 0; ties by smallest basis var.
		leave := -1
		var best rat64
		for r := range t.rows {
			a := t.rows[r].at(enter)
			if a.sign() <= 0 {
				continue
			}
			inv, ok := mkRat64(a.d, a.n)
			if !ok {
				return 0, errOverflow
			}
			ratio, ok := t.rows[r].rhs.mul(inv)
			if !ok {
				return 0, errOverflow
			}
			switch {
			case leave < 0 || ratio.cmp(best) < 0:
				leave = r
				best = ratio
			case ratio.cmp(best) == 0 && t.basis[r] < t.basis[leave]:
				leave = r
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		if err := t.pivot(leave, enter); err != nil {
			return 0, err
		}
		*t.pivots++
	}
	panic("ilp: simplex exceeded pivot budget (cycling bug)")
}

// evictArtificials pivots artificial variables out of the basis after a
// successful phase 1, dropping redundant rows, then truncates the
// artificial columns.
func (t *ftab) evictArtificials(firstArt int) error {
	// Pivot first, compact after: pivots rewrite rows in place, so kept
	// rows must stay aliased to t.rows until all pivots are done.
	keep := make([]int, 0, len(t.rows))
	for r := range t.rows {
		if t.basis[r] < firstArt {
			keep = append(keep, r)
			continue
		}
		// Artificial basic at value 0 (phase 1 succeeded): pivot on the
		// smallest non-artificial column with nonzero coefficient, else
		// the row is redundant and dropped.
		if cols := t.rows[r].col; len(cols) > 0 && int(cols[0]) < firstArt {
			if err := t.pivot(r, cols[0]); err != nil {
				return err
			}
			keep = append(keep, r)
		}
	}
	rows := make([]srow, len(keep))
	basis := make([]int, len(keep))
	for i, r := range keep {
		rows[i] = t.rows[r]
		basis[i] = t.basis[r]
	}
	t.rows = rows
	t.basis = basis
	t.ncols = firstArt
	for r := range t.rows {
		row := &t.rows[r]
		cut, _ := slices.BinarySearch(row.col, int32(firstArt))
		row.col = row.col[:cut]
		row.val = row.val[:cut]
	}
	return nil
}

// fastLPResult carries an LP outcome in fast arithmetic.
type fastLPResult struct {
	status Status
	x      []rat64
	value  rat64
}

// buildStandard converts the model under the given bounds into tableau
// rows with the oracle's exact column layout. It returns ok=false when
// some variable's bounds are contradictory (the LP is then trivially
// infeasible).
func (m *Model) buildStandard(lower, upper []rat64, upinf []bool) (rows []srow, senses []Sense, ok bool, err error) {
	n := m.NumVars()
	for _, c := range m.cons {
		row := srow{
			col: make([]int32, len(c.terms.vars), len(c.terms.vars)+2),
			val: make([]rat64, len(c.terms.vars), len(c.terms.vars)+2),
			rhs: c.rhs,
		}
		for i, v := range c.terms.vars {
			row.col[i] = int32(v)
			row.val[i] = c.terms.coef[i]
			if lower[v].n != 0 {
				p, okm := c.terms.coef[i].mul(lower[v])
				if !okm {
					return nil, nil, false, errOverflow
				}
				if row.rhs, okm = row.rhs.sub(p); !okm {
					return nil, nil, false, errOverflow
				}
			}
		}
		rows = append(rows, row)
		senses = append(senses, c.sense)
	}
	for v := 0; v < n; v++ {
		if upinf[v] {
			continue
		}
		span, okm := upper[v].sub(lower[v])
		if !okm {
			return nil, nil, false, errOverflow
		}
		if span.sign() < 0 {
			return nil, nil, false, nil
		}
		rows = append(rows, srow{
			col: append(make([]int32, 0, 3), int32(v)),
			val: append(make([]rat64, 0, 3), r64One),
			rhs: span,
		})
		senses = append(senses, LE)
	}
	// Normalize RHS >= 0.
	for i := range rows {
		if rows[i].rhs.sign() >= 0 {
			continue
		}
		if rows[i].rhs.n == math.MinInt64 {
			return nil, nil, false, errOverflow
		}
		rows[i].rhs.n = -rows[i].rhs.n
		for k := range rows[i].val {
			if rows[i].val[k].n == math.MinInt64 {
				return nil, nil, false, errOverflow
			}
			rows[i].val[k].n = -rows[i].val[k].n
		}
		switch senses[i] {
		case LE:
			senses[i] = GE
		case GE:
			senses[i] = LE
		}
	}
	return rows, senses, true, nil
}

// fastLP solves the LP relaxation under the given bounds in int64
// arithmetic. A non-nil reuse with a matching key skips standard-form
// construction and phase 1 by restoring the cached feasible tableau.
func (m *Model) fastLP(lower, upper []rat64, upinf []bool, reuse *Reuse, reuseKey []int64, pivots *int) (fastLPResult, error) {
	n := m.NumVars()
	t := &ftab{pivots: pivots}
	warm := false
	if reuse != nil {
		if rows, basis, ncols, ok := reuse.take(reuseKey); ok {
			t.rows, t.basis, t.ncols = rows, basis, ncols
			warm = true
		}
	}
	if !warm {
		rows, senses, ok, err := m.buildStandard(lower, upper, upinf)
		if err != nil {
			return fastLPResult{}, err
		}
		if !ok {
			return fastLPResult{status: Infeasible}, nil
		}
		// Column layout: [0,n) structural, then slacks/surplus, then
		// artificials.
		nSlack, nArt := 0, 0
		for _, s := range senses {
			if s != EQ {
				nSlack++
			}
			if s != LE {
				nArt++
			}
		}
		t.ncols = n + nSlack + nArt
		slackAt, artAt := n, n+nSlack
		for i := range rows {
			basic := -1
			switch senses[i] {
			case LE:
				rows[i].col = append(rows[i].col, int32(slackAt))
				rows[i].val = append(rows[i].val, r64One)
				basic = slackAt
				slackAt++
			case GE:
				rows[i].col = append(rows[i].col, int32(slackAt))
				rows[i].val = append(rows[i].val, rat64{-1, 1})
				slackAt++
				rows[i].col = append(rows[i].col, int32(artAt))
				rows[i].val = append(rows[i].val, r64One)
				basic = artAt
				artAt++
			case EQ:
				rows[i].col = append(rows[i].col, int32(artAt))
				rows[i].val = append(rows[i].val, r64One)
				basic = artAt
				artAt++
			}
			t.basis = append(t.basis, basic)
		}
		t.rows = rows
		if nArt > 0 {
			// Phase 1: maximize -(sum of artificials).
			p1 := srow{col: make([]int32, nArt), val: make([]rat64, nArt), rhs: r64Zero}
			for i := 0; i < nArt; i++ {
				p1.col[i] = int32(n + nSlack + i)
				p1.val[i] = rat64{-1, 1}
			}
			t.cost = p1
			if err := t.priceOut(); err != nil {
				return fastLPResult{}, err
			}
			st, err := t.run()
			if err != nil {
				return fastLPResult{}, err
			}
			if st != Optimal {
				return fastLPResult{}, fmt.Errorf("phase-1 simplex returned %v", st)
			}
			if t.cost.rhs.n != 0 {
				return fastLPResult{status: Infeasible}, nil
			}
			if err := t.evictArtificials(n + nSlack); err != nil {
				return fastLPResult{}, err
			}
		}
		if reuse != nil {
			reuse.put(reuseKey, t.rows, t.basis, t.ncols)
		}
	}
	// Phase 2: real objective.
	obj := m.objective
	cost := srow{col: make([]int32, 0, obj.Len()), val: make([]rat64, 0, obj.Len()), rhs: r64Zero}
	for i, v := range obj.vars {
		if int(v) < t.ncols {
			cost.col = append(cost.col, int32(v))
			cost.val = append(cost.val, obj.coef[i])
		}
	}
	t.cost = cost
	if err := t.priceOut(); err != nil {
		return fastLPResult{}, err
	}
	st, err := t.run()
	if err != nil {
		return fastLPResult{}, err
	}
	if st != Optimal {
		return fastLPResult{status: st}, nil
	}
	// Extract the solution in original coordinates.
	x := make([]rat64, n)
	copy(x, lower)
	for r, b := range t.basis {
		if b < n {
			v, ok := lower[b].add(t.rows[r].rhs)
			if !ok {
				return fastLPResult{}, errOverflow
			}
			x[b] = v
		}
	}
	value := r64Zero
	for i, v := range obj.vars {
		p, ok := obj.coef[i].mul(x[v])
		if !ok {
			return fastLPResult{}, errOverflow
		}
		if value, ok = value.add(p); !ok {
			return fastLPResult{}, errOverflow
		}
	}
	return fastLPResult{status: Optimal, x: x, value: value}, nil
}

// fastSolve runs branch and bound entirely in int64 arithmetic. It
// returns errOverflow when any intermediate value leaves the range; the
// dispatcher then falls back to the big.Rat oracle.
func (m *Model) fastSolve(reuse *Reuse, reuseKey []int64) (*Solution, error) {
	pivots := 0
	lower := slices.Clone(m.lower)
	upper := slices.Clone(m.upper)
	upinf := slices.Clone(m.upinf)
	root, err := m.fastLP(lower, upper, upinf, reuse, reuseKey, &pivots)
	if err != nil {
		return nil, err
	}
	if root.status != Optimal {
		return &Solution{Status: root.status, Nodes: 1, Pivots: pivots}, nil
	}
	var best *fastLPResult
	nodes := 0
	half := rat64{1, 2}

	var descend func(lower, upper []rat64, upinf []bool, lp fastLPResult) error
	descend = func(lower, upper []rat64, upinf []bool, lp fastLPResult) error {
		nodes++
		if nodes > maxNodes {
			return fmt.Errorf("ilp: branch-and-bound exceeded %d nodes", maxNodes)
		}
		if best != nil && lp.value.cmp(best.value) <= 0 {
			return nil // cannot beat the incumbent
		}
		// Find the most fractional integer variable: |frac(x) - 1/2|
		// smallest, first index winning ties.
		branch := -1
		var branchDist rat64
		for v := range m.integer {
			if !m.integer[v] || lp.x[v].isInt() {
				continue
			}
			fl := lp.x[v].floor()
			f, ok := lp.x[v].sub(rat64{fl, 1})
			if !ok {
				return errOverflow
			}
			dist, ok := f.sub(half)
			if !ok {
				return errOverflow
			}
			if dist.n < 0 {
				dist.n = -dist.n
			}
			if branch < 0 || dist.cmp(branchDist) < 0 {
				branch = v
				branchDist = dist
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			if best == nil || lp.value.cmp(best.value) > 0 {
				best = &lp
			}
			return nil
		}
		fl := rat64{lp.x[branch].floor(), 1}
		// Down branch: x <= floor.
		dLower := slices.Clone(lower)
		dUpper := slices.Clone(upper)
		dUpinf := slices.Clone(upinf)
		if dUpinf[branch] || dUpper[branch].cmp(fl) > 0 {
			dUpper[branch] = fl
			dUpinf[branch] = false
		}
		if dLower[branch].cmp(dUpper[branch]) <= 0 {
			lp2, err := m.fastLP(dLower, dUpper, dUpinf, nil, nil, &pivots)
			if err != nil {
				return err
			}
			if lp2.status == Optimal {
				if err := descend(dLower, dUpper, dUpinf, lp2); err != nil {
					return err
				}
			}
		}
		// Up branch: x >= floor+1.
		if fl.n == math.MaxInt64 {
			return errOverflow
		}
		uLower := slices.Clone(lower)
		uUpper := slices.Clone(upper)
		uUpinf := slices.Clone(upinf)
		lo := rat64{fl.n + 1, 1}
		if uLower[branch].cmp(lo) < 0 {
			uLower[branch] = lo
		}
		if uUpinf[branch] || uLower[branch].cmp(uUpper[branch]) <= 0 {
			lp2, err := m.fastLP(uLower, uUpper, uUpinf, nil, nil, &pivots)
			if err != nil {
				return err
			}
			if lp2.status == Optimal {
				if err := descend(uLower, uUpper, uUpinf, lp2); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := descend(lower, upper, upinf, root); err != nil {
		return nil, err
	}
	if best == nil {
		return &Solution{Status: Infeasible, Nodes: nodes, Pivots: pivots}, nil
	}
	return best.solution(nodes, pivots), nil
}

// solution converts a fast LP result to the public exact form.
func (r *fastLPResult) solution(nodes, pivots int) *Solution {
	xs := make([]*big.Rat, len(r.x))
	for i := range r.x {
		xs[i] = r.x[i].Rat()
	}
	return &Solution{Status: Optimal, Value: r.value.Rat(), X: xs, Nodes: nodes, Pivots: pivots}
}
