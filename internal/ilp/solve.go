package ilp

import "errors"

// maxNodes bounds branch-and-bound exploration. IPET models relax to
// near-integral network-flow LPs, so realistic solves visit a handful of
// nodes; the bound catches runaway models.
const maxNodes = 100_000

// SolveLP solves the LP relaxation only: on the sparse int64 fast path
// when the arithmetic fits, falling back to the exact big.Rat oracle on
// overflow.
func (m *Model) SolveLP() (*Solution, error) {
	pivots := 0
	res, err := m.fastLP(m.lower, m.upper, m.upinf, nil, nil, &pivots)
	switch {
	case err == nil:
		if res.status != Optimal {
			return &Solution{Status: res.status, Nodes: 1, Pivots: pivots}, nil
		}
		return res.solution(1, pivots), nil
	case errors.Is(err, errOverflow):
		sol, oerr := m.oracleSolveLP()
		if sol != nil {
			sol.FellBack = true
		}
		return sol, oerr
	default:
		return nil, err
	}
}

// Solve maximizes the objective subject to the constraints, enforcing
// integrality of integer variables by depth-first branch and bound with
// best-bound pruning. The fast int64 path and the big.Rat fallback use
// identical pivoting and branching rules, so which one ran is invisible
// in the solution (only Solution.FellBack tells).
func (m *Model) Solve() (*Solution, error) { return m.solve(nil, nil) }

// SolveWithReuse is Solve with a warm-start cache: when key matches the
// snapshot stored in r, the root LP skips standard-form construction
// and phase 1 by restoring the cached feasible tableau. The caller must
// choose key so that equal keys imply identical constraint rows and
// variable bounds (the objective may differ freely — phase 1 never
// reads it, which is why a warm solve is bit-identical to a cold one).
func (m *Model) SolveWithReuse(r *Reuse, key []int64) (*Solution, error) {
	return m.solve(r, key)
}

func (m *Model) solve(reuse *Reuse, reuseKey []int64) (*Solution, error) {
	sol, err := m.fastSolve(reuse, reuseKey)
	switch {
	case err == nil:
		return sol, nil
	case errors.Is(err, errOverflow):
		sol, oerr := m.oracleSolve()
		if sol != nil {
			sol.FellBack = true
		}
		return sol, oerr
	default:
		return nil, err
	}
}
