package ilp

import (
	"fmt"
	"math/big"
)

// maxNodes bounds branch-and-bound exploration. IPET models relax to
// near-integral network-flow LPs, so realistic solves visit a handful of
// nodes; the bound catches runaway models.
const maxNodes = 100_000

// SolveLP solves the LP relaxation only.
func (m *Model) SolveLP() (*Solution, error) { return m.solveLP() }

// Solve maximizes the objective subject to the constraints, enforcing
// integrality of integer variables by depth-first branch and bound with
// best-bound pruning.
func (m *Model) Solve() (*Solution, error) {
	root, err := m.solveLP()
	if err != nil {
		return nil, err
	}
	if root.Status != Optimal {
		return root, nil
	}
	var best *Solution
	nodes := 0
	half := big.NewRat(1, 2)

	var descend func(node *Model, lp *Solution) error
	descend = func(node *Model, lp *Solution) error {
		nodes++
		if nodes > maxNodes {
			return fmt.Errorf("ilp: branch-and-bound exceeded %d nodes", maxNodes)
		}
		if best != nil && lp.Value.Cmp(best.Value) <= 0 {
			return nil // cannot beat the incumbent
		}
		// Find the most fractional integer variable.
		branch := -1
		var branchDist *big.Rat
		frac := new(big.Rat)
		for v := range node.integer {
			if !node.integer[v] || lp.X[v].IsInt() {
				continue
			}
			// Distance from nearest half-integer measures fractionality:
			// |frac(x) - 1/2| smallest = most fractional.
			f := fracPart(lp.X[v])
			frac.Sub(f, half)
			frac.Abs(frac)
			if branch < 0 || frac.Cmp(branchDist) < 0 {
				branch = v
				branchDist = new(big.Rat).Set(frac)
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			if best == nil || lp.Value.Cmp(best.Value) > 0 {
				best = lp
			}
			return nil
		}
		fl := floorRat(lp.X[branch])
		// Down branch: x <= floor.
		down := node.Clone()
		upBound := new(big.Rat).Set(fl)
		if down.upper[branch] == nil || down.upper[branch].Cmp(upBound) > 0 {
			down.upper[branch] = upBound
		}
		if down.lower[branch].Cmp(down.upper[branch]) <= 0 {
			if lp2, err := down.solveLP(); err != nil {
				return err
			} else if lp2.Status == Optimal {
				if err := descend(down, lp2); err != nil {
					return err
				}
			}
		}
		// Up branch: x >= floor+1.
		up := node.Clone()
		loBound := new(big.Rat).Add(fl, big.NewRat(1, 1))
		if up.lower[branch].Cmp(loBound) < 0 {
			up.lower[branch] = loBound
		}
		if up.upper[branch] == nil || up.lower[branch].Cmp(up.upper[branch]) <= 0 {
			if lp2, err := up.solveLP(); err != nil {
				return err
			} else if lp2.Status == Optimal {
				if err := descend(up, lp2); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := descend(m, root); err != nil {
		return nil, err
	}
	if best == nil {
		return &Solution{Status: Infeasible, Nodes: nodes}, nil
	}
	best.Nodes = nodes
	return best, nil
}

// fracPart returns x - floor(x) in [0, 1).
func fracPart(x *big.Rat) *big.Rat {
	return new(big.Rat).Sub(x, floorRat(x))
}

// floorRat returns floor(x) as a rational.
func floorRat(x *big.Rat) *big.Rat {
	q := new(big.Int).Quo(x.Num(), x.Denom())
	if x.Sign() < 0 && !x.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	return new(big.Rat).SetInt(q)
}
