package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive names recognized in //paralint: comments.
const (
	DirUnordered = "unordered" // map-range loop is an order-insensitive fold
	DirCanonical = "canonical" // function is an audited canonical-encoder site
)

// directiveLines scans a file's comments for //paralint:<name> markers
// and returns line -> set of directive names. The marker may carry a
// justification after the name ("//paralint:unordered max fold"); the
// justification is free text and is ignored here, but reviewers should
// expect one.
func directiveLines(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	out := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "paralint:") {
				continue
			}
			name := strings.TrimPrefix(text, "paralint:")
			if i := strings.IndexAny(name, " \t("); i >= 0 {
				name = name[:i]
			}
			line := fset.Position(c.Pos()).Line
			if out[line] == nil {
				out[line] = map[string]bool{}
			}
			out[line][name] = true
		}
	}
	return out
}

// annotatedStmt reports whether a directive sits on the statement's own
// line or the line directly above it (trailing comment or leading
// comment styles both work).
func annotatedStmt(fset *token.FileSet, dirs map[int]map[string]bool, pos token.Pos, name string) bool {
	line := fset.Position(pos).Line
	return dirs[line][name] || dirs[line-1][name]
}

// annotatedFunc reports whether fn carries the directive in its doc
// comment or on the line directly above its declaration.
func annotatedFunc(fset *token.FileSet, dirs map[int]map[string]bool, fn *ast.FuncDecl, name string) bool {
	if fn == nil {
		return false
	}
	if fn.Doc != nil {
		start := fset.Position(fn.Doc.Pos()).Line
		end := fset.Position(fn.Doc.End()).Line
		for l := start; l <= end; l++ {
			if dirs[l][name] {
				return true
			}
		}
	}
	return annotatedStmt(fset, dirs, fn.Pos(), name)
}

// enclosingFuncDecl returns the top-level FuncDecl containing pos, nil
// for package-level declarations.
func enclosingFuncDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
			return fd
		}
	}
	return nil
}
