package lint

import (
	_ "embed"
	"fmt"
	"strings"
)

// allowNondeterm is the committed allowlist of sanctioned nondeterminism
// sites; see ParseAllowlist for the format.
//
//go:embed allow_nondeterm.txt
var allowNondeterm string

// Config parameterizes the suite. The zero value is NOT usable; start
// from DefaultConfig.
type Config struct {
	// NondetermAllow holds sanctioned nondeterminism sites as
	// "<pkgpath> <func> <callee>" keys (see ParseAllowlist).
	NondetermAllow map[string]bool
	// GoStmtExemptPkgs lists import paths (exact match) where bare go
	// statements are the package's whole point; internal/parallel is
	// the only production member.
	GoStmtExemptPkgs []string
}

// DefaultConfig returns the repo configuration: the embedded
// allow_nondeterm.txt and the internal/parallel goroutine exemption.
func DefaultConfig() *Config {
	allow, err := ParseAllowlist(allowNondeterm)
	if err != nil {
		// The embedded file is committed alongside this code; a parse
		// error is a build bug, surfaced loudly.
		panic(err)
	}
	return &Config{
		NondetermAllow:   allow,
		GoStmtExemptPkgs: []string{"paratime/internal/parallel"},
	}
}

// ParseAllowlist reads the allow_nondeterm.txt format: one site per
// line, three whitespace-separated columns
//
//	<pkgpath> <enclosing-func> <callee>
//
// where <enclosing-func> is the name printed in diagnostics ("F",
// "T.M", "(*T).M", or "init") and <callee> is the forbidden operation
// ("time.Now", "os.Getenv", "rand.Intn", or "go" for a goroutine
// launch). Anything after a '#' is a comment; blank lines are ignored.
// Each entry should carry a trailing comment saying why the site is
// sound.
func ParseAllowlist(text string) (map[string]bool, error) {
	out := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("lint: allowlist line %d: want 3 columns \"<pkgpath> <func> <callee>\", got %q", ln+1, line)
		}
		out[fields[0]+" "+fields[1]+" "+fields[2]] = true
	}
	return out, nil
}

func (c *Config) goStmtExempt(pkgPath string) bool {
	for _, p := range c.GoStmtExemptPkgs {
		if p == pkgPath {
			return true
		}
	}
	return false
}
