package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package with syntax.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Load type-checks the packages matched by patterns (resolved relative
// to dir, "" meaning the current directory) and returns them with full
// syntax and type information. Dependencies — including the standard
// library — are consumed from compiler export data produced by
// `go list -export`, so loading works offline and never re-typechecks
// the world from source. Packages under a testdata directory are
// skipped unless the pattern names them explicitly.
func Load(dir string, patterns ...string) ([]*Package, error) {
	explicitTestdata := false
	for _, p := range patterns {
		if strings.Contains(p, "testdata") {
			explicitTestdata = true
		}
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,ImportMap,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var targets []*listPackage
	exports := map[string]string{} // import path -> export data file
	importMap := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		//paralint:unordered vendored import maps agree across units; merge order is invisible
		for from, to := range lp.ImportMap {
			importMap[from] = to
		}
		if lp.DepOnly || lp.Standard {
			continue
		}
		if !explicitTestdata && underTestdata(lp.ImportPath) {
			continue
		}
		targets = append(targets, lp)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %v", patterns)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func underTestdata(importPath string) bool {
	return strings.Contains(importPath, "/testdata/") || strings.HasSuffix(importPath, "/testdata")
}

func typecheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	if lp.Module != nil && lp.Module.GoVersion != "" {
		conf.GoVersion = "go" + lp.Module.GoVersion
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		PkgPath: lp.ImportPath,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
