package lint

import (
	"go/ast"
	"go/token"
)

// NonDeterm forbids the ambient-nondeterminism entry points in
// result-producing code: wall-clock reads (time.Now / time.Since),
// environment lookups (os.Getenv / os.LookupEnv / os.Environ), draws
// from math/rand's globally-seeded source (rand.Intn and friends —
// explicitly seeded rand.New(rand.NewSource(k)) generators are
// deterministic and stay legal), and bare go statements outside
// internal/parallel (concurrency must flow through the audited
// fork/join primitives or a listed site). Sanctioned sites live in
// allow_nondeterm.txt as "<pkgpath> <func> <callee>" entries.
var NonDeterm = &Analyzer{
	Name: "nondeterm",
	Doc:  "forbids wall-clock, environment, global-rand and unaudited goroutines in result-producing packages",
	Run:  runNonDeterm,
}

// forbiddenCalls maps (package path, function) to the callee label used
// in diagnostics and allowlist entries.
var forbiddenCalls = map[[2]string]string{
	{"time", "Now"}:     "time.Now",
	{"time", "Since"}:   "time.Since",
	{"time", "Until"}:   "time.Until",
	{"os", "Getenv"}:    "os.Getenv",
	{"os", "LookupEnv"}: "os.LookupEnv",
	{"os", "Environ"}:   "os.Environ",
}

// globalRandFuncs are the math/rand and math/rand/v2 package-level
// functions that draw from the shared, randomly-seeded source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "NormFloat64": true, "ExpFloat64": true, "Read": true,
	// math/rand/v2 spellings
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

func runNonDeterm(pass *Pass) (any, error) {
	pkgPath := pass.Pkg.PkgPath
	goExempt := pass.Config.goStmtExempt(pkgPath)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if goExempt {
					return true
				}
				pass.flagNondeterm(file, n.Pos(), "go",
					"bare go statement outside internal/parallel: route concurrency through parallel.For/ForErr or allowlist this site")
			case *ast.CallExpr:
				cp, name, ok := calleePkgFunc(pass.Pkg.Info, n)
				if !ok {
					return true
				}
				label, bad := forbiddenCalls[[2]string{cp, name}]
				if !bad && (cp == "math/rand" || cp == "math/rand/v2") && globalRandFuncs[name] {
					label, bad = "rand."+name, true
				}
				if bad {
					pass.flagNondeterm(file, n.Pos(), label,
						label+" is nondeterministic in a result-producing package")
				}
			}
			return true
		})
	}
	return nil, nil
}

// flagNondeterm reports pos unless "<pkgpath> <func> <callee>" is
// allowlisted; the diagnostic embeds the exact allowlist key so a
// sanctioned new site is a copy-paste plus a justification comment.
func (p *Pass) flagNondeterm(file *ast.File, pos token.Pos, callee, msg string) {
	fn := enclosingFuncName(file, pos)
	key := p.Pkg.PkgPath + " " + fn + " " + callee
	if p.Config.NondetermAllow[key] {
		return
	}
	p.Reportf(pos, "%s (allowlist key: %q)", msg, key)
}
