// Package mapitertest exercises the mapiter analyzer: order-sensitive
// folds are flagged, collect-then-sort and annotated order-insensitive
// folds are not.
package mapitertest

import "sort"

// orderSensitive folds values in a way where iteration order changes the
// result; this is the violation mapiter exists to catch.
func orderSensitive(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total = total*31 + v
	}
	return total
}

// annotatedFold is a genuine order-insensitive fold, asserted by the
// escape hatch.
func annotatedFold(m map[string]int) int {
	best := 0
	//paralint:unordered max fold; commutative
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// collectThenSort is the canonical accepted idiom: the loop only
// collects, the sort restores determinism.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// guardedCollect is collect-only behind a condition; still accepted.
func guardedCollect(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// mixedBody collects but also mutates other state, so it is not
// collect-only and needs either a sort or an annotation.
func mixedBody(m map[string]int) ([]string, int) {
	var keys []string
	last := 0
	for k, v := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
		last = v
	}
	sort.Strings(keys)
	return keys, last
}
