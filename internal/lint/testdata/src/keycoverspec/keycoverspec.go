// Package keycoverspec models the spec and scenario sides of the
// keycover contract: BuildSystem must assign every non-execonly
// SystemConfig field, and every semantic Scenario field must serialize
// into the canonical JSON that Fingerprint hashes.
package keycoverspec

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

type SystemConfig struct {
	Alpha int
	// Beta is semantic but BuildSystem below never assigns it.
	Beta    int
	Workers int `paralint:"execonly"`
}

type SystemSpec struct {
	Alpha int `json:"alpha"`
}

// BuildSystem maps the schema onto the analysis configuration; spec-side
// diagnostics anchor here.
func BuildSystem(s SystemSpec) SystemConfig { // want `field keycoverspec.SystemConfig.Beta is never assigned by BuildSystem`
	out := SystemConfig{}
	out.Alpha = s.Alpha
	return out
}

// Inner is reached through the Scenario field tree.
type Inner struct {
	Value int `json:"value"`
	// hidden is invisible to encoding/json and therefore to Fingerprint.
	hidden int // want `unexported field keycoverspec.Scenario.Inner.hidden is invisible`
}

type Scenario struct {
	Name  string `json:"name"`
	Inner Inner  `json:"inner"`
	// Skipped is semantic but excluded from the encoding.
	Skipped int `json:"-"` // want `field keycoverspec.Scenario.Skipped is json:"-"`
	// Workers is an execution knob correctly hidden from the encoding.
	Workers int `json:"-" paralint:"execonly"`
	// Bad is tagged execution-only yet serialized into the fingerprint.
	Bad int `json:"bad" paralint:"execonly"` // want `execution-only field keycoverspec.Scenario.Bad is serialized into the fingerprint`
}

//paralint:canonical fixture fingerprint encoder
func (s *Scenario) Fingerprint() (string, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(data)), nil
}

var _ = Inner{}.hidden
