// Package keycovertest models the prepare side of the keycover
// contract: a package declaring SystemConfig and PrepareKey, with one
// field that never reaches the key and one execution-only field that
// illegally does.
package keycovertest

import "fmt"

// CacheCfg is a same-package sub-structure; passing it wholesale to a
// helper counts as full coverage of the field.
type CacheCfg struct {
	Sets int
	Ways int
}

type SystemConfig struct {
	L1    CacheCfg
	Alpha int
	// Missing is semantic but never consumed by PrepareKey.
	Missing int // want `field keycovertest.SystemConfig.Missing never reaches PrepareKey`
	// Sched is owed by the scenario schema, not PrepareKey.
	Sched int `paralint:"fingerprint"`
	// Workers is a legitimate execution knob.
	Workers int `paralint:"execonly"`
	// Leaky is tagged execution-only yet read by PrepareKey below.
	Leaky int `paralint:"execonly"` // want `execution-only field keycovertest.SystemConfig.Leaky is read by PrepareKey`
}

func PrepareKey(sys SystemConfig) string {
	return fmt.Sprintf("%d|%s|%d", sys.Alpha, cacheKey(sys.L1), sys.Leaky)
}

func cacheKey(c CacheCfg) string {
	return fmt.Sprintf("%d/%d", c.Sets, c.Ways)
}
