// Package nondetermtest exercises the nondeterm analyzer: wall-clock,
// environment and global-rand calls and bare go statements are flagged;
// explicitly seeded generators are not; the allowlist silences exactly
// the listed (package, function, callee) triple.
package nondetermtest

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time.Now is nondeterministic`
}

func environment() string {
	return os.Getenv("HOME") // want `os.Getenv is nondeterministic`
}

func globalDraw() int {
	return rand.Intn(10) // want `rand.Intn is nondeterministic`
}

// seededDraw is deterministic: the generator is explicitly seeded, so
// method calls on it are legal.
func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func spawn(ch chan<- int) {
	go func() { ch <- 1 }() // want `bare go statement`
}

// allowlisted also reads the wall clock, but the test installs
// "<pkg> allowlisted time.Now" in the allowlist, so only the calls
// above are reported.
func allowlisted() time.Time {
	return time.Now()
}
