// Package sortedouttest exercises the sortedout analyzer: JSON
// marshaling outside a canonical site, and stream emission from inside a
// map-range loop, are flagged; canonical sites and local accumulators
// are not.
package sortedouttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

func encode(v any) ([]byte, error) {
	return json.Marshal(v) // want `json.Marshal outside a canonical encoder site`
}

// canonicalEncode is the audited encoder site for this fixture.
//
//paralint:canonical fixture canonical encoder
func canonicalEncode(v any) ([]byte, error) {
	return json.Marshal(v)
}

// emitUnsorted streams from inside a map range; the unordered annotation
// does not excuse emission, only folds.
func emitUnsorted(w io.Writer, m map[string]int) {
	//paralint:unordered annotation does not excuse emission
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside a map-range loop`
	}
}

type sink struct{}

func (s *sink) Write(p []byte) (int, error) { return len(p), nil }

func emitWriter(s *sink, m map[string]int) {
	//paralint:unordered annotation does not excuse emission
	for k := range m {
		s.Write([]byte(k)) // want `sortedouttest.sink.Write inside a map-range loop`
	}
}

// accumulate builds per-entry strings in local accumulators inside the
// loop and sorts before joining; bytes.Buffer and strings.Builder are
// exempt because their contents can still be ordered before emission.
func accumulate(m map[string]int) string {
	var lines []string
	//paralint:unordered lines are sorted below
	for k := range m {
		var b bytes.Buffer
		b.WriteString(k)
		var sb strings.Builder
		sb.WriteString(b.String())
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// emitSorted is the accepted emission shape: sorted keys, plain slice
// range.
func emitSorted(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}
