package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// KeyCover mechanizes the fingerprint-coverage contract: every semantic
// field of the system model reaches a content key, and every execution
// knob provably does not. It runs three structural checks, activated by
// declaration shape so the analysistest fixtures can model each side:
//
//   - Prepare side (a package declaring struct SystemConfig and func
//     PrepareKey — internal/core): every SystemConfig field must be
//     read (transitively, through same-package callees) by PrepareKey,
//     or carry the struct tag paralint:"fingerprint" (coverage owed by
//     the scenario schema and enforced on the spec side), or carry
//     paralint:"execonly" (an execution knob, the Parallelism
//     precedent). An execonly field read by PrepareKey is the inverse
//     violation and is also reported.
//
//   - Spec side (a package declaring a BuildSystem function returning a
//     SystemConfig — internal/spec): every non-execonly SystemConfig
//     field must be assigned (transitively) by BuildSystem, so scenario
//     documents — and therefore Scenario.Fingerprint() — fully
//     determine the analyzed system. Assigning an execonly field there
//     is reported.
//
//   - Scenario side (a package declaring struct Scenario with method
//     Fingerprint — internal/spec): Fingerprint hashes the canonical
//     JSON encoding, so every field in the Scenario struct tree must
//     serialize: exported with a json tag other than "-". Unexported or
//     json:"-" fields hide semantics from the fingerprint and are
//     reported unless tagged paralint:"execonly". Types with a custom
//     MarshalJSON are trusted (their coverage is pinned behaviorally by
//     the fingerprint mutation tests).
//
// The analyzer's result is the field inventory committed as
// testdata/keycover.golden, so reviewers see exactly which fields are
// fingerprinted, which are spec-assigned, and which are execution-only.
var KeyCover = &Analyzer{
	Name: "keycover",
	Doc:  "diffs SystemConfig/Scenario fields against PrepareKey and Fingerprint coverage",
	Run:  runKeyCover,
}

const (
	tagExecOnly    = "execonly"
	tagFingerprint = "fingerprint"
)

func paralintTag(tag string) string {
	return reflect.StructTag(tag).Get("paralint")
}

func jsonTagName(tag string) string {
	v := reflect.StructTag(tag).Get("json")
	if i := strings.IndexByte(v, ','); i >= 0 {
		v = v[:i]
	}
	return v
}

func runKeyCover(pass *Pass) (any, error) {
	var inv []string
	inv = append(inv, pass.checkPrepareSide()...)
	inv = append(inv, pass.checkSpecSide()...)
	inv = append(inv, pass.checkScenarioSide()...)
	if len(inv) == 0 {
		return nil, nil
	}
	return inv, nil
}

// --- coverage trees ----------------------------------------------------------

// coverNode records which selector paths rooted at a SystemConfig value
// were consumed. A node is atomic when the whole subtree at that path
// was consumed in one expression (passed to %+v, assigned wholesale,
// nil-checked pointer, ...).
type coverNode struct {
	atomic   bool
	children map[string]*coverNode
}

func (n *coverNode) insert(path []string) {
	if len(path) == 0 {
		n.atomic = true
		return
	}
	if n.children == nil {
		n.children = map[string]*coverNode{}
	}
	child := n.children[path[0]]
	if child == nil {
		child = &coverNode{}
		n.children[path[0]] = child
	}
	child.insert(path[1:])
}

func (n *coverNode) child(name string) *coverNode {
	if n == nil {
		return nil
	}
	return n.children[name]
}

func (n *coverNode) covered() bool { return n != nil && (n.atomic || len(n.children) > 0) }

// --- same-package call-graph closure ----------------------------------------

// closureFrom returns the FuncDecls reachable from root through static
// calls to functions and methods declared in this package.
func (p *Pass) closureFrom(root *ast.FuncDecl) []*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := p.Pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	var out []*ast.FuncDecl
	seen := map[*ast.FuncDecl]bool{}
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if fd == nil || seen[fd] {
			return
		}
		seen[fd] = true
		out = append(out, fd)
		ast.Inspect(fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee = p.Pkg.Info.Uses[fun]
			case *ast.SelectorExpr:
				callee = p.Pkg.Info.Uses[fun.Sel]
			}
			if callee != nil {
				visit(decls[callee])
			}
			return true
		})
	}
	visit(root)
	return out
}

// --- prepare side ------------------------------------------------------------

func (p *Pass) lookupStruct(name string) (*types.Named, *types.Struct) {
	obj := p.Pkg.Types.Scope().Lookup(name)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

func (p *Pass) findFunc(name string) *ast.FuncDecl {
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

func (p *Pass) checkPrepareSide() []string {
	named, st := p.lookupStruct("SystemConfig")
	prepare := p.findFunc("PrepareKey")
	if named == nil || prepare == nil {
		return nil
	}
	cover := &coverNode{}
	for _, fd := range p.closureFrom(prepare) {
		p.collectReads(fd, named, cover)
	}
	var inv []string
	inv = append(inv, fmt.Sprintf("# %s.SystemConfig — PrepareKey coverage (%s)", p.Pkg.Types.Name(), p.Pkg.PkgPath))
	p.checkFields("prepare", qualName(named), st, named, cover, &inv)
	return inv
}

// collectReads records selector-chain reads rooted at values of type
// target, plus whole-value escapes into calls outside the closure.
func (p *Pass) collectReads(fd *ast.FuncDecl, target *types.Named, cover *coverNode) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if root, path, ok := p.fieldChain(n, target); ok {
				cover.insert(path)
				ast.Inspect(root, visit)
				return false
			}
		case *ast.CallExpr:
			// A whole SystemConfig value escaping into a call outside
			// the closure is treated as fully consumed (fmt verbs,
			// hashing helpers, ...). Same-package callees are analyzed
			// precisely by their own decls instead.
			if p.declaredHere(n) {
				return true
			}
			for _, arg := range n.Args {
				if sel, ok := arg.(*ast.SelectorExpr); ok {
					if _, _, isChain := p.fieldChain(sel, target); isChain {
						continue // handled as a chain above
					}
				}
				if t := p.TypeOf(arg); t != nil && namedOrNil(t) == target {
					cover.insert(nil)
				}
			}
		}
		return true
	}
	ast.Inspect(fd, visit)
}

// declaredHere reports whether the call's static callee is a function or
// method declared in this package (and therefore part of any closure
// that reached the call site).
func (p *Pass) declaredHere(call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Pkg.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() == p.Pkg.Types
}

// fieldChain unwinds a selector expression into the field path it reads
// from a value of type target: sys.Mem.L1I -> [Mem L1I]. Chains broken
// by method calls or rooted elsewhere return ok=false.
func (p *Pass) fieldChain(sel *ast.SelectorExpr, target *types.Named) (root ast.Expr, path []string, ok bool) {
	var rev []string
	var e ast.Expr = sel
	for {
		s, isSel := e.(*ast.SelectorExpr)
		if !isSel {
			break
		}
		selection := p.Pkg.Info.Selections[s]
		if selection == nil || selection.Kind() != types.FieldVal {
			// Package-qualified names or method values end the chain.
			break
		}
		rev = append(rev, s.Sel.Name)
		e = s.X
	}
	if len(rev) == 0 {
		return nil, nil, false
	}
	if t := p.TypeOf(e); t == nil || namedOrNil(t) != target {
		return nil, nil, false
	}
	path = make([]string, len(rev))
	for i, f := range rev {
		path[len(rev)-1-i] = f
	}
	return e, path, true
}

// --- spec side ---------------------------------------------------------------

// findBuildSystem locates a function or method named BuildSystem whose
// first result is a (possibly imported) SystemConfig struct.
func (p *Pass) findBuildSystem() (*ast.FuncDecl, *types.Named) {
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "BuildSystem" {
				continue
			}
			obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if sig.Results().Len() == 0 {
				continue
			}
			named := namedOrNil(sig.Results().At(0).Type())
			if named == nil || named.Obj().Name() != "SystemConfig" {
				continue
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				continue
			}
			return fd, named
		}
	}
	return nil, nil
}

func (p *Pass) checkSpecSide() []string {
	build, named := p.findBuildSystem()
	if build == nil {
		return nil
	}
	st := named.Underlying().(*types.Struct)
	cover := &coverNode{}
	for _, fd := range p.closureFrom(build) {
		p.collectAssigns(fd, named, cover)
	}
	var inv []string
	inv = append(inv, fmt.Sprintf("# %s — BuildSystem assignment coverage (%s)", qualName(named), p.Pkg.PkgPath))
	p.specFields(build, qualName(named), st, named, cover, &inv)
	return inv
}

// collectAssigns records assignment targets rooted at values of type
// target, plus keyed composite-literal construction.
func (p *Pass) collectAssigns(fd *ast.FuncDecl, target *types.Named, cover *coverNode) {
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					if _, path, ok := p.fieldChain(sel, target); ok {
						cover.insert(path)
					}
				}
			}
		case *ast.CompositeLit:
			if t := p.TypeOf(n); t != nil && namedOrNil(t) == target {
				p.compositeCover(n, nil, cover)
			}
		}
		return true
	})
}

// compositeCover records the fields populated by a (possibly nested)
// struct literal. Positional literals must name every field, so they
// cover the whole node.
func (p *Pass) compositeCover(lit *ast.CompositeLit, prefix []string, cover *coverNode) {
	if len(lit.Elts) == 0 {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			// Positional literal: all fields present.
			cover.insert(prefix)
			return
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		path := append(append([]string{}, prefix...), key.Name)
		val := kv.Value
		if u, ok := val.(*ast.UnaryExpr); ok && u.Op == token.AND {
			val = u.X
		}
		if inner, ok := val.(*ast.CompositeLit); ok {
			if st, _ := derefStruct(p.TypeOf(inner)); st != nil {
				p.compositeCover(inner, path, cover)
				continue
			}
		}
		cover.insert(path)
	}
}

// specFields walks the SystemConfig field tree checking assignment
// coverage; diagnostics anchor on the BuildSystem declaration since the
// struct may live in an imported package.
func (p *Pass) specFields(at *ast.FuncDecl, prefix string, st *types.Struct, scope *types.Named, cover *coverNode, inv *[]string) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() && f.Pkg() != p.Pkg.Types {
			continue // invisible from here; the prepare side owns it
		}
		name := prefix + "." + f.Name()
		tag := paralintTag(st.Tag(i))
		node := cover.child(f.Name())
		if tag == tagExecOnly {
			if node.covered() {
				p.Reportf(at.Pos(), "execution-only field %s is assigned by BuildSystem: an execution knob must not be derivable from the scenario document", name)
			}
			*inv = append(*inv, name+"\texeconly[tag]")
			continue
		}
		if node != nil && node.atomic {
			*inv = append(*inv, name+"\tassigned")
			continue
		}
		fst, fnamed := derefStruct(f.Type())
		if node.covered() && fst != nil && fnamed != nil && samePkg(fnamed, scope) {
			p.specFields(at, name, fst, scope, cover.child(f.Name()), inv)
			continue
		}
		if node.covered() {
			p.Reportf(at.Pos(), "field %s is only partially assigned by BuildSystem; assign it wholesale or extend the schema mapping", name)
			*inv = append(*inv, name+"\tPARTIAL")
			continue
		}
		p.Reportf(at.Pos(), "field %s is never assigned by BuildSystem: scenario documents cannot express it, so Fingerprint() does not cover it — map it from the spec or tag it paralint:\"execonly\"", name)
		*inv = append(*inv, name+"\tUNCOVERED")
	}
}

// --- shared field-tree check (prepare side) ---------------------------------

func (p *Pass) checkFields(side, prefix string, st *types.Struct, scope *types.Named, cover *coverNode, inv *[]string) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		name := prefix + "." + f.Name()
		tag := paralintTag(st.Tag(i))
		node := cover.child(f.Name())
		if cover.atomic {
			node = &coverNode{atomic: true}
		}
		switch tag {
		case tagExecOnly:
			if node.covered() {
				p.Reportf(f.Pos(), "execution-only field %s is read by PrepareKey: an execution knob must never reach a content key", name)
			}
			*inv = append(*inv, name+"\texeconly[tag]")
			continue
		case tagFingerprint:
			if node.covered() {
				p.Reportf(f.Pos(), "field %s is tagged paralint:\"fingerprint\" but is also read by PrepareKey; drop the tag", name)
			}
			*inv = append(*inv, name+"\tfingerprint[tag]")
			continue
		}
		if node != nil && node.atomic {
			*inv = append(*inv, name+"\tpreparekey")
			continue
		}
		fst, fnamed := derefStruct(f.Type())
		if node.covered() && fst != nil && fnamed != nil && samePkg(fnamed, scope) {
			p.checkFields(side, name, fst, scope, node, inv)
			continue
		}
		if node.covered() {
			p.Reportf(f.Pos(), "field %s is only partially read by %s; consume it wholesale or tag the sub-structure's fields", name, side)
			*inv = append(*inv, name+"\tPARTIAL")
			continue
		}
		p.Reportf(f.Pos(), "field %s never reaches PrepareKey: a semantic field missing from the content key poisons every cache — consume it in PrepareKey, or tag it paralint:\"fingerprint\" if the scenario schema owns it, or paralint:\"execonly\" if it can never change a result", name)
		*inv = append(*inv, name+"\tUNCOVERED")
	}
}

// --- scenario side -----------------------------------------------------------

func (p *Pass) checkScenarioSide() []string {
	named, st := p.lookupStruct("Scenario")
	if named == nil || !p.hasMethod(named, "Fingerprint") {
		return nil
	}
	var inv []string
	inv = append(inv, fmt.Sprintf("# %s — fingerprint (canonical JSON) serialization (%s)", qualName(named), p.Pkg.PkgPath))
	seen := map[*types.Named]bool{}
	p.jsonFields(qualName(named), st, named, seen, &inv)
	return inv
}

func (p *Pass) hasMethod(named *types.Named, name string) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	return false
}

func (p *Pass) jsonFields(prefix string, st *types.Struct, root *types.Named, seen map[*types.Named]bool, inv *[]string) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		name := prefix + "." + f.Name()
		tag := paralintTag(st.Tag(i))
		jtag := jsonTagName(st.Tag(i))
		serialized := f.Exported() && jtag != "-"
		switch {
		case tag == tagExecOnly && serialized:
			p.Reportf(f.Pos(), "execution-only field %s is serialized into the fingerprint: add json:\"-\" or drop the paralint tag", name)
			*inv = append(*inv, name+"\tCONTRADICTION")
			continue
		case tag == tagExecOnly:
			*inv = append(*inv, name+"\texeconly[tag]")
			continue
		case !f.Exported():
			p.Reportf(f.Pos(), "unexported field %s is invisible to the canonical JSON encoding, so Fingerprint() cannot see it: export it with a json tag or tag it paralint:\"execonly\"", name)
			*inv = append(*inv, name+"\tUNCOVERED")
			continue
		case jtag == "-":
			p.Reportf(f.Pos(), "field %s is json:\"-\": it never reaches Fingerprint(), so two semantically different scenarios could collide — serialize it or tag it paralint:\"execonly\"", name)
			*inv = append(*inv, name+"\tUNCOVERED")
			continue
		}
		*inv = append(*inv, fmt.Sprintf("%s\tjson:%q", name, jtag))
		p.jsonRecurse(name, f.Type(), seen, inv)
	}
}

// jsonRecurse descends into named struct types from the scenario's own
// package, through pointers, slices, arrays and map values.
func (p *Pass) jsonRecurse(prefix string, t types.Type, seen map[*types.Named]bool, inv *[]string) {
	switch tt := t.(type) {
	case *types.Pointer:
		p.jsonRecurse(prefix, tt.Elem(), seen, inv)
		return
	case *types.Slice:
		p.jsonRecurse(prefix+"[]", tt.Elem(), seen, inv)
		return
	case *types.Array:
		p.jsonRecurse(prefix+"[]", tt.Elem(), seen, inv)
		return
	case *types.Map:
		p.jsonRecurse(prefix+"[k]", tt.Elem(), seen, inv)
		return
	}
	named := namedOrNil(t)
	if named == nil || named.Obj().Pkg() != p.Pkg.Types {
		return
	}
	st, _ := named.Underlying().(*types.Struct)
	if st == nil {
		return
	}
	if seen[named] {
		return
	}
	seen[named] = true
	if p.marshalsItself(named) {
		*inv = append(*inv, prefix+"\t(custom MarshalJSON: trusted, pinned by fingerprint mutation tests)")
		return
	}
	p.jsonFields(prefix, st, named, seen, inv)
	delete(seen, named)
}

// marshalsItself reports whether T or *T declares MarshalJSON.
func (p *Pass) marshalsItself(named *types.Named) bool {
	return p.hasMethod(named, "MarshalJSON")
}

// --- helpers -----------------------------------------------------------------

func samePkg(a, b *types.Named) bool {
	return a.Obj().Pkg() != nil && b.Obj().Pkg() != nil && a.Obj().Pkg() == b.Obj().Pkg()
}

func qualName(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}
