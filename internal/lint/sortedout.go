package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SortedOut enforces that output reaches the wire deterministically:
//
//  1. encoding/json marshaling entry points (json.Marshal /
//     MarshalIndent / NewEncoder / Encoder.Encode) may only be called
//     from functions annotated `//paralint:canonical <why>` — the
//     audited canonical-encoder sites. New code cannot hand-roll a JSON
//     emission path; it must flow through (or become) a reviewed
//     canonical site. Decoding is unrestricted.
//  2. Nothing may be emitted to a stream from inside a `for range` over
//     a map — not even under a //paralint:unordered annotation, because
//     an order-insensitive *fold* is fine but an order-insensitive
//     *emission* is a contradiction. Stream emission means the
//     fmt.Fprint family or a Write/WriteString/WriteByte/WriteRune/
//     Encode method on an io.Writer implementation; purely local
//     accumulators (bytes.Buffer, strings.Builder) are exempt since
//     their contents can still be sorted before leaving the function.
var SortedOut = &Analyzer{
	Name: "sortedout",
	Doc:  "requires output to flow through canonical encoders and deterministic iteration",
	Run:  runSortedOut,
}

var fprintFuncs = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

var writeMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteTo": true, "Encode": true,
}

// ioWriter is the io.Writer interface, built once so receiver types can
// be tested with types.Implements without importing io's export data.
var ioWriter = func() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	errType := types.Universe.Lookup("error").Type()
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", byteSlice))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", errType),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	fn := types.NewFunc(token.NoPos, nil, "Write", sig)
	iface := types.NewInterfaceType([]*types.Func{fn}, nil)
	iface.Complete()
	return iface
}()

func runSortedOut(pass *Pass) (any, error) {
	for _, file := range pass.Pkg.Files {
		dirs := directiveLines(pass.Pkg.Fset, file)
		// mapRanges tracks the bodies of active map-range loops so
		// nested calls know they sit inside one.
		var mapRanges []*ast.RangeStmt
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						mapRanges = append(mapRanges, n)
						ast.Inspect(n.Body, visit)
						mapRanges = mapRanges[:len(mapRanges)-1]
						// Key/value/X already type-checked; body done above.
						return false
					}
				}
			case *ast.CallExpr:
				pass.checkSortedCall(file, dirs, n, len(mapRanges) > 0)
			}
			return true
		}
		ast.Inspect(file, visit)
	}
	return nil, nil
}

func (p *Pass) checkSortedCall(file *ast.File, dirs map[int]map[string]bool, call *ast.CallExpr, inMapRange bool) {
	// Rule 1: json encode entry points need a canonical-site annotation.
	if pkg, name, ok := calleePkgFunc(p.Pkg.Info, call); ok {
		if pkg == "encoding/json" && (name == "Marshal" || name == "MarshalIndent" || name == "NewEncoder") {
			fn := enclosingFuncDecl(file, call.Pos())
			if !annotatedFunc(p.Pkg.Fset, dirs, fn, DirCanonical) {
				p.Reportf(call.Pos(), "json.%s outside a canonical encoder site: output must flow through a function annotated //paralint:canonical <why>", name)
			}
		}
		// Rule 2 for the fmt.Fprint family.
		if inMapRange && pkg == "fmt" && fprintFuncs[name] {
			p.Reportf(call.Pos(), "fmt.%s inside a map-range loop emits in nondeterministic order: iterate sorted keys instead", name)
		}
		return
	}
	if !inMapRange {
		return
	}
	// Rule 2 for writer methods.
	recv, name, ok := calleeMethod(p.Pkg.Info, call)
	if !ok || !writeMethodNames[name] || recv == nil {
		return
	}
	if exemptAccumulator(recv) {
		return
	}
	if !types.Implements(recv, ioWriter) && !types.Implements(types.NewPointer(recv), ioWriter) {
		return
	}
	p.Reportf(call.Pos(), "%s.%s inside a map-range loop emits in nondeterministic order: iterate sorted keys instead", typeString(recv), name)
}

// exemptAccumulator reports whether recv is a purely local accumulator
// whose contents can still be ordered before emission.
func exemptAccumulator(recv *types.Named) bool {
	obj := recv.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}
