// Package lint is paratime's repo-specific static-analysis suite: it
// mechanizes the determinism and fingerprint-coverage contracts that
// every PR otherwise has to re-prove by hand.
//
// The repo's three standing obligations are:
//
//  1. Output is byte-identical at any worker count — so no map-iteration
//     order, wall-clock reading, or environment lookup may influence a
//     result (analyzers mapiter, nondeterm).
//  2. Every semantic field of core.SystemConfig and the spec.Scenario
//     tree reaches core.PrepareKey or Scenario.Fingerprint(), while
//     execution knobs (the Parallelism precedent) are explicitly tagged
//     out (analyzer keycover).
//  3. Everything written to NDJSON/report/golden output flows through an
//     audited canonical encoder or a deterministic iteration (analyzer
//     sortedout).
//
// The suite is built directly on go/ast and go/types (the module is
// dependency-free, so golang.org/x/tools is deliberately not used); the
// Analyzer/Pass surface mirrors go/analysis closely enough that the
// analyzers would port over mechanically.
//
// Escape hatches are explicit and reviewable:
//
//   - `//paralint:unordered <why>` on a map-range line (or the line
//     above) marks an order-insensitive fold (max, sum, set-build).
//   - `//paralint:canonical <why>` on a function declares it an audited
//     canonical-encoder site, allowed to call encoding/json marshalers.
//   - struct tag `paralint:"execonly"` marks a SystemConfig field as an
//     execution knob that must NOT reach fingerprints.
//   - struct tag `paralint:"fingerprint"` marks a SystemConfig field
//     whose coverage is owed by the scenario schema (spec-side
//     assignment check) rather than by core.PrepareKey.
//   - allow_nondeterm.txt lists the sanctioned nondeterminism sites,
//     one `<pkgpath> <func> <callee>` triple per line.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check, shaped like golang.org/x/tools/go/analysis
// so the suite could be rebased onto the real framework mechanically.
type Analyzer struct {
	Name string
	Doc  string
	// Run inspects one package and reports diagnostics through the
	// pass. The optional result is analyzer-specific (keycover returns
	// its field inventory for the committed golden).
	Run func(*Pass) (any, error)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Config   *Config

	diags *[]Diagnostic
}

// Diagnostic is one reported violation, position-resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Suite returns the four paralint analyzers in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{MapIter, KeyCover, NonDeterm, SortedOut}
}

// Run applies each analyzer to each package and returns the combined
// diagnostics sorted by position, plus per-(package, analyzer) results.
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, map[ResultKey]any, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	var diags []Diagnostic
	results := make(map[ResultKey]any)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Config: cfg, diags: &diags}
			res, err := a.Run(pass)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			if res != nil {
				results[ResultKey{pkg.PkgPath, a.Name}] = res
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, results, nil
}

// ResultKey addresses one analyzer's result on one package.
type ResultKey struct {
	PkgPath  string
	Analyzer string
}

// enclosingFuncName renders the name of the top-level declaration that
// lexically contains pos: "F" for functions, "T.M" / "(*T).M" for
// methods, "init" for package-level variable initializers. It is the
// middle column of allow_nondeterm.txt entries.
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	for _, decl := range file.Decls {
		if decl.Pos() <= pos && pos < decl.End() {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				return "init"
			}
			if fd.Recv == nil || len(fd.Recv.List) == 0 {
				return fd.Name.Name
			}
			return recvString(fd.Recv.List[0].Type) + "." + fd.Name.Name
		}
	}
	return "init"
}

func recvString(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return "(*" + recvString(t.X) + ")"
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return recvString(t.X)
	case *ast.IndexListExpr:
		return recvString(t.X)
	default:
		return "?"
	}
}

// derefStruct unwraps pointers and names down to a struct type, or nil.
func derefStruct(t types.Type) (*types.Struct, *types.Named) {
	var named *types.Named
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			named = tt
			t = tt.Underlying()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Struct:
			return tt, named
		default:
			return nil, nil
		}
	}
}

// namedOrNil returns the named type behind t after stripping pointers.
func namedOrNil(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// calleePkgFunc resolves a call to (package path, function name) when the
// callee is a package-level function of another package (time.Now,
// os.Getenv, rand.Intn, fmt.Fprintf, json.Marshal...).
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj := info.ObjectOf(sel.Sel)
	fn, isFn := obj.(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return "", "", false
	}
	if fn.Pkg() == nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// calleeMethod resolves a call to (receiver type, method name) for
// method calls; recv is the named receiver type (pointer stripped).
func calleeMethod(info *types.Info, call *ast.CallExpr) (recv *types.Named, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	obj := info.ObjectOf(sel.Sel)
	fn, isFn := obj.(*types.Func)
	if !isFn {
		return nil, "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil, "", false
	}
	return namedOrNil(sig.Recv().Type()), fn.Name(), true
}

// typeString renders a named type as "pkgname.Type" for diagnostics.
func typeString(n *types.Named) string {
	if n == nil {
		return "?"
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
