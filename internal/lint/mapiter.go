package lint

import (
	"go/ast"
	"go/types"
)

// MapIter flags `for range` over a map: Go randomizes map iteration
// order per run, which is the classic way byte-identical output dies.
// A loop is accepted when:
//
//   - it only collects keys/values into slices (append-only body — the
//     canonical collect-then-sort idiom; the sort happens after), or
//   - it is annotated `//paralint:unordered <why>` on its own line or
//     the line above, asserting an order-insensitive fold (max, sum,
//     set membership).
//
// Everything else must iterate sorted keys instead (slices.Sorted(
// maps.Keys(m)) or an explicit collected-and-sorted slice).
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flags map iteration that can leak nondeterministic order into results",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) (any, error) {
	for _, file := range pass.Pkg.Files {
		dirs := directiveLines(pass.Pkg.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if annotatedStmt(pass.Pkg.Fset, dirs, rs.Pos(), DirUnordered) {
				return true
			}
			if collectOnlyBody(rs.Body) {
				return true
			}
			pass.Reportf(rs.Pos(), "map iteration order is nondeterministic: sort the keys first, or annotate the loop //paralint:unordered <why> if the fold is order-insensitive")
			return true
		})
	}
	return nil, nil
}

// collectOnlyBody reports whether every statement in the loop body is an
// append into a slice, possibly behind an if — the first half of the
// collect-then-sort idiom, where iteration order cannot matter because
// nothing but the collection is touched (the sort happens after the
// loop).
func collectOnlyBody(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	return collectOnlyStmts(body.List)
}

func collectOnlyStmts(stmts []ast.Stmt) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				return false
			}
		case *ast.IfStmt:
			// Guarded collection: the guard may read anything, but the
			// branches may still only append.
			if s.Init != nil || !collectOnlyStmts(s.Body.List) {
				return false
			}
			if s.Else != nil {
				eb, ok := s.Else.(*ast.BlockStmt)
				if !ok || !collectOnlyStmts(eb.List) {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}
