package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/keycover.golden from the current tree")

// fixturePath is the import-path pattern of one analyzer fixture,
// relative to the repo root.
func fixturePath(name string) string {
	return "./internal/lint/testdata/src/" + name
}

// fixturePkgPath is the full import path the loader reports for a
// fixture.
func fixturePkgPath(name string) string {
	return "paratime/internal/lint/testdata/src/" + name
}

func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, err := Load("../..", fixturePath(name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkgs
}

// wantRE extracts the backquoted expectation regexes from a
// `// want `re` `re“ comment.
var wantRE = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans a fixture package's comments for `// want ...`
// expectations and returns them keyed by "basename:line".
func collectWants(t *testing.T, pkgs []*Package) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
					for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want regex %q: %v", key, m[1], err)
						}
						wants[key] = append(wants[key], &expectation{re: re})
					}
				}
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over one fixture package and verifies
// the diagnostics match the `// want` comments exactly.
func checkFixture(t *testing.T, a *Analyzer, fixture string, cfg *Config) {
	t.Helper()
	pkgs := loadFixture(t, fixture)
	wants := collectWants(t, pkgs)
	diags, _, err := Run(pkgs, []*Analyzer{a}, cfg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, fixture, err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s matching %q", key, w.re)
			}
		}
	}
}

func TestMapIterFixture(t *testing.T) {
	checkFixture(t, MapIter, "mapitertest", nil)
}

func TestNonDetermFixture(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NondetermAllow[fixturePkgPath("nondetermtest")+" allowlisted time.Now"] = true
	checkFixture(t, NonDeterm, "nondetermtest", cfg)
}

// TestNonDetermAllowlistMiss pins that the allowlist key is exact: the
// same callee in a different function stays flagged.
func TestNonDetermAllowlistMiss(t *testing.T) {
	pkgs := loadFixture(t, "nondetermtest")
	cfg := DefaultConfig()
	cfg.NondetermAllow[fixturePkgPath("nondetermtest")+" allowlisted time.Now"] = true
	diags, _, err := Run(pkgs, []*Analyzer{NonDeterm}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, `"`+fixturePkgPath("nondetermtest")+` allowlisted `) {
			t.Errorf("allowlisted site still reported: %s", d)
		}
	}
	wantKey := fixturePkgPath("nondetermtest") + " wallClock time.Now"
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, `"`+wantKey+`"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostic for wallClock should embed allowlist key %q; got %v", wantKey, diags)
	}
}

func TestSortedOutFixture(t *testing.T) {
	checkFixture(t, SortedOut, "sortedouttest", nil)
}

func TestKeyCoverPrepareFixture(t *testing.T) {
	checkFixture(t, KeyCover, "keycovertest", nil)
}

func TestKeyCoverSpecFixture(t *testing.T) {
	checkFixture(t, KeyCover, "keycoverspec", nil)
}

// TestKeyCoverInventory pins the prepare-side fixture's inventory shape:
// every field lands in exactly one bucket.
func TestKeyCoverInventory(t *testing.T) {
	pkgs := loadFixture(t, "keycovertest")
	_, results, err := Run(pkgs, []*Analyzer{KeyCover}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inv, ok := results[ResultKey{fixturePkgPath("keycovertest"), "keycover"}].([]string)
	if !ok {
		t.Fatalf("no keycover inventory for fixture; results: %v", results)
	}
	wantLines := map[string]string{
		"keycovertest.SystemConfig.L1":      "preparekey",
		"keycovertest.SystemConfig.Alpha":   "preparekey",
		"keycovertest.SystemConfig.Missing": "UNCOVERED",
		"keycovertest.SystemConfig.Sched":   "fingerprint[tag]",
		"keycovertest.SystemConfig.Workers": "execonly[tag]",
		"keycovertest.SystemConfig.Leaky":   "execonly[tag]",
	}
	got := map[string]string{}
	for _, line := range inv {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, bucket, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed inventory line %q", line)
		}
		got[name] = bucket
	}
	for name, bucket := range wantLines {
		if got[name] != bucket {
			t.Errorf("inventory[%s] = %q, want %q", name, got[name], bucket)
		}
	}
	if len(got) != len(wantLines) {
		t.Errorf("inventory has %d fields, want %d: %v", len(got), len(wantLines), inv)
	}
}

// repoPackages loads the whole repository once for the repo-level tests.
func repoPackages(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	return pkgs
}

// TestRepoLintClean is the gate the CI paralint job mirrors: the whole
// repository must be violation-free under the committed configuration.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	diags, _, err := Run(repoPackages(t), Suite(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestKeyCoverGolden pins the committed field inventory: any change to
// what is fingerprinted, spec-assigned, or execution-only shows up as a
// golden diff in review. Regenerate with `go test ./internal/lint
// -run TestKeyCoverGolden -update`.
func TestKeyCoverGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	_, results, err := Run(repoPackages(t), []*Analyzer{KeyCover}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var inv []string
	// Fixed section order: the prepare side (core), then the spec side.
	for _, pkgPath := range []string{"paratime/internal/core", "paratime/internal/spec"} {
		lines, ok := results[ResultKey{pkgPath, "keycover"}].([]string)
		if !ok {
			t.Fatalf("no keycover inventory for %s", pkgPath)
		}
		inv = append(inv, lines...)
	}
	got := strings.Join(inv, "\n") + "\n"
	const golden = "testdata/keycover.golden"
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("field inventory drifted from %s (run with -update after review):\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestParseAllowlist pins the allowlist format errors.
func TestParseAllowlist(t *testing.T) {
	allow, err := ParseAllowlist("# comment\n\npkg F time.Now # why\n")
	if err != nil {
		t.Fatal(err)
	}
	if !allow["pkg F time.Now"] {
		t.Errorf("entry not parsed: %v", allow)
	}
	if _, err := ParseAllowlist("pkg F\n"); err == nil {
		t.Error("two-column line should be rejected")
	}
}

// TestSuiteOrder pins the reporting order of the suite.
func TestSuiteOrder(t *testing.T) {
	var names []string
	for _, a := range Suite() {
		names = append(names, a.Name)
	}
	if got, want := strings.Join(names, " "), "mapiter keycover nondeterm sortedout"; got != want {
		t.Errorf("Suite() order = %q, want %q", got, want)
	}
}

// TestDirectiveLines pins the directive parser against comment styles.
func TestDirectiveLines(t *testing.T) {
	pkgs := loadFixture(t, "sortedouttest")
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			dirs := directiveLines(pkg.Fset, file)
			n := 0
			for _, set := range dirs {
				if set[DirUnordered] || set[DirCanonical] {
					n++
				}
			}
			if n < 4 {
				t.Errorf("expected at least 4 directive lines in fixture, found %d", n)
			}
		}
	}
}
