package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{R0: "r0", R7: "r7", SP: "sp", RA: "ra"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestClassOf(t *testing.T) {
	cases := map[Op]Class{
		NOP: ClassNop, HALT: ClassHalt,
		ADD: ClassALU, ADDI: ClassALU, LI: ClassALU, SLT: ClassALU,
		MUL: ClassMul, DIV: ClassDiv, REM: ClassDiv,
		LD: ClassLoad, ST: ClassStore,
		BEQ: ClassBranch, BGE: ClassBranch,
		J: ClassJump, CALL: ClassJump, RET: ClassJump,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestInstPredicates(t *testing.T) {
	if !(Inst{Op: BEQ}).IsBranch() || (Inst{Op: J}).IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	for _, op := range []Op{BEQ, BNE, BLT, BGE, J, CALL, RET, HALT} {
		if !(Inst{Op: op}).IsControl() {
			t.Errorf("%v should be control", op)
		}
	}
	for _, op := range []Op{ADD, LD, ST, NOP, LI} {
		if (Inst{Op: op}).IsControl() {
			t.Errorf("%v should not be control", op)
		}
	}
	if !(Inst{Op: LD}).IsMem() || !(Inst{Op: ST}).IsMem() || (Inst{Op: ADD}).IsMem() {
		t.Error("IsMem misclassifies")
	}
}

func TestProgramAddrIndexRoundTrip(t *testing.T) {
	p := NewBuilder("t").Nop().Nop().Halt().MustDone()
	for i := range p.Insts {
		if got := p.Index(p.Addr(i)); got != i {
			t.Errorf("Index(Addr(%d)) = %d", i, got)
		}
	}
	if p.Index(p.Base-4) != -1 || p.Index(p.End()) != -1 || p.Index(p.Base+1) != -1 {
		t.Error("Index should reject out-of-range or misaligned addresses")
	}
}

func TestValidateRejectsBadTarget(t *testing.T) {
	p := &Program{Name: "bad", Base: DefaultBase, Insts: []Inst{{Op: J, Target: 0}}}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted an out-of-range jump target")
	}
}

func TestValidateRejectsEmptyAndMisaligned(t *testing.T) {
	if err := (&Program{Name: "e", Base: DefaultBase}).Validate(); err == nil {
		t.Error("empty program accepted")
	}
	p := &Program{Name: "m", Base: DefaultBase + 2, Insts: []Inst{{Op: NOP}}}
	if err := p.Validate(); err == nil {
		t.Error("misaligned base accepted")
	}
	p2 := NewBuilder("d").Halt().MustDone()
	p2.Data[3] = 1
	if err := p2.Validate(); err == nil {
		t.Error("misaligned data word accepted")
	}
}

func TestBuilderForwardLabels(t *testing.T) {
	p, err := NewBuilder("fwd").
		Li(R1, 3).
		Label("loop").OpI(ADDI, R1, R1, -1).
		Br(BNE, R1, R0, "loop").
		Jmp("end").
		Nop().
		Label("end").Halt().
		Done()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[2].Target != p.Addr(1) {
		t.Errorf("backward branch target = 0x%x, want 0x%x", p.Insts[2].Target, p.Addr(1))
	}
	if p.Insts[3].Target != p.Addr(5) {
		t.Errorf("forward jump target = 0x%x, want 0x%x", p.Insts[3].Target, p.Addr(5))
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("x").Jmp("nowhere").Halt().Done(); err == nil {
		t.Error("undefined label accepted")
	}
	if _, err := NewBuilder("x").Label("a").Label("a").Halt().Done(); err == nil {
		t.Error("duplicate label accepted")
	}
	if _, err := NewBuilder("x").La(R1, "noarr").Halt().Done(); err == nil {
		t.Error("undefined data label accepted")
	}
}

func TestDataWordsPlacement(t *testing.T) {
	b := NewBuilder("d")
	a1 := b.DataWords("xs", 1, 2, 3)
	a2 := b.DataWords("ys", 4)
	p := b.Halt().MustDone()
	if a1%4 != 0 || a2%4 != 0 {
		t.Fatal("unaligned data arrays")
	}
	if a2 <= a1+8 {
		t.Fatalf("arrays overlap: xs@0x%x ys@0x%x", a1, a2)
	}
	if p.Data[a1+8] != 3 || p.Data[a2] != 4 {
		t.Error("data image wrong")
	}
	if p.DataLabels["xs"] != a1 || p.DataLabels["ys"] != a2 {
		t.Error("data labels wrong")
	}
}

const countdownSrc = `
; counts r1 from 5 to 0, accumulating into r2
        li   r1, 5
        li   r2, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
`

func TestAssembleCountdown(t *testing.T) {
	p, err := Assemble("countdown", countdownSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 6 {
		t.Fatalf("got %d instructions, want 6", len(p.Insts))
	}
	st := NewState(p)
	if _, err := st.Run(1000); err != nil {
		t.Fatal(err)
	}
	if st.Reg[R2] != 15 {
		t.Errorf("r2 = %d, want 15", st.Reg[R2])
	}
	if st.Reg[R1] != 0 {
		t.Errorf("r1 = %d, want 0", st.Reg[R1])
	}
}

func TestAssembleDataAndMemory(t *testing.T) {
	src := `
        li   r1, arr
        ld   r2, 0(r1)
        ld   r3, 4(r1)
        add  r4, r2, r3
        st   r4, 8(r1)
        halt
.data 0x8000
arr:    .word 10 20 0
`
	p, err := Assemble("mem", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.DataLabels["arr"] != 0x8000 {
		t.Fatalf("arr at 0x%x, want 0x8000", p.DataLabels["arr"])
	}
	st := NewState(p)
	if _, err := st.Run(100); err != nil {
		t.Fatal(err)
	}
	if st.Mem[0x8008] != 30 {
		t.Errorf("arr[2] = %d, want 30", st.Mem[0x8008])
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frob r1, r2",          // unknown mnemonic
		"add r1, r2",           // wrong arity
		"ld r1, r2",            // bad memory operand
		"li r99, 4\nhalt",      // bad register
		"beq r1, r2, 12",       // branch to non-label
		".word 1",              // .word outside .data
		"li r1, zzz\nhalt",     // undefined data label
		"x: nop\nx: nop\nhalt", // duplicate label
	}
	for _, src := range bad {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("Assemble accepted %q", src)
		}
	}
}

func TestAssembleDisassembleReassemble(t *testing.T) {
	p := MustAssemble("countdown", countdownSrc)
	dis := p.Disassemble()
	if !strings.Contains(dis, "addi r1, r1, -1") {
		t.Errorf("disassembly missing addi line:\n%s", dis)
	}
	if !strings.Contains(dis, "loop:") {
		t.Errorf("disassembly missing label:\n%s", dis)
	}
}

func TestExecCallRet(t *testing.T) {
	src := `
        li   r1, 7
        call double
        call double
        halt
double: add r1, r1, r1
        ret
`
	st := NewState(MustAssemble("callret", src))
	if _, err := st.Run(100); err != nil {
		t.Fatal(err)
	}
	if st.Reg[R1] != 28 {
		t.Errorf("r1 = %d, want 28", st.Reg[R1])
	}
}

func TestExecR0IsZero(t *testing.T) {
	st := NewState(MustAssemble("r0", "li r0, 42\nadd r1, r0, r0\nhalt"))
	if _, err := st.Run(10); err != nil {
		t.Fatal(err)
	}
	if st.Reg[R0] != 0 || st.Reg[R1] != 0 {
		t.Errorf("r0 = %d r1 = %d, want 0 0", st.Reg[R0], st.Reg[R1])
	}
}

func TestExecDivRemByZero(t *testing.T) {
	st := NewState(MustAssemble("div0", "li r1, 9\ndiv r2, r1, r0\nrem r3, r1, r0\nhalt"))
	if _, err := st.Run(10); err != nil {
		t.Fatal(err)
	}
	if st.Reg[R2] != 0 || st.Reg[R3] != 0 {
		t.Errorf("div/rem by zero = %d/%d, want 0/0", st.Reg[R2], st.Reg[R3])
	}
}

func TestExecFuelExhaustion(t *testing.T) {
	st := NewState(MustAssemble("spin", "loop: j loop"))
	if _, err := st.Run(50); err == nil {
		t.Error("diverging program did not report fuel exhaustion")
	}
}

func TestExecMisalignedAccess(t *testing.T) {
	st := NewState(MustAssemble("mis", "li r1, 2\nld r2, 0(r1)\nhalt"))
	if _, err := st.Run(10); err == nil {
		t.Error("misaligned load not faulted")
	}
}

func TestExecTraceOrder(t *testing.T) {
	src := `
        li r1, 0x8000
        ld r2, 0(r1)
        st r2, 4(r1)
        halt
`
	st := NewState(MustAssemble("trace", src))
	var evs []TraceEvent
	st.Trace = func(e TraceEvent) { evs = append(evs, e) }
	if _, err := st.Run(10); err != nil {
		t.Fatal(err)
	}
	// 4 fetches + 1 load + 1 store.
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6", len(evs))
	}
	if evs[2].Kind != TraceLoad || evs[2].Addr != 0x8000 {
		t.Errorf("event 2 = %+v, want load @0x8000", evs[2])
	}
	if evs[4].Kind != TraceStore || evs[4].Addr != 0x8004 {
		t.Errorf("event 4 = %+v, want store @0x8004", evs[4])
	}
}

// TestALUSemanticsQuick cross-checks executor ALU results against direct
// Go arithmetic over random operands.
func TestALUSemanticsQuick(t *testing.T) {
	ops := []struct {
		op   Op
		gold func(a, b int32) int32
	}{
		{ADD, func(a, b int32) int32 { return a + b }},
		{SUB, func(a, b int32) int32 { return a - b }},
		{MUL, func(a, b int32) int32 { return a * b }},
		{AND, func(a, b int32) int32 { return a & b }},
		{OR, func(a, b int32) int32 { return a | b }},
		{XOR, func(a, b int32) int32 { return a ^ b }},
		{SLL, func(a, b int32) int32 { return a << (uint32(b) & 31) }},
		{SRL, func(a, b int32) int32 { return int32(uint32(a) >> (uint32(b) & 31)) }},
		{SRA, func(a, b int32) int32 { return a >> (uint32(b) & 31) }},
		{SLT, func(a, b int32) int32 { return boolToInt(a < b) }},
		{DIV, func(a, b int32) int32 {
			switch {
			case b == 0:
				return 0
			case a == -1<<31 && b == -1:
				return -1 << 31
			default:
				return a / b
			}
		}},
		{REM, func(a, b int32) int32 {
			switch {
			case b == 0:
				return 0
			case a == -1<<31 && b == -1:
				return 0
			default:
				return a % b
			}
		}},
	}
	for _, tc := range ops {
		tc := tc
		f := func(a, b int32) bool {
			p := NewBuilder("q").
				Li(R1, a).Li(R2, b).
				Op3(tc.op, R3, R1, R2).
				Halt().MustDone()
			st := NewState(p)
			if _, err := st.Run(10); err != nil {
				return false
			}
			return st.Reg[R3] == tc.gold(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", tc.op, err)
		}
	}
}

func TestFingerprint(t *testing.T) {
	asm := func(src string) *Program { return MustAssemble("fp", src) }
	base := `
        li   r1, 10
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`
	if asm(base).Fingerprint() != asm(base).Fingerprint() {
		t.Error("identical programs fingerprint differently")
	}
	// Identical instruction stream (same branch targets), an extra label
	// on different instructions: flow annotations bind bounds by label,
	// so these must not share a memo key.
	markFirst := `
x:      li   r1, 10
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`
	markLast := `
        li   r1, 10
loop:   addi r1, r1, -1
        bne  r1, r0, loop
x:      halt`
	if asm(markFirst).Fingerprint() == asm(markLast).Fingerprint() {
		t.Error("label placement not part of the fingerprint")
	}
	changed := `
        li   r1, 11
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`
	if asm(base).Fingerprint() == asm(changed).Fingerprint() {
		t.Error("instruction change not part of the fingerprint")
	}
	rebased := asm(base)
	rebased.Rebase(0x2000)
	if asm(base).Fingerprint() == rebased.Fingerprint() {
		t.Error("base address not part of the fingerprint")
	}
}
