// Package isa defines a small deterministic 32-bit RISC instruction set
// used as the analysis and simulation target of the paratime toolkit.
//
// The ISA is deliberately simple — fixed 4-byte instructions, sixteen
// general registers with a hardwired zero register, word-aligned memory
// accesses — so that the worst-case execution time (WCET) machinery
// (control-flow reconstruction, cache abstract interpretation, pipeline
// timing, IPET) operates on exactly the same kind of object stream a
// production WCET tool sees, without carrying a commercial ISA decoder.
package isa

import "fmt"

// Reg identifies one of the sixteen architectural registers R0..R15.
// R0 is hardwired to zero: reads return 0 and writes are discarded.
// By convention R14 is the stack pointer and R15 the link register
// written by CALL and consumed by RET.
type Reg uint8

// Architectural register conventions.
const (
	R0 Reg = iota // hardwired zero
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	SP // R14: stack pointer by convention
	RA // R15: link register written by CALL

	// NumRegs is the number of architectural registers.
	NumRegs = 16
)

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case RA:
		return "ra"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. Three-register ALU forms read Rs1 and Rs2 and write Rd.
// Immediate forms read Rs1 and the 32-bit immediate. Control transfers
// carry an absolute byte address in Target (resolved from a label by the
// assembler).
const (
	NOP  Op = iota // no operation
	HALT           // stop the hart; terminates simulation

	LI  // Rd = Imm
	MOV // Rd = Rs1

	ADD // Rd = Rs1 + Rs2
	SUB // Rd = Rs1 - Rs2
	MUL // Rd = Rs1 * Rs2
	DIV // Rd = Rs1 / Rs2 (0 when Rs2 == 0)
	REM // Rd = Rs1 % Rs2 (0 when Rs2 == 0)
	AND // Rd = Rs1 & Rs2
	OR  // Rd = Rs1 | Rs2
	XOR // Rd = Rs1 ^ Rs2
	SLL // Rd = Rs1 << (Rs2 & 31)
	SRL // Rd = int32(uint32(Rs1) >> (Rs2 & 31))
	SRA // Rd = Rs1 >> (Rs2 & 31)
	SLT // Rd = 1 if Rs1 < Rs2 else 0

	ADDI // Rd = Rs1 + Imm
	ANDI // Rd = Rs1 & Imm
	ORI  // Rd = Rs1 | Imm
	SLLI // Rd = Rs1 << (Imm & 31)
	SRLI // Rd = int32(uint32(Rs1) >> (Imm & 31))
	SLTI // Rd = 1 if Rs1 < Imm else 0

	LD // Rd = Mem[Rs1 + Imm] (word, 4-byte aligned)
	ST // Mem[Rs1 + Imm] = Rs2 (word, 4-byte aligned)

	BEQ // if Rs1 == Rs2 goto Target
	BNE // if Rs1 != Rs2 goto Target
	BLT // if Rs1 <  Rs2 goto Target
	BGE // if Rs1 >= Rs2 goto Target

	J    // goto Target
	CALL // RA = next instruction address; goto Target
	RET  // goto RA

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", HALT: "halt",
	LI: "li", MOV: "mov",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	AND: "and", OR: "or", XOR: "xor", SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt",
	ADDI: "addi", ANDI: "andi", ORI: "ori", SLLI: "slli", SRLI: "srli", SLTI: "slti",
	LD: "ld", ST: "st",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	J: "j", CALL: "call", RET: "ret",
}

// String returns the assembler mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// opsByName inverts opNames for mnemonic lookup (serialization formats
// store opcodes by mnemonic so encodings stay stable if numeric opcode
// values ever shift).
var opsByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op, name := range opNames {
		m[name] = Op(op)
	}
	return m
}()

// OpByName returns the opcode with the given assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

// Class groups opcodes by their pipeline resource usage. The pipeline
// timing model assigns execution latencies per class, not per opcode.
type Class uint8

// Instruction classes.
const (
	ClassNop Class = iota
	ClassALU
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // J, CALL, RET
	ClassHalt

	// NumClasses is the number of pipeline classes; dense per-class
	// tables (e.g. pipeline.LatTable) are indexed by Class.
	NumClasses
)

// String returns a human-readable class name.
func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassDiv:
		return "div"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassJump:
		return "jump"
	case ClassHalt:
		return "halt"
	default:
		return "?"
	}
}

// ClassOf returns the pipeline class of an opcode.
func ClassOf(op Op) Class {
	switch op {
	case NOP:
		return ClassNop
	case HALT:
		return ClassHalt
	case MUL:
		return ClassMul
	case DIV, REM:
		return ClassDiv
	case LD:
		return ClassLoad
	case ST:
		return ClassStore
	case BEQ, BNE, BLT, BGE:
		return ClassBranch
	case J, CALL, RET:
		return ClassJump
	default:
		return ClassALU
	}
}

// InstBytes is the size of every instruction in bytes. The ISA is
// fixed-width; instruction i of a program with base address B occupies
// [B+4i, B+4i+4).
const InstBytes = 4

// Inst is one decoded instruction. Fields not used by an opcode are zero.
type Inst struct {
	Op     Op
	Rd     Reg    // destination register
	Rs1    Reg    // first source / base register
	Rs2    Reg    // second source / store-value register
	Imm    int32  // immediate operand / memory displacement
	Target uint32 // absolute byte address for branches, J and CALL
}

// IsBranch reports whether the instruction is a conditional branch.
func (in Inst) IsBranch() bool {
	return in.Op >= BEQ && in.Op <= BGE
}

// IsControl reports whether the instruction can change the PC to anything
// other than the next sequential instruction.
func (in Inst) IsControl() bool {
	return in.IsBranch() || in.Op == J || in.Op == CALL || in.Op == RET || in.Op == HALT
}

// IsMem reports whether the instruction accesses data memory.
func (in Inst) IsMem() bool { return in.Op == LD || in.Op == ST }

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch in.Op {
	case NOP, HALT, RET:
		return in.Op.String()
	case LI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case MOV:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
	case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SLL, SRL, SRA, SLT:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	case ADDI, ANDI, ORI, SLLI, SRLI, SLTI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case LD:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case ST:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case BEQ, BNE, BLT, BGE:
		return fmt.Sprintf("%s %s, %s, 0x%x", in.Op, in.Rs1, in.Rs2, in.Target)
	case J, CALL:
		return fmt.Sprintf("%s 0x%x", in.Op, in.Target)
	default:
		return fmt.Sprintf("%s ?", in.Op)
	}
}
