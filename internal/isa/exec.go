package isa

import "fmt"

// TraceKind discriminates trace events emitted by the executor.
type TraceKind uint8

// Trace event kinds.
const (
	TraceFetch TraceKind = iota // instruction fetch; Addr is the instruction address
	TraceLoad                   // data load; Addr is the effective address
	TraceStore                  // data store; Addr is the effective address
)

// TraceEvent is one architectural event, delivered in program order.
type TraceEvent struct {
	Kind TraceKind
	Addr uint32
	Inst Inst // the instruction responsible
}

// State is the architectural state of one hart executing a Program.
// It is timing-free: Step retires exactly one instruction. The cycle-level
// behaviour lives in internal/sim; this executor defines the reference
// semantics the simulator must agree with, and produces address traces for
// cache-analysis validation.
type State struct {
	Prog   *Program
	PC     uint32
	Reg    [NumRegs]int32
	Mem    map[uint32]int32
	Halted bool

	// Retired counts retired instructions.
	Retired uint64

	// Trace, when non-nil, receives fetch/load/store events in order.
	Trace func(TraceEvent)
}

// NewState returns a reset State at the program's entry with the data
// image loaded.
func NewState(p *Program) *State {
	mem := make(map[uint32]int32, len(p.Data))
	//paralint:unordered plain copy into a fresh map; State.Mem must be non-nil even when Data is
	for a, v := range p.Data {
		mem[a] = v
	}
	return &State{Prog: p, PC: p.Base, Mem: mem}
}

// load reads a data word; missing addresses read as zero.
func (s *State) load(a uint32) (int32, error) {
	if a%4 != 0 {
		return 0, fmt.Errorf("misaligned load at 0x%x", a)
	}
	return s.Mem[a], nil
}

func (s *State) store(a uint32, v int32) error {
	if a%4 != 0 {
		return fmt.Errorf("misaligned store at 0x%x", a)
	}
	s.Mem[a] = v
	return nil
}

func (s *State) setReg(r Reg, v int32) {
	if r != R0 {
		s.Reg[r] = v
	}
}

// Step retires one instruction. It returns an error for architectural
// faults (bad PC, misaligned access). Stepping a halted state is a no-op.
func (s *State) Step() error {
	if s.Halted {
		return nil
	}
	idx := s.Prog.Index(s.PC)
	if idx < 0 {
		return fmt.Errorf("PC 0x%x outside text segment of %q", s.PC, s.Prog.Name)
	}
	in := s.Prog.Insts[idx]
	if s.Trace != nil {
		s.Trace(TraceEvent{Kind: TraceFetch, Addr: s.PC, Inst: in})
	}
	next := s.PC + InstBytes
	r := func(reg Reg) int32 { return s.Reg[reg] }

	switch in.Op {
	case NOP:
	case HALT:
		s.Halted = true
	case LI:
		s.setReg(in.Rd, in.Imm)
	case MOV:
		s.setReg(in.Rd, r(in.Rs1))
	case ADD:
		s.setReg(in.Rd, r(in.Rs1)+r(in.Rs2))
	case SUB:
		s.setReg(in.Rd, r(in.Rs1)-r(in.Rs2))
	case MUL:
		s.setReg(in.Rd, r(in.Rs1)*r(in.Rs2))
	case DIV:
		switch {
		case r(in.Rs2) == 0:
			s.setReg(in.Rd, 0)
		case r(in.Rs1) == -1<<31 && r(in.Rs2) == -1: // wraps; Go would panic
			s.setReg(in.Rd, -1<<31)
		default:
			s.setReg(in.Rd, r(in.Rs1)/r(in.Rs2))
		}
	case REM:
		switch {
		case r(in.Rs2) == 0:
			s.setReg(in.Rd, 0)
		case r(in.Rs1) == -1<<31 && r(in.Rs2) == -1:
			s.setReg(in.Rd, 0)
		default:
			s.setReg(in.Rd, r(in.Rs1)%r(in.Rs2))
		}
	case AND:
		s.setReg(in.Rd, r(in.Rs1)&r(in.Rs2))
	case OR:
		s.setReg(in.Rd, r(in.Rs1)|r(in.Rs2))
	case XOR:
		s.setReg(in.Rd, r(in.Rs1)^r(in.Rs2))
	case SLL:
		s.setReg(in.Rd, r(in.Rs1)<<(uint32(r(in.Rs2))&31))
	case SRL:
		s.setReg(in.Rd, int32(uint32(r(in.Rs1))>>(uint32(r(in.Rs2))&31)))
	case SRA:
		s.setReg(in.Rd, r(in.Rs1)>>(uint32(r(in.Rs2))&31))
	case SLT:
		s.setReg(in.Rd, boolToInt(r(in.Rs1) < r(in.Rs2)))
	case ADDI:
		s.setReg(in.Rd, r(in.Rs1)+in.Imm)
	case ANDI:
		s.setReg(in.Rd, r(in.Rs1)&in.Imm)
	case ORI:
		s.setReg(in.Rd, r(in.Rs1)|in.Imm)
	case SLLI:
		s.setReg(in.Rd, r(in.Rs1)<<(uint32(in.Imm)&31))
	case SRLI:
		s.setReg(in.Rd, int32(uint32(r(in.Rs1))>>(uint32(in.Imm)&31)))
	case SLTI:
		s.setReg(in.Rd, boolToInt(r(in.Rs1) < in.Imm))
	case LD:
		a := uint32(r(in.Rs1) + in.Imm)
		if s.Trace != nil {
			s.Trace(TraceEvent{Kind: TraceLoad, Addr: a, Inst: in})
		}
		v, err := s.load(a)
		if err != nil {
			return fmt.Errorf("at 0x%x %v: %w", s.PC, in, err)
		}
		s.setReg(in.Rd, v)
	case ST:
		a := uint32(r(in.Rs1) + in.Imm)
		if s.Trace != nil {
			s.Trace(TraceEvent{Kind: TraceStore, Addr: a, Inst: in})
		}
		if err := s.store(a, r(in.Rs2)); err != nil {
			return fmt.Errorf("at 0x%x %v: %w", s.PC, in, err)
		}
	case BEQ:
		if r(in.Rs1) == r(in.Rs2) {
			next = in.Target
		}
	case BNE:
		if r(in.Rs1) != r(in.Rs2) {
			next = in.Target
		}
	case BLT:
		if r(in.Rs1) < r(in.Rs2) {
			next = in.Target
		}
	case BGE:
		if r(in.Rs1) >= r(in.Rs2) {
			next = in.Target
		}
	case J:
		next = in.Target
	case CALL:
		s.setReg(RA, int32(s.PC+InstBytes))
		next = in.Target
	case RET:
		next = uint32(r(RA))
	default:
		return fmt.Errorf("at 0x%x: invalid opcode %d", s.PC, in.Op)
	}
	s.PC = next
	s.Retired++
	return nil
}

// Run steps until HALT or until maxSteps instructions have retired.
// It returns the number of retired instructions and an error if the
// program faulted or the fuel ran out (likely divergence).
func (s *State) Run(maxSteps uint64) (uint64, error) {
	start := s.Retired
	for !s.Halted {
		if s.Retired-start >= maxSteps {
			return s.Retired - start, fmt.Errorf("program %q did not halt within %d steps", s.Prog.Name, maxSteps)
		}
		if err := s.Step(); err != nil {
			return s.Retired - start, err
		}
	}
	return s.Retired - start, nil
}

func boolToInt(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
