package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses assembler text into a Program. The syntax is
// line-oriented:
//
//	; comment            # comment
//	.text                switch to the text segment (default)
//	.data [addr]         switch to the data segment, optionally at addr
//	.word v1 v2 ...      emit data words at the data cursor
//	.space n             reserve n words of zeroed data
//	label:               attach a label to the current position
//	op operands          one instruction, e.g.  addi r1, r1, -1
//
// Operands are registers (r0..r15, sp, ra), immediates (decimal or 0x hex),
// displacement forms off(rN) for ld/st, and labels for control transfers.
// `li rd, label` loads the address of a data label. Example:
//
//	        li   r1, 8
//	loop:   addi r1, r1, -1
//	        bne  r1, r0, loop
//	        halt
func Assemble(name, src string) (*Program, error) {
	a := &asm{b: NewBuilder(name), inData: false}
	for lineno, raw := range strings.Split(src, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineno+1, err)
		}
	}
	return a.b.Done()
}

// MustAssemble is Assemble, panicking on error. For static fixtures.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type asm struct {
	b      *Builder
	inData bool
}

func (a *asm) line(raw string) error {
	line := raw
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	// A line may carry "label: instruction".
	for {
		i := strings.Index(line, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(line[:i])
		if !isIdent(label) {
			break // e.g. "ld r1, 0(r2)" has no label colon
		}
		if a.inData {
			a.b.prog.DataLabels[label] = a.b.dataPos
		} else {
			if _, dup := a.b.prog.Labels[label]; dup {
				return fmt.Errorf("duplicate label %q", label)
			}
			a.b.prog.Labels[label] = len(a.b.prog.Insts)
		}
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	if strings.HasPrefix(line, ".") {
		return a.directive(line)
	}
	return a.inst(line)
}

func (a *asm) directive(line string) error {
	f := strings.Fields(line)
	switch f[0] {
	case ".text":
		a.inData = false
		return nil
	case ".data":
		a.inData = true
		if len(f) > 1 {
			v, err := parseImm(f[1])
			if err != nil {
				return fmt.Errorf(".data address: %w", err)
			}
			a.b.dataPos = uint32(v)
		}
		return nil
	case ".word":
		if !a.inData {
			return fmt.Errorf(".word outside .data")
		}
		for _, tok := range f[1:] {
			v, err := parseImm(strings.TrimSuffix(tok, ","))
			if err != nil {
				return err
			}
			a.b.prog.Data[a.b.dataPos] = v
			a.b.dataPos += 4
		}
		return nil
	case ".space":
		if !a.inData {
			return fmt.Errorf(".space outside .data")
		}
		if len(f) != 2 {
			return fmt.Errorf(".space wants one operand")
		}
		n, err := parseImm(f[1])
		if err != nil || n < 0 {
			return fmt.Errorf(".space wants a non-negative word count")
		}
		a.b.dataPos += uint32(n) * 4
		return nil
	default:
		return fmt.Errorf("unknown directive %s", f[0])
	}
}

func (a *asm) inst(line string) error {
	if a.inData {
		return fmt.Errorf("instruction in .data segment")
	}
	mn, rest, _ := strings.Cut(line, " ")
	mn = strings.ToLower(strings.TrimSpace(mn))
	ops := splitOperands(rest)
	op, ok := mnemonics[mn]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}
	switch op {
	case NOP, HALT, RET:
		if err := need(0); err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op})
	case LI:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		if imm, err := parseImm(ops[1]); err == nil {
			a.b.Li(rd, imm)
		} else if isIdent(ops[1]) {
			a.b.La(rd, ops[1]) // address of data label
		} else {
			return fmt.Errorf("li operand %q: neither immediate nor label", ops[1])
		}
	case MOV:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		a.b.Mov(rd, rs)
	case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SLL, SRL, SRA, SLT:
		if err := need(3); err != nil {
			return err
		}
		rd, err1 := parseReg(ops[0])
		rs1, err2 := parseReg(ops[1])
		rs2, err3 := parseReg(ops[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		a.b.Op3(op, rd, rs1, rs2)
	case ADDI, ANDI, ORI, SLLI, SRLI, SLTI:
		if err := need(3); err != nil {
			return err
		}
		rd, err1 := parseReg(ops[0])
		rs1, err2 := parseReg(ops[1])
		imm, err3 := parseImm(ops[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		a.b.OpI(op, rd, rs1, imm)
	case LD:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		off, base, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		a.b.Ld(rd, base, off)
	case ST:
		if err := need(2); err != nil {
			return err
		}
		rs2, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		off, base, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		a.b.St(rs2, base, off)
	case BEQ, BNE, BLT, BGE:
		if err := need(3); err != nil {
			return err
		}
		rs1, err1 := parseReg(ops[0])
		rs2, err2 := parseReg(ops[1])
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		if !isIdent(ops[2]) {
			return fmt.Errorf("branch target %q is not a label", ops[2])
		}
		a.b.Br(op, rs1, rs2, ops[2])
	case J, CALL:
		if err := need(1); err != nil {
			return err
		}
		if !isIdent(ops[0]) {
			return fmt.Errorf("jump target %q is not a label", ops[0])
		}
		if op == J {
			a.b.Jmp(ops[0])
		} else {
			a.b.Call(ops[0])
		}
	default:
		return fmt.Errorf("unhandled opcode %v", op)
	}
	return nil
}

var mnemonics = map[string]Op{
	"nop": NOP, "halt": HALT, "li": LI, "mov": MOV,
	"add": ADD, "sub": SUB, "mul": MUL, "div": DIV, "rem": REM,
	"and": AND, "or": OR, "xor": XOR, "sll": SLL, "srl": SRL, "sra": SRA, "slt": SLT,
	"addi": ADDI, "andi": ANDI, "ori": ORI, "slli": SLLI, "srli": SRLI, "slti": SLTI,
	"ld": LD, "st": ST,
	"beq": BEQ, "bne": BNE, "blt": BLT, "bge": BGE,
	"j": J, "call": CALL, "ret": RET,
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (Reg, error) {
	switch strings.ToLower(s) {
	case "sp":
		return SP, nil
	case "ra":
		return RA, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}

// parseMem parses "off(rN)" displacement syntax.
func parseMem(s string) (off int32, base Reg, err error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q, want off(reg)", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err = parseImm(offStr)
	if err != nil {
		return 0, 0, err
	}
	base, err = parseReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	return off, base, err
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
