package isa

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"maps"
	"slices"
	"strings"
)

// DefaultBase is the default base address of a program's text segment.
const DefaultBase = 0x1000

// Program is a fully linked executable image: a contiguous text segment
// of fixed-width instructions plus an initial data image. Labels are kept
// for diagnostics and for the CFG builder's procedure discovery.
type Program struct {
	Name  string
	Base  uint32 // byte address of Insts[0]
	Insts []Inst

	// Labels maps a code label to the index of the instruction it
	// precedes. Data labels live in DataLabels.
	Labels map[string]int

	// Data is the initial data-memory image (word-addressed by byte
	// address; addresses are 4-byte aligned).
	Data map[uint32]int32

	// DataLabels maps a data label to its byte address.
	DataLabels map[string]uint32
}

// Addr returns the byte address of instruction index i.
func (p *Program) Addr(i int) uint32 { return p.Base + uint32(i)*InstBytes }

// Rebase moves the text segment to a new base address, fixing every
// control-transfer target. Co-scheduled tasks are placed at disjoint
// bases so shared-cache analyses see disjoint line sets.
func (p *Program) Rebase(newBase uint32) {
	old := p.Base
	p.Base = newBase
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.IsBranch() || in.Op == J || in.Op == CALL {
			in.Target = in.Target - old + newBase
		}
	}
}

// Index returns the instruction index of byte address a, or -1 if the
// address is outside the text segment or misaligned.
func (p *Program) Index(a uint32) int {
	if a < p.Base || (a-p.Base)%InstBytes != 0 {
		return -1
	}
	i := int((a - p.Base) / InstBytes)
	if i >= len(p.Insts) {
		return -1
	}
	return i
}

// End returns the first byte address past the text segment.
func (p *Program) End() uint32 { return p.Base + uint32(len(p.Insts))*InstBytes }

// Fingerprint returns a collision-resistant digest of the program's
// analysis-relevant content: text base, instruction stream, code labels
// (flow annotations bind loop bounds by label, so label placement
// changes the analysis) and data image. Programs with equal
// fingerprints yield identical analysis artefacts, which lets the
// batch engine memoize prepared analyses by content instead of pointer
// identity.
func (p *Program) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "base:%d;", p.Base)
	for _, in := range p.Insts {
		fmt.Fprintf(h, "i:%d,%d,%d,%d,%d,%d;", in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm, in.Target)
	}
	labels := make([]string, 0, len(p.Labels))
	for l := range p.Labels {
		labels = append(labels, l)
	}
	slices.Sort(labels)
	for _, l := range labels {
		fmt.Fprintf(h, "l:%s=%d;", l, p.Labels[l])
	}
	addrs := make([]uint32, 0, len(p.Data))
	for a := range p.Data {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)
	for _, a := range addrs {
		fmt.Fprintf(h, "d:%d=%d;", a, p.Data[a])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// LabelAt returns the (sorted, "/"-joined) labels attached to instruction
// index i, or "".
func (p *Program) LabelAt(i int) string {
	var ls []string
	for name, idx := range p.Labels {
		if idx == i {
			ls = append(ls, name)
		}
	}
	slices.Sort(ls)
	return strings.Join(ls, "/")
}

// Validate checks structural well-formedness: control-transfer targets in
// range and aligned, register indices valid, and memory displacements
// aligned. The CFG builder and simulator both rely on a validated program.
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("program %q: empty text segment", p.Name)
	}
	if p.Base%InstBytes != 0 {
		return fmt.Errorf("program %q: base 0x%x not %d-byte aligned", p.Name, p.Base, InstBytes)
	}
	for i, in := range p.Insts {
		if in.Op >= numOps {
			return fmt.Errorf("%s+%d: invalid opcode %d", p.Name, i, in.Op)
		}
		if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
			return fmt.Errorf("%s+%d: register out of range in %v", p.Name, i, in)
		}
		if in.IsBranch() || in.Op == J || in.Op == CALL {
			if p.Index(in.Target) < 0 {
				return fmt.Errorf("%s+%d: %v targets 0x%x outside text [0x%x,0x%x)",
					p.Name, i, in, in.Target, p.Base, p.End())
			}
		}
	}
	// Sorted addresses keep the first-error choice deterministic.
	for _, a := range slices.Sorted(maps.Keys(p.Data)) {
		if a%4 != 0 {
			return fmt.Errorf("program %q: misaligned data word at 0x%x", p.Name, a)
		}
	}
	return nil
}

// Disassemble renders the whole text segment with addresses and labels.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i, in := range p.Insts {
		if l := p.LabelAt(i); l != "" {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  0x%04x  %v\n", p.Addr(i), in)
	}
	return b.String()
}

// Builder assembles a Program programmatically. It is the API the
// workload generators use; hand-written benchmarks use the text assembler
// in asm.go instead. The zero Builder is not ready; use NewBuilder.
type Builder struct {
	prog    *Program
	pending map[string][]int // label -> instruction indices awaiting the label address
	dataPos uint32
	err     error
}

// NewBuilder returns a Builder for a program with the given name at the
// default base address.
func NewBuilder(name string) *Builder {
	return &Builder{
		prog: &Program{
			Name:       name,
			Base:       DefaultBase,
			Labels:     map[string]int{},
			Data:       map[uint32]int32{},
			DataLabels: map[string]uint32{},
		},
		pending: map[string][]int{},
		dataPos: 0x0002_0000,
	}
}

// SetBase overrides the text base address. Must be called before Emit.
func (b *Builder) SetBase(base uint32) *Builder {
	if len(b.prog.Insts) > 0 {
		b.fail(fmt.Errorf("SetBase after Emit"))
		return b
	}
	b.prog.Base = base
	return b
}

// SetDataBase moves the data cursor (before any DataWords call), so
// co-scheduled programs get disjoint data ranges.
func (b *Builder) SetDataBase(base uint32) *Builder {
	if len(b.prog.Data) > 0 {
		b.fail(fmt.Errorf("SetDataBase after DataWords"))
		return b
	}
	b.dataPos = base
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Label attaches a code label to the next emitted instruction.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.prog.Labels[name]; dup {
		b.fail(fmt.Errorf("duplicate label %q", name))
		return b
	}
	b.prog.Labels[name] = len(b.prog.Insts)
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in Inst) *Builder {
	b.prog.Insts = append(b.prog.Insts, in)
	return b
}

// emitTo appends a control transfer whose target label may be forward.
func (b *Builder) emitTo(in Inst, label string) *Builder {
	b.pending[label] = append(b.pending[label], len(b.prog.Insts))
	return b.Emit(in)
}

// Convenience emitters. Branch-style emitters take a label that may be
// defined later; Done resolves them.

// Nop appends a NOP.
func (b *Builder) Nop() *Builder { return b.Emit(Inst{Op: NOP}) }

// Halt appends a HALT.
func (b *Builder) Halt() *Builder { return b.Emit(Inst{Op: HALT}) }

// Li appends Rd = imm.
func (b *Builder) Li(rd Reg, imm int32) *Builder { return b.Emit(Inst{Op: LI, Rd: rd, Imm: imm}) }

// La appends Rd = address-of data label (resolved at Done time).
func (b *Builder) La(rd Reg, dataLabel string) *Builder {
	b.pending["data:"+dataLabel] = append(b.pending["data:"+dataLabel], len(b.prog.Insts))
	return b.Emit(Inst{Op: LI, Rd: rd})
}

// Mov appends Rd = Rs.
func (b *Builder) Mov(rd, rs Reg) *Builder { return b.Emit(Inst{Op: MOV, Rd: rd, Rs1: rs}) }

// Op3 appends a three-register ALU instruction.
func (b *Builder) Op3(op Op, rd, rs1, rs2 Reg) *Builder {
	return b.Emit(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpI appends a register-immediate ALU instruction.
func (b *Builder) OpI(op Op, rd, rs1 Reg, imm int32) *Builder {
	return b.Emit(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ld appends Rd = Mem[rs1+off].
func (b *Builder) Ld(rd, rs1 Reg, off int32) *Builder {
	return b.Emit(Inst{Op: LD, Rd: rd, Rs1: rs1, Imm: off})
}

// St appends Mem[rs1+off] = rs2.
func (b *Builder) St(rs2, rs1 Reg, off int32) *Builder {
	return b.Emit(Inst{Op: ST, Rs2: rs2, Rs1: rs1, Imm: off})
}

// Br appends a conditional branch to a label.
func (b *Builder) Br(op Op, rs1, rs2 Reg, label string) *Builder {
	return b.emitTo(Inst{Op: op, Rs1: rs1, Rs2: rs2}, label)
}

// Jmp appends an unconditional jump to a label.
func (b *Builder) Jmp(label string) *Builder { return b.emitTo(Inst{Op: J}, label) }

// Call appends a CALL to a label.
func (b *Builder) Call(label string) *Builder { return b.emitTo(Inst{Op: CALL}, label) }

// Ret appends a RET.
func (b *Builder) Ret() *Builder { return b.Emit(Inst{Op: RET}) }

// DataWords places a labelled array of words in the data segment and
// returns its address.
func (b *Builder) DataWords(label string, words ...int32) uint32 {
	addr := b.dataPos
	if label != "" {
		if _, dup := b.prog.DataLabels[label]; dup {
			b.fail(fmt.Errorf("duplicate data label %q", label))
		}
		b.prog.DataLabels[label] = addr
	}
	for i, w := range words {
		b.prog.Data[addr+uint32(i)*4] = w
	}
	b.dataPos += uint32(len(words)) * 4
	// Keep arrays line-disjoint-ish: round up to the next 16-byte boundary
	// so distinct arrays do not silently share cache lines in experiments.
	b.dataPos = (b.dataPos + 15) &^ 15
	return addr
}

// Done resolves labels and validates the program.
func (b *Builder) Done() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Sorted labels keep the first-error choice deterministic.
	for _, label := range slices.Sorted(maps.Keys(b.pending)) {
		sites := b.pending[label]
		if dl, ok := strings.CutPrefix(label, "data:"); ok {
			addr, ok := b.prog.DataLabels[dl]
			if !ok {
				return nil, fmt.Errorf("undefined data label %q", dl)
			}
			for _, i := range sites {
				b.prog.Insts[i].Imm = int32(addr)
			}
			continue
		}
		idx, ok := b.prog.Labels[label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", label)
		}
		for _, i := range sites {
			b.prog.Insts[i].Target = b.prog.Addr(idx)
		}
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustDone is Done, panicking on error. Intended for static test fixtures
// and the built-in workload suite, where an error is a programming bug.
func (b *Builder) MustDone() *Program {
	p, err := b.Done()
	if err != nil {
		panic(err)
	}
	return p
}
