package ipet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"paratime/internal/cfg"
	"paratime/internal/flow"
	"paratime/internal/isa"
)

// TestSkeletonReSolveMatchesFresh: one compiled skeleton re-priced under
// many cost/event variants must return exactly what a fresh one-shot
// Solve returns, and the re-solves must hit the warm-start cache.
func TestSkeletonReSolveMatchesFresh(t *testing.T) {
	p := benchProblem(t)
	s, err := NewSkeleton(p.G, p.Extra)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	for variant := 0; variant < 10; variant++ {
		costs := map[cfg.BlockID]int{}
		for id := range p.Cost {
			costs[id] = p.Cost[id] + rng.Intn(9)
		}
		events := make([]Event, len(p.Events))
		copy(events, p.Events)
		for i := range events {
			events[i].Penalty = int64(5 + rng.Intn(40))
		}
		got, err := s.Solve(DenseCosts(p.G, costs), events)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Solve(&Problem{G: p.G, Cost: costs, Events: events, Extra: p.Extra})
		if err != nil {
			t.Fatal(err)
		}
		if got.WCET != want.WCET {
			t.Fatalf("variant %d: skeleton WCET %d, fresh %d", variant, got.WCET, want.WCET)
		}
		if got.Vars != want.Vars || got.Cons != want.Cons || got.Nodes != want.Nodes {
			t.Fatalf("variant %d: stats (%d,%d,%d) vs fresh (%d,%d,%d)",
				variant, got.Vars, got.Cons, got.Nodes, want.Vars, want.Cons, want.Nodes)
		}
		for id, c := range want.BlockCounts {
			if got.BlockCounts[id] != c {
				t.Fatalf("variant %d: block %d count %d, fresh %d", variant, id, got.BlockCounts[id], c)
			}
		}
		for i, c := range want.EventCounts {
			if got.EventCounts[i] != c {
				t.Fatalf("variant %d: event %d count %d, fresh %d", variant, i, got.EventCounts[i], c)
			}
		}
	}
	hits, misses := s.ReuseStats()
	if hits < 9 {
		t.Errorf("warm-start hits = %d (misses %d), want >= 9: re-solves with identical rows must reuse phase 1", hits, misses)
	}
}

// TestSkeletonWarmSolvesSkipPhase1: a warm re-solve must charge fewer
// pivots than the cold solve of identical structure.
func TestSkeletonWarmSolvesSkipPhase1(t *testing.T) {
	p := benchProblem(t)
	s, err := NewSkeleton(p.G, p.Extra)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s.Solve(DenseCosts(p.G, p.Cost), p.Events)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Solve(DenseCosts(p.G, p.Cost), p.Events)
	if err != nil {
		t.Fatal(err)
	}
	if warm.WCET != cold.WCET {
		t.Fatalf("warm WCET %d != cold %d", warm.WCET, cold.WCET)
	}
	if warm.Pivots >= cold.Pivots {
		t.Errorf("warm solve pivots %d, cold %d: phase 1 was not skipped", warm.Pivots, cold.Pivots)
	}
	if cold.FellBack || warm.FellBack {
		t.Error("IPET-sized model fell back to the big.Rat oracle")
	}
}

// TestSkeletonConcurrentSolve hammers one shared skeleton from many
// goroutines (the batch-engine sharing pattern); run with -race.
func TestSkeletonConcurrentSolve(t *testing.T) {
	p := benchProblem(t)
	s, err := NewSkeleton(p.G, p.Extra)
	if err != nil {
		t.Fatal(err)
	}
	// Reference results per delta, computed sequentially.
	want := make([]int64, 8)
	variantCost := func(d int) map[cfg.BlockID]int {
		costs := map[cfg.BlockID]int{}
		for id, c := range p.Cost {
			costs[id] = c + d
		}
		return costs
	}
	for d := range want {
		res, err := Solve(&Problem{G: p.G, Cost: variantCost(d), Events: p.Events, Extra: p.Extra})
		if err != nil {
			t.Fatal(err)
		}
		want[d] = res.WCET
	}
	var wg sync.WaitGroup
	errs := make([]error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := i % 8
			res, err := s.Solve(DenseCosts(p.G, variantCost(d)), p.Events)
			if err != nil {
				errs[i] = err
				return
			}
			if res.WCET != want[d] {
				errs[i] = fmt.Errorf("goroutine %d: WCET %d, want %d", i, res.WCET, want[d])
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSolveAcyclicMatchesDAGLongest (the routing satellite): on loop-free
// graphs Solve must take the longest-path fast path and return the same
// bound as the independent DP, with a consistent witness path and
// ILP-free statistics.
func TestSolveAcyclicMatchesDAGLongest(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(5)
		src := "        li r1, 1\n"
		for i := 0; i < k; i++ {
			src += fmt.Sprintf("        beq r1, r0, else%d\n", i)
			for j := 0; j < 1+rng.Intn(3); j++ {
				src += "        add r2, r2, r1\n"
			}
			src += fmt.Sprintf("        j join%d\nelse%d:  addi r3, r3, 1\njoin%d:  add r4, r2, r3\n", i, i, i)
		}
		src += "        halt\n"
		g, err := cfg.Build(isa.MustAssemble("acyclic", src))
		if err != nil {
			t.Fatal(err)
		}
		costs := map[cfg.BlockID]int{}
		for _, b := range g.Blocks {
			costs[b.ID] = rng.Intn(40)
		}
		res, err := Solve(&Problem{G: g, Cost: costs})
		if err != nil {
			t.Fatal(err)
		}
		want, err := SolveDAGLongest(g, costs)
		if err != nil {
			t.Fatal(err)
		}
		if res.WCET != want {
			t.Fatalf("trial %d: Solve %d != SolveDAGLongest %d", trial, res.WCET, want)
		}
		if res.Nodes != 1 || res.Pivots != 0 || res.Vars <= 0 || res.Cons <= 0 {
			t.Fatalf("trial %d: fast-path stats wrong: %+v", trial, res)
		}
		// The witness path must be a unit flow: entry and exit execute
		// once, and each block's count equals its chosen in-flow.
		if res.BlockCounts[g.Entry.ID] != 1 || res.BlockCounts[g.Exit.ID] != 1 {
			t.Fatalf("trial %d: entry/exit counts %d/%d", trial,
				res.BlockCounts[g.Entry.ID], res.BlockCounts[g.Exit.ID])
		}
		var pathCost int64
		for _, b := range g.Blocks {
			switch res.BlockCounts[b.ID] {
			case 0:
			case 1:
				pathCost += int64(costs[b.ID])
				var in, out int64
				for _, e := range b.Preds {
					in += res.EdgeCounts[e.ID]
				}
				for _, e := range b.Succs {
					out += res.EdgeCounts[e.ID]
				}
				if b != g.Entry && in != 1 {
					t.Fatalf("trial %d: block %v on path with in-flow %d", trial, b, in)
				}
				if b != g.Exit && out != 1 {
					t.Fatalf("trial %d: block %v on path with out-flow %d", trial, b, out)
				}
			default:
				t.Fatalf("trial %d: block count %d on acyclic graph", trial, res.BlockCounts[b.ID])
			}
		}
		if pathCost != want {
			t.Fatalf("trial %d: witness path cost %d != WCET %d", trial, pathCost, want)
		}
	}
}

// TestAcyclicPerExecutionEventsFold: unscoped events on loop-free graphs
// ride the fast path as cost increments.
func TestAcyclicPerExecutionEventsFold(t *testing.T) {
	g := buildGraph(t, "li r1, 1\nadd r2, r1, r1\nhalt")
	base, err := Solve(&Problem{G: g, Cost: unitCosts(g)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(&Problem{
		G:      g,
		Cost:   unitCosts(g),
		Events: []Event{{Block: g.Entry.ID, Penalty: 11}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WCET != base.WCET+11 {
		t.Fatalf("event added %d, want 11", res.WCET-base.WCET)
	}
	if res.EventCounts[0] != 1 {
		t.Fatalf("event count %d, want 1", res.EventCounts[0])
	}
	if res.Pivots != 0 {
		t.Fatalf("expected DAG fast path (0 pivots), got %d", res.Pivots)
	}
}

// TestAcyclicWithExtraConstraintUsesILP: extra path constraints disable
// the fast path (they can cut the longest path), and the ILP result
// respects them.
func TestAcyclicWithExtraConstraintUsesILP(t *testing.T) {
	g := buildGraph(t, `
        li  r1, 1
        beq r1, r0, cheap
        mul r2, r1, r1
        mul r2, r2, r2
        mul r2, r2, r2
        j   join
cheap:  addi r2, r0, 1
join:   halt`)
	var exp *cfg.Block
	for _, b := range g.Blocks {
		if !b.IsExit() && b.Len() == 4 {
			exp = b
		}
	}
	if exp == nil {
		t.Fatalf("expensive block not found\n%s", g.Dump())
	}
	res, err := Solve(&Problem{
		G:    g,
		Cost: unitCosts(g),
		Extra: []flow.Constraint{{
			Name:  "ban_expensive",
			Terms: []flow.Term{{Coef: 1, Block: exp}},
			Rel:   flow.RelLE,
			RHS:   0,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Forced onto the cheap side: cond(2) + cheap(1) + join(1) = 4.
	if res.WCET != 4 {
		t.Fatalf("WCET %d, want 4 (constraint ignored?)", res.WCET)
	}
	if res.Pivots == 0 {
		t.Fatal("expected ILP path (pivots > 0) when extra constraints present")
	}
}
