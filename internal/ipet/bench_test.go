package ipet

import (
	"testing"

	"paratime/internal/cfg"
	"paratime/internal/flow"
	"paratime/internal/isa"
)

// benchProblem builds an IPET model of realistic shape: a three-deep
// loop nest with branching bodies, per-block costs, persistence events
// in every loop scope, and one extra path constraint.
func benchProblem(tb testing.TB) *Problem {
	src := `
        li   r1, 8
outer:  li   r2, 6
mid:    li   r3, 4
inner:  slti r5, r3, 2
        bne  r5, r0, cheap
        mul  r4, r4, r3
        mul  r4, r4, r4
        j    next
cheap:  addi r4, r4, 1
next:   addi r3, r3, -1
        bne  r3, r0, inner
        addi r2, r2, -1
        bne  r2, r0, mid
        addi r1, r1, -1
        bne  r1, r0, outer
        halt`
	g, err := cfg.Build(isa.MustAssemble("bench", src))
	if err != nil {
		tb.Fatal(err)
	}
	if _, _, err := flow.BoundAll(g, nil); err != nil {
		tb.Fatal(err)
	}
	costs := map[cfg.BlockID]int{}
	for _, b := range g.Blocks {
		costs[b.ID] = 1 + 3*b.Len()
	}
	var events []Event
	for _, l := range g.Loops {
		events = append(events, Event{
			Name:    "ps",
			Block:   l.Header.ID,
			Penalty: 20,
			Scope:   l,
		})
	}
	var exp *cfg.Block
	for _, b := range g.Blocks {
		if !b.IsExit() && b.Len() == 3 {
			exp = b
			break
		}
	}
	extra := []flow.Constraint{{
		Name:  "expcap",
		Terms: []flow.Term{{Coef: 1, Block: exp}},
		Rel:   flow.RelLE,
		RHS:   100,
	}}
	return &Problem{G: g, Cost: costs, Events: events, Extra: extra}
}

// BenchmarkIPETSolve is one cold WCET computation: model construction
// plus the ILP solve.
func BenchmarkIPETSolve(b *testing.B) {
	p := benchProblem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIPETResolve is the engine-sweep shape: the same CFG priced
// repeatedly under varying block costs and event penalties (structure
// identical, objective different).
func BenchmarkIPETResolve(b *testing.B) {
	p := benchProblem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 0; v < 4; v++ {
			q := *p
			q.Cost = map[cfg.BlockID]int{}
			for id, c := range p.Cost {
				q.Cost[id] = c + v
			}
			if _, err := Solve(&q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkIPETSolveDAG is the loop-free case, routed through the
// longest-path fast path when available.
func BenchmarkIPETSolveDAG(b *testing.B) {
	src := `
        li  r1, 1
        beq r1, r0, e0
        mul r2, r1, r1
        mul r2, r2, r2
        j   j0
e0:     addi r2, r0, 1
j0:     beq r2, r0, e1
        mul r3, r2, r2
        j   j1
e1:     addi r3, r0, 2
j1:     beq r3, r0, e2
        mul r4, r3, r3
        mul r4, r4, r4
        j   j2
e2:     addi r4, r0, 3
j2:     halt`
	g, err := cfg.Build(isa.MustAssemble("dagbench", src))
	if err != nil {
		b.Fatal(err)
	}
	costs := map[cfg.BlockID]int{}
	for _, bl := range g.Blocks {
		costs[bl.ID] = 2 * bl.Len()
	}
	p := &Problem{G: g, Cost: costs}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
