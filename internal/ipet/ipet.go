// Package ipet computes WCET bounds with the Implicit Path Enumeration
// Technique of Li & Malik, the method the survey's §2.1 names as the
// standard WCET computation step: block and edge execution counts become
// integer variables, structural flow conservation and loop bounds become
// linear constraints, and the WCET is the maximum of the weighted sum of
// block costs, solved exactly by the internal/ilp solver.
//
// Beyond plain IPET, the package supports PERSISTENT-reference miss
// variables (one miss per loop-scope entry, priced at the miss penalty)
// and per-execution event charges (used for bus/arbiter delay bounds), so
// the same machinery serves the survey's multicore analyses.
package ipet

import (
	"fmt"
	"math/big"

	"paratime/internal/cfg"
	"paratime/internal/flow"
	"paratime/internal/ilp"
)

// Event is an extra charge attached to a block.
//
// With Scope == nil the charge applies to every execution of the block
// (cost Penalty × x_block); this expresses per-access bus delay bounds.
// With Scope set the charge is a PERSISTENT miss: it applies at most once
// per entry of the scope loop and at most once per block execution,
// expressing first-miss semantics.
type Event struct {
	Name    string
	Block   cfg.BlockID
	Penalty int64
	Scope   *cfg.Loop
}

// Problem is one WCET computation.
type Problem struct {
	G *cfg.Graph
	// Cost is the base worst-case cost of each block per execution.
	Cost map[cfg.BlockID]int
	// Events are extra charges (persistence misses, arbitration delays).
	Events []Event
	// Extra are additional linear path constraints (infeasible paths etc.).
	Extra []flow.Constraint
}

// Result is the outcome of a WCET computation.
type Result struct {
	WCET        int64
	BlockCounts map[cfg.BlockID]int64
	EdgeCounts  map[int]int64
	EventCounts []int64 // aligned with Problem.Events

	// ILP statistics.
	Vars, Cons, Nodes int
}

// Solve formulates and solves the IPET ILP. Every loop in the graph must
// carry a bound.
func Solve(p *Problem) (*Result, error) {
	g := p.G
	if err := flow.CheckBounded(g); err != nil {
		return nil, err
	}
	m := ilp.NewModel()

	blockVar := make(map[cfg.BlockID]ilp.Var, len(g.Blocks))
	for _, b := range g.Blocks {
		blockVar[b.ID] = m.AddIntVar(fmt.Sprintf("x_b%d", b.ID))
	}
	edgeVar := make(map[int]ilp.Var, len(g.Edges))
	for _, e := range g.Edges {
		edgeVar[e.ID] = m.AddIntVar(fmt.Sprintf("e_%d", e.ID))
	}

	// Structural constraints: the virtual source enters the entry block
	// once and the virtual sink leaves the exit block once.
	for _, b := range g.Blocks {
		inSum := ilp.NewLin().AddInt(blockVar[b.ID], 1)
		for _, e := range b.Preds {
			inSum.AddInt(edgeVar[e.ID], -1)
		}
		inRHS := int64(0)
		if b == g.Entry {
			inRHS = 1
		}
		m.AddConstraintInt(fmt.Sprintf("in_b%d", b.ID), inSum, ilp.EQ, inRHS)

		outSum := ilp.NewLin().AddInt(blockVar[b.ID], 1)
		for _, e := range b.Succs {
			outSum.AddInt(edgeVar[e.ID], -1)
		}
		outRHS := int64(0)
		if b == g.Exit {
			outRHS = 1
		}
		m.AddConstraintInt(fmt.Sprintf("out_b%d", b.ID), outSum, ilp.EQ, outRHS)
	}

	// Loop bounds: back-edge executions per entry.
	for li, l := range g.Loops {
		lhs := ilp.NewLin()
		for _, e := range l.BackEdges {
			lhs.AddInt(edgeVar[e.ID], 1)
		}
		for _, e := range l.EntryEdges {
			lhs.AddInt(edgeVar[e.ID], -int64(l.Bound-1))
		}
		m.AddConstraintInt(fmt.Sprintf("loop%d_bound", li), lhs, ilp.LE, 0)
	}

	obj := ilp.NewLin()
	for _, b := range g.Blocks {
		if c := p.Cost[b.ID]; c != 0 {
			obj.AddInt(blockVar[b.ID], int64(c))
		}
	}

	// Events.
	eventVars := make([]ilp.Var, len(p.Events))
	for i, ev := range p.Events {
		if ev.Scope == nil {
			// Per-execution charge: fold into the objective directly.
			obj.AddInt(blockVar[ev.Block], ev.Penalty)
			eventVars[i] = -1
			continue
		}
		mv := m.AddIntVar(fmt.Sprintf("m_%s", ev.Name))
		eventVars[i] = mv
		// At most once per scope entry.
		lhs := ilp.NewLin().AddInt(mv, 1)
		for _, e := range ev.Scope.EntryEdges {
			lhs.AddInt(edgeVar[e.ID], -1)
		}
		m.AddConstraintInt(fmt.Sprintf("ps_%s_entries", ev.Name), lhs, ilp.LE, 0)
		// At most once per block execution.
		lhs2 := ilp.NewLin().AddInt(mv, 1).AddInt(blockVar[ev.Block], -1)
		m.AddConstraintInt(fmt.Sprintf("ps_%s_exec", ev.Name), lhs2, ilp.LE, 0)
		obj.AddInt(mv, ev.Penalty)
	}

	// Extra flow constraints.
	for i, c := range p.Extra {
		lhs := ilp.NewLin()
		for _, t := range c.Terms {
			switch {
			case t.Block != nil:
				lhs.AddInt(blockVar[t.Block.ID], t.Coef)
			case t.Edge != nil:
				lhs.AddInt(edgeVar[t.Edge.ID], t.Coef)
			default:
				return nil, fmt.Errorf("constraint %q term %d has neither block nor edge", c.Name, i)
			}
		}
		var sense ilp.Sense
		switch c.Rel {
		case flow.RelLE:
			sense = ilp.LE
		case flow.RelGE:
			sense = ilp.GE
		default:
			sense = ilp.EQ
		}
		m.AddConstraintInt(fmt.Sprintf("extra_%s", c.Name), lhs, sense, c.RHS)
	}

	m.SetObjective(obj)
	sol, err := m.Solve()
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case ilp.Infeasible:
		return nil, fmt.Errorf("ipet: model infeasible (contradictory flow facts?)")
	case ilp.Unbounded:
		return nil, fmt.Errorf("ipet: model unbounded (missing loop bound?)")
	}
	res := &Result{
		BlockCounts: map[cfg.BlockID]int64{},
		EdgeCounts:  map[int]int64{},
		EventCounts: make([]int64, len(p.Events)),
		Vars:        m.NumVars(),
		Cons:        m.NumCons(),
		Nodes:       sol.Nodes,
	}
	if !sol.Value.IsInt() {
		return nil, fmt.Errorf("ipet: non-integral optimum %s", sol.Value.RatString())
	}
	res.WCET = ratInt(sol.Value)
	for _, b := range g.Blocks {
		res.BlockCounts[b.ID] = ratInt(sol.X[blockVar[b.ID]])
	}
	for _, e := range g.Edges {
		res.EdgeCounts[e.ID] = ratInt(sol.X[edgeVar[e.ID]])
	}
	for i, mv := range eventVars {
		if mv >= 0 {
			res.EventCounts[i] = ratInt(sol.X[mv])
		} else {
			res.EventCounts[i] = res.BlockCounts[p.Events[i].Block]
		}
	}
	return res, nil
}

func ratInt(r *big.Rat) int64 {
	if !r.IsInt() {
		// The caller checked the objective; variable values at an integer
		// optimum of a bounded ILP are integral by construction.
		panic(fmt.Sprintf("ipet: non-integral solution value %s", r.RatString()))
	}
	return r.Num().Int64()
}

// SolveDAGLongest computes the longest entry→exit path of a loop-free
// graph by dynamic programming over the reverse post-order. It is the
// independent cross-check used by tests: on loop-free programs without
// extra constraints IPET must agree exactly.
func SolveDAGLongest(g *cfg.Graph, cost map[cfg.BlockID]int) (int64, error) {
	if len(g.Loops) != 0 {
		return 0, fmt.Errorf("SolveDAGLongest: graph has loops")
	}
	best := map[cfg.BlockID]int64{}
	blocks := g.RPO()
	for _, b := range blocks {
		base := int64(cost[b.ID])
		if b == g.Entry {
			best[b.ID] = base
			continue
		}
		max := int64(-1)
		for _, e := range b.Preds {
			if v, ok := best[e.From.ID]; ok && v > max {
				max = v
			}
		}
		if max < 0 {
			return 0, fmt.Errorf("SolveDAGLongest: block %v unreachable", b)
		}
		best[b.ID] = max + base
	}
	return best[g.Exit.ID], nil
}
