// Package ipet computes WCET bounds with the Implicit Path Enumeration
// Technique of Li & Malik, the method the survey's §2.1 names as the
// standard WCET computation step: block and edge execution counts become
// integer variables, structural flow conservation and loop bounds become
// linear constraints, and the WCET is the maximum of the weighted sum of
// block costs, solved exactly by the internal/ilp solver.
//
// Beyond plain IPET, the package supports PERSISTENT-reference miss
// variables (one miss per loop-scope entry, priced at the miss penalty)
// and per-execution event charges (used for bus/arbiter delay bounds), so
// the same machinery serves the survey's multicore analyses.
//
// The structural part of a model — flow conservation, loop bounds and
// extra path constraints — depends only on the CFG and its flow facts,
// while every analysis variant (interference, bypass, locking, bus
// sweeps) changes only block costs and event charges. A Skeleton
// compiles the structure once; Skeleton.Solve specializes it per
// scenario for (amortized) pennies and warm-starts the simplex from the
// cached feasible basis, since phase 1 never reads the objective.
// Loop-free graphs without extra constraints bypass the ILP entirely
// via longest-path dynamic programming.
package ipet

import (
	"fmt"
	"math/big"

	"paratime/internal/cfg"
	"paratime/internal/flow"
	"paratime/internal/ilp"
)

// Event is an extra charge attached to a block.
//
// With Scope == nil the charge applies to every execution of the block
// (cost Penalty × x_block); this expresses per-access bus delay bounds.
// With Scope set the charge is a PERSISTENT miss: it applies at most once
// per entry of the scope loop and at most once per block execution,
// expressing first-miss semantics.
type Event struct {
	// Name is an optional debug label. The solver never reads it — the
	// hot path must not pay for name construction — so callers may leave
	// it empty; an event is identified by (Block, Scope).
	Name    string
	Block   cfg.BlockID
	Penalty int64
	Scope   *cfg.Loop
}

// Problem is one WCET computation.
type Problem struct {
	G *cfg.Graph
	// Cost is the base worst-case cost of each block per execution.
	Cost map[cfg.BlockID]int
	// Events are extra charges (persistence misses, arbitration delays).
	Events []Event
	// Extra are additional linear path constraints (infeasible paths etc.).
	Extra []flow.Constraint
}

// Result is the outcome of a WCET computation.
type Result struct {
	WCET        int64
	BlockCounts map[cfg.BlockID]int64
	EdgeCounts  map[int]int64
	EventCounts []int64 // aligned with the events passed to Solve

	// ILP statistics. A loop-free graph solved by the longest-path fast
	// path reports the skeleton's model size and Nodes == 1 (the ILP
	// relaxation of a pure flow problem is integral at the root).
	Vars, Cons, Nodes int
	// Pivots counts simplex pivots (0 on the longest-path fast path);
	// FellBack reports that the solve overflowed int64 arithmetic and
	// was completed by the exact big.Rat oracle.
	Pivots   int
	FellBack bool
}

// Skeleton is the compiled, immutable structural part of one CFG's IPET
// model: variables for every block and edge, flow conservation, loop
// bounds, and the task's extra path constraints. Building it costs one
// model construction; each Solve then only swaps objective costs and
// event rows. A Skeleton is safe for concurrent Solve calls — the batch
// engine shares one skeleton across all clones of a prepared analysis.
type Skeleton struct {
	g        *cfg.Graph
	base     *ilp.Model
	blockVar []ilp.Var // indexed by BlockID
	edgeVar  []ilp.Var // indexed by Edge.ID
	loopIdx  map[*cfg.Loop]int32
	extra    []compiledCons
	dag      bool // loop-free, no extra constraints: DP fast path valid
	reuse    ilp.Reuse
}

// compiledCons is one pre-translated extra constraint.
type compiledCons struct {
	name  string
	terms *ilp.Lin
	sense ilp.Sense
	rhs   int64
}

// NewSkeleton compiles the structural IPET model for a graph. Every
// loop must carry a bound (the bounds are baked into the constraint
// coefficients, so the skeleton must be rebuilt if they change).
func NewSkeleton(g *cfg.Graph, extra []flow.Constraint) (*Skeleton, error) {
	if err := flow.CheckBounded(g); err != nil {
		return nil, err
	}
	m := ilp.NewModel()
	s := &Skeleton{
		g:        g,
		base:     m,
		blockVar: make([]ilp.Var, len(g.Blocks)),
		edgeVar:  make([]ilp.Var, len(g.Edges)),
		loopIdx:  make(map[*cfg.Loop]int32, len(g.Loops)),
		dag:      len(g.Loops) == 0 && len(extra) == 0,
	}
	for _, b := range g.Blocks {
		s.blockVar[b.ID] = m.AddIntVar(fmt.Sprintf("x_b%d", b.ID))
	}
	for _, e := range g.Edges {
		s.edgeVar[e.ID] = m.AddIntVar(fmt.Sprintf("e_%d", e.ID))
	}

	// Structural constraints: the virtual source enters the entry block
	// once and the virtual sink leaves the exit block once.
	for _, b := range g.Blocks {
		inSum := ilp.NewLin().AddInt(s.blockVar[b.ID], 1)
		for _, e := range b.Preds {
			inSum.AddInt(s.edgeVar[e.ID], -1)
		}
		inRHS := int64(0)
		if b == g.Entry {
			inRHS = 1
		}
		m.AddConstraintInt(fmt.Sprintf("in_b%d", b.ID), inSum, ilp.EQ, inRHS)

		outSum := ilp.NewLin().AddInt(s.blockVar[b.ID], 1)
		for _, e := range b.Succs {
			outSum.AddInt(s.edgeVar[e.ID], -1)
		}
		outRHS := int64(0)
		if b == g.Exit {
			outRHS = 1
		}
		m.AddConstraintInt(fmt.Sprintf("out_b%d", b.ID), outSum, ilp.EQ, outRHS)
	}

	// Loop bounds: back-edge executions per entry.
	for li, l := range g.Loops {
		s.loopIdx[l] = int32(li)
		lhs := ilp.NewLin()
		for _, e := range l.BackEdges {
			lhs.AddInt(s.edgeVar[e.ID], 1)
		}
		for _, e := range l.EntryEdges {
			lhs.AddInt(s.edgeVar[e.ID], -int64(l.Bound-1))
		}
		m.AddConstraintInt(fmt.Sprintf("loop%d_bound", li), lhs, ilp.LE, 0)
	}

	// Extra flow constraints, pre-translated once. They are appended to
	// each instance after its event rows, preserving the historical
	// model layout (events before extras).
	for _, c := range extra {
		lhs := ilp.NewLin()
		for i, t := range c.Terms {
			switch {
			case t.Block != nil:
				lhs.AddInt(s.blockVar[t.Block.ID], t.Coef)
			case t.Edge != nil:
				lhs.AddInt(s.edgeVar[t.Edge.ID], t.Coef)
			default:
				return nil, fmt.Errorf("constraint %q term %d has neither block nor edge", c.Name, i)
			}
		}
		var sense ilp.Sense
		switch c.Rel {
		case flow.RelLE:
			sense = ilp.LE
		case flow.RelGE:
			sense = ilp.GE
		default:
			sense = ilp.EQ
		}
		s.extra = append(s.extra, compiledCons{
			name:  fmt.Sprintf("extra_%s", c.Name),
			terms: lhs,
			sense: sense,
			rhs:   c.RHS,
		})
	}
	return s, nil
}

// Graph returns the CFG the skeleton was compiled from.
func (s *Skeleton) Graph() *cfg.Graph { return s.g }

// ReuseStats reports warm-start cache hits and misses of the skeleton's
// simplex snapshot (for tests and tuning).
func (s *Skeleton) ReuseStats() (hits, misses uint64) { return s.reuse.Stats() }

// Solve prices the skeleton under the given block costs and event
// charges and solves for the WCET. cost is a dense vector indexed by
// block ID (block IDs equal RPO positions), the form the pipeline layer
// produces. It may be called concurrently.
func (s *Skeleton) Solve(cost []int, events []Event) (*Result, error) {
	if s.dag {
		scoped := false
		for i := range events {
			if events[i].Scope != nil {
				scoped = true
				break
			}
		}
		if !scoped {
			if res, ok := s.solveDAG(cost, events); ok {
				return res, nil
			}
		}
	}
	g := s.g
	m := s.base.Fork()

	obj := ilp.NewLin()
	for _, b := range g.Blocks {
		if c := cost[b.ID]; c != 0 {
			obj.AddInt(s.blockVar[b.ID], int64(c))
		}
	}

	// Event variables and rows. The reuse key must determine the event
	// rows exactly: one (block, scope) pair per scoped event, in order.
	// Penalties live in the objective and so stay out of the key — that
	// is what makes sweep re-solves warm.
	eventVars := make([]ilp.Var, len(events))
	reuseKey := make([]int64, 0, 2*len(events))
	reuse := &s.reuse
	for i, ev := range events {
		if ev.Scope == nil {
			// Per-execution charge: fold into the objective directly.
			obj.AddInt(s.blockVar[ev.Block], ev.Penalty)
			eventVars[i] = -1
			continue
		}
		li, ok := s.loopIdx[ev.Scope]
		if !ok {
			// A scope the skeleton does not know cannot be keyed; solve
			// cold rather than risk a stale warm start.
			reuse = nil
			li = -1
		}
		mv := m.AddIntVar("")
		eventVars[i] = mv
		// At most once per scope entry.
		lhs := ilp.NewLin().AddInt(mv, 1)
		for _, e := range ev.Scope.EntryEdges {
			lhs.AddInt(s.edgeVar[e.ID], -1)
		}
		m.AddConstraintInt("", lhs, ilp.LE, 0)
		// At most once per block execution.
		lhs2 := ilp.NewLin().AddInt(mv, 1).AddInt(s.blockVar[ev.Block], -1)
		m.AddConstraintInt("", lhs2, ilp.LE, 0)
		obj.AddInt(mv, ev.Penalty)
		reuseKey = append(reuseKey, int64(ev.Block), int64(li))
	}

	for _, c := range s.extra {
		m.AddConstraintInt(c.name, c.terms, c.sense, c.rhs)
	}

	m.SetObjective(obj)
	var sol *ilp.Solution
	var err error
	if reuse != nil {
		sol, err = m.SolveWithReuse(reuse, reuseKey)
	} else {
		sol, err = m.Solve()
	}
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case ilp.Infeasible:
		return nil, fmt.Errorf("ipet: model infeasible (contradictory flow facts?)")
	case ilp.Unbounded:
		return nil, fmt.Errorf("ipet: model unbounded (missing loop bound?)")
	}
	res := &Result{
		BlockCounts: make(map[cfg.BlockID]int64, len(g.Blocks)),
		EdgeCounts:  make(map[int]int64, len(g.Edges)),
		EventCounts: make([]int64, len(events)),
		Vars:        m.NumVars(),
		Cons:        m.NumCons(),
		Nodes:       sol.Nodes,
		Pivots:      sol.Pivots,
		FellBack:    sol.FellBack,
	}
	if !sol.Value.IsInt() {
		return nil, fmt.Errorf("ipet: non-integral optimum %s", sol.Value.RatString())
	}
	res.WCET = ratInt(sol.Value)
	for _, b := range g.Blocks {
		res.BlockCounts[b.ID] = ratInt(sol.X[s.blockVar[b.ID]])
	}
	for _, e := range g.Edges {
		res.EdgeCounts[e.ID] = ratInt(sol.X[s.edgeVar[e.ID]])
	}
	for i, mv := range eventVars {
		if mv >= 0 {
			res.EventCounts[i] = ratInt(sol.X[mv])
		} else {
			res.EventCounts[i] = res.BlockCounts[events[i].Block]
		}
	}
	return res, nil
}

// solveDAG computes the loop-free case by longest-path dynamic
// programming over the reverse post-order, with a traceback supplying
// the witness path's block and edge counts. Valid only without loops,
// extra constraints, or scoped events (per-execution event charges fold
// into the block costs). Returns ok=false when some block is
// unreachable (the ILP handles that case by forcing zero flow).
func (s *Skeleton) solveDAG(cost []int, events []Event) (*Result, bool) {
	g := s.g
	eff := make([]int64, len(g.Blocks))
	for _, b := range g.Blocks {
		eff[b.ID] = int64(cost[b.ID])
	}
	for i := range events {
		eff[events[i].Block] += events[i].Penalty
	}
	best := make([]int64, len(g.Blocks))
	reached := make([]bool, len(g.Blocks))
	via := make([]*cfg.Edge, len(g.Blocks)) // argmax predecessor edge
	for _, b := range g.RPO() {
		if b == g.Entry {
			best[b.ID] = eff[b.ID]
			reached[b.ID] = true
			continue
		}
		chosen := (*cfg.Edge)(nil)
		var chosenVal int64
		for _, e := range b.Preds {
			if !reached[e.From.ID] {
				continue
			}
			if chosen == nil || best[e.From.ID] > chosenVal {
				chosen = e
				chosenVal = best[e.From.ID]
			}
		}
		if chosen == nil {
			return nil, false
		}
		best[b.ID] = chosenVal + eff[b.ID]
		reached[b.ID] = true
		via[b.ID] = chosen
	}
	if !reached[g.Exit.ID] {
		return nil, false
	}
	res := &Result{
		WCET:        best[g.Exit.ID],
		BlockCounts: make(map[cfg.BlockID]int64, len(g.Blocks)),
		EdgeCounts:  make(map[int]int64, len(g.Edges)),
		EventCounts: make([]int64, len(events)),
		Vars:        s.base.NumVars(),
		Cons:        s.base.NumCons(),
		Nodes:       1,
	}
	for _, b := range g.Blocks {
		res.BlockCounts[b.ID] = 0
	}
	for _, e := range g.Edges {
		res.EdgeCounts[e.ID] = 0
	}
	for b := g.Exit; ; {
		res.BlockCounts[b.ID] = 1
		e := via[b.ID]
		if e == nil {
			break
		}
		res.EdgeCounts[e.ID] = 1
		b = e.From
	}
	for i := range events {
		res.EventCounts[i] = res.BlockCounts[events[i].Block]
	}
	return res, true
}

// Solve formulates and solves the IPET ILP for a one-shot problem.
// Callers re-pricing the same CFG repeatedly should build a Skeleton
// once and call its Solve instead.
func Solve(p *Problem) (*Result, error) {
	s, err := NewSkeleton(p.G, p.Extra)
	if err != nil {
		return nil, err
	}
	return s.Solve(DenseCosts(p.G, p.Cost), p.Events)
}

// DenseCosts lowers a per-block cost map to the dense vector
// Skeleton.Solve consumes (block IDs equal RPO positions).
func DenseCosts(g *cfg.Graph, cost map[cfg.BlockID]int) []int {
	dense := make([]int, len(g.Blocks))
	//paralint:unordered scatter into a dense vector; each block ID is written once
	for id, c := range cost {
		dense[id] = c
	}
	return dense
}

func ratInt(r *big.Rat) int64 {
	if !r.IsInt() {
		// The caller checked the objective; variable values at an integer
		// optimum of a bounded ILP are integral by construction.
		panic(fmt.Sprintf("ipet: non-integral solution value %s", r.RatString()))
	}
	return r.Num().Int64()
}

// SolveDAGLongest computes the longest entry→exit path of a loop-free
// graph by dynamic programming over the reverse post-order. It is the
// independent cross-check used by tests: on loop-free programs without
// extra constraints IPET must agree exactly.
func SolveDAGLongest(g *cfg.Graph, cost map[cfg.BlockID]int) (int64, error) {
	if len(g.Loops) != 0 {
		return 0, fmt.Errorf("SolveDAGLongest: graph has loops")
	}
	best := map[cfg.BlockID]int64{}
	blocks := g.RPO()
	for _, b := range blocks {
		base := int64(cost[b.ID])
		if b == g.Entry {
			best[b.ID] = base
			continue
		}
		max := int64(-1)
		for _, e := range b.Preds {
			if v, ok := best[e.From.ID]; ok && v > max {
				max = v
			}
		}
		if max < 0 {
			return 0, fmt.Errorf("SolveDAGLongest: block %v unreachable", b)
		}
		best[b.ID] = max + base
	}
	return best[g.Exit.ID], nil
}
