package ipet

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"paratime/internal/cfg"
	"paratime/internal/flow"
	"paratime/internal/isa"
)

func buildGraph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	g, err := cfg.Build(isa.MustAssemble(t.Name(), src))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// unitCosts assigns cost = instruction count to every block.
func unitCosts(g *cfg.Graph) map[cfg.BlockID]int {
	m := map[cfg.BlockID]int{}
	for _, b := range g.Blocks {
		m[b.ID] = b.Len()
	}
	return m
}

func TestStraightLine(t *testing.T) {
	g := buildGraph(t, "li r1, 1\nadd r2, r1, r1\nhalt")
	res, err := Solve(&Problem{G: g, Cost: unitCosts(g)})
	if err != nil {
		t.Fatal(err)
	}
	if res.WCET != 3 {
		t.Errorf("WCET = %d, want 3", res.WCET)
	}
	for _, b := range g.Blocks {
		if res.BlockCounts[b.ID] != 1 {
			t.Errorf("block %v count = %d, want 1", b, res.BlockCounts[b.ID])
		}
	}
}

func TestDiamondTakesMax(t *testing.T) {
	g := buildGraph(t, `
        li  r1, 1
        beq r1, r0, cheap
        mul r2, r1, r1     ; expensive side
        mul r2, r2, r2
        mul r2, r2, r2
        j   join
cheap:  addi r2, r0, 1
join:   halt`)
	costs := unitCosts(g)
	res, err := Solve(&Problem{G: g, Cost: costs})
	if err != nil {
		t.Fatal(err)
	}
	// Expensive side: cond(2) + then(4) + join(1) = 7.
	if res.WCET != 7 {
		t.Errorf("WCET = %d, want 7\n%s", res.WCET, g.Dump())
	}
	// The chosen path must be consistent: exactly one of the two
	// branch-successor blocks executes.
	var thenCount, elseCount int64
	for _, e := range g.Entry.Succs {
		c := res.EdgeCounts[e.ID]
		if e.Kind == cfg.EdgeTaken {
			elseCount = c
		} else {
			thenCount = c
		}
	}
	if thenCount+elseCount != 1 || thenCount != 1 {
		t.Errorf("then/else edge counts = %d/%d, want 1/0", thenCount, elseCount)
	}
}

func TestSingleLoopArithmetic(t *testing.T) {
	g := buildGraph(t, `
        li   r1, 7
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	if _, _, err := flow.BoundAll(g, nil); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(&Problem{G: g, Cost: unitCosts(g)})
	if err != nil {
		t.Fatal(err)
	}
	// pre(1) + loop(3)*7 + halt(1) = 23.
	if res.WCET != 23 {
		t.Errorf("WCET = %d, want 23", res.WCET)
	}
}

func TestNestedLoopArithmetic(t *testing.T) {
	g := buildGraph(t, `
        li   r1, 3
outer:  li   r2, 4
inner:  add  r4, r4, r2
        addi r2, r2, -1
        bne  r2, r0, inner
        addi r1, r1, -1
        bne  r1, r0, outer
        halt`)
	if _, _, err := flow.BoundAll(g, nil); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(&Problem{G: g, Cost: unitCosts(g)})
	if err != nil {
		t.Fatal(err)
	}
	// pre(1) + outerhdr(1)*3 + inner(3)*12 + outertail(2)*3 + halt(1) = 47.
	if res.WCET != 47 {
		t.Errorf("WCET = %d, want 47", res.WCET)
	}
	// Inner header must execute 12 times.
	inner := g.Loops[1]
	if got := res.BlockCounts[inner.Header.ID]; got != 12 {
		t.Errorf("inner header count = %d, want 12", got)
	}
}

func TestPersistenceEventChargedOncePerEntry(t *testing.T) {
	g := buildGraph(t, `
        li   r1, 9
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	if _, _, err := flow.BoundAll(g, nil); err != nil {
		t.Fatal(err)
	}
	l := g.Loops[0]
	base, err := Solve(&Problem{G: g, Cost: unitCosts(g)})
	if err != nil {
		t.Fatal(err)
	}
	withPS, err := Solve(&Problem{
		G:    g,
		Cost: unitCosts(g),
		Events: []Event{
			{Name: "psmiss", Block: l.Header.ID, Penalty: 50, Scope: l},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if withPS.WCET != base.WCET+50 {
		t.Errorf("PS event added %d, want exactly one 50-cycle miss", withPS.WCET-base.WCET)
	}
	if withPS.EventCounts[0] != 1 {
		t.Errorf("event count = %d, want 1", withPS.EventCounts[0])
	}
}

func TestPerExecutionEvent(t *testing.T) {
	g := buildGraph(t, `
        li   r1, 6
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	if _, _, err := flow.BoundAll(g, nil); err != nil {
		t.Fatal(err)
	}
	l := g.Loops[0]
	base, _ := Solve(&Problem{G: g, Cost: unitCosts(g)})
	res, err := Solve(&Problem{
		G:      g,
		Cost:   unitCosts(g),
		Events: []Event{{Name: "bus", Block: l.Header.ID, Penalty: 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WCET != base.WCET+7*6 {
		t.Errorf("per-execution event added %d, want %d", res.WCET-base.WCET, 7*6)
	}
	if res.EventCounts[0] != 6 {
		t.Errorf("event count = %d, want 6", res.EventCounts[0])
	}
}

func TestInfeasiblePathConstraint(t *testing.T) {
	g := buildGraph(t, `
        li   r1, 5
loop:   slti r3, r1, 3
        bne  r3, r0, cheap
        mul  r4, r1, r1      ; expensive side: 4 instructions
        mul  r4, r4, r4
        mul  r4, r4, r4
        j    next
cheap:  addi r4, r4, 1
next:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	if _, _, err := flow.BoundAll(g, nil); err != nil {
		t.Fatal(err)
	}
	// Find the expensive block (4 instructions ending in J).
	var exp *cfg.Block
	for _, b := range g.Blocks {
		if !b.IsExit() && b.Len() == 4 {
			exp = b
		}
	}
	if exp == nil {
		t.Fatalf("no expensive block found\n%s", g.Dump())
	}
	unconstrained, err := Solve(&Problem{G: g, Cost: unitCosts(g)})
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := Solve(&Problem{
		G:    g,
		Cost: unitCosts(g),
		Extra: []flow.Constraint{{
			Name:  "exp_at_most_2",
			Terms: []flow.Term{{Coef: 1, Block: exp}},
			Rel:   flow.RelLE,
			RHS:   2,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained: expensive side all 5 iterations.
	// Constrained: expensive twice, cheap three times: saves 3*(4-1)=9.
	if constrained.WCET != unconstrained.WCET-9 {
		t.Errorf("constrained %d vs unconstrained %d, want gap 9",
			constrained.WCET, unconstrained.WCET)
	}
	if constrained.BlockCounts[exp.ID] != 2 {
		t.Errorf("expensive block count = %d, want 2", constrained.BlockCounts[exp.ID])
	}
}

func TestUnboundedLoopRejected(t *testing.T) {
	g := buildGraph(t, `
        li   r3, 0x8000
        ld   r1, 0(r3)
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	if _, err := Solve(&Problem{G: g, Cost: unitCosts(g)}); err == nil {
		t.Fatal("unbounded loop accepted")
	}
}

func TestContradictoryConstraintsRejected(t *testing.T) {
	g := buildGraph(t, "li r1, 1\nhalt")
	_, err := Solve(&Problem{
		G:    g,
		Cost: unitCosts(g),
		Extra: []flow.Constraint{{
			Name:  "impossible",
			Terms: []flow.Term{{Coef: 1, Block: g.Entry}},
			Rel:   flow.RelGE,
			RHS:   2,
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("want infeasibility error, got %v", err)
	}
}

func TestSolveDAGLongestRejectsLoops(t *testing.T) {
	g := buildGraph(t, `
        li   r1, 5
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	if _, err := SolveDAGLongest(g, unitCosts(g)); err == nil {
		t.Fatal("loopy graph accepted by DAG solver")
	}
}

// TestIPETMatchesDAGLongestRandom: on random loop-free diamond chains with
// random costs, IPET and the independent longest-path DP must agree.
func TestIPETMatchesDAGLongestRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(5)
		var sb strings.Builder
		sb.WriteString("        li r1, 1\n")
		for i := 0; i < k; i++ {
			fmt.Fprintf(&sb, "        beq r1, r0, else%d\n", i)
			for j := 0; j < 1+rng.Intn(3); j++ {
				sb.WriteString("        add r2, r2, r1\n")
			}
			fmt.Fprintf(&sb, "        j join%d\n", i)
			fmt.Fprintf(&sb, "else%d:  addi r3, r3, 1\n", i)
			for j := 0; j < rng.Intn(3); j++ {
				sb.WriteString("        add r3, r3, r1\n")
			}
			fmt.Fprintf(&sb, "join%d:  add r4, r2, r3\n", i)
		}
		sb.WriteString("        halt\n")
		g, err := cfg.Build(isa.MustAssemble("dag", sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		costs := map[cfg.BlockID]int{}
		for _, b := range g.Blocks {
			costs[b.ID] = rng.Intn(50)
		}
		want, err := SolveDAGLongest(g, costs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(&Problem{G: g, Cost: costs})
		if err != nil {
			t.Fatal(err)
		}
		if res.WCET != want {
			t.Fatalf("trial %d: IPET %d != DAG longest %d\n%s", trial, res.WCET, want, sb.String())
		}
	}
}

// TestIPETLoopNestRandom validates IPET against closed-form arithmetic on
// random rectangular loop nests with unit costs.
func TestIPETLoopNestRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		b1 := 1 + rng.Intn(6)
		b2 := 1 + rng.Intn(6)
		src := fmt.Sprintf(`
        li   r1, %d
outer:  li   r2, %d
inner:  add  r4, r4, r2
        addi r2, r2, -1
        bne  r2, r0, inner
        addi r1, r1, -1
        bne  r1, r0, outer
        halt`, b1, b2)
		g, err := cfg.Build(isa.MustAssemble("nest", src))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := flow.BoundAll(g, nil); err != nil {
			t.Fatal(err)
		}
		res, err := Solve(&Problem{G: g, Cost: unitCosts(g)})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(1 + b1*1 + b1*b2*3 + b1*2 + 1)
		if res.WCET != want {
			t.Fatalf("trial %d (b1=%d b2=%d): WCET %d, want %d", trial, b1, b2, res.WCET, want)
		}
	}
}

func TestResultStats(t *testing.T) {
	g := buildGraph(t, "li r1, 1\nhalt")
	res, err := Solve(&Problem{G: g, Cost: unitCosts(g)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vars <= 0 || res.Cons <= 0 || res.Nodes <= 0 {
		t.Errorf("stats not populated: %+v", res)
	}
}
