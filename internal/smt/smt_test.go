package smt

import (
	"testing"

	"paratime/internal/isa"
)

func countdown(n int) *isa.Program {
	b := isa.NewBuilder("countdown")
	b.Li(isa.R1, int32(n))
	b.Label("loop").OpI(isa.ADDI, isa.R1, isa.R1, -1)
	b.Br(isa.BNE, isa.R1, isa.R0, "loop")
	b.Halt()
	return b.MustDone()
}

func memLoop(n int) *isa.Program {
	b := isa.NewBuilder("memloop")
	arr := b.DataWords("arr", 1, 2, 3, 4)
	_ = arr
	b.Li(isa.R1, int32(n))
	b.La(isa.R3, "arr")
	b.Label("loop").Ld(isa.R2, isa.R3, 0)
	b.Op3(isa.ADD, isa.R4, isa.R4, isa.R2)
	b.OpI(isa.ADDI, isa.R1, isa.R1, -1)
	b.Br(isa.BNE, isa.R1, isa.R0, "loop")
	b.Halt()
	return b.MustDone()
}

func TestPretWCETBoundsSim(t *testing.T) {
	pc := DefaultPret()
	for _, p := range []*isa.Program{countdown(30), memLoop(20)} {
		bound, err := pc.AnalyzeWCET(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		times, err := pc.SimulatePret([]*isa.Program{p}, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if bound < times[0] {
			t.Errorf("%s: UNSOUND PRET bound %d < sim %d", p.Name, bound, times[0])
		}
	}
}

// TestPretIndependence is E15's core claim: a PRET thread's simulated
// timing is bit-identical under every co-runner mix.
func TestPretIndependence(t *testing.T) {
	pc := DefaultPret()
	victim := memLoop(25)
	mixes := [][]*isa.Program{
		{victim},
		{victim, countdown(100)},
		{victim, countdown(100), memLoop(50), countdown(7)},
		{victim, memLoop(200), memLoop(200), memLoop(200), memLoop(200), countdown(999)},
	}
	var ref int64 = -1
	for i, mix := range mixes {
		times, err := pc.SimulatePret(mix, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if ref < 0 {
			ref = times[0]
		} else if times[0] != ref {
			t.Errorf("mix %d: victim time %d differs from solo %d", i, times[0], ref)
		}
	}
}

func TestPretValidation(t *testing.T) {
	bad := PretConfig{Threads: 2, WheelWindow: 5, MemLatency: 10}
	if err := bad.Validate(); err == nil {
		t.Error("window smaller than access accepted")
	}
	pc := DefaultPret()
	if _, err := pc.SimulatePret(make([]*isa.Program, 7), 100); err == nil {
		t.Error("more programs than threads accepted")
	}
}

func TestCarCoreHRTUnaffected(t *testing.T) {
	solo := int64(12345)
	retired := uint64(4000)
	for _, nhrts := range [][]*isa.Program{
		nil,
		{countdown(10)},
		{countdown(1000), memLoop(500), countdown(31)},
	} {
		res, err := SimulateCarCore(solo, retired, nhrts, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.HRTCycles != solo {
			t.Fatalf("HRT cycles changed: %d != %d", res.HRTCycles, solo)
		}
	}
}

func TestCarCoreNHRTProgress(t *testing.T) {
	res, err := SimulateCarCore(10_000, 2_000, []*isa.Program{countdown(100), countdown(100)}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	total := res.NHRTRetired[0] + res.NHRTRetired[1]
	if total == 0 {
		t.Error("NHRTs made no progress in 8000 free slots")
	}
	// Progress cannot exceed the free slots.
	if total > 8_000 {
		t.Errorf("NHRTs retired %d > free slots", total)
	}
}

func TestCarCoreRejectsBadInput(t *testing.T) {
	if _, err := SimulateCarCore(10, 20, nil, 100); err == nil {
		t.Error("retired > cycles accepted")
	}
}

func TestBarreWCETBoundsSim(t *testing.T) {
	cfg := BarreConfig{Threads: 4, FULatency: 2, MemLatency: 10}
	progs := []*isa.Program{countdown(40), memLoop(30), countdown(17), memLoop(8)}
	times, err := cfg.SimulateBarre(progs, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range progs {
		bound, err := cfg.AnalyzeWCET(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if bound < times[i] {
			t.Errorf("thread %d (%s): UNSOUND bound %d < sim %d", i, p.Name, bound, times[i])
		}
	}
}

func TestBarreIssueBound(t *testing.T) {
	cfg := BarreConfig{Threads: 4, FULatency: 3, MemLatency: 10}
	if cfg.IssueBound() != 9 {
		t.Errorf("issue bound = %d, want (K-1)*L = 9", cfg.IssueBound())
	}
}

func TestSharedQueueStarvationUnbounded(t *testing.T) {
	// The victim's delay grows with the co-runner's stall length: no
	// workload-independent bound exists (the survey's argument for
	// partitioned queues).
	d1 := SharedQueueStarvation(4, 10, 100)
	d2 := SharedQueueStarvation(4, 10, 10_000)
	if d2 <= d1 {
		t.Errorf("starvation should scale with co-runner stalls: %d vs %d", d1, d2)
	}
	// Contrast: the Barre issue bound is independent of co-runner
	// behaviour by definition (it is a constant of the configuration).
	cfg := BarreConfig{Threads: 4, FULatency: 3, MemLatency: 10}
	if cfg.IssueBound() != (cfg.Threads-1)*cfg.FULatency {
		t.Error("issue bound depends on nothing but the configuration")
	}
}
