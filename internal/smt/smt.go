// Package smt models the simultaneous-multithreading isolation schemes of
// the survey's §5.3 and §4.2:
//
//   - CarCore (Mische et al.): one hard real-time thread (HRT) with
//     absolute priority in every pipeline stage, so its WCET is computable
//     as if it ran alone; non-critical threads consume leftover slots.
//   - PRET (Lickly et al.): a thread-interleaved pipeline with one
//     fixed slot per thread per round and a memory wheel, giving every
//     thread timing that is independent of co-runners by construction.
//   - Barre et al.: several hard real-time threads with partitioned
//     instruction queues and round-robin-arbitrated function units,
//     giving each thread a workload-independent issue-delay bound — in
//     contrast to a shared-queue SMT, where a co-runner can block a
//     thread for an unbounded time.
package smt

import (
	"fmt"

	"paratime/internal/arbiter"
	"paratime/internal/cfg"
	"paratime/internal/flow"
	"paratime/internal/ipet"
	"paratime/internal/isa"
)

// --- PRET ------------------------------------------------------------------

// PretConfig is a thread-interleaved core: Threads hardware threads each
// own one pipeline slot per round (a round is Threads cycles) and one
// memory-wheel window of WheelWindow cycles; off-chip accesses take
// MemLatency cycles once the window opens.
type PretConfig struct {
	Threads     int
	WheelWindow int
	MemLatency  int
}

// DefaultPret is the classic six-thread PRET arrangement.
func DefaultPret() PretConfig { return PretConfig{Threads: 6, WheelWindow: 26, MemLatency: 20} }

// Validate checks the geometry. The wheel window must fit one access.
func (c PretConfig) Validate() error {
	if c.Threads <= 0 || c.WheelWindow < c.MemLatency || c.MemLatency <= 0 {
		return fmt.Errorf("smt: bad PRET config %+v", c)
	}
	return nil
}

// wheel returns the arbiter modelling this configuration's memory wheel.
func (c PretConfig) wheel() *arbiter.TDMA {
	return arbiter.NewWheel(c.Threads, c.WheelWindow)
}

// instSlots returns how many of its own slots an instruction occupies
// before its long-latency part (replay model: the instruction holds its
// slot each round until complete).
func (c PretConfig) instCycles(in isa.Inst) int64 {
	// One slot per instruction; the round length is the per-instruction
	// cycle cost seen by a single thread.
	return int64(c.Threads)
}

// AnalyzeWCET computes a thread's WCET bound on the PRET core: every
// instruction costs one round; memory operations additionally wait for
// the thread's wheel window in the worst phase plus the access itself.
// No property of any co-running thread appears anywhere in the
// computation — the isolation the survey attributes to PRET.
func (c PretConfig) AnalyzeWCET(prog *isa.Program, facts *flow.Facts) (int64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	g, err := cfg.Build(prog)
	if err != nil {
		return 0, err
	}
	if _, _, err := flow.BoundAll(g, facts); err != nil {
		return 0, err
	}
	wheelBound := int64(c.wheel().Bound(0)) // same for every thread
	costs := map[cfg.BlockID]int{}
	for _, b := range g.Blocks {
		if b.IsExit() {
			continue
		}
		var cost int64
		for _, in := range b.Insts() {
			cost += c.instCycles(in)
			if in.IsMem() {
				cost += wheelBound + int64(c.MemLatency)
			}
		}
		costs[b.ID] = int(cost)
	}
	res, err := ipet.Solve(&ipet.Problem{G: g, Cost: costs, Extra: factsConstraints(facts)})
	if err != nil {
		return 0, err
	}
	return res.WCET, nil
}

func factsConstraints(f *flow.Facts) []flow.Constraint {
	if f == nil {
		return nil
	}
	return f.Constraints
}

// SimulatePret executes the given threads on the interleaved core and
// returns each thread's completion cycle. Thread i's timing depends only
// on its own instruction stream and its fixed slot/wheel phase — the
// function never reads one thread's state while timing another, which is
// exactly the hardware property PRET pays throughput for.
func (c PretConfig) SimulatePret(progs []*isa.Program, maxSteps uint64) ([]int64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(progs) > c.Threads {
		return nil, fmt.Errorf("smt: %d programs on %d hardware threads", len(progs), c.Threads)
	}
	out := make([]int64, len(progs))
	for tid, p := range progs {
		if p == nil {
			continue
		}
		wheel := c.wheel()
		st := isa.NewState(p)
		now := int64(tid) // thread's first slot
		var steps uint64
		for !st.Halted {
			if steps >= maxSteps {
				return nil, fmt.Errorf("smt: thread %d exceeded %d steps", tid, maxSteps)
			}
			idx := p.Index(st.PC)
			if idx < 0 {
				return nil, fmt.Errorf("smt: thread %d PC 0x%x outside text", tid, st.PC)
			}
			in := p.Insts[idx]
			now += c.instCycles(in)
			if in.IsMem() {
				grant := wheel.Request(tid, now)
				now = grant + int64(c.MemLatency)
			}
			if err := st.Step(); err != nil {
				return nil, err
			}
			steps++
		}
		out[tid] = now
	}
	return out, nil
}

// --- CarCore ---------------------------------------------------------------

// CarCoreResult reports one CarCore simulation.
type CarCoreResult struct {
	// HRTCycles is the hard real-time thread's completion time; by
	// construction it equals the thread's solo execution time.
	HRTCycles int64
	// NHRTRetired counts how many instructions each non-critical thread
	// retired in the leftover issue slots before the HRT finished — the
	// quantity CarCore sacrifices for isolation.
	NHRTRetired []uint64
}

// SimulateCarCore runs the HRT at absolute priority: its timing is the
// solo timing (the caller provides it as soloCycles together with the
// HRT's retired-instruction count). Non-critical threads share the issue
// slots the HRT leaves empty, round-robin, one instruction per free
// slot. The function makes the isolation property explicit: nothing
// about the NHRTs can change HRTCycles.
func SimulateCarCore(soloCycles int64, hrtRetired uint64, nhrts []*isa.Program, maxSteps uint64) (*CarCoreResult, error) {
	res := &CarCoreResult{HRTCycles: soloCycles, NHRTRetired: make([]uint64, len(nhrts))}
	// Issue slots not used by the HRT: one per cycle minus the HRT's
	// retired instructions (each HRT instruction consumes one slot).
	free := soloCycles - int64(hrtRetired)
	if free < 0 {
		return nil, fmt.Errorf("smt: solo cycles %d below retired count %d", soloCycles, hrtRetired)
	}
	if len(nhrts) == 0 {
		return res, nil
	}
	states := make([]*isa.State, len(nhrts))
	for i, p := range nhrts {
		if p != nil {
			states[i] = isa.NewState(p)
		}
	}
	var steps uint64
	for slot := int64(0); slot < free; slot++ {
		advanced := false
		for off := 0; off < len(states); off++ {
			s := states[(int(slot)+off)%len(states)]
			if s == nil || s.Halted {
				continue
			}
			if steps >= maxSteps {
				return res, nil
			}
			if err := s.Step(); err != nil {
				return nil, err
			}
			res.NHRTRetired[(int(slot)+off)%len(states)]++
			steps++
			advanced = true
			break
		}
		if !advanced {
			break // all NHRTs done
		}
	}
	return res, nil
}

// --- Barre et al. (multiple HRTs) -------------------------------------------

// BarreConfig is an in-order SMT core supporting K hard real-time threads
// with partitioned instruction queues and a round-robin-arbitrated
// function unit of FULatency cycles; memory operations take MemLatency.
type BarreConfig struct {
	Threads    int
	FULatency  int
	MemLatency int
}

// IssueBound is the workload-independent per-instruction issue delay
// guaranteed by round-robin FU arbitration: (K−1)·FULatency extra cycles.
func (c BarreConfig) IssueBound() int { return (c.Threads - 1) * c.FULatency }

// AnalyzeWCET bounds a thread's completion time on the partitioned-queue
// core: every instruction pays its FU occupancy plus the round-robin
// issue bound; memory instructions add MemLatency. The bound holds for
// any co-running HRTs.
func (c BarreConfig) AnalyzeWCET(prog *isa.Program, facts *flow.Facts) (int64, error) {
	g, err := cfg.Build(prog)
	if err != nil {
		return 0, err
	}
	if _, _, err := flow.BoundAll(g, facts); err != nil {
		return 0, err
	}
	per := int64(c.FULatency + c.IssueBound())
	costs := map[cfg.BlockID]int{}
	for _, b := range g.Blocks {
		if b.IsExit() {
			continue
		}
		var cost int64
		for _, in := range b.Insts() {
			cost += per
			if in.IsMem() {
				cost += int64(c.MemLatency)
			}
		}
		costs[b.ID] = int(cost)
	}
	res, err := ipet.Solve(&ipet.Problem{G: g, Cost: costs, Extra: factsConstraints(facts)})
	if err != nil {
		return 0, err
	}
	return res.WCET, nil
}

// SimulateBarre runs K threads sharing one FU under round-robin
// arbitration with partitioned queues and returns per-thread completion
// cycles. Each thread issues its next instruction as soon as the FU
// grants it; grants serialize through an arbiter with the FU occupancy
// as its latency.
func (c BarreConfig) SimulateBarre(progs []*isa.Program, maxSteps uint64) ([]int64, error) {
	if len(progs) == 0 || len(progs) > c.Threads {
		return nil, fmt.Errorf("smt: %d programs on %d threads", len(progs), c.Threads)
	}
	fu := arbiter.NewRoundRobin(c.Threads, c.FULatency)
	type thread struct {
		st    *isa.State
		ready int64
		done  bool
	}
	ths := make([]*thread, len(progs))
	for i, p := range progs {
		ths[i] = &thread{st: isa.NewState(p)}
	}
	var steps uint64
	for {
		// Pick the ready thread with the smallest ready time.
		sel := -1
		for i, th := range ths {
			if th.done {
				continue
			}
			if sel < 0 || th.ready < ths[sel].ready {
				sel = i
			}
		}
		if sel < 0 {
			break
		}
		th := ths[sel]
		if steps >= maxSteps {
			return nil, fmt.Errorf("smt: exceeded %d steps", maxSteps)
		}
		idx := th.st.Prog.Index(th.st.PC)
		if idx < 0 {
			return nil, fmt.Errorf("smt: thread %d bad PC", sel)
		}
		in := th.st.Prog.Insts[idx]
		grant := fu.Request(sel, th.ready)
		end := grant + int64(c.FULatency)
		if in.IsMem() {
			end += int64(c.MemLatency)
		}
		if err := th.st.Step(); err != nil {
			return nil, err
		}
		steps++
		th.ready = end
		if th.st.Halted {
			th.done = true
		}
	}
	out := make([]int64, len(ths))
	for i, th := range ths {
		out[i] = th.ready
	}
	return out, nil
}

// SharedQueueStarvation quantifies why shared instruction queues defeat
// WCET analysis (§2.2, §4.2): a co-runner stalled on a long-latency
// operation holds queue slots, blocking the victim's dispatch for the
// entire stall. The returned victim delay grows linearly with the
// co-runner's stall length — no workload-independent bound exists.
func SharedQueueStarvation(queueSlots int, victimInsts int, coRunnerStall int64) int64 {
	// The co-runner fills the queue, the victim gets one slot per
	// completed co-runner stall.
	if queueSlots <= 1 {
		return int64(victimInsts) * coRunnerStall
	}
	return int64(victimInsts) * coRunnerStall / int64(queueSlots-1)
}
