package core_test

import (
	"testing"

	"paratime/internal/core"
	"paratime/internal/workload"
)

// BenchmarkComputeWCET measures the pricing phase alone — pipeline
// costing plus the IPET solve — on a clone of one prepared analysis.
// This is exactly the per-variant work the batch engine repeats for
// every interference/bypass/locking/arbiter scenario of a memoized
// task, so it is the number the sparse ILP core and skeleton reuse
// exist to shrink.
func BenchmarkComputeWCET(b *testing.B) {
	sys := core.DefaultSystem()
	task := workload.MatMult(4, workload.Slot(1))
	a, err := core.Prepare(task, sys)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := a.Clone()
		if err := c.ComputeWCET(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeWCETSweep re-prices one prepared task under eight bus
// delays, the shape of the arbiter sweeps (e9/e12/e13): the prepared
// prefix is shared, only block costs and event penalties change, so the
// whole benchmark is ComputeWCET-bound.
func BenchmarkComputeWCETSweep(b *testing.B) {
	sys := core.DefaultSystem()
	task := workload.CRC(16, workload.Slot(3))
	a, err := core.Prepare(task, sys)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for delay := 0; delay < 8; delay++ {
			c := a.Clone()
			c.Sys.Mem.BusDelay = delay
			if err := c.ComputeWCET(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
