// Package core composes the paratime analysis substrates into the
// end-to-end static WCET analyzer of the survey's §2.1: control-flow
// reconstruction, flow analysis (loop bounds, address ranges), multi-level
// cache abstract interpretation, context-parameterized pipeline costing,
// and IPET computation — for one task on a configured (possibly shared)
// memory system.
//
// The package is deliberately two-phase: Prepare builds every analysis
// artefact up to cache classifications; ComputeWCET prices the pipeline
// and solves IPET. The shared-cache interference analyses in
// internal/interfere re-classify the L2 result between the two phases.
package core

import (
	"fmt"
	"maps"
	"strings"

	"paratime/internal/cache"
	"paratime/internal/cfg"
	"paratime/internal/flow"
	"paratime/internal/ipet"
	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/parallel"
	"paratime/internal/pipeline"
)

// MemSystem describes the memory hierarchy seen by one core.
type MemSystem struct {
	L1I cache.Config
	L1D cache.Config
	// L2 is an optional unified second level (shared between cores in the
	// multicore experiments); nil analyzes a two-level L1+memory system.
	L2 *cache.Config
	// BusDelay is the worst-case arbitration delay added to every
	// transaction that leaves the L1s (an arbiter bound, e.g. N·L−1 for
	// round robin); 0 models a private path. It only enters at
	// ComputeWCET, so the scenario fingerprint — not PrepareKey — owns
	// its coverage (keycover enforces both sides).
	BusDelay int `paralint:"fingerprint"`
	// MemLatency is the worst-case main-memory access time after the bus
	// grant (a memory-controller bound). Fingerprint-covered like
	// BusDelay: it prices blocks, it never shapes Prepare artefacts.
	MemLatency int `paralint:"fingerprint"`
}

// SystemConfig is a complete single-core analysis configuration.
type SystemConfig struct {
	// Pipeline timing only enters at ComputeWCET (one prepared prefix
	// serves every pipeline sweep); the scenario fingerprint owns its
	// coverage, which keycover enforces on the spec side.
	Pipeline pipeline.Config `paralint:"fingerprint"`
	Mem      MemSystem
	// Parallelism is the worker count for intra-analysis parallelism
	// (cache and pipeline fixpoints, exploration pricing). 0 resolves to
	// the process default (parallel.Default: PARATIME_PARALLELISM or
	// GOMAXPROCS). It is an execution knob, not a model parameter: every
	// result is bit-identical at any value, and it is deliberately
	// excluded from PrepareKey and scenario fingerprints — keycover
	// fails the build if it ever reaches either.
	Parallelism int `paralint:"execonly"`
}

// DefaultSystem returns the canonical small embedded configuration:
// 512 B L1I/L1D, 4 KiB unified L2, and a MemLatency equal to the default
// analyzable memory controller's worst-case access bound. It is the one
// source of the default system for the facade, the experiments, and the
// Scenario decoder.
func DefaultSystem() SystemConfig {
	l2 := cache.Config{Name: "L2", Sets: 32, Ways: 4, LineBytes: 32, HitLatency: 4, MissPenalty: 20}
	return SystemConfig{
		Pipeline: pipeline.DefaultConfig(),
		Mem: MemSystem{
			L1I:        cache.Config{Name: "L1I", Sets: 16, Ways: 2, LineBytes: 16, HitLatency: 1, MissPenalty: 4},
			L1D:        cache.Config{Name: "L1D", Sets: 16, Ways: 2, LineBytes: 16, HitLatency: 1, MissPenalty: 4},
			L2:         &l2,
			BusDelay:   0,
			MemLatency: memctrl.DefaultConfig().Bound(),
		},
	}
}

// Task is one unit of WCET analysis: a program plus its flow annotations.
type Task struct {
	Name  string
	Prog  *isa.Program
	Facts *flow.Facts
}

// RefOrigin says which L1 a merged-stream reference came through.
type RefOrigin uint8

// Reference origins.
const (
	FromL1I RefOrigin = iota
	FromL1D
)

// Analysis holds every artefact of one task's WCET analysis.
type Analysis struct {
	Task Task
	Sys  SystemConfig

	G         *cfg.Graph
	CP        *flow.ConstProp
	Induction map[*cfg.Loop]flow.Induction
	Addrs     map[flow.RefKey]flow.AddrRange

	IStream *cache.Stream
	DStream *cache.Stream
	L1I     *cache.Result
	L1D     *cache.Result

	// Unified L2 artefacts (nil/empty without an L2).
	Merged *cache.Stream
	CAC    map[cache.RefID]cache.CAC
	L2     *cache.Result
	// Bypass marks merged-stream references that skip the L2 entirely
	// (Hardy et al. single-usage bypass); their misses go straight to
	// memory and they never pollute the L2.
	Bypass map[cache.RefID]bool

	// origin maps merged refs back to their L1 refs.
	mergedOf map[RefOrigin]map[cache.RefID]cache.RefID // L1 id -> merged id

	// L2Override, when set for a merged reference, replaces its L2
	// classification in the cost model (cache-locking experiments:
	// locked lines are AlwaysHit, unlocked lines AlwaysMiss).
	L2Override map[cache.RefID]cache.Class

	// ExtraEvents are additional IPET charges (e.g. per-region cache
	// reload costs of dynamic locking).
	ExtraEvents []ipet.Event

	// Skel is the compiled IPET skeleton: flow conservation, loop bounds
	// and the task's extra path constraints, built once per CFG during
	// Prepare. Every ComputeWCET specializes it with fresh costs and
	// events; it is immutable and shared across Clone, like the graph.
	Skel *ipet.Skeleton

	// PipeOps is the compiled pipeline model: every instruction lowered
	// to a flat op array and every block to an op range with
	// pre-classified edges, built once per CFG during Prepare. EX
	// latencies stay outside it, so it is valid for any pipeline
	// parameterization; like Skel, it is immutable and shared across
	// Clone, and every ComputeWCET runs its context fixpoint on it.
	PipeOps *pipeline.Compiled

	// Results of ComputeWCET.
	WCET int64
	IPET *ipet.Result
	Pipe *pipeline.CostResult
}

// Prepare runs everything up to cache classification.
func Prepare(task Task, sys SystemConfig) (*Analysis, error) {
	g, err := cfg.Build(task.Prog)
	if err != nil {
		return nil, fmt.Errorf("task %s: %w", task.Name, err)
	}
	cp, ind, err := flow.BoundAll(g, task.Facts)
	if err != nil {
		return nil, fmt.Errorf("task %s: %w", task.Name, err)
	}
	a := &Analysis{
		Task:      task,
		Sys:       sys,
		G:         g,
		CP:        cp,
		Induction: ind,
		Addrs:     flow.AnalyzeAddrs(g, cp, ind),
		Bypass:    map[cache.RefID]bool{},
	}
	var extra []flow.Constraint
	if task.Facts != nil {
		extra = task.Facts.Constraints
	}
	if a.Skel, err = ipet.NewSkeleton(g, extra); err != nil {
		return nil, fmt.Errorf("task %s: %w", task.Name, err)
	}
	a.PipeOps = pipeline.Compile(g)
	a.IStream = cache.FetchStream(g)
	a.DStream = cache.DataStream(g, a.Addrs)
	workers := parallel.Resolve(sys.Parallelism)
	if a.L1I, err = cache.AnalyzePar(g, a.IStream, sys.Mem.L1I, workers); err != nil {
		return nil, fmt.Errorf("task %s L1I: %w", task.Name, err)
	}
	if a.L1D, err = cache.AnalyzePar(g, a.DStream, sys.Mem.L1D, workers); err != nil {
		return nil, fmt.Errorf("task %s L1D: %w", task.Name, err)
	}
	if sys.Mem.L2 != nil {
		a.buildMergedStream()
		if err := a.RecomputeL2(); err != nil {
			return nil, fmt.Errorf("task %s L2: %w", task.Name, err)
		}
	}
	return a, nil
}

// buildMergedStream interleaves fetch and data references in program
// order per block and derives the initial CAC from the L1 results.
func (a *Analysis) buildMergedStream() {
	a.Merged = &cache.Stream{Refs: map[cfg.BlockID][]cache.Ref{}}
	a.CAC = map[cache.RefID]cache.CAC{}
	a.mergedOf = map[RefOrigin]map[cache.RefID]cache.RefID{
		FromL1I: {},
		FromL1D: {},
	}
	for _, b := range a.G.Blocks {
		if b.IsExit() {
			continue
		}
		var refs []cache.Ref
		iRefs := a.IStream.Refs[b.ID]
		dRefs := a.DStream.Refs[b.ID]
		dIdx := 0
		for i := 0; i < b.Len(); i++ {
			fid := cache.RefID{Block: b.ID, Seq: i}
			mid := cache.RefID{Block: b.ID, Seq: len(refs)}
			a.mergedOf[FromL1I][fid] = mid
			a.CAC[mid] = cache.CACFromL1(a.L1I.Classes[fid].Class)
			refs = append(refs, iRefs[i])
			if b.Insts()[i].IsMem() {
				did := cache.RefID{Block: b.ID, Seq: dIdx}
				mid := cache.RefID{Block: b.ID, Seq: len(refs)}
				a.mergedOf[FromL1D][did] = mid
				a.CAC[mid] = cache.CACFromL1(a.L1D.Classes[did].Class)
				refs = append(refs, dRefs[dIdx])
				dIdx++
			}
		}
		a.Merged.Refs[b.ID] = refs
	}
}

// RecomputeL2 re-runs the L2 analysis under the current CAC map (used
// after bypass or interference adjustments).
func (a *Analysis) RecomputeL2() error {
	if a.Sys.Mem.L2 == nil {
		return nil
	}
	res, err := cache.AnalyzeWithCACPar(a.G, a.Merged, *a.Sys.Mem.L2, a.CAC, parallel.Resolve(a.Sys.Parallelism))
	if err != nil {
		return err
	}
	a.L2 = res
	return nil
}

// Clone returns an independently usable copy of a prepared analysis:
// every artefact a downstream pass may mutate (the L2 result, CAC map,
// bypass and override sets, extra IPET events, and the WCET outputs) is
// copied, while the immutable prefix (graph, flow facts, reference
// streams, L1 results, the compiled IPET skeleton, the compiled
// pipeline model — and, inside each cache result, the interned-line
// index, fixpoint states and persistence tables) is shared. Interference re-classification only swaps a clone's
// classification map and dense shift vector, and bypass rebuilds the
// clone's L2 result outright, so all of interference, bypass, locking
// and ComputeWCET on the clone leave the receiver — and every other
// clone — untouched, which is what lets the batch engine hand one
// memoized Prepare result to many concurrent consumers. The skeleton is
// safe for the clones' concurrent ComputeWCET calls and lets the
// engine's joint/partition/lock/bus sweeps skip rebuilding (and
// re-factorizing, via its warm-start cache) identical ILP structure.
func (a *Analysis) Clone() *Analysis {
	c := *a
	c.CAC = maps.Clone(a.CAC)
	c.Bypass = maps.Clone(a.Bypass)
	c.L2Override = maps.Clone(a.L2Override)
	c.ExtraEvents = append([]ipet.Event(nil), a.ExtraEvents...)
	if a.L2 != nil {
		c.L2 = a.L2.Clone(c.CAC)
	}
	c.WCET, c.IPET, c.Pipe = 0, nil, nil
	return &c
}

// PrepareKey returns the content key under which Prepare's artefacts can
// be memoized: everything Prepare reads — the program text and data, the
// flow annotations, and the three cache geometries — and nothing it does
// not (pipeline parameters, bus delay and memory latency only enter at
// ComputeWCET, so one prepared prefix serves every bus-arbiter or
// pipeline sweep over the same task; Parallelism never changes results,
// so memoized artefacts are shared across worker counts).
func PrepareKey(task Task, sys SystemConfig) string {
	var sb strings.Builder
	sb.WriteString(task.Prog.Fingerprint())
	sb.WriteByte('|')
	sb.WriteString(task.Facts.Fingerprint())
	fmt.Fprintf(&sb, "|%+v|%+v|", sys.Mem.L1I, sys.Mem.L1D)
	if sys.Mem.L2 != nil {
		fmt.Fprintf(&sb, "%+v", *sys.Mem.L2)
	}
	return sb.String()
}

// MergedID maps an L1 reference to its merged-stream identity.
func (a *Analysis) MergedID(origin RefOrigin, id cache.RefID) (cache.RefID, bool) {
	if a.mergedOf == nil {
		return cache.RefID{}, false
	}
	mid, ok := a.mergedOf[origin][id]
	return mid, ok
}

// missChain describes the worst-case cost of one L1 miss for a reference:
// the guaranteed part (always incurred on an L1 miss) and an optional
// second-level persistence event.
type missChain struct {
	immediate int       // bus + L2 (+ memory when L2 also misses or bypassed)
	l2Event   *cfg.Loop // non-nil: memory part charged once per scope entry
	l2Penalty int
}

// chainFor computes the miss chain of a reference given its L1 origin.
func (a *Analysis) chainFor(origin RefOrigin, id cache.RefID) missChain {
	mem := a.Sys.Mem
	if mem.L2 == nil {
		return missChain{immediate: mem.BusDelay + mem.MemLatency}
	}
	mid, ok := a.MergedID(origin, id)
	if !ok {
		return missChain{immediate: mem.BusDelay + mem.MemLatency}
	}
	if a.Bypass[mid] {
		return missChain{immediate: mem.BusDelay + mem.MemLatency}
	}
	l2Lat := mem.BusDelay + mem.L2.HitLatency
	l2Miss := mem.BusDelay + mem.MemLatency
	rc := a.L2.Classes[mid]
	if ov, ok := a.L2Override[mid]; ok {
		rc = cache.RefClass{Class: ov}
	}
	switch rc.Class {
	case cache.AlwaysHit:
		return missChain{immediate: l2Lat}
	case cache.Persistent:
		return missChain{immediate: l2Lat, l2Event: rc.Scope, l2Penalty: l2Miss}
	default: // AM, NC: memory on every L1 miss
		return missChain{immediate: l2Lat + l2Miss}
	}
}

// ComputeWCET prices every block under the current classifications and
// solves the IPET model. It can be called repeatedly after classification
// adjustments (interference, bypass, partitioning).
func (a *Analysis) ComputeWCET() error {
	events := append([]ipet.Event(nil), a.ExtraEvents...)
	// latFor returns (base, worst) added latency beyond the L1 hit for a
	// reference, appending persistence events as needed.
	latFor := func(origin RefOrigin, id cache.RefID, res *cache.Result, kind string) (int, int) {
		rc := res.Classes[id]
		ch := a.chainFor(origin, id)
		full := ch.immediate + ch.l2Penalty
		// Events carry no names on this hot path: an event is identified
		// by (Block, Scope), and names are debug-only (see ipet.Event).
		switch rc.Class {
		case cache.AlwaysHit:
			return 0, 0
		case cache.AlwaysMiss, cache.NotClassified:
			base := ch.immediate
			if ch.l2Event != nil {
				events = append(events, ipet.Event{
					Block:   id.Block,
					Penalty: int64(ch.l2Penalty),
					Scope:   ch.l2Event,
				})
			}
			return base, full
		default: // Persistent at L1
			events = append(events, ipet.Event{
				Block:   id.Block,
				Penalty: int64(ch.immediate),
				Scope:   rc.Scope,
			})
			if ch.l2Event != nil {
				events = append(events, ipet.Event{
					Block:   id.Block,
					Penalty: int64(ch.l2Penalty),
					Scope:   ch.l2Event,
				})
			}
			return 0, full
		}
	}

	// Per-instruction timings. Build tables first (events accumulate).
	// The base view folds AM/NC misses in (they happen every execution,
	// and occupy the miss port); PERSISTENT references are priced as hits
	// and their misses charged via IPET events. The worst view (used for
	// the context fixpoint) makes everything not ALWAYS_HIT a miss.
	type instLat struct {
		fetchBase, fetchWorst, memBase, memWorst                 int
		fetchBaseMiss, fetchWorstMiss, memBaseMiss, memWorstMiss bool
	}
	// Dense per-block rows (block IDs equal RPO positions) over one flat
	// backing array: the timing closures below run per instruction per
	// fixpoint visit, so they index slices instead of hashing block IDs.
	lats := make([][]instLat, len(a.G.Blocks))
	total := 0
	for _, b := range a.G.Blocks {
		if !b.IsExit() {
			total += b.Len()
		}
	}
	flat := make([]instLat, total)
	for _, b := range a.G.Blocks {
		if b.IsExit() {
			continue
		}
		row := flat[:b.Len():b.Len()]
		flat = flat[b.Len():]
		dIdx := 0
		for i, in := range b.Insts() {
			fid := cache.RefID{Block: b.ID, Seq: i}
			fb, fw := latFor(FromL1I, fid, a.L1I, "i")
			row[i].fetchBase = a.Sys.Mem.L1I.HitLatency + fb
			row[i].fetchWorst = a.Sys.Mem.L1I.HitLatency + fw
			row[i].fetchBaseMiss = fb > 0
			row[i].fetchWorstMiss = fw > 0
			if in.IsMem() {
				did := cache.RefID{Block: b.ID, Seq: dIdx}
				db, dw := latFor(FromL1D, did, a.L1D, "d")
				row[i].memBase = a.Sys.Mem.L1D.HitLatency + db
				row[i].memWorst = a.Sys.Mem.L1D.HitLatency + dw
				row[i].memBaseMiss = db > 0
				row[i].memWorstMiss = dw > 0
				dIdx++
			}
		}
		lats[b.ID] = row
	}
	base := func(b *cfg.Block, i int) pipeline.InstTiming {
		l := lats[b.ID][i]
		return pipeline.InstTiming{Fetch: l.fetchBase, FetchMiss: l.fetchBaseMiss, Mem: l.memBase, MemMiss: l.memBaseMiss}
	}
	worst := func(b *cfg.Block, i int) pipeline.InstTiming {
		l := lats[b.ID][i]
		return pipeline.InstTiming{Fetch: l.fetchWorst, FetchMiss: l.fetchWorstMiss, Mem: l.memWorst, MemMiss: l.memWorstMiss}
	}
	if a.PipeOps == nil {
		// Hand-assembled Analysis (not via Prepare): compile on demand.
		a.PipeOps = pipeline.Compile(a.G)
	}
	pipe, err := a.PipeOps.AnalyzeCostsPar(a.Sys.Pipeline, worst, base, parallel.Resolve(a.Sys.Parallelism))
	if err != nil {
		return err
	}
	a.Pipe = pipe
	if a.Skel == nil {
		// Hand-assembled Analysis (not via Prepare): compile on demand.
		var extra []flow.Constraint
		if a.Task.Facts != nil {
			extra = a.Task.Facts.Constraints
		}
		if a.Skel, err = ipet.NewSkeleton(a.G, extra); err != nil {
			return err
		}
	}
	res, err := a.Skel.Solve(pipe.Costs(), events)
	if err != nil {
		return err
	}
	a.IPET = res
	a.WCET = res.WCET
	return nil
}

// Analyze is Prepare followed by ComputeWCET.
func Analyze(task Task, sys SystemConfig) (*Analysis, error) {
	a, err := Prepare(task, sys)
	if err != nil {
		return nil, err
	}
	if err := a.ComputeWCET(); err != nil {
		return nil, fmt.Errorf("task %s: %w", task.Name, err)
	}
	return a, nil
}

// ClassSummary renders classification counts of all analyzed levels.
func (a *Analysis) ClassSummary() string {
	var sb strings.Builder
	line := func(name string, r *cache.Result) {
		if r == nil {
			return
		}
		c := r.CountClasses()
		fmt.Fprintf(&sb, "%s[AH=%d AM=%d PS=%d NC=%d] ",
			name, c[cache.AlwaysHit], c[cache.AlwaysMiss], c[cache.Persistent], c[cache.NotClassified])
	}
	line("L1I", a.L1I)
	line("L1D", a.L1D)
	line("L2", a.L2)
	return strings.TrimSpace(sb.String())
}
