package core

import (
	"testing"

	"paratime/internal/cache"
	"paratime/internal/isa"
)

func task(t *testing.T, src string) Task {
	t.Helper()
	return Task{Name: t.Name(), Prog: isa.MustAssemble(t.Name(), src)}
}

const loopSrc = `
        li   r1, 16
        li   r3, 0x8000
loop:   ld   r2, 0(r3)
        add  r4, r4, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
.data 0x8000
        .word 7
`

func TestAnalyzeBasic(t *testing.T) {
	a, err := Analyze(task(t, loopSrc), DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if a.WCET <= 0 {
		t.Fatalf("WCET = %d", a.WCET)
	}
	// 16 iterations of a ~4-instruction loop: the WCET must at least cover
	// the retired instruction count.
	if a.WCET < 16*4 {
		t.Errorf("WCET %d implausibly small", a.WCET)
	}
	if a.ClassSummary() == "" {
		t.Error("empty class summary")
	}
}

func TestWCETMonotoneInMemLatency(t *testing.T) {
	fast := DefaultSystem()
	slow := DefaultSystem()
	slow.Mem.MemLatency = 200
	af, err := Analyze(task(t, loopSrc), fast)
	if err != nil {
		t.Fatal(err)
	}
	as, err := Analyze(task(t, loopSrc), slow)
	if err != nil {
		t.Fatal(err)
	}
	if as.WCET < af.WCET {
		t.Errorf("slower memory reduced WCET: %d < %d", as.WCET, af.WCET)
	}
}

func TestWCETMonotoneInBusDelay(t *testing.T) {
	prev := int64(-1)
	for _, d := range []int{0, 3, 9, 27} {
		sys := DefaultSystem()
		sys.Mem.BusDelay = d
		a, err := Analyze(task(t, loopSrc), sys)
		if err != nil {
			t.Fatal(err)
		}
		if a.WCET < prev {
			t.Errorf("bus delay %d reduced WCET to %d (prev %d)", d, a.WCET, prev)
		}
		prev = a.WCET
	}
}

func TestPersistenceTightensWCET(t *testing.T) {
	// Without persistence (1-way tiny L1I forcing conflict misses), the
	// loop pays memory on many fetches; with a fitting L1I it pays once.
	small := DefaultSystem()
	small.Mem.L1I = cache.Config{Name: "L1I", Sets: 1, Ways: 1, LineBytes: 8, HitLatency: 1, MissPenalty: 4}
	big := DefaultSystem()
	aSmall, err := Analyze(task(t, loopSrc), small)
	if err != nil {
		t.Fatal(err)
	}
	aBig, err := Analyze(task(t, loopSrc), big)
	if err != nil {
		t.Fatal(err)
	}
	if aBig.WCET >= aSmall.WCET {
		t.Errorf("fitting cache should beat thrashing cache: %d vs %d", aBig.WCET, aSmall.WCET)
	}
}

func TestNoL2Config(t *testing.T) {
	sys := DefaultSystem()
	sys.Mem.L2 = nil
	a, err := Analyze(task(t, loopSrc), sys)
	if err != nil {
		t.Fatal(err)
	}
	if a.L2 != nil || a.Merged != nil {
		t.Error("L2 artefacts built without L2 config")
	}
	if a.WCET <= 0 {
		t.Error("WCET not computed")
	}
}

func TestMergedStreamAlignment(t *testing.T) {
	a, err := Prepare(task(t, loopSrc), DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	// Every fetch and data ref must map into the merged stream, and the
	// merged refs must be identical payloads.
	for _, b := range a.G.Blocks {
		if b.IsExit() {
			continue
		}
		for i := 0; i < b.Len(); i++ {
			fid := cache.RefID{Block: b.ID, Seq: i}
			mid, ok := a.MergedID(FromL1I, fid)
			if !ok {
				t.Fatalf("fetch ref %+v unmapped", fid)
			}
			got, want := a.Merged.Refs[b.ID][mid.Seq], a.IStream.Refs[b.ID][i]
			if got.Exact != want.Exact || got.Addr != want.Addr || got.Unknown != want.Unknown {
				t.Fatalf("merged fetch ref mismatch at %+v", fid)
			}
		}
		dRefs := a.DStream.Refs[b.ID]
		for s := range dRefs {
			did := cache.RefID{Block: b.ID, Seq: s}
			mid, ok := a.MergedID(FromL1D, did)
			if !ok {
				t.Fatalf("data ref %+v unmapped", did)
			}
			got := a.Merged.Refs[b.ID][mid.Seq]
			want := dRefs[s]
			if got.Exact != want.Exact || got.Addr != want.Addr || got.Unknown != want.Unknown {
				t.Fatalf("merged data ref mismatch at %+v", did)
			}
		}
	}
}

func TestBypassAllEqualsNoL2(t *testing.T) {
	sys := DefaultSystem()
	a, err := Prepare(task(t, loopSrc), sys)
	if err != nil {
		t.Fatal(err)
	}
	// Bypass every merged ref: all L1 misses go straight to memory, so the
	// analysis must coincide exactly with an L2-less configuration.
	for _, b := range a.G.Blocks {
		for seq := range a.Merged.Refs[b.ID] {
			mid := cache.RefID{Block: b.ID, Seq: seq}
			a.Bypass[mid] = true
			a.CAC[mid] = cache.Never
		}
	}
	if err := a.RecomputeL2(); err != nil {
		t.Fatal(err)
	}
	if err := a.ComputeWCET(); err != nil {
		t.Fatal(err)
	}
	noL2 := sys
	noL2.Mem.L2 = nil
	ref, err := Analyze(task(t, loopSrc), noL2)
	if err != nil {
		t.Fatal(err)
	}
	if a.WCET != ref.WCET {
		t.Errorf("bypass-all WCET %d != no-L2 WCET %d", a.WCET, ref.WCET)
	}
}

func TestAnalyzeRejectsUnboundedLoop(t *testing.T) {
	src := `
        li   r3, 0x8000
        ld   r1, 0(r3)
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`
	if _, err := Analyze(task(t, src), DefaultSystem()); err == nil {
		t.Fatal("unbounded loop accepted")
	}
}

func TestRepeatedComputeIsStable(t *testing.T) {
	a, err := Prepare(task(t, loopSrc), DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ComputeWCET(); err != nil {
		t.Fatal(err)
	}
	w1 := a.WCET
	if err := a.ComputeWCET(); err != nil {
		t.Fatal(err)
	}
	if a.WCET != w1 {
		t.Errorf("recompute changed WCET: %d -> %d", w1, a.WCET)
	}
}

func TestCloneSharesSkeleton(t *testing.T) {
	a, err := Prepare(task(t, loopSrc), DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if a.Skel == nil {
		t.Fatal("Prepare did not compile the IPET skeleton")
	}
	c := a.Clone()
	if c.Skel != a.Skel {
		t.Error("Clone must share the compiled skeleton (immutable prefix)")
	}
	// Both the original and the clone must solve through the shared
	// skeleton without interference.
	if err := a.ComputeWCET(); err != nil {
		t.Fatal(err)
	}
	if err := c.ComputeWCET(); err != nil {
		t.Fatal(err)
	}
	if a.WCET != c.WCET {
		t.Errorf("clone WCET %d != original %d", c.WCET, a.WCET)
	}
}
