package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"

	"paratime/internal/cfg"
	"paratime/internal/parallel"
)

// parMinBlocks gates the level-parallel context fixpoint: below it the
// per-level fork/join overhead beats the win and AnalyzeCosts runs
// unchanged. Package variable so the differential tests can force the
// parallel path onto arbitrarily small graphs.
var parMinBlocks = 96

// levels lazily computes (and caches) the SCC condensation of the
// compiled graph. Safe for concurrent callers; every clone sharing the
// artefact shares the result.
func (c *Compiled) levels() *cfg.Levels {
	c.lvOnce.Do(func() { c.lv = cfg.Levelize(c.g) })
	return c.lv
}

// compContiguous reports whether the condensation's components, in
// topological order, tile the block range [0, n) as contiguous ascending
// intervals. When they do, the sequential RPO-priority worklist drains
// each component completely before popping any block of a later one, so
// a component-by-component schedule replays the sequential run exactly.
func compContiguous(lv *cfg.Levels, n int) bool {
	off := 0
	for _, comp := range lv.Comps {
		for _, b := range comp.Blocks {
			if b != off {
				return false
			}
			off++
		}
	}
	return off == n
}

// AnalyzeCostsPar is AnalyzeCosts with the context fixpoint scheduled
// level-parallel over the SCC condensation: all components of a level
// run concurrently with a barrier between levels, each converging a
// private worklist restricted to its own blocks.
//
// The result is bit-identical to AnalyzeCosts at any worker count even
// though the pipeline recurrence is NOT monotone (raising an input
// availability can raise the block duration by more, shrinking an
// output): the sequential in-contexts are the pointwise max over every
// edge contribution the schedule delivers, and this schedule delivers
// exactly the same contributions. Within a component the restricted
// worklist replays the sequential pops one-for-one (RPO-contiguity of
// components, checked above, guarantees the sequential heap would not
// interleave other components); across components each delivery folds
// into the target under its lock, and pointwise max is order-invariant.
// Components of one level never share an edge (levels are strictly
// increasing along edges), so they only race on later-level targets.
//
// Graphs whose condensation is not RPO-contiguous (or too small / too
// narrow to pay off) fall back to the sequential analysis.
func (c *Compiled) AnalyzeCostsPar(pc Config, worst, base TimingFn, workers int) (*CostResult, error) {
	n := len(c.blocks)
	if workers <= 1 || n < parMinBlocks {
		return c.AnalyzeCosts(pc, worst, base)
	}
	lv := c.levels()
	if lv.MaxWidth() < 2 || !compContiguous(lv, n) {
		return c.AnalyzeCosts(pc, worst, base)
	}

	lt := pc.Latencies()
	redirectPen := pc.BranchPenalty
	blocks := c.g.Blocks
	in := make([]Context, n)
	seen := make([]bool, n)
	pending := make([]bool, n) // delivered-to, not yet drained; owner comp resets
	locks := make([]sync.Mutex, n)
	entry := int(c.g.Entry.ID)
	seen[entry] = true
	pending[entry] = true
	var budget atomic.Int64
	budget.Store(int64(maxFixIter) * int64(n+1))
	var exhausted atomic.Bool

	runComp := func(comp *cfg.Comp) {
		wl := cfg.NewWorklist(n)
		for _, i := range comp.Blocks {
			if pending[i] {
				pending[i] = false
				wl.Push(i)
			}
		}
		ci := lv.CompOf[comp.Blocks[0]]
		var bt BlockTiming
		for {
			i, ok := wl.Pop()
			if !ok {
				return
			}
			if budget.Add(-1) < 0 {
				exhausted.Store(true)
				return
			}
			m := &c.blocks[i]
			if m.exit || len(m.succs) == 0 {
				continue // exit passes the context through and has no successors
			}
			execOps(&bt, &lt, c.ops[m.start:m.end], blocks[i], worst, &in[i])
			for _, e := range m.succs {
				ifFloor := ctxClamp - 1 // below every clamped value: no effect
				if e.redirect {
					ifFloor = clamp(bt.Resolve + redirectPen - bt.Dur)
				}
				to := int(e.to)
				if lv.CompOf[to] == ci {
					// Intra-component edge: single-threaded here, so the
					// sequential first-copy / join-and-push rules apply as-is.
					if !seen[to] {
						in[to] = bt.Out
						if ifFloor > in[to].Avail[IF] {
							in[to].Avail[IF] = ifFloor
						}
						seen[to] = true
						wl.Push(to)
					} else if in[to].joinEdge(&bt.Out, ifFloor) {
						wl.Push(to)
					}
				} else {
					// Cross-component edge: the target's component runs in a
					// strictly later level, so fold the contribution under the
					// target's lock and flag it for that run.
					locks[to].Lock()
					if !seen[to] {
						in[to] = bt.Out
						if ifFloor > in[to].Avail[IF] {
							in[to].Avail[IF] = ifFloor
						}
						seen[to] = true
						pending[to] = true
					} else if in[to].joinEdge(&bt.Out, ifFloor) {
						pending[to] = true
					}
					locks[to].Unlock()
				}
			}
		}
	}

	for _, level := range lv.Levels {
		parallel.For(workers, len(level), func(k int) {
			runComp(&lv.Comps[level[k]])
		})
		if exhausted.Load() {
			return nil, fmt.Errorf("pipeline: context fixpoint did not converge")
		}
	}

	// Base pricing reads each block's now-frozen in-context independently.
	res := &CostResult{cost: make([]int, n), in: in, seen: seen}
	parallel.For(workers, n, func(i int) {
		if c.blocks[i].exit {
			return
		}
		var bt BlockTiming
		execOps(&bt, &lt, c.ops[c.blocks[i].start:c.blocks[i].end], blocks[i], base, &in[i])
		res.cost[i] = bt.Dur
	})
	return res, nil
}
