package pipeline

import (
	"fmt"
	"strings"
	"testing"

	"paratime/internal/cfg"
	"paratime/internal/isa"
)

// benchTreeGraph emits a binary branch tree of the given depth whose
// leaves carry fat straight-line bodies, all converging on one merge
// chain. The condensation is a pure DAG with a 2^depth-wide leaf level
// — the shape the level-parallel context fixpoint is built for.
func benchTreeGraph(b *testing.B, depth, leafInsts int) *cfg.Graph {
	b.Helper()
	var sb strings.Builder
	var emit func(path string, d int)
	emit = func(path string, d int) {
		if d == 0 {
			sb.WriteString("leaf" + path + ":\n")
			for i := 0; i < leafInsts; i++ {
				switch i % 4 {
				case 0:
					sb.WriteString("        mul  r4, r2, r2\n")
				case 1:
					sb.WriteString("        add  r5, r5, r4\n")
				case 2:
					sb.WriteString("        ld   r3, 0(r7)\n")
				default:
					sb.WriteString("        st   r3, 4(r7)\n")
				}
			}
			sb.WriteString("        j    done\n")
			return
		}
		right := "node" + path + "R"
		if d == 1 {
			right = "leaf" + path + "R"
		}
		sb.WriteString("node" + path + ":\n")
		sb.WriteString("        andi r8, r1, " + fmt.Sprint(1<<(depth-d)) + "\n")
		sb.WriteString("        bne  r8, r0, " + right + "\n")
		emit(path+"L", d-1)
		emit(path+"R", d-1)
	}
	sb.WriteString("        li   r7, 0x8000\n")
	emit("", depth)
	sb.WriteString("done:   halt\n")
	g, err := cfg.Build(isa.MustAssemble("benchtree", sb.String()))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkAnalyzeCostsPar: the level-parallel context fixpoint plus
// parallel base pricing on a 64-leaf branch tree, against its
// sequential twin below. BENCH_parallel records the worker scaling.
func BenchmarkAnalyzeCostsPar(b *testing.B) {
	g := benchTreeGraph(b, 6, 48)
	c := Compile(g)
	lv := c.levels()
	if lv.MaxWidth() < 2 || !compContiguous(lv, len(g.Blocks)) {
		b.Fatalf("tree graph not parallelizable (width %d)", lv.MaxWidth())
	}
	oldMin := parMinBlocks
	parMinBlocks = 1
	defer func() { parMinBlocks = oldMin }()
	pc := DefaultConfig()
	worst := randTiming(7, 3, 9)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.AnalyzeCostsPar(pc, worst, flatBase, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeCostsParSeq is the sequential twin of
// BenchmarkAnalyzeCostsPar: plain AnalyzeCosts on the same tree, for
// benchstat comparison.
func BenchmarkAnalyzeCostsParSeq(b *testing.B) {
	g := benchTreeGraph(b, 6, 48)
	c := Compile(g)
	pc := DefaultConfig()
	worst := randTiming(7, 3, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.AnalyzeCosts(pc, worst, flatBase); err != nil {
			b.Fatal(err)
		}
	}
}
