package pipeline

import (
	"fmt"
	"sync"

	"paratime/internal/cfg"
	"paratime/internal/isa"
)

// InstOp is one instruction lowered for the pipeline recurrence: the EX
// latency class, source and destination registers, and the memory flags
// are resolved once at compile time, so evaluating the recurrence is a
// loop over small integers with no map lookups and no allocation. The
// static analysis and the simulator execute the same ops, which is what
// makes the static per-block cost an upper bound of every simulated
// instance by construction. Treat compiled ops as immutable.
type InstOp struct {
	Class  isa.Class // EX-latency class (index into a LatTable)
	NSrc   uint8     // number of live entries in Src
	Src    [2]isa.Reg
	Dst    isa.Reg
	HasDst bool
	Load   bool // LD: result forwards from MEM, not EX
	Mem    bool // LD/ST: data access occupies MEM
}

// CompileOps lowers an instruction sequence to pipeline ops, resolving
// SrcRegs, DstReg and the memory flags once. The simulator compiles each
// core's program through it; Compile uses it for whole-graph analysis.
func CompileOps(insts []isa.Inst) []InstOp {
	ops := make([]InstOp, len(insts))
	for i, in := range insts {
		op := InstOp{Class: isa.ClassOf(in.Op), Mem: in.IsMem(), Load: in.Op == isa.LD}
		for _, r := range SrcRegs(in) {
			op.Src[op.NSrc] = r
			op.NSrc++
		}
		if rd, ok := DstReg(in); ok {
			op.Dst, op.HasDst = rd, true
		}
		ops[i] = op
	}
	return ops
}

// LatTable maps instruction classes to EX-stage latencies (>= 1),
// resolved from a Config's ExLat map once so the recurrence indexes an
// array instead of hashing per instruction.
type LatTable [isa.NumClasses]int

// Latencies resolves the per-class EX latency table of the config.
func (c Config) Latencies() LatTable {
	var lt LatTable
	for cl := range lt {
		lt[cl] = 1
	}
	//paralint:unordered scatter into a fixed array; each class writes its own slot
	for cl, l := range c.ExLat {
		if int(cl) < len(lt) && l >= 1 {
			lt[cl] = l
		}
	}
	return lt
}

// edgeMeta is one compiled successor edge: the target block position and
// whether the successor's fetch stalls behind the transfer's resolution
// (the EdgeContext redirect rule, pre-evaluated from the edge kind).
type edgeMeta struct {
	to       int32
	redirect bool
}

// blockMeta is the compiled shape of one basic block.
type blockMeta struct {
	start, end int32 // instruction range in Compiled.ops
	exit       bool  // synthetic exit / empty: context passes through
	succs      []edgeMeta
}

// Compiled is the immutable pipeline model of one task graph: every
// instruction lowered to an InstOp and every block reduced to an op
// range plus pre-classified successor edges. It is built once per CFG
// (core.Prepare caches it on the Analysis and shares it across Clone,
// like the graph and the IPET skeleton) and is safe for concurrent
// AnalyzeCosts calls; EX latencies stay outside the artefact so one
// compilation serves every pipeline parameterization.
type Compiled struct {
	g      *cfg.Graph
	ops    []InstOp
	blocks []blockMeta

	// SCC condensation, computed on first use by AnalyzeCostsPar and
	// shared by every clone holding this artefact.
	lvOnce sync.Once
	lv     *cfg.Levels
}

// Compile lowers a graph for pipeline costing. Block IDs equal RPO
// positions, so compiled blocks are indexed by block ID.
func Compile(g *cfg.Graph) *Compiled {
	c := &Compiled{g: g, ops: CompileOps(g.Prog.Insts), blocks: make([]blockMeta, len(g.Blocks))}
	for i, b := range g.Blocks {
		m := blockMeta{start: int32(b.Start), end: int32(b.End), exit: b.IsExit() || b.Len() == 0}
		m.succs = make([]edgeMeta, len(b.Succs))
		for j, e := range b.Succs {
			m.succs[j] = edgeMeta{to: int32(e.To.ID), redirect: edgeRedirects(e)}
		}
		c.blocks[i] = m
	}
	return c
}

// Graph returns the graph the model was compiled from.
func (c *Compiled) Graph() *cfg.Graph { return c.g }

// edgeRedirects pre-evaluates EdgeContext's taken-transfer test.
func edgeRedirects(e *cfg.Edge) bool {
	switch e.Kind {
	case cfg.EdgeTaken, cfg.EdgeJump, cfg.EdgeCall, cfg.EdgeReturn, cfg.EdgeExit:
		return e.Kind != cfg.EdgeExit || isRealTransfer(e.From)
	}
	return false
}

// execOps evaluates the pipeline recurrence over a compiled op slice
// starting from *in (which is not modified), writing the result into
// *bt (an out-parameter so the fixpoint reuses one BlockTiming instead
// of copying a Context-sized return per visit). b is the block the ops
// belong to, handed through to tim. This is ExecBlock's engine; empty
// and exit blocks must be handled by the caller.
func execOps(bt *BlockTiming, lt *LatTable, ops []InstOp, b *cfg.Block, tim TimingFn, in *Context) {
	prevIDs := in.Avail[IF]
	prevEXs := in.Avail[ID]
	prevMEMs := in.Avail[EX]
	prevWBs := in.Avail[MEM]
	prevWBd := in.Avail[WB]
	port := in.Port
	ready := in.RegReady

	var lastEXd int
	for i := range ops {
		op := &ops[i]
		t := tim(b, i)
		fetch := max(1, t.Fetch)
		mem := 1
		if op.Mem {
			mem = max(1, t.Mem)
		}
		ex := lt[op.Class]

		ifs := prevIDs
		var ifd int
		if t.FetchMiss {
			start := max(ifs, port)
			ifd = start + fetch
			port = ifd
		} else {
			ifd = ifs + fetch
		}
		ids := max(ifd, prevEXs)
		exs := max(ids+1, prevMEMs)
		for k := uint8(0); k < op.NSrc; k++ {
			if r := ready[op.Src[k]]; r > exs {
				exs = r
			}
		}
		mems := max(exs+ex, prevWBs)
		var memDone int
		if op.Mem && t.MemMiss {
			start := max(mems, port)
			memDone = start + mem
			port = memDone
		} else {
			memDone = mems + mem
		}
		wbs := max(memDone, prevWBd)
		wbd := wbs + 1

		if op.HasDst {
			if op.Load {
				ready[op.Dst] = memDone // load value forwarded from MEM
			} else {
				ready[op.Dst] = exs + ex // ALU result forwarded from EX
			}
		}
		prevIDs, prevEXs, prevMEMs, prevWBs, prevWBd = ids, exs, mems, wbs, wbd
		lastEXd = exs + ex
	}
	dur := prevWBd
	out := &bt.Out
	out.Avail[IF] = clamp(prevIDs - dur)
	out.Avail[ID] = clamp(prevEXs - dur)
	out.Avail[EX] = clamp(prevMEMs - dur)
	out.Avail[MEM] = clamp(prevWBs - dur)
	out.Avail[WB] = clamp(prevWBd - dur) // == 0
	out.Port = clamp(port - dur)
	for r := range out.RegReady {
		out.RegReady[r] = clamp(ready[r] - dur)
	}
	bt.Dur, bt.Resolve = dur, lastEXd
}

// joinEdge folds o into c pointwise — with o's IF availability raised to
// at least ifFloor, the redirect stall of a taken edge — reporting
// whether c grew. Passing ifFloor below every clamped value makes it a
// plain join; folding the redirect in here avoids materializing an
// adjusted Context copy per edge.
func (c *Context) joinEdge(o *Context, ifFloor int) bool {
	changed := false
	oIF := o.Avail[IF]
	if ifFloor > oIF {
		oIF = ifFloor
	}
	if oIF > c.Avail[IF] {
		c.Avail[IF] = oIF
		changed = true
	}
	for i := IF + 1; i < NumStages; i++ {
		if o.Avail[i] > c.Avail[i] {
			c.Avail[i] = o.Avail[i]
			changed = true
		}
	}
	for i := range c.RegReady {
		if o.RegReady[i] > c.RegReady[i] {
			c.RegReady[i] = o.RegReady[i]
			changed = true
		}
	}
	if o.Port > c.Port {
		c.Port = o.Port
		changed = true
	}
	return changed
}

// AnalyzeCosts runs the context fixpoint with worst-case latencies and
// prices each block under its worst context with base latencies, exactly
// like the package-level AnalyzeCosts but over the compiled model: the
// per-block contexts live in a dense slice indexed by block position and
// blocks are revisited through a worklist in RPO priority order, so only
// the successors of blocks whose out-context actually changed are
// re-examined and steady-state iteration allocates nothing.
func (c *Compiled) AnalyzeCosts(pc Config, worst, base TimingFn) (*CostResult, error) {
	lt := pc.Latencies()
	redirectPen := pc.BranchPenalty
	n := len(c.blocks)
	in := make([]Context, n)
	seen := make([]bool, n)
	blocks := c.g.Blocks
	entry := int(c.g.Entry.ID)
	seen[entry] = true
	wl := cfg.NewWorklist(n)
	wl.Push(entry)
	// The context lattice is finite (clamped), so the fixpoint terminates;
	// the pop budget mirrors the retired implementation's iteration guard.
	budget := maxFixIter * (n + 1)
	var bt BlockTiming
	for {
		i, ok := wl.Pop()
		if !ok {
			break
		}
		if budget--; budget < 0 {
			return nil, fmt.Errorf("pipeline: context fixpoint did not converge")
		}
		m := &c.blocks[i]
		if m.exit || len(m.succs) == 0 {
			continue // exit passes the context through and has no successors
		}
		execOps(&bt, &lt, c.ops[m.start:m.end], blocks[i], worst, &in[i])
		for _, e := range m.succs {
			ifFloor := ctxClamp - 1 // below every clamped value: no effect
			if e.redirect {
				ifFloor = clamp(bt.Resolve + redirectPen - bt.Dur)
			}
			to := int(e.to)
			if !seen[to] {
				in[to] = bt.Out
				if ifFloor > in[to].Avail[IF] {
					in[to].Avail[IF] = ifFloor
				}
				seen[to] = true
				wl.Push(to)
			} else if in[to].joinEdge(&bt.Out, ifFloor) {
				wl.Push(to)
			}
		}
	}
	res := &CostResult{cost: make([]int, n), in: in, seen: seen}
	for i, b := range blocks {
		m := &c.blocks[i]
		if m.exit {
			continue
		}
		execOps(&bt, &lt, c.ops[m.start:m.end], b, base, &in[i])
		res.cost[i] = bt.Dur
	}
	return res, nil
}

// ExecBlock prices one block of the compiled model from the given
// context without recompiling it: the allocation-free equivalent of the
// package-level ExecBlock for callers holding the model.
func (c *Compiled) ExecBlock(lt *LatTable, b *cfg.Block, tim TimingFn, in Context) BlockTiming {
	m := &c.blocks[b.ID]
	if m.exit {
		return BlockTiming{Dur: 0, Out: in, Resolve: 0}
	}
	var bt BlockTiming
	execOps(&bt, lt, c.ops[m.start:m.end], b, tim, &in)
	return bt
}
