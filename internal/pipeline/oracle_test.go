package pipeline

// This file pins the compiled-op execution loop and the dense worklist
// fixpoint to the semantics of the original implementation: oracleExec
// is a line-for-line port of the old per-instruction ExecBlock (SrcRegs
// slices, ExLat map lookups) and oracleAnalyzeCosts of the old
// whole-graph round-robin iteration over map[BlockID]Context state.
// Property tests drive both through random CFGs and random latency
// assignments and demand exact agreement.

import (
	"fmt"
	"math/rand"
	"testing"

	"paratime/internal/cfg"
	"paratime/internal/isa"
)

// oracleExec is the retired instruction-at-a-time ExecBlock.
func oracleExec(pc Config, b *cfg.Block, tim TimingFn, in Context) BlockTiming {
	if b.IsExit() || b.Len() == 0 {
		return BlockTiming{Dur: 0, Out: in, Resolve: 0}
	}
	insts := b.Insts()
	prevIDs := in.Avail[IF]
	prevEXs := in.Avail[ID]
	prevMEMs := in.Avail[EX]
	prevWBs := in.Avail[MEM]
	prevWBd := in.Avail[WB]
	port := in.Port
	var ready [isa.NumRegs]int
	copy(ready[:], in.RegReady[:])

	var lastEXd int
	for i, inst := range insts {
		t := tim(b, i)
		fetch := max(1, t.Fetch)
		mem := 1
		if inst.IsMem() {
			mem = max(1, t.Mem)
		}
		ex := pc.exLat(inst)

		ifs := prevIDs
		var ifd int
		if t.FetchMiss {
			start := max(ifs, port)
			ifd = start + fetch
			port = ifd
		} else {
			ifd = ifs + fetch
		}
		ids := max(ifd, prevEXs)
		exs := max(ids+1, prevMEMs)
		for _, r := range SrcRegs(inst) {
			if ready[r] > exs {
				exs = ready[r]
			}
		}
		mems := max(exs+ex, prevWBs)
		var memDone int
		if inst.IsMem() && t.MemMiss {
			start := max(mems, port)
			memDone = start + mem
			port = memDone
		} else {
			memDone = mems + mem
		}
		wbs := max(memDone, prevWBd)
		wbd := wbs + 1

		if rd, ok := DstReg(inst); ok {
			if inst.Op == isa.LD {
				ready[rd] = memDone
			} else {
				ready[rd] = exs + ex
			}
		}
		prevIDs, prevEXs, prevMEMs, prevWBs, prevWBd = ids, exs, mems, wbs, wbd
		lastEXd = exs + ex
	}
	dur := prevWBd
	var out Context
	out.Avail[IF] = clamp(prevIDs - dur)
	out.Avail[ID] = clamp(prevEXs - dur)
	out.Avail[EX] = clamp(prevMEMs - dur)
	out.Avail[MEM] = clamp(prevWBs - dur)
	out.Avail[WB] = clamp(prevWBd - dur)
	out.Port = clamp(port - dur)
	for r := range out.RegReady {
		out.RegReady[r] = clamp(ready[r] - dur)
	}
	return BlockTiming{Dur: dur, Out: out, Resolve: lastEXd}
}

// oracleAnalyzeCosts is the retired round-robin whole-RPO fixpoint over
// map state.
type oracleCosts struct {
	In   map[cfg.BlockID]Context
	Cost map[cfg.BlockID]int
}

func oracleAnalyzeCosts(g *cfg.Graph, pc Config, worst, base TimingFn) (*oracleCosts, error) {
	in := map[cfg.BlockID]Context{}
	in[g.Entry.ID] = EntryContext()
	seen := map[cfg.BlockID]bool{g.Entry.ID: true}
	for iter := 0; ; iter++ {
		if iter > maxFixIter {
			return nil, fmt.Errorf("pipeline: context fixpoint did not converge")
		}
		changed := false
		for _, b := range g.RPO() {
			if !seen[b.ID] {
				continue
			}
			bt := oracleExec(pc, b, worst, in[b.ID])
			for _, e := range b.Succs {
				ec := EdgeContext(pc, bt, e)
				cur, ok := in[e.To.ID]
				var next Context
				if ok {
					next = cur.Join(ec)
				} else {
					next = ec
				}
				if !ok || next != cur {
					in[e.To.ID] = next
					seen[e.To.ID] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	res := &oracleCosts{In: in, Cost: map[cfg.BlockID]int{}}
	for _, b := range g.Blocks {
		res.Cost[b.ID] = oracleExec(pc, b, base, in[b.ID]).Dur
	}
	return res, nil
}

// randProgram emits a structured random program: nested counted loops,
// data-dependent branches, loads/stores and a mix of EX classes, all
// with derivable bounds so cfg.Build succeeds.
func randProgram(t testing.TB, rng *rand.Rand) *cfg.Graph {
	var src string
	outer := 1 + rng.Intn(6)
	inner := 1 + rng.Intn(7)
	src += fmt.Sprintf("        li   r1, %d\n", outer)
	src += "        li   r7, 0x8000\n"
	src += "outer:  li   r2, " + fmt.Sprint(inner) + "\n"
	src += "inner:  "
	body := []string{
		"mul  r4, r2, r2\n",
		"div  r5, r4, r2\n",
		"ld   r3, 0(r7)\n",
		"st   r3, 4(r7)\n",
		"add  r5, r5, r4\n",
		"addi r7, r7, 4\n",
		"mov  r6, r5\n",
	}
	nbody := 1 + rng.Intn(6)
	for i := 0; i < nbody; i++ {
		if i > 0 {
			src += "        "
		}
		src += body[rng.Intn(len(body))]
	}
	if rng.Intn(2) == 0 {
		src += "        andi r8, r2, 1\n"
		src += "        beq  r8, r0, even\n"
		src += "        mul  r9, r2, r2\n"
		src += "        j    next\n"
		src += "even:   add  r9, r9, r2\n"
		src += "next:   nop\n"
	}
	src += "        addi r2, r2, -1\n"
	src += "        bne  r2, r0, inner\n"
	src += "        addi r1, r1, -1\n"
	src += "        bne  r1, r0, outer\n"
	src += "        halt\n"
	g, err := cfg.Build(isa.MustAssemble("rand", src))
	if err != nil {
		t.Fatalf("build: %v\n%s", err, src)
	}
	return g
}

// randTiming returns a deterministic pseudo-random timing assignment,
// optionally marking misses that occupy the blocking port.
func randTiming(seed int64, maxFetch, maxMem int) TimingFn {
	return func(b *cfg.Block, i int) InstTiming {
		h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(b.ID)*0xBF58476D1CE4E5B9 + uint64(i)*0x94D049BB133111EB
		h ^= h >> 31
		t := InstTiming{
			Fetch: 1 + int(h%uint64(maxFetch)),
			Mem:   1 + int((h>>8)%uint64(maxMem)),
		}
		t.FetchMiss = h>>16&3 == 0
		t.MemMiss = h>>20&3 == 0
		return t
	}
}

// agreesWithOracle reports whether the dense result matches the
// oracle's maps exactly: same reached set, same contexts, same costs.
func agreesWithOracle(g *cfg.Graph, want *oracleCosts, got *CostResult) string {
	for _, b := range g.Blocks {
		wc, reached := want.In[b.ID]
		gc, ok := got.In(b.ID)
		if reached != ok {
			return fmt.Sprintf("block %v: reached %v, oracle %v", b, ok, reached)
		}
		if reached && wc != gc {
			return fmt.Sprintf("block %v: in-context %+v, oracle %+v", b, gc, wc)
		}
		if got.Cost(b.ID) != want.Cost[b.ID] {
			return fmt.Sprintf("block %v: cost %d, oracle %d", b, got.Cost(b.ID), want.Cost[b.ID])
		}
	}
	return ""
}

// TestAnalyzeCostsMatchesOracle drives the compiled worklist fixpoint
// and the retired round-robin implementation through random CFGs,
// pipeline configs and latency assignments, demanding exact agreement
// of both the context fixpoint and every block cost.
func TestAnalyzeCostsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		g := randProgram(t, rng)
		pc := DefaultConfig()
		if rng.Intn(2) == 0 {
			pc.BranchPenalty = rng.Intn(6)
			pc.ExLat[isa.ClassMul] = 1 + rng.Intn(6)
			pc.ExLat[isa.ClassDiv] = 1 + rng.Intn(20)
		}
		worst := randTiming(int64(trial), 1+rng.Intn(10), 1+rng.Intn(30))
		base := randTiming(int64(trial)^7, 1+rng.Intn(4), 1+rng.Intn(8))

		want, err := oracleAnalyzeCosts(g, pc, worst, base)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AnalyzeCosts(g, pc, worst, base)
		if err != nil {
			t.Fatal(err)
		}
		if diff := agreesWithOracle(g, want, got); diff != "" {
			t.Fatalf("trial %d: %s", trial, diff)
		}
	}
}

// TestExecBlockMatchesOracle compares the compiled op loop against the
// retired instruction loop on every block of random graphs from random
// contexts.
func TestExecBlockMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		g := randProgram(t, rng)
		pc := DefaultConfig()
		tim := randTiming(int64(trial), 6, 20)
		var in Context
		for i := range in.Avail {
			in.Avail[i] = -rng.Intn(12)
		}
		for i := range in.RegReady {
			in.RegReady[i] = -rng.Intn(12)
		}
		in.Port = -rng.Intn(12)
		for _, b := range g.Blocks {
			want := oracleExec(pc, b, tim, in)
			got := ExecBlock(pc, b, tim, in)
			if want != got {
				t.Fatalf("trial %d block %v: %+v != oracle %+v", trial, b, got, want)
			}
		}
	}
}

// TestCompiledSharedAcrossGoroutines exercises one compiled model from
// many concurrent AnalyzeCosts calls (the engine's clone-sharing shape);
// run with -race to validate the immutability contract.
func TestCompiledSharedAcrossGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := randProgram(t, rng)
	c := Compile(g)
	pc := DefaultConfig()
	ref, err := oracleAnalyzeCosts(g, pc, randTiming(1, 5, 9), randTiming(2, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 16)
	for w := 0; w < 16; w++ {
		go func() {
			res, err := c.AnalyzeCosts(pc, randTiming(1, 5, 9), randTiming(2, 2, 3))
			if err == nil {
				if diff := agreesWithOracle(g, ref, res); diff != "" {
					err = fmt.Errorf("concurrent result diverged: %s", diff)
				}
			}
			done <- err
		}()
	}
	for w := 0; w < 16; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzExecBlockOracle decodes arbitrary bytes into a straight-line
// program plus a latency assignment and cross-checks the compiled op
// loop against the retired instruction loop.
func FuzzExecBlockOracle(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x10, 0xFF, 0x07}, int64(3))
	f.Add([]byte{0xA0, 0x00, 0x13, 0x9C, 0x55, 0x21, 0x08}, int64(9))
	ops := []isa.Op{
		isa.NOP, isa.LI, isa.MOV, isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM,
		isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL, isa.SRA, isa.SLT,
		isa.ADDI, isa.ANDI, isa.ORI, isa.SLLI, isa.SRLI, isa.SLTI,
		isa.LD, isa.ST,
	}
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		if len(data) == 0 || len(data) > 256 {
			t.Skip()
		}
		p := &isa.Program{Name: "fuzz"}
		for i := 0; i+1 < len(data); i += 2 {
			op := ops[int(data[i])%len(ops)]
			in := isa.Inst{
				Op:  op,
				Rd:  isa.Reg(data[i+1] % isa.NumRegs),
				Rs1: isa.Reg((data[i+1] >> 2) % isa.NumRegs),
				Rs2: isa.Reg((data[i+1] >> 4) % isa.NumRegs),
				Imm: int32(data[i]) * 4,
			}
			if op == isa.LD || op == isa.ST {
				in.Rs1 = isa.Reg(8 + data[i+1]%4) // plausible base register
			}
			p.Insts = append(p.Insts, in)
		}
		p.Insts = append(p.Insts, isa.Inst{Op: isa.HALT})
		g, err := cfg.Build(p)
		if err != nil {
			t.Skip()
		}
		pc := DefaultConfig()
		pc.BranchPenalty = int(seed & 7)
		tim := randTiming(seed, 1+int(seed>>3&15), 1+int(seed>>7&31))
		var in Context
		h := uint64(seed) * 0x9E3779B97F4A7C15
		for i := range in.Avail {
			in.Avail[i] = -int(h >> (4 * i) & 15)
		}
		for i := range in.RegReady {
			in.RegReady[i] = -int(h >> (2 * i) & 31)
		}
		for _, b := range g.Blocks {
			want := oracleExec(pc, b, tim, in)
			got := ExecBlock(pc, b, tim, in)
			if want != got {
				t.Fatalf("block %v: compiled %+v != oracle %+v", b, got, want)
			}
		}
		want, err := oracleAnalyzeCosts(g, pc, tim, tim)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AnalyzeCosts(g, pc, tim, tim)
		if err != nil {
			t.Fatal(err)
		}
		if diff := agreesWithOracle(g, want, got); diff != "" {
			t.Fatal(diff)
		}
	})
}
