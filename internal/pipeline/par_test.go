package pipeline

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"paratime/internal/cfg"
	"paratime/internal/isa"
)

// randParProgram is randProgram plus a post-loop diamond, so the SCC
// condensation has a level of width >= 2 and AnalyzeCostsPar takes the
// levelized path instead of falling back (randProgram's own diamond is
// inside the inner loop and condenses into the loop component).
func randParProgram(t testing.TB, rng *rand.Rand) *cfg.Graph {
	outer := 1 + rng.Intn(5)
	inner := 1 + rng.Intn(6)
	src := fmt.Sprintf("        li   r1, %d\n", outer)
	src += "        li   r7, 0x8000\n"
	src += fmt.Sprintf("outer:  li   r2, %d\n", inner)
	src += "inner:  mul  r4, r2, r2\n"
	if rng.Intn(2) == 0 {
		src += "        ld   r3, 0(r7)\n"
		src += "        st   r3, 4(r7)\n"
	}
	src += "        add  r5, r5, r4\n"
	src += "        addi r2, r2, -1\n"
	src += "        bne  r2, r0, inner\n"
	src += "        addi r1, r1, -1\n"
	src += "        bne  r1, r0, outer\n"
	src += "        andi r8, r5, 1\n"
	src += "        beq  r8, r0, even\n"
	src += "        mul  r9, r5, r5\n"
	src += "        j    next\n"
	src += "even:   add  r9, r9, r5\n"
	src += "next:   div  r6, r9, r5\n"
	src += "        halt\n"
	g, err := cfg.Build(isa.MustAssemble("randpar", src))
	if err != nil {
		t.Fatalf("build: %v\n%s", err, src)
	}
	return g
}

// TestAnalyzeCostsParMatchesSequential: the levelized context fixpoint
// must reproduce the sequential result exactly — contexts, reached set
// and costs — on random loop-nest-plus-diamond programs with random
// timings, at several worker counts under GOMAXPROCS 1 and 8.
func TestAnalyzeCostsParMatchesSequential(t *testing.T) {
	oldMin := parMinBlocks
	parMinBlocks = 1
	t.Cleanup(func() { parMinBlocks = oldMin })

	for _, procs := range []int{1, 8} {
		old := runtime.GOMAXPROCS(procs)
		rng := rand.New(rand.NewSource(711))
		for trial := 0; trial < 40; trial++ {
			g := randParProgram(t, rng)
			c := Compile(g)
			// Guard against a silent sequential fallback: the generator
			// must produce graphs the levelized driver accepts.
			lv := c.levels()
			if lv.MaxWidth() < 2 || !compContiguous(lv, len(g.Blocks)) {
				t.Fatalf("trial %d: generator produced a non-parallelizable graph (width %d)",
					trial, lv.MaxWidth())
			}
			pc := DefaultConfig()
			pc.BranchPenalty = rng.Intn(4)
			worst := randTiming(rng.Int63(), 1+rng.Intn(4), 1+rng.Intn(12))
			base := randTiming(rng.Int63(), 1+rng.Intn(4), 1+rng.Intn(12))
			want, wantErr := c.AnalyzeCosts(pc, worst, base)
			for _, workers := range []int{2, 8} {
				got, gotErr := c.AnalyzeCostsPar(pc, worst, base, workers)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("trial %d workers %d: error mismatch: sequential %v, parallel %v",
						trial, workers, wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Fatalf("trial %d workers %d: error text: %q vs %q",
							trial, workers, wantErr, gotErr)
					}
					continue
				}
				for _, b := range g.Blocks {
					if want.seen[b.ID] != got.seen[b.ID] {
						t.Fatalf("trial %d workers %d: block %d reached %v, want %v",
							trial, workers, b.ID, got.seen[b.ID], want.seen[b.ID])
					}
					if want.in[b.ID] != got.in[b.ID] {
						t.Fatalf("trial %d workers %d: block %d in-context differs:\nwant %+v\ngot  %+v",
							trial, workers, b.ID, want.in[b.ID], got.in[b.ID])
					}
					if want.cost[b.ID] != got.cost[b.ID] {
						t.Fatalf("trial %d workers %d: block %d cost %d, want %d",
							trial, workers, b.ID, got.cost[b.ID], want.cost[b.ID])
					}
				}
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestAnalyzeCostsParFallback: below the size threshold (or at one
// worker) the parallel entry point must still agree — it runs the
// sequential analysis unchanged.
func TestAnalyzeCostsParFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randParProgram(t, rng)
	c := Compile(g)
	pc := DefaultConfig()
	worst := randTiming(3, 3, 9)
	base := randTiming(4, 2, 5)
	want, err := c.AnalyzeCosts(pc, worst, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} { // 8 still falls back: len(blocks) < parMinBlocks
		got, err := c.AnalyzeCostsPar(pc, worst, base, workers)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range g.Blocks {
			if want.in[b.ID] != got.in[b.ID] || want.cost[b.ID] != got.cost[b.ID] {
				t.Fatalf("workers %d: block %d differs", workers, b.ID)
			}
		}
	}
}
