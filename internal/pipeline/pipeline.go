// Package pipeline models a blocking in-order scalar pipeline
// (IF→ID→EX→MEM→WB) in max-plus form and computes context-parameterized
// worst-case basic-block costs for WCET analysis, following the
// context-parameterized execution-time model of Rochange & Sainrat cited
// by the survey (§2.1, [32]).
//
// The same instruction-level recurrence is evaluated by the static
// analysis (with classified worst-case latencies) and by the
// cycle-accurate simulator in internal/sim (with concrete latencies), so
// the static per-block cost is an upper bound of every simulated instance
// by monotonicity of the max-plus operators.
package pipeline

import (
	"paratime/internal/cfg"
	"paratime/internal/isa"
)

// Stage indexes the pipeline stages.
type Stage int

// Pipeline stages.
const (
	IF Stage = iota
	ID
	EX
	MEM
	WB
	NumStages
)

// ctxClamp bounds how far in the past a context availability can lie;
// clamping *raises* values, which is conservative under max-plus.
const ctxClamp = -64

// Config is the pipeline timing parameterization.
type Config struct {
	// ExLat is the EX-stage occupancy per instruction class (cycles >= 1).
	ExLat map[isa.Class]int
	// BranchPenalty is the refetch delay after any taken control transfer,
	// counted from the end of the transfer's EX stage.
	BranchPenalty int
}

// DefaultConfig returns a standard parameterization: single-cycle ALU,
// 3-cycle multiply, 12-cycle divide, 2-cycle redirect penalty.
func DefaultConfig() Config {
	return Config{
		ExLat: map[isa.Class]int{
			isa.ClassNop: 1, isa.ClassALU: 1, isa.ClassMul: 3, isa.ClassDiv: 12,
			isa.ClassLoad: 1, isa.ClassStore: 1,
			isa.ClassBranch: 1, isa.ClassJump: 1, isa.ClassHalt: 1,
		},
		BranchPenalty: 2,
	}
}

// exLat returns the EX latency of an instruction (>= 1).
func (c Config) exLat(in isa.Inst) int {
	if l, ok := c.ExLat[isa.ClassOf(in.Op)]; ok && l >= 1 {
		return l
	}
	return 1
}

// InstTiming carries the memory-latency inputs of one instruction:
// the fetch latency and, for LD/ST, the data-access latency. Both are
// occupancy times (>= 1); cache classification decides their values.
//
// FetchMiss/MemMiss mark accesses that leave the L1s. The core has a
// single blocking miss port: two miss transactions of the same core never
// overlap (no hit-under-miss), which is what makes per-core arbitration
// bounds like D = N·L−1 applicable. Hits ignore the port.
type InstTiming struct {
	Fetch     int
	FetchMiss bool
	Mem       int // ignored (forced to 1) for non-memory instructions
	MemMiss   bool
}

// TimingFn resolves the memory timing of instruction instIdx of block b.
type TimingFn func(b *cfg.Block, instIdx int) InstTiming

// Context is the pipeline state crossing a block boundary, expressed
// relative to the retirement time of the previous block's last
// instruction: when each stage becomes available and when each register's
// value becomes forwardable. Larger is worse; the join is pointwise max.
type Context struct {
	Avail    [NumStages]int
	RegReady [isa.NumRegs]int
	// Port is when the core's blocking miss port frees (relative).
	Port int
}

// EntryContext is the task-start context: everything available at t=0.
func EntryContext() Context { return Context{} }

// Join returns the pointwise maximum (worst case) of two contexts.
func (c Context) Join(o Context) Context {
	out := c
	for i := range out.Avail {
		if o.Avail[i] > out.Avail[i] {
			out.Avail[i] = o.Avail[i]
		}
	}
	for i := range out.RegReady {
		if o.RegReady[i] > out.RegReady[i] {
			out.RegReady[i] = o.RegReady[i]
		}
	}
	if o.Port > out.Port {
		out.Port = o.Port
	}
	return out
}

func clamp(x int) int {
	if x < ctxClamp {
		return ctxClamp
	}
	return x
}

// BlockTiming is the result of executing one block from a context.
type BlockTiming struct {
	// Dur is the block's cost: retirement time of its last instruction,
	// relative to the predecessor's retirement (the context origin).
	Dur int
	// Out is the trailing context (relative to this block's retirement).
	Out Context
	// Resolve is the time (relative to the context origin) at which the
	// final control transfer is resolved in EX; successors reached via a
	// taken edge cannot fetch before Resolve + BranchPenalty.
	Resolve int
}

// ExecBlock evaluates the pipeline recurrence over the block's
// instructions starting from the given context. tim supplies the memory
// latencies. Empty (exit) blocks pass the context through at zero cost.
//
// Recurrence (blocking single-slot stages, forwarding from EX and MEM):
//
//	IFs(i)  = max(IDs(i-1), redirect)          IFd(i) = IFs(i)+fetch(i)
//	IDs(i)  = max(IFd(i),  EXs(i-1))
//	EXs(i)  = max(IDs(i)+1, MEMs(i-1), ready(srcs))
//	MEMs(i) = max(EXs(i)+ex(i), WBs(i-1))
//	WBs(i)  = max(MEMs(i)+mem(i), WBd(i-1))    WBd(i) = WBs(i)+1
//
// ExecBlock compiles the block's instructions on the fly and evaluates
// the same op loop the compiled model and the simulator run; callers
// pricing whole graphs repeatedly should Compile once and use
// Compiled.AnalyzeCosts instead.
func ExecBlock(pc Config, b *cfg.Block, tim TimingFn, in Context) BlockTiming {
	if b.IsExit() || b.Len() == 0 {
		return BlockTiming{Dur: 0, Out: in, Resolve: 0}
	}
	lt := pc.Latencies()
	var bt BlockTiming
	execOps(&bt, &lt, CompileOps(b.Insts()), b, tim, &in)
	return bt
}

// EdgeContext derives the successor's entry context along an edge from
// the block timing: taken control transfers stall the successor's fetch
// until the transfer resolves plus the redirect penalty.
func EdgeContext(pc Config, bt BlockTiming, e *cfg.Edge) Context {
	ctx := bt.Out
	switch e.Kind {
	case cfg.EdgeTaken, cfg.EdgeJump, cfg.EdgeCall, cfg.EdgeReturn, cfg.EdgeExit:
		if e.Kind == cfg.EdgeExit && !isRealTransfer(e.From) {
			return ctx // HALT falls to the synthetic exit; no redirect
		}
		redirect := clamp(bt.Resolve + pc.BranchPenalty - bt.Dur)
		if redirect > ctx.Avail[IF] {
			ctx.Avail[IF] = redirect
		}
	}
	return ctx
}

func isRealTransfer(b *cfg.Block) bool {
	if b.IsExit() || b.Len() == 0 {
		return false
	}
	op := b.Insts()[b.Len()-1].Op
	return op == isa.RET || op == isa.J || op == isa.CALL
}

// CostResult carries the context fixpoint and per-block worst-case
// costs. Both live in dense vectors indexed by block position (block
// IDs equal RPO positions), so downstream pricing — the IPET objective
// in particular — indexes slices instead of hashing block IDs.
type CostResult struct {
	cost []int
	in   []Context
	seen []bool
}

// Costs returns the per-block worst-case cost vector indexed by block
// ID (exit blocks cost 0). Callers must treat it as read-only.
func (r *CostResult) Costs() []int { return r.cost }

// Cost returns the worst-case cost of one block.
func (r *CostResult) Cost(id cfg.BlockID) int { return r.cost[id] }

// In returns the in-context the fixpoint reached for a block; ok is
// false when the block was never reached (the context is then the zero
// entry context, matching how it is priced).
func (r *CostResult) In(id cfg.BlockID) (Context, bool) { return r.in[id], r.seen[id] }

// maxFixIter guards the context fixpoint (finite lattice; generous).
const maxFixIter = 10_000

// AnalyzeCosts runs the context fixpoint with worst-case latencies and
// then prices each block under its worst context with base latencies.
//
// worst must upper-bound every latency the hardware can exhibit
// (classification misses for PS/NC refs); base may assume hits for
// PERSISTENT references whose misses are charged separately by IPET
// miss-count variables. Passing the same function for both yields the
// plain (non-PS-aware) model.
//
// AnalyzeCosts compiles the graph on the fly; callers re-pricing one
// graph under many latency assignments (scenario sweeps) should Compile
// once and call Compiled.AnalyzeCosts to skip recompilation.
func AnalyzeCosts(g *cfg.Graph, pc Config, worst, base TimingFn) (*CostResult, error) {
	return Compile(g).AnalyzeCosts(pc, worst, base)
}

// SrcRegs returns the registers an instruction reads.
func SrcRegs(in isa.Inst) []isa.Reg {
	switch in.Op {
	case isa.NOP, isa.HALT, isa.LI, isa.J, isa.CALL:
		return nil
	case isa.MOV:
		return []isa.Reg{in.Rs1}
	case isa.ADDI, isa.ANDI, isa.ORI, isa.SLLI, isa.SRLI, isa.SLTI, isa.LD:
		return []isa.Reg{in.Rs1}
	case isa.ST:
		return []isa.Reg{in.Rs1, in.Rs2}
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		return []isa.Reg{in.Rs1, in.Rs2}
	case isa.RET:
		return []isa.Reg{isa.RA}
	default: // three-register ALU
		return []isa.Reg{in.Rs1, in.Rs2}
	}
}

// DstReg returns the register an instruction writes, if any.
func DstReg(in isa.Inst) (isa.Reg, bool) {
	switch in.Op {
	case isa.NOP, isa.HALT, isa.ST, isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.J, isa.RET:
		return 0, false
	case isa.CALL:
		return isa.RA, true
	default:
		if in.Rd == isa.R0 {
			return 0, false
		}
		return in.Rd, true
	}
}

// ExLatOf exposes the per-instruction EX latency (the value a LatTable
// holds for the instruction's class); the simulator and the static
// model both read their latencies through Config.Latencies.
func ExLatOf(c Config, in isa.Inst) int { return c.exLat(in) }
