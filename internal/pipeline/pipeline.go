// Package pipeline models a blocking in-order scalar pipeline
// (IF→ID→EX→MEM→WB) in max-plus form and computes context-parameterized
// worst-case basic-block costs for WCET analysis, following the
// context-parameterized execution-time model of Rochange & Sainrat cited
// by the survey (§2.1, [32]).
//
// The same instruction-level recurrence is evaluated by the static
// analysis (with classified worst-case latencies) and by the
// cycle-accurate simulator in internal/sim (with concrete latencies), so
// the static per-block cost is an upper bound of every simulated instance
// by monotonicity of the max-plus operators.
package pipeline

import (
	"fmt"

	"paratime/internal/cfg"
	"paratime/internal/isa"
)

// Stage indexes the pipeline stages.
type Stage int

// Pipeline stages.
const (
	IF Stage = iota
	ID
	EX
	MEM
	WB
	NumStages
)

// ctxClamp bounds how far in the past a context availability can lie;
// clamping *raises* values, which is conservative under max-plus.
const ctxClamp = -64

// Config is the pipeline timing parameterization.
type Config struct {
	// ExLat is the EX-stage occupancy per instruction class (cycles >= 1).
	ExLat map[isa.Class]int
	// BranchPenalty is the refetch delay after any taken control transfer,
	// counted from the end of the transfer's EX stage.
	BranchPenalty int
}

// DefaultConfig returns a standard parameterization: single-cycle ALU,
// 3-cycle multiply, 12-cycle divide, 2-cycle redirect penalty.
func DefaultConfig() Config {
	return Config{
		ExLat: map[isa.Class]int{
			isa.ClassNop: 1, isa.ClassALU: 1, isa.ClassMul: 3, isa.ClassDiv: 12,
			isa.ClassLoad: 1, isa.ClassStore: 1,
			isa.ClassBranch: 1, isa.ClassJump: 1, isa.ClassHalt: 1,
		},
		BranchPenalty: 2,
	}
}

// exLat returns the EX latency of an instruction (>= 1).
func (c Config) exLat(in isa.Inst) int {
	if l, ok := c.ExLat[isa.ClassOf(in.Op)]; ok && l >= 1 {
		return l
	}
	return 1
}

// InstTiming carries the memory-latency inputs of one instruction:
// the fetch latency and, for LD/ST, the data-access latency. Both are
// occupancy times (>= 1); cache classification decides their values.
//
// FetchMiss/MemMiss mark accesses that leave the L1s. The core has a
// single blocking miss port: two miss transactions of the same core never
// overlap (no hit-under-miss), which is what makes per-core arbitration
// bounds like D = N·L−1 applicable. Hits ignore the port.
type InstTiming struct {
	Fetch     int
	FetchMiss bool
	Mem       int // ignored (forced to 1) for non-memory instructions
	MemMiss   bool
}

// TimingFn resolves the memory timing of instruction instIdx of block b.
type TimingFn func(b *cfg.Block, instIdx int) InstTiming

// Context is the pipeline state crossing a block boundary, expressed
// relative to the retirement time of the previous block's last
// instruction: when each stage becomes available and when each register's
// value becomes forwardable. Larger is worse; the join is pointwise max.
type Context struct {
	Avail    [NumStages]int
	RegReady [isa.NumRegs]int
	// Port is when the core's blocking miss port frees (relative).
	Port int
}

// EntryContext is the task-start context: everything available at t=0.
func EntryContext() Context { return Context{} }

// Join returns the pointwise maximum (worst case) of two contexts.
func (c Context) Join(o Context) Context {
	out := c
	for i := range out.Avail {
		if o.Avail[i] > out.Avail[i] {
			out.Avail[i] = o.Avail[i]
		}
	}
	for i := range out.RegReady {
		if o.RegReady[i] > out.RegReady[i] {
			out.RegReady[i] = o.RegReady[i]
		}
	}
	if o.Port > out.Port {
		out.Port = o.Port
	}
	return out
}

func clamp(x int) int {
	if x < ctxClamp {
		return ctxClamp
	}
	return x
}

// BlockTiming is the result of executing one block from a context.
type BlockTiming struct {
	// Dur is the block's cost: retirement time of its last instruction,
	// relative to the predecessor's retirement (the context origin).
	Dur int
	// Out is the trailing context (relative to this block's retirement).
	Out Context
	// Resolve is the time (relative to the context origin) at which the
	// final control transfer is resolved in EX; successors reached via a
	// taken edge cannot fetch before Resolve + BranchPenalty.
	Resolve int
}

// ExecBlock evaluates the pipeline recurrence over the block's
// instructions starting from the given context. tim supplies the memory
// latencies. Empty (exit) blocks pass the context through at zero cost.
//
// Recurrence (blocking single-slot stages, forwarding from EX and MEM):
//
//	IFs(i)  = max(IDs(i-1), redirect)          IFd(i) = IFs(i)+fetch(i)
//	IDs(i)  = max(IFd(i),  EXs(i-1))
//	EXs(i)  = max(IDs(i)+1, MEMs(i-1), ready(srcs))
//	MEMs(i) = max(EXs(i)+ex(i), WBs(i-1))
//	WBs(i)  = max(MEMs(i)+mem(i), WBd(i-1))    WBd(i) = WBs(i)+1
func ExecBlock(pc Config, b *cfg.Block, tim TimingFn, in Context) BlockTiming {
	if b.IsExit() || b.Len() == 0 {
		return BlockTiming{Dur: 0, Out: in, Resolve: 0}
	}
	insts := b.Insts()
	// Absolute times for the in-flight previous instruction, seeded from
	// the context: Avail[S] is when stage S accepts a new instruction.
	prevIDs := in.Avail[IF] // IF frees when prior instruction entered ID
	prevEXs := in.Avail[ID]
	prevMEMs := in.Avail[EX]
	prevWBs := in.Avail[MEM]
	prevWBd := in.Avail[WB]
	port := in.Port
	var ready [isa.NumRegs]int
	copy(ready[:], in.RegReady[:])

	var lastEXd int
	for i, inst := range insts {
		t := tim(b, i)
		fetch := max(1, t.Fetch)
		mem := 1
		if inst.IsMem() {
			mem = max(1, t.Mem)
		}
		ex := pc.exLat(inst)

		ifs := prevIDs
		var ifd int
		if t.FetchMiss {
			start := max(ifs, port)
			ifd = start + fetch
			port = ifd
		} else {
			ifd = ifs + fetch
		}
		ids := max(ifd, prevEXs)
		exs := max(ids+1, prevMEMs)
		for _, r := range SrcRegs(inst) {
			if ready[r] > exs {
				exs = ready[r]
			}
		}
		mems := max(exs+ex, prevWBs)
		var memDone int
		if inst.IsMem() && t.MemMiss {
			start := max(mems, port)
			memDone = start + mem
			port = memDone
		} else {
			memDone = mems + mem
		}
		wbs := max(memDone, prevWBd)
		wbd := wbs + 1

		if rd, ok := DstReg(inst); ok {
			if inst.Op == isa.LD {
				ready[rd] = memDone // load value forwarded from MEM
			} else {
				ready[rd] = exs + ex // ALU result forwarded from EX
			}
		}
		prevIDs, prevEXs, prevMEMs, prevWBs, prevWBd = ids, exs, mems, wbs, wbd
		lastEXd = exs + ex
	}
	dur := prevWBd
	var out Context
	out.Avail[IF] = clamp(prevIDs - dur)
	out.Avail[ID] = clamp(prevEXs - dur)
	out.Avail[EX] = clamp(prevMEMs - dur)
	out.Avail[MEM] = clamp(prevWBs - dur)
	out.Avail[WB] = clamp(prevWBd - dur) // == 0
	out.Port = clamp(port - dur)
	for r := range out.RegReady {
		out.RegReady[r] = clamp(ready[r] - dur)
	}
	return BlockTiming{Dur: dur, Out: out, Resolve: lastEXd}
}

// EdgeContext derives the successor's entry context along an edge from
// the block timing: taken control transfers stall the successor's fetch
// until the transfer resolves plus the redirect penalty.
func EdgeContext(pc Config, bt BlockTiming, e *cfg.Edge) Context {
	ctx := bt.Out
	switch e.Kind {
	case cfg.EdgeTaken, cfg.EdgeJump, cfg.EdgeCall, cfg.EdgeReturn, cfg.EdgeExit:
		if e.Kind == cfg.EdgeExit && !isRealTransfer(e.From) {
			return ctx // HALT falls to the synthetic exit; no redirect
		}
		redirect := clamp(bt.Resolve + pc.BranchPenalty - bt.Dur)
		if redirect > ctx.Avail[IF] {
			ctx.Avail[IF] = redirect
		}
	}
	return ctx
}

func isRealTransfer(b *cfg.Block) bool {
	if b.IsExit() || b.Len() == 0 {
		return false
	}
	op := b.Insts()[b.Len()-1].Op
	return op == isa.RET || op == isa.J || op == isa.CALL
}

// CostResult carries the context fixpoint and per-block worst-case costs.
type CostResult struct {
	In   map[cfg.BlockID]Context
	Cost map[cfg.BlockID]int
}

// maxFixIter guards the context fixpoint (finite lattice; generous).
const maxFixIter = 10_000

// AnalyzeCosts runs the context fixpoint with worst-case latencies and
// then prices each block under its worst context with base latencies.
//
// worst must upper-bound every latency the hardware can exhibit
// (classification misses for PS/NC refs); base may assume hits for
// PERSISTENT references whose misses are charged separately by IPET
// miss-count variables. Passing the same function for both yields the
// plain (non-PS-aware) model.
func AnalyzeCosts(g *cfg.Graph, pc Config, worst, base TimingFn) (*CostResult, error) {
	in := map[cfg.BlockID]Context{}
	in[g.Entry.ID] = EntryContext()
	seen := map[cfg.BlockID]bool{g.Entry.ID: true}
	for iter := 0; ; iter++ {
		if iter > maxFixIter {
			return nil, fmt.Errorf("pipeline: context fixpoint did not converge")
		}
		changed := false
		for _, b := range g.RPO() {
			if !seen[b.ID] {
				continue
			}
			bt := ExecBlock(pc, b, worst, in[b.ID])
			for _, e := range b.Succs {
				ec := EdgeContext(pc, bt, e)
				cur, ok := in[e.To.ID]
				var next Context
				if ok {
					next = cur.Join(ec)
				} else {
					next = ec
				}
				if !ok || next != cur {
					in[e.To.ID] = next
					seen[e.To.ID] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	res := &CostResult{In: in, Cost: map[cfg.BlockID]int{}}
	for _, b := range g.Blocks {
		res.Cost[b.ID] = ExecBlock(pc, b, base, in[b.ID]).Dur
	}
	return res, nil
}

// SrcRegs returns the registers an instruction reads.
func SrcRegs(in isa.Inst) []isa.Reg {
	switch in.Op {
	case isa.NOP, isa.HALT, isa.LI, isa.J, isa.CALL:
		return nil
	case isa.MOV:
		return []isa.Reg{in.Rs1}
	case isa.ADDI, isa.ANDI, isa.ORI, isa.SLLI, isa.SRLI, isa.SLTI, isa.LD:
		return []isa.Reg{in.Rs1}
	case isa.ST:
		return []isa.Reg{in.Rs1, in.Rs2}
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		return []isa.Reg{in.Rs1, in.Rs2}
	case isa.RET:
		return []isa.Reg{isa.RA}
	default: // three-register ALU
		return []isa.Reg{in.Rs1, in.Rs2}
	}
}

// DstReg returns the register an instruction writes, if any.
func DstReg(in isa.Inst) (isa.Reg, bool) {
	switch in.Op {
	case isa.NOP, isa.HALT, isa.ST, isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.J, isa.RET:
		return 0, false
	case isa.CALL:
		return isa.RA, true
	default:
		if in.Rd == isa.R0 {
			return 0, false
		}
		return in.Rd, true
	}
}

// ExLatOf exposes the per-instruction EX latency for the simulator, which
// must price EX identically to the static model.
func ExLatOf(c Config, in isa.Inst) int { return c.exLat(in) }
