package pipeline

import (
	"math/rand"
	"testing"

	"paratime/internal/cfg"
	"paratime/internal/isa"
)

func flatTiming(fetch, mem int) TimingFn {
	return func(b *cfg.Block, i int) InstTiming { return InstTiming{Fetch: fetch, Mem: mem} }
}

func buildGraph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	g, err := cfg.Build(isa.MustAssemble(t.Name(), src))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExecBlockStraightALU(t *testing.T) {
	g := buildGraph(t, "add r1, r2, r3\nadd r4, r5, r6\nadd r7, r8, r9\nhalt")
	pc := DefaultConfig()
	bt := ExecBlock(pc, g.Entry, flatTiming(1, 1), EntryContext())
	// Perfectly pipelined 5-stage: first instruction takes 5 cycles
	// (IF1 ID1 EX1 MEM1 WB1), each subsequent retires 1 cycle later.
	want := 5 + (g.Entry.Len() - 1)
	if bt.Dur != want {
		t.Errorf("dur = %d, want %d", bt.Dur, want)
	}
}

func TestExecBlockFetchLatencySerializes(t *testing.T) {
	g := buildGraph(t, "add r1, r2, r3\nadd r4, r5, r6\nhalt")
	pc := DefaultConfig()
	fast := ExecBlock(pc, g.Entry, flatTiming(1, 1), EntryContext())
	slow := ExecBlock(pc, g.Entry, flatTiming(5, 1), EntryContext())
	if slow.Dur <= fast.Dur {
		t.Errorf("5-cycle fetches should cost more: %d vs %d", slow.Dur, fast.Dur)
	}
	// With fetch 5 dominating every other stage, issue is fetch-bound:
	// the first instruction retires at 5+4 = 9 and each of the remaining
	// (the block is add, add, halt) retires 5 cycles after its
	// predecessor: 9 + 2*5 = 19.
	if slow.Dur != 19 {
		t.Errorf("fetch-bound dur = %d, want 19", slow.Dur)
	}
}

func TestExecBlockLoadUseStall(t *testing.T) {
	// ld r1; add r2, r1, r1: the add's EX must wait for the load's MEM.
	g1 := buildGraph(t, "li r3, 0x8000\nld r1, 0(r3)\nadd r2, r1, r1\nhalt")
	g2 := buildGraph(t, "li r3, 0x8000\nld r1, 0(r3)\nadd r2, r4, r4\nhalt")
	pc := DefaultConfig()
	slowMem := func(b *cfg.Block, i int) InstTiming { return InstTiming{Fetch: 1, Mem: 8} }
	dep := ExecBlock(pc, g1.Entry, slowMem, EntryContext())
	indep := ExecBlock(pc, g2.Entry, slowMem, EntryContext())
	if dep.Dur <= indep.Dur {
		t.Errorf("load-use dependence should stall: dep %d vs indep %d", dep.Dur, indep.Dur)
	}
}

func TestExecBlockMonotoneInContext(t *testing.T) {
	g := buildGraph(t, "add r1, r2, r3\nmul r4, r1, r1\nld r5, 0(r6)\nhalt")
	pc := DefaultConfig()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		var a, b Context
		for i := range a.Avail {
			a.Avail[i] = -rng.Intn(10)
			b.Avail[i] = a.Avail[i] + rng.Intn(4) // b >= a pointwise
		}
		for i := range a.RegReady {
			a.RegReady[i] = -rng.Intn(10)
			b.RegReady[i] = a.RegReady[i] + rng.Intn(4)
		}
		clampCtx(&a)
		clampCtx(&b)
		ta := ExecBlock(pc, g.Entry, flatTiming(2, 3), a)
		tb := ExecBlock(pc, g.Entry, flatTiming(2, 3), b)
		if tb.Dur < ta.Dur {
			t.Fatalf("trial %d: larger context gave smaller cost (%d < %d)", trial, tb.Dur, ta.Dur)
		}
	}
}

func clampCtx(c *Context) {
	for i := range c.Avail {
		if c.Avail[i] > 0 {
			c.Avail[i] = 0
		}
	}
	for i := range c.RegReady {
		if c.RegReady[i] > 0 {
			c.RegReady[i] = 0
		}
	}
}

func TestExecBlockMonotoneInLatency(t *testing.T) {
	g := buildGraph(t, "ld r1, 0(r6)\nadd r2, r1, r1\nmul r3, r2, r2\nhalt")
	pc := DefaultConfig()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		f1, m1 := 1+rng.Intn(5), 1+rng.Intn(10)
		f2, m2 := f1+rng.Intn(5), m1+rng.Intn(10)
		t1 := ExecBlock(pc, g.Entry, flatTiming(f1, m1), EntryContext())
		t2 := ExecBlock(pc, g.Entry, flatTiming(f2, m2), EntryContext())
		if t2.Dur < t1.Dur {
			t.Fatalf("trial %d: larger latencies gave smaller cost", trial)
		}
		// Bounded-effect property: raising one instruction's mem latency by
		// delta cannot add more than delta to the cost.
		delta := (m2 - m1) + (f2-f1)*g.Entry.Len()
		if t2.Dur-t1.Dur > delta+(f2-f1)*g.Entry.Len() {
			t.Fatalf("trial %d: cost increase %d exceeds latency increase budget %d",
				trial, t2.Dur-t1.Dur, delta)
		}
	}
}

func TestContextJoinIsPointwiseMax(t *testing.T) {
	var a, b Context
	a.Avail[IF], b.Avail[IF] = -3, -1
	a.RegReady[2], b.RegReady[2] = -5, -9
	j := a.Join(b)
	if j.Avail[IF] != -1 || j.RegReady[2] != -5 {
		t.Errorf("join = %+v", j)
	}
}

func TestEdgeContextBranchPenalty(t *testing.T) {
	g := buildGraph(t, `
        li   r1, 3
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	pc := DefaultConfig()
	var loopBlk *cfg.Block
	for _, b := range g.Blocks {
		if !b.IsExit() && b.Len() > 0 && b.Insts()[b.Len()-1].Op == isa.BNE {
			loopBlk = b
		}
	}
	bt := ExecBlock(pc, loopBlk, flatTiming(1, 1), EntryContext())
	var takenCtx, fallCtx Context
	for _, e := range loopBlk.Succs {
		if e.Kind == cfg.EdgeTaken {
			takenCtx = EdgeContext(pc, bt, e)
		} else {
			fallCtx = EdgeContext(pc, bt, e)
		}
	}
	if takenCtx.Avail[IF] <= fallCtx.Avail[IF] {
		t.Errorf("taken edge should delay fetch: taken %d vs fall %d",
			takenCtx.Avail[IF], fallCtx.Avail[IF])
	}
}

func TestAnalyzeCostsLoop(t *testing.T) {
	g := buildGraph(t, `
        li   r1, 3
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	pc := DefaultConfig()
	res, err := AnalyzeCosts(g, pc, flatTiming(1, 1), flatTiming(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range g.Blocks {
		if b.IsExit() {
			if res.Cost(b.ID) != 0 {
				t.Errorf("exit cost = %d, want 0", res.Cost(b.ID))
			}
			continue
		}
		if res.Cost(b.ID) < b.Len() {
			t.Errorf("block %v cost %d below instruction count", b, res.Cost(b.ID))
		}
	}
	// The loop block's in-context must reflect the taken-branch redirect:
	// its cost from the back edge exceeds the pure pipeline minimum.
	var loopBlk *cfg.Block
	for _, b := range g.Blocks {
		if !b.IsExit() && len(b.Preds) == 2 {
			loopBlk = b
		}
	}
	if loopBlk == nil {
		t.Fatal("no loop block")
	}
	loopIn, reached := res.In(loopBlk.ID)
	if !reached {
		t.Fatal("loop block unreached by the context fixpoint")
	}
	if loopIn.Avail[IF] <= ctxClamp {
		t.Errorf("loop in-context unexpectedly bottom: %+v", loopIn)
	}
}

func TestAnalyzeCostsWorstVsBase(t *testing.T) {
	g := buildGraph(t, `
        li   r1, 3
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	pc := DefaultConfig()
	worst := flatTiming(10, 10)
	base := flatTiming(1, 1)
	resW, err := AnalyzeCosts(g, pc, worst, worst)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := AnalyzeCosts(g, pc, worst, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range g.Blocks {
		if resB.Cost(b.ID) > resW.Cost(b.ID) {
			t.Errorf("base-priced cost exceeds worst-priced for %v", b)
		}
	}
}

func TestSrcDstRegs(t *testing.T) {
	if rs := SrcRegs(isa.Inst{Op: isa.ST, Rs1: 2, Rs2: 3}); len(rs) != 2 {
		t.Errorf("ST sources = %v", rs)
	}
	if rs := SrcRegs(isa.Inst{Op: isa.RET}); len(rs) != 1 || rs[0] != isa.RA {
		t.Errorf("RET sources = %v", rs)
	}
	if _, ok := DstReg(isa.Inst{Op: isa.ST}); ok {
		t.Error("ST has no destination")
	}
	if rd, ok := DstReg(isa.Inst{Op: isa.CALL}); !ok || rd != isa.RA {
		t.Error("CALL writes RA")
	}
	if _, ok := DstReg(isa.Inst{Op: isa.ADD, Rd: isa.R0}); ok {
		t.Error("writes to R0 are architectural no-ops")
	}
}

func TestExitBlockPassThrough(t *testing.T) {
	g := buildGraph(t, "halt")
	pc := DefaultConfig()
	var ctx Context
	ctx.Avail[EX] = -7
	bt := ExecBlock(pc, g.Exit, flatTiming(1, 1), ctx)
	if bt.Dur != 0 || bt.Out != ctx {
		t.Errorf("exit block should pass context through: %+v", bt)
	}
}
