package pipeline

import (
	"fmt"
	"testing"

	"paratime/internal/cfg"
	"paratime/internal/isa"
)

// Benchmarks compare the compiled model (Compile + Compiled.AnalyzeCosts,
// dense worklist fixpoint) against the retired map-based round-robin
// implementation, which lives on in oracle_test.go. Both run on the same
// graphs with the same timing functions, so the *Oracle numbers are the
// reproducible "before" of BENCH_pipeline.json.

// benchSmall is a matmult-shaped triple loop nest (the heaviest suite
// task's shape).
func benchSmall(b *testing.B) *cfg.Graph {
	b.Helper()
	src := `
        li   r1, 8
iloop:  li   r2, 8
jloop:  li   r3, 8
        li   r4, 0
kloop:  ld   r5, 0(r10)
        ld   r6, 0(r11)
        mul  r7, r5, r6
        add  r4, r4, r7
        addi r10, r10, 4
        addi r11, r11, 32
        addi r3, r3, -1
        bne  r3, r0, kloop
        st   r4, 0(r12)
        addi r12, r12, 4
        addi r2, r2, -1
        bne  r2, r0, jloop
        addi r1, r1, -1
        bne  r1, r0, iloop
        halt`
	g, err := cfg.Build(isa.MustAssemble("benchsmall", src))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchLarge chains eight distinct loop nests with data-dependent
// branches (~70 blocks): the shape of a whole-task analysis, where the
// retired implementation re-executed every block each round.
func benchLarge(b *testing.B) *cfg.Graph {
	b.Helper()
	src := ""
	for k := 0; k < 8; k++ {
		src += fmt.Sprintf(`
        li   r1, %d
outer%d: li   r2, %d
inner%d: ld   r3, 0(r8)
        mul  r4, r3, r3
        andi r5, r2, 1
        beq  r5, r0, even%d
        div  r6, r4, r2
        j    join%d
even%d:  add  r6, r6, r4
join%d:  st   r6, 4(r8)
        addi r8, r8, 8
        addi r2, r2, -1
        bne  r2, r0, inner%d
        addi r1, r1, -1
        bne  r1, r0, outer%d
`, 4+k, k, 3+k, k, k, k, k, k, k, k)
	}
	src += "        halt\n"
	g, err := cfg.Build(isa.MustAssemble("benchlarge", src))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchTiming is a deterministic per-instruction latency mix with
// occasional miss-port transactions, approximating a post-classification
// table. delay skews the miss charges like a bus-arbitration bound does.
func benchTiming(delay int) TimingFn {
	return func(b *cfg.Block, i int) InstTiming {
		h := uint32(b.ID)*2654435761 + uint32(i)*40503
		t := InstTiming{Fetch: 1, Mem: 1}
		if h%7 == 0 {
			t.Fetch, t.FetchMiss = 9+delay, true
		}
		if h%5 == 0 {
			t.Mem, t.MemMiss = 13+delay, true
		}
		return t
	}
}

func flatBase(b *cfg.Block, i int) InstTiming { return InstTiming{Fetch: 1, Mem: 1} }

func benchAnalyzeCompiled(b *testing.B, g *cfg.Graph) {
	b.Helper()
	c := Compile(g)
	pc := DefaultConfig()
	worst := benchTiming(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AnalyzeCosts(pc, worst, flatBase); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAnalyzeOracle(b *testing.B, g *cfg.Graph) {
	b.Helper()
	pc := DefaultConfig()
	worst := benchTiming(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oracleAnalyzeCosts(g, pc, worst, flatBase); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeCosts / BenchmarkAnalyzeCostsOracle: one context
// fixpoint plus per-block pricing, compiled model (reused across calls,
// the core.Prepare shape) vs the retired implementation.
func BenchmarkAnalyzeCosts(b *testing.B)       { benchAnalyzeCompiled(b, benchSmall(b)) }
func BenchmarkAnalyzeCostsOracle(b *testing.B) { benchAnalyzeOracle(b, benchSmall(b)) }

// ...Large: the whole-task shape, where worklist dedup pays most.
func BenchmarkAnalyzeCostsLarge(b *testing.B)       { benchAnalyzeCompiled(b, benchLarge(b)) }
func BenchmarkAnalyzeCostsLargeOracle(b *testing.B) { benchAnalyzeOracle(b, benchLarge(b)) }

// BenchmarkAnalyzeCostsSweep re-prices one task under eight latency
// assignments — the pipeline layer's share of an arbiter sweep (e12/e13:
// same program, bus-delay-dependent miss charges). The compiled variant
// compiles once, like engine sweeps over a memoized Prepare.
func BenchmarkAnalyzeCostsSweep(b *testing.B) {
	g := benchLarge(b)
	c := Compile(g)
	pc := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := 0; d < 8; d++ {
			if _, err := c.AnalyzeCosts(pc, benchTiming(d), flatBase); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAnalyzeCostsSweepOracle(b *testing.B) {
	g := benchLarge(b)
	pc := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := 0; d < 8; d++ {
			if _, err := oracleAnalyzeCosts(g, pc, benchTiming(d), flatBase); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExecBlock prices one straight-line block from a fixed context
// on the compiled model — the fixpoint's hot loop, which must not
// allocate — vs the retired per-instruction loop (SrcRegs slices, ExLat
// map lookups).
func BenchmarkExecBlock(b *testing.B) {
	g := benchSmall(b)
	c := Compile(g)
	pc := DefaultConfig()
	lt := pc.Latencies()
	blk := biggestBlock(g)
	tim := benchTiming(0)
	in := EntryContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.ExecBlock(&lt, blk, tim, in)
	}
}

func BenchmarkExecBlockOracle(b *testing.B) {
	g := benchSmall(b)
	pc := DefaultConfig()
	blk := biggestBlock(g)
	tim := benchTiming(0)
	in := EntryContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = oracleExec(pc, blk, tim, in)
	}
}

func biggestBlock(g *cfg.Graph) *cfg.Block {
	blk := g.Entry
	for _, cand := range g.Blocks {
		if !cand.IsExit() && cand.Len() > blk.Len() {
			blk = cand
		}
	}
	return blk
}
