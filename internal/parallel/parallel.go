// Package parallel provides the bounded fork/join primitives behind
// intra-analysis parallelism: deterministic ordered fan-out of
// independent index-addressed work items across a capped number of
// goroutines, and the process-wide parallelism knob the CLI and the
// analysis service wire their flags into.
//
// Every layer that goes wide inside one analysis — the per-set sharded
// cache fixpoint, the level-parallel pipeline context fixpoint, the
// explore state pricer — shares these primitives and the same
// determinism contract: work items are independent (each index writes
// only its own slot of a result vector), reductions happen after the
// barrier in index order, and all lattice joins are element-wise max or
// min (commutative and associative). The parallel schedule therefore
// produces bit-identical results to the sequential loop at any worker
// count, which the GOMAXPROCS 1-vs-8 determinism tests and differential
// oracles enforce.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvVar is the environment variable consulted by Default when no
// explicit process-wide parallelism has been set.
const EnvVar = "PARATIME_PARALLELISM"

// defaultPar holds the explicit process-wide setting (0 = automatic).
var defaultPar atomic.Int64

// SetDefault fixes the process-wide intra-analysis parallelism used
// when a caller passes 0; n <= 0 restores automatic selection
// (PARATIME_PARALLELISM, else GOMAXPROCS). The CLI's -parallelism flag
// calls it once at startup.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultPar.Store(int64(n))
}

// Default returns the process-wide intra-analysis parallelism:
// the explicit SetDefault value if any, else PARATIME_PARALLELISM if
// set to a positive integer, else GOMAXPROCS.
func Default() int {
	if n := defaultPar.Load(); n > 0 {
		return int(n)
	}
	if v := os.Getenv(EnvVar); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Resolve maps a caller-supplied knob to an effective worker count:
// positive values pass through, everything else selects Default.
func Resolve(n int) int {
	if n > 0 {
		return n
	}
	return Default()
}

// For runs f(i) for every i in [0, n) across at most workers
// goroutines and returns when all calls have finished (fork/join with
// an implicit barrier). Indices are handed out in ascending order.
// Calls must be independent: each index may only write state owned by
// that index, which is what makes the fan-out deterministic — the
// result vector is identical to the sequential loop regardless of
// schedule. workers <= 1 (or n <= 1) runs inline without spawning.
func For(workers, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr is For over fallible work: it runs f(i) for every i in [0, n)
// across at most workers goroutines and returns the error of the
// lowest index that failed, so the reported failure does not depend on
// scheduling. Unlike engine.ForEach it keeps dispatching after a
// failure (items are cheap and independent; total work is bounded by
// n), which keeps the "which indices ran" set schedule-independent.
func ForErr(workers, n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := f(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	For(workers, n, func(i int) { errs[i] = f(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Chunks partitions n items into at most parts contiguous ranges of
// near-equal size, returned as [lo, hi) pairs in ascending order.
// Fewer than parts ranges are returned when n < parts; n == 0 returns
// nil. It is the shard planner for contiguous-range fan-out (the cache
// fixpoint uses a weighted variant over set slot counts).
func Chunks(n, parts int) [][2]int {
	if n <= 0 || parts <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	lo := 0
	for p := 0; p < parts; p++ {
		hi := lo + (n-lo)/(parts-p)
		if hi > lo {
			out = append(out, [2]int{lo, hi})
		}
		lo = hi
	}
	return out
}
