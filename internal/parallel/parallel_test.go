package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForResultsMatchSequential(t *testing.T) {
	const n = 500
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 8} {
		got := make([]int, n)
		For(workers, n, func(i int) { got[i] = i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForErrLowestIndexWins(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4, 16} {
		// Indices 3 and 40 fail; the reported error must always be
		// index 3's regardless of schedule.
		err := ForErr(workers, 64, func(i int) error {
			switch i {
			case 3:
				return errA
			case 40:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: got %v, want errA", workers, err)
		}
	}
}

func TestForErrNoError(t *testing.T) {
	if err := ForErr(4, 32, func(i int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := ForErr(4, 0, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0 must not run f: %v", err)
	}
}

func TestChunks(t *testing.T) {
	for _, tc := range []struct {
		n, parts int
	}{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {7, 3}, {100, 8}, {3, 100},
	} {
		cs := Chunks(tc.n, tc.parts)
		if tc.n == 0 {
			if cs != nil {
				t.Fatalf("Chunks(0,%d) = %v, want nil", tc.parts, cs)
			}
			continue
		}
		if len(cs) > tc.parts {
			t.Fatalf("Chunks(%d,%d): %d parts > requested %d", tc.n, tc.parts, len(cs), tc.parts)
		}
		// Contiguous cover of [0,n), ascending, near-equal sizes.
		prev := 0
		minSz, maxSz := tc.n+1, 0
		for _, c := range cs {
			if c[0] != prev || c[1] <= c[0] {
				t.Fatalf("Chunks(%d,%d) = %v: bad range %v after %d", tc.n, tc.parts, cs, c, prev)
			}
			sz := c[1] - c[0]
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			prev = c[1]
		}
		if prev != tc.n {
			t.Fatalf("Chunks(%d,%d) = %v: covers [0,%d) not [0,%d)", tc.n, tc.parts, cs, prev, tc.n)
		}
		if maxSz-minSz > 1 {
			t.Fatalf("Chunks(%d,%d) = %v: unbalanced (min %d, max %d)", tc.n, tc.parts, cs, minSz, maxSz)
		}
	}
}

func TestDefaultAndResolve(t *testing.T) {
	t.Setenv(EnvVar, "")
	SetDefault(0)
	defer SetDefault(0)
	if d := Default(); d < 1 {
		t.Fatalf("Default() = %d, want >= 1", d)
	}
	SetDefault(3)
	if d := Default(); d != 3 {
		t.Fatalf("after SetDefault(3): Default() = %d", d)
	}
	if r := Resolve(5); r != 5 {
		t.Fatalf("Resolve(5) = %d", r)
	}
	if r := Resolve(0); r != 3 {
		t.Fatalf("Resolve(0) = %d, want 3 (SetDefault)", r)
	}
	SetDefault(0)
	t.Setenv(EnvVar, "7")
	if d := Default(); d != 7 {
		t.Fatalf("env=7: Default() = %d", d)
	}
	t.Setenv(EnvVar, "bogus")
	if d := Default(); d < 1 {
		t.Fatalf("bogus env: Default() = %d, want >= 1", d)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	// Fork/join cost for a trivially small body: the floor under which
	// parallelizing a loop cannot pay off.
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var sink atomic.Int64
			for b.Loop() {
				For(workers, 64, func(i int) { sink.Add(int64(i)) })
			}
		})
	}
}
