package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"paratime/internal/cachestore"
	"paratime/internal/parallel"
)

func sumWaitBuckets(w QueueWaitReply) uint64 {
	return w.Le1 + w.Le5 + w.Le10 + w.Le50 + w.Le100 + w.Le500 + w.Le1000 + w.Gt1000
}

// TestStatsParallelismAndQueueWait: /v1/stats reports the effective
// intra-analysis worker count and a queue-wait histogram in which every
// admitted request lands in exactly one bucket.
func TestStatsParallelismAndQueueWait(t *testing.T) {
	parallel.SetDefault(3)
	t.Cleanup(func() { parallel.SetDefault(0) }) // back to automatic

	srv := New(Config{Cache: cachestore.NewMemory(4)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 3
	for i := 0; i < n; i++ {
		resp := postAnalyze(t, ts.URL, soloScenario)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		readAll(t, resp)
	}

	st := getStats(t, ts.URL)
	if st.Parallelism != 3 {
		t.Errorf("parallelism %d, want 3", st.Parallelism)
	}
	if got := sumWaitBuckets(st.Queue.WaitMs); got != n {
		t.Errorf("wait histogram holds %d observations, want %d: %+v", got, n, st.Queue.WaitMs)
	}

	// The raw JSON document must expose both fields under their wire
	// names (dashboards key on them).
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(readAll(t, resp), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["parallelism"]; !ok {
		t.Error("stats JSON lacks \"parallelism\"")
	}
	var queue map[string]json.RawMessage
	if err := json.Unmarshal(raw["queue"], &queue); err != nil {
		t.Fatal(err)
	}
	hist, ok := queue["queue_wait_ms"]
	if !ok {
		t.Fatal("stats JSON lacks \"queue_wait_ms\"")
	}
	var buckets map[string]uint64
	if err := json.Unmarshal(hist, &buckets); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"le_1", "le_5", "le_10", "le_50", "le_100", "le_500", "le_1000", "gt_1000"} {
		if _, ok := buckets[key]; !ok {
			t.Errorf("queue_wait_ms lacks bucket %q", key)
		}
	}
}
