package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paratime/internal/cachestore"
	"paratime/internal/engine"
	"paratime/internal/spec"
)

// soloScenario is a small valid "spec":1 scenario (two tasks, so the
// stream has an interesting shape: two task events then the report).
const soloScenario = `{
  "spec": 1,
  "name": "srv-solo",
  "tasks": [
    {
      "name": "countdown",
      "source": "        li   r1, 10\nloop:   addi r1, r1, -1\n        bne  r1, r0, loop\n        halt"
    },
    {
      "name": "nested",
      "source": "        li   r2, 0\n        li   r3, 4\nouter:  li   r4, 3\ninner:  add  r2, r2, r4\n        addi r4, r4, -1\n        bne  r4, r0, inner\n        addi r3, r3, -1\n        bne  r3, r0, outer\n        halt",
      "bounds": {"inner": 3, "outer": 4}
    }
  ],
  "system": {
    "l1i": {"sets": 16, "ways": 2, "lineBytes": 16, "hitLatency": 1, "missPenalty": 4},
    "l1d": {"sets": 16, "ways": 2, "lineBytes": 16, "hitLatency": 1, "missPenalty": 4},
    "l2": {"sets": 32, "ways": 4, "lineBytes": 32, "hitLatency": 4, "missPenalty": 20}
  },
  "mode": {"kind": "solo"}
}`

func postAnalyze(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func getStats(t *testing.T, url string) StatsReply {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var reply StatsReply
	if err := json.Unmarshal(readAll(t, resp), &reply); err != nil {
		t.Fatal(err)
	}
	return reply
}

// TestAnalyzeHappyPathAndCacheHit: a valid scenario streams NDJSON task
// events plus a terminal report, and an identical second POST returns
// byte-identical output served from the result cache (observable via
// the X-Paratime-Cache header and /v1/stats).
func TestAnalyzeHappyPathAndCacheHit(t *testing.T) {
	srv := New(Config{Cache: cachestore.NewMemory(16)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postAnalyze(t, ts.URL, soloScenario)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	if v := resp.Header.Get("X-Paratime-Cache"); v != "miss" {
		t.Errorf("first request cache header %q, want miss", v)
	}
	first := readAll(t, resp)

	lines := bytes.Split(bytes.TrimSuffix(first, []byte("\n")), []byte("\n"))
	if len(lines) != 3 { // 2 task events + report
		t.Fatalf("got %d NDJSON lines, want 3:\n%s", len(lines), first)
	}
	var last Event
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Report == nil || len(last.Report.Tasks) != 2 {
		t.Fatalf("terminal event has no 2-task report: %s", lines[len(lines)-1])
	}
	if last.Report.Tasks[0].WCET <= 0 {
		t.Errorf("non-positive WCET %d", last.Report.Tasks[0].WCET)
	}
	if !strings.HasPrefix(last.Fingerprint, "spec1-") {
		t.Errorf("fingerprint %q", last.Fingerprint)
	}

	resp2 := postAnalyze(t, ts.URL, soloScenario)
	if v := resp2.Header.Get("X-Paratime-Cache"); v != "hit" {
		t.Errorf("second request cache header %q, want hit", v)
	}
	second := readAll(t, resp2)
	if !bytes.Equal(first, second) {
		t.Fatalf("cached response differs from computed response:\n%s\nvs\n%s", first, second)
	}

	st := getStats(t, ts.URL)
	if st.Requests.CacheHits != 1 || st.Requests.CacheMisses != 1 || st.Requests.Served != 2 {
		t.Errorf("stats hits=%d misses=%d served=%d, want 1/1/2",
			st.Requests.CacheHits, st.Requests.CacheMisses, st.Requests.Served)
	}
	if st.Cache == nil || st.Cache.Hits != 1 {
		t.Errorf("cache tier stats missing or hitless: %+v", st.Cache)
	}
}

// TestAnalyzeStreamingOrder: task events arrive in task order, each
// carrying exactly one task, before the terminal report event.
func TestAnalyzeStreamingOrder(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postAnalyze(t, ts.URL, soloScenario)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lines := bytes.Split(bytes.TrimSuffix(readAll(t, resp), []byte("\n")), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	wantTasks := []string{"countdown", "nested"}
	for i, want := range wantTasks {
		var ev Event
		if err := json.Unmarshal(lines[i], &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Task == nil || ev.Task.Name != want {
			t.Errorf("line %d: task %+v, want name %q", i, ev.Task, want)
		}
		if ev.Report != nil {
			t.Errorf("line %d: report before all task events", i)
		}
		if ev.Scenario != "srv-solo" {
			t.Errorf("line %d: scenario %q", i, ev.Scenario)
		}
	}
	var last Event
	if err := json.Unmarshal(lines[2], &last); err != nil {
		t.Fatal(err)
	}
	if last.Task != nil || last.Report == nil {
		t.Errorf("terminal line is not a pure report event: %s", lines[2])
	}
}

// TestAnalyzeInvalidScenario: strict decoding rejects malformed input at
// the edge with 400 and a JSON error body naming the problem.
func TestAnalyzeInvalidScenario(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := map[string]string{
		"not json":      "{",
		"unknown field": `{"spec": 1, "bogus": true}`,
		"no tasks":      `{"spec": 1, "system": {"l1i": {"sets": 16, "ways": 2, "lineBytes": 16, "hitLatency": 1, "missPenalty": 4}, "l1d": {"sets": 16, "ways": 2, "lineBytes": 16, "hitLatency": 1, "missPenalty": 4}}, "mode": {"kind": "solo"}}`,
		"wrong version": strings.Replace(soloScenario, `"spec": 1`, `"spec": 99`, 1),
	}
	for label, body := range cases {
		resp := postAnalyze(t, ts.URL, body)
		data := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", label, resp.StatusCode)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %q not a JSON error document", label, data)
		}
	}

	// Wrong method is 405 with an Allow header, not 400.
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow %q", allow)
	}
}

// blockingAnalyze returns an Analyze seam whose calls park until release
// is closed (or the request context ends), signalling each start.
func blockingAnalyze(started chan<- struct{}, release <-chan struct{}) func(context.Context, *spec.Scenario, *engine.Engine) (*spec.Report, error) {
	return func(ctx context.Context, s *spec.Scenario, eng *engine.Engine) (*spec.Report, error) {
		started <- struct{}{}
		select {
		case <-release:
			return spec.Run(ctx, s, eng)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestAnalyzeQueueOverflow: with one analysis slot and a queue of one,
// a concurrent flood gets exactly (flood − slots − queue) rejections,
// each a 429 with Retry-After, and every admitted request completes once
// the slot frees up.
func TestAnalyzeQueueOverflow(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	srv := New(Config{
		MaxInflight: 1,
		QueueDepth:  1,
		Analyze:     blockingAnalyze(started, release),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the single slot.
	var wg sync.WaitGroup
	var ok, rejected atomic.Int64
	post := func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(soloScenario))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		switch resp.StatusCode {
		case http.StatusOK:
			ok.Add(1)
		case http.StatusTooManyRequests:
			rejected.Add(1)
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Errorf("unexpected status %d", resp.StatusCode)
		}
	}
	wg.Add(1)
	go post()
	<-started // slot holder is inside Analyze

	// Fill the queue, then flood: all further requests must be rejected
	// immediately (no blocking), while the queued one waits.
	const flood = 6
	wg.Add(flood)
	for i := 0; i < flood; i++ {
		go post()
	}
	// Exactly flood-1 rejections: 1 running + 1 queued + (flood-1) over.
	deadline := time.After(10 * time.Second)
	for rejected.Load() < flood-1 {
		select {
		case <-deadline:
			t.Fatalf("only %d rejections after flood", rejected.Load())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	<-started // the queued request enters Analyze
	wg.Wait()

	if got := ok.Load(); got != 2 {
		t.Errorf("%d requests succeeded, want 2 (slot + queue)", got)
	}
	if got := rejected.Load(); got != flood-1 {
		t.Errorf("%d requests rejected, want %d", got, flood-1)
	}
	st := getStats(t, ts.URL)
	if st.Requests.Rejected != flood-1 {
		t.Errorf("stats rejected %d, want %d", st.Requests.Rejected, flood-1)
	}
	if st.Queue.Inflight != 0 || st.Queue.Queued != 0 {
		t.Errorf("queue not drained: %+v", st.Queue)
	}
}

// TestAnalyzeCancellationReleasesSlot: a client abandoning its request
// mid-analysis frees the slot — the next request is admitted and
// completes.
func TestAnalyzeCancellationReleasesSlot(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	srv := New(Config{
		MaxInflight: 1,
		QueueDepth:  0,
		Analyze:     blockingAnalyze(started, release),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader(soloScenario))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started // analysis is in flight
	cancel()  // client walks away
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("client error %v, want context.Canceled", err)
	}

	// The slot must come back: this request gets admitted and, with the
	// seam released, completes normally.
	close(release)
	done := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(soloScenario))
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- resp
	}()
	<-started
	select {
	case resp := <-done:
		if resp == nil {
			t.Fatal("follow-up request failed")
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("follow-up status %d: %s", resp.StatusCode, body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("slot was not released after cancellation")
	}
}

// TestAnalyzeTimeout: a server-side timeout turns a stuck analysis into
// 504 rather than a hung connection.
func TestAnalyzeTimeout(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{}) // never closed: analysis hangs
	srv := New(Config{
		Timeout: 20 * time.Millisecond,
		Analyze: blockingAnalyze(started, release),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postAnalyze(t, ts.URL, soloScenario)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
}

// TestWarmRestartServesFromDisk: a second server instance sharing only
// the disk cache directory answers a repeated scenario byte-identically
// without running any analysis — the engine memo records zero misses,
// and /v1/stats attributes the answer to the cache.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	newServer := func() (*Server, *httptest.Server) {
		disk, err := cachestore.NewDisk(dir)
		if err != nil {
			t.Fatal(err)
		}
		srv := New(Config{
			Engine: engine.New(0),
			Cache:  cachestore.NewTwoTier(cachestore.NewMemory(16), disk),
		})
		return srv, httptest.NewServer(srv.Handler())
	}

	srv1, ts1 := newServer()
	first := readAll(t, postAnalyze(t, ts1.URL, soloScenario))
	st1 := getStats(t, ts1.URL)
	if st1.Engine.MemoMisses == 0 {
		t.Fatal("first run should have prepared tasks (memo misses > 0)")
	}
	ts1.Close()
	if err := srv1.cfg.Cache.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh engine, fresh memory tier, same disk directory.
	_, ts2 := newServer()
	defer ts2.Close()
	resp := postAnalyze(t, ts2.URL, soloScenario)
	if v := resp.Header.Get("X-Paratime-Cache"); v != "hit" {
		t.Errorf("warm-restart cache header %q, want hit", v)
	}
	second := readAll(t, resp)
	if !bytes.Equal(first, second) {
		t.Fatalf("warm-restart response differs:\n%s\nvs\n%s", first, second)
	}
	st2 := getStats(t, ts2.URL)
	if st2.Engine.MemoMisses != 0 || st2.Engine.MemoHits != 0 {
		t.Errorf("warm restart ran the engine: memo hits=%d misses=%d, want 0/0",
			st2.Engine.MemoHits, st2.Engine.MemoMisses)
	}
	if st2.Requests.CacheHits != 1 || st2.Requests.CacheMisses != 0 {
		t.Errorf("warm restart stats hits=%d misses=%d, want 1/0",
			st2.Requests.CacheHits, st2.Requests.CacheMisses)
	}
	if st2.Cache == nil || st2.Cache.Disk == nil || st2.Cache.Disk.Hits != 1 {
		t.Errorf("disk tier did not serve the hit: %+v", st2.Cache)
	}
}

// TestAnalyzeScenarioArray: the endpoint accepts the `paratime export`
// format (a JSON array of scenarios) and streams each scenario's events
// in order.
func TestAnalyzeScenarioArray(t *testing.T) {
	srv := New(Config{Cache: cachestore.NewMemory(16)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := "[" + soloScenario + "," + strings.Replace(soloScenario, "srv-solo", "srv-solo-b", 1) + "]"
	resp := postAnalyze(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lines := bytes.Split(bytes.TrimSuffix(readAll(t, resp), []byte("\n")), []byte("\n"))
	if len(lines) != 6 { // (2 tasks + report) × 2 scenarios
		t.Fatalf("got %d lines, want 6", len(lines))
	}
	var names []string
	for _, ln := range lines {
		var ev Event
		if err := json.Unmarshal(ln, &ev); err != nil {
			t.Fatal(err)
		}
		names = append(names, ev.Scenario)
	}
	want := []string{"srv-solo", "srv-solo", "srv-solo", "srv-solo-b", "srv-solo-b", "srv-solo-b"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("scenario order %v, want %v", names, want)
	}
	if st := getStats(t, ts.URL); st.Requests.Served != 2 || st.Requests.CacheMisses != 2 {
		t.Errorf("stats %+v, want 2 served / 2 misses", st.Requests)
	}
}

// TestHealthz: liveness endpoint answers ok.
func TestHealthz(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz %d %q", resp.StatusCode, body)
	}
}

// TestListenAndServeGracefulShutdown: cancelling the context stops the
// listener, drains, and closes the cache; ready reports a usable
// address.
func TestListenAndServeGracefulShutdown(t *testing.T) {
	srv := New(Config{Cache: cachestore.NewMemory(4)})
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- srv.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { addrCh <- a.String() })
	}()
	addr := <-addrCh
	resp, err := http.Get("http://" + addr + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}
