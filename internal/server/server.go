// Package server exposes the Scenario API over HTTP: `"spec":1`
// scenarios POSTed to /v1/analyze are strictly decoded and validated at
// the edge, pass admission control (a max-in-flight bound plus a bounded
// wait queue; overflow is rejected with 429 + Retry-After), run through
// the batch engine under the request's context (with an optional
// per-request timeout), and stream back per-task results as NDJSON as
// they land.
//
// WCET analysis is deterministic, so the service caches complete result
// streams in a pluggable cachestore.CacheBackend keyed by the scenario's
// content fingerprint: a repeated scenario — from any client, or after a
// process restart when a persistent tier is configured — is served
// byte-identically from the cache without re-running any analysis.
// /v1/healthz reports liveness and /v1/stats surfaces cache hit/miss
// counters per tier, the engine's memo statistics, and queue depth.
//
// Request lifecycle:
//
//	decode+validate → admission (slot or bounded queue) → fingerprint
//	→ result-cache lookup → [engine: prepare memo → analyze] → cache fill
//	→ NDJSON stream
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"paratime/internal/cachestore"
	"paratime/internal/engine"
	"paratime/internal/parallel"
	"paratime/internal/spec"
)

// respCacheVersion versions the cached NDJSON stream format; bumping it
// invalidates (by key) entries recorded by older builds, so a persistent
// tier can never replay a stale wire format.
const respCacheVersion = 1

// Defaults applied by New for zero Config fields.
const (
	DefaultMaxBody      = 16 << 20 // request body bound
	defaultDrainTimeout = 30 * time.Second
)

// Config parameterizes a Server.
type Config struct {
	// Engine runs the analyses; nil builds a private engine with an
	// unbounded in-memory prepare memo.
	Engine *engine.Engine
	// Cache holds complete per-scenario result streams keyed by
	// scenario fingerprint; nil disables result caching. A
	// *cachestore.TwoTier additionally surfaces per-tier statistics on
	// /v1/stats.
	Cache cachestore.CacheBackend
	// MaxInflight bounds concurrently running analysis requests;
	// <= 0 selects GOMAXPROCS.
	MaxInflight int
	// QueueDepth bounds requests waiting for an analysis slot; further
	// requests are rejected with 429 + Retry-After. 0 disables queueing
	// (reject as soon as every slot is busy).
	QueueDepth int
	// Timeout bounds each request's analysis work via its context;
	// <= 0 means no server-side timeout.
	Timeout time.Duration
	// MaxBody bounds the request body in bytes; <= 0 selects
	// DefaultMaxBody.
	MaxBody int64
	// Parallelism sets the process-wide intra-analysis worker count
	// (parallel.SetDefault) used by every analysis this server runs;
	// <= 0 keeps the current default (PARATIME_PARALLELISM or
	// GOMAXPROCS). Results are bit-identical at any value — this is
	// purely a throughput/latency trade against MaxInflight.
	Parallelism int
	// Analyze runs one validated scenario; nil selects spec.Run. It is
	// a seam for tests that need deterministic blocking or failure.
	Analyze func(ctx context.Context, s *spec.Scenario, eng *engine.Engine) (*spec.Report, error)
}

// Server is the analysis service. Create with New; serve its Handler
// with any http.Server, or use ListenAndServe for the
// graceful-shutdown-on-context wiring the CLI uses.
type Server struct {
	cfg   Config
	slots chan struct{}

	queued   atomic.Int64
	inflight atomic.Int64

	served      atomic.Uint64 // scenarios answered (cached or computed)
	cacheHits   atomic.Uint64 // scenarios served from the result cache
	cacheMisses atomic.Uint64 // scenarios that ran the analysis
	rejected    atomic.Uint64 // requests turned away by admission control
	failed      atomic.Uint64 // scenarios whose analysis errored

	// queueWait histograms each admitted request's admission latency
	// (fast-path slot grabs land in le_1).
	queueWait [len(queueWaitBounds) + 1]atomic.Uint64

	mux *http.ServeMux
}

// queueWaitBounds are the le_* bucket upper bounds of the admission-wait
// histogram, in milliseconds; waits beyond the last land in gt_1000.
var queueWaitBounds = [...]int64{1, 5, 10, 50, 100, 500, 1000}

// observeQueueWait records one admitted request's admission latency.
func (s *Server) observeQueueWait(d time.Duration) {
	ms := d.Milliseconds()
	for i, b := range queueWaitBounds {
		if ms <= b {
			s.queueWait[i].Add(1)
			return
		}
	}
	s.queueWait[len(queueWaitBounds)].Add(1)
}

// New returns a Server for the configuration.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		cfg.Engine = engine.New(0)
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.Analyze == nil {
		cfg.Analyze = spec.Run
	}
	if cfg.Parallelism > 0 {
		parallel.SetDefault(cfg.Parallelism)
	}
	s := &Server{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxInflight),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Event is one NDJSON line of an analyze response. Every scenario yields
// one Task event per task (in task order, as the scenario's results
// land) followed by exactly one terminal event carrying either the full
// Report or an Error. The stream for a given scenario is deterministic,
// which is what makes it cacheable byte-for-byte.
type Event struct {
	// Scenario and Fingerprint identify the scenario this line belongs
	// to (requests may carry an array of scenarios).
	Scenario    string `json:"scenario,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Task is one task's result (per-task event).
	Task *spec.TaskReport `json:"task,omitempty"`
	// Report is the complete structured report (terminal event).
	Report *spec.Report `json:"report,omitempty"`
	// Error reports an analysis failure (terminal event).
	Error string `json:"error,omitempty"`
}

// errorBody is the JSON body of every non-streaming error response.
type errorBody struct {
	Error string `json:"error"`
}

//paralint:canonical error bodies encode a one-field struct with a fixed json tag
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

// admit implements admission control: it returns a release function once
// an analysis slot is held, or an HTTP status when the request cannot be
// admitted (429 when slots and queue are full, 503 when the client went
// away while queued).
func (s *Server) admit(ctx context.Context) (func(), int) {
	start := time.Now()
	acquire := func() func() {
		s.observeQueueWait(time.Since(start))
		s.inflight.Add(1)
		return func() {
			s.inflight.Add(-1)
			<-s.slots
		}
	}
	select {
	case s.slots <- struct{}{}:
		return acquire(), 0
	default:
	}
	// Every slot is busy: wait in the bounded queue.
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		return nil, http.StatusTooManyRequests
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return acquire(), 0
	case <-ctx.Done():
		return nil, http.StatusServiceUnavailable
	}
}

// cacheKey ties a scenario fingerprint to the response stream format.
func cacheKey(fingerprint string) string {
	return fmt.Sprintf("resp%d|%s", respCacheVersion, fingerprint)
}

// unit is one scenario of a request, with its cache state resolved.
type unit struct {
	sc     *spec.Scenario
	fp     string
	cached []byte // complete NDJSON stream, nil on cache miss
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST a \"spec\":%d scenario (or array of scenarios) to this endpoint", spec.Version)
		return
	}
	body, err := readBody(w, r, s.cfg.MaxBody)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	// Strict decode + validation at the edge: nothing invalid reaches
	// the engine, and the error names the first problem.
	scs, err := spec.DecodeAll(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	release, status := s.admit(r.Context())
	if status != 0 {
		s.rejected.Add(1)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, "server at capacity (%d in flight, %d queued); retry later",
			s.cfg.MaxInflight, s.cfg.QueueDepth)
		return
	}
	defer release()

	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	// Resolve fingerprints and cache state up front so the cache verdict
	// can be reported as a header before the stream starts.
	units := make([]unit, len(scs))
	allHit := true
	for i, sc := range scs {
		fp, err := sc.Fingerprint()
		if err != nil { // unreachable after DecodeAll, but stay strict
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		units[i] = unit{sc: sc, fp: fp}
		if s.cfg.Cache != nil {
			if v, ok := s.cfg.Cache.Get(cacheKey(fp)); ok {
				if stream, isBytes := v.([]byte); isBytes {
					units[i].cached = stream
				}
			}
		}
		if units[i].cached == nil {
			allHit = false
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	if s.cfg.Cache != nil {
		verdict := "miss"
		if allHit {
			verdict = "hit"
		}
		w.Header().Set("X-Paratime-Cache", verdict)
	}
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	wrote := false
	for _, u := range units {
		if u.cached != nil {
			// Cache hit: replay the recorded stream byte-for-byte.
			if _, err := w.Write(u.cached); err != nil {
				return
			}
			s.cacheHits.Add(1)
			s.served.Add(1)
			wrote = true
			flush()
			continue
		}
		s.cacheMisses.Add(1)
		rep, err := s.cfg.Analyze(ctx, u.sc, s.cfg.Engine)
		if err != nil {
			s.failed.Add(1)
			s.writeAnalysisError(w, wrote, u, err)
			return
		}
		stream, err := encodeStream(u, rep)
		if err != nil {
			s.failed.Add(1)
			s.writeAnalysisError(w, wrote, u, err)
			return
		}
		if s.cfg.Cache != nil {
			s.cfg.Cache.Put(cacheKey(u.fp), stream)
		}
		if _, err := w.Write(stream); err != nil {
			return
		}
		s.served.Add(1)
		wrote = true
		flush()
	}
}

// encodeStream renders one scenario's complete NDJSON event stream: one
// Task event per task, then the terminal Report event. The bytes are
// deterministic for a given scenario, so they are cached whole and every
// repeat answer is byte-identical.
//
//paralint:canonical the NDJSON cache encoder: Event structs with fixed json tags, one canonical byte stream per scenario
func encodeStream(u unit, rep *spec.Report) ([]byte, error) {
	var out []byte
	emit := func(ev Event) error {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		out = append(out, line...)
		out = append(out, '\n')
		return nil
	}
	for i := range rep.Tasks {
		if err := emit(Event{Scenario: u.sc.Name, Fingerprint: u.fp, Task: &rep.Tasks[i]}); err != nil {
			return nil, err
		}
	}
	if err := emit(Event{Scenario: u.sc.Name, Fingerprint: u.fp, Report: rep}); err != nil {
		return nil, err
	}
	return out, nil
}

// writeAnalysisError reports a failed scenario: as a proper HTTP error
// when nothing has streamed yet, or as a terminal Error event once the
// NDJSON stream is underway (the status line is already on the wire).
//
//paralint:canonical terminal Error events use the same fixed-tag Event struct as the cached stream
func (s *Server) writeAnalysisError(w http.ResponseWriter, wrote bool, u unit, err error) {
	if !wrote {
		status := http.StatusUnprocessableEntity
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			// The client went away; nobody reads this status.
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "scenario %q: %v", u.sc.Name, err)
		return
	}
	line, merr := json.Marshal(Event{Scenario: u.sc.Name, Fingerprint: u.fp, Error: err.Error()})
	if merr != nil {
		return
	}
	_, _ = w.Write(append(line, '\n'))
}

func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, limit)
	defer rd.Close()
	return io.ReadAll(rd)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte("{\"status\":\"ok\"}\n"))
}

// StatsReply is the /v1/stats document.
type StatsReply struct {
	Requests struct {
		// Served counts scenarios answered (cache hits + computed).
		Served uint64 `json:"served"`
		// CacheHits/CacheMisses count scenarios served from / filled
		// into the result cache.
		CacheHits   uint64 `json:"cacheHits"`
		CacheMisses uint64 `json:"cacheMisses"`
		// Rejected counts requests turned away by admission control.
		Rejected uint64 `json:"rejected"`
		// Failed counts scenarios whose analysis errored.
		Failed uint64 `json:"failed"`
	} `json:"requests"`
	Queue struct {
		Inflight    int `json:"inflight"`
		Queued      int `json:"queued"`
		MaxInflight int `json:"maxInflight"`
		QueueDepth  int `json:"queueDepth"`
		// WaitMs histograms each admitted request's admission latency
		// (slot wait), in milliseconds.
		WaitMs QueueWaitReply `json:"queue_wait_ms"`
	} `json:"queue"`
	// Parallelism is the effective intra-analysis worker count applied
	// to every analysis this server runs.
	Parallelism int `json:"parallelism"`
	Engine      struct {
		// MemoHits/MemoMisses are the engine's Prepare-memo counters; a
		// warm-restart cache hit leaves both untouched. MemoReuse is the
		// derived reuse ratio hits/(hits+misses), 0 before any lookup.
		MemoHits   uint64  `json:"memoHits"`
		MemoMisses uint64  `json:"memoMisses"`
		MemoReuse  float64 `json:"memoReuse"`
	} `json:"engine"`
	// Cache reports the result cache (absent when caching is disabled);
	// Memory/Disk carry per-tier detail for a two-tier cache.
	Cache *CacheStatsReply `json:"cache,omitempty"`
}

// QueueWaitReply is the fixed-bucket admission-wait histogram of the
// /v1/stats document. Buckets are cumulative counts per latency range,
// not cumulative-over-bounds: each admitted request lands in exactly one.
type QueueWaitReply struct {
	Le1    uint64 `json:"le_1"`
	Le5    uint64 `json:"le_5"`
	Le10   uint64 `json:"le_10"`
	Le50   uint64 `json:"le_50"`
	Le100  uint64 `json:"le_100"`
	Le500  uint64 `json:"le_500"`
	Le1000 uint64 `json:"le_1000"`
	Gt1000 uint64 `json:"gt_1000"`
}

// CacheStatsReply reports the result cache, with optional per-tier
// breakdown for two-tier configurations.
type CacheStatsReply struct {
	cachestore.Stats
	Memory *cachestore.Stats `json:"memory,omitempty"`
	Disk   *cachestore.Stats `json:"disk,omitempty"`
}

// Stats snapshots the service counters (the /v1/stats document).
func (s *Server) Stats() StatsReply {
	var reply StatsReply
	reply.Requests.Served = s.served.Load()
	reply.Requests.CacheHits = s.cacheHits.Load()
	reply.Requests.CacheMisses = s.cacheMisses.Load()
	reply.Requests.Rejected = s.rejected.Load()
	reply.Requests.Failed = s.failed.Load()
	reply.Queue.Inflight = int(s.inflight.Load())
	reply.Queue.Queued = int(s.queued.Load())
	reply.Queue.MaxInflight = s.cfg.MaxInflight
	reply.Queue.QueueDepth = s.cfg.QueueDepth
	reply.Queue.WaitMs = QueueWaitReply{
		Le1:    s.queueWait[0].Load(),
		Le5:    s.queueWait[1].Load(),
		Le10:   s.queueWait[2].Load(),
		Le50:   s.queueWait[3].Load(),
		Le100:  s.queueWait[4].Load(),
		Le500:  s.queueWait[5].Load(),
		Le1000: s.queueWait[6].Load(),
		Gt1000: s.queueWait[7].Load(),
	}
	reply.Parallelism = parallel.Default()
	reply.Engine.MemoHits, reply.Engine.MemoMisses = s.cfg.Engine.Stats()
	reply.Engine.MemoReuse = s.cfg.Engine.ReuseRatio()
	if s.cfg.Cache != nil {
		cs := &CacheStatsReply{Stats: s.cfg.Cache.Stats()}
		if tt, ok := s.cfg.Cache.(*cachestore.TwoTier); ok {
			front, back := tt.Front().Stats(), tt.Back().Stats()
			cs.Memory, cs.Disk = &front, &back
		}
		reply.Cache = cs
	}
	return reply
}

//paralint:canonical stats replies encode fixed-tag structs; counters vary by load, the encoding does not
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}

// ListenAndServe serves the handler on addr until ctx is cancelled, then
// shuts down gracefully: the listener closes immediately, in-flight
// requests get defaultDrainTimeout to finish streaming, and the result
// cache is closed last. ready, when non-nil, is called with the bound
// address before serving (pass addr ":0" to let the OS pick a port).
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	hs := &http.Server{Handler: s.Handler()}
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		sdCtx, cancel := context.WithTimeout(context.Background(), defaultDrainTimeout)
		defer cancel()
		drained <- hs.Shutdown(sdCtx)
	}()
	err = hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		// Graceful path: wait for in-flight requests to drain.
		err = <-drained
	}
	if s.cfg.Cache != nil {
		if cerr := s.cfg.Cache.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
