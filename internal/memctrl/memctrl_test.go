package memctrl

import (
	"math/rand"
	"testing"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{Banks: 3, CAS: 1},
		{Banks: 4, CAS: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedPageConstantCompletion(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	// Spaced-out accesses (no precharge overlap) always take
	// Activate+CAS.
	var prev int64
	for i := 0; i < 20; i++ {
		start := prev + 100
		done := c.Access(uint32(i*64), start)
		if done-start != int64(cfg.Activate+cfg.CAS) {
			t.Errorf("closed-page latency = %d, want %d", done-start, cfg.Activate+cfg.CAS)
		}
		prev = done
	}
}

func TestOpenPageRowHitFaster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClosedPage = false
	c := New(cfg)
	first := c.Access(0x1000, 0)
	second := c.Access(0x1004, first) // same row, same bank
	if second-first != int64(cfg.CAS) {
		t.Errorf("row hit latency = %d, want CAS %d", second-first, cfg.CAS)
	}
	if c.RowHits != 1 {
		t.Errorf("row hits = %d", c.RowHits)
	}
	// A different row in the same bank pays the full conflict penalty.
	conflictAddr := uint32(0x1000 + (1<<cfg.RowBits)<<6) // same bank, different row
	third := c.Access(conflictAddr, second)
	if third-second != int64(cfg.Precharge+cfg.Activate+cfg.CAS) {
		t.Errorf("row conflict latency = %d, want %d", third-second, cfg.Precharge+cfg.Activate+cfg.CAS)
	}
}

func TestBoundHolds(t *testing.T) {
	for _, closed := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.ClosedPage = closed
		c := New(cfg)
		rng := rand.New(rand.NewSource(7))
		tnow := int64(0)
		for i := 0; i < 2000; i++ {
			tnow += int64(rng.Intn(5))
			addr := uint32(rng.Intn(1 << 16))
			done := c.Access(addr, tnow)
			if done-tnow > int64(cfg.Bound()) {
				t.Fatalf("closed=%v: access latency %d exceeds bound %d", closed, done-tnow, cfg.Bound())
			}
			tnow = done
		}
	}
}

func TestOpenBeatsClosedOnLocality(t *testing.T) {
	open := DefaultConfig()
	open.ClosedPage = false
	closed := DefaultConfig()
	co, cc := New(open), New(closed)
	var to, tc int64
	for i := 0; i < 100; i++ {
		addr := uint32(0x2000 + i*4) // sequential same-row traffic
		to = co.Access(addr, to)
		tc = cc.Access(addr, tc)
	}
	if to >= tc {
		t.Errorf("open page should win on locality: open %d vs closed %d", to, tc)
	}
	// But closed page has the better (constant) per-access behaviour for
	// analysis: its best and worst case coincide up to the precharge tail.
	if closed.Bound()-closed.BestCase() >= open.Bound()-open.BestCase() {
		t.Errorf("closed page should have narrower latency spread")
	}
}

func TestReset(t *testing.T) {
	c := New(DefaultConfig())
	c.Access(0, 0)
	c.Reset()
	if c.Accesses != 0 {
		t.Error("reset did not clear stats")
	}
}
