// Package memctrl models an analyzable main-memory controller in the
// spirit of Paolieri et al.'s AMC (§5.3, [24]): banked memory with
// row-buffer timing, where a closed-page policy trades average latency
// for a constant, workload-independent worst-case access time usable as
// the MemLatency bound of WCET analysis.
package memctrl

import "fmt"

// Config is the memory-device timing parameterization.
type Config struct {
	Banks int // power of two
	// RowBits selects the row: addresses sharing addr>>RowBits within a
	// bank share a row buffer.
	RowBits int
	// Timing components in cycles.
	CAS        int // column access on an open-row hit
	Activate   int // row activation (RAS)
	Precharge  int // close the open row
	ClosedPage bool
}

// DefaultConfig returns a small predictable device: 4 banks, closed page.
func DefaultConfig() Config {
	return Config{Banks: 4, RowBits: 10, CAS: 6, Activate: 8, Precharge: 6, ClosedPage: true}
}

// Validate checks geometry.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("memctrl: banks %d not a power of two", c.Banks)
	}
	if c.CAS <= 0 || c.Activate < 0 || c.Precharge < 0 {
		return fmt.Errorf("memctrl: non-positive timing")
	}
	return nil
}

// Bound returns the worst-case single-access latency, the constant the
// static analysis uses as MemLatency.
//
// Closed page: every access activates and reads, then precharges in the
// background — but the next access to the same bank may have to wait for
// that precharge, so the bound charges it. Open page: the worst case is a
// row conflict (precharge + activate + CAS).
func (c Config) Bound() int {
	return c.Precharge + c.Activate + c.CAS
}

// BestCase returns the minimum access latency (open-row hit under open
// page; fixed cost under closed page).
func (c Config) BestCase() int {
	if c.ClosedPage {
		return c.Activate + c.CAS
	}
	return c.CAS
}

// Controller is the cycle-level device. The simulator calls Access with
// monotonically non-decreasing start times (after bus arbitration).
type Controller struct {
	cfg     Config
	openRow []int64 // per bank; -1 = closed
	busy    []int64 // per bank: time the bank becomes free

	Accesses, RowHits uint64
}

// New returns a controller with all rows closed.
func New(cfg Config) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Controller{cfg: cfg, openRow: make([]int64, cfg.Banks), busy: make([]int64, cfg.Banks)}
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	return c
}

// Config returns the device parameterization.
func (c *Controller) Config() Config { return c.cfg }

// bankOf maps an address to its bank (low line-ish bits for spread).
func (c *Controller) bankOf(addr uint32) int {
	return int((addr >> 6) & uint32(c.cfg.Banks-1))
}

func (c *Controller) rowOf(addr uint32) int64 {
	return int64(addr >> uint(c.cfg.RowBits))
}

// Access performs one access starting no earlier than t and returns its
// completion time. The latency never exceeds t_start + Bound(), which the
// tests assert.
func (c *Controller) Access(addr uint32, t int64) int64 {
	c.Accesses++
	b := c.bankOf(addr)
	row := c.rowOf(addr)
	start := t
	if c.busy[b] > start {
		start = c.busy[b]
	}
	var done int64
	switch {
	case c.cfg.ClosedPage:
		// Activate + CAS, then precharge off the critical path; the bank
		// stays busy through the precharge.
		done = start + int64(c.cfg.Activate+c.cfg.CAS)
		c.busy[b] = done + int64(c.cfg.Precharge)
		c.openRow[b] = -1
	case c.openRow[b] == row:
		c.RowHits++
		done = start + int64(c.cfg.CAS)
		c.busy[b] = done
	case c.openRow[b] == -1:
		done = start + int64(c.cfg.Activate+c.cfg.CAS)
		c.busy[b] = done
		c.openRow[b] = row
	default:
		done = start + int64(c.cfg.Precharge+c.cfg.Activate+c.cfg.CAS)
		c.busy[b] = done
		c.openRow[b] = row
	}
	return done
}

// Reset closes all rows and clears statistics.
func (c *Controller) Reset() {
	for i := range c.openRow {
		c.openRow[i] = -1
		c.busy[i] = 0
	}
	c.Accesses, c.RowHits = 0, 0
}
