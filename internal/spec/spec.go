// Package spec defines Scenario API v1: a declarative, serializable
// description of one complete WCET-analysis request — a task set plus
// the resource-sharing regime it runs under — covering every family of
// approaches in Rochange's survey (§3–§5): joint shared-L2 analysis,
// partitioning and locking, bus arbitration (round robin, TDMA, MBBA),
// SMT with partitioned queues, and the PRET thread-interleaved pipeline.
//
// A Scenario round-trips losslessly through JSON (Encode/Decode), carries
// a schema version ("spec": 1), and is strictly validated at decode time:
// impossible configurations (a joint analysis without a shared L2, a TDMA
// slot shorter than the bus latency, more threads than an SMT core has)
// are rejected with actionable errors instead of failing mid-analysis.
// Run executes a validated Scenario against the toolkit's analysis and
// simulation machinery and returns a structured Report.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"paratime/internal/isa"
)

// Version is the schema version this package encodes and decodes.
const Version = 1

// Scenario is one complete, self-contained analysis request.
type Scenario struct {
	// Spec is the schema version; Encode writes Version and Decode
	// rejects anything else.
	Spec int `json:"spec"`
	// Name labels the scenario in reports and diagnostics.
	Name string `json:"name,omitempty"`
	// Tasks are the co-scheduled analysis subjects; order is core /
	// thread assignment order for modes that care (bus, smt, pret).
	Tasks []TaskSpec `json:"tasks"`
	// System is the analyzed core and memory hierarchy.
	System SystemSpec `json:"system"`
	// Mode selects the resource-sharing regime.
	Mode ModeSpec `json:"mode"`
	// Sim, when present, requests a cycle-accurate validation run
	// alongside the static analysis.
	Sim *SimSpec `json:"sim,omitempty"`
	// Explore, when present, requests bounded exhaustive exploration:
	// every declared input assignment and initial cache state is priced
	// in simulation, and the report gains exact_worst and tightness
	// (= exact_worst / static bound) per task, with a replayable
	// witness. Modes solo, joint, partition and bus only.
	Explore *ExploreSpec `json:"explore,omitempty"`
}

// TaskSpec describes one task: exactly one of Source (assembly text,
// assembled at decode time) or Program (a prebuilt image) must be set.
type TaskSpec struct {
	Name string `json:"name"`
	// Source is assembler text in the toolkit's syntax.
	Source string `json:"source,omitempty"`
	// Program is a prebuilt executable image.
	Program *ProgramSpec `json:"program,omitempty"`
	// Bounds annotates loop bounds by header label (needed wherever the
	// flow analysis cannot derive a bound).
	Bounds map[string]int `json:"bounds,omitempty"`
	// Bypass applies Hardy et al.'s single-usage L2 bypass to this task
	// before a joint analysis (mode "joint" only).
	Bypass bool `json:"bypass,omitempty"`
}

// ProgramSpec is a lossless image of an isa.Program. Opcodes are stored
// by mnemonic so the encoding survives opcode renumbering.
type ProgramSpec struct {
	Base       uint32            `json:"base"`
	Insts      []InstSpec        `json:"insts"`
	Labels     map[string]int    `json:"labels,omitempty"`
	Data       map[uint32]int32  `json:"data,omitempty"`
	DataLabels map[string]uint32 `json:"dataLabels,omitempty"`
}

// InstSpec is one instruction of a ProgramSpec.
type InstSpec struct {
	Op     string `json:"op"`
	Rd     uint8  `json:"rd,omitempty"`
	Rs1    uint8  `json:"rs1,omitempty"`
	Rs2    uint8  `json:"rs2,omitempty"`
	Imm    int32  `json:"imm,omitempty"`
	Target uint32 `json:"target,omitempty"`
}

// SystemSpec describes the analyzed core and memory hierarchy.
type SystemSpec struct {
	// Pipeline overrides the pipeline timing; nil selects the default.
	Pipeline *PipelineSpec `json:"pipeline,omitempty"`
	L1I      CacheSpec     `json:"l1i"`
	L1D      CacheSpec     `json:"l1d"`
	// L2 is the optional unified second level; required by the joint,
	// partition and lock modes.
	L2 *CacheSpec `json:"l2,omitempty"`
	// MemCtrl parameterizes the analyzable memory controller (the
	// simulation device and the source of the derived memory bound);
	// nil selects the default device.
	MemCtrl *MemCtrlSpec `json:"memCtrl,omitempty"`
	// MemLatency overrides the worst-case memory access bound; 0 derives
	// it from the memory controller (MemCtrl.Bound()).
	MemLatency int `json:"memLatency,omitempty"`
	// BusDelay is a fixed per-transaction arbitration bound applied to
	// every task. It must be 0 in mode "bus", which derives per-core
	// bounds from the arbiter instead.
	BusDelay int `json:"busDelay,omitempty"`
}

// CacheSpec mirrors one cache level's geometry and timing.
type CacheSpec struct {
	Sets        int `json:"sets"`
	Ways        int `json:"ways"`
	LineBytes   int `json:"lineBytes"`
	HitLatency  int `json:"hitLatency"`
	MissPenalty int `json:"missPenalty,omitempty"`
}

// PipelineSpec mirrors pipeline.Config: EX-stage latency per instruction
// class (by class name) and the taken-branch refetch penalty.
type PipelineSpec struct {
	ExLat         map[string]int `json:"exLat"`
	BranchPenalty int            `json:"branchPenalty"`
}

// MemCtrlSpec mirrors memctrl.Config.
type MemCtrlSpec struct {
	Banks      int  `json:"banks"`
	RowBits    int  `json:"rowBits"`
	CAS        int  `json:"cas"`
	Activate   int  `json:"activate"`
	Precharge  int  `json:"precharge"`
	ClosedPage bool `json:"closedPage"`
}

// Mode kinds.
const (
	KindSolo      = "solo"      // private caches, no contention (§2)
	KindJoint     = "joint"     // joint shared-L2 analysis (§4.1)
	KindPartition = "partition" // static L2 partitioning (§4.2)
	KindLock      = "lock"      // cache locking (§4.2)
	KindBus       = "bus"       // shared bus under an arbitration bound (§5.2–5.3)
	KindSMT       = "smt"       // partitioned-queue SMT, Barre et al. (§5.3)
	KindPRET      = "pret"      // thread-interleaved PRET pipeline (§5.3)
)

// ModeSpec is the tagged union selecting a sharing regime. Exactly the
// payload matching Kind may be set; validation rejects stray payloads so
// a typo'd scenario fails loudly instead of silently analyzing the wrong
// regime.
type ModeSpec struct {
	Kind string `json:"kind"`
	// Model selects the joint-analysis conflict semantics
	// ("directmapped" or "ageshift"); mode "joint" only.
	Model string `json:"model,omitempty"`
	// Lifetimes, when set (mode "joint"), enables Li et al.'s iterative
	// lifetime refinement; entry i describes task i.
	Lifetimes []LifetimeSpec `json:"lifetimes,omitempty"`
	Partition *PartitionSpec `json:"partition,omitempty"`
	Lock      *LockSpec      `json:"lock,omitempty"`
	Bus       *BusSpec       `json:"bus,omitempty"`
	SMT       *SMTSpec       `json:"smt,omitempty"`
	PRET      *PretSpec      `json:"pret,omitempty"`
}

// LifetimeSpec maps one task onto the schedule for lifetime refinement.
type LifetimeSpec struct {
	Core     int `json:"core"`
	Priority int `json:"priority"`
	// Deps lists task indices that must complete first.
	Deps []int `json:"deps,omitempty"`
}

// Partition schemes.
const (
	PartTask  = "task"  // per-task set partition (Suhendra & Mitra)
	PartCore  = "core"  // per-core set partition (Suhendra & Mitra)
	PartWays  = "ways"  // columnization (Paolieri et al.)
	PartBanks = "banks" // bankization (Paolieri et al.)
)

// PartitionSpec selects how the shared L2 is split into private views.
type PartitionSpec struct {
	Scheme string `json:"scheme"`
	// Cores is the core count for scheme "core".
	Cores int `json:"cores,omitempty"`
	// Assign maps task index to core for scheme "core" (informational;
	// the even split makes the mapping immaterial to the bound).
	Assign []int `json:"assign,omitempty"`
	// Ways is the private way count for scheme "ways".
	Ways int `json:"ways,omitempty"`
	// Banks of TotalBanks is the private share for scheme "banks".
	Banks      int `json:"banks,omitempty"`
	TotalBanks int `json:"totalBanks,omitempty"`
}

// Lock policies.
const (
	LockStatic  = "static"
	LockDynamic = "dynamic"
)

// LockSpec selects a cache-locking policy and capacity.
type LockSpec struct {
	Policy      string `json:"policy"`
	BudgetLines int    `json:"budgetLines"`
}

// Bus policies.
const (
	BusRoundRobin = "roundrobin"
	BusTDMA       = "tdma"
	BusMBBA       = "mbba"
)

// BusSpec describes the shared-bus arbitration regime. The per-core
// worst-case grant delay (the arbiter's Bound) becomes each task's
// BusDelay in the static analysis; Sim drives the same arbiter
// cycle-accurately.
type BusSpec struct {
	Policy string `json:"policy"`
	// Latency is the bus occupancy of one transaction; 0 derives the
	// full memory round trip (L2 hit latency + memory bound).
	Latency int `json:"latency,omitempty"`
	// Cores is the arbitration width for "roundrobin"; 0 uses the task
	// count.
	Cores int `json:"cores,omitempty"`
	// Slots is the TDMA slot table ("tdma" only).
	Slots []SlotSpec `json:"slots,omitempty"`
	// Weights are the per-core bandwidth shares ("mbba" only).
	Weights []int `json:"weights,omitempty"`
}

// SlotSpec is one TDMA table entry.
type SlotSpec struct {
	Owner int `json:"owner"`
	Len   int `json:"len"`
}

// SMTSpec parameterizes the partitioned-queue SMT core (Barre et al.).
type SMTSpec struct {
	Threads    int `json:"threads"`
	FULatency  int `json:"fuLatency"`
	MemLatency int `json:"memLatency"`
}

// PretSpec parameterizes the PRET thread-interleaved core.
type PretSpec struct {
	Threads     int `json:"threads"`
	WheelWindow int `json:"wheelWindow"`
	MemLatency  int `json:"memLatency"`
}

// ExploreSpec requests bounded exhaustive exploration. The explored
// state space is the cartesian product of all declared input-register
// value sets times the initial cache states; every state runs through
// the cycle-accurate simulator under the mode's co-run topology (the
// same topology the sim block validates against). All budgets are
// optional; zero selects the explorer's default.
type ExploreSpec struct {
	// MaxBranchDecisions caps input-dependent branch decisions per
	// trace (default 16, max 30).
	MaxBranchDecisions int `json:"maxBranchDecisions,omitempty"`
	// InitStates enumerates this many initial cache states: state 0 is
	// cold, states >= 1 deterministically pre-warm footprint lines
	// (default 1, max 64).
	InitStates int `json:"initStates,omitempty"`
	// MaxStates is the hard cap on priced states; hitting it marks the
	// exploration truncated (default 4096, max 1048576).
	MaxStates int `json:"maxStates,omitempty"`
	// MaxSteps caps architectural steps per trace (default 1000000).
	MaxSteps int64 `json:"maxSteps,omitempty"`
	// Inputs declare the enumerated input registers; empty explores
	// initial cache states only.
	Inputs []InputSpec `json:"inputs,omitempty"`
}

// InputSpec declares one input register of one task and its finite
// value domain.
type InputSpec struct {
	// Task names the owning task (must match a tasks[] entry).
	Task string `json:"task"`
	// Reg is the register name ("r1".."r13", "sp", "ra"); r0 is
	// hardwired and not assignable.
	Reg string `json:"reg"`
	// Values is the enumerated domain (1..16 values).
	Values []int32 `json:"values"`
}

// Explore bounds enforced by Validate.
const (
	maxExploreBranchDecisions = 30
	maxExploreInitStates      = 64
	maxExploreStates          = 1 << 20
	maxExploreSteps           = 100_000_000
	maxExploreValues          = 16
)

// RegByName parses an architectural register name as InputSpec.Reg
// uses it ("r0".."r13", "sp", "ra").
func RegByName(name string) (isa.Reg, bool) {
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if r.String() == name {
			return r, true
		}
	}
	return 0, false
}

// validateExplore checks the explore block: a mode the explorer can
// drive, budgets within bounds, and inputs naming real tasks and
// assignable registers.
func (s *Scenario) validateExplore() error {
	e := s.Explore
	if e == nil {
		return nil
	}
	switch s.Mode.Kind {
	case KindSolo, KindJoint, KindPartition, KindBus:
	default:
		return fmt.Errorf("spec: explore is not supported in mode %q (supported: %q, %q, %q, %q)",
			s.Mode.Kind, KindSolo, KindJoint, KindPartition, KindBus)
	}
	if e.MaxBranchDecisions < 0 || e.MaxBranchDecisions > maxExploreBranchDecisions {
		return fmt.Errorf("spec: explore maxBranchDecisions %d outside [0,%d]", e.MaxBranchDecisions, maxExploreBranchDecisions)
	}
	if e.InitStates < 0 || e.InitStates > maxExploreInitStates {
		return fmt.Errorf("spec: explore initStates %d outside [0,%d]", e.InitStates, maxExploreInitStates)
	}
	if e.MaxStates < 0 || e.MaxStates > maxExploreStates {
		return fmt.Errorf("spec: explore maxStates %d outside [0,%d]", e.MaxStates, maxExploreStates)
	}
	if e.MaxSteps < 0 || e.MaxSteps > maxExploreSteps {
		return fmt.Errorf("spec: explore maxSteps %d outside [0,%d]", e.MaxSteps, maxExploreSteps)
	}
	taskNames := map[string]bool{}
	for _, t := range s.Tasks {
		taskNames[t.Name] = true
	}
	seen := map[string]bool{}
	for i, in := range e.Inputs {
		if !taskNames[in.Task] {
			return fmt.Errorf("spec: explore inputs[%d] names unknown task %q", i, in.Task)
		}
		r, ok := RegByName(in.Reg)
		if !ok {
			return fmt.Errorf("spec: explore inputs[%d] names unknown register %q (use \"r1\"..\"r13\", \"sp\" or \"ra\")", i, in.Reg)
		}
		if r == 0 {
			return fmt.Errorf("spec: explore inputs[%d] targets r0, which is hardwired to zero", i)
		}
		if len(in.Values) == 0 || len(in.Values) > maxExploreValues {
			return fmt.Errorf("spec: explore inputs[%d] needs 1..%d values, has %d", i, maxExploreValues, len(in.Values))
		}
		key := in.Task + "\x00" + in.Reg
		if seen[key] {
			return fmt.Errorf("spec: explore inputs[%d] duplicates %s.%s", i, in.Task, in.Reg)
		}
		seen[key] = true
	}
	return nil
}

// SimSpec requests cycle-accurate validation. Topology follows the mode:
// solo simulates each task alone; bus co-runs all tasks on the shared
// bus with private L2s; joint co-runs them on a shared L2 over private,
// uncontended memory paths (a fixed system BusDelay is a bound in the
// analysis, not a simulated device); partition co-runs the tasks with
// each core restricted to a private view of its L2 partition (the
// isolation the analysis assumes); smt and pret drive their dedicated
// core models. MaxCycles bounds each simulation (0 selects a default);
// for smt and pret it bounds instruction steps instead. Lock mode does
// not simulate (the simulator has no lockable cache).
type SimSpec struct {
	MaxCycles int64 `json:"maxCycles,omitempty"`
}

// Encode validates the scenario and renders it as indented JSON. The
// encoding is canonical: Decode(Encode(s)) reproduces s exactly.
//
//paralint:canonical the scenario wire format; round-trip pinned by the spec tests
func (s *Scenario) Encode() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Decode parses one scenario from JSON, rejecting unknown fields,
// trailing data, schema versions other than Version, and invalid
// configurations.
func Decode(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: decode: %w", err)
	}
	if err := rejectTrailing(dec); err != nil {
		return nil, fmt.Errorf("%w (multiple scenarios must be wrapped in a JSON array)", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// rejectTrailing errors unless the decoder has consumed its whole
// input: anything after the first JSON value — well-formed or not — is
// trailing data.
func rejectTrailing(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("spec: trailing data after JSON value")
	}
	return nil
}

// DecodeAll parses either a single scenario object or a JSON array of
// scenarios (the format `paratime export` writes).
func DecodeAll(data []byte) ([]*Scenario, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("spec: empty input")
	}
	if trimmed[0] != '[' {
		s, err := Decode(data)
		if err != nil {
			return nil, err
		}
		return []*Scenario{s}, nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var list []*Scenario
	if err := dec.Decode(&list); err != nil {
		return nil, fmt.Errorf("spec: decode scenario array: %w", err)
	}
	if err := rejectTrailing(dec); err != nil {
		return nil, err
	}
	for i, s := range list {
		if s == nil {
			return nil, fmt.Errorf("spec: scenario %d is null", i)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", i, s.Name, err)
		}
	}
	return list, nil
}

// EncodeAll renders scenarios as one JSON array (the `paratime export`
// format), validating each.
//
//paralint:canonical the export wire format: a JSON array of canonical scenario encodings
func EncodeAll(list []*Scenario) ([]byte, error) {
	for i, s := range list {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", i, s.Name, err)
		}
	}
	out, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Validate checks the scenario for structural and semantic validity,
// returning an actionable error for the first problem found. It is
// called by Encode, Decode and Run; a Scenario assembled in Go code can
// call it directly.
func (s *Scenario) Validate() error {
	if s.Spec != Version {
		return fmt.Errorf("spec: unsupported schema version %d (this build supports \"spec\": %d)", s.Spec, Version)
	}
	if len(s.Tasks) == 0 {
		return fmt.Errorf("spec: scenario %q has no tasks", s.Name)
	}
	seen := map[string]bool{}
	for i, t := range s.Tasks {
		if t.Name == "" {
			return fmt.Errorf("spec: task %d has no name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("spec: duplicate task name %q", t.Name)
		}
		seen[t.Name] = true
		if (t.Source == "") == (t.Program == nil) {
			return fmt.Errorf("spec: task %q must set exactly one of source or program", t.Name)
		}
		if t.Bypass && s.Mode.Kind != KindJoint {
			return fmt.Errorf("spec: task %q sets bypass, which only applies in mode %q (mode is %q)",
				t.Name, KindJoint, s.Mode.Kind)
		}
		// Sorted labels keep the first-error choice deterministic.
		for _, label := range sortedKeys(t.Bounds) {
			if n := t.Bounds[label]; n <= 0 {
				return fmt.Errorf("spec: task %q: loop bound %q = %d must be positive", t.Name, label, n)
			}
		}
		if t.Program != nil {
			if len(t.Program.Insts) == 0 {
				return fmt.Errorf("spec: task %q: program has no instructions", t.Name)
			}
			for j, in := range t.Program.Insts {
				if _, ok := opByName(in.Op); !ok {
					return fmt.Errorf("spec: task %q: instruction %d has unknown opcode %q", t.Name, j, in.Op)
				}
			}
		}
	}
	if err := s.System.validate(); err != nil {
		return err
	}
	if err := s.validateMode(); err != nil {
		return err
	}
	if err := s.validateSim(); err != nil {
		return err
	}
	return s.validateExplore()
}

func (c CacheSpec) validate(name string) error {
	if c.Sets <= 0 || c.Ways <= 0 || c.LineBytes <= 0 || c.HitLatency <= 0 {
		return fmt.Errorf("spec: %s geometry %+v needs positive sets, ways, lineBytes and hitLatency", name, c)
	}
	if c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("spec: %s has %d sets; set counts must be powers of two", name, c.Sets)
	}
	return nil
}

func (sys SystemSpec) validate() error {
	if err := sys.L1I.validate("l1i"); err != nil {
		return err
	}
	if err := sys.L1D.validate("l1d"); err != nil {
		return err
	}
	if sys.L2 != nil {
		if err := sys.L2.validate("l2"); err != nil {
			return err
		}
	}
	if sys.MemLatency < 0 || sys.BusDelay < 0 {
		return fmt.Errorf("spec: negative memLatency or busDelay")
	}
	if sys.MemCtrl != nil {
		if err := sys.MemCtrl.toConfig().Validate(); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	if sys.Pipeline != nil {
		if sys.Pipeline.BranchPenalty < 0 {
			return fmt.Errorf("spec: negative branchPenalty")
		}
		// Sorted names keep the first-error choice deterministic.
		for _, cls := range sortedKeys(sys.Pipeline.ExLat) {
			lat := sys.Pipeline.ExLat[cls]
			if _, ok := classByName(cls); !ok {
				return fmt.Errorf("spec: pipeline exLat names unknown instruction class %q (known: %s)",
					cls, knownClassNames())
			}
			if lat < 1 {
				return fmt.Errorf("spec: pipeline exLat[%q] = %d must be >= 1", cls, lat)
			}
		}
	}
	return nil
}

// validateMode checks the mode payload: the right payload present and
// well-formed, all foreign payloads absent.
func (s *Scenario) validateMode() error {
	m := s.Mode
	type payload struct {
		name string
		set  bool
	}
	payloads := []payload{
		{"model", m.Model != ""},
		{"lifetimes", len(m.Lifetimes) > 0},
		{"partition", m.Partition != nil},
		{"lock", m.Lock != nil},
		{"bus", m.Bus != nil},
		{"smt", m.SMT != nil},
		{"pret", m.PRET != nil},
	}
	allowed := map[string][]string{
		KindSolo:      {},
		KindJoint:     {"model", "lifetimes"},
		KindPartition: {"partition"},
		KindLock:      {"lock"},
		KindBus:       {"bus"},
		KindSMT:       {"smt"},
		KindPRET:      {"pret"},
	}
	ok, known := allowed[m.Kind]
	if !known {
		kinds := make([]string, 0, len(allowed))
		for k := range allowed {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		return fmt.Errorf("spec: unknown mode kind %q (known: %v)", m.Kind, kinds)
	}
	for _, p := range payloads {
		if !p.set {
			continue
		}
		legal := false
		for _, a := range ok {
			if a == p.name {
				legal = true
			}
		}
		if !legal {
			return fmt.Errorf("spec: mode %q does not take a %q payload", m.Kind, p.name)
		}
	}

	needsL2 := m.Kind == KindJoint || m.Kind == KindPartition || m.Kind == KindLock
	if needsL2 && s.System.L2 == nil {
		return fmt.Errorf("spec: mode %q needs a shared L2; add system.l2", m.Kind)
	}
	if m.Kind == KindBus && s.System.BusDelay != 0 {
		return fmt.Errorf("spec: mode %q derives per-core bus bounds from the arbiter; remove system.busDelay", m.Kind)
	}

	switch m.Kind {
	case KindJoint:
		if m.Model != "" && m.Model != ModelDirectMapped && m.Model != ModelAgeShift {
			return fmt.Errorf("spec: unknown conflict model %q (known: %q, %q)", m.Model, ModelDirectMapped, ModelAgeShift)
		}
		if n := len(m.Lifetimes); n > 0 && n != len(s.Tasks) {
			return fmt.Errorf("spec: %d lifetime entries for %d tasks; provide one per task", n, len(s.Tasks))
		}
		for i, l := range m.Lifetimes {
			for _, d := range l.Deps {
				if d < 0 || d >= len(s.Tasks) {
					return fmt.Errorf("spec: lifetimes[%d] depends on task %d, outside [0,%d)", i, d, len(s.Tasks))
				}
				if d == i {
					return fmt.Errorf("spec: lifetimes[%d] depends on itself", i)
				}
			}
		}
	case KindPartition:
		p := m.Partition
		if p == nil {
			return fmt.Errorf("spec: mode %q needs a partition payload", m.Kind)
		}
		switch p.Scheme {
		case PartTask:
		case PartCore:
			if p.Cores <= 0 {
				return fmt.Errorf("spec: partition scheme %q needs cores > 0", PartCore)
			}
			if len(p.Assign) > 0 && len(p.Assign) != len(s.Tasks) {
				return fmt.Errorf("spec: partition assign has %d entries for %d tasks", len(p.Assign), len(s.Tasks))
			}
			for i, c := range p.Assign {
				if c < 0 || c >= p.Cores {
					return fmt.Errorf("spec: partition assign[%d] = %d, outside [0,%d)", i, c, p.Cores)
				}
			}
		case PartWays:
			if p.Ways < 1 || p.Ways > s.System.L2.Ways {
				return fmt.Errorf("spec: partition ways %d outside [1,%d] (the L2's associativity)", p.Ways, s.System.L2.Ways)
			}
		case PartBanks:
			if p.TotalBanks <= 0 || p.Banks < 1 || p.Banks > p.TotalBanks {
				return fmt.Errorf("spec: partition banks %d of %d is not a valid share", p.Banks, p.TotalBanks)
			}
		default:
			return fmt.Errorf("spec: unknown partition scheme %q (known: %q, %q, %q, %q)",
				p.Scheme, PartTask, PartCore, PartWays, PartBanks)
		}
	case KindLock:
		l := m.Lock
		if l == nil {
			return fmt.Errorf("spec: mode %q needs a lock payload", m.Kind)
		}
		if l.Policy != LockStatic && l.Policy != LockDynamic {
			return fmt.Errorf("spec: unknown lock policy %q (known: %q, %q)", l.Policy, LockStatic, LockDynamic)
		}
		if l.BudgetLines <= 0 {
			return fmt.Errorf("spec: lock budgetLines %d must be positive", l.BudgetLines)
		}
	case KindBus:
		b := m.Bus
		if b == nil {
			return fmt.Errorf("spec: mode %q needs a bus payload", m.Kind)
		}
		if b.Latency < 0 {
			return fmt.Errorf("spec: negative bus latency")
		}
		switch b.Policy {
		case BusRoundRobin:
			if len(b.Slots) > 0 || len(b.Weights) > 0 {
				return fmt.Errorf("spec: bus policy %q takes neither slots nor weights", b.Policy)
			}
			if b.Cores != 0 && b.Cores < len(s.Tasks) {
				return fmt.Errorf("spec: bus cores %d below task count %d", b.Cores, len(s.Tasks))
			}
		case BusTDMA:
			if len(b.Slots) == 0 {
				return fmt.Errorf("spec: bus policy %q needs a slot table", b.Policy)
			}
			lat := s.effectiveBusLatency()
			owners := map[int]bool{}
			for i, sl := range b.Slots {
				if sl.Len < lat {
					return fmt.Errorf("spec: tdma slot %d (len %d) cannot fit one %d-cycle transaction; lengthen the slot or lower bus.latency",
						i, sl.Len, lat)
				}
				owners[sl.Owner] = true
			}
			for core := range s.Tasks {
				if !owners[core] {
					return fmt.Errorf("spec: tdma table has no slot for core %d (task %q); every task's core needs a slot",
						core, s.Tasks[core].Name)
				}
			}
		case BusMBBA:
			if len(b.Weights) < len(s.Tasks) {
				return fmt.Errorf("spec: bus policy %q needs one weight per task (%d weights for %d tasks)",
					b.Policy, len(b.Weights), len(s.Tasks))
			}
			for i, w := range b.Weights {
				if w <= 0 {
					return fmt.Errorf("spec: bus weight[%d] = %d must be positive", i, w)
				}
			}
		default:
			return fmt.Errorf("spec: unknown bus policy %q (known: %q, %q, %q)",
				b.Policy, BusRoundRobin, BusTDMA, BusMBBA)
		}
	case KindSMT:
		c := m.SMT
		if c == nil {
			return fmt.Errorf("spec: mode %q needs an smt payload", m.Kind)
		}
		if c.Threads <= 0 || c.FULatency <= 0 || c.MemLatency <= 0 {
			return fmt.Errorf("spec: smt config %+v needs positive threads, fuLatency and memLatency", *c)
		}
		if len(s.Tasks) > c.Threads {
			return fmt.Errorf("spec: %d tasks on an smt core with %d hardware threads", len(s.Tasks), c.Threads)
		}
	case KindPRET:
		c := m.PRET
		if c == nil {
			return fmt.Errorf("spec: mode %q needs a pret payload", m.Kind)
		}
		if c.Threads <= 0 || c.MemLatency <= 0 || c.WheelWindow < c.MemLatency {
			return fmt.Errorf("spec: pret config %+v needs positive threads and memLatency, and wheelWindow >= memLatency", *c)
		}
		if len(s.Tasks) > c.Threads {
			return fmt.Errorf("spec: %d tasks on a pret core with %d hardware threads", len(s.Tasks), c.Threads)
		}
	}
	return nil
}

// validateSim rejects simulation requests the runner does not implement
// for the selected mode, so a scenario either runs fully or fails at
// decode time.
func (s *Scenario) validateSim() error {
	if s.Sim == nil {
		return nil
	}
	if s.Sim.MaxCycles < 0 {
		return fmt.Errorf("spec: negative sim maxCycles")
	}
	switch s.Mode.Kind {
	case KindSolo, KindJoint, KindPartition, KindBus, KindSMT, KindPRET:
		return nil
	default:
		return fmt.Errorf("spec: sim validation is not supported in mode %q; remove the sim block", s.Mode.Kind)
	}
}

// Conflict model names.
const (
	ModelDirectMapped = "directmapped"
	ModelAgeShift     = "ageshift"
)

// effectiveBusLatency mirrors the runner's derivation of the bus
// occupancy per transaction: the explicit bus.latency, or the full
// memory round trip (L2 hit latency + worst-case memory access).
func (s *Scenario) effectiveBusLatency() int {
	b := s.Mode.Bus
	if b != nil && b.Latency > 0 {
		return b.Latency
	}
	lat := s.System.MemConfig().Bound()
	if s.System.L2 != nil {
		lat += s.System.L2.HitLatency
	}
	return lat
}

// String renders a one-line human-readable summary (the text side of the
// encoding; JSON is the lossless side). It is total: an unvalidated
// scenario with a missing mode payload prints just the kind instead of
// panicking, since String is exactly what diagnostics call on invalid
// values.
func (s *Scenario) String() string {
	mode := s.Mode.Kind
	switch s.Mode.Kind {
	case KindJoint:
		model := s.Mode.Model
		if model == "" {
			model = ModelAgeShift
		}
		mode += "/" + model
		if len(s.Mode.Lifetimes) > 0 {
			mode += "+lifetimes"
		}
	case KindPartition:
		if s.Mode.Partition != nil {
			mode += "/" + s.Mode.Partition.Scheme
		}
	case KindLock:
		if s.Mode.Lock != nil {
			mode += "/" + s.Mode.Lock.Policy
		}
	case KindBus:
		if s.Mode.Bus != nil {
			mode += "/" + s.Mode.Bus.Policy
		}
	}
	sim := ""
	if s.Sim != nil {
		sim = " +sim"
	}
	if s.Explore != nil {
		sim += " +explore"
	}
	return fmt.Sprintf("scenario %q: %d task(s), mode %s%s", s.Name, len(s.Tasks), mode, sim)
}

// sortedKeys returns a map's string keys in sorted order, so validation
// loops pick the same first error on every run regardless of Go's map
// iteration order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
