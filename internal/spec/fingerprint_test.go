package spec

import (
	"strings"
	"testing"
)

// fpBaseJSON is the reference scenario for the fingerprint contract
// tests, written with a deliberate key order that the reordered variant
// permutes.
const fpBaseJSON = `{
  "spec": 1,
  "name": "fp-base",
  "tasks": [
    {
      "name": "countdown",
      "source": "        li   r1, 10\nloop:   addi r1, r1, -1\n        bne  r1, r0, loop\n        halt",
      "bounds": {"loop": 10}
    }
  ],
  "system": {
    "l1i": {"sets": 16, "ways": 2, "lineBytes": 16, "hitLatency": 1, "missPenalty": 4},
    "l1d": {"sets": 16, "ways": 2, "lineBytes": 16, "hitLatency": 1, "missPenalty": 4},
    "l2": {"sets": 32, "ways": 4, "lineBytes": 32, "hitLatency": 4, "missPenalty": 20}
  },
  "mode": {"kind": "solo"}
}`

// fpReorderedJSON is the same scenario with every object's keys
// permuted (and different whitespace); it must decode to the same
// fingerprint.
const fpReorderedJSON = `{
	"mode": {"kind": "solo"},
	"system": {
		"l2": {"missPenalty": 20, "hitLatency": 4, "lineBytes": 32, "ways": 4, "sets": 32},
		"l1d": {"hitLatency": 1, "missPenalty": 4, "sets": 16, "lineBytes": 16, "ways": 2},
		"l1i": {"ways": 2, "sets": 16, "hitLatency": 1, "lineBytes": 16, "missPenalty": 4}
	},
	"tasks": [
		{
			"bounds": {"loop": 10},
			"source": "        li   r1, 10\nloop:   addi r1, r1, -1\n        bne  r1, r0, loop\n        halt",
			"name": "countdown"
		}
	],
	"name": "fp-base",
	"spec": 1
}`

func mustFingerprint(t *testing.T, data string) string {
	t.Helper()
	s, err := Decode([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestFingerprintInvariantUnderKeyReordering: the cache key must depend
// on scenario content, not on how the JSON document happened to be laid
// out.
func TestFingerprintInvariantUnderKeyReordering(t *testing.T) {
	base := mustFingerprint(t, fpBaseJSON)
	if !strings.HasPrefix(base, "spec1-") {
		t.Errorf("fingerprint %q lacks the schema-version prefix", base)
	}
	if got := mustFingerprint(t, fpReorderedJSON); got != base {
		t.Errorf("reordered JSON fingerprint %q != base %q", got, base)
	}
	// Stability across an encode/decode round trip (the export format).
	s, err := Decode([]byte(fpBaseJSON))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got := mustFingerprint(t, string(out)); got != base {
		t.Errorf("round-tripped fingerprint %q != base %q", got, base)
	}
}

// TestFingerprintChangesWithSemantics: every semantic edit must move the
// fingerprint, and distinct edits must not collide with each other.
func TestFingerprintChangesWithSemantics(t *testing.T) {
	base := mustFingerprint(t, fpBaseJSON)
	mutations := map[string]func(*Scenario){
		"name":        func(s *Scenario) { s.Name = "fp-other" },
		"task name":   func(s *Scenario) { s.Tasks[0].Name = "countup" },
		"task source": func(s *Scenario) { s.Tasks[0].Source = strings.Replace(s.Tasks[0].Source, "10", "11", 1) },
		"loop bound":  func(s *Scenario) { s.Tasks[0].Bounds["loop"] = 11 },
		"l1i sets":    func(s *Scenario) { s.System.L1I.Sets = 32 },
		"l2 ways":     func(s *Scenario) { s.System.L2.Ways = 8 },
		"drop l2":     func(s *Scenario) { s.System.L2 = nil },
		"mem latency": func(s *Scenario) { s.System.MemLatency = 77 },
		"bus delay":   func(s *Scenario) { s.System.BusDelay = 5 },
		"mode kind": func(s *Scenario) {
			s.Mode = ModeSpec{Kind: KindLock, Lock: &LockSpec{Policy: LockStatic, BudgetLines: 4}}
		},
		"add sim":     func(s *Scenario) { s.Sim = &SimSpec{MaxCycles: 1000} },
		"add explore": func(s *Scenario) { s.Explore = &ExploreSpec{InitStates: 2} },
		"second task": func(s *Scenario) { s.Tasks = append(s.Tasks, s.Tasks[0]); s.Tasks[1].Name = "twin" },
		"pipeline exLat": func(s *Scenario) {
			s.System.Pipeline = &PipelineSpec{ExLat: map[string]int{"alu": 2}, BranchPenalty: 1}
		},
	}
	seen := map[string]string{base: "base"}
	for label, mutate := range mutations {
		s, err := Decode([]byte(fpBaseJSON))
		if err != nil {
			t.Fatal(err)
		}
		mutate(s)
		fp, err := s.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutation %q collides with %q (fingerprint %s)", label, prev, fp)
			continue
		}
		seen[fp] = label
	}
}

// TestFingerprintRejectsInvalid: invalid scenarios have no fingerprint —
// a cache must never be keyed by something that cannot run.
func TestFingerprintRejectsInvalid(t *testing.T) {
	s := &Scenario{Spec: Version} // no tasks
	if fp, err := s.Fingerprint(); err == nil {
		t.Errorf("invalid scenario fingerprinted as %q", fp)
	}
	s2 := &Scenario{Spec: 99}
	if _, err := s2.Fingerprint(); err == nil {
		t.Error("wrong schema version fingerprinted")
	}
}
