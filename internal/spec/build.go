package spec

import (
	"fmt"
	"maps"
	"reflect"
	"slices"

	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/flow"
	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/pipeline"
)

// classNames fixes the serialized name of every pipeline instruction
// class. The names match isa.Class.String but are pinned here so the
// wire format cannot drift with diagnostics output.
var classNames = map[string]isa.Class{
	"nop": isa.ClassNop, "alu": isa.ClassALU, "mul": isa.ClassMul,
	"div": isa.ClassDiv, "load": isa.ClassLoad, "store": isa.ClassStore,
	"branch": isa.ClassBranch, "jump": isa.ClassJump, "halt": isa.ClassHalt,
}

func classByName(name string) (isa.Class, bool) {
	c, ok := classNames[name]
	return c, ok
}

func knownClassNames() string {
	return "nop alu mul div load store branch jump halt"
}

func opByName(name string) (isa.Op, bool) { return isa.OpByName(name) }

// DefaultSystemSpec returns the canonical default system (the spec-side
// twin of core.DefaultSystem): private L1s, a shared 4 KiB L2, and the
// default analyzable memory controller.
func DefaultSystemSpec() SystemSpec {
	return SystemToSpec(core.DefaultSystem(), memctrl.DefaultConfig())
}

// --- spec -> runnable --------------------------------------------------------

// BuildTask materializes one task: assembles Source or reconstructs the
// prebuilt Program, and turns Bounds into flow annotations.
func (t *TaskSpec) BuildTask() (core.Task, error) {
	var prog *isa.Program
	var err error
	switch {
	case t.Source != "":
		prog, err = isa.Assemble(t.Name, t.Source)
		if err != nil {
			return core.Task{}, fmt.Errorf("spec: task %q: %w", t.Name, err)
		}
	default:
		prog, err = t.Program.buildProgram(t.Name)
		if err != nil {
			return core.Task{}, err
		}
	}
	var facts *flow.Facts
	if len(t.Bounds) > 0 {
		facts = flow.NewFacts()
		//paralint:unordered Facts stores bounds in a map keyed by label; insertion order is invisible
		for label, n := range t.Bounds {
			facts.Bound(label, n)
		}
	}
	return core.Task{Name: t.Name, Prog: prog, Facts: facts}, nil
}

func (p *ProgramSpec) buildProgram(name string) (*isa.Program, error) {
	prog := &isa.Program{
		Name:  name,
		Base:  p.Base,
		Insts: make([]isa.Inst, len(p.Insts)),
	}
	for i, in := range p.Insts {
		op, ok := isa.OpByName(in.Op)
		if !ok {
			return nil, fmt.Errorf("spec: task %q: instruction %d has unknown opcode %q", name, i, in.Op)
		}
		prog.Insts[i] = isa.Inst{
			Op: op, Rd: isa.Reg(in.Rd), Rs1: isa.Reg(in.Rs1), Rs2: isa.Reg(in.Rs2),
			Imm: in.Imm, Target: in.Target,
		}
	}
	if len(p.Labels) > 0 {
		prog.Labels = maps.Clone(p.Labels)
	}
	if len(p.Data) > 0 {
		prog.Data = maps.Clone(p.Data)
	}
	if len(p.DataLabels) > 0 {
		prog.DataLabels = maps.Clone(p.DataLabels)
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("spec: task %q: %w", name, err)
	}
	return prog, nil
}

func (c CacheSpec) toConfig(name string) cache.Config {
	return cache.Config{
		Name: name, Sets: c.Sets, Ways: c.Ways, LineBytes: c.LineBytes,
		HitLatency: c.HitLatency, MissPenalty: c.MissPenalty,
	}
}

func (m *MemCtrlSpec) toConfig() memctrl.Config {
	return memctrl.Config{
		Banks: m.Banks, RowBits: m.RowBits, CAS: m.CAS,
		Activate: m.Activate, Precharge: m.Precharge, ClosedPage: m.ClosedPage,
	}
}

// MemConfig returns the scenario's memory-controller device (the default
// when unspecified).
func (sys SystemSpec) MemConfig() memctrl.Config {
	if sys.MemCtrl == nil {
		return memctrl.DefaultConfig()
	}
	return sys.MemCtrl.toConfig()
}

// BuildSystem materializes the full single-core analysis configuration:
// caches, pipeline, fixed bus delay, and the effective memory bound
// (explicit MemLatency, or the controller's worst-case access bound).
func (sys SystemSpec) BuildSystem() (core.SystemConfig, error) {
	out := core.SystemConfig{Pipeline: pipeline.DefaultConfig()}
	if sys.Pipeline != nil {
		pc := pipeline.Config{
			ExLat:         map[isa.Class]int{},
			BranchPenalty: sys.Pipeline.BranchPenalty,
		}
		// Sorted names keep the first-error choice deterministic.
		for _, name := range slices.Sorted(maps.Keys(sys.Pipeline.ExLat)) {
			cls, ok := classByName(name)
			if !ok {
				return core.SystemConfig{}, fmt.Errorf("spec: unknown instruction class %q", name)
			}
			pc.ExLat[cls] = sys.Pipeline.ExLat[name]
		}
		out.Pipeline = pc
	}
	out.Mem.L1I = sys.L1I.toConfig("L1I")
	out.Mem.L1D = sys.L1D.toConfig("L1D")
	if sys.L2 != nil {
		l2 := sys.L2.toConfig("L2")
		out.Mem.L2 = &l2
	}
	out.Mem.BusDelay = sys.BusDelay
	out.Mem.MemLatency = sys.MemLatency
	if out.Mem.MemLatency == 0 {
		out.Mem.MemLatency = sys.MemConfig().Bound()
	}
	return out, nil
}

// --- runnable -> spec --------------------------------------------------------

// ProgramToSpec externalizes a program image losslessly.
func ProgramToSpec(p *isa.Program) *ProgramSpec {
	out := &ProgramSpec{Base: p.Base, Insts: make([]InstSpec, len(p.Insts))}
	for i, in := range p.Insts {
		out.Insts[i] = InstSpec{
			Op: in.Op.String(), Rd: uint8(in.Rd), Rs1: uint8(in.Rs1), Rs2: uint8(in.Rs2),
			Imm: in.Imm, Target: in.Target,
		}
	}
	if len(p.Labels) > 0 {
		out.Labels = maps.Clone(p.Labels)
	}
	if len(p.Data) > 0 {
		out.Data = maps.Clone(p.Data)
	}
	if len(p.DataLabels) > 0 {
		out.DataLabels = maps.Clone(p.DataLabels)
	}
	return out
}

// TaskToSpec externalizes one analysis task. It fails when the task
// carries graph-bound extra flow constraints, which have no stable
// serialized form in schema v1.
func TaskToSpec(t core.Task) (TaskSpec, error) {
	if t.Facts != nil && len(t.Facts.Constraints) > 0 {
		return TaskSpec{}, fmt.Errorf(
			"spec: task %q carries %d graph-bound flow constraints, which schema v1 cannot serialize",
			t.Name, len(t.Facts.Constraints))
	}
	return TaskSpec{
		Name:    t.Name,
		Program: ProgramToSpec(t.Prog),
		Bounds:  t.Facts.Bounds(),
	}, nil
}

// TasksToSpec externalizes a task list in order.
func TasksToSpec(tasks []core.Task) ([]TaskSpec, error) {
	out := make([]TaskSpec, len(tasks))
	for i, t := range tasks {
		ts, err := TaskToSpec(t)
		if err != nil {
			return nil, err
		}
		out[i] = ts
	}
	return out, nil
}

func cacheToSpec(c cache.Config) CacheSpec {
	return CacheSpec{
		Sets: c.Sets, Ways: c.Ways, LineBytes: c.LineBytes,
		HitLatency: c.HitLatency, MissPenalty: c.MissPenalty,
	}
}

// SystemToSpec externalizes a system configuration together with its
// memory device. The pipeline is serialized only when it differs from
// the default, and MemLatency only when it differs from the device's
// derived bound, keeping scenario files small. The one value that
// cannot be expressed is a literal MemLatency of 0 (zero-cost memory):
// the schema reserves 0 for "derive from the controller", so such a
// system round-trips to the derived bound instead.
func SystemToSpec(sys core.SystemConfig, mem memctrl.Config) SystemSpec {
	out := SystemSpec{
		L1I:      cacheToSpec(sys.Mem.L1I),
		L1D:      cacheToSpec(sys.Mem.L1D),
		BusDelay: sys.Mem.BusDelay,
	}
	if sys.Mem.L2 != nil {
		l2 := cacheToSpec(*sys.Mem.L2)
		out.L2 = &l2
	}
	if mem != memctrl.DefaultConfig() {
		out.MemCtrl = &MemCtrlSpec{
			Banks: mem.Banks, RowBits: mem.RowBits, CAS: mem.CAS,
			Activate: mem.Activate, Precharge: mem.Precharge, ClosedPage: mem.ClosedPage,
		}
	}
	if sys.Mem.MemLatency != mem.Bound() {
		out.MemLatency = sys.Mem.MemLatency
	}
	if !reflect.DeepEqual(sys.Pipeline, pipeline.DefaultConfig()) {
		ps := &PipelineSpec{ExLat: map[string]int{}, BranchPenalty: sys.Pipeline.BranchPenalty}
		//paralint:unordered each class writes its own ExLat key; no key is written twice
		for name, cls := range classNames {
			if lat, ok := sys.Pipeline.ExLat[cls]; ok {
				ps.ExLat[name] = lat
			}
		}
		out.Pipeline = ps
	}
	return out
}
