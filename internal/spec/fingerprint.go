package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Fingerprint returns a stable content address for the scenario: a
// collision-resistant digest of its canonical JSON encoding, prefixed
// with the schema version. It is the cache key of the analysis service
// and a public contract:
//
//   - Two scenarios that decode equal — regardless of JSON key order,
//     whitespace or indentation in the source document — share one
//     fingerprint, because the digest is taken over the canonical
//     re-encoding (struct field order, sorted map keys), not the input
//     bytes.
//   - Any semantic change (a task's program or bounds, a cache
//     geometry, the sharing mode or its payload, sim or explore
//     budgets, the scenario name) changes the fingerprint.
//   - The "specN-" prefix ties the key to the schema version, so a
//     cache can never serve an entry recorded under a different schema.
//
// Analysis is deterministic, so equal fingerprints mean equal reports;
// the fingerprint may therefore key result caches that survive process
// restarts. Only valid scenarios have fingerprints: validation failures
// are returned rather than hashed around.
//
//paralint:canonical THE canonical scenario encoding: sha256 over json.Marshal of fixed-tag spec structs; keycover audits its field coverage
func (s *Scenario) Fingerprint() (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	data, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("spec: fingerprint: %w", err)
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("spec%d-%s", Version, hex.EncodeToString(sum[:])), nil
}
