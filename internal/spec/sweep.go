// Sweep documents ("sweep": 1) describe scenario product-spaces
// declaratively: one base Scenario plus per-field axes (task sets by
// name, L2 geometries, fixed bus delays, memory latencies, bus
// arbiters, partition splits). The cross-product is enumerated lazily —
// Point(i) materializes exactly one concrete Scenario — so a sweep of a
// million points never exists in memory as a whole, and every point has
// a deterministic coordinate-derived ID: the same document always
// yields the same points in the same order, and editing one axis value
// only changes the points that use it.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"paratime/internal/workload"
)

// SweepVersion is the sweep schema version this package encodes and
// decodes.
const SweepVersion = 1

// Sweep bounds enforced by Validate.
const (
	maxSweepAxisValues = 4096
	maxSweepPoints     = 1 << 20
)

// SweepDoc is one declarative scenario product-space: a base Scenario
// and the axes along which it varies. Every combination of one value
// per non-empty axis is a point; a document with no axes has exactly
// one point, the base itself.
type SweepDoc struct {
	// Sweep is the schema version; EncodeSweep writes SweepVersion and
	// DecodeSweep rejects anything else.
	Sweep int `json:"sweep"`
	// Name labels the sweep in diagnostics and summaries.
	Name string `json:"name,omitempty"`
	// Base is the scenario every point starts from. When the taskSets
	// axis is present the base carries no tasks (each point's tasks come
	// from its task set); otherwise it must be a complete valid
	// scenario.
	Base Scenario `json:"base"`
	// Axes are the varied dimensions.
	Axes SweepAxes `json:"axes"`
}

// SweepAxes lists the varied dimensions of a sweep. Axis order is
// fixed — taskSets, l2, busDelay, memLatency, bus, partition — and
// enumeration is row-major with the later axes varying fastest.
// Entries within one axis must be distinct.
type SweepAxes struct {
	// TaskSets names workload task sets (see workload.SetNames: "suite",
	// a single benchmark like "fib24", or "+"-joined combinations). Each
	// point's tasks are the set materialized at canonical disjoint
	// bases.
	TaskSets []string `json:"taskSets,omitempty"`
	// L2 enumerates shared-L2 geometries replacing system.l2.
	L2 []CacheSpec `json:"l2,omitempty"`
	// BusDelay enumerates fixed per-transaction arbitration bounds
	// replacing system.busDelay (not in mode "bus", which derives
	// per-core bounds from the arbiter).
	BusDelay []int `json:"busDelay,omitempty"`
	// MemLatency enumerates worst-case memory bounds replacing
	// system.memLatency.
	MemLatency []int `json:"memLatency,omitempty"`
	// Bus enumerates arbiter configurations replacing mode.bus
	// (mode "bus" only).
	Bus []BusSpec `json:"bus,omitempty"`
	// Partition enumerates partition splits replacing mode.partition
	// (mode "partition" only).
	Partition []PartitionSpec `json:"partition,omitempty"`
}

// sweepAxis is one active dimension of the enumeration: a size, a
// stable label per value, and an apply step writing value v into a
// point's scenario.
type sweepAxis struct {
	name  string
	size  int
	label func(v int) string
	apply func(s *Scenario, v int) error
}

// axes returns the active dimensions in canonical order. Inactive
// (empty) axes contribute nothing; the base value stays in effect.
func (d *SweepDoc) axes() []sweepAxis {
	var out []sweepAxis
	if n := len(d.Axes.TaskSets); n > 0 {
		out = append(out, sweepAxis{
			name: "tasks", size: n,
			label: func(v int) string { return d.Axes.TaskSets[v] },
			apply: func(s *Scenario, v int) error {
				tasks, err := workload.Set(d.Axes.TaskSets[v])
				if err != nil {
					return err
				}
				specs, err := TasksToSpec(tasks)
				if err != nil {
					return err
				}
				s.Tasks = specs
				return nil
			},
		})
	}
	if n := len(d.Axes.L2); n > 0 {
		out = append(out, sweepAxis{
			name: "l2", size: n,
			label: strconv.Itoa,
			apply: func(s *Scenario, v int) error {
				l2 := d.Axes.L2[v]
				s.System.L2 = &l2
				return nil
			},
		})
	}
	if n := len(d.Axes.BusDelay); n > 0 {
		out = append(out, sweepAxis{
			name: "busDelay", size: n,
			label: func(v int) string { return strconv.Itoa(d.Axes.BusDelay[v]) },
			apply: func(s *Scenario, v int) error {
				s.System.BusDelay = d.Axes.BusDelay[v]
				return nil
			},
		})
	}
	if n := len(d.Axes.MemLatency); n > 0 {
		out = append(out, sweepAxis{
			name: "memLatency", size: n,
			label: func(v int) string { return strconv.Itoa(d.Axes.MemLatency[v]) },
			apply: func(s *Scenario, v int) error {
				s.System.MemLatency = d.Axes.MemLatency[v]
				return nil
			},
		})
	}
	if n := len(d.Axes.Bus); n > 0 {
		out = append(out, sweepAxis{
			name: "bus", size: n,
			label: strconv.Itoa,
			apply: func(s *Scenario, v int) error {
				bus := d.Axes.Bus[v]
				s.Mode.Bus = &bus
				return nil
			},
		})
	}
	if n := len(d.Axes.Partition); n > 0 {
		out = append(out, sweepAxis{
			name: "partition", size: n,
			label: strconv.Itoa,
			apply: func(s *Scenario, v int) error {
				p := d.Axes.Partition[v]
				s.Mode.Partition = &p
				return nil
			},
		})
	}
	return out
}

// Points returns the number of enumerated points: the product of the
// active axis sizes, or 1 for a document with no axes.
func (d *SweepDoc) Points() int {
	n := 1
	for _, ax := range d.axes() {
		n *= ax.size
	}
	return n
}

// SweepPoint is one materialized point of the product space.
type SweepPoint struct {
	// Index is the point's row-major rank in enumeration order.
	Index int
	// ID is the deterministic coordinate identity, e.g.
	// "tasks=suite,l2=1,busDelay=25" ("base" for an axis-free sweep).
	// IDs are stable under edits to other axis values.
	ID string
	// Coords maps each active axis to the point's value label.
	Coords map[string]string
	// Scenario is the concrete, validated scenario. Its name is the
	// base scenario's name for every point (point identity lives in ID),
	// so the content fingerprint — and therefore any persisted result —
	// depends only on what is actually analyzed.
	Scenario *Scenario
}

// Point materializes point i of the enumeration: the base scenario with
// each active axis's coordinate value applied, validated. Points may be
// materialized concurrently; the returned scenario shares immutable
// payload slices with the document and must be treated as read-only
// (every consumer in this codebase does).
func (d *SweepDoc) Point(i int) (*SweepPoint, error) {
	axes := d.axes()
	n := d.Points()
	if i < 0 || i >= n {
		return nil, fmt.Errorf("spec: sweep point %d outside [0,%d)", i, n)
	}
	// Row-major decomposition, last axis fastest.
	coord := make([]int, len(axes))
	rem := i
	for a := len(axes) - 1; a >= 0; a-- {
		coord[a] = rem % axes[a].size
		rem /= axes[a].size
	}
	s := d.Base // value copy; apply steps replace fields, never mutate in place
	pt := &SweepPoint{Index: i, Coords: make(map[string]string, len(axes))}
	var id []string
	for a, ax := range axes {
		label := ax.label(coord[a])
		pt.Coords[ax.name] = label
		id = append(id, ax.name+"="+label)
		if err := ax.apply(&s, coord[a]); err != nil {
			return nil, fmt.Errorf("spec: sweep point %d (%s): %w", i, strings.Join(id, ","), err)
		}
	}
	pt.ID = "base"
	if len(id) > 0 {
		pt.ID = strings.Join(id, ",")
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("spec: sweep point %d (%s): %w", i, pt.ID, err)
	}
	pt.Scenario = &s
	return pt, nil
}

// Validate checks the sweep document: schema versions, axis bounds and
// duplicates, axis/mode compatibility, resolvable task-set names, and —
// as a cheap early smoke of the base — that point 0 materializes into a
// valid scenario. Remaining points are validated as they are
// materialized.
func (d *SweepDoc) Validate() error {
	if d.Sweep != SweepVersion {
		return fmt.Errorf("spec: unsupported sweep schema version %d (this build supports \"sweep\": %d)", d.Sweep, SweepVersion)
	}
	if d.Base.Spec != Version {
		return fmt.Errorf("spec: sweep base has schema version %d (this build supports \"spec\": %d)", d.Base.Spec, Version)
	}
	type axisCheck struct {
		name string
		size int
	}
	checks := []axisCheck{
		{"taskSets", len(d.Axes.TaskSets)},
		{"l2", len(d.Axes.L2)},
		{"busDelay", len(d.Axes.BusDelay)},
		{"memLatency", len(d.Axes.MemLatency)},
		{"bus", len(d.Axes.Bus)},
		{"partition", len(d.Axes.Partition)},
	}
	points := 1
	for _, c := range checks {
		if c.size > maxSweepAxisValues {
			return fmt.Errorf("spec: sweep axis %q has %d values, above the %d bound", c.name, c.size, maxSweepAxisValues)
		}
		if c.size > 0 {
			points *= c.size
		}
		if points > maxSweepPoints {
			return fmt.Errorf("spec: sweep enumerates more than %d points", maxSweepPoints)
		}
	}
	if err := d.validateAxisValues(); err != nil {
		return err
	}
	// Mode compatibility: an axis that writes a mode payload (or a field
	// the mode forbids) must match the base's mode.
	if len(d.Axes.Bus) > 0 && d.Base.Mode.Kind != KindBus {
		return fmt.Errorf("spec: sweep bus axis needs base mode %q (mode is %q)", KindBus, d.Base.Mode.Kind)
	}
	if len(d.Axes.Partition) > 0 && d.Base.Mode.Kind != KindPartition {
		return fmt.Errorf("spec: sweep partition axis needs base mode %q (mode is %q)", KindPartition, d.Base.Mode.Kind)
	}
	if len(d.Axes.BusDelay) > 0 && d.Base.Mode.Kind == KindBus {
		return fmt.Errorf("spec: sweep busDelay axis conflicts with mode %q, which derives bus bounds from the arbiter", KindBus)
	}
	if len(d.Axes.TaskSets) > 0 && len(d.Base.Tasks) > 0 {
		return fmt.Errorf("spec: sweep taskSets axis conflicts with base tasks; leave base.tasks empty")
	}
	if len(d.Axes.TaskSets) == 0 && len(d.Base.Tasks) == 0 {
		return fmt.Errorf("spec: sweep base has no tasks and no taskSets axis")
	}
	if _, err := d.Point(0); err != nil {
		return err
	}
	return nil
}

// validateAxisValues checks each axis's entries individually: in-range
// values, well-formed geometries, resolvable set names, no duplicates
// (a duplicated value would enumerate indistinguishable points).
//
//paralint:canonical json.Marshal is a structural equality key for duplicate detection, never emitted
func (d *SweepDoc) validateAxisValues() error {
	seenStr := map[string]bool{}
	for i, name := range d.Axes.TaskSets {
		if _, err := workload.Set(name); err != nil {
			return fmt.Errorf("spec: sweep taskSets[%d]: %w", i, err)
		}
		if seenStr[name] {
			return fmt.Errorf("spec: sweep taskSets[%d] duplicates %q", i, name)
		}
		seenStr[name] = true
	}
	seenJSON := map[string]bool{}
	dedupJSON := func(axis string, i int, v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("spec: sweep %s[%d]: %w", axis, i, err)
		}
		if seenJSON[axis+"\x00"+string(b)] {
			return fmt.Errorf("spec: sweep %s[%d] duplicates an earlier value", axis, i)
		}
		seenJSON[axis+"\x00"+string(b)] = true
		return nil
	}
	for i, c := range d.Axes.L2 {
		if err := c.validate(fmt.Sprintf("sweep l2[%d]", i)); err != nil {
			return err
		}
		if err := dedupJSON("l2", i, c); err != nil {
			return err
		}
	}
	intAxes := []struct {
		axis string
		vals []int
	}{{"busDelay", d.Axes.BusDelay}, {"memLatency", d.Axes.MemLatency}}
	for _, ia := range intAxes {
		axis, seen := ia.axis, map[int]bool{}
		for i, v := range ia.vals {
			if v < 0 {
				return fmt.Errorf("spec: sweep %s[%d] = %d must be non-negative", axis, i, v)
			}
			if seen[v] {
				return fmt.Errorf("spec: sweep %s[%d] duplicates %d", axis, i, v)
			}
			seen[v] = true
		}
	}
	for i, b := range d.Axes.Bus {
		if err := dedupJSON("bus", i, b); err != nil {
			return err
		}
	}
	for i, p := range d.Axes.Partition {
		if err := dedupJSON("partition", i, p); err != nil {
			return err
		}
	}
	return nil
}

// Encode validates the document and renders it as indented JSON. The
// encoding is canonical: DecodeSweep(d.Encode()) reproduces d exactly.
//
//paralint:canonical the sweep-document wire format; round-trip pinned by the sweep tests
func (d *SweepDoc) Encode() ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// DecodeSweep parses one sweep document from JSON, rejecting unknown
// fields, trailing data, schema versions other than SweepVersion, and
// invalid configurations.
func DecodeSweep(data []byte) (*SweepDoc, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d SweepDoc
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("spec: decode sweep: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("spec: trailing data after sweep document")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
