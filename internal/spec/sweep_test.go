package spec

import (
	"reflect"
	"strings"
	"testing"
)

// sampleSweep is a three-axis product space over named task sets, bus
// delays and memory latencies: 2*2*2 = 8 points.
func sampleSweep() *SweepDoc {
	return &SweepDoc{
		Sweep: SweepVersion,
		Name:  "sample",
		Base: Scenario{
			Spec:   Version,
			Name:   "base",
			System: DefaultSystemSpec(),
			Mode:   ModeSpec{Kind: KindSolo},
		},
		Axes: SweepAxes{
			TaskSets:   []string{"fib24", "crc16"},
			BusDelay:   []int{0, 10},
			MemLatency: []int{50, 80},
		},
	}
}

// TestSweepEnumeration: point count, row-major order (last axis
// fastest), deterministic coordinate IDs, and per-point scenarios that
// actually carry the coordinate values.
func TestSweepEnumeration(t *testing.T) {
	d := sampleSweep()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := d.Points(); n != 8 {
		t.Fatalf("Points() = %d, want 8", n)
	}
	wantIDs := []string{
		"tasks=fib24,busDelay=0,memLatency=50",
		"tasks=fib24,busDelay=0,memLatency=80",
		"tasks=fib24,busDelay=10,memLatency=50",
		"tasks=fib24,busDelay=10,memLatency=80",
		"tasks=crc16,busDelay=0,memLatency=50",
		"tasks=crc16,busDelay=0,memLatency=80",
		"tasks=crc16,busDelay=10,memLatency=50",
		"tasks=crc16,busDelay=10,memLatency=80",
	}
	for i, want := range wantIDs {
		pt, err := d.Point(i)
		if err != nil {
			t.Fatal(err)
		}
		if pt.ID != want {
			t.Errorf("point %d ID = %q, want %q", i, pt.ID, want)
		}
		if pt.Index != i {
			t.Errorf("point %d Index = %d", i, pt.Index)
		}
		wantBus := 0
		if strings.Contains(want, "busDelay=10") {
			wantBus = 10
		}
		if pt.Scenario.System.BusDelay != wantBus {
			t.Errorf("point %d busDelay = %d, want %d", i, pt.Scenario.System.BusDelay, wantBus)
		}
		if len(pt.Scenario.Tasks) != 1 {
			t.Errorf("point %d has %d tasks, want 1", i, len(pt.Scenario.Tasks))
		}
		// Point identity stays out of the analyzed content: every point
		// keeps the base name so fingerprints depend only on what is
		// analyzed.
		if pt.Scenario.Name != "base" {
			t.Errorf("point %d scenario name = %q, want base name", i, pt.Scenario.Name)
		}
	}
	if _, err := d.Point(8); err == nil {
		t.Error("out-of-range point accepted")
	}
	if _, err := d.Point(-1); err == nil {
		t.Error("negative point accepted")
	}
}

// TestSweepFingerprintsDistinct: distinct points are distinct scenarios
// (the duplicate-value rejection guarantees this); the same point
// fingerprints identically when rematerialized.
func TestSweepFingerprintsDistinct(t *testing.T) {
	d := sampleSweep()
	seen := map[string]int{}
	for i := 0; i < d.Points(); i++ {
		pt, err := d.Point(i)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := pt.Scenario.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("points %d and %d share fingerprint %s", prev, i, fp)
		}
		seen[fp] = i
		again, err := d.Point(i)
		if err != nil {
			t.Fatal(err)
		}
		fp2, err := again.Scenario.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp2 != fp {
			t.Fatalf("point %d fingerprint unstable: %s vs %s", i, fp, fp2)
		}
	}
}

// TestSweepAxisEditDirtiesOnlyItsPoints: editing one axis value changes
// the fingerprints of exactly the points using it — the contract the
// incremental manifest depends on.
func TestSweepAxisEditDirtiesOnlyItsPoints(t *testing.T) {
	fps := func(d *SweepDoc) []string {
		out := make([]string, d.Points())
		for i := range out {
			pt, err := d.Point(i)
			if err != nil {
				t.Fatal(err)
			}
			fp, err := pt.Scenario.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			out[i] = fp
		}
		return out
	}
	before := fps(sampleSweep())
	edited := sampleSweep()
	edited.Axes.BusDelay[1] = 20 // was 10
	after := fps(edited)
	for i := range before {
		// index = tasks*4 + busDelay*2 + memLatency; the edited value is
		// busDelay coordinate 1, so exactly indices with bit 1 set dirty.
		dirty := i&2 != 0
		if got := before[i] != after[i]; got != dirty {
			t.Errorf("point %d: fingerprint changed=%v, want %v", i, got, dirty)
		}
	}
}

// TestSweepRoundTrip: DecodeSweep(Encode(d)) reproduces d exactly and
// the encoding is canonical.
func TestSweepRoundTrip(t *testing.T) {
	docs := []*SweepDoc{
		sampleSweep(),
		{
			Sweep: SweepVersion,
			Name:  "l2-bus",
			Base: Scenario{
				Spec:   Version,
				Name:   "b",
				System: DefaultSystemSpec(),
				Mode:   ModeSpec{Kind: KindBus, Bus: &BusSpec{Policy: BusRoundRobin}},
			},
			Axes: SweepAxes{
				TaskSets: []string{"fib24+crc16", "suite"},
				L2: []CacheSpec{
					{Sets: 32, Ways: 4, LineBytes: 32, HitLatency: 6},
					{Sets: 64, Ways: 4, LineBytes: 32, HitLatency: 6},
				},
				Bus: []BusSpec{
					{Policy: BusRoundRobin},
					{Policy: BusRoundRobin, Cores: 4},
				},
			},
		},
	}
	for _, d := range docs {
		data, err := d.Encode()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		got, err := DecodeSweep(data)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if !reflect.DeepEqual(d, got) {
			t.Errorf("%s: decode(encode(d)) != d\nhave %+v\nwant %+v", d.Name, got, d)
		}
		again, err := got.Encode()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if string(data) != string(again) {
			t.Errorf("%s: encoding not canonical", d.Name)
		}
	}
}

// TestSweepDecodeStrict: unknown fields anywhere in the document,
// trailing data, and wrong schema versions are rejected.
func TestSweepDecodeStrict(t *testing.T) {
	good, err := sampleSweep().Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data string
		want string
	}{
		{"unknown top-level", strings.Replace(string(good), "\"name\"", "\"bogus\"", 1), "unknown field"},
		{"unknown axis", strings.Replace(string(good), "\"busDelay\"", "\"busDelays\"", 1), "unknown field"},
		{"trailing data", string(good) + "{}", "trailing data"},
		{"wrong sweep version", strings.Replace(string(good), "\"sweep\": 1", "\"sweep\": 2", 1), "unsupported sweep schema"},
		{"wrong base version", strings.Replace(string(good), "\"spec\": 1", "\"spec\": 9", 1), "schema version 9"},
		{"not json", "nope", "decode sweep"},
	}
	for _, c := range cases {
		if _, err := DecodeSweep([]byte(c.data)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestSweepValidateRejects: axis bounds, duplicates, unknown set names,
// mode incompatibilities, and task-less documents.
func TestSweepValidateRejects(t *testing.T) {
	mutate := func(f func(*SweepDoc)) *SweepDoc {
		d := sampleSweep()
		f(d)
		return d
	}
	tooMany := make([]int, maxSweepAxisValues+1)
	for i := range tooMany {
		tooMany[i] = i
	}
	wide := make([]int, 2048)
	for i := range wide {
		wide[i] = i
	}
	cases := []struct {
		name string
		doc  *SweepDoc
		want string
	}{
		{"axis too long", mutate(func(d *SweepDoc) { d.Axes.BusDelay = tooMany }), "above the 4096 bound"},
		{"too many points", mutate(func(d *SweepDoc) { d.Axes.BusDelay, d.Axes.MemLatency = wide, wide }), "more than 1048576 points"},
		{"duplicate set", mutate(func(d *SweepDoc) { d.Axes.TaskSets = []string{"fib24", "fib24"} }), "duplicates"},
		{"unknown set", mutate(func(d *SweepDoc) { d.Axes.TaskSets = []string{"nosuch"} }), "unknown task set"},
		{"duplicate busDelay", mutate(func(d *SweepDoc) { d.Axes.BusDelay = []int{5, 5} }), "duplicates 5"},
		{"negative busDelay", mutate(func(d *SweepDoc) { d.Axes.BusDelay = []int{-1} }), "non-negative"},
		{"duplicate l2", mutate(func(d *SweepDoc) {
			c := CacheSpec{Sets: 32, Ways: 4, LineBytes: 32, HitLatency: 6}
			d.Axes.L2 = []CacheSpec{c, c}
		}), "duplicates an earlier value"},
		{"bad l2", mutate(func(d *SweepDoc) { d.Axes.L2 = []CacheSpec{{Sets: 3, Ways: 4, LineBytes: 32, HitLatency: 6}} }), "l2[0]"},
		{"bus axis wrong mode", mutate(func(d *SweepDoc) { d.Axes.Bus = []BusSpec{{Policy: BusRoundRobin}} }), "needs base mode"},
		{"partition axis wrong mode", mutate(func(d *SweepDoc) { d.Axes.Partition = []PartitionSpec{{Scheme: PartTask}} }), "needs base mode"},
		{"tasks and taskSets", mutate(func(d *SweepDoc) {
			d.Base.Tasks = []TaskSpec{{Name: "x", Source: "halt"}}
		}), "conflicts with base tasks"},
		{"no tasks at all", mutate(func(d *SweepDoc) { d.Axes.TaskSets = nil }), "no tasks and no taskSets"},
	}
	for _, c := range cases {
		if err := c.doc.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	// busDelay axis under mode "bus" conflicts with arbiter-derived bounds.
	d := sampleSweep()
	d.Base.Mode = ModeSpec{Kind: KindBus, Bus: &BusSpec{Policy: BusRoundRobin}}
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "busDelay axis conflicts") {
		t.Errorf("busDelay under bus mode: err = %v", err)
	}
}

// TestSweepNoAxes: a document without axes has exactly one point — the
// base itself.
func TestSweepNoAxes(t *testing.T) {
	d := sampleSweep()
	d.Axes = SweepAxes{}
	d.Base.Tasks = []TaskSpec{{Name: "t", Source: "        halt"}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := d.Points(); n != 1 {
		t.Fatalf("Points() = %d, want 1", n)
	}
	pt, err := d.Point(0)
	if err != nil {
		t.Fatal(err)
	}
	if pt.ID != "base" {
		t.Errorf("axis-free point ID = %q, want \"base\"", pt.ID)
	}
}

// FuzzSweepDecode: DecodeSweep must never panic, and any accepted
// document must re-encode canonically and materialize its first point.
func FuzzSweepDecode(f *testing.F) {
	seed, err := sampleSweep().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add(`{"sweep":1}`)
	f.Add(`{"sweep":1,"base":{"spec":1},"axes":{"busDelay":[1,2]}}`)
	f.Add(`{"sweep":1,"base":{"spec":1,"mode":{"kind":"solo"}},"axes":{"taskSets":["suite"]}}`)
	f.Fuzz(func(t *testing.T, data string) {
		d, err := DecodeSweep([]byte(data))
		if err != nil {
			return
		}
		out, err := d.Encode()
		if err != nil {
			t.Fatalf("accepted document fails to encode: %v", err)
		}
		d2, err := DecodeSweep(out)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v", err)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatal("canonical round trip not a fixed point")
		}
		if _, err := d.Point(0); err != nil {
			t.Fatalf("validated document has no point 0: %v", err)
		}
	})
}

// TestSweepPointErrorMentionsID: a point whose materialization fails
// names its coordinates, not just an opaque index.
func TestSweepPointErrorMentionsID(t *testing.T) {
	d := sampleSweep()
	// Bypass Validate: inject an invalid value directly.
	d.Axes.MemLatency = []int{50, -1}
	if _, err := d.Point(1); err == nil || !strings.Contains(err.Error(), "memLatency=-1") {
		t.Errorf("err = %v, want coordinate ID in message", err)
	}
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted a negative memLatency")
	}
}
