package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"paratime/internal/core"
	"paratime/internal/memctrl"
	"paratime/internal/workload"
)

// sampleScenarios covers every mode kind with serializable payloads.
func sampleScenarios(t *testing.T) []*Scenario {
	t.Helper()
	mk := func(name string, tasks []core.Task, mode ModeSpec, sim *SimSpec) *Scenario {
		ts, err := TasksToSpec(tasks)
		if err != nil {
			t.Fatal(err)
		}
		return &Scenario{
			Spec: Version, Name: name, Tasks: ts,
			System: DefaultSystemSpec(), Mode: mode, Sim: sim,
		}
	}
	suite := workload.Suite()
	pair := suite[:2]
	soloExp := mk("solo-explore", suite[:1], ModeSpec{Kind: KindSolo}, &SimSpec{MaxCycles: 1_000_000})
	soloExp.Explore = &ExploreSpec{
		MaxBranchDecisions: 8, InitStates: 2, MaxStates: 64, MaxSteps: 100_000,
		Inputs: []InputSpec{{Task: soloExp.Tasks[0].Name, Reg: "r1", Values: []int32{0, 1, 7}}},
	}
	busExp := mk("bus-explore", pair, ModeSpec{Kind: KindBus, Bus: &BusSpec{Policy: BusRoundRobin}}, nil)
	busExp.Explore = &ExploreSpec{InitStates: 2}
	return []*Scenario{
		mk("solo", suite, ModeSpec{Kind: KindSolo}, &SimSpec{MaxCycles: 1_000_000}),
		soloExp,
		busExp,
		mk("joint", pair, ModeSpec{Kind: KindJoint, Model: ModelDirectMapped}, nil),
		mk("joint-lt", pair, ModeSpec{Kind: KindJoint, Model: ModelAgeShift,
			Lifetimes: []LifetimeSpec{{Core: 0}, {Core: 1, Deps: []int{0}}}}, nil),
		mk("part", pair, ModeSpec{Kind: KindPartition, Partition: &PartitionSpec{Scheme: PartTask}}, nil),
		mk("lock", pair[:1], ModeSpec{Kind: KindLock, Lock: &LockSpec{Policy: LockStatic, BudgetLines: 16}}, nil),
		mk("bus", pair, ModeSpec{Kind: KindBus, Bus: &BusSpec{Policy: BusRoundRobin}}, nil),
		mk("smt", pair, ModeSpec{Kind: KindSMT, SMT: &SMTSpec{Threads: 4, FULatency: 2, MemLatency: 10}}, nil),
		mk("pret", pair, ModeSpec{Kind: KindPRET, PRET: &PretSpec{Threads: 6, WheelWindow: 26, MemLatency: 20}}, nil),
	}
}

// TestRoundTrip: Decode(Encode(s)) must reproduce s exactly for every
// sample scenario — the losslessness contract of the format.
func TestRoundTrip(t *testing.T) {
	for _, sc := range sampleScenarios(t) {
		data, err := sc.Encode()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(sc, got) {
			t.Errorf("%s: decode(encode(s)) != s\nhave %+v\nwant %+v", sc.Name, got, sc)
		}
		// Encoding must be canonical: a second encode is byte-identical.
		again, err := got.Encode()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if string(data) != string(again) {
			t.Errorf("%s: encoding not canonical", sc.Name)
		}
	}
}

// TestRoundTripSourceTask: source-form tasks survive the round trip too.
func TestRoundTripSourceTask(t *testing.T) {
	sc := &Scenario{
		Spec: Version, Name: "src",
		Tasks: []TaskSpec{{Name: "demo", Source: "        li r1, 3\nloop:   addi r1, r1, -1\n        bne r1, r0, loop\n        halt",
			Bounds: map[string]int{"loop": 3}}},
		System: DefaultSystemSpec(),
		Mode:   ModeSpec{Kind: KindSolo},
	}
	data, err := sc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, got) {
		t.Errorf("source task round trip mismatch:\nhave %+v\nwant %+v", got, sc)
	}
}

// TestDecodeAllArray: the export format (a JSON array) decodes, and the
// single-object form still works.
func TestDecodeAllArray(t *testing.T) {
	scs := sampleScenarios(t)[:3]
	data, err := EncodeAll(scs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scs, got) {
		t.Error("array round trip mismatch")
	}
	one, err := scs[0].Encode()
	if err != nil {
		t.Fatal(err)
	}
	single, err := DecodeAll(one)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || !reflect.DeepEqual(single[0], scs[0]) {
		t.Error("single-object DecodeAll mismatch")
	}
}

// TestValidationRejections: every impossible configuration is rejected
// at decode time with an error mentioning the offending field.
func TestValidationRejections(t *testing.T) {
	base := func() *Scenario {
		ts, err := TasksToSpec(workload.Suite()[:2])
		if err != nil {
			t.Fatal(err)
		}
		return &Scenario{Spec: Version, Tasks: ts, System: DefaultSystemSpec(), Mode: ModeSpec{Kind: KindSolo}}
	}
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		wantSub string
	}{
		{"bad version", func(s *Scenario) { s.Spec = 2 }, "schema version"},
		{"no tasks", func(s *Scenario) { s.Tasks = nil }, "no tasks"},
		{"unnamed task", func(s *Scenario) { s.Tasks[0].Name = "" }, "no name"},
		{"dup task", func(s *Scenario) { s.Tasks[1].Name = s.Tasks[0].Name }, "duplicate"},
		{"source and program", func(s *Scenario) { s.Tasks[0].Source = "halt" }, "exactly one"},
		{"neither source nor program", func(s *Scenario) { s.Tasks[0].Program = nil }, "exactly one"},
		{"bad opcode", func(s *Scenario) { s.Tasks[0].Program.Insts[0].Op = "frobnicate" }, "unknown opcode"},
		{"zero bound", func(s *Scenario) { s.Tasks[0].Bounds = map[string]int{"loop": 0} }, "positive"},
		{"bypass outside joint", func(s *Scenario) { s.Tasks[0].Bypass = true }, "bypass"},
		{"unknown kind", func(s *Scenario) { s.Mode.Kind = "quantum" }, "unknown mode kind"},
		{"stray payload", func(s *Scenario) { s.Mode.SMT = &SMTSpec{Threads: 2, FULatency: 1, MemLatency: 1} },
			`does not take a "smt" payload`},
		{"joint without L2", func(s *Scenario) { s.Mode.Kind = KindJoint; s.System.L2 = nil }, "needs a shared L2"},
		{"unknown model", func(s *Scenario) { s.Mode.Kind = KindJoint; s.Mode.Model = "psychic" }, "conflict model"},
		{"lifetime dep range", func(s *Scenario) {
			s.Mode.Kind = KindJoint
			s.Mode.Lifetimes = []LifetimeSpec{{Deps: []int{7}}, {}}
		}, "outside"},
		{"partition without payload", func(s *Scenario) { s.Mode.Kind = KindPartition }, "needs a partition payload"},
		{"bad partition scheme", func(s *Scenario) {
			s.Mode.Kind = KindPartition
			s.Mode.Partition = &PartitionSpec{Scheme: "diagonal"}
		}, "partition scheme"},
		{"ways out of range", func(s *Scenario) {
			s.Mode.Kind = KindPartition
			s.Mode.Partition = &PartitionSpec{Scheme: PartWays, Ways: 99}
		}, "ways"},
		{"bad lock policy", func(s *Scenario) {
			s.Mode.Kind = KindLock
			s.Mode.Lock = &LockSpec{Policy: "hopeful", BudgetLines: 4}
		}, "lock policy"},
		{"bus with busDelay", func(s *Scenario) {
			s.Mode.Kind = KindBus
			s.Mode.Bus = &BusSpec{Policy: BusRoundRobin}
			s.System.BusDelay = 3
		}, "busDelay"},
		{"tdma slot too short", func(s *Scenario) {
			s.Mode.Kind = KindBus
			s.Mode.Bus = &BusSpec{Policy: BusTDMA, Latency: 6,
				Slots: []SlotSpec{{Owner: 0, Len: 3}, {Owner: 1, Len: 8}}}
		}, "cannot fit"},
		{"tdma missing owner", func(s *Scenario) {
			s.Mode.Kind = KindBus
			s.Mode.Bus = &BusSpec{Policy: BusTDMA, Latency: 6, Slots: []SlotSpec{{Owner: 0, Len: 8}}}
		}, "no slot for core"},
		{"mbba weight count", func(s *Scenario) {
			s.Mode.Kind = KindBus
			s.Mode.Bus = &BusSpec{Policy: BusMBBA, Weights: []int{1}}
		}, "one weight per task"},
		{"too many smt tasks", func(s *Scenario) {
			s.Mode.Kind = KindSMT
			s.Mode.SMT = &SMTSpec{Threads: 1, FULatency: 2, MemLatency: 10}
		}, "hardware threads"},
		{"pret wheel too small", func(s *Scenario) {
			s.Mode.Kind = KindPRET
			s.Mode.PRET = &PretSpec{Threads: 6, WheelWindow: 5, MemLatency: 20}
		}, "wheelWindow"},
		{"sim in lock mode", func(s *Scenario) {
			s.Mode.Kind = KindLock
			s.Mode.Lock = &LockSpec{Policy: LockStatic, BudgetLines: 4}
			s.Sim = &SimSpec{}
		}, "sim validation"},
		{"bad cache geometry", func(s *Scenario) { s.System.L1I.Sets = 3 }, "powers of two"},
		{"explore in smt mode", func(s *Scenario) {
			s.Mode.Kind = KindSMT
			s.Mode.SMT = &SMTSpec{Threads: 4, FULatency: 2, MemLatency: 10}
			s.Explore = &ExploreSpec{}
		}, "explore is not supported"},
		{"explore unknown task", func(s *Scenario) {
			s.Explore = &ExploreSpec{Inputs: []InputSpec{{Task: "ghost", Reg: "r1", Values: []int32{0}}}}
		}, "unknown task"},
		{"explore unknown register", func(s *Scenario) {
			s.Explore = &ExploreSpec{Inputs: []InputSpec{{Task: s.Tasks[0].Name, Reg: "r99", Values: []int32{0}}}}
		}, "unknown register"},
		{"explore r0 input", func(s *Scenario) {
			s.Explore = &ExploreSpec{Inputs: []InputSpec{{Task: s.Tasks[0].Name, Reg: "r0", Values: []int32{0}}}}
		}, "hardwired"},
		{"explore no values", func(s *Scenario) {
			s.Explore = &ExploreSpec{Inputs: []InputSpec{{Task: s.Tasks[0].Name, Reg: "r1"}}}
		}, "values"},
		{"explore too many values", func(s *Scenario) {
			s.Explore = &ExploreSpec{Inputs: []InputSpec{{Task: s.Tasks[0].Name, Reg: "r1", Values: make([]int32, 17)}}}
		}, "values"},
		{"explore duplicate input", func(s *Scenario) {
			s.Explore = &ExploreSpec{Inputs: []InputSpec{
				{Task: s.Tasks[0].Name, Reg: "r1", Values: []int32{0}},
				{Task: s.Tasks[0].Name, Reg: "r1", Values: []int32{1}},
			}}
		}, "duplicates"},
		{"explore initStates bound", func(s *Scenario) {
			s.Explore = &ExploreSpec{InitStates: 65}
		}, "initStates"},
		{"explore decision bound", func(s *Scenario) {
			s.Explore = &ExploreSpec{MaxBranchDecisions: 31}
		}, "maxBranchDecisions"},
		{"explore maxStates bound", func(s *Scenario) {
			s.Explore = &ExploreSpec{MaxStates: 1<<20 + 1}
		}, "maxStates"},
		{"explore negative steps", func(s *Scenario) {
			s.Explore = &ExploreSpec{MaxSteps: -1}
		}, "maxSteps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base()
			tc.mutate(sc)
			err := sc.Validate()
			if err == nil {
				t.Fatalf("accepted invalid scenario")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestDecodeRejectsUnknownFields: a typo'd field name fails instead of
// being silently dropped.
func TestDecodeRejectsUnknownFields(t *testing.T) {
	sc := sampleScenarios(t)[0]
	data, err := sc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["modee"] = json.RawMessage(`{"kind":"solo"}`)
	bad, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bad); err == nil {
		t.Error("unknown field accepted")
	}
	// Unknown fields nested inside the explore block fail too.
	delete(raw, "modee")
	raw["explore"] = json.RawMessage(`{"maxStatez": 5}`)
	bad, err = json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bad); err == nil {
		t.Error("unknown explore field accepted")
	}
}

// TestDecodeRejectsTrailingData: anything after the JSON value —
// well-formed or garbage — is rejected in both the single-object and
// array forms.
func TestDecodeRejectsTrailingData(t *testing.T) {
	sc := sampleScenarios(t)[0]
	obj, err := sc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	arr, err := EncodeAll([]*Scenario{sc})
	if err != nil {
		t.Fatal(err)
	}
	for _, trailer := range []string{"}garbage", "{}", "null", "[1]"} {
		if _, err := Decode(append(append([]byte(nil), obj...), trailer...)); err == nil {
			t.Errorf("Decode accepted trailing %q", trailer)
		}
		if _, err := DecodeAll(append(append([]byte(nil), arr...), trailer...)); err == nil {
			t.Errorf("DecodeAll accepted trailing %q", trailer)
		}
	}
}

// TestStringIsTotal: String must not panic on unvalidated scenarios
// with missing mode payloads — diagnostics call it on invalid values.
func TestStringIsTotal(t *testing.T) {
	for _, kind := range []string{KindSolo, KindJoint, KindPartition, KindLock, KindBus, KindSMT, KindPRET, "bogus"} {
		s := &Scenario{Mode: ModeSpec{Kind: kind}}
		if got := s.String(); !strings.Contains(got, kind) && kind != "bogus" {
			t.Errorf("String() = %q lacks kind %q", got, kind)
		}
	}
}

// TestSystemSpecRoundTrip: SystemToSpec/BuildSystem invert each other
// on the canonical default (the dedup contract between the facade and
// the experiments).
func TestSystemSpecRoundTrip(t *testing.T) {
	want := core.DefaultSystem()
	got, err := DefaultSystemSpec().BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("BuildSystem(DefaultSystemSpec()) = %+v, want %+v", got, want)
	}
	// A non-default memory latency survives.
	sys := core.DefaultSystem()
	sys.Mem.MemLatency = 77
	got, err = SystemToSpec(sys, memctrl.DefaultConfig()).BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	if got.Mem.MemLatency != 77 {
		t.Errorf("MemLatency %d, want 77", got.Mem.MemLatency)
	}
}

// TestScenarioString smoke-tests the text rendering.
func TestScenarioString(t *testing.T) {
	for _, sc := range sampleScenarios(t) {
		s := sc.String()
		if !strings.Contains(s, sc.Mode.Kind) || !strings.Contains(s, sc.Name) {
			t.Errorf("String() = %q lacks mode/name", s)
		}
	}
}

// FuzzScenarioDecode: any input that decodes must re-encode and decode
// again to the same value (decode/encode idempotence), and never panic.
func FuzzScenarioDecode(f *testing.F) {
	tasks, err := TasksToSpec(workload.Suite()[:2])
	if err != nil {
		f.Fatal(err)
	}
	seeds := []*Scenario{
		{Spec: Version, Name: "seed-solo", Tasks: tasks, System: DefaultSystemSpec(), Mode: ModeSpec{Kind: KindSolo}},
		{Spec: Version, Name: "seed-joint", Tasks: tasks, System: DefaultSystemSpec(),
			Mode: ModeSpec{Kind: KindJoint, Model: ModelAgeShift}},
		{Spec: Version, Name: "seed-bus", Tasks: tasks, System: DefaultSystemSpec(),
			Mode: ModeSpec{Kind: KindBus, Bus: &BusSpec{Policy: BusRoundRobin}}, Sim: &SimSpec{MaxCycles: 1000}},
		{Spec: Version, Name: "seed-explore", Tasks: tasks, System: DefaultSystemSpec(),
			Mode:    ModeSpec{Kind: KindSolo},
			Explore: &ExploreSpec{InitStates: 2, Inputs: []InputSpec{{Task: tasks[0].Name, Reg: "r1", Values: []int32{0, 1}}}}},
	}
	for _, sc := range seeds {
		data, err := sc.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"spec":1}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Decode(data)
		if err != nil {
			return // invalid input is fine; panics are not
		}
		enc, err := sc.Encode()
		if err != nil {
			t.Fatalf("decoded scenario fails to encode: %v", err)
		}
		again, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(sc, again) {
			t.Fatalf("decode/encode not idempotent:\nfirst  %+v\nsecond %+v", sc, again)
		}
	})
}
