package spec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"paratime/internal/core"
	"paratime/internal/engine"
	"paratime/internal/explore"
	"paratime/internal/interfere"
	"paratime/internal/isa"
	"paratime/internal/partition"
	"paratime/internal/workload"
)

func mustScenario(t *testing.T, name string, tasks []core.Task, mode ModeSpec, sim *SimSpec) *Scenario {
	t.Helper()
	ts, err := TasksToSpec(tasks)
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scenario{Spec: Version, Name: name, Tasks: ts, System: DefaultSystemSpec(), Mode: mode, Sim: sim}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestRunSoloMatchesDirect: the scenario path must reproduce direct
// core.Analyze exactly.
func TestRunSoloMatchesDirect(t *testing.T) {
	tasks := workload.Suite()[:3]
	rep, err := Run(context.Background(), mustScenario(t, "solo", tasks, ModeSpec{Kind: KindSolo}, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		ref, err := core.Analyze(task, core.DefaultSystem())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Tasks[i].WCET != ref.WCET {
			t.Errorf("%s: scenario WCET %d != direct %d", task.Name, rep.Tasks[i].WCET, ref.WCET)
		}
	}
}

// TestRunJointMatchesDirect: the scenario path must reproduce the
// engine's joint analysis exactly, including solo baselines and deltas.
func TestRunJointMatchesDirect(t *testing.T) {
	tasks := workload.Suite()[:3]
	rep, err := Run(context.Background(),
		mustScenario(t, "joint", tasks, ModeSpec{Kind: KindJoint, Model: ModelAgeShift}, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.New(0).AnalyzeJoint(context.Background(), tasks, core.DefaultSystem(), interfere.AgeShift)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if rep.Tasks[i].WCET != want.JointWCET[i] || rep.Tasks[i].SoloWCET != want.SoloWCET[i] {
			t.Errorf("%s: scenario joint/solo %d/%d != direct %d/%d", tasks[i].Name,
				rep.Tasks[i].WCET, rep.Tasks[i].SoloWCET, want.JointWCET[i], want.SoloWCET[i])
		}
		if rep.Tasks[i].DeltaVsSolo != rep.Tasks[i].WCET-rep.Tasks[i].SoloWCET {
			t.Errorf("%s: delta inconsistent", tasks[i].Name)
		}
	}
}

// TestRunLockMatchesDirect: the scenario path must reproduce the direct
// locking analyses exactly.
func TestRunLockMatchesDirect(t *testing.T) {
	task := workload.MemCopy(32, workload.Slot(0))
	for _, policy := range []string{LockStatic, LockDynamic} {
		rep, err := Run(context.Background(), mustScenario(t, "lock-"+policy, []core.Task{task},
			ModeSpec{Kind: KindLock, Lock: &LockSpec{Policy: policy, BudgetLines: 16}}, nil), nil)
		if err != nil {
			t.Fatal(err)
		}
		var want *partition.LockResult
		if policy == LockStatic {
			want, err = partition.StaticLock(task, core.DefaultSystem(), 16)
		} else {
			want, err = partition.DynamicLock(task, core.DefaultSystem(), 16)
		}
		if err != nil {
			t.Fatal(err)
		}
		if rep.Tasks[0].WCET != want.WCET || rep.Tasks[0].LockedLines != len(want.Locked) {
			t.Errorf("%s: scenario %d/%d != direct %d/%d", policy,
				rep.Tasks[0].WCET, rep.Tasks[0].LockedLines, want.WCET, len(want.Locked))
		}
	}
}

// TestRunBusBoundsMonotonic: more cores on the bus must not tighten the
// victim's bound, and the reported per-core bound is the arbiter's.
func TestRunBusBoundsMonotonic(t *testing.T) {
	tasks := workload.Suite()[:2]
	prev := int64(0)
	for _, n := range []int{2, 4, 8} {
		rep, err := Run(context.Background(), mustScenario(t, "bus", tasks,
			ModeSpec{Kind: KindBus, Bus: &BusSpec{Policy: BusRoundRobin, Cores: n}}, nil), nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Tasks[0].WCET < prev {
			t.Errorf("n=%d: victim WCET %d shrank below %d", n, rep.Tasks[0].WCET, prev)
		}
		prev = rep.Tasks[0].WCET
	}
}

// TestRunSimSoundness: every mode that supports simulation validation
// reports sound bounds on the sample workload.
func TestRunSimSoundness(t *testing.T) {
	tasks := workload.Suite()[:2]
	sim := &SimSpec{MaxCycles: 50_000_000}
	scs := []*Scenario{
		mustScenario(t, "solo", tasks, ModeSpec{Kind: KindSolo}, sim),
		mustScenario(t, "joint", tasks, ModeSpec{Kind: KindJoint, Model: ModelAgeShift}, sim),
		mustScenario(t, "bus", tasks, ModeSpec{Kind: KindBus, Bus: &BusSpec{Policy: BusRoundRobin}}, sim),
		mustScenario(t, "smt", tasks, ModeSpec{Kind: KindSMT, SMT: &SMTSpec{Threads: 4, FULatency: 2, MemLatency: 10}}, sim),
		mustScenario(t, "pret", tasks, ModeSpec{Kind: KindPRET, PRET: &PretSpec{Threads: 6, WheelWindow: 26, MemLatency: 20}}, sim),
	}
	for _, sc := range scs {
		rep, err := Run(context.Background(), sc, nil)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if len(rep.Sim) != len(tasks) {
			t.Fatalf("%s: %d sim entries for %d tasks", sc.Name, len(rep.Sim), len(tasks))
		}
		for i, sr := range rep.Sim {
			if !sr.Sound {
				t.Errorf("%s: task %s UNSOUND: WCET %d < sim %d", sc.Name, rep.Tasks[i].Name, rep.Tasks[i].WCET, sr.Cycles)
			}
		}
	}
}

// TestRunCanceledContext: a canceled context returns promptly with
// ctx.Err(), both before and during a run.
func TestRunCanceledContext(t *testing.T) {
	tasks := workload.Suite()
	sc := mustScenario(t, "solo", tasks, ModeSpec{Kind: KindSolo}, &SimSpec{MaxCycles: 500_000_000})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Run(ctx, sc, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Run returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("pre-canceled Run took %v", d)
	}

	ctx, cancel = context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = Run(ctx, sc, nil)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline Run returned %v, want nil or DeadlineExceeded", err)
	}
}

// TestReportEncode: the report round-trips through JSON with the schema
// version stamped.
func TestReportEncode(t *testing.T) {
	rep, err := Run(context.Background(),
		mustScenario(t, "solo", workload.Suite()[:1], ModeSpec{Kind: KindSolo}, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec != Version || len(back.Tasks) != 1 || back.Tasks[0].WCET != rep.Tasks[0].WCET {
		t.Errorf("report did not round-trip: %+v", back)
	}
}

// TestRunPartitionSim: partition mode now honors the sim block, co-running
// the tasks with each core confined to a private view of its L2 partition;
// the partitioned bounds must stay sound against that simulation and the
// analysis results must be identical to a run without simulation.
func TestRunPartitionSim(t *testing.T) {
	tasks := workload.Suite()[:2]
	mode := ModeSpec{Kind: KindPartition, Partition: &PartitionSpec{Scheme: PartTask}}
	plain, err := Run(context.Background(), mustScenario(t, "partition", tasks, mode, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Sim) != 0 {
		t.Fatalf("unexpected sim entries without a sim block: %+v", plain.Sim)
	}
	simmed, err := Run(context.Background(), mustScenario(t, "partition", tasks, mode,
		&SimSpec{MaxCycles: 50_000_000}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(simmed.Sim) != len(tasks) {
		t.Fatalf("%d sim entries for %d tasks", len(simmed.Sim), len(tasks))
	}
	for i := range tasks {
		if simmed.Tasks[i].WCET != plain.Tasks[i].WCET {
			t.Errorf("task %d: simulation changed the bound: %d vs %d",
				i, simmed.Tasks[i].WCET, plain.Tasks[i].WCET)
		}
		if !simmed.Sim[i].Sound {
			t.Errorf("task %s: UNSOUND partition WCET %d < simulated %d",
				simmed.Tasks[i].Name, simmed.Tasks[i].WCET, simmed.Sim[i].Cycles)
		}
		if simmed.Sim[i].Cycles <= 0 {
			t.Errorf("task %d: empty simulation result", i)
		}
	}
}

// exploreSource is an input-dependent diamond: r1 selects between a
// multiply-heavy and a cheap loop body, so the exact worst case over
// r1 in {0,1} exceeds the default-input trace. The data base address
// is parameterized so co-run tasks stay address-disjoint (the joint
// analysis requires it).
const exploreSource = `
        li   r2, 6
        li   r6, %#x
loop:   beq  r1, r0, even
        mul  r4, r2, r2
        mul  r4, r4, r2
        j    join
even:   add  r4, r4, r2
join:   ld   r5, 0(r6)
        add  r4, r4, r5
        st   r4, 0(r6)
        addi r6, r6, 16
        addi r2, r2, -1
        bne  r2, r0, loop
        halt`

func exploreScenario(t *testing.T, name, kind string, tasks int) *Scenario {
	t.Helper()
	sc := &Scenario{Spec: Version, Name: name, System: DefaultSystemSpec(), Mode: ModeSpec{Kind: kind}}
	for i := 0; i < tasks; i++ {
		p := isa.MustAssemble(fmt.Sprintf("t%d", i), fmt.Sprintf(exploreSource, 0x8000+0x1000*i))
		p.Rebase(uint32(0x1000 * (i + 1)))
		ts, err := TaskToSpec(core.Task{Name: fmt.Sprintf("t%d", i), Prog: p})
		if err != nil {
			t.Fatal(err)
		}
		sc.Tasks = append(sc.Tasks, ts)
	}
	switch kind {
	case KindPartition:
		sc.Mode.Partition = &PartitionSpec{Scheme: PartTask}
	case KindBus:
		sc.Mode.Bus = &BusSpec{Policy: BusRoundRobin}
	}
	sc.Explore = &ExploreSpec{InitStates: 2}
	for i := 0; i < tasks; i++ {
		sc.Explore.Inputs = append(sc.Explore.Inputs,
			InputSpec{Task: fmt.Sprintf("t%d", i), Reg: "r1", Values: []int32{0, 1}})
	}
	sc.Sim = &SimSpec{MaxCycles: 10_000_000}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestRunExplore drives the explore block end to end under every
// supported mode: exact worst above the single trace, tightness in
// (0,1], a witness on every task, and a populated summary.
func TestRunExplore(t *testing.T) {
	for _, tc := range []struct {
		kind  string
		tasks int
	}{
		{KindSolo, 2}, {KindJoint, 2}, {KindPartition, 2}, {KindBus, 2},
	} {
		rep, err := Run(context.Background(), exploreScenario(t, "exp-"+tc.kind, tc.kind, tc.tasks), nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if rep.Explore == nil {
			t.Fatalf("%s: no explore summary", tc.kind)
		}
		if rep.Explore.Truncated {
			t.Errorf("%s: unexpected truncation", tc.kind)
		}
		if rep.Explore.States == 0 || rep.Explore.Paths == 0 || rep.Explore.MaxDecisions == 0 {
			t.Errorf("%s: empty summary %+v", tc.kind, rep.Explore)
		}
		for i, tr := range rep.Tasks {
			if tr.ExactWorst <= 0 {
				t.Errorf("%s task %d: exact worst %d", tc.kind, i, tr.ExactWorst)
			}
			if tr.Tightness <= 0 || tr.Tightness > 1 {
				t.Errorf("%s task %d: tightness %v outside (0,1] — bound unsound or exploration broken",
					tc.kind, i, tr.Tightness)
			}
			if want := float64(tr.ExactWorst) / float64(tr.WCET); tr.Tightness != want {
				t.Errorf("%s task %d: tightness %v != exact/bound %v", tc.kind, i, tr.Tightness, want)
			}
			if tr.Witness == nil || len(tr.Witness.Inputs) == 0 {
				t.Errorf("%s task %d: missing witness", tc.kind, i)
			}
			// The exact worst dominates the single validated trace.
			if i < len(rep.Sim) && tr.ExactWorst < rep.Sim[i].Cycles {
				t.Errorf("%s task %d: exact worst %d below single trace %d",
					tc.kind, i, tr.ExactWorst, rep.Sim[i].Cycles)
			}
		}
	}
}

// TestRunExploreWitnessRoundTrip: the witness printed in the report is
// replayable — rebuilding the exploration start state from the report
// reproduces ExactWorst exactly.
func TestRunExploreWitnessRoundTrip(t *testing.T) {
	sc := exploreScenario(t, "exp-replay", KindBus, 2)
	rep, err := Run(context.Background(), sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]core.Task, len(sc.Tasks))
	for i := range sc.Tasks {
		if tasks[i], err = sc.Tasks[i].BuildTask(); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := sc.System.BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	simSys, err := exploreSystem(sc, tasks, sys, sc.System.MemConfig())
	if err != nil {
		t.Fatal(err)
	}
	for ti, tr := range rep.Tasks {
		init := explore.InitState{Pattern: tr.Witness.Pattern, Regs: make([][]explore.RegValue, len(tasks))}
		for _, in := range tr.Witness.Inputs {
			var task, reg string
			var val int32
			dot := strings.IndexByte(in, '.')
			eq := strings.IndexByte(in, '=')
			task, reg = in[:dot], in[dot+1:eq]
			fmt.Sscanf(in[eq+1:], "%d", &val)
			r, ok := RegByName(reg)
			if !ok {
				t.Fatalf("witness register %q", reg)
			}
			for c := range tasks {
				if tasks[c].Name == task {
					init.Regs[c] = append(init.Regs[c], explore.RegValue{Reg: r, Value: val})
				}
			}
		}
		res, err := explore.Replay(simSys, init, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles(ti) != tr.ExactWorst {
			t.Errorf("task %d: witness replays to %d, want exactly %d", ti, res.Cycles(ti), tr.ExactWorst)
		}
	}
}
