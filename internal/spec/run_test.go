package spec

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"paratime/internal/core"
	"paratime/internal/engine"
	"paratime/internal/interfere"
	"paratime/internal/partition"
	"paratime/internal/workload"
)

func mustScenario(t *testing.T, name string, tasks []core.Task, mode ModeSpec, sim *SimSpec) *Scenario {
	t.Helper()
	ts, err := TasksToSpec(tasks)
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scenario{Spec: Version, Name: name, Tasks: ts, System: DefaultSystemSpec(), Mode: mode, Sim: sim}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestRunSoloMatchesDirect: the scenario path must reproduce direct
// core.Analyze exactly.
func TestRunSoloMatchesDirect(t *testing.T) {
	tasks := workload.Suite()[:3]
	rep, err := Run(context.Background(), mustScenario(t, "solo", tasks, ModeSpec{Kind: KindSolo}, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		ref, err := core.Analyze(task, core.DefaultSystem())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Tasks[i].WCET != ref.WCET {
			t.Errorf("%s: scenario WCET %d != direct %d", task.Name, rep.Tasks[i].WCET, ref.WCET)
		}
	}
}

// TestRunJointMatchesDirect: the scenario path must reproduce the
// engine's joint analysis exactly, including solo baselines and deltas.
func TestRunJointMatchesDirect(t *testing.T) {
	tasks := workload.Suite()[:3]
	rep, err := Run(context.Background(),
		mustScenario(t, "joint", tasks, ModeSpec{Kind: KindJoint, Model: ModelAgeShift}, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.New(0).AnalyzeJoint(context.Background(), tasks, core.DefaultSystem(), interfere.AgeShift)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if rep.Tasks[i].WCET != want.JointWCET[i] || rep.Tasks[i].SoloWCET != want.SoloWCET[i] {
			t.Errorf("%s: scenario joint/solo %d/%d != direct %d/%d", tasks[i].Name,
				rep.Tasks[i].WCET, rep.Tasks[i].SoloWCET, want.JointWCET[i], want.SoloWCET[i])
		}
		if rep.Tasks[i].DeltaVsSolo != rep.Tasks[i].WCET-rep.Tasks[i].SoloWCET {
			t.Errorf("%s: delta inconsistent", tasks[i].Name)
		}
	}
}

// TestRunLockMatchesDirect: the scenario path must reproduce the direct
// locking analyses exactly.
func TestRunLockMatchesDirect(t *testing.T) {
	task := workload.MemCopy(32, workload.Slot(0))
	for _, policy := range []string{LockStatic, LockDynamic} {
		rep, err := Run(context.Background(), mustScenario(t, "lock-"+policy, []core.Task{task},
			ModeSpec{Kind: KindLock, Lock: &LockSpec{Policy: policy, BudgetLines: 16}}, nil), nil)
		if err != nil {
			t.Fatal(err)
		}
		var want *partition.LockResult
		if policy == LockStatic {
			want, err = partition.StaticLock(task, core.DefaultSystem(), 16)
		} else {
			want, err = partition.DynamicLock(task, core.DefaultSystem(), 16)
		}
		if err != nil {
			t.Fatal(err)
		}
		if rep.Tasks[0].WCET != want.WCET || rep.Tasks[0].LockedLines != len(want.Locked) {
			t.Errorf("%s: scenario %d/%d != direct %d/%d", policy,
				rep.Tasks[0].WCET, rep.Tasks[0].LockedLines, want.WCET, len(want.Locked))
		}
	}
}

// TestRunBusBoundsMonotonic: more cores on the bus must not tighten the
// victim's bound, and the reported per-core bound is the arbiter's.
func TestRunBusBoundsMonotonic(t *testing.T) {
	tasks := workload.Suite()[:2]
	prev := int64(0)
	for _, n := range []int{2, 4, 8} {
		rep, err := Run(context.Background(), mustScenario(t, "bus", tasks,
			ModeSpec{Kind: KindBus, Bus: &BusSpec{Policy: BusRoundRobin, Cores: n}}, nil), nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Tasks[0].WCET < prev {
			t.Errorf("n=%d: victim WCET %d shrank below %d", n, rep.Tasks[0].WCET, prev)
		}
		prev = rep.Tasks[0].WCET
	}
}

// TestRunSimSoundness: every mode that supports simulation validation
// reports sound bounds on the sample workload.
func TestRunSimSoundness(t *testing.T) {
	tasks := workload.Suite()[:2]
	sim := &SimSpec{MaxCycles: 50_000_000}
	scs := []*Scenario{
		mustScenario(t, "solo", tasks, ModeSpec{Kind: KindSolo}, sim),
		mustScenario(t, "joint", tasks, ModeSpec{Kind: KindJoint, Model: ModelAgeShift}, sim),
		mustScenario(t, "bus", tasks, ModeSpec{Kind: KindBus, Bus: &BusSpec{Policy: BusRoundRobin}}, sim),
		mustScenario(t, "smt", tasks, ModeSpec{Kind: KindSMT, SMT: &SMTSpec{Threads: 4, FULatency: 2, MemLatency: 10}}, sim),
		mustScenario(t, "pret", tasks, ModeSpec{Kind: KindPRET, PRET: &PretSpec{Threads: 6, WheelWindow: 26, MemLatency: 20}}, sim),
	}
	for _, sc := range scs {
		rep, err := Run(context.Background(), sc, nil)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if len(rep.Sim) != len(tasks) {
			t.Fatalf("%s: %d sim entries for %d tasks", sc.Name, len(rep.Sim), len(tasks))
		}
		for i, sr := range rep.Sim {
			if !sr.Sound {
				t.Errorf("%s: task %s UNSOUND: WCET %d < sim %d", sc.Name, rep.Tasks[i].Name, rep.Tasks[i].WCET, sr.Cycles)
			}
		}
	}
}

// TestRunCanceledContext: a canceled context returns promptly with
// ctx.Err(), both before and during a run.
func TestRunCanceledContext(t *testing.T) {
	tasks := workload.Suite()
	sc := mustScenario(t, "solo", tasks, ModeSpec{Kind: KindSolo}, &SimSpec{MaxCycles: 500_000_000})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Run(ctx, sc, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Run returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("pre-canceled Run took %v", d)
	}

	ctx, cancel = context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = Run(ctx, sc, nil)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline Run returned %v, want nil or DeadlineExceeded", err)
	}
}

// TestReportEncode: the report round-trips through JSON with the schema
// version stamped.
func TestReportEncode(t *testing.T) {
	rep, err := Run(context.Background(),
		mustScenario(t, "solo", workload.Suite()[:1], ModeSpec{Kind: KindSolo}, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec != Version || len(back.Tasks) != 1 || back.Tasks[0].WCET != rep.Tasks[0].WCET {
		t.Errorf("report did not round-trip: %+v", back)
	}
}

// TestRunPartitionSim: partition mode now honors the sim block, co-running
// the tasks with each core confined to a private view of its L2 partition;
// the partitioned bounds must stay sound against that simulation and the
// analysis results must be identical to a run without simulation.
func TestRunPartitionSim(t *testing.T) {
	tasks := workload.Suite()[:2]
	mode := ModeSpec{Kind: KindPartition, Partition: &PartitionSpec{Scheme: PartTask}}
	plain, err := Run(context.Background(), mustScenario(t, "partition", tasks, mode, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Sim) != 0 {
		t.Fatalf("unexpected sim entries without a sim block: %+v", plain.Sim)
	}
	simmed, err := Run(context.Background(), mustScenario(t, "partition", tasks, mode,
		&SimSpec{MaxCycles: 50_000_000}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(simmed.Sim) != len(tasks) {
		t.Fatalf("%d sim entries for %d tasks", len(simmed.Sim), len(tasks))
	}
	for i := range tasks {
		if simmed.Tasks[i].WCET != plain.Tasks[i].WCET {
			t.Errorf("task %d: simulation changed the bound: %d vs %d",
				i, simmed.Tasks[i].WCET, plain.Tasks[i].WCET)
		}
		if !simmed.Sim[i].Sound {
			t.Errorf("task %s: UNSOUND partition WCET %d < simulated %d",
				simmed.Tasks[i].Name, simmed.Tasks[i].WCET, simmed.Sim[i].Cycles)
		}
		if simmed.Sim[i].Cycles <= 0 {
			t.Errorf("task %d: empty simulation result", i)
		}
	}
}
