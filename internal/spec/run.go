package spec

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"paratime/internal/arbiter"
	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/engine"
	"paratime/internal/explore"
	"paratime/internal/interfere"
	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/parallel"
	"paratime/internal/partition"
	"paratime/internal/sched"
	"paratime/internal/sim"
	"paratime/internal/smt"
)

// Default simulation limits when SimSpec.MaxCycles is zero.
const (
	defaultSimCycles = 500_000_000
	defaultSMTSteps  = 10_000_000
	defaultPretSteps = 50_000_000
)

// Report is the structured result of running one Scenario. It encodes to
// JSON (Encode) and renders as text (Fprint), and carries the same
// schema version as the scenario format.
type Report struct {
	Spec     int          `json:"spec"`
	Scenario string       `json:"scenario,omitempty"`
	Mode     string       `json:"mode"`
	Tasks    []TaskReport `json:"tasks"`
	// Sim holds per-core validation results when the scenario requested
	// simulation; entry order matches Tasks.
	Sim []SimReport `json:"sim,omitempty"`
	// Explore summarizes the exhaustive exploration when the scenario
	// requested one; the per-task exact worst and tightness live on the
	// TaskReport entries.
	Explore *ExploreReport `json:"explore,omitempty"`
}

// TaskReport is one task's analysis outcome.
type TaskReport struct {
	Name string `json:"name"`
	// WCET is the bound under the scenario's sharing regime.
	WCET int64 `json:"wcet"`
	// SoloWCET is the private-resource baseline (joint modes).
	SoloWCET int64 `json:"soloWCET,omitempty"`
	// DeltaVsSolo = WCET − SoloWCET (joint modes).
	DeltaVsSolo int64 `json:"deltaVsSolo,omitempty"`
	// RefinedWCET is the lifetime-refined bound (joint with lifetimes);
	// WCET carries the same value.
	RefinedWCET int64 `json:"refinedWCET,omitempty"`
	// BusBound is the per-core worst-case arbitration delay (mode bus).
	BusBound int `json:"busBound,omitempty"`
	// BypassedRefs counts references the single-usage bypass removed
	// from the shared L2 (joint mode, tasks with bypass: true).
	BypassedRefs int `json:"bypassedRefs,omitempty"`
	// LockedLines counts cache lines the locking policy pinned (mode
	// lock).
	LockedLines int `json:"lockedLines,omitempty"`
	// Classes summarizes cache classification counts per level.
	Classes string `json:"classes,omitempty"`
	// ExactWorst is the exact worst-case cycle count over every explored
	// state (explore block only). If the exploration was truncated it is
	// only a lower bound on the true exact worst.
	ExactWorst int64 `json:"exactWorst,omitempty"`
	// Tightness = ExactWorst / WCET; 1.0 means the static bound is
	// exact, above 1.0 means the bound is unsound.
	Tightness float64 `json:"tightness,omitempty"`
	// Witness is the explored start state realizing ExactWorst.
	Witness *WitnessReport `json:"witness,omitempty"`
}

// WitnessReport is a replayable exact-worst witness: seeding the listed
// inputs and initial cache pattern reproduces ExactWorst exactly.
type WitnessReport struct {
	// Inputs lists the full input assignment as "task.reg=value"
	// (all tasks of the co-run, not just the witnessed one).
	Inputs []string `json:"inputs,omitempty"`
	// Pattern is the initial cache state index (0 = cold).
	Pattern int `json:"pattern"`
	// Path is the witnessed task's input-dependent branch decision
	// string ('T' taken, 'N' not taken).
	Path string `json:"path,omitempty"`
}

// ExploreReport summarizes one exhaustive exploration.
type ExploreReport struct {
	// States is the number of priced (assignment, pattern) states.
	States int `json:"states"`
	// Paths is the number of distinct input-dependent paths observed.
	Paths int `json:"paths"`
	// MaxDecisions is the largest per-trace input-dependent branch
	// decision count.
	MaxDecisions int `json:"maxDecisions"`
	// Truncated reports a non-exhaustive enumeration (budget hit);
	// exact_worst values are then only lower bounds.
	Truncated bool `json:"truncated,omitempty"`
}

// SimReport is one core's validation outcome.
type SimReport struct {
	Name   string `json:"name"`
	Cycles int64  `json:"cycles"`
	// BusWaitMax is the longest observed arbitration wait (bus mode).
	BusWaitMax int64 `json:"busWaitMax,omitempty"`
	// Sound reports WCET >= Cycles for the matching task.
	Sound bool `json:"sound"`
}

// Encode renders the report as indented JSON.
//
//paralint:canonical the report wire format: fixed-tag structs, ordered slices, no maps
func (r *Report) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Fprint renders the report as aligned text.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "scenario %s  mode %s\n", orDash(r.Scenario), r.Mode)
	for i, t := range r.Tasks {
		fmt.Fprintf(w, "  %-16s WCET %10d", t.Name, t.WCET)
		if t.SoloWCET != 0 {
			fmt.Fprintf(w, "  solo %10d  delta %8d", t.SoloWCET, t.DeltaVsSolo)
		}
		if t.BusBound != 0 {
			fmt.Fprintf(w, "  bus bound %5d", t.BusBound)
		}
		if t.BypassedRefs != 0 {
			fmt.Fprintf(w, "  bypassed %d", t.BypassedRefs)
		}
		if t.LockedLines != 0 {
			fmt.Fprintf(w, "  locked %d", t.LockedLines)
		}
		if i < len(r.Sim) {
			s := r.Sim[i]
			verdict := "SOUND"
			if !s.Sound {
				verdict = "UNSOUND"
			}
			fmt.Fprintf(w, "  sim %10d  %s", s.Cycles, verdict)
		}
		if t.ExactWorst != 0 {
			fmt.Fprintf(w, "  exact %10d  tight %.4f", t.ExactWorst, t.Tightness)
		}
		if t.Classes != "" {
			fmt.Fprintf(w, "  %s", t.Classes)
		}
		fmt.Fprintln(w)
		if t.Witness != nil {
			fmt.Fprintf(w, "    witness pattern=%d path=%q", t.Witness.Pattern, t.Witness.Path)
			if len(t.Witness.Inputs) > 0 {
				fmt.Fprintf(w, " inputs=%s", strings.Join(t.Witness.Inputs, ","))
			}
			fmt.Fprintln(w)
		}
	}
	if e := r.Explore; e != nil {
		fmt.Fprintf(w, "  explore %d state(s)  %d path(s)  max decisions %d", e.States, e.Paths, e.MaxDecisions)
		if e.Truncated {
			fmt.Fprint(w, "  TRUNCATED")
		}
		fmt.Fprintln(w)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Run executes a validated scenario: it materializes tasks and system,
// dispatches to the analysis machinery selected by the mode (through the
// batch engine's worker pool and memo cache), optionally cross-checks
// the bounds in simulation, and assembles a Report. A nil engine gets a
// private one. Cancelling ctx makes Run return promptly with ctx.Err().
func Run(ctx context.Context, s *Scenario, eng *engine.Engine) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if eng == nil {
		eng = engine.New(0)
	}
	tasks := make([]core.Task, len(s.Tasks))
	for i := range s.Tasks {
		t, err := s.Tasks[i].BuildTask()
		if err != nil {
			return nil, err
		}
		tasks[i] = t
	}
	sys, err := s.System.BuildSystem()
	if err != nil {
		return nil, err
	}
	mem := s.System.MemConfig()

	rep := &Report{Spec: Version, Scenario: s.Name, Mode: s.Mode.Kind}
	switch s.Mode.Kind {
	case KindSolo:
		err = runSolo(ctx, s, eng, tasks, sys, mem, rep)
	case KindJoint:
		err = runJoint(ctx, s, eng, tasks, sys, mem, rep)
	case KindPartition:
		err = runPartition(ctx, s, eng, tasks, sys, mem, rep)
	case KindLock:
		err = runLock(ctx, s, tasks, sys, rep)
	case KindBus:
		err = runBus(ctx, s, eng, tasks, sys, mem, rep)
	case KindSMT:
		err = runSMT(ctx, s, tasks, rep)
	case KindPRET:
		err = runPret(ctx, s, tasks, rep)
	default:
		err = fmt.Errorf("spec: unknown mode kind %q", s.Mode.Kind)
	}
	if err != nil {
		return nil, err
	}
	if s.Explore != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := runExplore(s, tasks, sys, mem, rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// exploreSystem builds the co-run topology the explorer prices — the
// same topology the sim block of the matching mode validates against.
func exploreSystem(s *Scenario, tasks []core.Task, sys core.SystemConfig, mem memctrl.Config) (sim.System, error) {
	switch s.Mode.Kind {
	case KindJoint:
		return sim.FromConfig(sys, mem, nil, true, tasks...), nil
	case KindPartition:
		view, err := partitionView(s, sys, len(tasks))
		if err != nil {
			return sim.System{}, err
		}
		views := make([]*cache.Config, len(tasks))
		for i := range views {
			views[i] = &view
		}
		return sim.FromConfigPerCoreL2(sys, mem, nil, tasks, views), nil
	case KindBus:
		return sim.FromConfig(sys, mem, buildArbiter(s), false, tasks...), nil
	default:
		return sim.System{}, fmt.Errorf("spec: explore is not supported in mode %q", s.Mode.Kind)
	}
}

// runExplore executes the scenario's explore block after the static
// analysis filled rep.Tasks, attaching exact_worst, tightness and a
// witness per task plus the exploration summary. Mode solo explores
// each task alone; joint, partition and bus explore the full co-run.
func runExplore(s *Scenario, tasks []core.Task, sys core.SystemConfig, mem memctrl.Config, rep *Report) error {
	e := s.Explore
	b := explore.Budget{
		MaxBranchDecisions: e.MaxBranchDecisions,
		InitStates:         e.InitStates,
		MaxStates:          e.MaxStates,
		MaxSteps:           e.MaxSteps,
		MaxCycles:          simLimit(s, defaultSimCycles),
	}
	taskIdx := map[string]int{}
	for i, t := range tasks {
		taskIdx[t.Name] = i
	}
	// inputsFor maps the declared inputs onto sim cores: core i runs
	// task remap[i] (identity for co-runs, a single task for solo).
	inputsFor := func(remap []int) ([]explore.Input, error) {
		var out []explore.Input
		for _, in := range e.Inputs {
			r, ok := RegByName(in.Reg)
			if !ok {
				return nil, fmt.Errorf("spec: explore input register %q", in.Reg)
			}
			for c, ti := range remap {
				if taskIdx[in.Task] == ti {
					out = append(out, explore.Input{Core: c, Reg: r, Values: in.Values})
				}
			}
		}
		return out, nil
	}
	// witnessReport renders a witness; core c of the explored system
	// runs task remap[c].
	witnessReport := func(w explore.Witness, remap []int) *WitnessReport {
		wr := &WitnessReport{Pattern: w.Init.Pattern, Path: w.Path}
		for c, assign := range w.Init.Regs {
			for _, rv := range assign {
				wr.Inputs = append(wr.Inputs,
					fmt.Sprintf("%s.%s=%d", tasks[remap[c]].Name, rv.Reg, rv.Value))
			}
		}
		return wr
	}
	record := func(i int, exact int64, w explore.Witness, remap []int) {
		rep.Tasks[i].ExactWorst = exact
		if rep.Tasks[i].WCET > 0 {
			rep.Tasks[i].Tightness = float64(exact) / float64(rep.Tasks[i].WCET)
		}
		rep.Tasks[i].Witness = witnessReport(w, remap)
	}

	agg := &ExploreReport{}
	if s.Mode.Kind == KindSolo {
		for i := range tasks {
			ins, err := inputsFor([]int{i})
			if err != nil {
				return err
			}
			res, err := explore.ExplorePar(sim.FromConfig(sys, mem, nil, false, tasks[i]), ins, b, parallel.Resolve(sys.Parallelism))
			if err != nil {
				return fmt.Errorf("spec: explore task %q: %w", tasks[i].Name, err)
			}
			record(i, res.ExactWorst[0], res.Witness[0], []int{i})
			agg.States += res.States
			agg.Paths += res.Paths
			if res.MaxDecisions > agg.MaxDecisions {
				agg.MaxDecisions = res.MaxDecisions
			}
			agg.Truncated = agg.Truncated || res.Truncated
		}
	} else {
		simSys, err := exploreSystem(s, tasks, sys, mem)
		if err != nil {
			return err
		}
		remap := make([]int, len(tasks))
		for i := range remap {
			remap[i] = i
		}
		ins, err := inputsFor(remap)
		if err != nil {
			return err
		}
		res, err := explore.ExplorePar(simSys, ins, b, parallel.Resolve(sys.Parallelism))
		if err != nil {
			return fmt.Errorf("spec: explore: %w", err)
		}
		for i := range tasks {
			record(i, res.ExactWorst[i], res.Witness[i], remap)
		}
		agg.States = res.States
		agg.Paths = res.Paths
		agg.MaxDecisions = res.MaxDecisions
		agg.Truncated = res.Truncated
	}
	rep.Explore = agg
	return nil
}

func simLimit(s *Scenario, fallback int64) int64 {
	if s.Sim != nil && s.Sim.MaxCycles > 0 {
		return s.Sim.MaxCycles
	}
	return fallback
}

func fillSim(rep *Report, tasks []core.Task, cycles func(i int) int64, waitMax func(i int) int64) {
	for i, t := range tasks {
		sr := SimReport{Name: t.Name, Cycles: cycles(i), Sound: rep.Tasks[i].WCET >= cycles(i)}
		if waitMax != nil {
			sr.BusWaitMax = waitMax(i)
		}
		rep.Sim = append(rep.Sim, sr)
	}
}

func runSolo(ctx context.Context, s *Scenario, eng *engine.Engine, tasks []core.Task, sys core.SystemConfig, mem memctrl.Config, rep *Report) error {
	as, err := eng.AnalyzeAll(ctx, engine.Requests(tasks, sys))
	if err != nil {
		return err
	}
	for i, a := range as {
		rep.Tasks = append(rep.Tasks, TaskReport{Name: tasks[i].Name, WCET: a.WCET, Classes: a.ClassSummary()})
	}
	if s.Sim == nil {
		return nil
	}
	sims := make([]*sim.Result, len(tasks))
	err = engine.ForEach(ctx, eng.Workers(), len(tasks), func(i int) error {
		res, err := sim.Run(sim.FromConfig(sys, mem, nil, false, tasks[i]), simLimit(s, defaultSimCycles))
		sims[i] = res
		return err
	})
	if err != nil {
		return err
	}
	fillSim(rep, tasks, func(i int) int64 { return sims[i].Cycles(0) }, nil)
	return nil
}

func conflictModel(name string) interfere.ConflictModel {
	if name == ModelDirectMapped {
		return interfere.DirectMapped
	}
	return interfere.AgeShift
}

func runJoint(ctx context.Context, s *Scenario, eng *engine.Engine, tasks []core.Task, sys core.SystemConfig, mem memctrl.Config, rep *Report) error {
	as, err := eng.PrepareAll(ctx, engine.Requests(tasks, sys))
	if err != nil {
		return err
	}
	bypassed := make([]int, len(tasks))
	for i := range s.Tasks {
		if !s.Tasks[i].Bypass {
			continue
		}
		n, err := interfere.ApplyBypass(as[i])
		if err != nil {
			return fmt.Errorf("spec: bypass on task %q: %w", tasks[i].Name, err)
		}
		bypassed[i] = n
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	model := conflictModel(s.Mode.Model)
	if len(s.Mode.Lifetimes) > 0 {
		specs := make([]sched.TaskSpec, len(tasks))
		for i, l := range s.Mode.Lifetimes {
			specs[i] = sched.TaskSpec{Name: tasks[i].Name, Core: l.Core, Priority: l.Priority, Deps: append([]int(nil), l.Deps...)}
		}
		res, err := interfere.AnalyzeWithLifetimes(as, specs, model)
		if err != nil {
			return err
		}
		for i := range tasks {
			rep.Tasks = append(rep.Tasks, TaskReport{
				Name: tasks[i].Name, WCET: res.RefinedWCET[i],
				SoloWCET: res.SoloWCET[i], DeltaVsSolo: res.RefinedWCET[i] - res.SoloWCET[i],
				RefinedWCET: res.RefinedWCET[i], BypassedRefs: bypassed[i],
				Classes: as[i].ClassSummary(),
			})
		}
	} else {
		res, err := interfere.AnalyzeJoint(as, model)
		if err != nil {
			return err
		}
		for i := range tasks {
			rep.Tasks = append(rep.Tasks, TaskReport{
				Name: tasks[i].Name, WCET: res.JointWCET[i],
				SoloWCET: res.SoloWCET[i], DeltaVsSolo: res.JointWCET[i] - res.SoloWCET[i],
				BypassedRefs: bypassed[i], Classes: as[i].ClassSummary(),
			})
		}
	}
	if s.Sim == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	res, err := sim.Run(sim.FromConfig(sys, mem, nil, true, tasks...), simLimit(s, defaultSimCycles))
	if err != nil {
		return err
	}
	fillSim(rep, tasks, res.Cycles, nil)
	return nil
}

// partitionView computes the private L2 view of a validated
// partition-mode scenario.
func partitionView(s *Scenario, sys core.SystemConfig, nTasks int) (cache.Config, error) {
	p := s.Mode.Partition
	var view cache.Config
	var err error
	switch p.Scheme {
	case PartTask:
		view, err = partition.SetPartition(*sys.Mem.L2, nTasks)
	case PartCore:
		view, err = partition.SetPartition(*sys.Mem.L2, p.Cores)
	case PartWays:
		view, err = partition.Columnize(*sys.Mem.L2, p.Ways)
	case PartBanks:
		view, err = partition.Bankize(*sys.Mem.L2, p.Banks, p.TotalBanks)
	}
	if err != nil {
		return view, fmt.Errorf("spec: %w", err)
	}
	return view, nil
}

func runPartition(ctx context.Context, s *Scenario, eng *engine.Engine, tasks []core.Task, sys core.SystemConfig, mem memctrl.Config, rep *Report) error {
	view, err := partitionView(s, sys, len(tasks))
	if err != nil {
		return err
	}
	sysP := sys
	sysP.Mem.L2 = &view
	as, err := eng.AnalyzeAll(ctx, engine.Requests(tasks, sysP))
	if err != nil {
		return err
	}
	for i, a := range as {
		rep.Tasks = append(rep.Tasks, TaskReport{Name: tasks[i].Name, WCET: a.WCET, Classes: a.ClassSummary()})
	}
	if s.Sim == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Co-run every task with its core confined to a private view of its
	// partition — the isolation the partitioned analysis assumes.
	views := make([]*cache.Config, len(tasks))
	for i := range views {
		views[i] = &view
	}
	res, err := sim.Run(sim.FromConfigPerCoreL2(sys, mem, nil, tasks, views), simLimit(s, defaultSimCycles))
	if err != nil {
		return err
	}
	fillSim(rep, tasks, res.Cycles, nil)
	return nil
}

func runLock(ctx context.Context, s *Scenario, tasks []core.Task, sys core.SystemConfig, rep *Report) error {
	l := s.Mode.Lock
	for _, t := range tasks {
		if err := ctx.Err(); err != nil {
			return err
		}
		var res *partition.LockResult
		var err error
		if l.Policy == LockStatic {
			res, err = partition.StaticLock(t, sys, l.BudgetLines)
		} else {
			res, err = partition.DynamicLock(t, sys, l.BudgetLines)
		}
		if err != nil {
			return fmt.Errorf("spec: lock on task %q: %w", t.Name, err)
		}
		rep.Tasks = append(rep.Tasks, TaskReport{Name: t.Name, WCET: res.WCET, LockedLines: len(res.Locked)})
	}
	return nil
}

// buildArbiter materializes the bus arbiter of a validated bus-mode
// scenario.
func buildArbiter(s *Scenario) arbiter.Arbiter {
	b := s.Mode.Bus
	lat := s.effectiveBusLatency()
	switch b.Policy {
	case BusTDMA:
		slots := make([]arbiter.Slot, len(b.Slots))
		for i, sl := range b.Slots {
			slots[i] = arbiter.Slot{Owner: sl.Owner, Len: sl.Len}
		}
		return arbiter.NewTDMA(slots, lat)
	case BusMBBA:
		return arbiter.NewMultiBandwidth(b.Weights, lat)
	default: // roundrobin
		n := b.Cores
		if n == 0 {
			n = len(s.Tasks)
		}
		return arbiter.NewRoundRobin(n, lat)
	}
}

func runBus(ctx context.Context, s *Scenario, eng *engine.Engine, tasks []core.Task, sys core.SystemConfig, mem memctrl.Config, rep *Report) error {
	arb := buildArbiter(s)
	reqs := make([]engine.Request, len(tasks))
	for i, t := range tasks {
		sysI := sys
		sysI.Mem.BusDelay = arb.Bound(i)
		reqs[i] = engine.Request{Task: t, Sys: sysI}
	}
	as, err := eng.AnalyzeAll(ctx, reqs)
	if err != nil {
		return err
	}
	for i, a := range as {
		rep.Tasks = append(rep.Tasks, TaskReport{
			Name: tasks[i].Name, WCET: a.WCET, BusBound: arb.Bound(i), Classes: a.ClassSummary(),
		})
	}
	if s.Sim == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	res, err := sim.Run(sim.FromConfig(sys, mem, arb, false, tasks...), simLimit(s, defaultSimCycles))
	if err != nil {
		return err
	}
	fillSim(rep, tasks, res.Cycles, func(i int) int64 { return res.Stats[i].BusWaitMax })
	return nil
}

func runSMT(ctx context.Context, s *Scenario, tasks []core.Task, rep *Report) error {
	cfg := smt.BarreConfig{Threads: s.Mode.SMT.Threads, FULatency: s.Mode.SMT.FULatency, MemLatency: s.Mode.SMT.MemLatency}
	bounds := make([]int64, len(tasks))
	err := engine.ForEach(ctx, 0, len(tasks), func(i int) error {
		b, err := cfg.AnalyzeWCET(tasks[i].Prog, tasks[i].Facts)
		bounds[i] = b
		return err
	})
	if err != nil {
		return err
	}
	for i, t := range tasks {
		rep.Tasks = append(rep.Tasks, TaskReport{Name: t.Name, WCET: bounds[i]})
	}
	if s.Sim == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	times, err := cfg.SimulateBarre(progsOf(tasks), uint64(simLimit(s, defaultSMTSteps)))
	if err != nil {
		return err
	}
	fillSim(rep, tasks, func(i int) int64 { return times[i] }, nil)
	return nil
}

func runPret(ctx context.Context, s *Scenario, tasks []core.Task, rep *Report) error {
	cfg := smt.PretConfig{Threads: s.Mode.PRET.Threads, WheelWindow: s.Mode.PRET.WheelWindow, MemLatency: s.Mode.PRET.MemLatency}
	bounds := make([]int64, len(tasks))
	err := engine.ForEach(ctx, 0, len(tasks), func(i int) error {
		b, err := cfg.AnalyzeWCET(tasks[i].Prog, tasks[i].Facts)
		// Thread i's first pipeline slot arrives at cycle i, so its
		// completion time includes that fixed phase offset on top of the
		// phase-independent per-thread bound.
		bounds[i] = b + int64(i)
		return err
	})
	if err != nil {
		return err
	}
	for i, t := range tasks {
		rep.Tasks = append(rep.Tasks, TaskReport{Name: t.Name, WCET: bounds[i]})
	}
	if s.Sim == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	times, err := cfg.SimulatePret(progsOf(tasks), uint64(simLimit(s, defaultPretSteps)))
	if err != nil {
		return err
	}
	fillSim(rep, tasks, func(i int) int64 { return times[i] }, nil)
	return nil
}

func progsOf(tasks []core.Task) []*isa.Program {
	out := make([]*isa.Program, len(tasks))
	for i, t := range tasks {
		out[i] = t.Prog
	}
	return out
}
