package spec

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"paratime/internal/arbiter"
	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/engine"
	"paratime/internal/interfere"
	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/partition"
	"paratime/internal/sched"
	"paratime/internal/sim"
	"paratime/internal/smt"
)

// Default simulation limits when SimSpec.MaxCycles is zero.
const (
	defaultSimCycles = 500_000_000
	defaultSMTSteps  = 10_000_000
	defaultPretSteps = 50_000_000
)

// Report is the structured result of running one Scenario. It encodes to
// JSON (Encode) and renders as text (Fprint), and carries the same
// schema version as the scenario format.
type Report struct {
	Spec     int          `json:"spec"`
	Scenario string       `json:"scenario,omitempty"`
	Mode     string       `json:"mode"`
	Tasks    []TaskReport `json:"tasks"`
	// Sim holds per-core validation results when the scenario requested
	// simulation; entry order matches Tasks.
	Sim []SimReport `json:"sim,omitempty"`
}

// TaskReport is one task's analysis outcome.
type TaskReport struct {
	Name string `json:"name"`
	// WCET is the bound under the scenario's sharing regime.
	WCET int64 `json:"wcet"`
	// SoloWCET is the private-resource baseline (joint modes).
	SoloWCET int64 `json:"soloWCET,omitempty"`
	// DeltaVsSolo = WCET − SoloWCET (joint modes).
	DeltaVsSolo int64 `json:"deltaVsSolo,omitempty"`
	// RefinedWCET is the lifetime-refined bound (joint with lifetimes);
	// WCET carries the same value.
	RefinedWCET int64 `json:"refinedWCET,omitempty"`
	// BusBound is the per-core worst-case arbitration delay (mode bus).
	BusBound int `json:"busBound,omitempty"`
	// BypassedRefs counts references the single-usage bypass removed
	// from the shared L2 (joint mode, tasks with bypass: true).
	BypassedRefs int `json:"bypassedRefs,omitempty"`
	// LockedLines counts cache lines the locking policy pinned (mode
	// lock).
	LockedLines int `json:"lockedLines,omitempty"`
	// Classes summarizes cache classification counts per level.
	Classes string `json:"classes,omitempty"`
}

// SimReport is one core's validation outcome.
type SimReport struct {
	Name   string `json:"name"`
	Cycles int64  `json:"cycles"`
	// BusWaitMax is the longest observed arbitration wait (bus mode).
	BusWaitMax int64 `json:"busWaitMax,omitempty"`
	// Sound reports WCET >= Cycles for the matching task.
	Sound bool `json:"sound"`
}

// Encode renders the report as indented JSON.
func (r *Report) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Fprint renders the report as aligned text.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "scenario %s  mode %s\n", orDash(r.Scenario), r.Mode)
	for i, t := range r.Tasks {
		fmt.Fprintf(w, "  %-16s WCET %10d", t.Name, t.WCET)
		if t.SoloWCET != 0 {
			fmt.Fprintf(w, "  solo %10d  delta %8d", t.SoloWCET, t.DeltaVsSolo)
		}
		if t.BusBound != 0 {
			fmt.Fprintf(w, "  bus bound %5d", t.BusBound)
		}
		if t.BypassedRefs != 0 {
			fmt.Fprintf(w, "  bypassed %d", t.BypassedRefs)
		}
		if t.LockedLines != 0 {
			fmt.Fprintf(w, "  locked %d", t.LockedLines)
		}
		if i < len(r.Sim) {
			s := r.Sim[i]
			verdict := "SOUND"
			if !s.Sound {
				verdict = "UNSOUND"
			}
			fmt.Fprintf(w, "  sim %10d  %s", s.Cycles, verdict)
		}
		if t.Classes != "" {
			fmt.Fprintf(w, "  %s", t.Classes)
		}
		fmt.Fprintln(w)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Run executes a validated scenario: it materializes tasks and system,
// dispatches to the analysis machinery selected by the mode (through the
// batch engine's worker pool and memo cache), optionally cross-checks
// the bounds in simulation, and assembles a Report. A nil engine gets a
// private one. Cancelling ctx makes Run return promptly with ctx.Err().
func Run(ctx context.Context, s *Scenario, eng *engine.Engine) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if eng == nil {
		eng = engine.New(0)
	}
	tasks := make([]core.Task, len(s.Tasks))
	for i := range s.Tasks {
		t, err := s.Tasks[i].BuildTask()
		if err != nil {
			return nil, err
		}
		tasks[i] = t
	}
	sys, err := s.System.BuildSystem()
	if err != nil {
		return nil, err
	}
	mem := s.System.MemConfig()

	rep := &Report{Spec: Version, Scenario: s.Name, Mode: s.Mode.Kind}
	switch s.Mode.Kind {
	case KindSolo:
		err = runSolo(ctx, s, eng, tasks, sys, mem, rep)
	case KindJoint:
		err = runJoint(ctx, s, eng, tasks, sys, mem, rep)
	case KindPartition:
		err = runPartition(ctx, s, eng, tasks, sys, mem, rep)
	case KindLock:
		err = runLock(ctx, s, tasks, sys, rep)
	case KindBus:
		err = runBus(ctx, s, eng, tasks, sys, mem, rep)
	case KindSMT:
		err = runSMT(ctx, s, tasks, rep)
	case KindPRET:
		err = runPret(ctx, s, tasks, rep)
	default:
		err = fmt.Errorf("spec: unknown mode kind %q", s.Mode.Kind)
	}
	if err != nil {
		return nil, err
	}
	return rep, nil
}

func simLimit(s *Scenario, fallback int64) int64 {
	if s.Sim != nil && s.Sim.MaxCycles > 0 {
		return s.Sim.MaxCycles
	}
	return fallback
}

func fillSim(rep *Report, tasks []core.Task, cycles func(i int) int64, waitMax func(i int) int64) {
	for i, t := range tasks {
		sr := SimReport{Name: t.Name, Cycles: cycles(i), Sound: rep.Tasks[i].WCET >= cycles(i)}
		if waitMax != nil {
			sr.BusWaitMax = waitMax(i)
		}
		rep.Sim = append(rep.Sim, sr)
	}
}

func runSolo(ctx context.Context, s *Scenario, eng *engine.Engine, tasks []core.Task, sys core.SystemConfig, mem memctrl.Config, rep *Report) error {
	as, err := eng.AnalyzeAll(ctx, engine.Requests(tasks, sys))
	if err != nil {
		return err
	}
	for i, a := range as {
		rep.Tasks = append(rep.Tasks, TaskReport{Name: tasks[i].Name, WCET: a.WCET, Classes: a.ClassSummary()})
	}
	if s.Sim == nil {
		return nil
	}
	sims := make([]*sim.Result, len(tasks))
	err = engine.ForEach(ctx, eng.Workers(), len(tasks), func(i int) error {
		res, err := sim.Run(sim.FromConfig(sys, mem, nil, false, tasks[i]), simLimit(s, defaultSimCycles))
		sims[i] = res
		return err
	})
	if err != nil {
		return err
	}
	fillSim(rep, tasks, func(i int) int64 { return sims[i].Cycles(0) }, nil)
	return nil
}

func conflictModel(name string) interfere.ConflictModel {
	if name == ModelDirectMapped {
		return interfere.DirectMapped
	}
	return interfere.AgeShift
}

func runJoint(ctx context.Context, s *Scenario, eng *engine.Engine, tasks []core.Task, sys core.SystemConfig, mem memctrl.Config, rep *Report) error {
	as, err := eng.PrepareAll(ctx, engine.Requests(tasks, sys))
	if err != nil {
		return err
	}
	bypassed := make([]int, len(tasks))
	for i := range s.Tasks {
		if !s.Tasks[i].Bypass {
			continue
		}
		n, err := interfere.ApplyBypass(as[i])
		if err != nil {
			return fmt.Errorf("spec: bypass on task %q: %w", tasks[i].Name, err)
		}
		bypassed[i] = n
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	model := conflictModel(s.Mode.Model)
	if len(s.Mode.Lifetimes) > 0 {
		specs := make([]sched.TaskSpec, len(tasks))
		for i, l := range s.Mode.Lifetimes {
			specs[i] = sched.TaskSpec{Name: tasks[i].Name, Core: l.Core, Priority: l.Priority, Deps: append([]int(nil), l.Deps...)}
		}
		res, err := interfere.AnalyzeWithLifetimes(as, specs, model)
		if err != nil {
			return err
		}
		for i := range tasks {
			rep.Tasks = append(rep.Tasks, TaskReport{
				Name: tasks[i].Name, WCET: res.RefinedWCET[i],
				SoloWCET: res.SoloWCET[i], DeltaVsSolo: res.RefinedWCET[i] - res.SoloWCET[i],
				RefinedWCET: res.RefinedWCET[i], BypassedRefs: bypassed[i],
				Classes: as[i].ClassSummary(),
			})
		}
	} else {
		res, err := interfere.AnalyzeJoint(as, model)
		if err != nil {
			return err
		}
		for i := range tasks {
			rep.Tasks = append(rep.Tasks, TaskReport{
				Name: tasks[i].Name, WCET: res.JointWCET[i],
				SoloWCET: res.SoloWCET[i], DeltaVsSolo: res.JointWCET[i] - res.SoloWCET[i],
				BypassedRefs: bypassed[i], Classes: as[i].ClassSummary(),
			})
		}
	}
	if s.Sim == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	res, err := sim.Run(sim.FromConfig(sys, mem, nil, true, tasks...), simLimit(s, defaultSimCycles))
	if err != nil {
		return err
	}
	fillSim(rep, tasks, res.Cycles, nil)
	return nil
}

func runPartition(ctx context.Context, s *Scenario, eng *engine.Engine, tasks []core.Task, sys core.SystemConfig, mem memctrl.Config, rep *Report) error {
	p := s.Mode.Partition
	var view = *sys.Mem.L2
	var err error
	switch p.Scheme {
	case PartTask:
		view, err = partition.SetPartition(*sys.Mem.L2, len(tasks))
	case PartCore:
		view, err = partition.SetPartition(*sys.Mem.L2, p.Cores)
	case PartWays:
		view, err = partition.Columnize(*sys.Mem.L2, p.Ways)
	case PartBanks:
		view, err = partition.Bankize(*sys.Mem.L2, p.Banks, p.TotalBanks)
	}
	if err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	sysP := sys
	sysP.Mem.L2 = &view
	as, err := eng.AnalyzeAll(ctx, engine.Requests(tasks, sysP))
	if err != nil {
		return err
	}
	for i, a := range as {
		rep.Tasks = append(rep.Tasks, TaskReport{Name: tasks[i].Name, WCET: a.WCET, Classes: a.ClassSummary()})
	}
	if s.Sim == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Co-run every task with its core confined to a private view of its
	// partition — the isolation the partitioned analysis assumes.
	views := make([]*cache.Config, len(tasks))
	for i := range views {
		views[i] = &view
	}
	res, err := sim.Run(sim.FromConfigPerCoreL2(sys, mem, nil, tasks, views), simLimit(s, defaultSimCycles))
	if err != nil {
		return err
	}
	fillSim(rep, tasks, res.Cycles, nil)
	return nil
}

func runLock(ctx context.Context, s *Scenario, tasks []core.Task, sys core.SystemConfig, rep *Report) error {
	l := s.Mode.Lock
	for _, t := range tasks {
		if err := ctx.Err(); err != nil {
			return err
		}
		var res *partition.LockResult
		var err error
		if l.Policy == LockStatic {
			res, err = partition.StaticLock(t, sys, l.BudgetLines)
		} else {
			res, err = partition.DynamicLock(t, sys, l.BudgetLines)
		}
		if err != nil {
			return fmt.Errorf("spec: lock on task %q: %w", t.Name, err)
		}
		rep.Tasks = append(rep.Tasks, TaskReport{Name: t.Name, WCET: res.WCET, LockedLines: len(res.Locked)})
	}
	return nil
}

// buildArbiter materializes the bus arbiter of a validated bus-mode
// scenario.
func buildArbiter(s *Scenario) arbiter.Arbiter {
	b := s.Mode.Bus
	lat := s.effectiveBusLatency()
	switch b.Policy {
	case BusTDMA:
		slots := make([]arbiter.Slot, len(b.Slots))
		for i, sl := range b.Slots {
			slots[i] = arbiter.Slot{Owner: sl.Owner, Len: sl.Len}
		}
		return arbiter.NewTDMA(slots, lat)
	case BusMBBA:
		return arbiter.NewMultiBandwidth(b.Weights, lat)
	default: // roundrobin
		n := b.Cores
		if n == 0 {
			n = len(s.Tasks)
		}
		return arbiter.NewRoundRobin(n, lat)
	}
}

func runBus(ctx context.Context, s *Scenario, eng *engine.Engine, tasks []core.Task, sys core.SystemConfig, mem memctrl.Config, rep *Report) error {
	arb := buildArbiter(s)
	reqs := make([]engine.Request, len(tasks))
	for i, t := range tasks {
		sysI := sys
		sysI.Mem.BusDelay = arb.Bound(i)
		reqs[i] = engine.Request{Task: t, Sys: sysI}
	}
	as, err := eng.AnalyzeAll(ctx, reqs)
	if err != nil {
		return err
	}
	for i, a := range as {
		rep.Tasks = append(rep.Tasks, TaskReport{
			Name: tasks[i].Name, WCET: a.WCET, BusBound: arb.Bound(i), Classes: a.ClassSummary(),
		})
	}
	if s.Sim == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	res, err := sim.Run(sim.FromConfig(sys, mem, arb, false, tasks...), simLimit(s, defaultSimCycles))
	if err != nil {
		return err
	}
	fillSim(rep, tasks, res.Cycles, func(i int) int64 { return res.Stats[i].BusWaitMax })
	return nil
}

func runSMT(ctx context.Context, s *Scenario, tasks []core.Task, rep *Report) error {
	cfg := smt.BarreConfig{Threads: s.Mode.SMT.Threads, FULatency: s.Mode.SMT.FULatency, MemLatency: s.Mode.SMT.MemLatency}
	bounds := make([]int64, len(tasks))
	err := engine.ForEach(ctx, 0, len(tasks), func(i int) error {
		b, err := cfg.AnalyzeWCET(tasks[i].Prog, tasks[i].Facts)
		bounds[i] = b
		return err
	})
	if err != nil {
		return err
	}
	for i, t := range tasks {
		rep.Tasks = append(rep.Tasks, TaskReport{Name: t.Name, WCET: bounds[i]})
	}
	if s.Sim == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	times, err := cfg.SimulateBarre(progsOf(tasks), uint64(simLimit(s, defaultSMTSteps)))
	if err != nil {
		return err
	}
	fillSim(rep, tasks, func(i int) int64 { return times[i] }, nil)
	return nil
}

func runPret(ctx context.Context, s *Scenario, tasks []core.Task, rep *Report) error {
	cfg := smt.PretConfig{Threads: s.Mode.PRET.Threads, WheelWindow: s.Mode.PRET.WheelWindow, MemLatency: s.Mode.PRET.MemLatency}
	bounds := make([]int64, len(tasks))
	err := engine.ForEach(ctx, 0, len(tasks), func(i int) error {
		b, err := cfg.AnalyzeWCET(tasks[i].Prog, tasks[i].Facts)
		// Thread i's first pipeline slot arrives at cycle i, so its
		// completion time includes that fixed phase offset on top of the
		// phase-independent per-thread bound.
		bounds[i] = b + int64(i)
		return err
	})
	if err != nil {
		return err
	}
	for i, t := range tasks {
		rep.Tasks = append(rep.Tasks, TaskReport{Name: t.Name, WCET: bounds[i]})
	}
	if s.Sim == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	times, err := cfg.SimulatePret(progsOf(tasks), uint64(simLimit(s, defaultPretSteps)))
	if err != nil {
		return err
	}
	fillSim(rep, tasks, func(i int) int64 { return times[i] }, nil)
	return nil
}

func progsOf(tasks []core.Task) []*isa.Program {
	out := make([]*isa.Program, len(tasks))
	for i, t := range tasks {
		out[i] = t.Prog
	}
	return out
}
