// Package report renders the experiment tables the benchmark harness
// prints: fixed-width text for humans and CSV for post-processing.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned results table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns a table with the given title and headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
	return t
}

// Fprint writes the aligned table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// CSV writes comma-separated values (no quoting: cells must not contain
// commas; experiment output never does).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Ratio formats a/b as a factor string ("1.83x"), guarding zero.
func Ratio(a, b int64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}
