package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"paratime/internal/cachestore"
	"paratime/internal/core"
	"paratime/internal/flow"
	"paratime/internal/interfere"
	"paratime/internal/memctrl"
	"paratime/internal/workload"
)

func testSys() core.SystemConfig {
	sys := core.DefaultSystem()
	sys.Mem.MemLatency = memctrl.DefaultConfig().Bound()
	return sys
}

// TestAnalyzeAllMatchesSequential: the pooled batch path must be
// bit-identical to looping core.Analyze — same WCETs, same
// classification counts.
func TestAnalyzeAllMatchesSequential(t *testing.T) {
	sys := testSys()
	tasks := workload.Suite()
	as, err := New(0).AnalyzeAll(context.Background(), Requests(tasks, sys))
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		ref, err := core.Analyze(task, sys)
		if err != nil {
			t.Fatal(err)
		}
		if as[i].WCET != ref.WCET {
			t.Errorf("%s: engine WCET %d != sequential %d", task.Name, as[i].WCET, ref.WCET)
		}
		if got, want := as[i].ClassSummary(), ref.ClassSummary(); got != want {
			t.Errorf("%s: classes %q != %q", task.Name, got, want)
		}
	}
}

// TestDeterminismAcrossGOMAXPROCS: the full suite analyzed at
// GOMAXPROCS=1 and GOMAXPROCS=8 must yield identical WCETs (the
// acceptance bar for a deterministic WCET tool).
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	sys := testSys()
	tasks := workload.Suite()
	wcets := func(procs int) []int64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		as, err := New(0).AnalyzeAll(context.Background(), Requests(tasks, sys))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, len(as))
		for i, a := range as {
			out[i] = a.WCET
		}
		return out
	}
	w1, w8 := wcets(1), wcets(8)
	for i := range w1 {
		if w1[i] != w8[i] {
			t.Errorf("%s: WCET %d at GOMAXPROCS=1 vs %d at GOMAXPROCS=8",
				tasks[i].Name, w1[i], w8[i])
		}
	}
}

// TestMemoReuseAcrossBusSweep: the same task under different bus bounds
// shares one prepared prefix (bus delay only enters at pricing), and the
// memoized results still match direct analysis.
func TestMemoReuseAcrossBusSweep(t *testing.T) {
	e := New(0)
	task := workload.CRC(8, workload.Slot(0))
	var reqs []Request
	delays := []int{0, 7, 23, 95}
	for _, d := range delays {
		sys := testSys()
		sys.Mem.BusDelay = d
		reqs = append(reqs, Request{Task: task, Sys: sys})
	}
	as, err := e.AnalyzeAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := e.Stats()
	if misses != 1 || hits != uint64(len(delays)-1) {
		t.Errorf("stats = %d hits / %d misses, want %d / 1", hits, misses, len(delays)-1)
	}
	prev := int64(-1)
	for i, a := range as {
		ref, err := core.Analyze(task, reqs[i].Sys)
		if err != nil {
			t.Fatal(err)
		}
		if a.WCET != ref.WCET {
			t.Errorf("delay %d: memoized WCET %d != direct %d", delays[i], a.WCET, ref.WCET)
		}
		if a.WCET <= prev {
			t.Errorf("delay %d: WCET %d not increasing with bus delay", delays[i], a.WCET)
		}
		prev = a.WCET
	}
	want := float64(hits) / float64(hits+misses)
	if got := e.ReuseRatio(); got != want {
		t.Errorf("ReuseRatio() = %v, want %v", got, want)
	}
}

// TestReuseRatioZeroBeforeLookups: an untouched engine reports 0, not
// NaN.
func TestReuseRatioZeroBeforeLookups(t *testing.T) {
	if got := New(0).ReuseRatio(); got != 0 {
		t.Errorf("ReuseRatio() = %v on a fresh engine, want 0", got)
	}
}

// TestCloneIsolation: two clones of one memoized Prepare must not leak
// mutations into each other — reclassifying one (the joint-analysis
// mutation) leaves the other's WCET at the solo value.
func TestCloneIsolation(t *testing.T) {
	e := New(1)
	task := workload.CRC(8, workload.Slot(0))
	sys := testSys()
	as, err := e.PrepareAll(context.Background(), Requests([]core.Task{task, task}, sys))
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1 / 1", hits, misses)
	}
	// Corrupt every L2 set of the first clone.
	shift := map[int]int{}
	for s := 0; s < as[0].L2.Cfg.Sets; s++ {
		shift[s] = as[0].L2.Cfg.Ways
	}
	as[0].L2.Reclassify(shift)
	if err := as[0].ComputeWCET(); err != nil {
		t.Fatal(err)
	}
	if err := as[1].ComputeWCET(); err != nil {
		t.Fatal(err)
	}
	ref, err := core.Analyze(task, sys)
	if err != nil {
		t.Fatal(err)
	}
	if as[1].WCET != ref.WCET {
		t.Errorf("untouched clone WCET %d != solo %d (mutation leaked)", as[1].WCET, ref.WCET)
	}
	if as[0].WCET <= as[1].WCET {
		t.Errorf("corrupted clone WCET %d not above solo %d", as[0].WCET, as[1].WCET)
	}
}

// TestAnalyzeJointMatchesSequential: the engine's joint analysis equals
// the sequential Prepare-loop version.
func TestAnalyzeJointMatchesSequential(t *testing.T) {
	sys := testSys()
	tasks := workload.Suite()[:3]
	got, err := New(0).AnalyzeJoint(context.Background(), tasks, sys, interfere.AgeShift)
	if err != nil {
		t.Fatal(err)
	}
	var as []*core.Analysis
	for _, task := range tasks {
		a, err := core.Prepare(task, sys)
		if err != nil {
			t.Fatal(err)
		}
		as = append(as, a)
	}
	want, err := interfere.AnalyzeJoint(as, interfere.AgeShift)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Names {
		if got.SoloWCET[i] != want.SoloWCET[i] || got.JointWCET[i] != want.JointWCET[i] {
			t.Errorf("%s: engine solo/joint %d/%d != sequential %d/%d", want.Names[i],
				got.SoloWCET[i], got.JointWCET[i], want.SoloWCET[i], want.JointWCET[i])
		}
	}
}

// TestErrorIsLowestIndex: with several failing requests, the reported
// error must be the lowest-index one — carrying that request's task
// name — regardless of scheduling.
func TestErrorIsLowestIndex(t *testing.T) {
	sys := testSys()
	bad := workload.CRC(8, workload.Slot(1))
	bad.Facts = flow.NewFacts().Bound("nosuchlabel", 3) // unknown label: Prepare fails
	reqs := Requests([]core.Task{workload.CRC(8, workload.Slot(0)), bad, bad}, sys)
	reqs[2].Task.Name = "bad2"
	for trial := 0; trial < 10; trial++ {
		_, err := New(0).AnalyzeAll(context.Background(), reqs)
		if err == nil {
			t.Fatal("bad facts accepted")
		}
		if strings.Contains(err.Error(), "bad2") {
			t.Fatalf("error %v names request 2, want the lowest failing request", err)
		}
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), 4, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Errorf("sum = %d, want 4950", sum.Load())
	}
	wantErr := errors.New("boom 17")
	err := ForEach(context.Background(), 8, 64, func(i int) error {
		if i >= 17 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Errorf("err = %v, want %v (lowest failing index)", err, wantErr)
	}
	if err := ForEach(context.Background(), 3, 0, func(int) error { return errors.New("no") }); err != nil {
		t.Errorf("n=0 returned %v", err)
	}
}

// TestCancellation: a canceled context stops dispatch promptly and is
// reported as ctx.Err(), while task errors that already happened win
// over the cancellation for determinism.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys := testSys()
	if _, err := New(0).AnalyzeAll(ctx, Requests(workload.Suite(), sys)); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeAll on canceled ctx = %v, want context.Canceled", err)
	}
	var ran atomic.Int64
	err := ForEach(ctx, 4, 100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ForEach on canceled ctx = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d indices dispatched after cancellation", ran.Load())
	}
	// Mid-flight cancellation: cancel from inside an early index; later
	// indices must not all run.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var count atomic.Int64
	err = ForEach(ctx2, 1, 1000, func(i int) error {
		if i == 3 {
			cancel2()
		}
		count.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("mid-flight cancel = %v, want context.Canceled", err)
	}
	if count.Load() == 1000 {
		t.Error("cancellation did not stop dispatch")
	}
}

// TestConcurrentMemoHammer drives many concurrent requests through a
// small key set; under -race this doubles as the engine's concurrency
// check.
func TestConcurrentMemoHammer(t *testing.T) {
	e := New(8)
	base := []core.Task{
		workload.CRC(8, workload.Slot(0)),
		workload.Fib(20, workload.Slot(1)),
		workload.CountBits(4, workload.Slot(2)),
	}
	sys := testSys()
	var reqs []Request
	for i := 0; i < 24; i++ {
		reqs = append(reqs, Request{Task: base[i%len(base)], Sys: sys})
	}
	as, err := e.AnalyzeAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range as {
		if a.WCET != as[i%len(base)].WCET {
			t.Errorf("request %d: WCET %d != first occurrence %d", i, a.WCET, as[i%len(base)].WCET)
		}
	}
	if _, misses := e.Stats(); misses != uint64(len(base)) {
		hits, _ := e.Stats()
		t.Errorf("stats = %d hits / %d misses, want misses = %d", hits, misses, len(base))
	}
	e.Reset()
	if _, err := e.Analyze(context.Background(), base[0], sys); err != nil {
		t.Fatal(err)
	}
	if _, misses := e.Stats(); misses != uint64(len(base)+1) {
		t.Errorf("Reset did not drop memo entries")
	}
}

// memoBackends enumerates every cache-backend shape the engine must be
// correct under: unbounded memory (the default), a tightly capped LRU
// (eviction mid-batch), a pure disk tier (declines live memo entries, so
// every request re-prepares) and a two-tier composition.
func memoBackends(t *testing.T) map[string]cachestore.CacheBackend {
	t.Helper()
	disk, err := cachestore.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	disk2, err := cachestore.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]cachestore.CacheBackend{
		"memory-unbounded": cachestore.NewMemory(0),
		"memory-capped":    cachestore.NewMemory(1),
		"disk-only":        disk,
		"twotier":          cachestore.NewTwoTier(cachestore.NewMemory(2), disk2),
	}
}

// TestBackendsPreserveDeterminism: the GOMAXPROCS 1-vs-8 determinism
// contract must hold against every cache backend — eviction, declined
// puts and two-tier promotion may change what is recomputed, never what
// is computed.
func TestBackendsPreserveDeterminism(t *testing.T) {
	sys := testSys()
	tasks := workload.Suite()[:4]
	ref := make([]int64, len(tasks))
	for i, task := range tasks {
		a, err := core.Analyze(task, sys)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = a.WCET
	}
	for name, backend := range memoBackends(t) {
		t.Run(name, func(t *testing.T) {
			e := NewWithCache(0, backend)
			for _, procs := range []int{1, 8} {
				old := runtime.GOMAXPROCS(procs)
				as, err := e.AnalyzeAll(context.Background(), Requests(tasks, sys))
				runtime.GOMAXPROCS(old)
				if err != nil {
					t.Fatal(err)
				}
				for i, a := range as {
					if a.WCET != ref[i] {
						t.Errorf("GOMAXPROCS=%d %s: WCET %d != sequential %d",
							procs, tasks[i].Name, a.WCET, ref[i])
					}
				}
			}
		})
	}
}

// TestBackendsPreserveCloneIsolation: mutating one handed-out clone must
// not leak into another, whichever backend holds (or refuses to hold)
// the memoized original.
func TestBackendsPreserveCloneIsolation(t *testing.T) {
	task := workload.CRC(8, workload.Slot(0))
	sys := testSys()
	ref, err := core.Analyze(task, sys)
	if err != nil {
		t.Fatal(err)
	}
	for name, backend := range memoBackends(t) {
		t.Run(name, func(t *testing.T) {
			e := NewWithCache(1, backend)
			as, err := e.PrepareAll(context.Background(), Requests([]core.Task{task, task}, sys))
			if err != nil {
				t.Fatal(err)
			}
			shift := map[int]int{}
			for s := 0; s < as[0].L2.Cfg.Sets; s++ {
				shift[s] = as[0].L2.Cfg.Ways
			}
			as[0].L2.Reclassify(shift)
			if err := as[0].ComputeWCET(); err != nil {
				t.Fatal(err)
			}
			if err := as[1].ComputeWCET(); err != nil {
				t.Fatal(err)
			}
			if as[1].WCET != ref.WCET {
				t.Errorf("untouched clone WCET %d != solo %d (mutation leaked)", as[1].WCET, ref.WCET)
			}
			if as[0].WCET <= as[1].WCET {
				t.Errorf("corrupted clone WCET %d not above solo %d", as[0].WCET, as[1].WCET)
			}
		})
	}
}

// TestMemoLRUCapBoundsGrowth is the regression test for unbounded memo
// growth: a long sweep over many distinct prepare keys on a capped
// memory backend must (a) never hold more entries than the cap, (b)
// actually evict, and (c) stay bit-identical to the uncapped engine.
func TestMemoLRUCapBoundsGrowth(t *testing.T) {
	const cap = 2
	tasks := []core.Task{
		workload.CRC(8, workload.Slot(0)),
		workload.Fib(20, workload.Slot(1)),
		workload.CountBits(4, workload.Slot(2)),
		workload.MatMult(4, workload.Slot(3)),
		workload.CRC(16, workload.Slot(4)),
	}
	sys := testSys()
	// Two passes over five distinct keys: pass two re-prepares evicted
	// keys on the capped engine and hits the memo on the uncapped one.
	var reqs []Request
	for pass := 0; pass < 2; pass++ {
		reqs = append(reqs, Requests(tasks, sys)...)
	}
	mem := cachestore.NewMemory(cap)
	capped := NewWithCache(0, mem)
	uncapped := New(0)
	got, err := capped.AnalyzeAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := uncapped.AnalyzeAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if got[i].WCET != want[i].WCET {
			t.Errorf("request %d (%s): capped WCET %d != uncapped %d",
				i, reqs[i].Task.Name, got[i].WCET, want[i].WCET)
		}
		if gs, ws := got[i].ClassSummary(), want[i].ClassSummary(); gs != ws {
			t.Errorf("request %d (%s): capped classes %q != uncapped %q", i, reqs[i].Task.Name, gs, ws)
		}
	}
	st := mem.Stats()
	if st.Peak > cap {
		t.Errorf("memo peak %d entries exceeds cap %d", st.Peak, cap)
	}
	if st.Evictions == 0 {
		t.Errorf("five distinct keys through a cap-%d memo never evicted", cap)
	}
	if _, misses := uncapped.Stats(); misses != uint64(len(tasks)) {
		t.Errorf("uncapped engine missed %d times, want %d", misses, len(tasks))
	}
}

// TestMemoizedClonesShareSkeleton: every clone handed out for one
// memoized prepare must share the same compiled IPET skeleton, so sweep
// re-pricings hit its warm-start cache instead of rebuilding structure.
func TestMemoizedClonesShareSkeleton(t *testing.T) {
	e := New(0)
	sys := testSys()
	task := workload.MatMult(4, workload.Slot(1))
	reqs := make([]Request, 6)
	for i := range reqs {
		s := sys
		s.Mem.BusDelay = i // excluded from the memo key
		reqs[i] = Request{Task: task, Sys: s}
	}
	as, err := e.PrepareAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range as {
		if a.Skel == nil {
			t.Fatalf("request %d: no skeleton", i)
		}
		if a.Skel != as[0].Skel {
			t.Fatalf("request %d: skeleton not shared across memoized clones", i)
		}
	}
	for _, a := range as {
		if err := a.ComputeWCET(); err != nil {
			t.Fatal(err)
		}
	}
	if hits, _ := as[0].Skel.ReuseStats(); hits == 0 {
		t.Error("bus-delay sweep over one skeleton never hit the simplex warm-start cache")
	}
}
