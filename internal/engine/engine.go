// Package engine provides concurrent batch WCET analysis: it fans
// independent (Task, SystemConfig) requests across a bounded worker pool
// and memoizes the expensive analysis prefix — assembled program → CFG +
// loop bounds → cache classification + compiled IPET skeleton, i.e.
// everything core.Prepare computes — under a content key, so repeated
// configurations (the same task priced under several bus arbiters, or
// re-analyzed by successive experiments) reuse the prepared artefacts
// instead of recomputing them. Because every clone of a memoized
// analysis shares one ipet.Skeleton, sweep re-pricings also share its
// simplex warm-start cache: the ILP structure is built and factorized
// once per task, not once per scenario.
//
// Determinism is preserved by construction: each request's analysis runs
// the same single-threaded code the sequential path runs, on a private
// clone of the (immutable-prefix-sharing) prepared artefacts, and
// results are returned in request order. The engine therefore yields
// bit-identical WCETs to looping core.Analyze, at any worker count.
//
// The memo lives behind a pluggable cachestore.CacheBackend rather than
// a process-lifetime map: the default is an unbounded in-memory store,
// a size-bounded LRU caps memory for long sweeps (NewWithCache), and
// correctness never depends on the backend — a backend that declines or
// evicts entries merely costs a recomputation, because Prepare is
// deterministic and every consumer gets a private clone either way.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"paratime/internal/cachestore"
	"paratime/internal/core"
	"paratime/internal/interfere"
)

// Request is one unit of batch analysis.
type Request struct {
	Task core.Task
	Sys  core.SystemConfig
}

// Engine is a concurrent batch analyzer with a memoized prepare cache.
// The zero value is not ready; use New or NewWithCache. An Engine is
// safe for concurrent use, including nested calls from requests it is
// itself running.
type Engine struct {
	workers int

	// mu serializes the get-or-create step on the memo backend so one
	// Prepare is latched per key even under concurrent first requests.
	mu   sync.Mutex
	memo cachestore.CacheBackend
}

// memoEntry latches one Prepare computation; once guarantees the work
// runs exactly once even when many workers request the same key.
type memoEntry struct {
	once sync.Once
	a    *core.Analysis
	err  error
}

// New returns an engine running at most workers concurrent analyses
// with an unbounded in-memory memo; workers <= 0 selects GOMAXPROCS.
func New(workers int) *Engine {
	return NewWithCache(workers, nil)
}

// NewWithCache returns an engine whose Prepare memo sits on the given
// cache backend; nil selects an unbounded in-memory store. A
// size-bounded cachestore.Memory caps the memo's footprint for long
// sweeps (peak entries never exceed its capacity) at the cost of
// re-preparing evicted keys; output is bit-identical under any backend,
// including one that never retains anything — memo entries are live
// objects, so byte-oriented backends (disk tiers) simply decline them
// and every request re-prepares.
func NewWithCache(workers int, memo cachestore.CacheBackend) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if memo == nil {
		memo = cachestore.NewMemory(0)
	}
	return &Engine{workers: workers, memo: memo}
}

// Workers returns the pool bound.
func (e *Engine) Workers() int { return e.workers }

// Stats reports memo cache hits and misses so far.
func (e *Engine) Stats() (hits, misses uint64) {
	st := e.memo.Stats()
	return st.Hits, st.Misses
}

// ReuseRatio reports the Prepare-memo reuse ratio hits/(hits+misses):
// the fraction of prepare requests answered from memoized artefacts
// instead of recomputing the Prepare prefix. 0 before any lookup. A
// sweep that varies only parameters outside core.PrepareKey (bus
// delays, memory latencies, pipeline timings) approaches 1 as the
// point count grows.
func (e *Engine) ReuseRatio() float64 {
	hits, misses := e.Stats()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Memo returns the memo cache backend (for stats surfaces such as the
// analysis service's /v1/stats).
func (e *Engine) Memo() cachestore.CacheBackend { return e.memo }

// Reset drops every memoized artefact (e.g. between unrelated sweeps, to
// bound memory) on backends that support it; hit/miss counters are kept.
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.memo.(cachestore.Resetter); ok {
		r.Reset()
	}
}

// prepare returns a private clone of the memoized prepared analysis for
// the request, computing and caching it on first use. The clone carries
// the request's own task identity and full system configuration (the
// memo key deliberately excludes pipeline and bus/memory latencies —
// see core.PrepareKey).
func (e *Engine) prepare(task core.Task, sys core.SystemConfig) (*core.Analysis, error) {
	key := core.PrepareKey(task, sys)
	e.mu.Lock()
	var ent *memoEntry
	if v, ok := e.memo.Get(key); ok {
		// A foreign value type under our key (possible only when a
		// byte-oriented backend is shared with other producers) is
		// recomputed in place.
		ent, _ = v.(*memoEntry)
	}
	if ent == nil {
		ent = &memoEntry{}
		e.memo.Put(key, ent)
	}
	e.mu.Unlock()
	ran := false
	ent.once.Do(func() {
		ran = true
		ent.a, ent.err = core.Prepare(task, sys)
	})
	if ent.err != nil {
		if ran {
			return nil, ent.err
		}
		// A cached failure carries the first requester's task name; re-run
		// Prepare (cold path) so the error is attributed to this request
		// and batch error reporting stays deterministic.
		if _, err := core.Prepare(task, sys); err != nil {
			return nil, err
		}
		return nil, ent.err
	}
	c := ent.a.Clone()
	c.Task = task
	c.Sys = sys
	return c, nil
}

// ForEach runs f(0..n-1) across at most workers goroutines (<= 0 selects
// GOMAXPROCS) and returns the error of the lowest index that failed, so
// the reported failure does not depend on scheduling. After a failure no
// further indices are dispatched (in-flight work completes); because
// dispatch is in index order, every index below the first failure still
// runs, keeping the returned error deterministic. Cancelling ctx also
// stops dispatch: once every in-flight call returns, ForEach reports
// ctx.Err() unless some dispatched index failed first (task errors win,
// keeping the report deterministic). It is the generic fan-out primitive
// under the batch entry points, exported for callers (the CLI's
// experiment runner) whose work items are not analyses.
func ForEach(ctx context.Context, workers, n int, f func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return ctx.Err()
	}
	errs := make([]error, n)
	idx := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if errs[i] = f(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load() && ctx.Err() == nil; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// batch runs one analysis step per request across the pool, returning
// results in request order.
func (e *Engine) batch(ctx context.Context, reqs []Request, step func(Request) (*core.Analysis, error)) ([]*core.Analysis, error) {
	out := make([]*core.Analysis, len(reqs))
	err := ForEach(ctx, e.workers, len(reqs), func(i int) error {
		a, err := step(reqs[i])
		if err != nil {
			return err
		}
		out[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PrepareAll runs the analysis prefix (through cache classification) for
// every request, sharing memoized artefacts. Each returned Analysis is a
// private clone: interference, bypass or locking adjustments on one
// never leak into another. A cancelled ctx stops dispatch and returns
// ctx.Err().
func (e *Engine) PrepareAll(ctx context.Context, reqs []Request) ([]*core.Analysis, error) {
	return e.batch(ctx, reqs, func(r Request) (*core.Analysis, error) {
		return e.prepare(r.Task, r.Sys)
	})
}

// AnalyzeAll runs the complete static WCET analysis for every request.
// Results are in request order and bit-identical to calling core.Analyze
// sequentially per request. A cancelled ctx stops dispatch and returns
// ctx.Err().
func (e *Engine) AnalyzeAll(ctx context.Context, reqs []Request) ([]*core.Analysis, error) {
	return e.batch(ctx, reqs, func(r Request) (*core.Analysis, error) {
		a, err := e.prepare(r.Task, r.Sys)
		if err != nil {
			return nil, err
		}
		if err := a.ComputeWCET(); err != nil {
			return nil, fmt.Errorf("task %s: %w", r.Task.Name, err)
		}
		return a, nil
	})
}

// Analyze is the single-request convenience: one fully priced analysis,
// still sharing the engine's memo cache.
func (e *Engine) Analyze(ctx context.Context, task core.Task, sys core.SystemConfig) (*core.Analysis, error) {
	as, err := e.AnalyzeAll(ctx, []Request{{Task: task, Sys: sys}})
	if err != nil {
		return nil, err
	}
	return as[0], nil
}

// Requests builds a request batch pairing every task with one system
// configuration (the common suite / joint-analysis shape).
func Requests(tasks []core.Task, sys core.SystemConfig) []Request {
	reqs := make([]Request, len(tasks))
	for i, t := range tasks {
		reqs[i] = Request{Task: t, Sys: sys}
	}
	return reqs
}

// AnalyzeJoint prepares every co-scheduled task through the engine's
// pool and memo cache, then runs the shared-L2 joint analysis of §4.1 on
// the prepared set. It replaces the sequential per-task Prepare loop of
// the facade's AnalyzeJoint.
func (e *Engine) AnalyzeJoint(ctx context.Context, tasks []core.Task, sys core.SystemConfig, model interfere.ConflictModel) (*interfere.JointResult, error) {
	as, err := e.PrepareAll(ctx, Requests(tasks, sys))
	if err != nil {
		return nil, err
	}
	return interfere.AnalyzeJoint(as, model)
}
