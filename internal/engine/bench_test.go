package engine

import (
	"context"
	"testing"

	"paratime/internal/core"
	"paratime/internal/workload"
)

// BenchmarkSuiteSequential is the baseline: the benchmark suite analyzed
// one task at a time, as the pre-engine CLI did.
func BenchmarkSuiteSequential(b *testing.B) {
	sys := testSys()
	tasks := workload.Suite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, task := range tasks {
			if _, err := core.Analyze(task, sys); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSuitePooled fans the suite across the worker pool with a cold
// memo each iteration: on >= 2 cores the wall-clock per op drops below
// the sequential baseline (the memo contributes nothing here — every key
// is distinct within an iteration).
func BenchmarkSuitePooled(b *testing.B) {
	sys := testSys()
	reqs := Requests(workload.Suite(), sys)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(0).AnalyzeAll(context.Background(), reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuitePooledWarm reuses one engine across iterations, so every
// analysis after the first round hits the memoized prepare prefix and
// pays only for pricing — the repeated-configuration case the memo
// exists for (e.g. one task swept over several arbiters).
func BenchmarkSuitePooledWarm(b *testing.B) {
	sys := testSys()
	reqs := Requests(workload.Suite(), sys)
	e := New(0)
	if _, err := e.AnalyzeAll(context.Background(), reqs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.AnalyzeAll(context.Background(), reqs); err != nil {
			b.Fatal(err)
		}
	}
}
