package flow

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"paratime/internal/cfg"
	"paratime/internal/isa"
)

func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	g, err := cfg.Build(isa.MustAssemble(t.Name(), src))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConstPropStraightLine(t *testing.T) {
	g := build(t, "li r1, 7\naddi r2, r1, 3\nmul r3, r2, r1\nhalt")
	cp := PropagateConstants(g)
	out := cp.Out[g.Entry.ID]
	if v := out.get(isa.R3); v.Kind != Const || v.C != 70 {
		t.Errorf("r3 = %v, want 70", v)
	}
}

func TestConstPropDiamondJoin(t *testing.T) {
	g := build(t, `
        li  r5, 1
        beq r5, r0, elsep
        li  r1, 4
        li  r2, 9
        j   join
elsep:  li  r1, 4
        li  r2, 8
join:   add r3, r1, r2
        halt`)
	cp := PropagateConstants(g)
	var join *cfg.Block
	for _, b := range g.Blocks {
		if !b.IsExit() && len(b.Preds) == 2 {
			join = b
		}
	}
	in := cp.In[join.ID]
	if v := in.get(isa.R1); v.Kind != Const || v.C != 4 {
		t.Errorf("r1 at join = %v, want const 4", v)
	}
	if v := in.get(isa.R2); v.Kind != Top {
		t.Errorf("r2 at join = %v, want ⊤", v)
	}
}

func TestConstPropLoopCarriedBecomesTop(t *testing.T) {
	g := build(t, `
        li   r1, 5
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	cp := PropagateConstants(g)
	l := g.Loops[0]
	if v := cp.In[l.Header.ID].get(isa.R1); v.Kind != Top {
		t.Errorf("loop-carried r1 at header = %v, want ⊤", v)
	}
	if v := cp.AtLoopEntry(l).get(isa.R1); v.Kind != Const || v.C != 5 {
		t.Errorf("r1 at loop entry = %v, want const 5", v)
	}
}

func TestConstPropR0(t *testing.T) {
	g := build(t, "li r0, 9\nadd r1, r0, r0\nhalt")
	cp := PropagateConstants(g)
	if v := cp.Out[g.Entry.ID].get(isa.R1); v.Kind != Const || v.C != 0 {
		t.Errorf("r1 = %v, want 0 (r0 hardwired)", v)
	}
}

// headerExecutions runs the program and counts how often the instruction
// at the loop header's address is fetched — the ground truth for bounds.
func headerExecutions(t *testing.T, g *cfg.Graph, l *cfg.Loop) int {
	t.Helper()
	st := isa.NewState(g.Prog)
	hdr := g.Prog.Addr(l.Header.Start)
	n := 0
	st.Trace = func(e isa.TraceEvent) {
		if e.Kind == isa.TraceFetch && e.Addr == hdr {
			n++
		}
	}
	if _, err := st.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDeriveCountdownDoWhile(t *testing.T) {
	g := build(t, `
        li   r1, 5
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	cp := PropagateConstants(g)
	reps, ind := DeriveBounds(g, cp)
	if !reps[0].Derived {
		t.Fatalf("not derived: %s", reps[0].Reason)
	}
	l := g.Loops[0]
	if l.Bound != 5 {
		t.Errorf("bound = %d, want 5", l.Bound)
	}
	if got := headerExecutions(t, g, l); got != l.Bound {
		t.Errorf("measured %d header executions, derived %d", got, l.Bound)
	}
	iv := ind[l]
	if iv.Reg != isa.R1 || iv.Init != 5 || iv.Step != -1 {
		t.Errorf("induction = %+v", iv)
	}
}

func TestDeriveWhileStyle(t *testing.T) {
	g := build(t, `
        li   r1, 5
loop:   beq  r1, r0, done
        add  r2, r2, r1
        addi r1, r1, -1
        j    loop
done:   halt`)
	cp := PropagateConstants(g)
	reps, _ := DeriveBounds(g, cp)
	if !reps[0].Derived {
		t.Fatalf("not derived: %s", reps[0].Reason)
	}
	l := g.Loops[0]
	if l.Bound != 6 { // 5 body iterations + final failing test
		t.Errorf("bound = %d, want 6", l.Bound)
	}
	if got := headerExecutions(t, g, l); got != l.Bound {
		t.Errorf("measured %d, derived %d", got, l.Bound)
	}
}

func TestDeriveCountUpBLT(t *testing.T) {
	g := build(t, `
        li   r1, 0
        li   r3, 8
loop:   add  r2, r2, r1
        addi r1, r1, 1
        blt  r1, r3, loop
        halt`)
	cp := PropagateConstants(g)
	reps, _ := DeriveBounds(g, cp)
	if !reps[0].Derived {
		t.Fatalf("not derived: %s", reps[0].Reason)
	}
	l := g.Loops[0]
	if got := headerExecutions(t, g, l); got != l.Bound {
		t.Errorf("measured %d, derived %d", got, l.Bound)
	}
	if l.Bound != 8 {
		t.Errorf("bound = %d, want 8", l.Bound)
	}
}

func TestDeriveNestedLoops(t *testing.T) {
	g := build(t, `
        li   r1, 3
outer:  li   r2, 4
inner:  add  r4, r4, r2
        addi r2, r2, -1
        bne  r2, r0, inner
        addi r1, r1, -1
        bne  r1, r0, outer
        halt`)
	cp := PropagateConstants(g)
	reps, _ := DeriveBounds(g, cp)
	for _, r := range reps {
		if !r.Derived {
			t.Fatalf("loop %v not derived: %s", r.Loop, r.Reason)
		}
	}
	if g.Loops[0].Bound != 3 || g.Loops[1].Bound != 4 {
		t.Errorf("bounds = %d, %d want 3, 4", g.Loops[0].Bound, g.Loops[1].Bound)
	}
	for _, l := range g.Loops {
		if l.Depth == 1 {
			if got := headerExecutions(t, g, l); got != l.Bound {
				t.Errorf("outer measured %d, derived %d", got, l.Bound)
			}
		}
	}
}

func TestDeriveDataDependentFails(t *testing.T) {
	g := build(t, `
        li   r3, 0x8000
        ld   r1, 0(r3)
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	cp := PropagateConstants(g)
	reps, _ := DeriveBounds(g, cp)
	if reps[0].Derived {
		t.Error("data-dependent bound should not derive")
	}
	if g.Loops[0].Bound != -1 {
		t.Errorf("bound = %d, want -1", g.Loops[0].Bound)
	}
}

func TestDeriveNonTerminatingPatternFails(t *testing.T) {
	// Steps away from the test constant: bne never fails.
	g := build(t, `
        li   r1, 5
loop:   addi r1, r1, 1
        bne  r1, r0, loop
        halt`)
	cp := PropagateConstants(g)
	reps, _ := DeriveBounds(g, cp)
	// Either underivable or a huge bound capped out — must not "derive" a
	// small wrong bound. r1 wraps around through 2^32 values; maxTrip
	// caps the simulation.
	if reps[0].Derived {
		t.Errorf("wrap-around loop derived bound %d", g.Loops[0].Bound)
	}
}

func TestFactsApplyAndOverride(t *testing.T) {
	g := build(t, `
        li   r1, 5
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	cp := PropagateConstants(g)
	DeriveBounds(g, cp)
	f := NewFacts().Bound("loop", 99)
	if err := f.Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.Loops[0].Bound != 99 {
		t.Errorf("bound = %d, want annotation override 99", g.Loops[0].Bound)
	}
}

func TestFactsErrors(t *testing.T) {
	g := build(t, `
        li   r1, 5
loop:   addi r1, r1, -1
        bne  r1, r0, loop
done:   halt`)
	if err := NewFacts().Bound("nolabel", 3).Apply(g); err == nil {
		t.Error("unknown label accepted")
	}
	if err := NewFacts().Bound("done", 3).Apply(g); err == nil {
		t.Error("non-header label accepted")
	}
}

func TestCheckBounded(t *testing.T) {
	g := build(t, `
        li   r3, 0x8000
        ld   r1, 0(r3)
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	if err := CheckBounded(g); err == nil {
		t.Error("unbounded loop passed CheckBounded")
	}
	g.Loops[0].Bound = 10
	if err := CheckBounded(g); err != nil {
		t.Errorf("bounded graph rejected: %v", err)
	}
	g.Loops[0].Bound = 0
	if err := CheckBounded(g); err == nil {
		t.Error("zero bound accepted")
	}
}

func TestBoundAllPipeline(t *testing.T) {
	g := build(t, `
        li   r1, 4
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	if _, _, err := BoundAll(g, nil); err != nil {
		t.Fatal(err)
	}
	if g.Loops[0].Bound != 4 {
		t.Errorf("bound = %d, want 4", g.Loops[0].Bound)
	}
}

func TestAnalyzeAddrsExact(t *testing.T) {
	g := build(t, `
        li r1, 0x8000
        ld r2, 8(r1)
        st r2, 12(r1)
        halt`)
	cp := PropagateConstants(g)
	addrs := AnalyzeAddrs(g, cp, nil)
	found := 0
	for _, r := range addrs {
		if !r.Exact() {
			t.Errorf("range %+v should be exact", r)
		}
		if r.Lo == 0x8008 || r.Lo == 0x800c {
			found++
		}
	}
	if found != 2 {
		t.Errorf("found %d expected refs, want 2", found)
	}
}

func TestAnalyzeAddrsInductionWalk(t *testing.T) {
	g := build(t, `
        li   r1, 0x8000
        li   r3, 0x8020
loop:   ld   r2, 0(r1)
        add  r4, r4, r2
        addi r1, r1, 4
        bne  r1, r3, loop
        halt`)
	cp := PropagateConstants(g)
	_, ind := DeriveBounds(g, cp)
	if g.Loops[0].Bound != 8 {
		t.Fatalf("bound = %d, want 8", g.Loops[0].Bound)
	}
	addrs := AnalyzeAddrs(g, cp, ind)
	var walk *AddrRange
	for k, r := range addrs {
		k := k
		_ = k
		r := r
		if r.Known && r.Lo != r.Hi {
			walk = &r
		}
	}
	if walk == nil {
		t.Fatal("no strided range derived for array walk")
	}
	if walk.Lo != 0x8000 || walk.Hi < 0x801c || walk.Stride != 4 {
		t.Errorf("range = %+v, want [0x8000, >=0x801c] stride 4", *walk)
	}
	// The range must cover every address the program actually touches.
	touched := map[uint32]bool{}
	st := isa.NewState(g.Prog)
	st.Trace = func(e isa.TraceEvent) {
		if e.Kind == isa.TraceLoad {
			touched[e.Addr] = true
		}
	}
	if _, err := st.Run(100000); err != nil {
		t.Fatal(err)
	}
	for a := range touched {
		if a < walk.Lo || a > walk.Hi {
			t.Errorf("touched 0x%x outside derived range [0x%x,0x%x]", a, walk.Lo, walk.Hi)
		}
	}
}

func TestAnalyzeAddrsUnknown(t *testing.T) {
	g := build(t, `
        li r3, 0x8000
        ld r1, 0(r3)
        ld r2, 0(r1)
        halt`)
	cp := PropagateConstants(g)
	addrs := AnalyzeAddrs(g, cp, nil)
	unknown := 0
	for _, r := range addrs {
		if !r.Known {
			unknown++
		}
	}
	if unknown != 1 {
		t.Errorf("unknown ranges = %d, want 1 (the data-dependent load)", unknown)
	}
}

func TestAddrRangeAddrs(t *testing.T) {
	r := AddrRange{Known: true, Lo: 0x100, Hi: 0x10c, Stride: 4}
	got := r.Addrs()
	if len(got) != 4 || got[0] != 0x100 || got[3] != 0x10c {
		t.Errorf("Addrs = %#v", got)
	}
	if (AddrRange{}).Addrs() != nil {
		t.Error("unknown range should enumerate nothing")
	}
}

// TestDeriveBoundsRandomized cross-validates derived bounds against
// executed header counts over randomized counting loops.
func TestDeriveBoundsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		step := int32(1 + rng.Intn(4))
		n := 1 + rng.Intn(49)
		init := int32(rng.Intn(100) - 50)
		k := init + step*int32(n)
		dir := rng.Intn(3)
		var src string
		switch dir {
		case 0: // count up, bne
			src = fmt.Sprintf(`
        li   r1, %d
        li   r3, %d
loop:   add  r2, r2, r1
        addi r1, r1, %d
        bne  r1, r3, loop
        halt`, init, k, step)
		case 1: // count up, blt
			src = fmt.Sprintf(`
        li   r1, %d
        li   r3, %d
loop:   add  r2, r2, r1
        addi r1, r1, %d
        blt  r1, r3, loop
        halt`, init, k, step)
		default: // count down to zero-crossing with bge
			src = fmt.Sprintf(`
        li   r1, %d
loop:   add  r2, r2, r1
        addi r1, r1, -%d
        bge  r1, r0, loop
        halt`, init, step)
		}
		g, err := cfg.Build(isa.MustAssemble("rnd", src))
		if err != nil {
			t.Fatal(err)
		}
		cp := PropagateConstants(g)
		reps, _ := DeriveBounds(g, cp)
		if !reps[0].Derived {
			// count-down from negative init exits immediately; still fine
			// if derived, but underivable is only acceptable if we can't
			// run it either. It always terminates, so require derivation.
			t.Fatalf("trial %d: underived (%s)\n%s", trial, reps[0].Reason, src)
		}
		want := headerExecutions(t, g, g.Loops[0])
		if g.Loops[0].Bound != want {
			t.Fatalf("trial %d: derived %d, measured %d\n%s", trial, g.Loops[0].Bound, want, src)
		}
	}
}

func TestValString(t *testing.T) {
	if !strings.Contains(ConstVal(3).String(), "3") {
		t.Error("ConstVal render")
	}
	if TopVal().String() != "⊤" || (Val{}).String() != "⊥" {
		t.Error("lattice extremes render")
	}
}
