package flow

import (
	"fmt"

	"paratime/internal/cfg"
	"paratime/internal/isa"
)

// maxTrip caps loop-bound simulation; loops that iterate longer than this
// are reported as underivable rather than stalling the analysis.
const maxTrip = 1 << 22

// Induction describes the derived counting behaviour of a loop: register
// Reg starts at Init on loop entry and is incremented by Step exactly once
// per iteration; the loop header executes Count times per loop entry.
type Induction struct {
	Reg   isa.Reg
	Init  int32
	Step  int32
	Count int
}

// BoundReport records the outcome of automatic bound derivation for one
// loop, for diagnostics.
type BoundReport struct {
	Loop    *cfg.Loop
	Derived bool
	Reason  string // why derivation failed, when !Derived
}

// AtLoopEntry returns the abstract register state on entry to the loop:
// the join over the loop's entry edges of the predecessors' exit states.
// Unlike In[header], it excludes back edges, so loop-carried registers
// keep their initial values.
func (cp *ConstProp) AtLoopEntry(l *cfg.Loop) RegState {
	var acc RegState // all Bot
	for _, e := range l.EntryEdges {
		acc = joinState(acc, cp.Out[e.From.ID])
	}
	return acc
}

// DeriveBounds attempts to derive an iteration bound for every loop in
// the graph by recognizing counting loops: a unique induction register
// updated by a constant step, tested by a single controlling branch
// against a loop-invariant constant. Bounds found are written into
// Loop.Bound (as the maximum number of header executions per loop entry).
// It returns per-loop reports and the induction facts for loops it solved.
//
// Derivation is conservative: any pattern it cannot prove exact is left
// unbounded (Loop.Bound = -1) for the user to annotate via Facts. Extra
// exit edges besides the modelled branch can only shorten execution, so a
// derived bound is always a safe upper bound.
func DeriveBounds(g *cfg.Graph, cp *ConstProp) ([]BoundReport, map[*cfg.Loop]Induction) {
	var reports []BoundReport
	ind := map[*cfg.Loop]Induction{}
	for _, l := range g.Loops {
		iv, err := deriveLoop(g, cp, l)
		if err != nil {
			reports = append(reports, BoundReport{Loop: l, Reason: err.Error()})
			continue
		}
		l.Bound = iv.Count
		ind[l] = iv
		reports = append(reports, BoundReport{Loop: l, Derived: true})
	}
	return reports, ind
}

func deriveLoop(g *cfg.Graph, cp *ConstProp, l *cfg.Loop) (Induction, error) {
	entry := cp.AtLoopEntry(l)
	// Candidate controlling branches.
	for _, b := range blocksOf(l) {
		if b.Len() == 0 {
			continue
		}
		last := b.Insts()[b.Len()-1]
		if !last.IsBranch() || len(b.Succs) != 2 {
			continue
		}
		var taken, fall *cfg.Edge
		for _, e := range b.Succs {
			if e.Kind == cfg.EdgeTaken {
				taken = e
			} else {
				fall = e
			}
		}
		if taken == nil || fall == nil {
			continue
		}
		tIn, fIn := l.Contains(taken.To), l.Contains(fall.To)
		var contOnPred bool
		switch {
		case tIn && !fIn:
			contOnPred = true
		case !tIn && fIn:
			contOnPred = false
		default:
			continue // not a loop-controlling branch
		}
		// Safety: the modelled branch must dominate every back edge source
		// so that no iteration can continue without passing the test.
		controls := true
		for _, be := range l.BackEdges {
			if !b.Dominates(be.From) {
				controls = false
				break
			}
		}
		if !controls {
			continue
		}
		iv, err := deriveFromBranch(g, cp, l, b, last, contOnPred, entry)
		if err == nil {
			return iv, nil
		}
	}
	return Induction{}, fmt.Errorf("no derivable controlling branch (annotate with Facts)")
}

func deriveFromBranch(g *cfg.Graph, cp *ConstProp, l *cfg.Loop, branchBlk *cfg.Block,
	br isa.Inst, contOnPred bool, entry RegState) (Induction, error) {

	// Find the unique in-loop update of one of the branch operands.
	for _, indReg := range []isa.Reg{br.Rs1, br.Rs2} {
		if indReg == isa.R0 {
			continue
		}
		otherReg := br.Rs1
		if indReg == br.Rs1 {
			otherReg = br.Rs2
		}
		upd, updBlk, ok := uniqueUpdate(g, l, indReg)
		if !ok {
			continue
		}
		// The update must run exactly once per full iteration: its block
		// must belong directly to this loop (not a nested one) and
		// dominate every back-edge source.
		if updBlk.Loop() != l {
			continue
		}
		dominatesAll := true
		for _, be := range l.BackEdges {
			if !updBlk.Dominates(be.From) {
				dominatesAll = false
			}
		}
		if !dominatesAll {
			continue
		}
		// The other operand must be loop-invariant with a known constant.
		var k int32
		if otherReg == isa.R0 {
			k = 0
		} else {
			if writesInLoop(g, l, otherReg) > 0 {
				continue
			}
			v := entry.get(otherReg)
			if v.Kind != Const {
				continue
			}
			k = v.C
		}
		init := entry.get(indReg)
		if init.Kind != Const {
			continue
		}
		step := upd.Imm
		if step == 0 {
			continue
		}
		updateFirst := updBlk == branchBlk || updBlk.Dominates(branchBlk)
		count, err := simulateTrip(br, indReg, init.C, step, k, contOnPred, updateFirst)
		if err != nil {
			continue
		}
		return Induction{Reg: indReg, Init: init.C, Step: step, Count: count}, nil
	}
	return Induction{}, fmt.Errorf("branch operands not a recognized induction pattern")
}

// simulateTrip executes the scalar loop to count header executions.
func simulateTrip(br isa.Inst, indReg isa.Reg, init, step, k int32, contOnPred, updateFirst bool) (int, error) {
	cont := func(v int32) bool {
		var a, b int32
		if br.Rs1 == indReg {
			a, b = v, k
		} else {
			a, b = k, v
		}
		var pred bool
		switch br.Op {
		case isa.BEQ:
			pred = a == b
		case isa.BNE:
			pred = a != b
		case isa.BLT:
			pred = a < b
		case isa.BGE:
			pred = a >= b
		default:
			return false
		}
		if contOnPred {
			return pred
		}
		return !pred
	}
	v := init
	count := 0
	for {
		count++
		if count > maxTrip {
			return 0, fmt.Errorf("loop exceeds %d iterations", maxTrip)
		}
		if updateFirst {
			v += step
			if !cont(v) {
				return count, nil
			}
		} else {
			if !cont(v) {
				return count, nil
			}
			v += step
		}
	}
}

// uniqueUpdate finds the single instruction in the loop writing reg and
// requires it to be `addi reg, reg, imm`.
func uniqueUpdate(g *cfg.Graph, l *cfg.Loop, reg isa.Reg) (isa.Inst, *cfg.Block, bool) {
	var found isa.Inst
	var foundBlk *cfg.Block
	n := 0
	for _, b := range blocksOf(l) {
		for _, in := range b.Insts() {
			if writesReg(in, reg) {
				n++
				found, foundBlk = in, b
			}
		}
	}
	if n != 1 || found.Op != isa.ADDI || found.Rs1 != reg || found.Rd != reg {
		return isa.Inst{}, nil, false
	}
	return found, foundBlk, true
}

func writesInLoop(g *cfg.Graph, l *cfg.Loop, reg isa.Reg) int {
	n := 0
	for _, b := range blocksOf(l) {
		for _, in := range b.Insts() {
			if writesReg(in, reg) {
				n++
			}
		}
	}
	return n
}

// writesReg reports whether the instruction writes the register.
func writesReg(in isa.Inst, reg isa.Reg) bool {
	if reg == isa.R0 {
		return false
	}
	switch in.Op {
	case isa.LI, isa.MOV, isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM,
		isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL, isa.SRA, isa.SLT,
		isa.ADDI, isa.ANDI, isa.ORI, isa.SLLI, isa.SRLI, isa.SLTI, isa.LD:
		return in.Rd == reg
	case isa.CALL:
		return reg == isa.RA
	default:
		return false
	}
}

// blocksOf returns the loop's blocks in deterministic (RPO) order.
func blocksOf(l *cfg.Loop) []*cfg.Block {
	out := make([]*cfg.Block, 0, len(l.Blocks))
	for _, b := range l.Blocks {
		out = append(out, b)
	}
	// Sort by RPO for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].RPO() < out[j-1].RPO(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
