package flow

import (
	"paratime/internal/cfg"
	"paratime/internal/isa"
)

// RefKey identifies one memory-access instruction occurrence: block plus
// index within the block. Inlined copies of the same instruction get
// distinct keys (their blocks differ).
type RefKey struct {
	Block cfg.BlockID
	Idx   int
}

// AddrRange over-approximates the addresses one LD/ST instruction can
// touch across all executions. Known=false means the analysis could not
// bound the access; cache analysis must treat it as touching anything.
type AddrRange struct {
	Known  bool
	Lo, Hi uint32 // inclusive byte addresses of the first word accessed
	Stride uint32 // >= 4; address step between consecutive accesses
}

// Exact reports whether the range is a single address.
func (r AddrRange) Exact() bool { return r.Known && r.Lo == r.Hi }

// Addrs enumerates the word addresses in the range (Lo, Lo+Stride, ... Hi).
// Callers must only use it for Known ranges.
func (r AddrRange) Addrs() []uint32 {
	if !r.Known {
		return nil
	}
	stride := r.Stride
	if stride == 0 {
		stride = 4
	}
	var out []uint32
	for a := r.Lo; a <= r.Hi; a += stride {
		out = append(out, a)
		if a+stride < a { // overflow guard
			break
		}
	}
	return out
}

// AnalyzeAddrs computes an address range for every LD/ST in the graph.
// Three levels of precision:
//
//  1. The base register is a known constant at the access: exact address.
//  2. The base register is the induction register of an enclosing loop
//     with derived init/step/count: a strided range covering every
//     iteration (widened by one step for safety).
//  3. Otherwise: unknown.
func AnalyzeAddrs(g *cfg.Graph, cp *ConstProp, ind map[*cfg.Loop]Induction) map[RefKey]AddrRange {
	out := map[RefKey]AddrRange{}
	for _, b := range g.Blocks {
		if b.IsExit() {
			continue
		}
		s := cp.In[b.ID]
		for i, in := range b.Insts() {
			if in.IsMem() {
				out[RefKey{b.ID, i}] = rangeFor(b, in, s, ind)
			}
			s = TransferInst(in, s, b.Addr(i))
		}
	}
	return out
}

func rangeFor(b *cfg.Block, in isa.Inst, s RegState, ind map[*cfg.Loop]Induction) AddrRange {
	base := s.get(in.Rs1)
	if base.Kind == Const {
		a := uint32(base.C + in.Imm)
		return AddrRange{Known: true, Lo: a, Hi: a, Stride: 4}
	}
	// Walk enclosing loops innermost-out looking for an induction register
	// matching the base.
	for l := b.Loop(); l != nil; l = l.Parent {
		iv, ok := ind[l]
		if !ok || iv.Reg != in.Rs1 {
			continue
		}
		// Values taken: Init, Init+Step, ..., Init+Count*Step (one extra
		// step of widening keeps the range safe regardless of where in the
		// iteration the access sits relative to the update).
		first := int64(iv.Init)
		last := int64(iv.Init) + int64(iv.Step)*int64(iv.Count)
		lo, hi := first, last
		if lo > hi {
			lo, hi = hi, lo
		}
		stride := int64(iv.Step)
		if stride < 0 {
			stride = -stride
		}
		if stride == 0 || stride%4 != 0 {
			return AddrRange{}
		}
		return AddrRange{
			Known:  true,
			Lo:     uint32(lo + int64(in.Imm)),
			Hi:     uint32(hi + int64(in.Imm)),
			Stride: uint32(stride),
		}
	}
	return AddrRange{}
}
