package flow

import (
	"fmt"
	"maps"
	"sort"
	"strings"

	"paratime/internal/cfg"
)

// Rel is the comparison direction of an extra path constraint.
type Rel uint8

// Constraint relations.
const (
	RelLE Rel = iota
	RelGE
	RelEQ
)

// Term is one linear term over an execution count: exactly one of Edge or
// Block is set.
type Term struct {
	Coef  int64
	Edge  *cfg.Edge
	Block *cfg.Block
}

// Constraint is an extra linear flow fact over block/edge execution
// counts, fed verbatim into the IPET ILP (used to express infeasible
// paths, mutual-exclusion of branches, and interference budgets).
type Constraint struct {
	Name  string
	Terms []Term
	Rel   Rel
	RHS   int64
}

// Facts carries user-supplied flow annotations for a task: loop bounds by
// header label and extra linear constraints.
type Facts struct {
	// bounds by label; applied to every inlined copy of the loop.
	bounds map[string]int
	// Constraints are graph-specific extra path constraints.
	Constraints []Constraint
}

// NewFacts returns an empty annotation set.
func NewFacts() *Facts { return &Facts{bounds: map[string]int{}} }

// Bound annotates the loop whose header carries the given code label with
// a maximum header-execution count per loop entry.
func (f *Facts) Bound(label string, n int) *Facts {
	f.bounds[label] = n
	return f
}

// Constrain appends an extra linear constraint.
func (f *Facts) Constrain(c Constraint) *Facts {
	f.Constraints = append(f.Constraints, c)
	return f
}

// Bounds returns a copy of the annotated loop bounds by header label (nil
// when there are none). Serialization formats use it to externalize an
// annotation set; graph-bound Constraints are not covered.
func (f *Facts) Bounds() map[string]int {
	if f == nil || len(f.bounds) == 0 {
		return nil
	}
	return maps.Clone(f.bounds)
}

// Fingerprint returns a stable content key over the annotation set, used
// by the batch engine to memoize prepared analyses. Loop bounds are
// serialized by label; extra constraints are serialized structurally
// (coefficients, relation, RHS, and the IDs of the blocks and edges they
// reference), which distinguishes any two constraint sets over the same
// program. A nil receiver keys identically to an empty set.
func (f *Facts) Fingerprint() string {
	if f == nil {
		return ""
	}
	var sb strings.Builder
	labels := make([]string, 0, len(f.bounds))
	for l := range f.bounds {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(&sb, "b:%s=%d;", l, f.bounds[l])
	}
	for _, c := range f.Constraints {
		fmt.Fprintf(&sb, "c:%s,%d,%d", c.Name, c.Rel, c.RHS)
		for _, t := range c.Terms {
			switch {
			case t.Edge != nil:
				fmt.Fprintf(&sb, "|%d*e%d", t.Coef, t.Edge.ID)
			case t.Block != nil:
				fmt.Fprintf(&sb, "|%d*b%d", t.Coef, t.Block.ID)
			default:
				fmt.Fprintf(&sb, "|%d", t.Coef)
			}
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

// Apply writes annotated bounds into the graph's loops. A label matches
// every inlined copy of the loop (all copies share the header's original
// instruction index). Unknown labels and labels that match no loop header
// are errors, catching stale annotations.
func (f *Facts) Apply(g *cfg.Graph) error {
	// Sorted labels keep the first-error choice deterministic.
	labels := make([]string, 0, len(f.bounds))
	for l := range f.bounds {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, label := range labels {
		n := f.bounds[label]
		idx, ok := g.Prog.Labels[label]
		if !ok {
			return fmt.Errorf("flow fact: no label %q in program %q", label, g.Prog.Name)
		}
		matched := false
		for _, l := range g.Loops {
			if l.Header.Start == idx {
				l.Bound = n
				matched = true
			}
		}
		if !matched {
			return fmt.Errorf("flow fact: label %q is not a loop header", label)
		}
	}
	return nil
}

// CheckBounded verifies every loop has a bound (derived or annotated);
// WCET computation is impossible otherwise.
func CheckBounded(g *cfg.Graph) error {
	for _, l := range g.Loops {
		if l.Bound < 0 {
			return fmt.Errorf("loop %v in %q has no bound: annotate it or simplify the loop",
				l, g.Prog.Name)
		}
		if l.Bound == 0 {
			return fmt.Errorf("loop %v in %q has bound 0; headers execute at least once per entry",
				l, g.Prog.Name)
		}
	}
	return nil
}

// BoundAll is the standard preparation pipeline: propagate constants,
// derive bounds automatically, apply manual annotations (which override
// derived values), and verify completeness. It returns the constant
// propagation result and induction facts for reuse by address analysis.
func BoundAll(g *cfg.Graph, facts *Facts) (*ConstProp, map[*cfg.Loop]Induction, error) {
	cp := PropagateConstants(g)
	_, ind := DeriveBounds(g, cp)
	if facts != nil {
		if err := facts.Apply(g); err != nil {
			return nil, nil, err
		}
	}
	if err := CheckBounded(g); err != nil {
		return nil, nil, err
	}
	return cp, ind, nil
}
