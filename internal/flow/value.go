// Package flow computes the flow facts static WCET analysis consumes:
// loop bounds (derived automatically for counting loops or supplied as
// annotations), additional linear path constraints for IPET, and
// data-address information for data-cache analysis.
//
// The centre piece is a flow-sensitive constant-propagation analysis over
// the task CFG; loop-bound derivation and address analysis are built on
// top of it.
package flow

import (
	"fmt"

	"paratime/internal/cfg"
	"paratime/internal/isa"
)

// ValKind is the constant-propagation lattice level.
type ValKind uint8

// Lattice levels: Bot (unreached) ⊑ Const ⊑ Top (unknown).
const (
	Bot ValKind = iota
	Const
	Top
)

// Val is a lattice value for one register.
type Val struct {
	Kind ValKind
	C    int32 // valid when Kind == Const
}

// ConstVal returns a constant lattice value.
func ConstVal(c int32) Val { return Val{Kind: Const, C: c} }

// TopVal returns the unknown lattice value.
func TopVal() Val { return Val{Kind: Top} }

func (v Val) String() string {
	switch v.Kind {
	case Bot:
		return "⊥"
	case Const:
		return fmt.Sprint(v.C)
	default:
		return "⊤"
	}
}

// join is the lattice join (least upper bound).
func join(a, b Val) Val {
	switch {
	case a.Kind == Bot:
		return b
	case b.Kind == Bot:
		return a
	case a.Kind == Const && b.Kind == Const && a.C == b.C:
		return a
	default:
		return TopVal()
	}
}

// RegState is the abstract register file.
type RegState [isa.NumRegs]Val

func (s RegState) get(r isa.Reg) Val {
	if r == isa.R0 {
		return ConstVal(0)
	}
	return s[r]
}

func (s *RegState) set(r isa.Reg, v Val) {
	if r != isa.R0 {
		s[r] = v
	}
}

func joinState(a, b RegState) RegState {
	var out RegState
	for i := range out {
		out[i] = join(a[i], b[i])
	}
	return out
}

func stateEq(a, b RegState) bool { return a == b }

// ConstProp holds the result of constant propagation: the abstract
// register state at block entry and exit.
type ConstProp struct {
	g   *cfg.Graph
	In  map[cfg.BlockID]RegState
	Out map[cfg.BlockID]RegState
}

// PropagateConstants runs constant propagation to fixpoint. The entry
// state is all-unknown (except the hardwired zero register): a task's
// input registers are not assumed.
func PropagateConstants(g *cfg.Graph) *ConstProp {
	cp := &ConstProp{
		g:   g,
		In:  map[cfg.BlockID]RegState{},
		Out: map[cfg.BlockID]RegState{},
	}
	var topEntry RegState
	for i := range topEntry {
		topEntry[i] = TopVal()
	}
	blocks := g.RPO()
	cp.In[g.Entry.ID] = topEntry
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			in := cp.In[b.ID] // zero value = all Bot for unvisited non-entry
			if b != g.Entry {
				var acc RegState // all Bot
				for _, e := range b.Preds {
					acc = joinState(acc, cp.Out[e.From.ID])
				}
				in = acc
			}
			out := TransferBlock(b, in)
			if !stateEq(cp.In[b.ID], in) || !stateEq(cp.Out[b.ID], out) {
				cp.In[b.ID] = in
				cp.Out[b.ID] = out
				changed = true
			}
		}
	}
	return cp
}

// TransferBlock applies the block's instructions to an abstract state.
func TransferBlock(b *cfg.Block, in RegState) RegState {
	if b.IsExit() {
		return in
	}
	s := in
	for i, inst := range b.Insts() {
		s = TransferInst(inst, s, b.Addr(i))
	}
	return s
}

// TransferInst applies one instruction to an abstract state. addr is the
// instruction's address (needed for CALL's link-register effect).
func TransferInst(in isa.Inst, s RegState, addr uint32) RegState {
	bin := func(f func(a, b int32) int32) {
		a, b := s.get(in.Rs1), s.get(in.Rs2)
		if a.Kind == Const && b.Kind == Const {
			s.set(in.Rd, ConstVal(f(a.C, b.C)))
		} else {
			s.set(in.Rd, TopVal())
		}
	}
	imm := func(f func(a, b int32) int32) {
		a := s.get(in.Rs1)
		if a.Kind == Const {
			s.set(in.Rd, ConstVal(f(a.C, in.Imm)))
		} else {
			s.set(in.Rd, TopVal())
		}
	}
	switch in.Op {
	case isa.LI:
		s.set(in.Rd, ConstVal(in.Imm))
	case isa.MOV:
		s.set(in.Rd, s.get(in.Rs1))
	case isa.ADD:
		bin(func(a, b int32) int32 { return a + b })
	case isa.SUB:
		bin(func(a, b int32) int32 { return a - b })
	case isa.MUL:
		bin(func(a, b int32) int32 { return a * b })
	case isa.DIV:
		bin(divVal)
	case isa.REM:
		bin(remVal)
	case isa.AND:
		bin(func(a, b int32) int32 { return a & b })
	case isa.OR:
		bin(func(a, b int32) int32 { return a | b })
	case isa.XOR:
		bin(func(a, b int32) int32 { return a ^ b })
	case isa.SLL:
		bin(func(a, b int32) int32 { return a << (uint32(b) & 31) })
	case isa.SRL:
		bin(func(a, b int32) int32 { return int32(uint32(a) >> (uint32(b) & 31)) })
	case isa.SRA:
		bin(func(a, b int32) int32 { return a >> (uint32(b) & 31) })
	case isa.SLT:
		bin(func(a, b int32) int32 { return b2i(a < b) })
	case isa.ADDI:
		imm(func(a, b int32) int32 { return a + b })
	case isa.ANDI:
		imm(func(a, b int32) int32 { return a & b })
	case isa.ORI:
		imm(func(a, b int32) int32 { return a | b })
	case isa.SLLI:
		imm(func(a, b int32) int32 { return a << (uint32(b) & 31) })
	case isa.SRLI:
		imm(func(a, b int32) int32 { return int32(uint32(a) >> (uint32(b) & 31)) })
	case isa.SLTI:
		imm(func(a, b int32) int32 { return b2i(a < b) })
	case isa.LD:
		s.set(in.Rd, TopVal()) // memory is not tracked
	case isa.CALL:
		s.set(isa.RA, ConstVal(int32(addr+isa.InstBytes)))
	default:
		// ST, branches, J, RET, NOP, HALT: no register effect.
	}
	return s
}

func divVal(a, b int32) int32 {
	switch {
	case b == 0:
		return 0
	case a == -1<<31 && b == -1:
		return -1 << 31
	default:
		return a / b
	}
}

func remVal(a, b int32) int32 {
	switch {
	case b == 0:
		return 0
	case a == -1<<31 && b == -1:
		return 0
	default:
		return a % b
	}
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
