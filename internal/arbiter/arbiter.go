// Package arbiter implements the shared-bandwidth arbitration schemes the
// survey discusses (§5): round-robin (task isolation with the classic
// bound D = N·L − 1), TDMA slot tables (Rosén et al.), a multi-bandwidth
// weighted arbiter in the spirit of Bourgade et al.'s MBBA, and the PRET
// memory wheel.
//
// Every arbiter is simultaneously an analytical model — Bound(core)
// returns a worst-case grant delay usable as the BusDelay of a WCET
// analysis — and a cycle-level device driven by the simulator through
// Request, so each bound is validated against simulated behaviour.
package arbiter

import "fmt"

// Arbiter mediates access to a shared resource whose transactions occupy
// it for Latency() cycles.
//
// Simulation contract: Request(core, t) returns the grant time g >= t;
// the transaction occupies [g, g+Latency()). The simulator issues
// requests in non-decreasing time order across all cores (event order),
// and a core never has two outstanding transactions.
type Arbiter interface {
	Name() string
	Latency() int
	// Bound returns the worst-case delay between request and grant for
	// the given core (excluding the transaction's own latency).
	Bound(core int) int
	Request(core int, t int64) int64
	Reset()
}

// --- round robin -----------------------------------------------------------

// RoundRobin arbitrates among n cores with equal rights. Its delay bound
// is the survey's D = N·L − 1 (§5.3): at worst a request waits for one
// in-flight transaction minus one cycle plus one transaction from every
// other core.
type RoundRobin struct {
	n, lat    int
	busyUntil int64
}

// NewRoundRobin returns a round-robin arbiter for n cores and transaction
// latency lat.
func NewRoundRobin(n, lat int) *RoundRobin {
	if n <= 0 || lat <= 0 {
		panic(fmt.Sprintf("arbiter: bad round-robin geometry n=%d lat=%d", n, lat))
	}
	return &RoundRobin{n: n, lat: lat}
}

// Name implements Arbiter.
func (r *RoundRobin) Name() string { return fmt.Sprintf("rr(n=%d,L=%d)", r.n, r.lat) }

// Latency implements Arbiter.
func (r *RoundRobin) Latency() int { return r.lat }

// Bound implements Arbiter: D = N·L − 1.
func (r *RoundRobin) Bound(core int) int { return r.n*r.lat - 1 }

// Request implements Arbiter. With at most one outstanding transaction
// per core, first-come-first-served order realizes the round-robin bound.
func (r *RoundRobin) Request(core int, t int64) int64 {
	g := t
	if r.busyUntil > g {
		g = r.busyUntil
	}
	r.busyUntil = g + int64(r.lat)
	return g
}

// Reset implements Arbiter.
func (r *RoundRobin) Reset() { r.busyUntil = 0 }

// --- TDMA ------------------------------------------------------------------

// Slot is one TDMA table entry: Owner holds the bus for Len cycles.
type Slot struct {
	Owner int
	Len   int
}

// TDMA grants the bus according to a fixed, periodically repeated slot
// table (Rosén et al., §5.2). A transaction must fit entirely within one
// of its owner's slots.
type TDMA struct {
	name   string
	slots  []Slot
	period int64
	lat    int
	// lastGrantEnd serializes per-core transactions defensively.
	lastGrantEnd map[int]int64
}

// NewTDMA builds a TDMA arbiter. Every slot must be at least lat long.
func NewTDMA(slots []Slot, lat int) *TDMA {
	if len(slots) == 0 || lat <= 0 {
		panic("arbiter: empty TDMA table")
	}
	period := int64(0)
	for _, s := range slots {
		if s.Len < lat {
			panic(fmt.Sprintf("arbiter: TDMA slot len %d below latency %d", s.Len, lat))
		}
		period += int64(s.Len)
	}
	return &TDMA{
		name:         fmt.Sprintf("tdma(%d slots,P=%d,L=%d)", len(slots), period, lat),
		slots:        slots,
		period:       period,
		lat:          lat,
		lastGrantEnd: map[int]int64{},
	}
}

// NewWheel returns the PRET memory wheel: one lat-cycle window per thread,
// repeated round-robin (§5.3, Lickly et al.).
func NewWheel(n, lat int) *TDMA {
	slots := make([]Slot, n)
	for i := range slots {
		slots[i] = Slot{Owner: i, Len: lat}
	}
	t := NewTDMA(slots, lat)
	t.name = fmt.Sprintf("wheel(n=%d,L=%d)", n, lat)
	return t
}

// Name implements Arbiter.
func (t *TDMA) Name() string { return t.name }

// Latency implements Arbiter.
func (t *TDMA) Latency() int { return t.lat }

// grantAfter returns the earliest start >= at such that [start, start+lat)
// lies inside a slot owned by core.
func (t *TDMA) grantAfter(core int, at int64) int64 {
	// Walk slots starting from the one containing `at`; at most two
	// periods are needed to find an owned window.
	for tick := at; tick < at+2*t.period+int64(t.lat); {
		phase := tick % t.period
		var start int64
		for _, s := range t.slots {
			end := start + int64(s.Len)
			if phase < end {
				if s.Owner == core && end-phase >= int64(t.lat) {
					return tick
				}
				// Jump to the start of the next slot.
				tick += end - phase
				break
			}
			start = end
		}
	}
	panic(fmt.Sprintf("arbiter: %s has no slot for core %d", t.name, core))
}

// Bound implements Arbiter exactly, by boundary enumeration. The grant
// function g(p) = grantAfter(p) is a non-decreasing step function of the
// arrival phase, so the delay d(p) = g(p) − p is strictly decreasing on
// every interval where g is constant: d is maximized only at the left
// edge of such an interval. g changes value exactly where the set of
// feasible starts changes — at phase 0 and just past the last feasible
// start of each owned slot (start ≤ p ≤ end−lat) — so it suffices to
// probe those O(slots) phases instead of every phase in the period.
func (t *TDMA) Bound(core int) int {
	worst := t.grantAfter(core, 0) // == d(0); no slot starts at phase −1
	var start int64
	for _, s := range t.slots {
		end := start + int64(s.Len)
		if s.Owner == core {
			// First phase whose remaining window no longer fits a
			// transaction (slots are at least lat long, so this lies
			// inside or just past the slot).
			if p := (end - int64(t.lat) + 1) % t.period; p > 0 {
				if d := t.grantAfter(core, p) - p; d > worst {
					worst = d
				}
			}
		}
		start = end
	}
	return int(worst)
}

// SumOfOtherSlots is the coarse fallback bound the survey discusses for
// static analysis without offset tracking: the total length of all slots
// not owned by the core (plus the tail of an own slot too short to use).
func (t *TDMA) SumOfOtherSlots(core int) int {
	other := 0
	for _, s := range t.slots {
		if s.Owner != core {
			other += s.Len
		}
	}
	return other + t.lat - 1
}

// GrantAfter returns the earliest grant time >= at for the core, without
// the per-core serialization state (a pure query used by offset-set
// analyses).
func (t *TDMA) GrantAfter(core int, at int64) int64 { return t.grantAfter(core, at) }

// Period returns the schedule period.
func (t *TDMA) Period() int64 { return t.period }

// Request implements Arbiter.
func (t *TDMA) Request(core int, at int64) int64 {
	if end, ok := t.lastGrantEnd[core]; ok && at < end {
		at = end
	}
	g := t.grantAfter(core, at)
	t.lastGrantEnd[core] = g + int64(t.lat)
	return g
}

// Reset implements Arbiter.
func (t *TDMA) Reset() { t.lastGrantEnd = map[int]int64{} }

// OwnerAt returns which core owns the bus at an absolute cycle (testing
// and visualization helper).
func (t *TDMA) OwnerAt(cycle int64) int {
	phase := cycle % t.period
	var start int64
	for _, s := range t.slots {
		end := start + int64(s.Len)
		if phase < end {
			return s.Owner
		}
		start = end
	}
	return -1
}

// --- multi-bandwidth (MBBA-style) ------------------------------------------

// NewMultiBandwidth builds a weighted arbiter in the spirit of Bourgade
// et al.'s MBBA (§5.3): core i receives weight[i] transaction slots out of
// every Σweights, interleaved smoothly, so cores with heavier memory
// demand see proportionally tighter worst-case delays than a uniform
// round robin would give them.
//
// It is realized as a TDMA table built by smooth weighted round-robin,
// which preserves the workload-independent per-core bound that defines
// the survey's task-isolation category. (The original MBBA is a dynamic
// priority arbiter; the substitution keeps its defining property —
// heterogeneous per-core bounds — while staying statically analyzable.)
func NewMultiBandwidth(weights []int, lat int) *TDMA {
	total := 0
	for i, w := range weights {
		if w <= 0 {
			panic(fmt.Sprintf("arbiter: weight[%d] = %d", i, w))
		}
		total += w
	}
	credit := make([]int, len(weights))
	var slots []Slot
	for k := 0; k < total; k++ {
		best := 0
		for i := range weights {
			credit[i] += weights[i]
			if credit[i] > credit[best] {
				best = i
			}
		}
		credit[best] -= total
		slots = append(slots, Slot{Owner: best, Len: lat})
	}
	t := NewTDMA(slots, lat)
	t.name = fmt.Sprintf("mbba(w=%v,L=%d)", weights, lat)
	return t
}
