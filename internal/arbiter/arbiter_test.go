package arbiter

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestRoundRobinBoundFormula(t *testing.T) {
	for _, tc := range []struct{ n, l, want int }{
		{1, 5, 4}, {2, 5, 9}, {4, 5, 19}, {8, 2, 15},
	} {
		a := NewRoundRobin(tc.n, tc.l)
		if got := a.Bound(0); got != tc.want {
			t.Errorf("rr(%d,%d) bound = %d, want N*L-1 = %d", tc.n, tc.l, got, tc.want)
		}
	}
}

// driveRandom replays a random request pattern (each core sequential, at
// most one outstanding) and returns per-request waits plus grant windows.
func driveRandom(t *testing.T, a Arbiter, n int, seed int64) (waits []int64, grants [][2]int64, byCore map[int][][2]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nextFree := make([]int64, n) // per-core: earliest next request time
	type req struct {
		core int
		t    int64
	}
	var pending []req
	for i := 0; i < n; i++ {
		pending = append(pending, req{i, int64(rng.Intn(5))})
	}
	byCore = map[int][][2]int64{}
	for step := 0; step < 300; step++ {
		// Pop the earliest request (ties by core id).
		sort.Slice(pending, func(i, j int) bool {
			if pending[i].t != pending[j].t {
				return pending[i].t < pending[j].t
			}
			return pending[i].core < pending[j].core
		})
		r := pending[0]
		pending = pending[1:]
		g := a.Request(r.core, r.t)
		if g < r.t {
			t.Fatalf("%s: grant %d before request %d", a.Name(), g, r.t)
		}
		waits = append(waits, g-r.t)
		win := [2]int64{g, g + int64(a.Latency())}
		grants = append(grants, win)
		byCore[r.core] = append(byCore[r.core], win)
		nextFree[r.core] = win[1] + int64(rng.Intn(7))
		pending = append(pending, req{r.core, nextFree[r.core]})
	}
	return waits, grants, byCore
}

func assertNoOverlap(t *testing.T, name string, grants [][2]int64) {
	t.Helper()
	sorted := append([][2]int64(nil), grants...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i][0] < sorted[i-1][1] {
			t.Fatalf("%s: overlapping grants %v and %v", name, sorted[i-1], sorted[i])
		}
	}
}

func TestRoundRobinSimulatedWaitWithinBound(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		a := NewRoundRobin(n, 4)
		for seed := int64(0); seed < 5; seed++ {
			a.Reset()
			waits, grants, _ := driveRandom(t, a, n, seed)
			assertNoOverlap(t, a.Name(), grants)
			for _, w := range waits {
				if w > int64(a.Bound(0)) {
					t.Fatalf("rr n=%d: wait %d exceeds bound %d", n, w, a.Bound(0))
				}
			}
		}
	}
}

func TestTDMAGrantsStayInOwnSlots(t *testing.T) {
	a := NewTDMA([]Slot{{0, 6}, {1, 4}, {2, 8}}, 3)
	for seed := int64(0); seed < 5; seed++ {
		a.Reset()
		_, grants, byCore := driveRandom(t, a, 3, seed)
		assertNoOverlap(t, a.Name(), grants)
		for core, wins := range byCore {
			for _, w := range wins {
				for c := w[0]; c < w[1]; c++ {
					if a.OwnerAt(c) != core {
						t.Fatalf("core %d transaction at cycle %d in slot of core %d",
							core, c, a.OwnerAt(c))
					}
				}
			}
		}
	}
}

func TestTDMASimulatedWaitWithinBound(t *testing.T) {
	a := NewTDMA([]Slot{{0, 6}, {1, 4}, {2, 8}}, 3)
	bounds := map[int]int64{}
	for c := 0; c < 3; c++ {
		bounds[c] = int64(a.Bound(c))
	}
	for seed := int64(0); seed < 8; seed++ {
		a.Reset()
		rng := rand.New(rand.NewSource(seed))
		for step := 0; step < 200; step++ {
			core := rng.Intn(3)
			at := int64(rng.Intn(1000))
			// Per-core serialization may push the request; the bound is
			// defined relative to the effective request time.
			eff := at
			if end, ok := a.lastGrantEnd[core]; ok && end > eff {
				eff = end
			}
			g := a.Request(core, at)
			if g-eff > bounds[core] {
				t.Fatalf("tdma core %d: wait %d beyond bound %d", core, g-eff, bounds[core])
			}
		}
	}
}

func TestTDMABoundTightness(t *testing.T) {
	// Single slot per owner, equal lengths = the PRET wheel: worst wait is
	// period - 1 when the request arrives one cycle into its own window...
	// exactly: misses its slot start by one and must wait almost a period.
	w := NewWheel(4, 5)
	want := int(w.period) - w.lat // arrive right after the usable start
	if got := w.Bound(0); got < want-1 || got > int(w.period) {
		t.Errorf("wheel bound = %d, want about %d", got, want)
	}
	// The coarse fallback can be worse than or equal to the exact bound
	// minus slack, never smaller than other slots' sum.
	if w.SumOfOtherSlots(0) < 3*5 {
		t.Errorf("sum-of-other-slots = %d", w.SumOfOtherSlots(0))
	}
}

func TestTDMABoundPhaseExactness(t *testing.T) {
	a := NewTDMA([]Slot{{0, 4}, {1, 7}, {0, 3}, {2, 5}}, 3)
	for core := 0; core < 3; core++ {
		bound := a.Bound(core)
		// Brute force over every phase must match (Bound is defined as
		// that maximum).
		worst := int64(0)
		for phase := int64(0); phase < a.period; phase++ {
			d := a.grantAfter(core, phase) - phase
			if d > worst {
				worst = d
			}
		}
		if int64(bound) != worst {
			t.Errorf("core %d bound %d != brute force %d", core, bound, worst)
		}
	}
}

func TestMultiBandwidthSharesAndBounds(t *testing.T) {
	weights := []int{4, 2, 1, 1}
	a := NewMultiBandwidth(weights, 2)
	// Slot shares must follow the weights exactly.
	counts := map[int]int{}
	for _, s := range a.slots {
		counts[s.Owner] += s.Len
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := w * 2
		if counts[i] != want {
			t.Errorf("core %d got %d cycles per frame, want %d", i, counts[i], want)
		}
	}
	_ = total
	// Heavier cores must have no worse bounds than lighter ones.
	if a.Bound(0) > a.Bound(2) {
		t.Errorf("heavy core bound %d worse than light core %d", a.Bound(0), a.Bound(2))
	}
	// Versus uniform round robin over 4 cores with same latency, the
	// heavy core's bound must be tighter.
	rr := NewRoundRobin(4, 2)
	if a.Bound(0) >= rr.Bound(0)+a.Latency() {
		t.Errorf("mbba heavy bound %d not competitive with rr %d", a.Bound(0), rr.Bound(0))
	}
}

func TestMultiBandwidthGrantIsolation(t *testing.T) {
	a := NewMultiBandwidth([]int{3, 1}, 2)
	for seed := int64(0); seed < 5; seed++ {
		a.Reset()
		_, grants, _ := driveRandom(t, a, 2, seed)
		assertNoOverlap(t, a.Name(), grants)
	}
}

func TestWheelIsFairTDMA(t *testing.T) {
	w := NewWheel(6, 3)
	for c := 0; c < 6; c++ {
		if w.Bound(c) != w.Bound(0) {
			t.Errorf("wheel bounds differ across threads: %d vs %d", w.Bound(c), w.Bound(0))
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() { _ = recover() }()
		f()
		t.Error("expected panic")
	}
	mustPanic(func() { NewRoundRobin(0, 1) })
	mustPanic(func() { NewTDMA(nil, 1) })
	mustPanic(func() { NewTDMA([]Slot{{0, 2}}, 3) }) // slot shorter than latency
	mustPanic(func() { NewMultiBandwidth([]int{1, 0}, 1) })
}

// bruteForceBound is the retired O(period) implementation of TDMA.Bound:
// exact enumeration of every arrival phase. It is the oracle the
// boundary-enumeration rewrite must match bit for bit.
func bruteForceBound(t *TDMA, core int) int {
	worst := int64(0)
	for phase := int64(0); phase < t.Period(); phase++ {
		d := t.GrantAfter(core, phase) - phase
		if d > worst {
			worst = d
		}
	}
	return int(worst)
}

// TestTDMABoundMatchesBruteForce pins the boundary-enumeration Bound to
// the phase-exhaustive oracle on the canonical table shapes: PRET
// wheels, MBBA weighted tables, and random ragged slot tables with
// multiple slots per owner and idle owners interleaved.
func TestTDMABoundMatchesBruteForce(t *testing.T) {
	check := func(name string, tab *TDMA, cores int) {
		t.Helper()
		for c := 0; c < cores; c++ {
			if got, want := tab.Bound(c), bruteForceBound(tab, c); got != want {
				t.Errorf("%s core %d: Bound %d, brute force %d", name, c, got, want)
			}
		}
	}
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, lat := range []int{1, 2, 7, 16} {
			check(fmt.Sprintf("wheel n=%d L=%d", n, lat), NewWheel(n, lat), n)
		}
	}
	for _, w := range [][]int{{1, 1}, {4, 2, 1, 1}, {7, 3, 2}, {1, 5}, {2, 2, 2, 1, 1}} {
		for _, lat := range []int{1, 3, 6} {
			check(fmt.Sprintf("mbba w=%v L=%d", w, lat), NewMultiBandwidth(w, lat), len(w))
		}
	}
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		lat := 1 + rng.Intn(9)
		owners := 1 + rng.Intn(4)
		nslots := 1 + rng.Intn(6)
		slots := make([]Slot, nslots)
		for i := range slots {
			slots[i] = Slot{Owner: rng.Intn(owners), Len: lat + rng.Intn(3*lat)}
		}
		// Only owners that appear in the table may be probed (others panic,
		// in both implementations).
		present := map[int]bool{}
		for _, s := range slots {
			present[s.Owner] = true
		}
		tab := NewTDMA(slots, lat)
		for c := range present {
			if got, want := tab.Bound(c), bruteForceBound(tab, c); got != want {
				t.Fatalf("trial %d (%s) core %d: Bound %d, brute force %d\nslots %+v lat %d",
					trial, tab.Name(), c, got, want, slots, lat)
			}
		}
	}
}

// TestTDMABoundAdjacentOwnedSlots covers the boundary case where one
// owner holds consecutive slots, so a window that no longer fits in the
// first slot is immediately feasible in the second.
func TestTDMABoundAdjacentOwnedSlots(t *testing.T) {
	tab := NewTDMA([]Slot{{Owner: 0, Len: 8}, {Owner: 0, Len: 8}, {Owner: 1, Len: 4}}, 4)
	for c := 0; c < 2; c++ {
		if got, want := tab.Bound(c), bruteForceBound(tab, c); got != want {
			t.Errorf("core %d: Bound %d, brute force %d", c, got, want)
		}
	}
}
