package workload

import (
	"slices"
	"strings"
	"testing"
)

// TestSetNamesSortedAndResolvable: the vocabulary is sorted, contains
// "suite", and every listed name resolves.
func TestSetNamesSortedAndResolvable(t *testing.T) {
	names := SetNames()
	if !slices.IsSorted(names) {
		t.Errorf("SetNames() not sorted: %v", names)
	}
	if !slices.Contains(names, "suite") {
		t.Errorf("SetNames() missing \"suite\": %v", names)
	}
	for _, name := range names {
		if _, err := Set(name); err != nil {
			t.Errorf("Set(%q): %v", name, err)
		}
	}
}

// TestSetComposite: "+"-joined sets materialize components at disjoint
// slots in list order, deterministically.
func TestSetComposite(t *testing.T) {
	tasks, err := Set("fib24+crc16")
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 || tasks[0].Name != "fib24" || tasks[1].Name != "crc16" {
		t.Fatalf("fib24+crc16 = %v", tasks)
	}
	// Same name, same bytes: the programs must be identical across calls.
	again, err := Set("fib24+crc16")
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if tasks[i].Prog.Fingerprint() != again[i].Prog.Fingerprint() {
			t.Errorf("task %d differs between identical Set calls", i)
		}
	}
	// Component order is position-significant: crc16 at slot 0 is a
	// different program image than crc16 at slot 1.
	rev, err := Set("crc16+fib24")
	if err != nil {
		t.Fatal(err)
	}
	if rev[0].Prog.Fingerprint() == tasks[1].Prog.Fingerprint() {
		t.Error("crc16 at slot 0 and slot 1 produced the same image")
	}
}

// TestSetSuiteMatchesSuite: the "suite" name is exactly Suite().
func TestSetSuiteMatchesSuite(t *testing.T) {
	tasks, err := Set("suite")
	if err != nil {
		t.Fatal(err)
	}
	want := Suite()
	if len(tasks) != len(want) {
		t.Fatalf("Set(suite) has %d tasks, Suite() has %d", len(tasks), len(want))
	}
	for i := range tasks {
		if tasks[i].Name != want[i].Name {
			t.Errorf("task %d: %q vs %q", i, tasks[i].Name, want[i].Name)
		}
	}
}

// TestSetUnknown: unknown names error and the message teaches the
// vocabulary.
func TestSetUnknown(t *testing.T) {
	for _, name := range []string{"nosuch", "fib24+nosuch", ""} {
		_, err := Set(name)
		if err == nil {
			t.Errorf("Set(%q) accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "suite") {
			t.Errorf("Set(%q) error does not list vocabulary: %v", name, err)
		}
	}
}
