package workload

import (
	"testing"

	"paratime/internal/core"
	"paratime/internal/isa"
	"paratime/internal/memctrl"
	"paratime/internal/pipeline"
	"paratime/internal/sim"
)

// TestSuiteRunsAndVerifies executes every benchmark architecturally and
// checks functional postconditions where they are cheap to state.
func TestSuiteRunsAndVerifies(t *testing.T) {
	for _, task := range Suite() {
		st := isa.NewState(task.Prog)
		if _, err := st.Run(10_000_000); err != nil {
			t.Fatalf("%s: %v", task.Name, err)
		}
	}
}

func TestFibComputesFibonacci(t *testing.T) {
	task := Fib(10, Slot(0))
	st := isa.NewState(task.Prog)
	if _, err := st.Run(100000); err != nil {
		t.Fatal(err)
	}
	// After n iterations: r1 = fib(n) with fib(0)=0, fib(1)=1.
	if st.Reg[isa.R1] != 55 {
		t.Errorf("fib(10) = %d, want 55", st.Reg[isa.R1])
	}
}

func TestBSortSorts(t *testing.T) {
	task := BSort(12, Slot(0))
	st := isa.NewState(task.Prog)
	if _, err := st.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	base := task.Prog.DataLabels["arr"]
	prev := int32(-1 << 30)
	for i := 0; i < 12; i++ {
		v := st.Mem[base+uint32(i)*4]
		if v < prev {
			t.Fatalf("arr[%d] = %d < %d: not sorted", i, v, prev)
		}
		prev = v
	}
}

func TestMatMultCorrect(t *testing.T) {
	n := 4
	task := MatMult(n, Slot(0))
	st := isa.NewState(task.Prog)
	if _, err := st.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	a := task.Prog.DataLabels["A"]
	bb := task.Prog.DataLabels["B"]
	c := task.Prog.DataLabels["C"]
	get := func(base uint32, i, j int) int32 { return st.Mem[base+uint32((i*n+j)*4)] }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want int32
			for k := 0; k < n; k++ {
				want += get(a, i, k) * get(bb, k, j)
			}
			if got := get(c, i, j); got != want {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestMemCopyCopies(t *testing.T) {
	task := MemCopy(32, Slot(0))
	st := isa.NewState(task.Prog)
	if _, err := st.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	src := task.Prog.DataLabels["src"]
	dst := task.Prog.DataLabels["dst"]
	for i := uint32(0); i < 32; i++ {
		if st.Mem[src+i*4] != st.Mem[dst+i*4] {
			t.Fatalf("word %d not copied", i)
		}
	}
}

// TestSuiteAnalyzesAndBoundIsSound analyzes every benchmark and checks
// WCET >= simulated cycles — the suite-wide E1 property.
func TestSuiteAnalyzesAndBoundIsSound(t *testing.T) {
	sys := core.DefaultSystem()
	sys.Mem.MemLatency = memctrl.DefaultConfig().Bound()
	for _, task := range Suite() {
		a, err := core.Analyze(task, sys)
		if err != nil {
			t.Fatalf("%s: %v", task.Name, err)
		}
		simSys := sim.System{
			Cores: []sim.CoreConfig{{
				Name: task.Name, Prog: task.Prog,
				Pipe: pipeline.DefaultConfig(),
				L1I:  sys.Mem.L1I, L1D: sys.Mem.L1D,
			}},
			L2:  sys.Mem.L2,
			Mem: memctrl.DefaultConfig(),
		}
		res, err := sim.Run(simSys, 100_000_000)
		if err != nil {
			t.Fatalf("%s: %v", task.Name, err)
		}
		if a.WCET < res.Cycles(0) {
			t.Errorf("%s: UNSOUND WCET %d < sim %d", task.Name, a.WCET, res.Cycles(0))
		}
		if a.WCET > res.Cycles(0)*30 {
			t.Errorf("%s: WCET %d implausibly loose vs sim %d", task.Name, a.WCET, res.Cycles(0))
		}
	}
}

func TestRandomProgramsAnalyzable(t *testing.T) {
	sys := core.DefaultSystem()
	sys.Mem.MemLatency = memctrl.DefaultConfig().Bound()
	for seed := int64(0); seed < 20; seed++ {
		task := Random(seed, Slot(0))
		a, err := core.Analyze(task, sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		simSys := sim.System{
			Cores: []sim.CoreConfig{{
				Name: task.Name, Prog: task.Prog,
				Pipe: pipeline.DefaultConfig(),
				L1I:  sys.Mem.L1I, L1D: sys.Mem.L1D,
			}},
			L2:  sys.Mem.L2,
			Mem: memctrl.DefaultConfig(),
		}
		res, err := sim.Run(simSys, 100_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.WCET < res.Cycles(0) {
			t.Errorf("seed %d: UNSOUND WCET %d < sim %d", seed, a.WCET, res.Cycles(0))
		}
	}
}

func TestSlotsDisjoint(t *testing.T) {
	tasks := Suite()
	for i := range tasks {
		for j := i + 1; j < len(tasks); j++ {
			a, b := tasks[i].Prog, tasks[j].Prog
			if a.Base < b.End() && b.Base < a.End() {
				t.Errorf("%s and %s text overlap", a.Name, b.Name)
			}
			for addr := range a.Data {
				if _, clash := b.Data[addr]; clash {
					t.Errorf("%s and %s data overlap at 0x%x", a.Name, b.Name, addr)
				}
			}
		}
	}
}
