// Package workload provides the benchmark tasks the paratime experiments
// run: a Mälardalen-flavoured suite of small kernels (all loop bounds
// statically derivable or annotated) and a seeded generator of random
// structured programs for property testing. Every builder takes a text
// and data base so co-scheduled tasks occupy disjoint address ranges.
package workload

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"

	"paratime/internal/core"
	"paratime/internal/flow"
	"paratime/internal/isa"
)

// Bases identifies where a task lives in the address space.
type Bases struct {
	Text uint32
	Data uint32
}

// Slot returns canonical disjoint bases for co-scheduled task i. The
// bases are staggered by a non-multiple of common set counts so that
// co-scheduled tasks spread over different shared-cache sets instead of
// aliasing onto the same ones.
func Slot(i int) Bases {
	return Bases{
		Text: 0x1000 + uint32(i)*0x4000 + uint32(i)*0x220,
		Data: 0x0010_0000 + uint32(i)*0x1_0000 + uint32(i)*0x460,
	}
}

// Fib returns an iterative Fibonacci task: n additions in a counting loop.
func Fib(n int, at Bases) core.Task {
	b := isa.NewBuilder(fmt.Sprintf("fib%d", n)).SetBase(at.Text)
	b.SetDataBase(at.Data)
	b.Li(isa.R1, 0). // a
				Li(isa.R2, 1). // b
				Li(isa.R3, int32(n))
	b.Label("loop").
		Op3(isa.ADD, isa.R4, isa.R1, isa.R2).
		Mov(isa.R1, isa.R2).
		Mov(isa.R2, isa.R4).
		OpI(isa.ADDI, isa.R3, isa.R3, -1).
		Br(isa.BNE, isa.R3, isa.R0, "loop").
		Halt()
	p := mustProg(b)
	return core.Task{Name: p.Name, Prog: p}
}

// MatMult returns an n×n integer matrix multiply (three nested loops,
// strided array walks through A, B and C).
func MatMult(n int, at Bases) core.Task {
	b := isa.NewBuilder(fmt.Sprintf("matmult%d", n)).SetBase(at.Text)
	b.SetDataBase(at.Data)
	elems := make([]int32, n*n)
	for i := range elems {
		elems[i] = int32(i%7 + 1)
	}
	b.DataWords("A", elems...)
	b.DataWords("B", elems...)
	b.DataWords("C", make([]int32, n*n)...)
	stride := int32(4)
	rowBytes := int32(n) * 4
	// r1=i, r2=j, r3=k, r5=&A[i][0], r6=&B[0][j], r7=acc, r8=&C[i][j]
	b.Li(isa.R1, 0)
	b.Label("iloop").Li(isa.R2, 0)
	b.Label("jloop").Li(isa.R3, 0).Li(isa.R7, 0)
	// r5 = A + i*rowBytes ; r6 = B + j*4
	b.La(isa.R5, "A").Li(isa.R9, rowBytes).Op3(isa.MUL, isa.R10, isa.R1, isa.R9).Op3(isa.ADD, isa.R5, isa.R5, isa.R10)
	b.La(isa.R6, "B").Li(isa.R9, stride).Op3(isa.MUL, isa.R10, isa.R2, isa.R9).Op3(isa.ADD, isa.R6, isa.R6, isa.R10)
	b.Label("kloop").
		Ld(isa.R11, isa.R5, 0).
		Ld(isa.R12, isa.R6, 0).
		Op3(isa.MUL, isa.R11, isa.R11, isa.R12).
		Op3(isa.ADD, isa.R7, isa.R7, isa.R11).
		OpI(isa.ADDI, isa.R5, isa.R5, stride).
		OpI(isa.ADDI, isa.R6, isa.R6, rowBytes) // next row of B
	b.OpI(isa.ADDI, isa.R3, isa.R3, 1).
		Li(isa.R9, int32(n)).
		Br(isa.BLT, isa.R3, isa.R9, "kloop")
	// C[i][j] = acc
	b.La(isa.R8, "C").Li(isa.R9, rowBytes).Op3(isa.MUL, isa.R10, isa.R1, isa.R9).Op3(isa.ADD, isa.R8, isa.R8, isa.R10)
	b.Li(isa.R9, stride).Op3(isa.MUL, isa.R10, isa.R2, isa.R9).Op3(isa.ADD, isa.R8, isa.R8, isa.R10)
	b.St(isa.R7, isa.R8, 0)
	b.OpI(isa.ADDI, isa.R2, isa.R2, 1).
		Li(isa.R9, int32(n)).
		Br(isa.BLT, isa.R2, isa.R9, "jloop")
	b.OpI(isa.ADDI, isa.R1, isa.R1, 1).
		Li(isa.R9, int32(n)).
		Br(isa.BLT, isa.R1, isa.R9, "iloop")
	b.Halt()
	prog := mustProg(b)
	facts := flow.NewFacts().
		Bound("kloop", n).
		Bound("jloop", n).
		Bound("iloop", n)
	return core.Task{Name: prog.Name, Prog: prog, Facts: facts}
}

// BSort returns a non-adaptive bubble sort over n elements (full passes,
// so every loop bound is derivable).
func BSort(n int, at Bases) core.Task {
	b := isa.NewBuilder(fmt.Sprintf("bsort%d", n)).SetBase(at.Text)
	b.SetDataBase(at.Data)
	elems := make([]int32, n)
	for i := range elems {
		elems[i] = int32((n*13 - i*7) % 50)
	}
	b.DataWords("arr", elems...)
	// r1 = pass counter, r2 = &arr[j], r3 = limit pointer
	b.Li(isa.R1, int32(n-1))
	b.Label("pass").La(isa.R2, "arr")
	b.La(isa.R3, "arr").OpI(isa.ADDI, isa.R3, isa.R3, int32((n-1)*4))
	b.Label("inner").
		Ld(isa.R4, isa.R2, 0).
		Ld(isa.R5, isa.R2, 4).
		Br(isa.BGE, isa.R5, isa.R4, "noswap").
		St(isa.R5, isa.R2, 0).
		St(isa.R4, isa.R2, 4)
	b.Label("noswap").
		OpI(isa.ADDI, isa.R2, isa.R2, 4).
		Br(isa.BNE, isa.R2, isa.R3, "inner").
		OpI(isa.ADDI, isa.R1, isa.R1, -1).
		Br(isa.BNE, isa.R1, isa.R0, "pass").
		Halt()
	return core.Task{Name: fmt.Sprintf("bsort%d", n), Prog: mustProg(b)}
}

// CRC returns a bitwise CRC-8 over an n-byte message (outer loop over
// bytes, fixed 8-iteration inner loop).
func CRC(n int, at Bases) core.Task {
	b := isa.NewBuilder(fmt.Sprintf("crc%d", n)).SetBase(at.Text)
	b.SetDataBase(at.Data)
	msg := make([]int32, n)
	for i := range msg {
		msg[i] = int32((i*37 + 11) & 0xff)
	}
	b.DataWords("msg", msg...)
	// r1=crc, r2=&msg[i], r3=end, r4=byte, r5=bit counter, r6=poly
	b.Li(isa.R1, 0).Li(isa.R6, 0x07)
	b.La(isa.R2, "msg")
	b.La(isa.R3, "msg").OpI(isa.ADDI, isa.R3, isa.R3, int32(n*4))
	b.Label("byte").
		Ld(isa.R4, isa.R2, 0).
		Op3(isa.XOR, isa.R1, isa.R1, isa.R4).
		Li(isa.R5, 8)
	b.Label("bit").
		OpI(isa.ANDI, isa.R7, isa.R1, 0x80).
		OpI(isa.SLLI, isa.R1, isa.R1, 1).
		Br(isa.BEQ, isa.R7, isa.R0, "nopoly").
		Op3(isa.XOR, isa.R1, isa.R1, isa.R6)
	b.Label("nopoly").
		OpI(isa.ANDI, isa.R1, isa.R1, 0xff).
		OpI(isa.ADDI, isa.R5, isa.R5, -1).
		Br(isa.BNE, isa.R5, isa.R0, "bit").
		OpI(isa.ADDI, isa.R2, isa.R2, 4).
		Br(isa.BNE, isa.R2, isa.R3, "byte").
		Halt()
	return core.Task{Name: fmt.Sprintf("crc%d", n), Prog: mustProg(b)}
}

// FIR returns an order-k FIR filter over an n-sample signal.
func FIR(n, k int, at Bases) core.Task {
	b := isa.NewBuilder(fmt.Sprintf("fir%dx%d", n, k)).SetBase(at.Text)
	b.SetDataBase(at.Data)
	sig := make([]int32, n+k)
	for i := range sig {
		sig[i] = int32(i%9 - 4)
	}
	coef := make([]int32, k)
	for i := range coef {
		coef[i] = int32(i + 1)
	}
	b.DataWords("sig", sig...)
	b.DataWords("coef", coef...)
	b.DataWords("out", make([]int32, n)...)
	// r1 = sample idx, r2 = tap idx, r7 = acc
	b.Li(isa.R1, 0)
	b.Label("sample").Li(isa.R2, 0).Li(isa.R7, 0)
	b.Label("tap").
		La(isa.R5, "sig").
		Op3(isa.ADD, isa.R6, isa.R1, isa.R2).
		OpI(isa.SLLI, isa.R6, isa.R6, 2).
		Op3(isa.ADD, isa.R5, isa.R5, isa.R6).
		Ld(isa.R8, isa.R5, 0).
		La(isa.R5, "coef").
		OpI(isa.SLLI, isa.R6, isa.R2, 2).
		Op3(isa.ADD, isa.R5, isa.R5, isa.R6).
		Ld(isa.R9, isa.R5, 0).
		Op3(isa.MUL, isa.R8, isa.R8, isa.R9).
		Op3(isa.ADD, isa.R7, isa.R7, isa.R8).
		OpI(isa.ADDI, isa.R2, isa.R2, 1).
		OpI(isa.SLTI, isa.R10, isa.R2, int32(k)).
		Br(isa.BNE, isa.R10, isa.R0, "tap")
	b.La(isa.R5, "out").
		OpI(isa.SLLI, isa.R6, isa.R1, 2).
		Op3(isa.ADD, isa.R5, isa.R5, isa.R6).
		St(isa.R7, isa.R5, 0).
		OpI(isa.ADDI, isa.R1, isa.R1, 1).
		OpI(isa.SLTI, isa.R10, isa.R1, int32(n)).
		Br(isa.BNE, isa.R10, isa.R0, "sample").
		Halt()
	facts := flow.NewFacts().Bound("tap", k).Bound("sample", n)
	return core.Task{Name: fmt.Sprintf("fir%dx%d", n, k), Prog: mustProg(b), Facts: facts}
}

// MemCopy copies n words between disjoint arrays.
func MemCopy(n int, at Bases) core.Task {
	b := isa.NewBuilder(fmt.Sprintf("memcopy%d", n)).SetBase(at.Text)
	b.SetDataBase(at.Data)
	src := make([]int32, n)
	for i := range src {
		src[i] = int32(i)
	}
	b.DataWords("src", src...)
	b.DataWords("dst", make([]int32, n)...)
	b.La(isa.R1, "src").La(isa.R2, "dst")
	b.La(isa.R3, "src").OpI(isa.ADDI, isa.R3, isa.R3, int32(n*4))
	b.Label("loop").
		Ld(isa.R4, isa.R1, 0).
		St(isa.R4, isa.R2, 0).
		OpI(isa.ADDI, isa.R1, isa.R1, 4).
		OpI(isa.ADDI, isa.R2, isa.R2, 4).
		Br(isa.BNE, isa.R1, isa.R3, "loop").
		Halt()
	return core.Task{Name: fmt.Sprintf("memcopy%d", n), Prog: mustProg(b)}
}

// CountBits counts set bits over n words with an inner bit loop.
func CountBits(n int, at Bases) core.Task {
	b := isa.NewBuilder(fmt.Sprintf("countbits%d", n)).SetBase(at.Text)
	b.SetDataBase(at.Data)
	words := make([]int32, n)
	for i := range words {
		words[i] = int32(i*2654435761 + 12345)
	}
	b.DataWords("w", words...)
	b.La(isa.R1, "w")
	b.La(isa.R2, "w").OpI(isa.ADDI, isa.R2, isa.R2, int32(n*4))
	b.Li(isa.R7, 0)
	b.Label("word").Ld(isa.R3, isa.R1, 0).Li(isa.R4, 32)
	b.Label("bit").
		OpI(isa.ANDI, isa.R5, isa.R3, 1).
		Op3(isa.ADD, isa.R7, isa.R7, isa.R5).
		OpI(isa.SRLI, isa.R3, isa.R3, 1).
		OpI(isa.ADDI, isa.R4, isa.R4, -1).
		Br(isa.BNE, isa.R4, isa.R0, "bit").
		OpI(isa.ADDI, isa.R1, isa.R1, 4).
		Br(isa.BNE, isa.R1, isa.R2, "word").
		Halt()
	return core.Task{Name: fmt.Sprintf("countbits%d", n), Prog: mustProg(b)}
}

// Thrasher writes stride-spaced lines across span bytes — the adversarial
// co-runner of the shared-cache experiments.
func Thrasher(span, stride int, at Bases) core.Task {
	return LongThrasher(span, stride, 1, at)
}

// LongThrasher repeats the thrashing sweep passes times, to keep
// interference pressure alive for the whole victim execution.
func LongThrasher(span, stride, passes int, at Bases) core.Task {
	b := isa.NewBuilder(fmt.Sprintf("thrash%dx%d", span, passes)).SetBase(at.Text)
	b.SetDataBase(at.Data)
	b.DataWords("buf", make([]int32, span/4)...)
	b.Li(isa.R5, int32(passes))
	b.Label("pass").La(isa.R1, "buf")
	b.La(isa.R2, "buf").OpI(isa.ADDI, isa.R2, isa.R2, int32(span))
	b.Label("loop").
		St(isa.R3, isa.R1, 0).
		OpI(isa.ADDI, isa.R1, isa.R1, int32(stride)).
		Br(isa.BNE, isa.R1, isa.R2, "loop").
		OpI(isa.ADDI, isa.R5, isa.R5, -1).
		Br(isa.BNE, isa.R5, isa.R0, "pass").
		Halt()
	return core.Task{Name: fmt.Sprintf("thrash%dx%d", span, passes), Prog: mustProg(b)}
}

// Suite returns the standard benchmark set at disjoint bases.
func Suite() []core.Task {
	return []core.Task{
		Fib(24, Slot(0)),
		MatMult(4, Slot(1)),
		BSort(12, Slot(2)),
		CRC(16, Slot(3)),
		FIR(16, 4, Slot(4)),
		MemCopy(32, Slot(5)),
		CountBits(8, Slot(6)),
	}
}

// singles maps every individually addressable benchmark to its builder.
// The names double as the task-set vocabulary of sweep documents: a
// sweep axis entry is either one of these, "suite", or a "+"-joined
// combination ("fib24+crc16") placed at canonical slots in list order.
var singles = map[string]func(at Bases) core.Task{
	"fib24":      func(at Bases) core.Task { return Fib(24, at) },
	"matmult4":   func(at Bases) core.Task { return MatMult(4, at) },
	"bsort12":    func(at Bases) core.Task { return BSort(12, at) },
	"crc16":      func(at Bases) core.Task { return CRC(16, at) },
	"fir16x4":    func(at Bases) core.Task { return FIR(16, 4, at) },
	"memcopy32":  func(at Bases) core.Task { return MemCopy(32, at) },
	"countbits8": func(at Bases) core.Task { return CountBits(8, at) },
}

// SetNames returns the registered task-set vocabulary in sorted order:
// every single benchmark name plus "suite". Composite sets are formed by
// joining singles with "+".
func SetNames() []string {
	names := make([]string, 0, len(singles)+1)
	for name := range singles {
		names = append(names, name)
	}
	names = append(names, "suite")
	slices.Sort(names)
	return names
}

// Set resolves a named task set: "suite" for the full benchmark suite,
// a single benchmark name ("fib24"), or a "+"-joined combination
// ("fib24+crc16+thrash"). Tasks are materialized at canonical disjoint
// slots in list order, so the same name always produces byte-identical
// programs. Unknown names return an error listing the vocabulary.
func Set(name string) ([]core.Task, error) {
	if name == "suite" {
		return Suite(), nil
	}
	parts := strings.Split(name, "+")
	tasks := make([]core.Task, len(parts))
	for i, part := range parts {
		build, ok := singles[part]
		if !ok {
			return nil, fmt.Errorf("workload: unknown task set %q (component %q; known: %s, joined with \"+\")",
				name, part, strings.Join(SetNames(), " "))
		}
		tasks[i] = build(Slot(i))
	}
	return tasks, nil
}

// Random returns a seeded random structured program: a loop nest of
// bounded counting loops with arithmetic and strided memory bodies. All
// bounds derive automatically; the generator is the property-test fuel.
func Random(seed int64, at Bases) core.Task {
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder(fmt.Sprintf("rand%d", seed)).SetBase(at.Text)
	b.SetDataBase(at.Data)
	n := 8 + rng.Intn(24)
	arr := make([]int32, n)
	for i := range arr {
		arr[i] = int32(rng.Intn(100))
	}
	b.DataWords("arr", arr...)
	depth := 1 + rng.Intn(2)
	counters := []isa.Reg{isa.R1, isa.R2}
	for d := 0; d < depth; d++ {
		b.Li(counters[d], int32(1+rng.Intn(6)))
		b.Label(fmt.Sprintf("l%d", d))
	}
	// Body: some arithmetic and a bounded array walk.
	b.La(isa.R3, "arr")
	b.La(isa.R4, "arr").OpI(isa.ADDI, isa.R4, isa.R4, int32(n*4))
	b.Label("walk").
		Ld(isa.R5, isa.R3, 0).
		Op3(isa.ADD, isa.R6, isa.R6, isa.R5).
		OpI(isa.ADDI, isa.R3, isa.R3, 4).
		Br(isa.BNE, isa.R3, isa.R4, "walk")
	if rng.Intn(2) == 0 {
		b.Op3(isa.MUL, isa.R7, isa.R6, isa.R6)
	}
	for d := depth - 1; d >= 0; d-- {
		b.OpI(isa.ADDI, counters[d], counters[d], -1).
			Br(isa.BNE, counters[d], isa.R0, fmt.Sprintf("l%d", d))
	}
	b.Halt()
	return core.Task{Name: fmt.Sprintf("rand%d", seed), Prog: mustProg(b)}
}

func mustProg(b *isa.Builder) *isa.Program {
	p, err := b.Done()
	if err != nil {
		panic(err)
	}
	return p
}
