package cfg

// computeDominators fills Block.idom using the Cooper–Harvey–Kennedy
// iterative algorithm over reverse post-order. The graph must already be
// RPO-numbered with Blocks sorted by rpo.
func computeDominators(g *Graph) {
	entry := g.Entry
	entry.idom = nil
	for _, b := range g.Blocks {
		if b != entry {
			b.idom = nil
		}
	}
	// Blocks are sorted by RPO; iterate to fixpoint.
	changed := true
	for changed {
		changed = false
		for _, b := range g.Blocks {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, e := range b.Preds {
				p := e.From
				if p == entry || p.idom != nil {
					if newIdom == nil {
						newIdom = p
					} else {
						newIdom = intersect(p, newIdom)
					}
				}
			}
			if newIdom != nil && b.idom != newIdom {
				b.idom = newIdom
				changed = true
			}
		}
	}
}

// intersect walks up the dominator tree using RPO numbers.
func intersect(a, b *Block) *Block {
	for a != b {
		for a.rpo > b.rpo {
			a = a.idom
		}
		for b.rpo > a.rpo {
			b = b.idom
		}
	}
	return a
}
