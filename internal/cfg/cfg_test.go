package cfg

import (
	"strings"
	"testing"

	"paratime/internal/isa"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	g, err := Build(isa.MustAssemble(t.Name(), src))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStraightLine(t *testing.T) {
	g := build(t, "li r1, 1\nadd r2, r1, r1\nhalt")
	if got := len(g.Blocks); got != 2 { // one code block + exit
		t.Fatalf("blocks = %d, want 2\n%s", got, g.Dump())
	}
	if g.Entry.Len() != 3 {
		t.Errorf("entry block has %d instructions, want 3", g.Entry.Len())
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0].To != g.Exit {
		t.Errorf("entry should go straight to exit\n%s", g.Dump())
	}
	if len(g.Loops) != 0 {
		t.Errorf("unexpected loops: %v", g.Loops)
	}
}

func TestSingleLoop(t *testing.T) {
	g := build(t, `
        li   r1, 5
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt`)
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1\n%s", len(g.Loops), g.Dump())
	}
	l := g.Loops[0]
	if l.Depth != 1 || len(l.Blocks) != 1 {
		t.Errorf("loop = %v, want depth 1 with 1 block", l)
	}
	if len(l.BackEdges) != 1 || len(l.EntryEdges) != 1 || len(l.ExitEdges) != 1 {
		t.Errorf("loop edges back/entry/exit = %d/%d/%d, want 1/1/1",
			len(l.BackEdges), len(l.EntryEdges), len(l.ExitEdges))
	}
	if l.Header.loop != l {
		t.Error("header's innermost loop should be the loop itself")
	}
}

func TestNestedLoops(t *testing.T) {
	g := build(t, `
        li   r1, 3
outer:  li   r2, 4
inner:  addi r2, r2, -1
        bne  r2, r0, inner
        addi r1, r1, -1
        bne  r1, r0, outer
        halt`)
	if len(g.Loops) != 2 {
		t.Fatalf("loops = %d, want 2\n%s", len(g.Loops), g.Dump())
	}
	outer, inner := g.Loops[0], g.Loops[1]
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Fatalf("depths = %d,%d want 1,2", outer.Depth, inner.Depth)
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent should be outer")
	}
	if !outer.Contains(inner.Header) {
		t.Error("outer loop should contain inner header")
	}
	if inner.Header.loop != inner {
		t.Error("inner header's innermost loop wrong")
	}
}

func TestDiamondDominators(t *testing.T) {
	g := build(t, `
        li  r1, 1
        beq r1, r0, else
        addi r2, r0, 1
        j    join
else:   addi r2, r0, 2
join:   add  r3, r2, r2
        halt`)
	if len(g.Blocks) != 5 { // cond, then, else, join, exit
		t.Fatalf("blocks = %d, want 5\n%s", len(g.Blocks), g.Dump())
	}
	// Entry dominates everything; join's idom is the condition block.
	var join *Block
	for _, b := range g.Blocks {
		if !b.IsExit() && b != g.Entry && len(b.Preds) == 2 {
			join = b
		}
	}
	if join == nil {
		t.Fatalf("no join block found\n%s", g.Dump())
	}
	if join.Idom() != g.Entry {
		t.Errorf("join idom = %v, want entry", join.Idom())
	}
	for _, b := range g.Blocks {
		if !g.Entry.Dominates(b) {
			t.Errorf("entry should dominate %v", b)
		}
	}
	if join.Dominates(g.Entry) {
		t.Error("join must not dominate entry")
	}
}

func TestCallInliningCopies(t *testing.T) {
	g := build(t, `
        call f
        call f
        halt
f:      addi r1, r1, 1
        ret`)
	// f's body must appear twice (two contexts).
	bodies := 0
	for _, b := range g.Blocks {
		if b.IsExit() {
			continue
		}
		if b.Insts()[len(b.Insts())-1].Op == isa.RET {
			bodies++
		}
	}
	if bodies != 2 {
		t.Fatalf("inlined callee bodies = %d, want 2\n%s", bodies, g.Dump())
	}
	// Contexts must differ.
	ctxs := map[string]bool{}
	for _, b := range g.Blocks {
		if !b.IsExit() && len(b.Insts()) > 0 && b.Insts()[len(b.Insts())-1].Op == isa.RET {
			ctxs[b.Ctx] = true
		}
	}
	if len(ctxs) != 2 {
		t.Errorf("contexts = %v, want 2 distinct", ctxs)
	}
}

func TestNestedCalls(t *testing.T) {
	g := build(t, `
        call f
        halt
f:      call gg
        call gg
        ret
gg:     addi r1, r1, 1
        ret`)
	// gg appears twice, f once; total RET-terminated blocks = 3.
	rets := 0
	for _, b := range g.Blocks {
		if !b.IsExit() && b.Insts()[len(b.Insts())-1].Op == isa.RET {
			rets++
		}
	}
	if rets != 3 {
		t.Fatalf("ret blocks = %d, want 3\n%s", rets, g.Dump())
	}
}

func TestRecursionRejected(t *testing.T) {
	_, err := Build(isa.MustAssemble("rec", `
        call f
        halt
f:      call f
        ret`))
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("want recursion error, got %v", err)
	}
}

func TestMutualRecursionRejected(t *testing.T) {
	_, err := Build(isa.MustAssemble("rec2", `
        call f
        halt
f:      call gg
        ret
gg:     call f
        ret`))
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("want recursion error, got %v", err)
	}
}

func TestIrreducibleRejected(t *testing.T) {
	_, err := Build(isa.MustAssemble("irr", `
        li  r1, 1
        beq r1, r0, b
a:      addi r1, r1, 1
b:      addi r1, r1, -1
        bne  r1, r0, a
        halt`))
	if err == nil || !strings.Contains(err.Error(), "irreducible") {
		t.Fatalf("want irreducibility error, got %v", err)
	}
}

func TestNonTerminatingRejected(t *testing.T) {
	_, err := Build(isa.MustAssemble("spin", "loop: j loop"))
	if err == nil {
		t.Fatal("want error for program with no HALT")
	}
}

func TestTopLevelRetIsExit(t *testing.T) {
	// A task written as a procedure: top-level RET terminates it.
	g := build(t, "addi r1, r0, 1\nret")
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit preds = %d, want 1", len(g.Exit.Preds))
	}
}

func TestNeverReturningCalleePrunes(t *testing.T) {
	g := build(t, `
        call f
        addi r1, r0, 1   ; unreachable continuation
        halt
f:      halt`)
	for _, b := range g.Blocks {
		for _, in := range func() []isa.Inst {
			if b.IsExit() {
				return nil
			}
			return b.Insts()
		}() {
			if in.Op == isa.ADDI {
				t.Errorf("unreachable continuation not pruned\n%s", g.Dump())
			}
		}
	}
}

func TestRPOTopologicalOnForwardEdges(t *testing.T) {
	g := build(t, `
        li   r1, 3
outer:  li   r2, 4
inner:  addi r2, r2, -1
        bne  r2, r0, inner
        addi r1, r1, -1
        bne  r1, r0, outer
        halt`)
	for _, e := range g.Edges {
		back := e.To.Dominates(e.From)
		if !back && e.From.RPO() >= e.To.RPO() {
			t.Errorf("forward edge %v violates RPO order (%d >= %d)", e, e.From.RPO(), e.To.RPO())
		}
	}
	if g.Entry.RPO() != 0 {
		t.Errorf("entry RPO = %d, want 0", g.Entry.RPO())
	}
}

func TestMultiBackEdgeLoopMerged(t *testing.T) {
	g := build(t, `
        li   r1, 9
loop:   addi r1, r1, -1
        beq  r1, r0, out
        slti r2, r1, 5
        bne  r2, r0, loop
        j    loop
out:    halt`)
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1 (merged header)\n%s", len(g.Loops), g.Dump())
	}
	if len(g.Loops[0].BackEdges) != 2 {
		t.Errorf("back edges = %d, want 2", len(g.Loops[0].BackEdges))
	}
}

func TestDotAndDumpRender(t *testing.T) {
	g := build(t, "li r1, 2\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt")
	if dot := g.Dot(); !strings.Contains(dot, "digraph cfg") || !strings.Contains(dot, "->") {
		t.Error("Dot output malformed")
	}
	if d := g.Dump(); !strings.Contains(d, "loop@") {
		t.Errorf("Dump missing loop info:\n%s", d)
	}
}

func TestInnermostLoops(t *testing.T) {
	g := build(t, `
        li   r1, 3
outer:  li   r2, 4
inner:  addi r2, r2, -1
        bne  r2, r0, inner
        addi r1, r1, -1
        bne  r1, r0, outer
        halt`)
	inner := g.InnermostLoops()
	if len(inner) != 1 || inner[0].Depth != 2 {
		t.Errorf("innermost = %v, want the depth-2 loop", inner)
	}
}

func TestBlockInstsAndAddr(t *testing.T) {
	g := build(t, "li r1, 1\nadd r2, r1, r1\nhalt")
	b := g.Entry
	if b.Addr(0) != g.Prog.Base || b.Addr(1) != g.Prog.Base+4 {
		t.Error("block addressing wrong")
	}
	if b.Insts()[1].Op != isa.ADD {
		t.Error("Insts slice wrong")
	}
}
