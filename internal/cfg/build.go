package cfg

import (
	"fmt"
	"slices"

	"paratime/internal/isa"
)

// maxBlocks bounds the size of the inlined graph; virtual inlining of a
// pathological call tree could otherwise explode.
const maxBlocks = 1 << 16

// Build reconstructs the control-flow graph of a program, virtually
// inlining all calls starting from the first instruction. It errors on
// recursion, irreducible control flow, control falling off the text
// segment, and graphs exceeding the inlining budget.
func Build(p *isa.Program) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := &builder{
		prog:  p,
		procs: map[int]*procCFG{},
		g:     &Graph{Prog: p},
	}
	entry, _, err := b.instantiate(0, nil, "")
	if err != nil {
		return nil, err
	}
	// Synthetic exit block.
	exit := b.newBlock(0, 0, "")
	b.g.Exit = exit
	for _, h := range b.halts {
		b.edge(h, exit, EdgeExit)
	}
	for _, r := range b.topRets {
		b.edge(r, exit, EdgeExit)
	}
	if len(exit.Preds) == 0 {
		return nil, fmt.Errorf("cfg %q: no reachable HALT/RET; task never terminates", p.Name)
	}
	b.g.Entry = entry
	if err := analyze(b.g); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustBuild is Build, panicking on error. For fixtures and the built-in
// workload suite.
func MustBuild(p *isa.Program) *Graph {
	g, err := Build(p)
	if err != nil {
		panic(err)
	}
	return g
}

// procCFG is the intra-procedural block structure of one procedure,
// shared by all of its inline instantiations.
type procCFG struct {
	entry  int
	blocks []procBlock
	at     map[int]int // leader instruction index -> blocks index
}

type procBlock struct {
	start, end int
}

type builder struct {
	prog    *isa.Program
	procs   map[int]*procCFG
	g       *Graph
	halts   []*Block
	topRets []*Block
	nEdges  int
}

func (b *builder) newBlock(start, end int, ctx string) *Block {
	blk := &Block{ID: BlockID(len(b.g.Blocks)), Start: start, End: end, Ctx: ctx, graph: b.g}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, kind EdgeKind) *Edge {
	e := &Edge{ID: b.nEdges, From: from, To: to, Kind: kind}
	b.nEdges++
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
	b.g.Edges = append(b.g.Edges, e)
	return e
}

// proc lazily discovers the intra-procedural CFG rooted at entry.
func (b *builder) proc(entry int) (*procCFG, error) {
	if pc, ok := b.procs[entry]; ok {
		return pc, nil
	}
	insts := b.prog.Insts
	// Discover reachable instructions and leaders intra-procedurally.
	leaders := map[int]bool{entry: true}
	seen := map[int]bool{}
	work := []int{entry}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[i] {
			continue
		}
		seen[i] = true
		if i >= len(insts) {
			return nil, fmt.Errorf("cfg %q: control reaches past end of text from proc at +%d", b.prog.Name, entry)
		}
		in := insts[i]
		push := func(j int, leader bool) {
			if leader {
				leaders[j] = true
			}
			if !seen[j] {
				work = append(work, j)
			}
		}
		switch {
		case in.Op == isa.HALT, in.Op == isa.RET:
			// terminates this path; next instruction (if reachable) is a leader
		case in.IsBranch():
			t := b.prog.Index(in.Target)
			push(t, true)
			push(i+1, true)
		case in.Op == isa.J:
			push(b.prog.Index(in.Target), true)
		case in.Op == isa.CALL:
			// callee handled separately; continuation is a leader
			push(i+1, true)
		default:
			push(i+1, false)
		}
	}
	// Partition into blocks: sorted reachable instructions, split at leaders
	// and after control transfers.
	reach := make([]int, 0, len(seen))
	for i := range seen {
		reach = append(reach, i)
	}
	slices.Sort(reach)
	pc := &procCFG{entry: entry, at: map[int]int{}}
	start := -1
	var prev int
	flush := func(end int) {
		if start >= 0 {
			pc.at[start] = len(pc.blocks)
			pc.blocks = append(pc.blocks, procBlock{start: start, end: end})
			start = -1
		}
	}
	for _, i := range reach {
		if start >= 0 && (i != prev+1 || leaders[i]) {
			flush(prev + 1)
		}
		if start < 0 {
			start = i
		}
		if insts[i].IsControl() || insts[i].Op == isa.CALL {
			flush(i + 1)
		}
		prev = i
	}
	flush(prev + 1)
	b.procs[entry] = pc
	return pc, nil
}

// instantiate creates a fresh copy of the procedure at entry under the
// given call stack. It returns the entry block and the blocks that end in
// RET (the procedure's exits).
func (b *builder) instantiate(entry int, stack []int, ctx string) (*Block, []*Block, error) {
	for _, e := range stack {
		if e == entry {
			return nil, nil, fmt.Errorf("cfg %q: recursive call to proc at +%d (stack %v)", b.prog.Name, entry, stack)
		}
	}
	pc, err := b.proc(entry)
	if err != nil {
		return nil, nil, err
	}
	if len(b.g.Blocks)+len(pc.blocks) > maxBlocks {
		return nil, nil, fmt.Errorf("cfg %q: inlined graph exceeds %d blocks", b.prog.Name, maxBlocks)
	}
	// Copy blocks.
	copies := make([]*Block, len(pc.blocks))
	for i, blk := range pc.blocks {
		copies[i] = b.newBlock(blk.start, blk.end, ctx)
	}
	at := func(instIdx int) (*Block, error) {
		bi, ok := pc.at[instIdx]
		if !ok {
			return nil, fmt.Errorf("cfg %q: jump into middle of block at +%d", b.prog.Name, instIdx)
		}
		return copies[bi], nil
	}
	var rets []*Block
	// Wire edges.
	for i, blk := range pc.blocks {
		from := copies[i]
		last := b.prog.Insts[blk.end-1]
		switch {
		case last.Op == isa.HALT:
			b.halts = append(b.halts, from)
		case last.Op == isa.RET:
			rets = append(rets, from)
		case last.IsBranch():
			t, err := at(b.prog.Index(last.Target))
			if err != nil {
				return nil, nil, err
			}
			f, err := at(blk.end)
			if err != nil {
				return nil, nil, err
			}
			b.edge(from, t, EdgeTaken)
			b.edge(from, f, EdgeFall)
		case last.Op == isa.J:
			t, err := at(b.prog.Index(last.Target))
			if err != nil {
				return nil, nil, err
			}
			b.edge(from, t, EdgeJump)
		case last.Op == isa.CALL:
			calleeEntry := b.prog.Index(last.Target)
			childCtx := fmt.Sprintf("%s>%s@%d", ctx, b.calleeName(calleeEntry), blk.end-1)
			ce, crets, err := b.instantiate(calleeEntry, append(stack, entry), childCtx)
			if err != nil {
				return nil, nil, err
			}
			b.edge(from, ce, EdgeCall)
			cont, err := at(blk.end)
			if err != nil {
				return nil, nil, fmt.Errorf("call at +%d has no continuation: %w", blk.end-1, err)
			}
			for _, rb := range crets {
				b.edge(rb, cont, EdgeReturn)
			}
			if len(crets) == 0 {
				// Callee never returns (all paths HALT); the continuation
				// may be unreachable, which analyze() tolerates by pruning.
				_ = cont
			}
		default:
			f, err := at(blk.end)
			if err != nil {
				return nil, nil, err
			}
			b.edge(from, f, EdgeFall)
		}
	}
	eb, err := at(entry)
	if err != nil {
		return nil, nil, err
	}
	if len(stack) == 0 {
		b.topRets = append(b.topRets, rets...)
		rets = nil
	}
	return eb, rets, nil
}

func (b *builder) calleeName(entry int) string {
	if l := b.prog.LabelAt(entry); l != "" {
		return l
	}
	return fmt.Sprintf("+%d", entry)
}

// analyze prunes unreachable blocks, numbers blocks in reverse post-order,
// computes dominators and natural loops, and checks reducibility.
func analyze(g *Graph) error {
	prune(g)
	rpoNumber(g)
	computeDominators(g)
	if err := findLoops(g); err != nil {
		return err
	}
	return nil
}

// prune removes blocks unreachable from the entry (possible when a callee
// never returns), keeping IDs dense.
func prune(g *Graph) {
	reach := map[*Block]bool{}
	var dfs func(*Block)
	dfs = func(b *Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, e := range b.Succs {
			dfs(e.To)
		}
	}
	dfs(g.Entry)
	if len(reach) == len(g.Blocks) {
		return
	}
	var blocks []*Block
	for _, b := range g.Blocks {
		if reach[b] {
			b.ID = BlockID(len(blocks))
			blocks = append(blocks, b)
		}
	}
	g.Blocks = blocks
	var edges []*Edge
	for _, e := range g.Edges {
		if reach[e.From] && reach[e.To] {
			e.ID = len(edges)
			edges = append(edges, e)
		}
	}
	g.Edges = edges
	for _, b := range g.Blocks {
		b.Succs = filterEdges(b.Succs, reach)
		b.Preds = filterEdges(b.Preds, reach)
	}
}

func filterEdges(es []*Edge, reach map[*Block]bool) []*Edge {
	out := es[:0]
	for _, e := range es {
		if reach[e.From] && reach[e.To] {
			out = append(out, e)
		}
	}
	return out
}

// rpoNumber assigns reverse post-order numbers; the exit block is forced
// last among equals by DFS structure (it has no successors).
func rpoNumber(g *Graph) {
	seen := map[*Block]bool{}
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Succs {
			dfs(e.To)
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	n := len(post)
	for i, b := range post {
		b.rpo = n - 1 - i
	}
	slices.SortFunc(g.Blocks, func(a, b *Block) int { return a.rpo - b.rpo })
	for i, b := range g.Blocks {
		b.ID = BlockID(i)
	}
	for i, e := range g.Edges {
		e.ID = i
	}
}
