package cfg

// Worklist is a deduplicating min-heap of block positions: blocks pop in
// RPO priority order, which visits loop bodies before re-examining the
// blocks behind their back edges. It is the shared iteration strategy of
// the dataflow fixpoints (cache abstract interpretation, pipeline
// context analysis); since block IDs equal RPO positions, pushing raw
// block indices yields RPO-ordered pops.
type Worklist struct {
	heap []int32
	inq  []bool
}

// NewWorklist returns a worklist for n blocks.
func NewWorklist(n int) *Worklist {
	return &Worklist{heap: make([]int32, 0, n), inq: make([]bool, n)}
}

// Push enqueues block position i unless it is already queued.
func (w *Worklist) Push(i int) {
	if w.inq[i] {
		return
	}
	w.inq[i] = true
	w.heap = append(w.heap, int32(i))
	c := len(w.heap) - 1
	for c > 0 {
		p := (c - 1) / 2
		if w.heap[p] <= w.heap[c] {
			break
		}
		w.heap[p], w.heap[c] = w.heap[c], w.heap[p]
		c = p
	}
}

// Pop dequeues the lowest queued position; ok is false when empty.
func (w *Worklist) Pop() (int, bool) {
	if len(w.heap) == 0 {
		return 0, false
	}
	top := w.heap[0]
	last := len(w.heap) - 1
	w.heap[0] = w.heap[last]
	w.heap = w.heap[:last]
	p := 0
	for {
		c := 2*p + 1
		if c >= last {
			break
		}
		if c+1 < last && w.heap[c+1] < w.heap[c] {
			c++
		}
		if w.heap[p] <= w.heap[c] {
			break
		}
		w.heap[p], w.heap[c] = w.heap[c], w.heap[p]
		p = c
	}
	w.inq[top] = false
	return int(top), true
}
