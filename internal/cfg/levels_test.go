package cfg

import (
	"testing"

	"paratime/internal/isa"
)

// levelsProgram builds a small program with a loop and a diamond so the
// condensation has both trivial and non-trivial components.
func levelsGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Build(isa.MustAssemble(t.Name(), `
        li   r1, 3
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        bne  r2, r0, other
        addi r3, r3, 1
        j    join
other:  addi r3, r3, 2
join:   halt`))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func TestLevelizeStructure(t *testing.T) {
	g := levelsGraph(t)
	lv := Levelize(g)

	// Every block belongs to exactly one component.
	seen := make([]int, len(g.Blocks))
	for ci, c := range lv.Comps {
		if len(c.Blocks) == 0 {
			t.Fatalf("comp %d empty", ci)
		}
		for _, b := range c.Blocks {
			seen[b]++
			if int(lv.CompOf[b]) != ci {
				t.Fatalf("CompOf[%d] = %d, want %d", b, lv.CompOf[b], ci)
			}
		}
	}
	for b, n := range seen {
		if n != 1 {
			t.Fatalf("block %d in %d comps", b, n)
		}
	}

	// The loop header's component must be non-trivial (it has a back
	// edge); entry and exit must be trivial.
	var nontrivial int
	for _, c := range lv.Comps {
		if !c.Trivial {
			nontrivial++
			if len(c.Blocks) < 1 {
				t.Fatalf("non-trivial comp with no blocks")
			}
		}
	}
	if nontrivial == 0 {
		t.Fatalf("expected at least one non-trivial comp (the loop), got none")
	}
	if !lv.Comps[lv.CompOf[g.Entry.ID]].Trivial {
		t.Fatalf("entry comp should be trivial")
	}
	if !lv.Comps[lv.CompOf[g.Exit.ID]].Trivial {
		t.Fatalf("exit comp should be trivial")
	}

	// Topological property: every edge either stays inside a component
	// or goes from a lower level (and lower comp index) to a higher one.
	level := make([]int, len(lv.Comps))
	for l, comps := range lv.Levels {
		for _, ci := range comps {
			level[ci] = l
		}
	}
	for _, e := range g.Edges {
		cf, ct := lv.CompOf[e.From.ID], lv.CompOf[e.To.ID]
		if cf == ct {
			continue
		}
		if cf > ct {
			t.Fatalf("edge %v: comp order violated (%d -> %d)", e, cf, ct)
		}
		if level[cf] >= level[ct] {
			t.Fatalf("edge %v: level order violated (%d -> %d)", e, level[cf], level[ct])
		}
	}

	// Entry is in level 0; MaxWidth consistent with Levels.
	if level[lv.CompOf[g.Entry.ID]] != 0 {
		t.Fatalf("entry not in level 0")
	}
	w := 0
	for _, l := range lv.Levels {
		if len(l) > w {
			w = len(l)
		}
	}
	if lv.MaxWidth() != w {
		t.Fatalf("MaxWidth() = %d, want %d", lv.MaxWidth(), w)
	}
}

func TestLevelizeDeterministic(t *testing.T) {
	g := levelsGraph(t)
	a, b := Levelize(g), Levelize(g)
	if len(a.Comps) != len(b.Comps) || len(a.Levels) != len(b.Levels) {
		t.Fatalf("non-deterministic shape")
	}
	for i := range a.Comps {
		if a.Comps[i].Trivial != b.Comps[i].Trivial {
			t.Fatalf("comp %d trivial flag differs", i)
		}
		if len(a.Comps[i].Blocks) != len(b.Comps[i].Blocks) {
			t.Fatalf("comp %d size differs", i)
		}
		for j := range a.Comps[i].Blocks {
			if a.Comps[i].Blocks[j] != b.Comps[i].Blocks[j] {
				t.Fatalf("comp %d block %d differs", i, j)
			}
		}
	}
}
