package cfg

import (
	"fmt"
	"slices"
)

// findLoops detects natural loops from back edges, merges loops sharing a
// header, establishes nesting, and rejects irreducible flow (a retreating
// edge whose target does not dominate its source).
func findLoops(g *Graph) error {
	for _, b := range g.Blocks {
		b.loop = nil
	}
	g.Loops = nil
	loops := map[*Block]*Loop{} // header -> loop
	for _, e := range g.Edges {
		if e.To.rpo > e.From.rpo && e.To != e.From {
			continue // forward edge
		}
		// Retreating edge; reducible iff target dominates source.
		if !e.To.Dominates(e.From) {
			return fmt.Errorf("cfg %q: irreducible control flow at %v", g.Prog.Name, e)
		}
		l := loops[e.To]
		if l == nil {
			l = &Loop{Header: e.To, Blocks: map[BlockID]*Block{e.To.ID: e.To}, Bound: -1}
			loops[e.To] = l
		}
		l.BackEdges = append(l.BackEdges, e)
		// Natural loop body: reverse reachability from the latch to the
		// header.
		stack := []*Block{e.From}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if l.Contains(b) {
				continue
			}
			l.Blocks[b.ID] = b
			for _, pe := range b.Preds {
				stack = append(stack, pe.From)
			}
		}
	}
	if len(loops) == 0 {
		return nil
	}
	var all []*Loop
	for _, l := range loops {
		all = append(all, l)
	}
	// Sort by body size ascending: a loop's parent is the smallest strictly
	// containing loop.
	slices.SortFunc(all, func(a, b *Loop) int {
		if len(a.Blocks) != len(b.Blocks) {
			return len(a.Blocks) - len(b.Blocks)
		}
		return a.Header.rpo - b.Header.rpo
	})
	for i, l := range all {
		for _, cand := range all[i+1:] {
			if cand != l && cand.Contains(l.Header) && len(cand.Blocks) > len(l.Blocks) {
				l.Parent = cand
				break
			}
		}
	}
	for _, l := range all {
		l.Depth = 1
		for p := l.Parent; p != nil; p = p.Parent {
			l.Depth++
		}
	}
	// Innermost-loop membership per block: smallest loop containing it.
	for _, l := range all { // ascending size: later assignments only by larger loops
		//paralint:unordered first-writer-wins per block within one loop; nesting order comes from the sorted `all`
		for _, b := range l.Blocks {
			if b.loop == nil {
				b.loop = l
			}
		}
	}
	// Entry and exit edges.
	for _, l := range all {
		for _, e := range l.Header.Preds {
			if !l.Contains(e.From) {
				l.EntryEdges = append(l.EntryEdges, e)
			}
		}
		// ExitEdges order is observable downstream (persistence scopes,
		// IPET events), so iterate the body in block-ID order rather
		// than map order.
		body := make([]*Block, 0, len(l.Blocks))
		for _, b := range l.Blocks {
			body = append(body, b)
		}
		slices.SortFunc(body, func(a, b *Block) int { return int(a.ID) - int(b.ID) })
		for _, b := range body {
			for _, e := range b.Succs {
				if !l.Contains(e.To) {
					l.ExitEdges = append(l.ExitEdges, e)
				}
			}
		}
		if len(l.EntryEdges) == 0 {
			return fmt.Errorf("cfg %q: loop %v has no entry edge", g.Prog.Name, l)
		}
	}
	// Present outermost-first, stable by header RPO.
	slices.SortFunc(all, func(a, b *Loop) int {
		if a.Depth != b.Depth {
			return a.Depth - b.Depth
		}
		return a.Header.rpo - b.Header.rpo
	})
	g.Loops = all
	return nil
}
