package cfg

import "slices"

// Comp is one strongly connected component of a Graph's block digraph.
// A trivial component is a single block with no self-edge — its dataflow
// out-state is a pure function of its predecessors' out-states, so a
// levelized fixpoint computes it exactly once. Non-trivial components
// (loops) need an inner fixpoint iteration.
type Comp struct {
	Blocks  []int // block IDs in ascending order
	Trivial bool
}

// Levels is the SCC condensation of a Graph levelized for barrier-style
// parallel traversal: components in Levels[l] depend only on components
// in levels < l, so all of them can be processed concurrently with a
// barrier between levels — the OpenMP levelized-traversal shape from the
// parallel timing analyzers. Comps is ordered topologically (sources
// first), so a sequential sweep over Comps is also a valid schedule.
type Levels struct {
	Comps  []Comp
	Levels [][]int // per level, indices into Comps, ascending
	CompOf []int32 // block ID -> index into Comps
}

// Levelize computes the SCC condensation and level structure of g.
// The result depends only on the graph shape, never on map iteration or
// scheduling, so it is safe to cache in compile-once artefacts.
func Levelize(g *Graph) *Levels {
	n := len(g.Blocks)
	lv := &Levels{CompOf: make([]int32, n)}
	if n == 0 {
		return lv
	}

	// Iterative Tarjan. index 0 means unvisited; stored indices are
	// offset by one. Components pop in reverse topological order
	// (sinks first); we reverse afterwards.
	const unvisited = 0
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	sccStack := make([]int32, 0, n)
	type frame struct {
		v  int32
		ei int
	}
	dfs := make([]frame, 0, n)
	var next int32 = 1
	var comps [][]int

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs, frame{v: int32(root)})
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			if f.ei == 0 {
				index[v] = next
				low[v] = next
				next++
				sccStack = append(sccStack, v)
				onStack[v] = true
			}
			succs := g.Blocks[v].Succs
			if f.ei < len(succs) {
				w := int32(succs[f.ei].To.ID)
				f.ei++
				if index[w] == unvisited {
					dfs = append(dfs, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// v is finished: fold its lowlink into the parent, pop the
			// component if v is a root.
			if low[v] == index[v] {
				var comp []int
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					comp = append(comp, int(w))
					if w == v {
						break
					}
				}
				slices.Sort(comp)
				comps = append(comps, comp)
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}

	slices.Reverse(comps) // topological: sources first
	lv.Comps = make([]Comp, len(comps))
	for ci, blocks := range comps {
		trivial := len(blocks) == 1
		if trivial {
			for _, e := range g.Blocks[blocks[0]].Succs {
				if int(e.To.ID) == blocks[0] {
					trivial = false
					break
				}
			}
		}
		lv.Comps[ci] = Comp{Blocks: blocks, Trivial: trivial}
		for _, b := range blocks {
			lv.CompOf[b] = int32(ci)
		}
	}

	// level(c) = 1 + max level over predecessor components; a topological
	// sweep over Comps sees every predecessor before its successors.
	level := make([]int, len(lv.Comps))
	height := 0
	for ci, c := range lv.Comps {
		l := 0
		for _, b := range c.Blocks {
			for _, e := range g.Blocks[b].Preds {
				pc := int(lv.CompOf[e.From.ID])
				if pc != ci && level[pc]+1 > l {
					l = level[pc] + 1
				}
			}
		}
		level[ci] = l
		if l+1 > height {
			height = l + 1
		}
	}
	lv.Levels = make([][]int, height)
	for ci := range lv.Comps {
		lv.Levels[level[ci]] = append(lv.Levels[level[ci]], ci)
	}
	return lv
}

// MaxWidth returns the largest number of components in any single level —
// the available parallelism of a barrier traversal.
func (lv *Levels) MaxWidth() int {
	w := 0
	for _, l := range lv.Levels {
		if len(l) > w {
			w = len(l)
		}
	}
	return w
}
