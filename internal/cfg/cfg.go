// Package cfg reconstructs control-flow graphs from linked isa.Programs
// and computes the structural facts static WCET analysis needs: basic
// blocks, dominators, natural loops with nesting, and reverse post-order.
//
// Calls are handled by virtual inlining: each call site instantiates a
// fresh copy of the callee's blocks, giving a single connected,
// context-sensitive graph per task. This mirrors how classical WCET tools
// obtain context-sensitive cache and pipeline analysis without an
// interprocedural fixpoint. Recursion is rejected.
package cfg

import (
	"fmt"
	"slices"
	"strings"

	"paratime/internal/isa"
)

// BlockID identifies a basic block within one Graph.
type BlockID int

// EdgeKind labels how control moves along an edge.
type EdgeKind uint8

// Edge kinds.
const (
	EdgeFall   EdgeKind = iota // sequential fall-through
	EdgeTaken                  // conditional branch taken
	EdgeJump                   // unconditional jump
	EdgeCall                   // call site to inlined callee entry
	EdgeReturn                 // inlined callee exit back to continuation
	EdgeExit                   // block to the synthetic exit
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeFall:
		return "fall"
	case EdgeTaken:
		return "taken"
	case EdgeJump:
		return "jump"
	case EdgeCall:
		return "call"
	case EdgeReturn:
		return "return"
	case EdgeExit:
		return "exit"
	default:
		return "?"
	}
}

// Edge is one control-flow edge. Edges are shared between the successor
// list of From and the predecessor list of To.
type Edge struct {
	ID   int
	From *Block
	To   *Block
	Kind EdgeKind
}

func (e *Edge) String() string {
	return fmt.Sprintf("B%d->B%d(%s)", e.From.ID, e.To.ID, e.Kind)
}

// Block is a basic block: a maximal single-entry straight-line instruction
// sequence. The synthetic exit block has Start == End (no instructions).
//
// Because of virtual inlining, several blocks may cover the same
// instruction range under different calling contexts; they are distinct
// analysis objects that share addresses (and therefore cache lines).
type Block struct {
	ID    BlockID
	Start int // first instruction index in Prog.Insts
	End   int // one past the last instruction index
	Ctx   string

	Succs []*Edge
	Preds []*Edge

	graph *Graph

	// Filled by loop analysis.
	idom *Block // immediate dominator (nil for entry)
	loop *Loop  // innermost containing loop, nil if none
	rpo  int    // reverse post-order number
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

// IsExit reports whether b is the synthetic exit block.
func (b *Block) IsExit() bool { return b == b.graph.Exit }

// Insts returns the instruction slice of the block.
func (b *Block) Insts() []isa.Inst { return b.graph.Prog.Insts[b.Start:b.End] }

// Addr returns the byte address of instruction i (counted from the block
// start).
func (b *Block) Addr(i int) uint32 { return b.graph.Prog.Addr(b.Start + i) }

// Graph returns the graph owning the block.
func (b *Block) Graph() *Graph { return b.graph }

// Idom returns the immediate dominator (nil for the entry block).
func (b *Block) Idom() *Block { return b.idom }

// Loop returns the innermost loop containing the block, or nil.
func (b *Block) Loop() *Loop { return b.loop }

// RPO returns the block's reverse post-order number (entry is 0).
func (b *Block) RPO() int { return b.rpo }

// Dominates reports whether b dominates o.
func (b *Block) Dominates(o *Block) bool {
	for d := o; d != nil; d = d.idom {
		if d == b {
			return true
		}
	}
	return false
}

func (b *Block) String() string {
	if b.IsExit() {
		return fmt.Sprintf("B%d(exit)", b.ID)
	}
	return fmt.Sprintf("B%d[%d..%d)%s", b.ID, b.Start, b.End, b.Ctx)
}

// Loop is a natural loop discovered from back edges. All back edges
// sharing a header are merged into one Loop.
type Loop struct {
	Header *Block
	Blocks map[BlockID]*Block
	Parent *Loop // enclosing loop, nil at top level
	Depth  int   // 1 for outermost loops

	// BackEdges enter the header from inside the loop; EntryEdges enter
	// the header from outside; ExitEdges leave the loop body.
	BackEdges  []*Edge
	EntryEdges []*Edge
	ExitEdges  []*Edge

	// Bound is the maximum iteration count per entry of the loop
	// (a flow fact, set by internal/flow or by hand); -1 if unknown.
	Bound int
}

// Contains reports whether the loop body contains the block.
func (l *Loop) Contains(b *Block) bool { _, ok := l.Blocks[b.ID]; return ok }

func (l *Loop) String() string {
	return fmt.Sprintf("loop@B%d(depth %d, %d blocks, bound %d)",
		l.Header.ID, l.Depth, len(l.Blocks), l.Bound)
}

// Graph is a whole-task control-flow graph after virtual inlining.
type Graph struct {
	Prog   *isa.Program
	Blocks []*Block // Blocks[0] is Entry; exit is the last
	Entry  *Block
	Exit   *Block
	Edges  []*Edge
	Loops  []*Loop // outermost-first, then by header RPO
}

// BlockCount returns the number of blocks including the synthetic exit.
func (g *Graph) BlockCount() int { return len(g.Blocks) }

// RPO returns blocks in reverse post-order (entry first, exit last).
func (g *Graph) RPO() []*Block {
	out := make([]*Block, len(g.Blocks))
	copy(out, g.Blocks)
	slices.SortFunc(out, func(a, b *Block) int { return a.rpo - b.rpo })
	return out
}

// LoopOf returns the loop headed by b, or nil.
func (g *Graph) LoopOf(b *Block) *Loop {
	for _, l := range g.Loops {
		if l.Header == b {
			return l
		}
	}
	return nil
}

// InnermostLoops returns loops with no children.
func (g *Graph) InnermostLoops() []*Loop {
	child := map[*Loop]bool{}
	for _, l := range g.Loops {
		if l.Parent != nil {
			child[l.Parent] = true
		}
	}
	var out []*Loop
	for _, l := range g.Loops {
		if !child[l] {
			out = append(out, l)
		}
	}
	return out
}

// Dump renders the graph for debugging.
func (g *Graph) Dump() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%v:", b)
		for _, e := range b.Succs {
			fmt.Fprintf(&sb, " ->B%d(%s)", e.To.ID, e.Kind)
		}
		sb.WriteByte('\n')
		if !b.IsExit() {
			for i, in := range b.Insts() {
				fmt.Fprintf(&sb, "    0x%04x %v\n", b.Addr(i), in)
			}
		}
	}
	for _, l := range g.Loops {
		fmt.Fprintf(&sb, "%v\n", l)
	}
	return sb.String()
}

// Dot renders the graph in Graphviz DOT format.
func (g *Graph) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph cfg {\n  node [shape=box fontname=monospace];\n")
	for _, b := range g.Blocks {
		label := b.String()
		if !b.IsExit() {
			var lines []string
			for i, in := range b.Insts() {
				lines = append(lines, fmt.Sprintf("0x%04x %v", b.Addr(i), in))
			}
			label += "\\n" + strings.Join(lines, "\\n")
		}
		fmt.Fprintf(&sb, "  b%d [label=\"%s\"];\n", b.ID, label)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&sb, "  b%d -> b%d [label=\"%s\"];\n", e.From.ID, e.To.ID, e.Kind)
	}
	sb.WriteString("}\n")
	return sb.String()
}
