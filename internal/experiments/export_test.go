package experiments

import (
	"reflect"
	"testing"

	"paratime/internal/spec"
)

// TestExportRoundTrip: every exported scenario must survive
// Decode(Encode(s)) identically — the property that keeps scenario
// files replayable across builds.
func TestExportRoundTrip(t *testing.T) {
	scs, err := ExportAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) == 0 {
		t.Fatal("nothing exported")
	}
	names := map[string]bool{}
	for _, sc := range scs {
		if names[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		data, err := sc.Encode()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		got, err := spec.Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(sc, got) {
			t.Errorf("%s: decode(encode(s)) != s", sc.Name)
		}
	}
	// The full export stream decodes as one array, too.
	all, err := spec.EncodeAll(scs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := spec.DecodeAll(all)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scs, back) {
		t.Error("export array round trip mismatch")
	}
}

// TestExportCoversRegimes: the exported set must span every §3–§5
// sharing regime expressible in schema v1.
func TestExportCoversRegimes(t *testing.T) {
	scs, err := ExportAll()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		key := sc.Mode.Kind
		switch sc.Mode.Kind {
		case spec.KindJoint:
			key += "/" + sc.Mode.Model
			if len(sc.Mode.Lifetimes) > 0 {
				key += "+lifetimes"
			}
			for _, task := range sc.Tasks {
				if task.Bypass {
					key += "+bypass"
				}
			}
		case spec.KindPartition:
			key += "/" + sc.Mode.Partition.Scheme
		case spec.KindLock:
			key += "/" + sc.Mode.Lock.Policy
		case spec.KindBus:
			key += "/" + sc.Mode.Bus.Policy
		}
		seen[key] = true
	}
	want := []string{
		"solo",
		"joint/directmapped", "joint/ageshift", "joint/ageshift+lifetimes", "joint/ageshift+bypass",
		"partition/task", "partition/core", "partition/ways", "partition/banks",
		"lock/static", "lock/dynamic",
		"bus/roundrobin", "bus/tdma", "bus/mbba",
		"smt", "pret",
	}
	for _, key := range want {
		if !seen[key] {
			t.Errorf("no exported scenario covers regime %q", key)
		}
	}
}

// TestExportUnknownAndInexpressible: export fails with a clear message
// for unknown ids and for experiments with no scenario form.
func TestExportUnknownAndInexpressible(t *testing.T) {
	if _, err := Export("e99"); err == nil {
		t.Error("unknown id accepted")
	}
	if _, err := Export("e17"); err == nil {
		t.Error("inexpressible experiment accepted")
	}
}
