// Package experiments regenerates, one function per experiment, the
// comparative claims of Rochange's PPES 2011 survey (the paper has no
// numbered tables or figures; DESIGN.md maps each experiment to the
// survey section whose claim it reproduces). Each experiment returns a
// printable table plus scalar metrics for the benchmark harness.
package experiments

import (
	"fmt"
	"math/rand"

	"paratime/internal/arbiter"
	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/engine"
	"paratime/internal/interfere"
	"paratime/internal/memctrl"
	"paratime/internal/partition"
	"paratime/internal/pipeline"
	"paratime/internal/report"
	"paratime/internal/sched"
	"paratime/internal/sim"
	"paratime/internal/smt"
	"paratime/internal/workload"
)

// Result is one experiment's output.
type Result struct {
	Table   *report.Table
	Metrics map[string]float64
}

// Runner is an experiment entry point.
type Runner func() (*Result, error)

// All maps experiment ids to runners.
var All = map[string]Runner{
	"e1": Exp01SoloWCET, "e2": Exp02UnsafeSolo, "e3": Exp03Measurement,
	"e4": Exp04YanZhang, "e5": Exp05JointScaling, "e6": Exp06Lifetime,
	"e7": Exp07Bypass, "e8": Exp08PartitionLocking, "e9": Exp09Bankization,
	"e10": Exp10YieldCFG, "e11": Exp11TDMA, "e12": Exp12RoundRobin,
	"e13": Exp13MBBA, "e14": Exp14CarCore, "e15": Exp15PRET,
	"e16": Exp16SMTQueues, "e17": Exp17AnomalyFreedom, "e18": Exp18IPETCross,
}

// IDs lists experiment ids in order.
var IDs = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
	"e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18"}

func defaultSys() core.SystemConfig {
	sys := core.DefaultSystem()
	sys.Mem.MemLatency = memctrl.DefaultConfig().Bound()
	return sys
}

func simFor(sys core.SystemConfig, mem memctrl.Config, bus arbiter.Arbiter, shared bool, tasks ...core.Task) sim.System {
	s := sim.System{L2: sys.Mem.L2, SharedL2: shared, Bus: bus, Mem: mem}
	for _, t := range tasks {
		s.Cores = append(s.Cores, sim.CoreConfig{
			Name: t.Name, Prog: t.Prog, Pipe: sys.Pipeline,
			L1I: sys.Mem.L1I, L1D: sys.Mem.L1D,
		})
	}
	return s
}

// Exp01SoloWCET (§2.1): the solo static analysis is safe and reasonably
// tight on every benchmark: WCET >= simulated cycles, modest ratio.
func Exp01SoloWCET() (*Result, error) {
	sys := defaultSys()
	mem := memctrl.DefaultConfig()
	t := report.New("E1: solo static WCET vs simulation (private caches)",
		"task", "WCET", "sim cycles", "ratio", "classes")
	worst := 0.0
	tasks := workload.Suite()
	as, err := analyzeAll(engine.Requests(tasks, sys))
	if err != nil {
		return nil, err
	}
	sims := make([]*sim.Result, len(tasks))
	err = engine.ForEach(0, len(tasks), func(i int) error {
		res, err := sim.Run(simFor(sys, mem, nil, false, tasks[i]), 200_000_000)
		sims[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, task := range tasks {
		a, res := as[i], sims[i]
		if a.WCET < res.Cycles(0) {
			return nil, fmt.Errorf("e1: UNSOUND %s: %d < %d", task.Name, a.WCET, res.Cycles(0))
		}
		r := float64(a.WCET) / float64(res.Cycles(0))
		if r > worst {
			worst = r
		}
		t.Add(task.Name, a.WCET, res.Cycles(0), r, a.ClassSummary())
	}
	return &Result{Table: t, Metrics: map[string]float64{"worst_ratio": worst}}, nil
}

// Exp02UnsafeSolo (§2.2): the solo bound, computed as if the shared L2
// and bus were private, is exceeded by observed execution under
// co-runners — ignoring resource sharing is unsafe.
//
// The victim is an instruction-side working set: its loop body overflows
// the tiny L1I but fits the shared L2, so the solo analysis soundly
// prices the refetches as cheap L2 hits (PERSISTENT). Thrashing
// co-runners evict those lines and queue on the bus, pushing the observed
// time past the solo bound.
func Exp02UnsafeSolo() (*Result, error) {
	sys := defaultSys()
	sys.Mem.L1I = cache.Config{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	small := cache.Config{Name: "L2", Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &small
	mem := memctrl.DefaultConfig()
	victim := bigLoopTask(60, 96)
	soloA, err := core.Analyze(victim, sys) // private-L2, no-bus assumption
	if err != nil {
		return nil, err
	}
	lat := small.HitLatency + mem.Bound()
	t := report.New("E2: solo WCET vs observed cycles with co-runners (shared L2 + bus)",
		"co-runners", "victim observed", "solo WCET", "observed/solo")
	soloSim, err := sim.Run(simFor(sys, mem, nil, true, victim), 200_000_000)
	if err != nil {
		return nil, err
	}
	t.Add(0, soloSim.Cycles(0), soloA.WCET, report.Ratio(soloSim.Cycles(0), soloA.WCET))
	worst := int64(0)
	for n := 1; n <= 3; n++ {
		tasks := []core.Task{victim}
		for i := 0; i < n; i++ {
			tasks = append(tasks, workload.LongThrasher(4096, 32, 200, workload.Slot(i+1)))
		}
		bus := arbiter.NewRoundRobin(n+1, lat)
		res, err := sim.Run(simFor(sys, mem, bus, true, tasks...), 500_000_000)
		if err != nil {
			return nil, err
		}
		t.Add(n, res.Cycles(0), soloA.WCET, report.Ratio(res.Cycles(0), soloA.WCET))
		if res.Cycles(0) > worst {
			worst = res.Cycles(0)
		}
	}
	return &Result{Table: t, Metrics: map[string]float64{
		"solo_wcet":      float64(soloA.WCET),
		"worst_observed": float64(worst),
		"exceeded":       boolMetric(worst > soloA.WCET),
	}}, nil
}

// Exp03Measurement (§2.2): measurement-based analysis on a parallel
// architecture under-estimates: the max over observed co-schedules misses
// interference a different co-runner triggers.
func Exp03Measurement() (*Result, error) {
	sys := defaultSys()
	small := cache.Config{Name: "L2", Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &small
	mem := memctrl.DefaultConfig()
	victim := workload.MemCopy(64, workload.Slot(0))
	lat := small.HitLatency + mem.Bound()
	// "Testing campaign": benign co-runners only.
	benign := []core.Task{
		workload.Fib(24, workload.Slot(1)),
		workload.CountBits(4, workload.Slot(2)),
		workload.CRC(8, workload.Slot(3)),
	}
	observedMax := int64(0)
	for _, co := range benign {
		bus := arbiter.NewRoundRobin(2, lat)
		res, err := sim.Run(simFor(sys, mem, bus, true, victim, co), 500_000_000)
		if err != nil {
			return nil, err
		}
		if res.Cycles(0) > observedMax {
			observedMax = res.Cycles(0)
		}
	}
	// Deployment meets a thrasher.
	bus := arbiter.NewRoundRobin(2, lat)
	res, err := sim.Run(simFor(sys, mem, bus, true, victim,
		workload.Thrasher(4096, 32, workload.Slot(1))), 500_000_000)
	if err != nil {
		return nil, err
	}
	t := report.New("E3: measurement-based bound vs unobserved co-runner",
		"campaign", "victim cycles")
	t.Add("max over benign co-runners (the 'measured WCET')", observedMax)
	t.Add("same victim vs thrasher", res.Cycles(0))
	return &Result{Table: t, Metrics: map[string]float64{
		"measured":       float64(observedMax),
		"actual":         float64(res.Cycles(0)),
		"underestimated": boolMetric(res.Cycles(0) > observedMax),
	}}, nil
}

// Exp04YanZhang (§4.1): direct-mapped shared-L2 joint analysis is safe
// but conflicts inflate the WCET as co-runners are added.
func Exp04YanZhang() (*Result, error) {
	sys := defaultSys()
	sys.Mem.L1I = cache.Config{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	dm := cache.Config{Name: "L2", Sets: 64, Ways: 1, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &dm
	t := report.New("E4: Yan & Zhang direct-mapped shared-L2 joint analysis",
		"co-runners", "victim solo WCET", "victim joint WCET", "inflation")
	var last float64
	for n := 1; n <= 4; n++ {
		tasks := []core.Task{bigLoopTask(40, 64)}
		for i := 0; i < n; i++ {
			tasks = append(tasks, workload.CRC(12, workload.Slot(i+1)))
		}
		as, err := prepareAll(tasks, sys)
		if err != nil {
			return nil, err
		}
		res, err := interfere.AnalyzeJoint(as, interfere.DirectMapped)
		if err != nil {
			return nil, err
		}
		if res.JointWCET[0] < res.SoloWCET[0] {
			return nil, fmt.Errorf("e4: joint tighter than solo")
		}
		last = float64(res.JointWCET[0]) / float64(res.SoloWCET[0])
		t.Add(n, res.SoloWCET[0], res.JointWCET[0], last)
	}
	return &Result{Table: t, Metrics: map[string]float64{"inflation_at_4": last}}, nil
}

// Exp05JointScaling (§4.1): as co-runner count and footprint grow, the
// victim's L2 classifications collapse toward NC/AM and the WCET
// over-estimation becomes overwhelming — the survey's scalability
// concern with joint analysis.
func Exp05JointScaling() (*Result, error) {
	sys := defaultSys()
	sys.Mem.L1I = cache.Config{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	l2 := cache.Config{Name: "L2", Sets: 32, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	t := report.New("E5: joint-analysis classification collapse with co-runner pressure",
		"co-runners", "L2 AH", "L2 PS", "L2 AM", "L2 NC", "victim WCET")
	var metrics map[string]float64
	for n := 0; n <= 4; n++ {
		tasks := []core.Task{bigLoopTask(40, 64)}
		for i := 0; i < n; i++ {
			tasks = append(tasks, workload.Thrasher(2048, 32, workload.Slot(i+1)))
		}
		as, err := prepareAll(tasks, sys)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			if err := interfere.Apply(as[0], as, interfere.AgeShift); err != nil {
				return nil, err
			}
		} else if err := as[0].ComputeWCET(); err != nil {
			return nil, err
		}
		c := as[0].L2.CountClasses()
		t.Add(n, c[cache.AlwaysHit], c[cache.Persistent], c[cache.AlwaysMiss],
			c[cache.NotClassified], as[0].WCET)
		metrics = map[string]float64{
			"nc_at_max": float64(c[cache.NotClassified]),
			"wcet":      float64(as[0].WCET),
		}
	}
	return &Result{Table: t, Metrics: metrics}, nil
}

// Exp06Lifetime (§4.1): Li et al.'s lifetime refinement removes
// conflicts between tasks whose schedule windows cannot overlap.
func Exp06Lifetime() (*Result, error) {
	sys := defaultSys()
	sys.Mem.L1I = cache.Config{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	l2 := cache.Config{Name: "L2", Sets: 32, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	// Bases 0x4000 apart alias onto the same L2 sets: every pair of
	// overlapping tasks fully conflicts, which is exactly when lifetime
	// separation pays off.
	tasks := []core.Task{
		bigLoopTaskAt(30, 48, 0x1000),
		bigLoopTaskAt(30, 48, 0x5000),
		bigLoopTaskAt(30, 48, 0x9000),
	}
	as, err := prepareAll(tasks, sys)
	if err != nil {
		return nil, err
	}
	specs := []sched.TaskSpec{
		{Name: tasks[0].Name, Core: 0, Priority: 0},
		{Name: tasks[1].Name, Core: 1, Priority: 0, Deps: []int{0}}, // serialized after 0
		{Name: tasks[2].Name, Core: 2, Priority: 0},
	}
	res, err := interfere.AnalyzeWithLifetimes(as, specs, interfere.AgeShift)
	if err != nil {
		return nil, err
	}
	t := report.New("E6: all-overlap joint WCET vs lifetime-refined (Li et al.)",
		"task", "solo", "all-overlap", "refined", "saved")
	saved := 0.0
	for i := range res.Names {
		d := res.JointWCET[i] - res.RefinedWCET[i]
		saved += float64(d)
		t.Add(res.Names[i], res.SoloWCET[i], res.JointWCET[i], res.RefinedWCET[i], d)
	}
	return &Result{Table: t, Metrics: map[string]float64{"total_saved": saved,
		"iterations": float64(res.Iterations)}}, nil
}

// Exp07Bypass (§4.1): bypassing single-usage blocks removes their L2
// pollution and tightens the co-runners' joint WCETs (Hardy et al.).
func Exp07Bypass() (*Result, error) {
	sys := defaultSys()
	l2 := cache.Config{Name: "L2", Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	sys.Mem.L1I = cache.Config{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	mk := func() ([]*core.Analysis, error) {
		// Task with single-usage straight-line loads placed two-deep on
		// the victim's L2 sets (two foreign lines exceed the 2-way
		// associativity), plus the loop victim itself.
		onceSrc := `
        li   r3, 0x6000
        ld   r2, 0(r3)
        ld   r4, 64(r3)
        ld   r5, 0x200(r3)
        ld   r6, 0x240(r3)
        ld   r7, 0x400(r3)
        halt
.data 0x6000
        .word 1`
		once := core.Task{Name: "once", Prog: mustAsm("once", onceSrc)}
		once.Prog.Rebase(0x3000)
		victim := bigLoopTaskAt(30, 48, 0x1000)
		return prepareAll([]core.Task{once, victim}, sys)
	}
	as, err := mk()
	if err != nil {
		return nil, err
	}
	if err := interfere.Apply(as[1], as, interfere.AgeShift); err != nil {
		return nil, err
	}
	without := as[1].WCET
	as2, err := mk()
	if err != nil {
		return nil, err
	}
	nBypassed, err := interfere.ApplyBypass(as2[0])
	if err != nil {
		return nil, err
	}
	if err := interfere.Apply(as2[1], as2, interfere.AgeShift); err != nil {
		return nil, err
	}
	with := as2[1].WCET
	t := report.New("E7: single-usage L2 bypass (Hardy et al.)",
		"configuration", "victim joint WCET")
	t.Add("no bypass", without)
	t.Add(fmt.Sprintf("bypass (%d refs)", nBypassed), with)
	return &Result{Table: t, Metrics: map[string]float64{
		"without": float64(without), "with": float64(with),
		"bypassed_refs": float64(nBypassed),
	}}, nil
}

// Exp08PartitionLocking (§4.2, Suhendra & Mitra): core-based partitioning
// beats task-based; dynamic locking beats static on phased workloads.
func Exp08PartitionLocking() (*Result, error) {
	sys := defaultSys()
	l2 := cache.Config{Name: "L2", Sets: 32, Ways: 4, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	tasks := []core.Task{
		workload.MemCopy(48, workload.Slot(0)),
		workload.CRC(12, workload.Slot(1)),
		workload.FIR(12, 4, workload.Slot(2)),
		workload.CountBits(6, workload.Slot(3)),
	}
	taskW, err := partition.WCETs(tasks, sys, partition.TaskBased, nil, 2)
	if err != nil {
		return nil, err
	}
	coreW, err := partition.WCETs(tasks, sys, partition.CoreBased, []int{0, 0, 1, 1}, 2)
	if err != nil {
		return nil, err
	}
	t := report.New("E8: partitioning scheme × locking (4 tasks, 2 cores)",
		"task", "task-based WCET", "core-based WCET")
	var sumT, sumC float64
	for i := range tasks {
		sumT += float64(taskW[i])
		sumC += float64(coreW[i])
		t.Add(tasks[i].Name, taskW[i], coreW[i])
	}
	phased := phasedTask()
	st, err := partition.StaticLock(phased, sys, 40)
	if err != nil {
		return nil, err
	}
	dy, err := partition.DynamicLock(phased, sys, 40)
	if err != nil {
		return nil, err
	}
	t.Add("-- locking (phased task) --", "static "+fmt.Sprint(st.WCET), "dynamic "+fmt.Sprint(dy.WCET))
	return &Result{Table: t, Metrics: map[string]float64{
		"taskbased_sum": sumT, "corebased_sum": sumC,
		"static_lock": float64(st.WCET), "dynamic_lock": float64(dy.WCET),
	}}, nil
}

// Exp09Bankization (§4.2, Paolieri et al.): with equal capacity
// fractions, bank partitioning (full associativity kept) yields WCETs at
// least as tight as way partitioning (columnization).
func Exp09Bankization() (*Result, error) {
	sys := defaultSys()
	// A tiny L1D forces the scalar loads through to the L2, where the
	// associativity split matters.
	sys.Mem.L1D = cache.Config{Name: "L1D", Sets: 2, Ways: 1, LineBytes: 16, HitLatency: 1}
	l2 := cache.Config{Name: "L2", Sets: 32, Ways: 4, LineBytes: 32, HitLatency: 4}
	t := report.New("E9: columnization vs bankization (half the cache each)",
		"task", "columnized WCET (2 ways)", "bankized WCET (2 of 4 banks)", "bank/col")
	col, err := partition.Columnize(l2, 2)
	if err != nil {
		return nil, err
	}
	bank, err := partition.Bankize(l2, 2, 4)
	if err != nil {
		return nil, err
	}
	// assocstress loads three scalars exactly one L2 way-group apart:
	// three lines in one set survive 4 ways (bankized) but thrash 2 ways
	// (columnized) — the shape behind Paolieri et al.'s finding.
	stress := core.Task{Name: "assocstress", Prog: mustAsm("assocstress", `
        li   r1, 40
        li   r3, 0x8000
loop:   ld   r4, 0(r3)
        ld   r5, 0x400(r3)
        ld   r6, 0x800(r3)
        add  r7, r4, r5
        add  r7, r7, r6
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
.data 0x8000
        .word 1
.data 0x8400
        .word 2
.data 0x8800
        .word 3`)}
	// Both halves of the comparison batch through the engine: one request
	// per (task, partitioned geometry).
	sc, sb := sys, sys
	sc.Mem.L2, sb.Mem.L2 = &col, &bank
	tasks := append(workload.Suite()[:5], stress)
	var reqs []engine.Request
	for _, task := range tasks {
		reqs = append(reqs, engine.Request{Task: task, Sys: sc}, engine.Request{Task: task, Sys: sb})
	}
	as, err := analyzeAll(reqs)
	if err != nil {
		return nil, err
	}
	wins := 0
	for i, task := range tasks {
		ac, ab := as[2*i], as[2*i+1]
		if ab.WCET <= ac.WCET {
			wins++
		}
		t.Add(task.Name, ac.WCET, ab.WCET, report.Ratio(ab.WCET, ac.WCET))
	}
	return &Result{Table: t, Metrics: map[string]float64{"bank_wins": float64(wins)}}, nil
}

// Exp10YieldCFG (§5.1, Crowley & Baer): the joint yield analysis is exact
// for small thread counts but its global state space multiplies with
// every added thread.
func Exp10YieldCFG() (*Result, error) {
	t := report.New("E10: global-CFG yield analysis growth",
		"threads", "segments each", "joint WCET", "serial bound", "states")
	mk := func(n, segs int) []interfere.YieldThread {
		var out []interfere.YieldThread
		for i := 0; i < n; i++ {
			th := interfere.YieldThread{Name: fmt.Sprintf("t%d", i)}
			for s := 0; s < segs; s++ {
				th.Segments = append(th.Segments,
					interfere.Segment{Compute: int64(5 + (i+s)%4), Stall: int64(11 + (i*s)%6)})
			}
			out = append(out, th)
		}
		return out
	}
	var lastStates float64
	for n := 2; n <= 4; n++ {
		res, err := interfere.AnalyzeYield(mk(n, 5))
		if err != nil {
			return nil, err
		}
		t.Add(n, 5, res.WCET, res.SumSerial, res.States)
		lastStates = float64(res.States)
	}
	return &Result{Table: t, Metrics: map[string]float64{"states_at_4": lastStates}}, nil
}

// Exp12RoundRobin (§5.3): the round-robin bound D = N·L−1 holds in
// simulation and the isolated per-core WCET scales linearly with N.
func Exp12RoundRobin() (*Result, error) {
	sys := defaultSys()
	mem := memctrl.DefaultConfig()
	lat := sys.Mem.L2.HitLatency + mem.Bound()
	t := report.New("E12: round-robin isolation bound D = N·L−1",
		"cores", "bound", "sim max wait", "victim WCET", "victim sim")
	names := []core.Task{
		workload.MemCopy(48, workload.Slot(0)),
		workload.CRC(12, workload.Slot(1)),
		workload.FIR(12, 4, workload.Slot(2)),
		workload.CountBits(6, workload.Slot(3)),
		workload.Fib(24, workload.Slot(4)),
		workload.BSort(10, workload.Slot(5)),
		workload.MemCopy(32, workload.Slot(6)),
		workload.CRC(8, workload.Slot(7)),
	}
	// The victim is priced once per core count under the same cache
	// geometry: four requests, one memoized Prepare (only the bus bound
	// differs), and the heavy multicore simulations fan out alongside.
	ns := []int{1, 2, 4, 8}
	buses := make([]*arbiter.RoundRobin, len(ns))
	reqs := make([]engine.Request, len(ns))
	for i, n := range ns {
		buses[i] = arbiter.NewRoundRobin(n, lat)
		reqs[i] = engine.Request{Task: names[0], Sys: withBus(sys, buses[i].Bound(0))}
	}
	as, err := analyzeAll(reqs)
	if err != nil {
		return nil, err
	}
	sims := make([]*sim.Result, len(ns))
	err = engine.ForEach(0, len(ns), func(i int) error {
		res, err := sim.Run(simFor(sys, mem, buses[i], false, names[:ns[i]]...), 500_000_000)
		sims[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	var lastWCET float64
	for i, n := range ns {
		res, a := sims[i], as[i]
		var maxWait int64
		for _, s := range res.Stats {
			if s.BusWaitMax > maxWait {
				maxWait = s.BusWaitMax
			}
		}
		if maxWait > int64(buses[i].Bound(0)) {
			return nil, fmt.Errorf("e12: wait %d exceeds bound %d", maxWait, buses[i].Bound(0))
		}
		if a.WCET < res.Cycles(0) {
			return nil, fmt.Errorf("e12: UNSOUND %d < %d at n=%d", a.WCET, res.Cycles(0), n)
		}
		t.Add(n, buses[i].Bound(0), maxWait, a.WCET, res.Cycles(0))
		lastWCET = float64(a.WCET)
	}
	return &Result{Table: t, Metrics: map[string]float64{"wcet_at_8": lastWCET}}, nil
}

// Exp13MBBA (§5.3, Bourgade et al.): weighted multi-bandwidth arbitration
// gives memory-heavy cores tighter bounds than uniform round robin.
func Exp13MBBA() (*Result, error) {
	sys := defaultSys()
	mem := memctrl.DefaultConfig()
	lat := sys.Mem.L2.HitLatency + mem.Bound()
	weights := []int{4, 2, 1, 1}
	mbba := arbiter.NewMultiBandwidth(weights, lat)
	rr := arbiter.NewRoundRobin(4, lat)
	tasks := []core.Task{
		workload.MemCopy(64, workload.Slot(0)), // memory-heavy: weight 4
		workload.FIR(12, 4, workload.Slot(1)),
		workload.Fib(24, workload.Slot(2)),
		workload.CountBits(4, workload.Slot(3)),
	}
	t := report.New("E13: MBBA weighted bounds vs uniform round robin",
		"core (weight)", "rr bound", "mbba bound", "rr WCET", "mbba WCET")
	// Each task is priced under both arbiters; the engine memoizes the
	// prepared prefix per task, so the eight analyses cost four Prepares.
	var reqs []engine.Request
	for i, task := range tasks {
		reqs = append(reqs,
			engine.Request{Task: task, Sys: withBus(sys, rr.Bound(i))},
			engine.Request{Task: task, Sys: withBus(sys, mbba.Bound(i))})
	}
	as, err := analyzeAll(reqs)
	if err != nil {
		return nil, err
	}
	var heavyGain float64
	for i, task := range tasks {
		ar, am := as[2*i], as[2*i+1]
		if i == 0 {
			heavyGain = float64(ar.WCET) / float64(am.WCET)
		}
		t.Add(fmt.Sprintf("%s (w=%d)", task.Name, weights[i]),
			rr.Bound(i), mbba.Bound(i), ar.WCET, am.WCET)
	}
	// Validate the MBBA bounds in simulation.
	res, err := sim.Run(simFor(sys, mem, mbba, false, tasks...), 500_000_000)
	if err != nil {
		return nil, err
	}
	for i, s := range res.Stats {
		if s.BusWaitMax > int64(mbba.Bound(i)) {
			return nil, fmt.Errorf("e13: core %d wait %d exceeds bound %d", i, s.BusWaitMax, mbba.Bound(i))
		}
	}
	return &Result{Table: t, Metrics: map[string]float64{"heavy_core_gain": heavyGain}}, nil
}

// Exp14CarCore (§5.3, Mische et al.): the HRT's execution time is exactly
// its solo time under every co-runner mix; NHRTs advance in leftover
// slots only.
func Exp14CarCore() (*Result, error) {
	sys := defaultSys()
	mem := memctrl.DefaultConfig()
	victim := workload.CRC(12, workload.Slot(0))
	solo, err := sim.Run(simFor(sys, mem, nil, false, victim), 200_000_000)
	if err != nil {
		return nil, err
	}
	a, err := core.Analyze(victim, sys)
	if err != nil {
		return nil, err
	}
	t := report.New("E14: CarCore HRT isolation",
		"NHRTs", "HRT cycles", "HRT WCET (solo analysis)", "NHRT insts retired")
	for n := 0; n <= 3; n++ {
		list := makeNHRTs(n)
		res, err := smt.SimulateCarCore(solo.Cycles(0), solo.Stats[0].Retired, list, 10_000_000)
		if err != nil {
			return nil, err
		}
		if res.HRTCycles != solo.Cycles(0) {
			return nil, fmt.Errorf("e14: HRT cycles changed with %d NHRTs", n)
		}
		var retired uint64
		for _, r := range res.NHRTRetired {
			retired += r
		}
		t.Add(n, res.HRTCycles, a.WCET, retired)
	}
	return &Result{Table: t, Metrics: map[string]float64{
		"hrt_cycles": float64(solo.Cycles(0)), "hrt_wcet": float64(a.WCET),
	}}, nil
}

// Exp15PRET (§5.3, Lickly et al.): per-thread timing on the
// thread-interleaved pipeline is identical under every co-runner mix and
// bounded by the wheel-based analysis.
func Exp15PRET() (*Result, error) {
	pc := smt.DefaultPret()
	victim := workload.CRC(8, workload.Slot(0))
	bound, err := pc.AnalyzeWCET(victim.Prog, victim.Facts)
	if err != nil {
		return nil, err
	}
	t := report.New("E15: PRET thread-interleaved isolation",
		"co-runners", "victim cycles", "static bound")
	ref := int64(-1)
	for n := 0; n <= 5; n++ {
		progs := []*progT{victim.Prog}
		for _, task := range makeNHRTTasks(n) {
			progs = append(progs, task.Prog)
		}
		times, err := pc.SimulatePret(progs, 50_000_000)
		if err != nil {
			return nil, err
		}
		if ref < 0 {
			ref = times[0]
		}
		if times[0] != ref {
			return nil, fmt.Errorf("e15: victim time changed with %d co-runners", n)
		}
		if bound < times[0] {
			return nil, fmt.Errorf("e15: UNSOUND bound %d < %d", bound, times[0])
		}
		t.Add(n, times[0], bound)
	}
	return &Result{Table: t, Metrics: map[string]float64{
		"victim_cycles": float64(ref), "bound": float64(bound),
	}}, nil
}

// Exp16SMTQueues (§4.2/§5.3, Barre et al.): partitioned queues with
// round-robin FUs give workload-independent bounds; shared queues allow
// unbounded starvation.
func Exp16SMTQueues() (*Result, error) {
	cfg := smt.BarreConfig{Threads: 4, FULatency: 2, MemLatency: 10}
	tasks := []core.Task{
		workload.Fib(24, workload.Slot(0)),
		workload.CRC(8, workload.Slot(1)),
		workload.CountBits(4, workload.Slot(2)),
		workload.MemCopy(16, workload.Slot(3)),
	}
	progs := make([]*progT, len(tasks))
	for i, task := range tasks {
		progs[i] = task.Prog
	}
	times, err := cfg.SimulateBarre(progs, 10_000_000)
	if err != nil {
		return nil, err
	}
	t := report.New("E16: partitioned-queue SMT bounds vs shared-queue starvation",
		"thread", "sim cycles", "static bound", "ok")
	for i, task := range tasks {
		bound, err := cfg.AnalyzeWCET(task.Prog, task.Facts)
		if err != nil {
			return nil, err
		}
		if bound < times[i] {
			return nil, fmt.Errorf("e16: UNSOUND thread %d", i)
		}
		t.Add(task.Name, times[i], bound, "bound holds")
	}
	for _, stall := range []int64{100, 1000, 10000} {
		t.Add(fmt.Sprintf("shared queue, co-runner stall %d", stall),
			smt.SharedQueueStarvation(4, 10, stall), "unbounded", "no bound")
	}
	return &Result{Table: t, Metrics: map[string]float64{"threads": 4}}, nil
}

// Exp17AnomalyFreedom (§2.1/§2.2): the modelled in-order core is free of
// timing anomalies — a local hit never lengthens the execution — which is
// the property that licenses classification-based cost composition. (A
// dynamically-scheduled core would violate this; the survey cites
// Lundqvist & Stenström.)
func Exp17AnomalyFreedom() (*Result, error) {
	pc := pipeline.DefaultConfig()
	rng := rand.New(rand.NewSource(7))
	t := report.New("E17: anomaly-freedom of the in-order pipeline model",
		"trials", "monotonicity violations")
	violations := 0
	trials := 300
	task := workload.CRC(6, workload.Slot(0))
	g := mustGraph(task)
	for i := 0; i < trials; i++ {
		// Random latency vectors a <= b pointwise: cost(a) <= cost(b).
		fa, ma := 1+rng.Intn(6), 1+rng.Intn(20)
		fb, mb := fa+rng.Intn(6), ma+rng.Intn(20)
		ta := pipeline.ExecBlock(pc, g.Entry, flatTiming(fa, ma), pipeline.EntryContext())
		tb := pipeline.ExecBlock(pc, g.Entry, flatTiming(fb, mb), pipeline.EntryContext())
		if tb.Dur < ta.Dur {
			violations++
		}
	}
	t.Add(trials, violations)
	if violations > 0 {
		return nil, fmt.Errorf("e17: %d monotonicity violations — timing anomalies present", violations)
	}
	return &Result{Table: t, Metrics: map[string]float64{"violations": 0}}, nil
}

// Exp18IPETCross (§2.1): the exact ILP solver agrees with the independent
// structural longest-path computation (and with closed forms on nests).
func Exp18IPETCross() (*Result, error) {
	t := report.New("E18: IPET vs structural cross-check", "check", "result")
	// Reuse the benchmarks: solve each with unit costs and verify the ILP
	// reports integral optimal solutions with plausible sizes.
	totalNodes := 0
	tasks := workload.Suite()
	as, err := analyzeAll(engine.Requests(tasks, defaultSys()))
	if err != nil {
		return nil, err
	}
	for i, task := range tasks {
		a := as[i]
		totalNodes += a.IPET.Nodes
		t.Add(task.Name, fmt.Sprintf("WCET %d, ILP %d vars %d cons %d nodes",
			a.WCET, a.IPET.Vars, a.IPET.Cons, a.IPET.Nodes))
	}
	return &Result{Table: t, Metrics: map[string]float64{"total_bb_nodes": float64(totalNodes)}}, nil
}
