// Package experiments regenerates, one function per experiment, the
// comparative claims of Rochange's PPES 2011 survey (the paper has no
// numbered tables or figures; DESIGN.md maps each experiment to the
// survey section whose claim it reproduces). Each experiment returns a
// printable table plus scalar metrics for the benchmark harness.
package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"paratime/internal/arbiter"
	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/engine"
	"paratime/internal/interfere"
	"paratime/internal/memctrl"
	"paratime/internal/partition"
	"paratime/internal/pipeline"
	"paratime/internal/report"
	"paratime/internal/sched"
	"paratime/internal/sim"
	"paratime/internal/smt"
	"paratime/internal/spec"
	"paratime/internal/workload"
)

// Result is one experiment's output.
type Result struct {
	Table   *report.Table
	Metrics map[string]float64
}

// Runner is an experiment entry point.
type Runner func() (*Result, error)

// All maps experiment ids to runners.
var All = map[string]Runner{
	"e1": Exp01SoloWCET, "e2": Exp02UnsafeSolo, "e3": Exp03Measurement,
	"e4": Exp04YanZhang, "e5": Exp05JointScaling, "e6": Exp06Lifetime,
	"e7": Exp07Bypass, "e8": Exp08PartitionLocking, "e9": Exp09Bankization,
	"e10": Exp10YieldCFG, "e11": Exp11TDMA, "e12": Exp12RoundRobin,
	"e13": Exp13MBBA, "e14": Exp14CarCore, "e15": Exp15PRET,
	"e16": Exp16SMTQueues, "e17": Exp17AnomalyFreedom, "e18": Exp18IPETCross,
}

// IDs lists experiment ids in order.
var IDs = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
	"e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18"}

// defaultSys is the canonical default system (one source, shared with
// the facade and the Scenario decoder).
func defaultSys() core.SystemConfig { return core.DefaultSystem() }

// simFor abbreviates the shared sim constructor in experiment bodies.
func simFor(sys core.SystemConfig, mem memctrl.Config, bus arbiter.Arbiter, shared bool, tasks ...core.Task) sim.System {
	return sim.FromConfig(sys, mem, bus, shared, tasks...)
}

// Exp01SoloWCET (§2.1): the solo static analysis is safe and reasonably
// tight on every benchmark: WCET >= simulated cycles, modest ratio.
// Rebased onto the Scenario API: one declarative solo request with
// simulation validation (analysis and sims fan out through the engine).
// The exhaustive-exploration oracle enumerates initial cache states per
// task, so the table also reports exact_worst and the tightness factor
// exact_worst/WCET — the measured gap between the bound and the true
// worst case over the explored state space.
func Exp01SoloWCET() (*Result, error) {
	sc, err := scenarioE01()
	if err != nil {
		return nil, err
	}
	rep, err := runScenario(sc)
	if err != nil {
		return nil, err
	}
	t := report.New("E1: solo static WCET vs simulation (private caches)",
		"task", "WCET", "sim cycles", "ratio", "exact worst", "tightness", "classes")
	worst, worstTight := 0.0, 0.0
	for i, tr := range rep.Tasks {
		sr := rep.Sim[i]
		if !sr.Sound {
			return nil, fmt.Errorf("e1: UNSOUND %s: %d < %d", tr.Name, tr.WCET, sr.Cycles)
		}
		if err := checkExplored(tr, sr.Cycles); err != nil {
			return nil, fmt.Errorf("e1: %w", err)
		}
		r := float64(tr.WCET) / float64(sr.Cycles)
		if r > worst {
			worst = r
		}
		if tr.Tightness > worstTight {
			worstTight = tr.Tightness
		}
		t.Add(tr.Name, tr.WCET, sr.Cycles, r, tr.ExactWorst, fmt.Sprintf("%.4f", tr.Tightness), tr.Classes)
	}
	return &Result{Table: t, Metrics: map[string]float64{
		"worst_ratio":     worst,
		"worst_tightness": worstTight,
	}}, nil
}

// checkExplored enforces the oracle's sandwich on one explored task
// report: sim <= exact_worst <= WCET, with a replayable witness.
func checkExplored(tr spec.TaskReport, simCycles int64) error {
	if tr.ExactWorst <= 0 || tr.Witness == nil {
		return fmt.Errorf("%s: exploration produced no exact worst case", tr.Name)
	}
	if tr.ExactWorst > tr.WCET {
		return fmt.Errorf("%s: UNSOUND exact worst %d exceeds WCET %d", tr.Name, tr.ExactWorst, tr.WCET)
	}
	if tr.ExactWorst < simCycles {
		return fmt.Errorf("%s: exact worst %d below single-trace sim %d", tr.Name, tr.ExactWorst, simCycles)
	}
	return nil
}

// Exp02UnsafeSolo (§2.2): the solo bound, computed as if the shared L2
// and bus were private, is exceeded by observed execution under
// co-runners — ignoring resource sharing is unsafe.
//
// The victim is an instruction-side working set: its loop body overflows
// the tiny L1I but fits the shared L2, so the solo analysis soundly
// prices the refetches as cheap L2 hits (PERSISTENT). Thrashing
// co-runners evict those lines and queue on the bus, pushing the observed
// time past the solo bound.
func Exp02UnsafeSolo() (*Result, error) {
	sys := defaultSys()
	sys.Mem.L1I = cache.Config{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	small := cache.Config{Name: "L2", Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &small
	mem := memctrl.DefaultConfig()
	victim := bigLoopTask(60, 96)
	soloA, err := core.Analyze(victim, sys) // private-L2, no-bus assumption
	if err != nil {
		return nil, err
	}
	lat := small.HitLatency + mem.Bound()
	t := report.New("E2: solo WCET vs observed cycles with co-runners (shared L2 + bus)",
		"co-runners", "victim observed", "solo WCET", "observed/solo")
	soloSim, err := sim.Run(simFor(sys, mem, nil, true, victim), 200_000_000)
	if err != nil {
		return nil, err
	}
	t.Add(0, soloSim.Cycles(0), soloA.WCET, report.Ratio(soloSim.Cycles(0), soloA.WCET))
	worst := int64(0)
	for n := 1; n <= 3; n++ {
		tasks := []core.Task{victim}
		for i := 0; i < n; i++ {
			tasks = append(tasks, workload.LongThrasher(4096, 32, 200, workload.Slot(i+1)))
		}
		bus := arbiter.NewRoundRobin(n+1, lat)
		res, err := sim.Run(simFor(sys, mem, bus, true, tasks...), 500_000_000)
		if err != nil {
			return nil, err
		}
		t.Add(n, res.Cycles(0), soloA.WCET, report.Ratio(res.Cycles(0), soloA.WCET))
		if res.Cycles(0) > worst {
			worst = res.Cycles(0)
		}
	}
	return &Result{Table: t, Metrics: map[string]float64{
		"solo_wcet":      float64(soloA.WCET),
		"worst_observed": float64(worst),
		"exceeded":       boolMetric(worst > soloA.WCET),
	}}, nil
}

// Exp03Measurement (§2.2): measurement-based analysis on a parallel
// architecture under-estimates: the max over observed co-schedules misses
// interference a different co-runner triggers.
func Exp03Measurement() (*Result, error) {
	sys := defaultSys()
	small := cache.Config{Name: "L2", Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &small
	mem := memctrl.DefaultConfig()
	victim := workload.MemCopy(64, workload.Slot(0))
	lat := small.HitLatency + mem.Bound()
	// "Testing campaign": benign co-runners only.
	benign := []core.Task{
		workload.Fib(24, workload.Slot(1)),
		workload.CountBits(4, workload.Slot(2)),
		workload.CRC(8, workload.Slot(3)),
	}
	observedMax := int64(0)
	for _, co := range benign {
		bus := arbiter.NewRoundRobin(2, lat)
		res, err := sim.Run(simFor(sys, mem, bus, true, victim, co), 500_000_000)
		if err != nil {
			return nil, err
		}
		if res.Cycles(0) > observedMax {
			observedMax = res.Cycles(0)
		}
	}
	// Deployment meets a thrasher.
	bus := arbiter.NewRoundRobin(2, lat)
	res, err := sim.Run(simFor(sys, mem, bus, true, victim,
		workload.Thrasher(4096, 32, workload.Slot(1))), 500_000_000)
	if err != nil {
		return nil, err
	}
	t := report.New("E3: measurement-based bound vs unobserved co-runner",
		"campaign", "victim cycles")
	t.Add("max over benign co-runners (the 'measured WCET')", observedMax)
	t.Add("same victim vs thrasher", res.Cycles(0))
	return &Result{Table: t, Metrics: map[string]float64{
		"measured":       float64(observedMax),
		"actual":         float64(res.Cycles(0)),
		"underestimated": boolMetric(res.Cycles(0) > observedMax),
	}}, nil
}

// Exp04YanZhang (§4.1): direct-mapped shared-L2 joint analysis is safe
// but conflicts inflate the WCET as co-runners are added. Rebased onto
// the Scenario API: one joint/directmapped scenario per co-runner count.
func Exp04YanZhang() (*Result, error) {
	t := report.New("E4: Yan & Zhang direct-mapped shared-L2 joint analysis",
		"co-runners", "victim solo WCET", "victim joint WCET", "inflation")
	var last float64
	for n := 1; n <= 4; n++ {
		sc, err := scenarioE04(n)
		if err != nil {
			return nil, err
		}
		rep, err := runScenario(sc)
		if err != nil {
			return nil, err
		}
		victim := rep.Tasks[0]
		if victim.WCET < victim.SoloWCET {
			return nil, fmt.Errorf("e4: joint tighter than solo")
		}
		last = float64(victim.WCET) / float64(victim.SoloWCET)
		t.Add(n, victim.SoloWCET, victim.WCET, last)
	}
	return &Result{Table: t, Metrics: map[string]float64{"inflation_at_4": last}}, nil
}

// Exp05JointScaling (§4.1): as co-runner count and footprint grow, the
// victim's L2 classifications collapse toward NC/AM and the WCET
// over-estimation becomes overwhelming — the survey's scalability
// concern with joint analysis.
func Exp05JointScaling() (*Result, error) {
	sys := defaultSys()
	sys.Mem.L1I = cache.Config{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	l2 := cache.Config{Name: "L2", Sets: 32, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	t := report.New("E5: joint-analysis classification collapse with co-runner pressure",
		"co-runners", "L2 AH", "L2 PS", "L2 AM", "L2 NC", "victim WCET")
	var metrics map[string]float64
	for n := 0; n <= 4; n++ {
		tasks := []core.Task{bigLoopTask(40, 64)}
		for i := 0; i < n; i++ {
			tasks = append(tasks, workload.Thrasher(2048, 32, workload.Slot(i+1)))
		}
		as, err := prepareAll(tasks, sys)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			if err := interfere.Apply(as[0], as, interfere.AgeShift); err != nil {
				return nil, err
			}
		} else if err := as[0].ComputeWCET(); err != nil {
			return nil, err
		}
		c := as[0].L2.CountClasses()
		t.Add(n, c[cache.AlwaysHit], c[cache.Persistent], c[cache.AlwaysMiss],
			c[cache.NotClassified], as[0].WCET)
		metrics = map[string]float64{
			"nc_at_max": float64(c[cache.NotClassified]),
			"wcet":      float64(as[0].WCET),
		}
	}
	return &Result{Table: t, Metrics: metrics}, nil
}

// Exp06Lifetime (§4.1): Li et al.'s lifetime refinement removes
// conflicts between tasks whose schedule windows cannot overlap.
func Exp06Lifetime() (*Result, error) {
	sys := defaultSys()
	sys.Mem.L1I = cache.Config{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	l2 := cache.Config{Name: "L2", Sets: 32, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	// Bases 0x4000 apart alias onto the same L2 sets: every pair of
	// overlapping tasks fully conflicts, which is exactly when lifetime
	// separation pays off.
	tasks := []core.Task{
		bigLoopTaskAt(30, 48, 0x1000),
		bigLoopTaskAt(30, 48, 0x5000),
		bigLoopTaskAt(30, 48, 0x9000),
	}
	as, err := prepareAll(tasks, sys)
	if err != nil {
		return nil, err
	}
	specs := []sched.TaskSpec{
		{Name: tasks[0].Name, Core: 0, Priority: 0},
		{Name: tasks[1].Name, Core: 1, Priority: 0, Deps: []int{0}}, // serialized after 0
		{Name: tasks[2].Name, Core: 2, Priority: 0},
	}
	res, err := interfere.AnalyzeWithLifetimes(as, specs, interfere.AgeShift)
	if err != nil {
		return nil, err
	}
	t := report.New("E6: all-overlap joint WCET vs lifetime-refined (Li et al.)",
		"task", "solo", "all-overlap", "refined", "saved")
	saved := 0.0
	for i := range res.Names {
		d := res.JointWCET[i] - res.RefinedWCET[i]
		saved += float64(d)
		t.Add(res.Names[i], res.SoloWCET[i], res.JointWCET[i], res.RefinedWCET[i], d)
	}
	return &Result{Table: t, Metrics: map[string]float64{"total_saved": saved,
		"iterations": float64(res.Iterations)}}, nil
}

// Exp07Bypass (§4.1): bypassing single-usage blocks removes their L2
// pollution and tightens the co-runners' joint WCETs (Hardy et al.).
func Exp07Bypass() (*Result, error) {
	sys := defaultSys()
	l2 := cache.Config{Name: "L2", Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	sys.Mem.L1I = cache.Config{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	mk := func() ([]*core.Analysis, error) {
		// Task with single-usage straight-line loads placed two-deep on
		// the victim's L2 sets (two foreign lines exceed the 2-way
		// associativity), plus the loop victim itself.
		onceSrc := `
        li   r3, 0x6000
        ld   r2, 0(r3)
        ld   r4, 64(r3)
        ld   r5, 0x200(r3)
        ld   r6, 0x240(r3)
        ld   r7, 0x400(r3)
        halt
.data 0x6000
        .word 1`
		once := core.Task{Name: "once", Prog: mustAsm("once", onceSrc)}
		once.Prog.Rebase(0x3000)
		victim := bigLoopTaskAt(30, 48, 0x1000)
		return prepareAll([]core.Task{once, victim}, sys)
	}
	as, err := mk()
	if err != nil {
		return nil, err
	}
	if err := interfere.Apply(as[1], as, interfere.AgeShift); err != nil {
		return nil, err
	}
	without := as[1].WCET
	as2, err := mk()
	if err != nil {
		return nil, err
	}
	nBypassed, err := interfere.ApplyBypass(as2[0])
	if err != nil {
		return nil, err
	}
	if err := interfere.Apply(as2[1], as2, interfere.AgeShift); err != nil {
		return nil, err
	}
	with := as2[1].WCET
	t := report.New("E7: single-usage L2 bypass (Hardy et al.)",
		"configuration", "victim joint WCET")
	t.Add("no bypass", without)
	t.Add(fmt.Sprintf("bypass (%d refs)", nBypassed), with)
	return &Result{Table: t, Metrics: map[string]float64{
		"without": float64(without), "with": float64(with),
		"bypassed_refs": float64(nBypassed),
	}}, nil
}

// Exp08PartitionLocking (§4.2, Suhendra & Mitra): core-based partitioning
// beats task-based; dynamic locking beats static on phased workloads.
func Exp08PartitionLocking() (*Result, error) {
	sys := defaultSys()
	l2 := cache.Config{Name: "L2", Sets: 32, Ways: 4, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	tasks := []core.Task{
		workload.MemCopy(48, workload.Slot(0)),
		workload.CRC(12, workload.Slot(1)),
		workload.FIR(12, 4, workload.Slot(2)),
		workload.CountBits(6, workload.Slot(3)),
	}
	taskW, err := partition.WCETs(tasks, sys, partition.TaskBased, nil, 2)
	if err != nil {
		return nil, err
	}
	coreW, err := partition.WCETs(tasks, sys, partition.CoreBased, []int{0, 0, 1, 1}, 2)
	if err != nil {
		return nil, err
	}
	t := report.New("E8: partitioning scheme × locking (4 tasks, 2 cores)",
		"task", "task-based WCET", "core-based WCET")
	var sumT, sumC float64
	for i := range tasks {
		sumT += float64(taskW[i])
		sumC += float64(coreW[i])
		t.Add(tasks[i].Name, taskW[i], coreW[i])
	}
	phased := phasedTask()
	st, err := partition.StaticLock(phased, sys, 40)
	if err != nil {
		return nil, err
	}
	dy, err := partition.DynamicLock(phased, sys, 40)
	if err != nil {
		return nil, err
	}
	t.Add("-- locking (phased task) --", "static "+fmt.Sprint(st.WCET), "dynamic "+fmt.Sprint(dy.WCET))
	return &Result{Table: t, Metrics: map[string]float64{
		"taskbased_sum": sumT, "corebased_sum": sumC,
		"static_lock": float64(st.WCET), "dynamic_lock": float64(dy.WCET),
	}}, nil
}

// Exp09Bankization (§4.2, Paolieri et al.): with equal capacity
// fractions, bank partitioning (full associativity kept) yields WCETs at
// least as tight as way partitioning (columnization). Rebased onto the
// Scenario API: the two partitioning schemes are two partition
// scenarios over the same task set (the assocstress task loads three
// scalars exactly one L2 way-group apart: three lines in one set
// survive 4 ways bankized but thrash 2 ways columnized — the shape
// behind Paolieri et al.'s finding).
func Exp09Bankization() (*Result, error) {
	scs, err := exportE09()
	if err != nil {
		return nil, err
	}
	repCol, err := runScenario(scs[0])
	if err != nil {
		return nil, err
	}
	repBank, err := runScenario(scs[1])
	if err != nil {
		return nil, err
	}
	t := report.New("E9: columnization vs bankization (half the cache each)",
		"task", "columnized WCET (2 ways)", "bankized WCET (2 of 4 banks)", "bank/col")
	wins := 0
	for i := range repCol.Tasks {
		ac, ab := repCol.Tasks[i], repBank.Tasks[i]
		if ab.WCET <= ac.WCET {
			wins++
		}
		t.Add(ac.Name, ac.WCET, ab.WCET, report.Ratio(ab.WCET, ac.WCET))
	}
	return &Result{Table: t, Metrics: map[string]float64{"bank_wins": float64(wins)}}, nil
}

// Exp10YieldCFG (§5.1, Crowley & Baer): the joint yield analysis is exact
// for small thread counts but its global state space multiplies with
// every added thread.
func Exp10YieldCFG() (*Result, error) {
	t := report.New("E10: global-CFG yield analysis growth",
		"threads", "segments each", "joint WCET", "serial bound", "states")
	mk := func(n, segs int) []interfere.YieldThread {
		var out []interfere.YieldThread
		for i := 0; i < n; i++ {
			th := interfere.YieldThread{Name: fmt.Sprintf("t%d", i)}
			for s := 0; s < segs; s++ {
				th.Segments = append(th.Segments,
					interfere.Segment{Compute: int64(5 + (i+s)%4), Stall: int64(11 + (i*s)%6)})
			}
			out = append(out, th)
		}
		return out
	}
	var lastStates float64
	for n := 2; n <= 4; n++ {
		res, err := interfere.AnalyzeYield(mk(n, 5))
		if err != nil {
			return nil, err
		}
		t.Add(n, 5, res.WCET, res.SumSerial, res.States)
		lastStates = float64(res.States)
	}
	return &Result{Table: t, Metrics: map[string]float64{"states_at_4": lastStates}}, nil
}

// Exp12RoundRobin (§5.3): the round-robin bound D = N·L−1 holds in
// simulation and the isolated per-core WCET scales linearly with N.
// Rebased onto the Scenario API: one bus/roundrobin scenario per core
// count (analysis and the heavy multicore simulation in each run fan
// out through the engine; the per-n scenarios run concurrently too).
func Exp12RoundRobin() (*Result, error) {
	t := report.New("E12: round-robin isolation bound D = N·L−1",
		"cores", "bound", "sim max wait", "victim WCET", "victim sim", "victim exact", "tightness")
	ns := []int{1, 2, 4, 8}
	reps := make([]*spec.Report, len(ns))
	err := engine.ForEach(context.Background(), 0, len(ns), func(i int) error {
		sc, err := scenarioE12(ns[i])
		if err != nil {
			return err
		}
		reps[i], err = runScenario(sc)
		return err
	})
	if err != nil {
		return nil, err
	}
	var lastWCET float64
	for i, n := range ns {
		rep := reps[i]
		victim := rep.Tasks[0]
		var maxWait int64
		for _, sr := range rep.Sim {
			if sr.BusWaitMax > maxWait {
				maxWait = sr.BusWaitMax
			}
		}
		if maxWait > int64(victim.BusBound) {
			return nil, fmt.Errorf("e12: wait %d exceeds bound %d", maxWait, victim.BusBound)
		}
		if !rep.Sim[0].Sound {
			return nil, fmt.Errorf("e12: UNSOUND %d < %d at n=%d", victim.WCET, rep.Sim[0].Cycles, n)
		}
		if err := checkExplored(victim, rep.Sim[0].Cycles); err != nil {
			return nil, fmt.Errorf("e12 n=%d: %w", n, err)
		}
		t.Add(n, victim.BusBound, maxWait, victim.WCET, rep.Sim[0].Cycles,
			victim.ExactWorst, fmt.Sprintf("%.4f", victim.Tightness))
		lastWCET = float64(victim.WCET)
	}
	return &Result{Table: t, Metrics: map[string]float64{"wcet_at_8": lastWCET}}, nil
}

// Exp13MBBA (§5.3, Bourgade et al.): weighted multi-bandwidth arbitration
// gives memory-heavy cores tighter bounds than uniform round robin.
// Rebased onto the Scenario API: the two compared regimes are two bus
// scenarios over the same task set (the engine memoizes the prepared
// prefix per task, so the eight analyses still cost four Prepares); the
// MBBA scenario carries the simulation validation.
func Exp13MBBA() (*Result, error) {
	weights := []int{4, 2, 1, 1}
	scRR, err := scenarioE13RR()
	if err != nil {
		return nil, err
	}
	scMB, err := scenarioE13MBBA()
	if err != nil {
		return nil, err
	}
	repRR, err := runScenario(scRR)
	if err != nil {
		return nil, err
	}
	repMB, err := runScenario(scMB)
	if err != nil {
		return nil, err
	}
	t := report.New("E13: MBBA weighted bounds vs uniform round robin",
		"core (weight)", "rr bound", "mbba bound", "rr WCET", "mbba WCET")
	var heavyGain float64
	for i := range repRR.Tasks {
		ar, am := repRR.Tasks[i], repMB.Tasks[i]
		if i == 0 {
			heavyGain = float64(ar.WCET) / float64(am.WCET)
		}
		t.Add(fmt.Sprintf("%s (w=%d)", ar.Name, weights[i]),
			ar.BusBound, am.BusBound, ar.WCET, am.WCET)
	}
	// The MBBA bounds are validated in the scenario's simulation run.
	for i, sr := range repMB.Sim {
		if sr.BusWaitMax > int64(repMB.Tasks[i].BusBound) {
			return nil, fmt.Errorf("e13: core %d wait %d exceeds bound %d", i, sr.BusWaitMax, repMB.Tasks[i].BusBound)
		}
	}
	return &Result{Table: t, Metrics: map[string]float64{"heavy_core_gain": heavyGain}}, nil
}

// Exp14CarCore (§5.3, Mische et al.): the HRT's execution time is exactly
// its solo time under every co-runner mix; NHRTs advance in leftover
// slots only.
func Exp14CarCore() (*Result, error) {
	sys := defaultSys()
	mem := memctrl.DefaultConfig()
	victim := workload.CRC(12, workload.Slot(0))
	solo, err := sim.Run(simFor(sys, mem, nil, false, victim), 200_000_000)
	if err != nil {
		return nil, err
	}
	a, err := core.Analyze(victim, sys)
	if err != nil {
		return nil, err
	}
	t := report.New("E14: CarCore HRT isolation",
		"NHRTs", "HRT cycles", "HRT WCET (solo analysis)", "NHRT insts retired")
	for n := 0; n <= 3; n++ {
		list := makeNHRTs(n)
		res, err := smt.SimulateCarCore(solo.Cycles(0), solo.Stats[0].Retired, list, 10_000_000)
		if err != nil {
			return nil, err
		}
		if res.HRTCycles != solo.Cycles(0) {
			return nil, fmt.Errorf("e14: HRT cycles changed with %d NHRTs", n)
		}
		var retired uint64
		for _, r := range res.NHRTRetired {
			retired += r
		}
		t.Add(n, res.HRTCycles, a.WCET, retired)
	}
	return &Result{Table: t, Metrics: map[string]float64{
		"hrt_cycles": float64(solo.Cycles(0)), "hrt_wcet": float64(a.WCET),
	}}, nil
}

// Exp15PRET (§5.3, Lickly et al.): per-thread timing on the
// thread-interleaved pipeline is identical under every co-runner mix and
// bounded by the wheel-based analysis. Rebased onto the Scenario API:
// one pret scenario per co-runner count, each simulation-validated.
func Exp15PRET() (*Result, error) {
	t := report.New("E15: PRET thread-interleaved isolation",
		"co-runners", "victim cycles", "static bound")
	ref, bound := int64(-1), int64(0)
	for n := 0; n <= 5; n++ {
		sc, err := scenarioE15(n)
		if err != nil {
			return nil, err
		}
		rep, err := runScenario(sc)
		if err != nil {
			return nil, err
		}
		bound = rep.Tasks[0].WCET
		cycles := rep.Sim[0].Cycles
		if ref < 0 {
			ref = cycles
		}
		if cycles != ref {
			return nil, fmt.Errorf("e15: victim time changed with %d co-runners", n)
		}
		if !rep.Sim[0].Sound {
			return nil, fmt.Errorf("e15: UNSOUND bound %d < %d", bound, cycles)
		}
		t.Add(n, cycles, bound)
	}
	return &Result{Table: t, Metrics: map[string]float64{
		"victim_cycles": float64(ref), "bound": float64(bound),
	}}, nil
}

// Exp16SMTQueues (§4.2/§5.3, Barre et al.): partitioned queues with
// round-robin FUs give workload-independent bounds; shared queues allow
// unbounded starvation. The partitioned-queue half is rebased onto the
// Scenario API (one smt scenario, simulation-validated); the starvation
// rows remain the analytical closed form.
func Exp16SMTQueues() (*Result, error) {
	sc, err := scenarioE16()
	if err != nil {
		return nil, err
	}
	rep, err := runScenario(sc)
	if err != nil {
		return nil, err
	}
	t := report.New("E16: partitioned-queue SMT bounds vs shared-queue starvation",
		"thread", "sim cycles", "static bound", "ok")
	for i, tr := range rep.Tasks {
		if !rep.Sim[i].Sound {
			return nil, fmt.Errorf("e16: UNSOUND thread %d", i)
		}
		t.Add(tr.Name, rep.Sim[i].Cycles, tr.WCET, "bound holds")
	}
	for _, stall := range []int64{100, 1000, 10000} {
		t.Add(fmt.Sprintf("shared queue, co-runner stall %d", stall),
			smt.SharedQueueStarvation(4, 10, stall), "unbounded", "no bound")
	}
	return &Result{Table: t, Metrics: map[string]float64{"threads": 4}}, nil
}

// Exp17AnomalyFreedom (§2.1/§2.2): the modelled in-order core is free of
// timing anomalies — a local hit never lengthens the execution — which is
// the property that licenses classification-based cost composition. (A
// dynamically-scheduled core would violate this; the survey cites
// Lundqvist & Stenström.)
func Exp17AnomalyFreedom() (*Result, error) {
	pc := pipeline.DefaultConfig()
	rng := rand.New(rand.NewSource(7))
	t := report.New("E17: anomaly-freedom of the in-order pipeline model",
		"trials", "monotonicity violations")
	violations := 0
	trials := 300
	task := workload.CRC(6, workload.Slot(0))
	g := mustGraph(task)
	for i := 0; i < trials; i++ {
		// Random latency vectors a <= b pointwise: cost(a) <= cost(b).
		fa, ma := 1+rng.Intn(6), 1+rng.Intn(20)
		fb, mb := fa+rng.Intn(6), ma+rng.Intn(20)
		ta := pipeline.ExecBlock(pc, g.Entry, flatTiming(fa, ma), pipeline.EntryContext())
		tb := pipeline.ExecBlock(pc, g.Entry, flatTiming(fb, mb), pipeline.EntryContext())
		if tb.Dur < ta.Dur {
			violations++
		}
	}
	t.Add(trials, violations)
	if violations > 0 {
		return nil, fmt.Errorf("e17: %d monotonicity violations — timing anomalies present", violations)
	}
	return &Result{Table: t, Metrics: map[string]float64{"violations": 0}}, nil
}

// Exp18IPETCross (§2.1): the exact ILP solver agrees with the independent
// structural longest-path computation (and with closed forms on nests).
func Exp18IPETCross() (*Result, error) {
	t := report.New("E18: IPET vs structural cross-check", "check", "result")
	// Reuse the benchmarks: solve each with unit costs and verify the ILP
	// reports integral optimal solutions with plausible sizes.
	totalNodes := 0
	tasks := workload.Suite()
	as, err := analyzeAll(engine.Requests(tasks, defaultSys()))
	if err != nil {
		return nil, err
	}
	for i, task := range tasks {
		a := as[i]
		totalNodes += a.IPET.Nodes
		t.Add(task.Name, fmt.Sprintf("WCET %d, ILP %d vars %d cons %d nodes",
			a.WCET, a.IPET.Vars, a.IPET.Cons, a.IPET.Nodes))
	}
	return &Result{Table: t, Metrics: map[string]float64{"total_bb_nodes": float64(totalNodes)}}, nil
}
