package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"paratime/internal/spec"
)

// TightnessEntry is one (scenario, task) row of the precision baseline:
// the static bound, the exact worst case found by bounded exhaustive
// exploration, and their ratio. TIGHTNESS.json at the repo root holds
// the committed baseline; the CI gate recomputes the entries and fails
// when a bound loosens (precision regression), when the exact worst
// drifts (the oracle or the simulated machine changed), or when
// exact > bound (soundness break).
type TightnessEntry struct {
	Scenario  string  `json:"scenario"`
	Task      string  `json:"task"`
	Exact     int64   `json:"exact"`
	Bound     int64   `json:"bound"`
	Tightness float64 `json:"tightness"`
}

// tightnessScenarios builds every explorable experiment scenario the
// baseline tracks: E1's solo suite and E12's round-robin ladder.
func tightnessScenarios() ([]*spec.Scenario, error) {
	var out []*spec.Scenario
	sc, err := scenarioE01()
	if err != nil {
		return nil, err
	}
	out = append(out, sc)
	for _, n := range []int{1, 2, 4, 8} {
		sc, err := scenarioE12(n)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// TightnessAll runs every tracked scenario and collects one entry per
// explored task, in deterministic (scenario, task) order.
func TightnessAll() ([]TightnessEntry, error) {
	scs, err := tightnessScenarios()
	if err != nil {
		return nil, err
	}
	var out []TightnessEntry
	for _, sc := range scs {
		rep, err := runScenario(sc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		for _, tr := range rep.Tasks {
			if tr.ExactWorst == 0 {
				continue
			}
			out = append(out, TightnessEntry{
				Scenario:  sc.Name,
				Task:      tr.Name,
				Exact:     tr.ExactWorst,
				Bound:     tr.WCET,
				Tightness: tr.Tightness,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tightness: no explored tasks in any tracked scenario")
	}
	return out, nil
}

// EncodeTightness renders entries as the committed TIGHTNESS.json form.
//
//paralint:canonical the committed golden encoder: fixed json tags, sorted entries, indented form pinned by TestTightnessGolden
func EncodeTightness(entries []TightnessEntry) ([]byte, error) {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeTightness parses a committed baseline.
func DecodeTightness(data []byte) ([]TightnessEntry, error) {
	var entries []TightnessEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("tightness baseline: %w", err)
	}
	return entries, nil
}

// CheckTightness is the precision regression gate: compare freshly
// computed entries against the committed baseline. It fails on
//
//   - soundness breaks: exact > bound in the current entries,
//   - precision regressions: a current bound above the baseline bound,
//   - oracle drift: a current exact worst differing from the baseline
//     (exploration is deterministic, so any drift means the simulated
//     machine or the oracle changed and the baseline must be re-recorded),
//   - coverage drift: entries appearing or disappearing.
//
// A bound below the baseline (the analysis got tighter) passes; rerun
// with -update to record the improvement. All violations are reported,
// not just the first.
func CheckTightness(current, baseline []TightnessEntry) error {
	key := func(e TightnessEntry) string { return e.Scenario + "/" + e.Task }
	base := make(map[string]TightnessEntry, len(baseline))
	for _, e := range baseline {
		base[key(e)] = e
	}
	var problems []string
	seen := make(map[string]bool, len(current))
	for _, e := range current {
		k := key(e)
		seen[k] = true
		if e.Exact > e.Bound {
			problems = append(problems, fmt.Sprintf(
				"%s: UNSOUND: exact worst %d exceeds static bound %d", k, e.Exact, e.Bound))
			continue
		}
		b, ok := base[k]
		if !ok {
			problems = append(problems, fmt.Sprintf(
				"%s: not in baseline (new entry; rerun with -update)", k))
			continue
		}
		if e.Bound > b.Bound {
			problems = append(problems, fmt.Sprintf(
				"%s: precision regression: bound loosened %d -> %d (exact worst %d)",
				k, b.Bound, e.Bound, e.Exact))
		}
		if e.Exact != b.Exact {
			problems = append(problems, fmt.Sprintf(
				"%s: exact worst drifted %d -> %d (machine or oracle changed; rerun with -update)",
				k, b.Exact, e.Exact))
		}
	}
	for _, e := range baseline {
		if !seen[key(e)] {
			problems = append(problems, fmt.Sprintf(
				"%s: in baseline but no longer produced (rerun with -update)", key(e)))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("tightness gate failed:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}
