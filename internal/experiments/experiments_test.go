package experiments

import "testing"

// TestAllExperimentsRun executes every experiment end to end and checks
// the claims they internally assert (each experiment returns an error on
// any soundness or shape violation).
func TestAllExperimentsRun(t *testing.T) {
	for _, id := range IDs {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := All[id]()
			if err != nil {
				t.Fatal(err)
			}
			if res.Table == nil || len(res.Table.Rows) == 0 {
				t.Fatal("empty table")
			}
			if res.Table.String() == "" {
				t.Fatal("unrenderable table")
			}
		})
	}
}

// TestClaimDirections spot-checks the headline directions of the central
// experiments (who wins, what grows).
func TestClaimDirections(t *testing.T) {
	e2, err := Exp02UnsafeSolo()
	if err != nil {
		t.Fatal(err)
	}
	if e2.Metrics["exceeded"] != 1 {
		t.Error("E2: co-runners did not push the victim past its solo bound")
	}
	e3, err := Exp03Measurement()
	if err != nil {
		t.Fatal(err)
	}
	if e3.Metrics["underestimated"] != 1 {
		t.Error("E3: measurement campaign was not an underestimate")
	}
	e4, err := Exp04YanZhang()
	if err != nil {
		t.Fatal(err)
	}
	if e4.Metrics["inflation_at_4"] < 1.0 {
		t.Error("E4: joint bound below solo")
	}
	e8, err := Exp08PartitionLocking()
	if err != nil {
		t.Fatal(err)
	}
	if e8.Metrics["corebased_sum"] > e8.Metrics["taskbased_sum"] {
		t.Error("E8: core-based partitioning lost to task-based")
	}
	if e8.Metrics["dynamic_lock"] >= e8.Metrics["static_lock"] {
		t.Error("E8: dynamic locking lost to static on phased workload")
	}
	e13, err := Exp13MBBA()
	if err != nil {
		t.Fatal(err)
	}
	if e13.Metrics["heavy_core_gain"] < 1.0 {
		t.Error("E13: MBBA did not help the memory-heavy core")
	}
}
