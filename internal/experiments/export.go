package experiments

import (
	"fmt"
	"slices"

	"paratime/internal/cache"
	"paratime/internal/core"
	"paratime/internal/memctrl"
	"paratime/internal/spec"
	"paratime/internal/workload"
)

// Exporter builds the Scenario form of one experiment's analysis
// requests. An experiment may export several scenarios (e.g. one per
// co-runner count, or one per compared configuration); `paratime run`
// on the exported set reproduces the experiment's WCET numbers exactly,
// because the rebased experiments execute these same scenarios.
type Exporter func() ([]*spec.Scenario, error)

// Exporters maps experiment ids to scenario constructors. Experiments
// absent here (e2, e3, e10, e17, e18) are measurement campaigns or pure
// state-space computations with no per-task WCET request to serialize;
// together the present ones cover every §3–§5 regime: solo, joint
// DirectMapped/AgeShift (with lifetimes and bypass), partitioning and
// locking, round-robin/TDMA/MBBA buses, SMT, and PRET.
var Exporters = map[string]Exporter{
	"e1":  exportE01,
	"e4":  exportE04,
	"e5":  exportE05,
	"e6":  exportE06,
	"e7":  exportE07,
	"e8":  exportE08,
	"e9":  exportE09,
	"e11": exportE11,
	"e12": exportE12,
	"e13": exportE13,
	"e14": exportE14,
	"e15": exportE15,
	"e16": exportE16,
}

// ExportableIDs lists the exportable experiment ids in run order.
func ExportableIDs() []string {
	ids := make([]string, 0, len(Exporters))
	for id := range Exporters {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b string) int { return idOrder(a) - idOrder(b) })
	return ids
}

func idOrder(id string) int {
	for i, known := range IDs {
		if known == id {
			return i
		}
	}
	return len(IDs)
}

// Export builds the scenarios of one experiment id.
func Export(id string) ([]*spec.Scenario, error) {
	exp, ok := Exporters[id]
	if !ok {
		if _, known := All[id]; known {
			return nil, fmt.Errorf("experiment %s has no scenario form (measurement campaign or pure state-space computation)", id)
		}
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
	return exp()
}

// ExportAll builds every exportable scenario in run order.
func ExportAll() ([]*spec.Scenario, error) {
	var out []*spec.Scenario
	for _, id := range ExportableIDs() {
		scs, err := Export(id)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, scs...)
	}
	return out, nil
}

// scenario assembles one Scenario from live toolkit values.
func scenario(name string, tasks []core.Task, sys core.SystemConfig, mode spec.ModeSpec, sim *spec.SimSpec) (*spec.Scenario, error) {
	ts, err := spec.TasksToSpec(tasks)
	if err != nil {
		return nil, err
	}
	sc := &spec.Scenario{
		Spec:   spec.Version,
		Name:   name,
		Tasks:  ts,
		System: spec.SystemToSpec(sys, memctrl.DefaultConfig()),
		Mode:   mode,
		Sim:    sim,
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func one(sc *spec.Scenario, err error) ([]*spec.Scenario, error) {
	if err != nil {
		return nil, err
	}
	return []*spec.Scenario{sc}, nil
}

// withExplore attaches an exhaustive-exploration request to a built
// scenario and re-validates. The explorable experiments use it to pair
// every static bound with an exact worst case over enumerated initial
// cache states (and declared input values, when the tasks have any).
func withExplore(sc *spec.Scenario, err error, e *spec.ExploreSpec) (*spec.Scenario, error) {
	if err != nil {
		return nil, err
	}
	sc.Explore = e
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// --- per-experiment constructors --------------------------------------------

// scenarioE01 is E1's request: the full suite, solo, simulation-checked,
// with the exhaustive-exploration oracle enumerating initial cache
// states (the suite programs are closed, so the input space is empty).
func scenarioE01() (*spec.Scenario, error) {
	sc, err := scenario("e1-solo-suite", workload.Suite(), defaultSys(),
		spec.ModeSpec{Kind: spec.KindSolo}, &spec.SimSpec{MaxCycles: 200_000_000})
	return withExplore(sc, err, &spec.ExploreSpec{InitStates: 4})
}

func exportE01() ([]*spec.Scenario, error) { return one(scenarioE01()) }

// e4SmallL1Sys is E4's system: tiny L1I, direct-mapped shared L2.
func e4SmallL1Sys() core.SystemConfig {
	sys := defaultSys()
	sys.Mem.L1I = cache.Config{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	dm := cache.Config{Name: "L2", Sets: 64, Ways: 1, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &dm
	return sys
}

// scenarioE04 is E4's request at one co-runner count. The co-runners
// are identical CRC kernels at disjoint bases; scenario task names must
// be unique, so each carries its slot index (names never enter the
// analysis).
func scenarioE04(n int) (*spec.Scenario, error) {
	tasks := []core.Task{bigLoopTask(40, 64)}
	for i := 0; i < n; i++ {
		co := workload.CRC(12, workload.Slot(i+1))
		co.Name = fmt.Sprintf("%s.%d", co.Name, i+1)
		tasks = append(tasks, co)
	}
	return scenario(fmt.Sprintf("e4-joint-directmapped-%dco", n), tasks, e4SmallL1Sys(),
		spec.ModeSpec{Kind: spec.KindJoint, Model: spec.ModelDirectMapped}, nil)
}

func exportE04() ([]*spec.Scenario, error) {
	var out []*spec.Scenario
	for n := 1; n <= 4; n++ {
		sc, err := scenarioE04(n)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

func exportE05() ([]*spec.Scenario, error) {
	sys := defaultSys()
	sys.Mem.L1I = cache.Config{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	l2 := cache.Config{Name: "L2", Sets: 32, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	tasks := []core.Task{bigLoopTask(40, 64)}
	for i := 0; i < 4; i++ {
		co := workload.Thrasher(2048, 32, workload.Slot(i+1))
		co.Name = fmt.Sprintf("%s.%d", co.Name, i+1)
		tasks = append(tasks, co)
	}
	return one(scenario("e5-joint-ageshift-4thrashers", tasks, sys,
		spec.ModeSpec{Kind: spec.KindJoint, Model: spec.ModelAgeShift}, nil))
}

func exportE06() ([]*spec.Scenario, error) {
	sys := defaultSys()
	sys.Mem.L1I = cache.Config{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	l2 := cache.Config{Name: "L2", Sets: 32, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	tasks := []core.Task{
		bigLoopTaskAt(30, 48, 0x1000),
		bigLoopTaskAt(30, 48, 0x5000),
		bigLoopTaskAt(30, 48, 0x9000),
	}
	return one(scenario("e6-joint-lifetimes", tasks, sys,
		spec.ModeSpec{Kind: spec.KindJoint, Model: spec.ModelAgeShift,
			Lifetimes: []spec.LifetimeSpec{
				{Core: 0}, {Core: 1, Deps: []int{0}}, {Core: 2},
			}}, nil))
}

func exportE07() ([]*spec.Scenario, error) {
	sys := defaultSys()
	l2 := cache.Config{Name: "L2", Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	sys.Mem.L1I = cache.Config{Name: "L1I", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1}
	once := core.Task{Name: "once", Prog: mustAsm("once", `
        li   r3, 0x6000
        ld   r2, 0(r3)
        ld   r4, 64(r3)
        ld   r5, 0x200(r3)
        ld   r6, 0x240(r3)
        ld   r7, 0x400(r3)
        halt
.data 0x6000
        .word 1`)}
	once.Prog.Rebase(0x3000)
	victim := bigLoopTaskAt(30, 48, 0x1000)
	sc, err := scenario("e7-joint-bypass", []core.Task{once, victim}, sys,
		spec.ModeSpec{Kind: spec.KindJoint, Model: spec.ModelAgeShift}, nil)
	if err != nil {
		return nil, err
	}
	sc.Tasks[0].Bypass = true
	return []*spec.Scenario{sc}, nil
}

// e8Sys is E8's 4 KiB 4-way shared L2 system.
func e8Sys() core.SystemConfig {
	sys := defaultSys()
	l2 := cache.Config{Name: "L2", Sets: 32, Ways: 4, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	return sys
}

func e8Tasks() []core.Task {
	return []core.Task{
		workload.MemCopy(48, workload.Slot(0)),
		workload.CRC(12, workload.Slot(1)),
		workload.FIR(12, 4, workload.Slot(2)),
		workload.CountBits(6, workload.Slot(3)),
	}
}

// scenarioE08Partition is E8's partitioning comparison under one scheme.
func scenarioE08Partition(scheme string) (*spec.Scenario, error) {
	mode := spec.ModeSpec{Kind: spec.KindPartition}
	switch scheme {
	case spec.PartTask:
		mode.Partition = &spec.PartitionSpec{Scheme: spec.PartTask}
	case spec.PartCore:
		mode.Partition = &spec.PartitionSpec{Scheme: spec.PartCore, Cores: 2, Assign: []int{0, 0, 1, 1}}
	}
	return scenario("e8-partition-"+scheme, e8Tasks(), e8Sys(), mode, nil)
}

// scenarioE08Lock is E8's locking comparison under one policy.
func scenarioE08Lock(policy string) (*spec.Scenario, error) {
	return scenario("e8-lock-"+policy, []core.Task{phasedTask()}, e8Sys(),
		spec.ModeSpec{Kind: spec.KindLock, Lock: &spec.LockSpec{Policy: policy, BudgetLines: 40}}, nil)
}

func exportE08() ([]*spec.Scenario, error) {
	var out []*spec.Scenario
	for _, scheme := range []string{spec.PartTask, spec.PartCore} {
		sc, err := scenarioE08Partition(scheme)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	for _, policy := range []string{spec.LockStatic, spec.LockDynamic} {
		sc, err := scenarioE08Lock(policy)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

func exportE09() ([]*spec.Scenario, error) {
	sys := defaultSys()
	sys.Mem.L1D = cache.Config{Name: "L1D", Sets: 2, Ways: 1, LineBytes: 16, HitLatency: 1}
	l2 := cache.Config{Name: "L2", Sets: 32, Ways: 4, LineBytes: 32, HitLatency: 4}
	sys.Mem.L2 = &l2
	tasks := append(workload.Suite()[:5], assocStressTask())
	col, err := scenario("e9-partition-ways", tasks, sys,
		spec.ModeSpec{Kind: spec.KindPartition, Partition: &spec.PartitionSpec{Scheme: spec.PartWays, Ways: 2}}, nil)
	if err != nil {
		return nil, err
	}
	bank, err := scenario("e9-partition-banks", tasks, sys,
		spec.ModeSpec{Kind: spec.KindPartition, Partition: &spec.PartitionSpec{Scheme: spec.PartBanks, Banks: 2, TotalBanks: 4}}, nil)
	if err != nil {
		return nil, err
	}
	return []*spec.Scenario{col, bank}, nil
}

func exportE11() ([]*spec.Scenario, error) {
	tasks := []core.Task{
		workload.Fib(24, workload.Slot(0)),
		workload.CRC(8, workload.Slot(1)),
		workload.CountBits(4, workload.Slot(2)),
	}
	return one(scenario("e11-bus-tdma", tasks, defaultSys(),
		spec.ModeSpec{Kind: spec.KindBus, Bus: &spec.BusSpec{
			Policy:  spec.BusTDMA,
			Latency: 6,
			Slots:   []spec.SlotSpec{{Owner: 0, Len: 8}, {Owner: 1, Len: 10}, {Owner: 2, Len: 8}},
		}},
		&spec.SimSpec{MaxCycles: 500_000_000}))
}

// e12Tasks are the co-runner pool of the round-robin experiment.
func e12Tasks() []core.Task {
	return []core.Task{
		workload.MemCopy(48, workload.Slot(0)),
		workload.CRC(12, workload.Slot(1)),
		workload.FIR(12, 4, workload.Slot(2)),
		workload.CountBits(6, workload.Slot(3)),
		workload.Fib(24, workload.Slot(4)),
		workload.BSort(10, workload.Slot(5)),
		workload.MemCopy(32, workload.Slot(6)),
		workload.CRC(8, workload.Slot(7)),
	}
}

// scenarioE12 is E12's request at one core count, with the exploration
// oracle co-running all n cores from each enumerated initial state.
func scenarioE12(n int) (*spec.Scenario, error) {
	sc, err := scenario(fmt.Sprintf("e12-bus-roundrobin-%dcores", n), e12Tasks()[:n], defaultSys(),
		spec.ModeSpec{Kind: spec.KindBus, Bus: &spec.BusSpec{Policy: spec.BusRoundRobin, Cores: n}},
		&spec.SimSpec{MaxCycles: 500_000_000})
	return withExplore(sc, err, &spec.ExploreSpec{InitStates: 2})
}

func exportE12() ([]*spec.Scenario, error) {
	var out []*spec.Scenario
	for _, n := range []int{1, 2, 4, 8} {
		sc, err := scenarioE12(n)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

func e13Tasks() []core.Task {
	return []core.Task{
		workload.MemCopy(64, workload.Slot(0)), // memory-heavy: weight 4
		workload.FIR(12, 4, workload.Slot(1)),
		workload.Fib(24, workload.Slot(2)),
		workload.CountBits(4, workload.Slot(3)),
	}
}

// scenarioE13RR and scenarioE13MBBA are E13's two compared regimes.
func scenarioE13RR() (*spec.Scenario, error) {
	return scenario("e13-bus-roundrobin", e13Tasks(), defaultSys(),
		spec.ModeSpec{Kind: spec.KindBus, Bus: &spec.BusSpec{Policy: spec.BusRoundRobin}}, nil)
}

func scenarioE13MBBA() (*spec.Scenario, error) {
	return scenario("e13-bus-mbba", e13Tasks(), defaultSys(),
		spec.ModeSpec{Kind: spec.KindBus, Bus: &spec.BusSpec{Policy: spec.BusMBBA, Weights: []int{4, 2, 1, 1}}},
		&spec.SimSpec{MaxCycles: 500_000_000})
}

func exportE13() ([]*spec.Scenario, error) {
	rr, err := scenarioE13RR()
	if err != nil {
		return nil, err
	}
	mbba, err := scenarioE13MBBA()
	if err != nil {
		return nil, err
	}
	return []*spec.Scenario{rr, mbba}, nil
}

// exportE14 serializes the CarCore HRT's bound request: by construction
// the HRT's WCET on CarCore is its solo WCET, so the scenario is a solo
// analysis of the hard real-time task.
func exportE14() ([]*spec.Scenario, error) {
	return one(scenario("e14-carcore-hrt-solo", []core.Task{workload.CRC(12, workload.Slot(0))},
		defaultSys(), spec.ModeSpec{Kind: spec.KindSolo}, &spec.SimSpec{MaxCycles: 200_000_000}))
}

// scenarioE15 is E15's request at one co-runner count.
func scenarioE15(n int) (*spec.Scenario, error) {
	tasks := []core.Task{workload.CRC(8, workload.Slot(0))}
	tasks = append(tasks, makeNHRTTasks(n)...)
	return scenario(fmt.Sprintf("e15-pret-%dco", n), tasks, defaultSys(),
		spec.ModeSpec{Kind: spec.KindPRET, PRET: &spec.PretSpec{Threads: 6, WheelWindow: 26, MemLatency: 20}},
		&spec.SimSpec{MaxCycles: 50_000_000})
}

func exportE15() ([]*spec.Scenario, error) {
	var out []*spec.Scenario
	for _, n := range []int{0, 5} {
		sc, err := scenarioE15(n)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

func e16Tasks() []core.Task {
	return []core.Task{
		workload.Fib(24, workload.Slot(0)),
		workload.CRC(8, workload.Slot(1)),
		workload.CountBits(4, workload.Slot(2)),
		workload.MemCopy(16, workload.Slot(3)),
	}
}

// scenarioE16 is E16's partitioned-queue SMT request.
func scenarioE16() (*spec.Scenario, error) {
	return scenario("e16-smt-partitioned-queues", e16Tasks(), defaultSys(),
		spec.ModeSpec{Kind: spec.KindSMT, SMT: &spec.SMTSpec{Threads: 4, FULatency: 2, MemLatency: 10}},
		&spec.SimSpec{MaxCycles: 10_000_000})
}

func exportE16() ([]*spec.Scenario, error) { return one(scenarioE16()) }

// assocStressTask loads three scalars exactly one L2 way-group apart
// (see Exp09Bankization).
func assocStressTask() core.Task {
	return core.Task{Name: "assocstress", Prog: mustAsm("assocstress", `
        li   r1, 40
        li   r3, 0x8000
loop:   ld   r4, 0(r3)
        ld   r5, 0x400(r3)
        ld   r6, 0x800(r3)
        add  r7, r4, r5
        add  r7, r7, r6
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
.data 0x8000
        .word 1
.data 0x8400
        .word 2
.data 0x8800
        .word 3`)}
}
